(** Roofline analysis: place a simulated run against a machine's compute and
    bandwidth ceilings (Williams et al., CACM 2009) — the bound-and-
    bottleneck reasoning the paper uses to explain where each benchmark's
    performance must come from. *)

type point = {
  label : string;
  intensity : float;  (** FLOP per DRAM byte *)
  gflops : float;  (** achieved GFLOP/s *)
  roof_gflops : float;  (** attainable at this intensity *)
  efficiency : float;  (** achieved / attainable *)
}

val peak_gflops : Ninja_arch.Machine.t -> use_simd:bool -> float
(** Chip peak single-precision GFLOP/s. *)

val ridge_intensity : Ninja_arch.Machine.t -> float
(** Intensity at which the compute roof meets the bandwidth roof. *)

val attainable : Ninja_arch.Machine.t -> intensity:float -> float
(** Roofline value min(peak, BW * intensity) in GFLOP/s. *)

val point : label:string -> Ninja_arch.Timing.report -> point
(** Place a run on its machine's roofline. Raises [Invalid_argument] if the
    run produced no DRAM traffic (infinite intensity; use {!point_compute}). *)

val point_compute : label:string -> Ninja_arch.Timing.report -> point
(** Like {!point}, but for cache-resident runs: intensity is reported as
    the compute ridge and the roof is the compute peak. *)

val csv_header : string
(** Header line of the roofline CSV: [label,flop_per_byte,gflops,...]. *)

val csv_row : point -> string
(** One CSV data line for a point ([%.6g] fields — deterministic). Labels
    are emitted verbatim; callers must not put commas in them. *)

val to_csv : point list -> string
(** Full roofline-ready CSV document (header + one line per point +
    trailing newline) for external plotting tools. *)

val pp_point : point Fmt.t
