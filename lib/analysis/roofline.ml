module Machine = Ninja_arch.Machine
module Timing = Ninja_arch.Timing

type point = {
  label : string;
  intensity : float;
  gflops : float;
  roof_gflops : float;
  efficiency : float;
}

let peak_gflops (m : Machine.t) ~use_simd =
  Machine.peak_flops_per_cycle m ~use_simd *. m.freq_ghz

let ridge_intensity (m : Machine.t) = peak_gflops m ~use_simd:true /. m.dram_bw_gbs

let attainable (m : Machine.t) ~intensity =
  Float.min (peak_gflops m ~use_simd:true) (m.dram_bw_gbs *. intensity)

let achieved_gflops (r : Timing.report) = Timing.flops r /. r.seconds /. 1e9

let point ~label (r : Timing.report) =
  let intensity = Timing.operational_intensity r in
  let roof = attainable r.machine ~intensity in
  let gflops = achieved_gflops r in
  { label; intensity; gflops; roof_gflops = roof; efficiency = gflops /. roof }

let point_compute ~label (r : Timing.report) =
  let roof = peak_gflops r.machine ~use_simd:true in
  let gflops = achieved_gflops r in
  {
    label;
    intensity = ridge_intensity r.machine;
    gflops;
    roof_gflops = roof;
    efficiency = gflops /. roof;
  }

let csv_header = "label,flop_per_byte,gflops,roof_gflops,efficiency"

let csv_row p =
  Fmt.str "%s,%.6g,%.6g,%.6g,%.6g" p.label p.intensity p.gflops p.roof_gflops
    p.efficiency

let to_csv points =
  String.concat "\n" (csv_header :: List.map csv_row points) ^ "\n"

let pp_point ppf p =
  Fmt.pf ppf "%-24s %8.2f flop/B %8.2f GF/s (roof %8.2f, %.0f%%)" p.label
    p.intensity p.gflops p.roof_gflops (100. *. p.efficiency)
