(* A growable circular-buffer deque. Not thread-safe on its own: the pool
   guards each worker's deque with that worker's mutex, which keeps this
   module trivially correct and keeps the locking policy in one place
   (Pool). Elements are stored in an ['a option array] so no dummy value
   is needed; slots are cleared on removal to avoid retaining closures. *)

type 'a t = {
  mutable buf : 'a option array;
  mutable head : int;  (* index of the front element when len > 0 *)
  mutable len : int;
}

let create () = { buf = Array.make 8 None; head = 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let grow t =
  let cap = Array.length t.buf in
  let buf = Array.make (2 * cap) None in
  for i = 0 to t.len - 1 do
    buf.(i) <- t.buf.((t.head + i) mod cap)
  done;
  t.buf <- buf;
  t.head <- 0

let push_back t x =
  if t.len = Array.length t.buf then grow t;
  t.buf.((t.head + t.len) mod Array.length t.buf) <- Some x;
  t.len <- t.len + 1

let pop_front t =
  if t.len = 0 then None
  else begin
    let x = t.buf.(t.head) in
    t.buf.(t.head) <- None;
    t.head <- (t.head + 1) mod Array.length t.buf;
    t.len <- t.len - 1;
    x
  end

let pop_back t =
  if t.len = 0 then None
  else begin
    let i = (t.head + t.len - 1) mod Array.length t.buf in
    let x = t.buf.(i) in
    t.buf.(i) <- None;
    t.len <- t.len - 1;
    x
  end

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.head <- 0;
  t.len <- 0
