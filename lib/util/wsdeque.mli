(** A growable double-ended queue backed by a circular buffer.

    This is the per-worker deque of the work-stealing {!Pool}: the owning
    worker takes from the front, thieves take from the back. The structure
    itself is {e not} thread-safe — the pool serializes access with one
    mutex per deque — so it stays a dozen lines of plainly-auditable code.
    Removal clears the vacated slot, so finished task closures are not
    retained. *)

type 'a t

val create : unit -> 'a t
(** An empty deque (initial capacity 8, doubling as needed). *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push_back : 'a t -> 'a -> unit
(** Append at the back. Amortized O(1). *)

val pop_front : 'a t -> 'a option
(** Remove the front element — the owner's end. *)

val pop_back : 'a t -> 'a option
(** Remove the back element — the thieves' end. *)

val clear : 'a t -> unit
(** Drop every element (used when a pool drains after a task failure). *)
