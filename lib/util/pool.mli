(** A fixed-size pool of worker domains fed from a shared work queue.

    Workers are OCaml 5 [Domain]s; the queue is protected by a [Mutex] and
    two [Condition]s (queue-nonempty for workers, pool-idle for waiters).
    Tasks are independent thunks; the pool makes no ordering guarantee
    between tasks, so callers that need deterministic output must key their
    results (see {!map_list}, which preserves input order regardless of
    execution order). *)

type t

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()] — the [-j] default. *)

val create : domains:int -> t
(** Spawn [domains] worker domains (at least 1) blocked on an empty queue. *)

val size : t -> int
(** Number of worker domains. *)

val submit : t -> (unit -> unit) -> unit
(** Enqueue a task. Tasks must not themselves call {!wait} or {!shutdown}.
    If a task raises, the first such exception is kept and re-raised by the
    next {!wait}; remaining tasks still run. *)

val wait : t -> unit
(** Block until every submitted task has finished, then re-raise the first
    task exception, if any. *)

val shutdown : t -> unit
(** Drain remaining tasks, then join all worker domains. The pool must not
    be used afterwards. *)

val map_list : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list ~domains f xs] applies [f] to every element across a
    temporary pool of [domains] workers and returns results in input order
    ([List.map] observational equivalence, whatever the interleaving).
    [domains <= 1] (or a short list) degenerates to plain [List.map] in the
    calling domain — no domains are spawned, so [-j 1] is exactly the
    serial path. Default: {!default_domains}. *)
