(** A fixed-size pool of worker domains scheduled by work stealing.

    Workers are OCaml 5 [Domain]s. Each worker owns a private deque
    ({!Wsdeque}) guarded by its own mutex; {!submit} distributes tasks
    round-robin across the deques, owners execute from the front of their
    deque, and an idle worker steals from the back of a random victim's
    deque (sweeping every deque, so a lone task anywhere is always
    found). Callers that submit a whole batch in descending
    expected-cost order thereby give every deque a longest-first
    schedule — the LPT heuristic — and stealing rebalances whatever the
    estimates got wrong.

    Tasks are independent thunks; the pool makes no ordering guarantee
    between tasks, so callers that need deterministic output must key
    their results (see {!map_list}, which preserves input order
    regardless of execution order). *)

type t

(** Scheduler counters, snapshot by {!stats}. All numbers are cumulative
    over the pool's lifetime. *)
type stats = {
  domains : int;  (** worker count *)
  tasks_run : int;  (** tasks executed (excludes cancelled) *)
  steals : int;  (** tasks executed from another worker's deque *)
  cancelled : int;  (** tasks drained without running after a failure *)
  busy_s : float array;  (** per-domain wall seconds spent inside tasks *)
  run_per_domain : int array;  (** per-domain tasks executed *)
  max_depth : int array;  (** per-domain deque high-water mark *)
}

exception Task_errors of (string * exn) list
(** Raised by {!wait} when two or more tasks failed, carrying every task
    exception in the order they occurred, each paired with the failing
    task's submit label (see {!submit}; [{!default_label}] when the
    submitter gave none) so multi-failure reports keep per-task
    identity. A lone failure is re-raised as itself. *)

val default_label : string
(** ["task"] — the label recorded for tasks submitted without one. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()] — the [-j] default. *)

val create : domains:int -> t
(** Spawn [domains] worker domains (at least 1), each with an empty
    deque. *)

val size : t -> int
(** Number of worker domains. *)

val submit : ?label:string -> t -> (unit -> unit) -> unit
(** Enqueue a task, round-robin across the worker deques. Tasks must not
    themselves call {!wait} or {!shutdown}. On the first task exception
    the pool drains: queued tasks are cancelled without running, and
    {!wait} reports every exception raised (see {!Task_errors}).
    [label] names the task in error reports (a step or job name);
    default {!default_label}. *)

val submit_on : ?label:string -> t -> int -> (unit -> unit) -> unit
(** [submit_on p i task] enqueues onto worker [i]'s deque specifically —
    for callers that plan their own distribution, and for tests that
    construct deliberate imbalance to exercise stealing. *)

val wait : t -> unit
(** Block until every submitted task has finished or been cancelled,
    then re-raise a lone task exception as itself, or two or more as
    {!Task_errors} (chronological order). The error state is cleared, so
    the pool remains usable. *)

val pending : t -> int
(** Tasks enqueued or currently running — [0] iff the pool is idle.
    Instantaneous; for admission control and drain loops. *)

val cancel_queued : t -> int
(** Remove every queued-but-unstarted task from the deques without
    running it (tasks already executing finish normally) and return the
    number removed. Removed tasks count as [cancelled] in {!stats}.
    The force-shutdown hook for services that must stop accepting and
    discard their backlog; pair with {!wait} to quiesce. *)

val shutdown : t -> unit
(** Drain remaining tasks, then join all worker domains. The pool must
    not be used afterwards. *)

val stats : t -> stats
(** Snapshot the scheduler counters. Call after {!wait} for quiescent
    numbers; calling mid-flight is safe but yields an instantaneous
    mixture. *)

val pp_stats : Format.formatter -> stats -> unit
(** Multi-line, human-oriented (steal totals plus a per-domain line);
    contains wall-clock times, so keep it out of deterministic output
    streams. *)

val map_list :
  ?domains:int ->
  ?on_stats:(stats -> unit) ->
  ?label:('a -> string) ->
  ('a -> 'b) -> 'a list -> 'b list
(** [map_list ~domains f xs] applies [f] to every element across a
    temporary pool of [domains] workers and returns results in input order
    ([List.map] observational equivalence, whatever the interleaving).
    Elements are submitted in list order, so passing a list sorted by
    descending expected cost yields a longest-first schedule on every
    deque. [domains <= 1] (or a short list) degenerates to plain
    [List.map] in the calling domain — no domains are spawned, so [-j 1]
    is exactly the serial path. Default: {!default_domains}.
    [on_stats] receives the pool's scheduler counters after all tasks
    finish (a synthetic all-serial snapshot on the degenerate path); it
    is not called when a task failed. [label], when given, names each
    element's task for {!Task_errors} reporting. *)
