type t = {
  mu : Mutex.t;
  nonempty : Condition.t;  (* signaled when a task is enqueued / on shutdown *)
  idle : Condition.t;  (* broadcast when [pending] drops to 0 *)
  tasks : (unit -> unit) Queue.t;
  mutable pending : int;  (* enqueued + currently running *)
  mutable stopping : bool;
  mutable error : exn option;  (* first task exception, for [wait] *)
  mutable workers : unit Domain.t list;
}

let default_domains () = Domain.recommended_domain_count ()

let rec worker_loop p =
  Mutex.lock p.mu;
  while Queue.is_empty p.tasks && not p.stopping do
    Condition.wait p.nonempty p.mu
  done;
  if Queue.is_empty p.tasks then Mutex.unlock p.mu (* stopping: exit *)
  else begin
    let task = Queue.pop p.tasks in
    Mutex.unlock p.mu;
    let err = (try task (); None with e -> Some e) in
    Mutex.lock p.mu;
    (match (err, p.error) with Some e, None -> p.error <- Some e | _ -> ());
    p.pending <- p.pending - 1;
    if p.pending = 0 then Condition.broadcast p.idle;
    Mutex.unlock p.mu;
    worker_loop p
  end

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains < 1";
  let p =
    {
      mu = Mutex.create ();
      nonempty = Condition.create ();
      idle = Condition.create ();
      tasks = Queue.create ();
      pending = 0;
      stopping = false;
      error = None;
      workers = [];
    }
  in
  p.workers <- List.init domains (fun _ -> Domain.spawn (fun () -> worker_loop p));
  p

let size p = List.length p.workers

let submit p task =
  Mutex.lock p.mu;
  if p.stopping then begin
    Mutex.unlock p.mu;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push task p.tasks;
  p.pending <- p.pending + 1;
  Condition.signal p.nonempty;
  Mutex.unlock p.mu

let wait p =
  Mutex.lock p.mu;
  while p.pending > 0 do
    Condition.wait p.idle p.mu
  done;
  let err = p.error in
  p.error <- None;
  Mutex.unlock p.mu;
  match err with Some e -> raise e | None -> ()

let shutdown p =
  Mutex.lock p.mu;
  p.stopping <- true;
  Condition.broadcast p.nonempty;
  Mutex.unlock p.mu;
  List.iter Domain.join p.workers;
  p.workers <- []

let map_list ?domains f xs =
  let domains = match domains with Some d -> d | None -> default_domains () in
  let n = List.length xs in
  if domains <= 1 || n <= 1 then List.map f xs
  else begin
    let arr = Array.of_list xs in
    let out = Array.make n None in
    let p = create ~domains:(min domains n) in
    Array.iteri (fun i x -> submit p (fun () -> out.(i) <- Some (f x))) arr;
    let fin () = shutdown p in
    (try wait p
     with e ->
       fin ();
       raise e);
    fin ();
    Array.to_list
      (Array.map (function Some v -> v | None -> assert false) out)
  end
