(* A fixed-size pool of worker domains over per-worker deques with
   random-victim work stealing.

   Scheduling structure (see pool.mli for the contract):

   - Every worker owns a deque ({!Wsdeque}) guarded by its own mutex, so
     two workers touching different deques never contend. Owners take
     from the front; thieves take from the back.
   - [submit] distributes tasks round-robin across the deques. Callers
     that seed the whole batch up front in descending expected-cost
     order therefore give every deque a longest-first (LPT-style)
     schedule, and stealing rebalances whatever the estimates got wrong.
   - A single global mutex guards only the small shared state: the
     pending/queued counters, the stop flag, the error list, and the two
     condition variables (task-available for sleeping workers, pool-idle
     for [wait]). It is never held while a task runs.

   Lock order: the global mutex may be taken first and a slot mutex
   inside it ([submit]); workers take slot mutexes and the global mutex
   only separately, never nested — so there is no lock-order cycle.

   Error handling: the first task exception flips the pool into draining
   mode — queued tasks are cancelled (popped and dropped without
   running), tasks already in flight finish, and every exception raised
   is kept in order together with the failing task's label. [wait]
   re-raises a lone exception as-is and wraps two or more in
   [Task_errors], labels attached so the caller can tell which step of
   a batch failed. *)

type stats = {
  domains : int;
  tasks_run : int;
  steals : int;
  cancelled : int;
  busy_s : float array;
  run_per_domain : int array;
  max_depth : int array;
}

exception Task_errors of (string * exn) list

let default_label = "task"

type slot = {
  smu : Mutex.t;
  deque : (string * (unit -> unit)) Wsdeque.t;
  rng : Rng.t;  (* victim selection; only its owner worker touches it *)
  mutable busy_s : float;
  mutable ran : int;
  mutable stolen : int;  (* tasks this worker took from another deque *)
  mutable max_depth : int;
}

type t = {
  mu : Mutex.t;
  nonempty : Condition.t;  (* signaled when a task is enqueued / on shutdown *)
  idle : Condition.t;  (* broadcast when [pending] drops to 0 *)
  slots : slot array;
  mutable next : int;  (* round-robin submit cursor *)
  mutable pending : int;  (* enqueued + currently running *)
  mutable queued : int;  (* enqueued, not yet popped *)
  mutable stopping : bool;
  mutable errors : (string * exn) list;  (* reverse chronological *)
  mutable cancelled : int;
  mutable workers : unit Domain.t list;
}

let default_domains () = Domain.recommended_domain_count ()

let locked mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

(* Pop from the worker's own deque (front) or steal from a random victim
   (back), sweeping every other deque once so a lone task anywhere is
   always found. Returns the task and whether it was stolen. *)
let find_task p me =
  let n = Array.length p.slots in
  let mine = p.slots.(me) in
  match locked mine.smu (fun () -> Wsdeque.pop_front mine.deque) with
  | Some task -> Some (task, false)
  | None ->
      let start = if n > 1 then Rng.int mine.rng n else 0 in
      let rec sweep i =
        if i >= n then None
        else
          let v = (start + i) mod n in
          if v = me then sweep (i + 1)
          else
            let s = p.slots.(v) in
            match locked s.smu (fun () -> Wsdeque.pop_back s.deque) with
            | Some task -> Some (task, true)
            | None -> sweep (i + 1)
      in
      sweep 0

let rec worker_loop p me =
  match find_task p me with
  | Some ((label, task), stolen) ->
      let run =
        locked p.mu (fun () ->
            p.queued <- p.queued - 1;
            if p.errors <> [] then begin
              (* draining after a failure: cancel instead of running *)
              p.cancelled <- p.cancelled + 1;
              false
            end
            else true)
      in
      if run then begin
        let t0 = Unix.gettimeofday () in
        let err = (try task (); None with e -> Some e) in
        let dt = Unix.gettimeofday () -. t0 in
        let mine = p.slots.(me) in
        locked mine.smu (fun () ->
            mine.busy_s <- mine.busy_s +. dt;
            mine.ran <- mine.ran + 1;
            if stolen then mine.stolen <- mine.stolen + 1);
        locked p.mu (fun () ->
            (match err with
            | Some e -> p.errors <- (label, e) :: p.errors
            | None -> ()))
      end;
      locked p.mu (fun () ->
          p.pending <- p.pending - 1;
          if p.pending = 0 then Condition.broadcast p.idle);
      worker_loop p me
  | None ->
      let continue =
        locked p.mu (fun () ->
            if p.queued > 0 then true (* raced with a submit: sweep again *)
            else if p.stopping then false
            else begin
              Condition.wait p.nonempty p.mu;
              true
            end)
      in
      if continue then worker_loop p me

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains < 1";
  let p =
    {
      mu = Mutex.create ();
      nonempty = Condition.create ();
      idle = Condition.create ();
      slots =
        Array.init domains (fun i ->
            {
              smu = Mutex.create ();
              deque = Wsdeque.create ();
              rng = Rng.create (0x5eed + i);
              busy_s = 0.;
              ran = 0;
              stolen = 0;
              max_depth = 0;
            });
      next = 0;
      pending = 0;
      queued = 0;
      stopping = false;
      errors = [];
      cancelled = 0;
      workers = [];
    }
  in
  p.workers <- List.init domains (fun i -> Domain.spawn (fun () -> worker_loop p i));
  p

let size p = Array.length p.slots

let submit_on ?(label = default_label) p i task =
  let n = Array.length p.slots in
  if i < 0 || i >= n then invalid_arg "Pool.submit_on: bad worker index";
  Mutex.lock p.mu;
  if p.stopping then begin
    Mutex.unlock p.mu;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  p.pending <- p.pending + 1;
  p.queued <- p.queued + 1;
  let s = p.slots.(i) in
  locked s.smu (fun () ->
      Wsdeque.push_back s.deque (label, task);
      let d = Wsdeque.length s.deque in
      if d > s.max_depth then s.max_depth <- d);
  Condition.signal p.nonempty;
  Mutex.unlock p.mu

let submit ?label p task =
  (* the cursor is read/advanced under the global mutex inside submit_on's
     critical section only for [pending]; racing on [next] itself would
     only skew the distribution, but keep it exact: *)
  let i = locked p.mu (fun () ->
      let i = p.next in
      p.next <- (i + 1) mod Array.length p.slots;
      i)
  in
  submit_on ?label p i task

let wait p =
  Mutex.lock p.mu;
  while p.pending > 0 do
    Condition.wait p.idle p.mu
  done;
  let errs = List.rev p.errors in
  p.errors <- [];
  Mutex.unlock p.mu;
  match errs with
  | [] -> ()
  | [ (_, e) ] -> raise e
  | es -> raise (Task_errors es)

let pending p = locked p.mu (fun () -> p.pending)

(* Drop every queued-but-unstarted task. Each removal is mirrored into
   the pending/queued counters under the global mutex, so a concurrent
   worker popping from the same deque (both touch it under the slot
   mutex) stays consistent: a task is either run by the worker or
   counted cancelled here, never both. *)
let cancel_queued p =
  let n = ref 0 in
  Array.iter
    (fun s ->
      locked s.smu (fun () ->
          let rec drain () =
            match Wsdeque.pop_back s.deque with
            | Some _ ->
                incr n;
                drain ()
            | None -> ()
          in
          drain ()))
    p.slots;
  locked p.mu (fun () ->
      p.queued <- p.queued - !n;
      p.pending <- p.pending - !n;
      p.cancelled <- p.cancelled + !n;
      if p.pending = 0 then Condition.broadcast p.idle);
  !n

let shutdown p =
  Mutex.lock p.mu;
  p.stopping <- true;
  Condition.broadcast p.nonempty;
  Mutex.unlock p.mu;
  List.iter Domain.join p.workers;
  p.workers <- []

let stats p =
  let n = Array.length p.slots in
  let busy_s = Array.make n 0. in
  let run_per_domain = Array.make n 0 in
  let max_depth = Array.make n 0 in
  let steals = ref 0 in
  Array.iteri
    (fun i s ->
      locked s.smu (fun () ->
          busy_s.(i) <- s.busy_s;
          run_per_domain.(i) <- s.ran;
          max_depth.(i) <- s.max_depth;
          steals := !steals + s.stolen))
    p.slots;
  locked p.mu (fun () ->
      {
        domains = n;
        tasks_run = Array.fold_left ( + ) 0 run_per_domain;
        steals = !steals;
        cancelled = p.cancelled;
        busy_s;
        run_per_domain;
        max_depth;
      })

let pp_stats ppf s =
  let fsum = Array.fold_left ( +. ) 0. in
  Fmt.pf ppf "scheduler: %d tasks on %d domain%s, %d steal%s, %.1fs busy"
    s.tasks_run s.domains
    (if s.domains = 1 then "" else "s")
    s.steals
    (if s.steals = 1 then "" else "s")
    (fsum s.busy_s);
  if s.cancelled > 0 then Fmt.pf ppf ", %d cancelled" s.cancelled;
  Array.iteri
    (fun i b ->
      Fmt.pf ppf "@.  domain %d: %4d run %8.1fs busy  peak queue %d" i
        s.run_per_domain.(i) b s.max_depth.(i))
    s.busy_s

let map_list ?domains ?on_stats ?label f xs =
  let domains = match domains with Some d -> d | None -> default_domains () in
  let n = List.length xs in
  if domains <= 1 || n <= 1 then begin
    let out = List.map f xs in
    (match on_stats with
    | Some k ->
        k
          {
            domains = 1;
            tasks_run = n;
            steals = 0;
            cancelled = 0;
            busy_s = [| 0. |];
            run_per_domain = [| n |];
            max_depth = [| 0 |];
          }
    | None -> ());
    out
  end
  else begin
    let arr = Array.of_list xs in
    let out = Array.make n None in
    let p = create ~domains:(min domains n) in
    Array.iteri
      (fun i x ->
        let label = Option.map (fun l -> l x) label in
        submit ?label p (fun () -> out.(i) <- Some (f x)))
      arr;
    let fin () = shutdown p in
    (try wait p
     with e ->
       fin ();
       raise e);
    (match on_stats with Some k -> k (stats p) | None -> ());
    fin ();
    Array.to_list
      (Array.map (function Some v -> v | None -> assert false) out)
  end
