(* A deliberately small JSON implementation: the benchmark harness writes
   one machine-readable report file and the test suite validates it, and
   the toolchain here has no JSON library. Printing is canonical enough
   for downstream tooling (objects keep insertion order, numbers are
   either exact integers or shortest-round-trip decimals); parsing is a
   plain recursive-descent reader over the full value grammar. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ---- printing ---- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let number_to_string x =
  if Float.is_nan x || Float.abs x = Float.infinity then
    invalid_arg "Json: non-finite number"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else
    (* shortest decimal that round-trips *)
    let s = Printf.sprintf "%.12g" x in
    if float_of_string s = x then s else Printf.sprintf "%.17g" x

let rec write ~indent b level v =
  let pad n = if indent then Buffer.add_string b (String.make (2 * n) ' ') in
  let newline () = if indent then Buffer.add_char b '\n' in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Num x -> Buffer.add_string b (number_to_string x)
  | Str s -> escape_string b s
  | List [] -> Buffer.add_string b "[]"
  | List items ->
      Buffer.add_char b '[';
      newline ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char b ',';
            newline ()
          end;
          pad (level + 1);
          write ~indent b (level + 1) item)
        items;
      newline ();
      pad level;
      Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
      Buffer.add_char b '{';
      newline ();
      List.iteri
        (fun i (k, item) ->
          if i > 0 then begin
            Buffer.add_char b ',';
            newline ()
          end;
          pad (level + 1);
          escape_string b k;
          Buffer.add_string b (if indent then ": " else ":");
          write ~indent b (level + 1) item)
        fields;
      newline ();
      pad level;
      Buffer.add_char b '}'

let to_string ?(indent = true) v =
  let b = Buffer.create 256 in
  write ~indent b 0 v;
  if indent then Buffer.add_char b '\n';
  Buffer.contents b

(* ---- parsing ---- *)

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail "expected %C at offset %d" c !pos
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail "invalid literal at offset %d" !pos
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
              if !pos + 4 >= n then fail "truncated \\u escape";
              let hex = String.sub s (!pos + 1) 4 in
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape %S" hex
              in
              (* encode the code point as UTF-8 (surrogates are kept as
                 replacement-free raw encodings; the harness only emits
                 ASCII) *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end;
              pos := !pos + 4
          | c -> fail "bad escape %C" c);
          advance ();
          go ()
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let lexeme = String.sub s start (!pos - start) in
    match float_of_string_opt lexeme with
    | Some x -> Num x
    | None -> fail "bad number %S at offset %d" lexeme start
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}' at offset %d" !pos
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']' at offset %d" !pos
          in
          elements ();
          List (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage at offset %d" !pos;
  v

(* ---- accessors ---- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Num x -> Some x | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
