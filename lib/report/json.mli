(** A minimal JSON value type with a canonical printer and a strict
    parser, used for the benchmark harness's machine-readable reports.
    The toolchain pins no JSON library, so the format is implemented here;
    it covers the whole value grammar but aims for small, auditable code
    rather than speed. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised by {!parse} on malformed input, with a position-annotated
    description of the first error. *)

val to_string : ?indent:bool -> t -> string
(** Serialize. [indent] (default [true]) pretty-prints with two-space
    indentation and a trailing newline; [~indent:false] is compact.
    Numbers print as exact integers when integral, else as the shortest
    decimal that round-trips.
    @raise Invalid_argument on NaN or infinite numbers. *)

val parse : string -> t
(** Parse a complete JSON document (trailing garbage is an error).
    @raise Parse_error on malformed input. *)

val member : string -> t -> t option
(** Field lookup; [None] for missing fields and non-objects. *)

val to_float : t -> float option
(** The payload of a [Num]; [None] for every other constructor. *)

val to_str : t -> string option
(** The payload of a [Str]; [None] for every other constructor. *)

val to_list : t -> t list option
(** The payload of a [List]; [None] for every other constructor. *)
