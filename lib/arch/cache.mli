(** A single set-associative, write-back, write-allocate cache with LRU
    replacement, operating on line addresses. Used as a building block for
    the per-core L1/L2 and the shared LLC in {!Hierarchy}. *)

type t

type cfg = Machine.cache_cfg

(** Result of a lookup-with-fill. *)
type outcome = {
  hit : bool;
  evicted_dirty : int option;
      (** line address of a dirty line displaced by the fill, if any *)
}

val create : ?fast_path:bool -> cfg -> t
(** An empty cache with the configuration's geometry.

    @param fast_path enable the MRU fast-hit path (default [true]): a
      repeat access to the line touched by the immediately preceding
      access is serviced without the way scan. Behaviour (outcomes, LRU
      order, statistics) is bit-identical either way — the most recently
      touched line holds the newest LRU stamp so it cannot have been
      evicted; [false] exists for differential testing. *)

val line_bytes : t -> int
(** Line size in bytes. *)

val sets : t -> int
(** Number of sets. *)

val assoc : t -> int
(** Ways per set. *)

val access : t -> line_addr:int -> write:bool -> outcome
(** Probe for [line_addr]; on a miss, fill it (possibly evicting). [write]
    marks the (resulting) line dirty. *)

val probe : t -> line_addr:int -> bool
(** Non-destructive hit test (no fill, no LRU update). *)

val invalidate_all : t -> unit
(** Drop every line (dirty contents are discarded, not written back). *)

val dirty_lines : t -> int
(** Number of valid dirty lines currently held (for end-of-run write-back
    draining). *)

val stats_hits : t -> int
(** Hits since creation / the last {!reset_stats}. *)

val stats_misses : t -> int
(** Misses since creation / the last {!reset_stats}. *)

val reset_stats : t -> unit
(** Zero the hit/miss counters (contents untouched). *)
