open Ninja_vm

type bound = Compute | Bandwidth | Latency

type report = {
  machine : Machine.t;
  n_threads : int;
  cycles : float;
  seconds : float;
  issue_cycles : float;
  stall_cycles : float;
  dram_time : float;
  overhead_cycles : float;
  dram_read_bytes : int;
  dram_write_bytes : int;
  counts : Counts.t;
  instructions : int;
  level_accesses : (Hierarchy.level * int) list;
  bound : bound;
}

(* Port-model issue time for one thread: each class is priced with its
   reciprocal throughput and binned onto the port that executes it; the
   thread is also limited by the front-end issue width. *)
let issue_time (m : Machine.t) counts ~thread =
  let c cls = float_of_int (Counts.thread_count counts ~thread cls) in
  let cost cls = m.issue_cost cls in
  let alu = (c Salu *. cost Salu) +. (c Valu *. cost Valu) +. (c Vmask *. cost Vmask) in
  let fp =
    (c Sfp *. cost Sfp) +. (c Vfp *. cost Vfp)
    +. (c Sdivsqrt *. cost Sdivsqrt)
    +. (c Vdivsqrt *. cost Vdivsqrt)
    +. (c Smath *. cost Smath) +. (c Vmath *. cost Vmath)
    +. (c Vshuf *. cost Vshuf)
  in
  let mem =
    (c Sload *. cost Sload) +. (c Sstore *. cost Sstore)
    +. (c Vload *. cost Vload) +. (c Vstore *. cost Vstore)
    +. ((c Vgather +. c Vscatter) *. Machine.gather_cost m)
  in
  let br = c Branch *. cost Branch in
  let slots = float_of_int (Counts.per_thread_total counts ~thread) in
  let front_end = slots /. float_of_int m.issue_width in
  List.fold_left Float.max front_end [ alu; fp; mem; br ]

let trace_level : Hierarchy.level -> Trace.level = function
  | L1 -> Trace.L1
  | L2 -> Trace.L2
  | LLC -> Trace.LLC
  | Dram -> Trace.Dram

let simulate ~machine ?(n_threads = 1) ?(runs = 1) ?prepare ?trace ?strategy ?fast_path prog
    mem =
  let m : Machine.t = machine in
  if n_threads > m.cores then
    invalid_arg
      (Fmt.str "Timing.simulate: %d threads on %d cores (%s)" n_threads m.cores m.name);
  if runs < 1 then invalid_arg "Timing.simulate: runs < 1";
  let hier = Hierarchy.create ?fast_path m in
  let stalls = Array.make n_threads 0. in
  let mlp = float_of_int m.mlp in
  let level_penalty (level : Hierarchy.level) =
    match level with
    | L1 -> 0.
    | L2 -> float_of_int m.l2.latency
    | LLC -> float_of_int m.llc.latency
    | Dram -> float_of_int m.dram_latency
  in
  let dram_total () = Hierarchy.dram_read_bytes hier + Hierarchy.dram_write_bytes hier in
  (* The fast event sink is selected once on trace presence: the untraced
     (common) variant carries no dram-delta bookkeeping and no per-event
     option matches, so profiling costs nothing when it is off. With
     [~fast_path:false] the original sink — one closure matching [trace]
     per event — is used instead, keeping the baseline configuration's
     costs faithful to the pre-fast-path simulator. *)
  let reference_sink (e : Event.t) =
    let core = e.thread mod m.cores in
    let write = e.kind = Event.Write in
    let dram_before = match trace with None -> 0 | Some _ -> dram_total () in
    let r = Hierarchy.access hier ~core ~addr:e.addr ~bytes:e.bytes ~write ~nt:e.nt in
    let stall =
      if r.covered then 0.
      else begin
        let p = level_penalty r.level in
        let s = if e.chain then p else p /. mlp in
        stalls.(e.thread) <- stalls.(e.thread) +. s;
        s
      end
    in
    match trace with
    | None -> ()
    | Some f ->
        f
          (Trace.Access
             { thread = e.thread; level = trace_level r.level; covered = r.covered;
               stall; bytes = e.bytes; write; dram_bytes = dram_total () - dram_before })
  in
  let sink =
    if fast_path = Some false then reference_sink
    else
      match trace with
      | None ->
          fun (e : Event.t) ->
          let core = e.thread in (* n_threads <= m.cores is enforced above *)
          let write = match e.kind with Event.Write -> true | Event.Read -> false in
          let r = Hierarchy.access hier ~core ~addr:e.addr ~bytes:e.bytes ~write ~nt:e.nt in
          if not r.covered then begin
            let p = level_penalty r.level in
            let s = if e.chain then p else p /. mlp in
            stalls.(e.thread) <- stalls.(e.thread) +. s
          end
      | Some f ->
          fun (e : Event.t) ->
          let core = e.thread in (* n_threads <= m.cores is enforced above *)
          let write = match e.kind with Event.Write -> true | Event.Read -> false in
          let dram_before = dram_total () in
          let r = Hierarchy.access hier ~core ~addr:e.addr ~bytes:e.bytes ~write ~nt:e.nt in
          let stall =
            if r.covered then 0.
            else begin
              let p = level_penalty r.level in
              let s = if e.chain then p else p /. mlp in
              stalls.(e.thread) <- stalls.(e.thread) +. s;
              s
            end
          in
          f
            (Trace.Access
               { thread = e.thread; level = trace_level r.level; covered = r.covered;
                 stall; bytes = e.bytes; write; dram_bytes = dram_total () - dram_before })
  in
  let counts = Counts.create n_threads in
  let instructions = ref 0 in
  (* an absent strategy means "whatever backend the process selected"
     (Interp.default_strategy, steered by the CLI --backend flag), not
     Interp.run's own bare default *)
  let strategy =
    match strategy with Some s -> s | None -> Interp.default_strategy ()
  in
  (* one session for all launches: decode/optimize/compile run once,
     each loop iteration is a bare launch *)
  let launch =
    Interp.session ~n_threads ~width:m.simd_width ~sink ?trace ~strategy prog
      mem
  in
  for run = 0 to runs - 1 do
    (match prepare with Some f -> f run mem | None -> ());
    let r = launch () in
    Counts.merge_into ~dst:counts r.counts;
    instructions := !instructions + r.instructions
  done;
  let instructions = !instructions in
  let dram_before_drain = match trace with None -> 0 | Some _ -> dram_total () in
  Hierarchy.drain_writebacks hier;
  (match trace with
  | None -> ()
  | Some f -> f (Trace.Drain { dram_bytes = dram_total () - dram_before_drain }));
  let issue = Array.init n_threads (fun t -> issue_time m counts ~thread:t) in
  let thread_time t = issue.(t) +. stalls.(t) in
  let slowest = ref 0 in
  for t = 1 to n_threads - 1 do
    if thread_time t > thread_time !slowest then slowest := t
  done;
  let chip = thread_time !slowest in
  let dram_bytes = Hierarchy.dram_read_bytes hier + Hierarchy.dram_write_bytes hier in
  let dram_time = float_of_int dram_bytes /. Machine.bytes_per_cycle m in
  let overhead =
    if n_threads > 1 then
      float_of_int m.spawn_cycles
      +. (float_of_int (runs * List.length prog.Isa.phases) *. float_of_int m.barrier_cycles)
    else 0.
  in
  let cycles = Float.max chip dram_time +. overhead in
  let bound =
    if dram_time >= chip then Bandwidth
    else if stalls.(!slowest) > issue.(!slowest) then Latency
    else Compute
  in
  {
    machine = m;
    n_threads;
    cycles;
    seconds = cycles /. (m.freq_ghz *. 1e9);
    issue_cycles = issue.(!slowest);
    stall_cycles = stalls.(!slowest);
    dram_time;
    overhead_cycles = overhead;
    dram_read_bytes = Hierarchy.dram_read_bytes hier;
    dram_write_bytes = Hierarchy.dram_write_bytes hier;
    counts;
    instructions;
    level_accesses =
      [ (Hierarchy.L1, Hierarchy.accesses hier L1);
        (Hierarchy.L2, Hierarchy.accesses hier L2);
        (Hierarchy.LLC, Hierarchy.accesses hier LLC);
        (Hierarchy.Dram, Hierarchy.accesses hier Dram) ];
    bound;
  }

let flops r =
  let w = float_of_int r.machine.simd_width in
  let c cls = float_of_int (Counts.total r.counts cls) in
  (* Scalar FP classes contribute one op each; vector classes one per lane.
     FMA is not separable from the class counts, so kernels that use it are
     counted through the Vfp/Sfp classes (one op per instruction) — a
     conservative undercount documented in DESIGN.md. *)
  c Sfp +. c Sdivsqrt +. c Smath
  +. ((c Vfp +. c Vdivsqrt +. c Vmath) *. w)

let operational_intensity r =
  let bytes = r.dram_read_bytes + r.dram_write_bytes in
  if bytes = 0 then invalid_arg "Timing.operational_intensity: no DRAM traffic";
  flops r /. float_of_int bytes

let speedup ~baseline r = baseline.seconds /. r.seconds

let bound_name = function
  | Compute -> "compute"
  | Bandwidth -> "bandwidth"
  | Latency -> "latency"

let pp_summary ppf r =
  Fmt.pf ppf
    "%s, %d threads: %.3g Mcycles (%.3g ms) [issue %.3g, stall %.3g, dram %.3g], %s-bound, %d B DRAM"
    r.machine.name r.n_threads (r.cycles /. 1e6) (r.seconds *. 1e3)
    (r.issue_cycles /. 1e6) (r.stall_cycles /. 1e6) (r.dram_time /. 1e6)
    (bound_name r.bound)
    (r.dram_read_bytes + r.dram_write_bytes)
