(** Per-core hardware stride prefetcher model.

    The detector tracks a small number of access streams at cache-line
    granularity. Once a stream has shown the same line stride twice, further
    accesses that continue the stream are reported as [covered]: the timing
    model then hides their miss latency (the prefetcher fetched them ahead
    of use) while the cache simulation still accounts for their DRAM
    traffic. This is the standard behaviour of the L2 streamer on the
    paper's machines: streaming code becomes bandwidth-bound, not
    latency-bound. *)

type t

val create : ?fast_path:bool -> streams:int -> unit -> t
(** [streams] is the table capacity (typically 16). [fast_path] (default
    [true]) selects a hand-rolled early-exit table scan over the closure
    based reference walk; both produce identical training decisions, the
    reference scan exists as the honest pre-optimization baseline for the
    self-benchmark ({!Hierarchy.create} forwards its own [?fast_path]). *)

val observe : t -> line_addr:int -> bool
(** Feed one access; returns [true] if the access was covered by an
    established stream. Also trains the table. *)

val reset : t -> unit
