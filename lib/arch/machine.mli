(** Machine descriptions: the parameter set of the timing model, plus
    presets calibrated to the published specifications of the four machines
    the paper measures (Core 2 Quad "Kentsfield", Core i7 "Nehalem",
    Core i7 X980 "Westmere", Knights Ferry MIC) and hypothetical future
    scalings. *)

type cache_cfg = {
  size_bytes : int;
  assoc : int;
  line_bytes : int;
  latency : int;  (** load-to-use latency in core cycles *)
}

type t = {
  name : string;
  freq_ghz : float;
  cores : int;
  simd_width : int;  (** 32-bit lanes per vector register *)
  issue_width : int;  (** max instructions issued per cycle *)
  fma_native : bool;  (** fused multiply-add available to codegen *)
  gather_native : bool;  (** hardware gather/scatter *)
  prefetch : bool;  (** hardware stride prefetcher enabled *)
  mlp : int;  (** outstanding misses overlapped for independent loads *)
  l1 : cache_cfg;
  l2 : cache_cfg;
  llc : cache_cfg;  (** shared across cores *)
  dram_latency : int;  (** full miss latency in cycles *)
  dram_bw_gbs : float;  (** sustained DRAM bandwidth, GB/s, chip-wide *)
  issue_cost : Ninja_vm.Isa.op_class -> float;
      (** reciprocal throughput in cycles for one instruction of the class;
          gather/scatter cost additionally depends on [gather_native] and
          [simd_width] (see {!gather_cost}) *)
  barrier_cycles : int;  (** cost of one parallel-phase barrier *)
  spawn_cycles : int;  (** one-time cost of entering threaded execution *)
}

val gather_cost : t -> float
(** Issue cost of one vector gather (or scatter): cheap when
    [gather_native], otherwise priced as a scalar load+insert sequence. *)

val peak_flops_per_cycle : t -> use_simd:bool -> float
(** Peak single-precision FLOP/cycle chip-wide (for rooflines): one FP pipe
    per core, doubled by FMA, widened by SIMD when [use_simd]. *)

val bytes_per_cycle : t -> float
(** Sustained DRAM bandwidth expressed in bytes per core cycle. *)

(** {1 Paper machines} *)

val kentsfield : t
(** Core 2 Quad-era part: 4 cores, 4-wide SSE, FSB-limited bandwidth. *)

val nehalem : t
(** Core i7 (Nehalem): 4 cores, 4-wide SSE, integrated memory controller. *)

val westmere : t
(** Core i7 X980: 6 cores, 4-wide SSE — the paper's primary platform. *)

val knights_ferry : t
(** Intel MIC (Knights Ferry): 32 in-order cores at low frequency, 16-wide
    SIMD with native gather and FMA. *)

val paper_cpus : t list
(** [kentsfield; nehalem; westmere] — the CPU generation sequence. *)

(** {1 Derived machines} *)

val future : generation:int -> t
(** Hypothetical post-Westmere CPU: each generation doubles cores and SIMD
    width, with bandwidth growing slower than compute (the paper's premise
    for the gap growing if unaddressed). [generation] >= 1. *)

val with_gather : t -> bool -> t
(** Copy with native gather/scatter support toggled. *)

val with_prefetch : t -> bool -> t
(** Copy with the hardware prefetcher toggled. *)

val with_cores : t -> int -> t
(** Copy with a different core count. *)

val with_simd : t -> int -> t
(** Copy with a different SIMD width (lanes). *)

val with_name : t -> string -> t
(** Copy under a new name (the memo caches key on names — rename any
    modified machine). *)

val pp : t Fmt.t
(** One-line summary: name, cores, width, frequency, bandwidth. *)
