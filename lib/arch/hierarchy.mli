(** The chip's memory system: per-core L1/L2 with a stride prefetcher, a
    shared last-level cache, and DRAM traffic accounting. Consumes the
    interpreter's address stream; classifies each access by the deepest
    level it had to reach and whether an established prefetch stream covered
    it. *)

type t

type level = L1 | L2 | LLC | Dram

type result = {
  level : level;  (** deepest level reached by any line of the access *)
  covered : bool;  (** all missing lines were prefetch-covered *)
}

val create : ?fast_path:bool -> Machine.t -> t
(** A cold hierarchy shaped by the machine's cache configurations.

    @param fast_path forwarded to every {!Cache.create} (default [true]):
      enables the per-cache MRU fast-hit path. Results are bit-identical
      either way; [false] exists for differential testing. *)

val access :
  t -> core:int -> addr:int -> bytes:int -> write:bool -> nt:bool -> result
(** Route one access through core [core]'s private caches and the shared
    LLC. Non-temporal writes ([nt]) bypass the hierarchy entirely and count
    as DRAM write traffic. *)

val drain_writebacks : t -> unit
(** Count still-resident dirty lines as DRAM write traffic (end-of-run
    steady-state accounting). *)

val dram_read_bytes : t -> int
(** Bytes fetched from DRAM so far (line fills + uncached reads). *)

val dram_write_bytes : t -> int
(** Bytes written to DRAM so far (writebacks + non-temporal stores). *)

val accesses : t -> level -> int
(** Number of accesses whose deepest level was [level]. *)

val reset : t -> unit
(** Invalidate all caches and zero all traffic counters. *)

val level_name : level -> string
(** ["L1"], ["L2"], ["LLC"] or ["DRAM"]. *)
