type cfg = Machine.cache_cfg

(* Two interchangeable storage layouts, selected at [create] time:

   - the reference layout keeps per-way state in four parallel arrays
     (tags/valid/dirty/stamp) and walks a set twice on a miss — the
     original implementation, kept as the honest baseline the
     self-benchmark measures against;
   - the fast layout interleaves two words per way, [tag'; stamp], so one
     set probe touches a single contiguous block (a 16-way set is 256
     bytes instead of 4 scattered regions — the difference between one and
     many host-cache misses when simulating a multi-megabyte LLC), finds
     hit way, first invalid way and LRU victim in a single pass, and
     carries an MRU memo for same-line repeat hits. [tag'] is [-1] when
     the way is invalid, else [line_addr lsl 1 lor dirty].

   Both layouts implement identical LRU and victim selection (first
   invalid way, else first way with the minimal stamp) and produce
   identical hit/miss/eviction sequences. *)
type t = {
  cfg : cfg;
  n_sets : int;
  set_mask : int; (* n_sets - 1 when a power of two, else -1 *)
  (* reference layout: flat arrays indexed by set * assoc + way *)
  tags : int array;
  valid : bool array;
  dirty : bool array;
  stamp : int array; (* LRU timestamp *)
  (* fast layout: set * assoc * 2 + way * 2 -> tag', +1 -> stamp *)
  data : int array;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  (* MRU memo for the fast-hit path: the line and fast-layout index
     touched by the most recent access, or last_way = -1 when unknown.
     The most recently touched line cannot have been evicted since (it
     holds the newest LRU stamp), so a repeat access is an unconditional
     hit at that way. *)
  mutable last_line : int;
  mutable last_way : int;
  fast : bool;
}

type outcome = { hit : bool; evicted_dirty : int option }

(* Preallocated outcomes for the two no-eviction cases, so steady-state
   accesses allocate nothing. *)
let hit_clean = { hit = true; evicted_dirty = None }
let miss_clean = { hit = false; evicted_dirty = None }

let is_pow2 n = n > 0 && n land (n - 1) = 0

let create ?(fast_path = true) (cfg : cfg) =
  let lines = cfg.size_bytes / cfg.line_bytes in
  if lines < cfg.assoc then invalid_arg "Cache.create: fewer lines than ways";
  let n_sets = lines / cfg.assoc in
  (* set counts need not be powers of two (e.g. a 12 MiB LLC) *)
  if not (is_pow2 cfg.line_bytes) then invalid_arg "Cache.create: line size must be a power of two";
  let n = n_sets * cfg.assoc in
  {
    cfg;
    n_sets;
    set_mask = (if is_pow2 n_sets then n_sets - 1 else -1);
    tags = (if fast_path then [||] else Array.make n 0);
    valid = (if fast_path then [||] else Array.make n false);
    dirty = (if fast_path then [||] else Array.make n false);
    stamp = (if fast_path then [||] else Array.make n 0);
    data = (if fast_path then Array.make (n * 2) (-1) else [||]);
    clock = 0;
    hits = 0;
    misses = 0;
    last_line = 0;
    last_way = -1;
    fast = fast_path;
  }

let line_bytes t = t.cfg.line_bytes
let sets t = t.n_sets
let assoc t = t.cfg.assoc

(* The stored tag is the full line address (the set index bits are
   redundant but harmless, and eviction reporting stays trivial). *)
let set_of t line_addr = line_addr mod t.n_sets

let access_ref t ~line_addr ~write =
  t.clock <- t.clock + 1;
  let set = set_of t line_addr in
  let base = set * t.cfg.assoc in
  let found = ref (-1) in
  for w = 0 to t.cfg.assoc - 1 do
    let i = base + w in
    if t.valid.(i) && t.tags.(i) = line_addr then found := i
  done;
  if !found >= 0 then begin
    let i = !found in
    t.hits <- t.hits + 1;
    t.stamp.(i) <- t.clock;
    if write then t.dirty.(i) <- true;
    hit_clean
  end
  else begin
    t.misses <- t.misses + 1;
    (* victim: first invalid way, else LRU *)
    let victim = ref base in
    let best = ref max_int in
    (try
       for w = 0 to t.cfg.assoc - 1 do
         let i = base + w in
         if not t.valid.(i) then begin
           victim := i;
           raise Exit
         end;
         if t.stamp.(i) < !best then begin
           best := t.stamp.(i);
           victim := i
         end
       done
     with Exit -> ());
    let i = !victim in
    let evicted_dirty =
      if t.valid.(i) && t.dirty.(i) then Some t.tags.(i) else None
    in
    t.tags.(i) <- line_addr;
    t.valid.(i) <- true;
    t.dirty.(i) <- write;
    t.stamp.(i) <- t.clock;
    match evicted_dirty with
    | None -> miss_clean
    | Some _ -> { hit = false; evicted_dirty }
  end

let access_fast t ~line_addr ~write =
  t.clock <- t.clock + 1;
  let set =
    if t.set_mask >= 0 then line_addr land t.set_mask else line_addr mod t.n_sets
  in
  let assoc2 = t.cfg.assoc * 2 in
  let base = set * assoc2 in
  let d = t.data in
  (* Hit scan first, and only that: a line lives in at most one way, so
     the scan stops at the first match, and ORing the dirty bit into both
     sides makes one compare cover the tag test and the invalid (-1) test
     at once (line addresses are non-negative, so [tag' lor 1] of a valid
     way never equals -1). Victim selection is deferred to the miss path —
     the common case, an L1 hit, touches nothing else. *)
  let probe = (line_addr lsl 1) lor 1 in
  let found = ref (-1) in
  let i = ref base in
  let stop = base + assoc2 in
  while !found < 0 && !i < stop do
    if Array.unsafe_get d !i lor 1 = probe then found := !i;
    i := !i + 2
  done;
  if !found >= 0 then begin
    let i = !found in
    t.hits <- t.hits + 1;
    d.(i + 1) <- t.clock;
    if write then d.(i) <- d.(i) lor 1;
    t.last_line <- line_addr;
    t.last_way <- i;
    hit_clean
  end
  else begin
    t.misses <- t.misses + 1;
    (* victim: first invalid way, else first way with the minimal stamp *)
    let first_invalid = ref (-1) in
    let lru = ref (-1) in
    let best = ref max_int in
    let i = ref base in
    while !first_invalid < 0 && !i < stop do
      if Array.unsafe_get d !i = -1 then first_invalid := !i
      else begin
        let s = Array.unsafe_get d (!i + 1) in
        if s < !best then begin
          best := s;
          lru := !i
        end
      end;
      i := !i + 2
    done;
    let i = if !first_invalid >= 0 then !first_invalid else !lru in
    let tg = d.(i) in
    let evicted_dirty = if tg <> -1 && tg land 1 = 1 then Some (tg asr 1) else None in
    d.(i) <- (line_addr lsl 1) lor (if write then 1 else 0);
    d.(i + 1) <- t.clock;
    t.last_line <- line_addr;
    t.last_way <- i;
    match evicted_dirty with
    | None -> miss_clean
    | Some _ -> { hit = false; evicted_dirty }
  end

let access t ~line_addr ~write =
  if t.fast then
    if t.last_way >= 0 && t.last_line = line_addr then begin
      (* Same line as the previous access: hit at the memoized way, with
         exactly the general path's clock/stamp/dirty updates. *)
      t.clock <- t.clock + 1;
      t.hits <- t.hits + 1;
      let d = t.data in
      d.(t.last_way + 1) <- t.clock;
      if write then d.(t.last_way) <- d.(t.last_way) lor 1;
      hit_clean
    end
    else access_fast t ~line_addr ~write
  else access_ref t ~line_addr ~write

let probe t ~line_addr =
  if t.fast then begin
    let set =
      if t.set_mask >= 0 then line_addr land t.set_mask else line_addr mod t.n_sets
    in
    let assoc2 = t.cfg.assoc * 2 in
    let base = set * assoc2 in
    let found = ref false in
    let i = ref base in
    while !i < base + assoc2 do
      let tg = t.data.(!i) in
      if tg <> -1 && tg asr 1 = line_addr then found := true;
      i := !i + 2
    done;
    !found
  end
  else begin
    let set = set_of t line_addr in
    let base = set * t.cfg.assoc in
    let found = ref false in
    for w = 0 to t.cfg.assoc - 1 do
      let i = base + w in
      if t.valid.(i) && t.tags.(i) = line_addr then found := true
    done;
    !found
  end

let invalidate_all t =
  if t.fast then Array.fill t.data 0 (Array.length t.data) (-1)
  else begin
    Array.fill t.valid 0 (Array.length t.valid) false;
    Array.fill t.dirty 0 (Array.length t.dirty) false
  end;
  t.last_way <- -1

let stats_hits t = t.hits
let stats_misses t = t.misses

let dirty_lines t =
  let n = ref 0 in
  if t.fast then begin
    let d = t.data in
    let i = ref 0 in
    while !i < Array.length d do
      let tg = d.(!i) in
      if tg <> -1 && tg land 1 = 1 then incr n;
      i := !i + 2
    done
  end
  else
    for i = 0 to Array.length t.valid - 1 do
      if t.valid.(i) && t.dirty.(i) then incr n
    done;
  !n

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0
