type stream = {
  mutable last : int; (* last line address seen *)
  mutable stride : int; (* line stride; 0 = untrained *)
  mutable confidence : int;
  mutable tick : int; (* for LRU replacement *)
}

(* Two interchangeable layouts, selected at [create] time. The reference
   layout is one record per stream, scanned with a closure over an option
   ref — the original implementation, kept as the honest baseline for the
   self-benchmark. The fast layout packs the same four fields into one
   contiguous int array, 4 words per stream ([last; stride; confidence;
   tick]), scanned with an early-exit loop: with 32 streams the whole
   table is 1 KiB, so the scan every L1 miss pays stays in the host's L1
   instead of chasing 32 heap pointers and allocating option cells.
   Match selection (first stream in table order within [window]) and LRU
   tie-breaking (first minimal tick) are identical in both. *)
type t = {
  table : stream array;
  flat : int array;
  mutable clock : int;
  fast : bool;
}

let create ?(fast_path = true) ~streams () =
  if streams < 1 then invalid_arg "Prefetch.create: streams < 1";
  let flat =
    if fast_path then begin
      let d = Array.make (streams * 4) 0 in
      for k = 0 to streams - 1 do
        d.(k * 4) <- min_int
      done;
      d
    end
    else [||]
  in
  {
    table =
      (if fast_path then [||]
       else
         Array.init streams (fun _ ->
             { last = min_int; stride = 0; confidence = 0; tick = 0 }));
    flat;
    clock = 0;
    fast = fast_path;
  }

(* A stream matches if the access lands within a small window ahead of the
   stream head — real streamers tolerate slightly out-of-order accesses
   within a stream (e.g. the lines of one vector load). *)
let window = 8

let observe_ref t ~line_addr =
  t.clock <- t.clock + 1;
  let found = ref None in
  Array.iter
    (fun s ->
      if !found = None && s.last <> min_int && abs (line_addr - s.last) <= window then
        found := Some s)
    t.table;
  match !found with
  | Some s ->
      let delta = line_addr - s.last in
      let covered = s.confidence >= 2 && (delta = s.stride || delta = 0) in
      if delta = 0 then ()
      else if delta = s.stride then s.confidence <- min (s.confidence + 1) 8
      else begin
        s.stride <- delta;
        s.confidence <- 1
      end;
      s.last <- line_addr;
      s.tick <- t.clock;
      covered
  | None ->
      (* allocate: LRU entry *)
      let victim = ref t.table.(0) in
      Array.iter (fun s -> if s.tick < !victim.tick then victim := s) t.table;
      let s = !victim in
      s.last <- line_addr;
      s.stride <- 0;
      s.confidence <- 0;
      s.tick <- t.clock;
      false

let observe_fast t ~line_addr =
  t.clock <- t.clock + 1;
  let d = t.flat in
  let n = Array.length d in
  (* One fused pass: stop at the first matching stream (same selection as
     the reference's table-order scan); track the first-minimal-tick LRU
     victim along the way, so a miss — the whole table scanned — needs no
     second pass. The victim is only read when no stream matched, i.e.
     when the pass covered every stream. *)
  let idx = ref (-1) in
  let v = ref 0 and vt = ref max_int in
  let i = ref 0 in
  while !idx < 0 && !i < n do
    let last = Array.unsafe_get d !i in
    let dl = line_addr - last in
    let ad = if dl >= 0 then dl else -dl in
    if last <> min_int && ad <= window then idx := !i
    else begin
      let tk = Array.unsafe_get d (!i + 3) in
      if tk < !vt then begin
        v := !i;
        vt := tk
      end;
      i := !i + 4
    end
  done;
  if !idx >= 0 then begin
    let i = !idx in
    let delta = line_addr - d.(i) in
    let stride = d.(i + 1) and confidence = d.(i + 2) in
    let covered = confidence >= 2 && (delta = stride || delta = 0) in
    if delta = 0 then ()
    else if delta = stride then
      d.(i + 2) <- (if confidence + 1 > 8 then 8 else confidence + 1)
    else begin
      d.(i + 1) <- delta;
      d.(i + 2) <- 1
    end;
    d.(i) <- line_addr;
    d.(i + 3) <- t.clock;
    covered
  end
  else begin
    let i = !v in
    d.(i) <- line_addr;
    d.(i + 1) <- 0;
    d.(i + 2) <- 0;
    d.(i + 3) <- t.clock;
    false
  end

let observe t ~line_addr =
  if t.fast then observe_fast t ~line_addr else observe_ref t ~line_addr

let reset t =
  t.clock <- 0;
  Array.iter
    (fun s ->
      s.last <- min_int;
      s.stride <- 0;
      s.confidence <- 0;
      s.tick <- 0)
    t.table;
  let d = t.flat in
  let k = ref 0 in
  while !k < Array.length d do
    d.(!k) <- min_int;
    d.(!k + 1) <- 0;
    d.(!k + 2) <- 0;
    d.(!k + 3) <- 0;
    k := !k + 4
  done
