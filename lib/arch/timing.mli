(** The chip timing model: prices a program run on a {!Machine.t}.

    Trace-driven and cycle-approximate (see DESIGN.md): instruction issue is
    priced per operation class with a port model, memory accesses walk the
    simulated cache hierarchy, miss latency is discounted by memory-level
    parallelism unless the access is part of a dependent chain or covered by
    the prefetcher, and total time is bounded below by DRAM traffic divided
    by sustained bandwidth. *)

type bound = Compute | Bandwidth | Latency

type report = {
  machine : Machine.t;
  n_threads : int;
  cycles : float;  (** modeled execution time in core cycles *)
  seconds : float;
  issue_cycles : float;  (** slowest thread's issue-port time *)
  stall_cycles : float;  (** slowest thread's memory stall time *)
  dram_time : float;  (** chip-wide DRAM bandwidth bound, cycles *)
  overhead_cycles : float;  (** thread spawn + barriers *)
  dram_read_bytes : int;
  dram_write_bytes : int;
  counts : Ninja_vm.Counts.t;
  instructions : int;  (** dynamic instruction total *)
  level_accesses : (Hierarchy.level * int) list;
  bound : bound;  (** binding resource *)
}

val simulate :
  machine:Machine.t ->
  ?n_threads:int ->
  ?runs:int ->
  ?prepare:(int -> Ninja_vm.Memory.t -> unit) ->
  ?trace:Ninja_vm.Trace.sink ->
  ?strategy:Ninja_vm.Interp.strategy ->
  ?fast_path:bool ->
  Ninja_vm.Isa.program ->
  Ninja_vm.Memory.t ->
  report
(** Run [program] on [machine] with [n_threads] threads (default 1; must
    not exceed the machine's cores) and report modeled time. The memory is
    mutated exactly as by {!Ninja_vm.Interp.run}.

    [strategy] selects the interpreter dispatch (default: the
    process-wide {!Ninja_vm.Interp.default_strategy}, normally the
    compiled backend) and
    [fast_path] the cache-simulation fast-hit path (default on); both are
    pure performance knobs with bit-identical reports, exposed so the
    self-benchmark and differential tests can run the reference paths.

    [runs] (default 1) executes the program that many times against the same
    memory and cache state, summing the modeled time — this models repeated
    kernel launches (e.g. the passes of a bottom-up merge sort). [prepare]
    is called before each run with the run index, e.g. to update a scalar
    parameter cell between passes.

    [trace] receives the interpreter's profiling events plus, from this
    model, one {!Ninja_vm.Trace.event.Access} per memory access (cache
    level, prefetch coverage, stall cycles charged, DRAM traffic caused)
    and a final {!Ninja_vm.Trace.event.Drain} for the writeback drain.
    Passing it does not change any reported number. *)

val issue_time : Machine.t -> Ninja_vm.Counts.t -> thread:int -> float
(** Port-model issue time (cycles) for one thread's instruction counts:
    each class priced at its reciprocal throughput, binned onto ALU / FP /
    memory / branch ports, bounded below by front-end width. The profiler
    uses this to reprice event-derived counts exactly as [simulate] does. *)

val flops : report -> float
(** Arithmetic floating-point operations executed (FMA counts as two),
    derived from the instruction counts and the machine's vector width. *)

val operational_intensity : report -> float
(** FLOP per byte of DRAM traffic. Raises [Invalid_argument] when the run
    produced no DRAM traffic. *)

val speedup : baseline:report -> report -> float
(** Ratio of modeled seconds, baseline over subject: how much faster the
    subject is. Comparing across machines is meaningful (seconds, not
    cycles). *)

val bound_name : bound -> string
(** ["compute"], ["bandwidth"] or ["latency"]. *)

val pp_summary : report Fmt.t
(** Multi-line human-readable report (cycles, bound, traffic, counts). *)
