type level = L1 | L2 | LLC | Dram

type result = { level : level; covered : bool }

type core_caches = { l1 : Cache.t; l2 : Cache.t; pf : Prefetch.t }

type t = {
  machine : Machine.t;
  cores : core_caches array;
  llc : Cache.t;
  line_shift : int; (* log2 line_bytes: addr-to-line is a shift, not a division *)
  mutable dram_read : int;
  mutable dram_write : int;
  by_level : int array; (* accesses whose deepest level was L1/L2/LLC/DRAM *)
}

let level_index = function L1 -> 0 | L2 -> 1 | LLC -> 2 | Dram -> 3
let level_name = function L1 -> "L1" | L2 -> "L2" | LLC -> "LLC" | Dram -> "DRAM"

(* Results are immutable; preallocate the eight (level, covered)
   combinations so the per-access path allocates nothing. *)
let result_tbl =
  Array.init 8 (fun i ->
      let level = match i / 2 with 0 -> L1 | 1 -> L2 | 2 -> LLC | _ -> Dram in
      { level; covered = i land 1 = 1 })

let mk_result level covered =
  result_tbl.((level_index level * 2) + if covered then 1 else 0)

let create ?(fast_path = true) (m : Machine.t) =
  {
    machine = m;
    cores =
      Array.init m.cores (fun _ ->
          {
            l1 = Cache.create ~fast_path m.l1;
            l2 = Cache.create ~fast_path m.l2;
            pf = Prefetch.create ~fast_path ~streams:32 ();
          });
    llc = Cache.create ~fast_path m.llc;
    line_shift =
      (let s = ref 0 in
       while 1 lsl !s < m.l1.line_bytes do incr s done;
       !s);
    dram_read = 0;
    dram_write = 0;
    by_level = Array.make 4 0;
  }

let line_bytes t = t.machine.l1.line_bytes

(* One cache-line access. Returns [level_index * 2 + covered] — an
   immediate int rather than a tuple, so the per-line path allocates
   nothing. Write-back dirty state is propagated down at fill time so
   that LLC evictions of written lines generate DRAM write-back
   traffic. *)
let access_line t ~core ~line_addr ~write =
  let c = t.cores.(core) in
  let l1r = Cache.access c.l1 ~line_addr ~write in
  if l1r.hit then 0 (* L1; covered is reported separately for L1 hits *)
  else begin
    let covered =
      t.machine.prefetch && Prefetch.observe c.pf ~line_addr
    in
    let l2r = Cache.access c.l2 ~line_addr ~write in
    if l2r.hit then (if covered then 3 else 2)
    else begin
      let llcr = Cache.access t.llc ~line_addr ~write in
      (match llcr.evicted_dirty with
      | Some _ -> t.dram_write <- t.dram_write + line_bytes t
      | None -> ());
      if llcr.hit then (if covered then 5 else 4)
      else begin
        t.dram_read <- t.dram_read + line_bytes t;
        if covered then 7 else 6
      end
    end
  end

let access t ~core ~addr ~bytes ~write ~nt =
  if nt && write then begin
    (* streaming store: write-combining buffers send full lines to DRAM
       without reading them first *)
    t.dram_write <- t.dram_write + bytes;
    mk_result Dram true
  end
  else begin
    let sh = t.line_shift in
    let first = addr lsr sh and last = (addr + bytes - 1) lsr sh in
    if first = last then begin
      (* common case: the access touches one line — no spanning loop *)
      let code = access_line t ~core ~line_addr:first ~write in
      let li = code lsr 1 in
      t.by_level.(li) <- t.by_level.(li) + 1;
      (* an L1 hit is always "covered": no stall is charged for it *)
      result_tbl.(if li = 0 then 1 else code)
    end
    else begin
      let deepest = ref 0 in
      let all_covered = ref true in
      for line_addr = first to last do
        let code = access_line t ~core ~line_addr ~write in
        let li = code lsr 1 in
        if li > !deepest then deepest := li;
        if li <> 0 && code land 1 = 0 then all_covered := false
      done;
      let li = !deepest in
      let covered = li = 0 || !all_covered in
      t.by_level.(li) <- t.by_level.(li) + 1;
      result_tbl.((li * 2) + if covered then 1 else 0)
    end
  end

(* Steady-state accounting: dirty lines still resident at the end of a
   measurement will eventually be written back; drain them into the DRAM
   write counter. Dirty state is propagated to the LLC at fill time, so the
   LLC's dirty lines cover the private caches'. *)
let drain_writebacks t =
  t.dram_write <- t.dram_write + (Cache.dirty_lines t.llc * line_bytes t)

let dram_read_bytes t = t.dram_read
let dram_write_bytes t = t.dram_write
let accesses t level = t.by_level.(level_index level)

let reset t =
  Array.iter
    (fun c ->
      Cache.invalidate_all c.l1;
      Cache.invalidate_all c.l2;
      Cache.reset_stats c.l1;
      Cache.reset_stats c.l2;
      Prefetch.reset c.pf)
    t.cores;
  Cache.invalidate_all t.llc;
  Cache.reset_stats t.llc;
  t.dram_read <- 0;
  t.dram_write <- 0;
  Array.fill t.by_level 0 4 0
