(* Volume Rendering: per-pixel ray marching with front-to-back compositing
   and early ray termination — the suite's divergence-and-gather benchmark.

   The naive code walks each ray with a data-dependent [while] (terminate
   when opacity saturates), which cannot vectorize. The algorithmic change
   converts the walk to a fixed-trip loop with a guarding [if] (the paper's
   "ray packet" restructuring): the pixel loop then vectorizes with masked
   gathers, at the cost of marching every ray to the common step bound.
   Ninja code restores early exit per packet: it marches W rays together
   and breaks as soon as the whole packet saturates. *)

open Ninja_vm
module Machine = Ninja_arch.Machine

(* Shared ray setup: a tilted parallel projection through the volume. *)
let ray_setup =
  {|
    var px : int = p % w;
    var py : int = p / w;
    var fx : float = float(px) * float(nx - 8) / float(w) + 1.0;
    var fy : float = float(py) * float(ny - 8) / float(h) + 1.0;
    var fz : float = 1.0;
    var dx : float = 0.2 + 0.3 * float(px) / float(w);
    var dy : float = 0.1 + 0.2 * float(py) / float(h);
    var dz : float = 1.0;
|}

let sample_and_composite =
  {|
      var ix : int = int(fx);
      var iy : int = int(fy);
      var iz : int = int(fz);
      var s : float = vol[ix + nx * (iy + ny * iz)];
      var alpha : float = fminf(fmaxf(0.4 * s - 0.05, 0.0), 1.0);
      acc = acc + trans * alpha * s;
      trans = trans * (1.0 - alpha);
      fx = fx + dx;
      fy = fy + dy;
      fz = fz + dz;
|}

let naive_src =
  Fmt.str
    {|
kernel vr_naive(vol : float[], img : float[], w : int, h : int,
                nx : int, ny : int, nz : int, nsteps : int) {
  var p : int;
  pragma parallel
  for (p = 0; p < w * h; p = p + 1) {
%s
    var acc : float = 0.0;
    var trans : float = 1.0;
    var step : int = 0;
    while (step < nsteps && trans > 0.02) {
%s
      step = step + 1;
    }
    img[p] = acc;
  }
}
|}
    ray_setup sample_and_composite

(* Level-synchronous marching: one kernel launch advances every live ray by
   one step, with per-ray state held in arrays (the scalar-state-to-array
   restructuring that lets the pixel loop vectorize with masked gathers).
   The harness launches it [nsteps] times; ray setup is precomputed into
   the state arrays by the binding. *)
let opt_src =
  {|
kernel vr_step(vol : float[], fxa : float[], fya : float[], fza : float[],
               dxa : float[], dya : float[], acca : float[], transa : float[],
               npix : int, nx : int, ny : int) {
  var p : int;
  pragma parallel
  pragma simd
  for (p = 0; p < npix; p = p + 1) {
    var trans : float = transa[p];
    var ix : int = int(fxa[p]);
    var iy : int = int(fya[p]);
    var iz : int = int(fza[p]);
    var s : float = vol[ix + nx * (iy + ny * iz)];
    var alpha : float = fminf(fmaxf(0.4 * s - 0.05, 0.0), 1.0);
    if (trans > 0.02) {
      acca[p] = acca[p] + trans * alpha * s;
      transa[p] = trans * (1.0 - alpha);
      fxa[p] = fxa[p] + dxa[p];
      fya[p] = fya[p] + dya[p];
      fza[p] = fza[p] + 1.0;
    }
  }
}
|}

let reference ~vol ~w ~h ~nx ~ny ~nz ~nsteps =
  ignore nz;
  let img = Array.make (w * h) 0. in
  for p = 0 to (w * h) - 1 do
    let px = p mod w and py = p / w in
    let fx = ref (1.0 +. (float_of_int px *. float_of_int (nx - 8) /. float_of_int w)) in
    let fy = ref (1.0 +. (float_of_int py *. float_of_int (ny - 8) /. float_of_int h)) in
    let fz = ref 1.0 in
    let dx = 0.2 +. (0.3 *. float_of_int px /. float_of_int w) in
    let dy = 0.1 +. (0.2 *. float_of_int py /. float_of_int h) in
    let dz = 1.0 in
    let acc = ref 0. and trans = ref 1.0 in
    let step = ref 0 in
    while !step < nsteps && !trans > 0.02 do
      let ix = int_of_float !fx and iy = int_of_float !fy and iz = int_of_float !fz in
      let s = vol.(ix + (nx * (iy + (ny * iz)))) in
      let alpha = Float.min (Float.max ((0.4 *. s) -. 0.05) 0.) 1. in
      acc := !acc +. (!trans *. alpha *. s);
      trans := !trans *. (1. -. alpha);
      fx := !fx +. dx;
      fy := !fy +. dy;
      fz := !fz +. dz;
      incr step
    done;
    img.(p) <- !acc
  done;
  img

(* Ninja: W-ray packets with whole-packet early termination. *)
let ninja ~machine =
  let fma = machine.Machine.fma_native in
  let b = Builder.create ~name:"vr [ninja]" in
  let vol = Builder.buffer_f b "vol" in
  let img = Builder.buffer_f b "img" in
  let cells = [ "w"; "h"; "nx"; "ny"; "nz"; "nsteps" ] in
  let cell_map = List.map (fun n -> (n, Builder.param_cell_i b n)) cells in
  Builder.par_phase b (fun () ->
      let param n = Builder.load_param_i b (List.assoc n cell_map) in
      let w = param "w" in
      let h = param "h" in
      let nx = param "nx" in
      let ny = param "ny" in
      let _nz = param "nz" in
      let nsteps = param "nsteps" in
      let vw = Isa.vector_width_reg in
      let npix = Builder.ibin b Imul w h in
      let lo, hi = Builder.thread_range_aligned b ~n:npix in
      let fconstv x = Builder.vbroadcastf b (Builder.fconst b x) in
      let vone = fconstv 1.0 in
      let vzero = fconstv 0.0 in
      let thresh = fconstv 0.02 in
      let c04 = fconstv 0.4 in
      let c005 = fconstv 0.05 in
      let f_of i = let r = Builder.vf b in Builder.emit b (Vfofi (r, i)); r
      in
      Builder.for_ b ~lo ~hi ~step:vw (fun i ->
          let lanes = Builder.vi b in
          Builder.emit b (Viota lanes);
          let vp = Builder.vibin b Iadd (Builder.vbroadcasti b i) lanes in
          let vwv = Builder.vbroadcasti b w in
          let vpx = Builder.vibin b Imod vp vwv in
          let vpy = Builder.vibin b Idiv vp vwv in
          let fpx = f_of vpx and fpy = f_of vpy in
          let wf = Builder.vbroadcastf b (let r = Builder.sf b in Builder.emit b (Fofi (r, w)); r) in
          let hf = Builder.vbroadcastf b (let r = Builder.sf b in Builder.emit b (Fofi (r, h)); r) in
          let nx8 =
            let t = Builder.ibin b Isub nx (Builder.iconst b 8) in
            Builder.vbroadcastf b (let r = Builder.sf b in Builder.emit b (Fofi (r, t)); r)
          in
          let ny8 =
            let t = Builder.ibin b Isub ny (Builder.iconst b 8) in
            Builder.vbroadcastf b (let r = Builder.sf b in Builder.emit b (Fofi (r, t)); r)
          in
          let fx = Builder.vf b in
          Builder.emit b (Vmovf (fx, (let t = Builder.vfbin b Fmul fpx nx8 in
                                      let t = Builder.vfbin b Fdiv t wf in
                                      Builder.vfbin b Fadd t vone)));
          let fy = Builder.vf b in
          Builder.emit b (Vmovf (fy, (let t = Builder.vfbin b Fmul fpy ny8 in
                                      let t = Builder.vfbin b Fdiv t hf in
                                      Builder.vfbin b Fadd t vone)));
          let fz = Builder.vf b in
          Builder.emit b (Vmovf (fz, vone));
          let dx =
            let t = Builder.vfbin b Fmul (fconstv 0.3) (Builder.vfbin b Fdiv fpx wf) in
            Builder.vfbin b Fadd (fconstv 0.2) t
          in
          let dy =
            let t = Builder.vfbin b Fmul (fconstv 0.2) (Builder.vfbin b Fdiv fpy hf) in
            Builder.vfbin b Fadd (fconstv 0.1) t
          in
          let acc = Builder.vf b in
          Builder.emit b (Vmovf (acc, vzero));
          let trans = Builder.vf b in
          Builder.emit b (Vmovf (trans, vone));
          let step = Builder.si b in
          Builder.emit b (Imov (step, Builder.iconst b 0));
          let vnx = Builder.vbroadcasti b nx in
          let vny = Builder.vbroadcasti b ny in
          (* march until the whole packet saturates or steps run out *)
          Builder.while_ b
            ~cond:(fun () ->
              let live = Builder.vm b in
              Builder.emit b (Vfcmp (Cgt, live, trans, thresh));
              let any = Builder.si b in
              Builder.emit b (Many (any, live));
              let more = Builder.si b in
              Builder.emit b (Icmp (Clt, more, step, nsteps));
              let both = Builder.si b in
              Builder.emit b (Ibin (Iand, both, any, more));
              both)
            (fun () ->
              let live = Builder.vm b in
              Builder.emit b (Vfcmp (Cgt, live, trans, thresh));
              let ix = Builder.vi b in
              Builder.emit b (Vioff (ix, fx));
              let iy = Builder.vi b in
              Builder.emit b (Vioff (iy, fy));
              let iz = Builder.vi b in
              Builder.emit b (Vioff (iz, fz));
              let t = Builder.vibin b Imul vny iz in
              let t = Builder.vibin b Iadd t iy in
              let t = Builder.vibin b Imul vnx t in
              let idx = Builder.vibin b Iadd t ix in
              let s = Builder.vf b in
              Builder.emit b (Vgatherf { dst = s; buf = vol; idx; mask = Some live; chain = false });
              let alpha =
                let t = Builder.vmuladd b ~fma c04 s (Builder.vfunop b Fneg c005) in
                Builder.vfbin b Fmin (Builder.vfbin b Fmax t vzero) vone
              in
              let contrib = Builder.vfbin b Fmul (Builder.vfbin b Fmul trans alpha) s in
              let acc' = Builder.vfbin b Fadd acc contrib in
              Builder.emit b (Vselectf (acc, live, acc', acc));
              let trans' = Builder.vfbin b Fmul trans (Builder.vfbin b Fsub vone alpha) in
              Builder.emit b (Vselectf (trans, live, trans', trans));
              Builder.emit b (Vfbin (Fadd, fx, fx, dx));
              Builder.emit b (Vfbin (Fadd, fy, fy, dy));
              Builder.emit b (Vfbin (Fadd, fz, fz, vone));
              Builder.emit b (Ibin (Iadd, step, step, Builder.iconst b 1)));
          Builder.emit b (Vstoref { buf = img; idx = i; src = acc; mask = None })));
  Builder.finish b

type dataset = {
  w : int;
  h : int;
  nx : int;
  ny : int;
  nz : int;
  nsteps : int;
  vol : float array;
  expected : float array;
}

let dataset ~scale =
  let w = 32 * scale and h = 16 * scale in
  let nx = 64 and ny = 64 in
  let nsteps = 48 in
  let nz = nsteps + 4 in
  let vol = Ninja_workloads.Gen.grid3d ~seed:91 ~nx ~ny ~nz in
  (* normalize the field into [0, 1.2] so opacities are sensible *)
  let vol = Array.map (fun x -> Float.min 1.2 (Float.max 0. (0.4 *. (x +. 1.2))) ) vol in
  { w; h; nx; ny; nz; nsteps; vol;
    expected = reference ~vol ~w ~h ~nx ~ny ~nz ~nsteps }

let bind d () =
  [ ("vol", Driver.Farr d.vol);
    ("img", Driver.Farr (Array.make (d.w * d.h) 0.));
    ("w", Driver.Iscalar d.w);
    ("h", Driver.Iscalar d.h);
    ("nx", Driver.Iscalar d.nx);
    ("ny", Driver.Iscalar d.ny);
    ("nz", Driver.Iscalar d.nz);
    ("nsteps", Driver.Iscalar d.nsteps) ]

let check d mem =
  Driver.check_floats ~rtol:2e-3 ~atol:1e-3 ~expected:d.expected (Driver.output_f mem "img")

(* ray state for the level-synchronous variant *)
let ray_state d =
  let npix = d.w * d.h in
  let fxa = Array.make npix 0. and fya = Array.make npix 0. in
  let fza = Array.make npix 1. in
  let dxa = Array.make npix 0. and dya = Array.make npix 0. in
  for p = 0 to npix - 1 do
    let px = p mod d.w and py = p / d.w in
    fxa.(p) <- 1.0 +. (float_of_int px *. float_of_int (d.nx - 8) /. float_of_int d.w);
    fya.(p) <- 1.0 +. (float_of_int py *. float_of_int (d.ny - 8) /. float_of_int d.h);
    dxa.(p) <- 0.2 +. (0.3 *. float_of_int px /. float_of_int d.w);
    dya.(p) <- 0.1 +. (0.2 *. float_of_int py /. float_of_int d.h)
  done;
  (fxa, fya, fza, dxa, dya)

let opt_step d : Driver.step =
  let opt_k = Common.parse_kernel opt_src in
  let npix = d.w * d.h in
  let bindings () =
    let fxa, fya, fza, dxa, dya = ray_state d in
    [ ("vol", Driver.Farr d.vol);
      ("fxa", Driver.Farr fxa); ("fya", Driver.Farr fya); ("fza", Driver.Farr fza);
      ("dxa", Driver.Farr dxa); ("dya", Driver.Farr dya);
      ("acca", Driver.Farr (Array.make npix 0.));
      ("transa", Driver.Farr (Array.make npix 1.));
      ("npix", Driver.Iscalar npix);
      ("nx", Driver.Iscalar d.nx);
      ("ny", Driver.Iscalar d.ny) ]
  in
  {
    Driver.step_name = "+algorithmic";
    parallel = true;
    make = (fun ~machine -> Common.compile_with Ninja_lang.Codegen.o2_vec_par ~machine opt_k);
    bindings;
    runs = (fun _ -> d.nsteps);
    prepare = (fun _ _ _ -> ());
    check =
      (fun mem ->
        Driver.check_floats ~rtol:2e-3 ~atol:1e-3 ~expected:d.expected
          (Driver.output_f mem "acca"));
  }

let benchmark : Driver.benchmark =
  {
    b_name = "VolumeRender";
    b_desc = "ray marching with early termination (divergence + gathers)";
    b_algo_note = "level-synchronous masked marching with ray state in arrays";
    b_sources = [ ("naive", naive_src); ("algo", opt_src) ];
    default_scale = 4;
    steps =
      (fun ~scale ->
        let d = dataset ~scale in
        let naive_k = Common.parse_kernel naive_src in
        let simple name flags parallel =
          Driver.simple_step ~name ~parallel
            ~make:(fun ~machine -> Common.compile_with flags ~machine naive_k)
            ~bindings:(bind d) ~check:(check d)
        in
        [ simple "naive serial" Ninja_lang.Codegen.o2 false;
          simple "+autovec" Ninja_lang.Codegen.o2_vec false;
          simple "+parallel" Ninja_lang.Codegen.o2_vec_par true;
          opt_step d;
          Driver.simple_step ~name:"ninja" ~parallel:true
            ~make:(fun ~machine -> ninja ~machine)
            ~bindings:(bind d) ~check:(check d) ]);
  }
