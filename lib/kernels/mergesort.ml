(* MergeSort (bottom-up, one kernel launch per pass).

   The merge inner loop carries a data-dependent control dependence, so no
   traditional-code restructuring lets the compiler vectorize it: the
   vectorizer reports the while-loop, and the paper's fix — SIMD merge
   networks — is intrinsics-level Ninja code by nature. The ladder therefore
   keeps the same source for "+algorithmic" (documented in T2), and the
   Ninja implementation merges W-wide blocks through an in-register bitonic
   merge network (with an in-register bitonic sort pass to build the initial
   W-element runs). Thread scaling also collapses in the last passes when
   there are fewer run pairs than cores — visible in the results, as in the
   paper. *)

open Ninja_vm
module Machine = Ninja_arch.Machine

(* One merge pass: merge sorted runs of length [width] from [a] into [b],
   then copy back (so that every pass reads from [a]). *)
let naive_src =
  {|
kernel merge_pass(a : float[], b : float[], n : int, width : int) {
  var pair : int;
  var npairs : int = (n + 2 * width - 1) / (2 * width);
  pragma parallel
  for (pair = 0; pair < npairs; pair = pair + 1) {
    var lo : int = pair * 2 * width;
    var mid : int = lo + width;
    var hi : int = lo + 2 * width;
    if (mid > n) { mid = n; }
    if (hi > n) { hi = n; }
    var i : int = lo;
    var j : int = mid;
    var k : int = lo;
    while (i < mid && j < hi) {
      var x : float = a[i];
      var y : float = a[j];
      if (x <= y) {
        b[k] = x;
        i = i + 1;
      } else {
        b[k] = y;
        j = j + 1;
      }
      k = k + 1;
    }
    while (i < mid) {
      b[k] = a[i];
      i = i + 1;
      k = k + 1;
    }
    while (j < hi) {
      b[k] = a[j];
      j = j + 1;
      k = k + 1;
    }
    var t : int;
    for (t = lo; t < hi; t = t + 1) {
      a[t] = b[t];
    }
  }
}
|}

let reference input =
  let out = Array.copy input in
  Array.sort Float.compare out;
  out

(* ------------------------------------------------------------------ *)
(* Ninja: in-register bitonic sort + W-wide bitonic merge network       *)

(* Compare-exchange stage at distance [j]: every lane takes min or max of
   (itself, lane xor j) according to [take_min]. *)
let stage b v ~j ~take_min ~w =
  let partner = Builder.vf b in
  Builder.emit b (Vpermutef (partner, v, Array.init w (fun p -> p lxor j)));
  let mn = Builder.vfbin b Fmin v partner in
  let mx = Builder.vfbin b Fmax v partner in
  let m = Builder.vm b in
  Builder.emit b (Mpattern (m, take_min));
  Builder.emit b (Vselectf (v, m, mn, mx))

(* Full ascending bitonic sort of the W lanes of [v] (in place). *)
let sort_in_register b v ~w =
  let k = ref 2 in
  while !k <= w do
    let j = ref (!k / 2) in
    while !j >= 1 do
      let take_min =
        Array.init w (fun p -> (p land !j = 0) = (p land !k = 0))
      in
      stage b v ~j:!j ~take_min ~w;
      j := !j / 2
    done;
    k := !k * 2
  done

(* Cleanup of a W-lane bitonic sequence into ascending order (in place). *)
let bitonic_cleanup b v ~w =
  let j = ref (w / 2) in
  while !j >= 1 do
    stage b v ~j:!j ~take_min:(Array.init w (fun p -> p land !j = 0)) ~w;
    j := !j / 2
  done

(* Merge two ascending registers: [lo_dst] <- the W smallest, [hi_dst] <-
   the W largest (both ascending). *)
let bitonic_merge b ~l ~h ~lo_dst ~hi_dst ~w =
  let rev = Builder.vf b in
  Builder.emit b (Vpermutef (rev, h, Array.init w (fun p -> w - 1 - p)));
  let mn = Builder.vfbin b Fmin l rev in
  let mx = Builder.vfbin b Fmax l rev in
  Builder.emit b (Vmovf (lo_dst, mn));
  Builder.emit b (Vmovf (hi_dst, mx));
  bitonic_cleanup b lo_dst ~w;
  bitonic_cleanup b hi_dst ~w

let ninja ~machine =
  let w = machine.Machine.simd_width in
  let b = Builder.create ~name:"mergesort [ninja]" in
  let ba = Builder.buffer_f b "a" in
  let bb = Builder.buffer_f b "b" in
  let n_cell = Builder.param_cell_i b "n" in
  let width_cell = Builder.param_cell_i b "width" in
  Builder.par_phase b (fun () ->
      let n = Builder.load_param_i b n_cell in
      let width = Builder.load_param_i b width_cell in
      let wreg = Isa.vector_width_reg in
      let zero = Builder.iconst b 0 in
      let one = Builder.iconst b 1 in
      let two = Builder.iconst b 2 in
      let vload buf idx = let r = Builder.vf b in
        Builder.emit b (Vloadf { dst = r; buf; idx; mask = None }); r in
      let is_sort_pass = Builder.si b in
      Builder.emit b (Icmp (Ceq, is_sort_pass, width, zero));
      Builder.if_ b ~cond:is_sort_pass
        (fun () ->
          (* pass 0: sort each W-element block in-register *)
          let lo, hi = Builder.thread_range_aligned b ~n in
          Builder.for_ b ~lo ~hi ~step:wreg (fun i ->
              let v = vload ba i in
              sort_in_register b v ~w;
              Builder.emit b (Vstoref { buf = ba; idx = i; src = v; mask = None })))
        ~else_:(fun () ->
          (* merge pass: runs of [width] (a multiple of W) from a into b *)
          let twow = Builder.ibin b Imul two width in
          let npairs = Builder.ibin b Idiv n twow in
          let plo, phi = Builder.thread_range b ~n:npairs in
          Builder.for_ b ~lo:plo ~hi:phi ~step:one (fun pair ->
              let lo = Builder.ibin b Imul pair twow in
              let mid = Builder.ibin b Iadd lo width in
              let hi = Builder.ibin b Iadd lo twow in
              let ia = Builder.si b in
              Builder.emit b (Imov (ia, lo));
              let ib = Builder.si b in
              Builder.emit b (Imov (ib, mid));
              let k = Builder.si b in
              Builder.emit b (Imov (k, lo));
              let rest = Builder.vf b in
              let out = Builder.vf b in
              let advance src_idx =
                (* load a block at [src_idx], bump it by W *)
                let v = vload ba src_idx in
                Builder.emit b (Ibin (Iadd, src_idx, src_idx, wreg));
                v
              in
              let emit_merge next =
                let lo_d = Builder.vf b in
                bitonic_merge b ~l:rest ~h:next ~lo_dst:lo_d ~hi_dst:rest ~w;
                Builder.emit b (Vmovf (out, lo_d));
                Builder.emit b (Vstoref { buf = bb; idx = k; src = out; mask = None });
                Builder.emit b (Ibin (Iadd, k, k, wreg))
              in
              (* prime with the first block of each run *)
              let va = advance ia in
              let vb = advance ib in
              let lo_d = Builder.vf b in
              bitonic_merge b ~l:va ~h:vb ~lo_dst:lo_d ~hi_dst:rest ~w;
              Builder.emit b (Vstoref { buf = bb; idx = k; src = lo_d; mask = None });
              Builder.emit b (Ibin (Iadd, k, k, wreg));
              (* main loop: take the block whose head is smaller *)
              Builder.while_ b
                ~cond:(fun () ->
                  let ca = Builder.si b in
                  Builder.emit b (Icmp (Clt, ca, ia, mid));
                  let cb = Builder.si b in
                  Builder.emit b (Icmp (Clt, cb, ib, hi));
                  Builder.ibin b Iand ca cb)
                (fun () ->
                  let ha = Builder.sf b in
                  Builder.emit b (Loadf { dst = ha; buf = ba; idx = ia; chain = false });
                  let hb = Builder.sf b in
                  Builder.emit b (Loadf { dst = hb; buf = ba; idx = ib; chain = false });
                  let take_a = Builder.si b in
                  Builder.emit b (Fcmp (Cle, take_a, ha, hb));
                  Builder.if_ b ~cond:take_a
                    (fun () -> emit_merge (advance ia))
                    ~else_:(fun () -> emit_merge (advance ib)));
              (* drain whichever run has blocks left *)
              Builder.while_ b
                ~cond:(fun () ->
                  let c = Builder.si b in
                  Builder.emit b (Icmp (Clt, c, ia, mid));
                  c)
                (fun () -> emit_merge (advance ia));
              Builder.while_ b
                ~cond:(fun () ->
                  let c = Builder.si b in
                  Builder.emit b (Icmp (Clt, c, ib, hi));
                  c)
                (fun () -> emit_merge (advance ib));
              Builder.emit b (Vstoref { buf = bb; idx = k; src = rest; mask = None });
              (* copy the merged range back into a *)
              Builder.for_ b ~lo ~hi ~step:wreg (fun t ->
                  let v = vload bb t in
                  Builder.emit b (Vstoref { buf = ba; idx = t; src = v; mask = None })))));
  Builder.finish b

type dataset = { n : int; input : float array; expected : float array }

let dataset ~scale =
  let n = 1024 * scale in
  if n land (n - 1) <> 0 then invalid_arg "Mergesort: scale must make n a power of two";
  let input = Ninja_workloads.Gen.floats ~seed:101 ~lo:0. ~hi:1e6 n in
  { n; input; expected = reference input }

let bind d () =
  [ ("a", Driver.Farr (Array.copy d.input));
    ("b", Driver.Farr (Array.make d.n 0.));
    ("n", Driver.Iscalar d.n);
    ("width", Driver.Iscalar 1) ]

let check d mem =
  Driver.check_floats ~rtol:0. ~atol:0. ~expected:d.expected (Driver.output_f mem "a")

let log2i n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n / 2) in
  go 0 n

let compiled_step d name flags =
  let k = Common.parse_kernel naive_src in
  {
    Driver.step_name = name;
    parallel = flags.Ninja_lang.Codegen.parallelize;
    make = (fun ~machine -> Common.compile_with flags ~machine k);
    bindings = bind d;
    runs = (fun _ -> log2i d.n);
    prepare = (fun _ run mem -> Driver.set_scalar_i mem "width" (1 lsl run));
    check = check d;
  }

let ninja_step d =
  {
    Driver.step_name = "ninja";
    parallel = true;
    make = (fun ~machine -> ninja ~machine);
    bindings = bind d;
    runs =
      (fun machine -> 1 + log2i (d.n / machine.Ninja_arch.Machine.simd_width));
    prepare =
      (fun machine run mem ->
        let w = machine.Ninja_arch.Machine.simd_width in
        Driver.set_scalar_i mem "width" (if run = 0 then 0 else w lsl (run - 1)));
    check = check d;
  }

let benchmark : Driver.benchmark =
  {
    b_name = "MergeSort";
    b_desc = "bottom-up merge sort (data-dependent control flow)";
    b_algo_note = "none expressible traditionally: SIMD merge networks are intrinsics-level";
    b_sources = [ ("naive", naive_src) ];
    default_scale = 16;
    steps =
      (fun ~scale ->
        let d = dataset ~scale in
        [ compiled_step d "naive serial" Ninja_lang.Codegen.o2;
          compiled_step d "+autovec" Ninja_lang.Codegen.o2_vec;
          compiled_step d "+parallel" Ninja_lang.Codegen.o2_vec_par;
          compiled_step d "+algorithmic" Ninja_lang.Codegen.o2_vec_par;
          ninja_step d ]);
  }
