(* Black-Scholes European option pricing — the suite's vector-math-bound
   benchmark.

   Naive code keeps option records in an array-of-structures layout
   (S,K,T,r,v interleaved), which forces the vectorizer into strided loads;
   the algorithmic change is the classic AoS -> SoA conversion, after which
   the loop vectorizes with unit strides. Ninja code is hand-vectorized SoA
   with FMA polynomial evaluation. *)

open Ninja_vm
module Machine = Ninja_arch.Machine

let fields = 5 (* S, K, T, r, v *)

(* The cumulative normal distribution via the Abramowitz-Stegun polynomial
   (the approximation every Black-Scholes kernel in the paper's era used). *)
let cnd x =
  let ax = Float.abs x in
  let k = 1. /. (1. +. (0.2316419 *. ax)) in
  let poly =
    k
    *. (0.319381530
       +. (k
          *. (-0.356563782
             +. (k *. (1.781477937 +. (k *. (-1.821255978 +. (k *. 1.330274429))))))))
  in
  let c = 1. -. (0.39894228 *. Float.exp (-0.5 *. ax *. ax) *. poly) in
  if x < 0. then 1. -. c else c

let price ~s ~k ~t ~r ~v =
  let sq = Float.sqrt t in
  let d1 = (Float.log (s /. k) +. ((r +. (v *. v *. 0.5)) *. t)) /. (v *. sq) in
  let d2 = d1 -. (v *. sq) in
  (s *. cnd d1) -. (k *. Float.exp (-.r *. t) *. cnd d2)

(* Cee text of the CND polynomial, shared by both variants (the language has
   no functions, so — like the naive C programmer — we inline it). [x] is
   the input variable name, [out] the result variable (must be declared). *)
let cnd_src ~x ~out =
  Fmt.str
    {|
    var ax_%s : float = fabsf(%s);
    var kk_%s : float = 1.0 / (1.0 + 0.2316419 * ax_%s);
    var poly_%s : float =
      kk_%s * (0.319381530 + kk_%s * (0.0 - 0.356563782 + kk_%s *
        (1.781477937 + kk_%s * (0.0 - 1.821255978 + kk_%s * 1.330274429))));
    %s = 1.0 - 0.39894228 * expf(0.0 - 0.5 * ax_%s * ax_%s) * poly_%s;
    if (%s < 0.0) { %s = 1.0 - %s; }
|}
    x x x x x x x x x x out x x x x out out

let body_src =
  Fmt.str
    {|
    var sqrt_t : float = sqrtf(t);
    var d1 : float = (logf(s / k) + (r + v * v * 0.5) * t) / (v * sqrt_t);
    var d2 : float = d1 - v * sqrt_t;
    var nd1 : float = 0.0;
    var nd2 : float = 0.0;
    %s
    %s
    out[i] = s * nd1 - k * expf(0.0 - r * t) * nd2;
|}
    (cnd_src ~x:"d1" ~out:"nd1")
    (cnd_src ~x:"d2" ~out:"nd2")

let naive_src =
  Fmt.str
    {|
kernel blackscholes_naive(data : float[], out : float[], n : int) {
  var i : int;
  pragma parallel
  for (i = 0; i < n; i = i + 1) {
    var s : float = data[i * 5];
    var k : float = data[i * 5 + 1];
    var t : float = data[i * 5 + 2];
    var r : float = data[i * 5 + 3];
    var v : float = data[i * 5 + 4];
    %s
  }
}
|}
    body_src

let opt_src =
  Fmt.str
    {|
kernel blackscholes_soa(sa : float[], ka : float[], ta : float[],
                        ra : float[], va : float[], out : float[], n : int) {
  var i : int;
  pragma parallel
  pragma simd
  for (i = 0; i < n; i = i + 1) {
    var s : float = sa[i];
    var k : float = ka[i];
    var t : float = ta[i];
    var r : float = ra[i];
    var v : float = va[i];
    %s
  }
}
|}
    body_src

(* ------------------------------------------------------------------ *)
(* Ninja implementation: hand-vectorized SoA                           *)

let ninja ~machine =
  let fma = machine.Machine.fma_native in
  let b = Builder.create ~name:"blackscholes [ninja]" in
  let sa = Builder.buffer_f b "sa" in
  let ka = Builder.buffer_f b "ka" in
  let ta = Builder.buffer_f b "ta" in
  let ra = Builder.buffer_f b "ra" in
  let va = Builder.buffer_f b "va" in
  let out = Builder.buffer_f b "out" in
  let n_cell = Builder.param_cell_i b "n" in
  Builder.par_phase b (fun () ->
      let n = Builder.load_param_i b n_cell in
      let w = Isa.vector_width_reg in
      let lo, hi = Builder.thread_range_aligned b ~n in
      (* constants hoisted out of the loop, Ninja style *)
      let const x = Builder.vbroadcastf b (Builder.fconst b x) in
      let one = const 1.0 in
      let zero = const 0.0 in
      let half = const 0.5 in
      let halfneg = const (-0.5) in
      let c0 = const 0.2316419 in
      let coef = const 0.39894228 in
      let a5 = const 1.330274429 in
      let a4 = const (-1.821255978) in
      let a3 = const 1.781477937 in
      let a2 = const (-0.356563782) in
      let a1 = const 0.319381530 in
      (* vectorized CND: c = 1 - phi(|x|)poly(|x|), then blend for x < 0 *)
      let vcnd x =
        let ax = Builder.vfunop b Fabs x in
        let kk =
          let denom = Builder.vmuladd b ~fma c0 ax one in
          Builder.vfbin b Fdiv one denom
        in
        let horner acc coeff = Builder.vmuladd b ~fma acc kk coeff in
        let p = horner a5 a4 in
        let p = horner p a3 in
        let p = horner p a2 in
        let p = horner p a1 in
        let poly = Builder.vfbin b Fmul kk p in
        let x2 = Builder.vfbin b Fmul ax ax in
        let e = Builder.vfunop b Fexp (Builder.vfbin b Fmul halfneg x2) in
        let prod = Builder.vfbin b Fmul (Builder.vfbin b Fmul coef e) poly in
        let c = Builder.vfbin b Fsub one prod in
        let neg = Builder.vm b in
        Builder.emit b (Vfcmp (Clt, neg, x, zero));
        let flipped = Builder.vfbin b Fsub one c in
        let r = Builder.vf b in
        Builder.emit b (Vselectf (r, neg, flipped, c));
        r
      in
      Builder.region b "option pricing loop" @@ fun () ->
      Builder.for_ b ~lo ~hi ~step:w (fun i ->
          let vload buf =
            let r = Builder.vf b in
            Builder.emit b (Vloadf { dst = r; buf; idx = i; mask = None });
            r
          in
          let s = vload sa and k = vload ka and t = vload ta in
          let r = vload ra and v = vload va in
          let sq = Builder.vfunop b Fsqrt t in
          let v2h = Builder.vfbin b Fmul (Builder.vfbin b Fmul v v) half in
          let drift = Builder.vfbin b Fadd r v2h in
          let lg = Builder.vfunop b Flog (Builder.vfbin b Fdiv s k) in
          let num = Builder.vmuladd b ~fma drift t lg in
          let vsq = Builder.vfbin b Fmul v sq in
          let d1 = Builder.vfbin b Fdiv num vsq in
          let d2 = Builder.vfbin b Fsub d1 vsq in
          let nd1 = vcnd d1 in
          let nd2 = vcnd d2 in
          let negrt = Builder.vfunop b Fneg (Builder.vfbin b Fmul r t) in
          let disc = Builder.vfunop b Fexp negrt in
          let call =
            Builder.vfbin b Fsub
              (Builder.vfbin b Fmul s nd1)
              (Builder.vfbin b Fmul (Builder.vfbin b Fmul k disc) nd2)
          in
          Builder.emit b (Vstoref { buf = out; idx = i; src = call; mask = None })));
  Builder.finish b

(* ------------------------------------------------------------------ *)
(* Dataset, bindings, checks                                           *)

type dataset = {
  n : int;
  s : float array;
  k : float array;
  t : float array;
  r : float array;
  v : float array;
  expected : float array;
}

let dataset ~scale =
  let n = 2048 * scale in
  let s = Ninja_workloads.Gen.floats ~seed:11 ~lo:5. ~hi:30. n in
  let k = Ninja_workloads.Gen.floats ~seed:12 ~lo:10. ~hi:25. n in
  let t = Ninja_workloads.Gen.floats ~seed:13 ~lo:0.25 ~hi:10. n in
  let r = Array.make n 0.02 in
  let v = Ninja_workloads.Gen.floats ~seed:14 ~lo:0.05 ~hi:0.65 n in
  let expected =
    Array.init n (fun i -> price ~s:s.(i) ~k:k.(i) ~t:t.(i) ~r:r.(i) ~v:v.(i))
  in
  { n; s; k; t; r; v; expected }

let bind_naive d () =
  let data = Ninja_workloads.Gen.interleave [ d.s; d.k; d.t; d.r; d.v ] in
  [ ("data", Driver.Farr data);
    ("out", Driver.Farr (Array.make d.n 0.));
    ("n", Driver.Iscalar d.n) ]

let bind_soa d () =
  [ ("sa", Driver.Farr (Array.copy d.s));
    ("ka", Driver.Farr (Array.copy d.k));
    ("ta", Driver.Farr (Array.copy d.t));
    ("ra", Driver.Farr (Array.copy d.r));
    ("va", Driver.Farr (Array.copy d.v));
    ("out", Driver.Farr (Array.make d.n 0.));
    ("n", Driver.Iscalar d.n) ]

let check d mem = Driver.check_floats ~rtol:1e-3 ~expected:d.expected (Driver.output_f mem "out")

let benchmark : Driver.benchmark =
  {
    b_name = "BlackScholes";
    b_desc = "European option pricing (vector transcendental math)";
    b_algo_note = "AoS -> SoA conversion of the option records";
    b_sources = [ ("naive", naive_src); ("algo", opt_src) ];
    default_scale = 8;
    steps =
      (fun ~scale ->
        let d = dataset ~scale in
        Common.ladder
          ~sources:{ naive = naive_src; opt = opt_src; ninja }
          ~bind_naive:(bind_naive d) ~bind_opt:(bind_soa d)
          ~bind_ninja:(bind_soa d) ~check_naive:(check d) ~check_opt:(check d)
          ~check_ninja:(check d));
  }
