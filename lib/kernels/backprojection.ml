(* BackProjection: 2-D filtered backprojection of sinogram data (CT
   reconstruction style) — gather-heavy compute.

   For every image pixel, the detector coordinate under each projection
   angle is a data-dependent function of the pixel position, so the inner
   angle loop vectorizes only through (CPU-emulated) gathers. The
   algorithmic change hoists the per-angle geometry into precomputed tables
   and asserts vectorization; the remaining gap is exactly the gather
   emulation cost, which hardware gather support (experiment F6, MIC)
   removes — the paper's "hardware support for programmability" case. *)

open Ninja_vm
module Machine = Ninja_arch.Machine

let naive_src =
  {|
kernel backproj_naive(proj : float[], ca : float[], sa : float[],
                      img : float[], w : int, h : int, na : int, nu : int) {
  var p : int;
  var a : int;
  pragma parallel
  for (p = 0; p < w * h; p = p + 1) {
    var px : float = float(p % w) - float(w) * 0.5;
    var py : float = float(p / w) - float(h) * 0.5;
    var acc : float = 0.0;
    for (a = 0; a < na; a = a + 1) {
      var u : float = px * ca[a] + py * sa[a] + float(nu) * 0.5;
      var iu : int = int(u);
      acc = acc + proj[a * nu + iu];
    }
    img[p] = acc;
  }
}
|}

(* Same structure with the angle loop asserted vectorizable; the geometry
   (px/py) hoists, and the subscript's data dependence becomes a gather. *)
let opt_src =
  {|
kernel backproj_simd(proj : float[], ca : float[], sa : float[],
                     img : float[], w : int, h : int, na : int, nu : int) {
  var p : int;
  var a : int;
  pragma parallel
  for (p = 0; p < w * h; p = p + 1) {
    var px : float = float(p % w) - float(w) * 0.5;
    var py : float = float(p / w) - float(h) * 0.5;
    var acc : float = 0.0;
    pragma simd
    for (a = 0; a < na; a = a + 1) {
      var u : float = px * ca[a] + py * sa[a] + float(nu) * 0.5;
      var iu : int = int(u);
      acc = acc + proj[a * nu + iu];
    }
    img[p] = acc;
  }
}
|}

let reference ~proj ~ca ~sa ~w ~h ~na ~nu =
  let img = Array.make (w * h) 0. in
  for p = 0 to (w * h) - 1 do
    let px = float_of_int (p mod w) -. (float_of_int w *. 0.5) in
    let py = float_of_int (p / w) -. (float_of_int h *. 0.5) in
    let acc = ref 0. in
    for a = 0 to na - 1 do
      let u = (px *. ca.(a)) +. (py *. sa.(a)) +. (float_of_int nu *. 0.5) in
      let iu = int_of_float u in
      acc := !acc +. proj.((a * nu) + iu)
    done;
    img.(p) <- !acc
  done;
  img

let ninja ~machine =
  let fma = machine.Machine.fma_native in
  let b = Builder.create ~name:"backproj [ninja]" in
  let proj = Builder.buffer_f b "proj" in
  let bca = Builder.buffer_f b "ca" in
  let bsa = Builder.buffer_f b "sa" in
  let img = Builder.buffer_f b "img" in
  let w_cell = Builder.param_cell_i b "w" in
  let h_cell = Builder.param_cell_i b "h" in
  let na_cell = Builder.param_cell_i b "na" in
  let nu_cell = Builder.param_cell_i b "nu" in
  Builder.par_phase b (fun () ->
      let w = Builder.load_param_i b w_cell in
      let h = Builder.load_param_i b h_cell in
      let na = Builder.load_param_i b na_cell in
      let nu = Builder.load_param_i b nu_cell in
      let vw = Isa.vector_width_reg in
      let npix = Builder.ibin b Imul w h in
      (* vectorize across PIXELS (unit-stride image stores), gathering from
         the sinogram; per-angle scalars broadcast in the angle loop *)
      let lo, hi = Builder.thread_range_aligned b ~n:npix in
      let one = Builder.iconst b 1 in
      let zero = Builder.iconst b 0 in
      let half = Builder.fconst b 0.5 in
      let wf = Builder.sf b in
      Builder.emit b (Fofi (wf, w));
      let hf = Builder.sf b in
      Builder.emit b (Fofi (hf, h));
      let nuf = Builder.sf b in
      Builder.emit b (Fofi (nuf, nu));
      let wc = Builder.fbin b Fmul wf half in
      let hc = Builder.fbin b Fmul hf half in
      let uc = Builder.fbin b Fmul nuf half in
      let vwc = Builder.vbroadcastf b wc in
      let vhc = Builder.vbroadcastf b hc in
      let vuc = Builder.vbroadcastf b uc in
      Builder.for_ b ~lo ~hi ~step:vw (fun i ->
          (* per-lane pixel coordinates *)
          let lanes = Builder.vi b in
          Builder.emit b (Viota lanes);
          let vbase = Builder.vbroadcasti b i in
          let vp = Builder.vibin b Iadd vbase lanes in
          let vwv = Builder.vbroadcasti b w in
          let vxi = Builder.vibin b Imod vp vwv in
          let vyi = Builder.vibin b Idiv vp vwv in
          let vpx0 = Builder.vf b in
          Builder.emit b (Vfofi (vpx0, vxi));
          let vpy0 = Builder.vf b in
          Builder.emit b (Vfofi (vpy0, vyi));
          let vpx = Builder.vfbin b Fsub vpx0 vwc in
          let vpy = Builder.vfbin b Fsub vpy0 vhc in
          let acc = Builder.vf b in
          Builder.emit b (Vbroadcastf (acc, Builder.fconst b 0.));
          Builder.for_ b ~lo:zero ~hi:na ~step:one (fun a ->
              let sload buf =
                let r = Builder.sf b in
                Builder.emit b (Loadf { dst = r; buf; idx = a; chain = false });
                Builder.vbroadcastf b r
              in
              let vca = sload bca and vsa = sload bsa in
              let u =
                let t = Builder.vmuladd b ~fma vpy vsa vuc in
                Builder.vmuladd b ~fma vpx vca t
              in
              let iu = Builder.vi b in
              Builder.emit b (Vioff (iu, u));
              let rowbase = Builder.ibin b Imul a nu in
              let vrow = Builder.vbroadcasti b rowbase in
              let idx = Builder.vibin b Iadd vrow iu in
              let s = Builder.vf b in
              Builder.emit b (Vgatherf { dst = s; buf = proj; idx; mask = None; chain = false });
              Builder.emit b (Vfbin (Fadd, acc, acc, s)));
          Builder.emit b (Vstoref { buf = img; idx = i; src = acc; mask = None })));
  Builder.finish b

type dataset = {
  w : int;
  h : int;
  na : int;
  nu : int;
  proj : float array;
  ca : float array;
  sa : float array;
  expected : float array;
}

let dataset ~scale =
  let w = 32 * scale and h = 16 * scale in
  let na = 64 in
  (* detector wide enough that every u lands in range *)
  let nu = 4 * (w + h) in
  let proj = Ninja_workloads.Gen.floats ~seed:81 ~lo:0. ~hi:1. (na * nu) in
  let ca = Array.init na (fun a -> Float.cos (Float.pi *. float_of_int a /. float_of_int na)) in
  let sa = Array.init na (fun a -> Float.sin (Float.pi *. float_of_int a /. float_of_int na)) in
  { w; h; na; nu; proj; ca; sa; expected = reference ~proj ~ca ~sa ~w ~h ~na ~nu }

let bind d () =
  [ ("proj", Driver.Farr d.proj);
    ("ca", Driver.Farr (Array.copy d.ca));
    ("sa", Driver.Farr (Array.copy d.sa));
    ("img", Driver.Farr (Array.make (d.w * d.h) 0.));
    ("w", Driver.Iscalar d.w);
    ("h", Driver.Iscalar d.h);
    ("na", Driver.Iscalar d.na);
    ("nu", Driver.Iscalar d.nu) ]

(* FMA contraction and packetized evaluation can flip the [int()]
   truncation of a knife-edge detector coordinate: allow a small fraction
   of pixels to differ. *)
let check d mem =
  Driver.check_floats_mostly ~rtol:1e-3 ~atol:1e-3 ~max_bad_frac:0.01 ~expected:d.expected
    (Driver.output_f mem "img")

let benchmark : Driver.benchmark =
  {
    b_name = "BackProjection";
    b_desc = "sinogram backprojection (gather-dominated compute)";
    b_algo_note = "precomputed geometry + asserted SIMD; relies on gather hardware";
    b_sources = [ ("naive", naive_src); ("algo", opt_src) ];
    default_scale = 4;
    steps =
      (fun ~scale ->
        let d = dataset ~scale in
        Common.ladder
          ~sources:{ naive = naive_src; opt = opt_src; ninja }
          ~bind_naive:(bind d) ~bind_opt:(bind d) ~bind_ninja:(bind d)
          ~check_naive:(check d) ~check_opt:(check d) ~check_ninja:(check d));
  }
