(* TreeSearch: batched lookups in a large binary search tree — the suite's
   memory-latency-bound benchmark.

   The naive code walks the tree pointer-chasing style: each level's load
   address depends on the previous level's comparison, so misses serialize
   (the compiler's taint analysis marks them as dependent chains) and the
   loop cannot vectorize at all. The algorithmic change is the paper's
   level-synchronous ("SIMD-across-queries") restructuring: one kernel
   launch advances every query by one level, which vectorizes into gathers
   and exposes memory-level parallelism across queries. Ninja code keeps the
   whole walk in one launch with per-packet gathers; on machines with
   hardware gather (MIC) it is dramatically cheaper. *)

open Ninja_vm
module Machine = Ninja_arch.Machine

let naive_src =
  {|
kernel treesearch_naive(tree : float[], queries : float[], result : int[],
                        nq : int, depth : int) {
  var q : int;
  var d : int;
  pragma parallel
  for (q = 0; q < nq; q = q + 1) {
    var node : int = 0;
    var key : float = queries[q];
    for (d = 0; d < depth; d = d + 1) {
      var kn : float = tree[node];
      if (key < kn) { node = 2 * node + 1; } else { node = 2 * node + 2; }
    }
    result[q] = node;
  }
}
|}

(* One level for every query; the harness launches this [depth] times. *)
let opt_src =
  {|
kernel treesearch_level(tree : float[], queries : float[], result : int[], nq : int) {
  var q : int;
  pragma parallel
  pragma simd
  for (q = 0; q < nq; q = q + 1) {
    var node : int = result[q];
    var key : float = queries[q];
    var kn : float = tree[node];
    var l : int = 2 * node + 1;
    var r : int = 2 * node + 2;
    if (key < kn) { node = l; } else { node = r; }
    result[q] = node;
  }
}
|}

let reference ~tree ~queries ~depth =
  Array.map
    (fun key ->
      let node = ref 0 in
      for _ = 1 to depth do
        node := if key < tree.(!node) then (2 * !node) + 1 else (2 * !node) + 2
      done;
      !node)
    queries

let ninja ~machine =
  ignore machine;
  let b = Builder.create ~name:"treesearch [ninja]" in
  let tree = Builder.buffer_f b "tree" in
  let queries = Builder.buffer_f b "queries" in
  let result = Builder.buffer_i b "result" in
  let nq_cell = Builder.param_cell_i b "nq" in
  let depth_cell = Builder.param_cell_i b "depth" in
  Builder.par_phase b (fun () ->
      let nq = Builder.load_param_i b nq_cell in
      let depth = Builder.load_param_i b depth_cell in
      let w = Isa.vector_width_reg in
      let lo, hi = Builder.thread_range_aligned b ~n:nq in
      let zero = Builder.iconst b 0 in
      let one = Builder.iconst b 1 in
      let two = Builder.vbroadcasti b (Builder.iconst b 2) in
      let vone = Builder.vbroadcasti b one in
      let vtwo_c = Builder.vbroadcasti b (Builder.iconst b 2) in
      Builder.for_ b ~lo ~hi ~step:w (fun i ->
          let keys = Builder.vf b in
          Builder.emit b (Vloadf { dst = keys; buf = queries; idx = i; mask = None });
          let nodes = Builder.vbroadcasti b zero in
          Builder.for_ b ~lo:zero ~hi:depth ~step:one (fun _d ->
              let kn = Builder.vf b in
              Builder.emit b
                (Vgatherf { dst = kn; buf = tree; idx = nodes; mask = None; chain = false });
              let go_left = Builder.vm b in
              Builder.emit b (Vfcmp (Clt, go_left, keys, kn));
              (* node = 2*node + (left ? 1 : 2) *)
              let doubled = Builder.vibin b Imul nodes two in
              let off = Builder.vi b in
              Builder.emit b (Vselecti (off, go_left, vone, vtwo_c));
              Builder.emit b (Vibin (Iadd, nodes, doubled, off)));
          Builder.emit b (Vstorei { buf = result; idx = i; src = nodes; mask = None })));
  Builder.finish b

type dataset = {
  depth : int;
  nq : int;
  tree : float array;
  queries : float array;
  expected : int array;
}

let dataset ~scale =
  (* tree depth grows with scale so that large scales spill out of the LLC;
     at the default scale the leaf levels live in DRAM. *)
  let depth = 14 + scale in
  let nq = 512 * scale in
  let tree = Ninja_workloads.Gen.bst_level_order ~seed:71 ~depth:(depth + 1) in
  let queries = Ninja_workloads.Gen.floats ~seed:72 ~lo:0. ~hi:1000. nq in
  { depth; nq; tree; queries; expected = reference ~tree ~queries ~depth }

let bind d () =
  [ ("tree", Driver.Farr d.tree) (* read-only: shared, not copied *);
    ("queries", Driver.Farr (Array.copy d.queries));
    ("result", Driver.Iarr (Array.make d.nq 0));
    ("nq", Driver.Iscalar d.nq);
    ("depth", Driver.Iscalar d.depth) ]

let check d mem = Driver.check_ints ~expected:d.expected (Driver.output_i mem "result")

(* The level-synchronous variant seeds [result] with the root and launches
   once per level. *)
let level_steps d : Driver.step list =
  let make flags ~machine = Common.compile_with flags ~machine (Common.parse_kernel opt_src) in
  let bindings () =
    [ ("tree", Driver.Farr d.tree);
      ("queries", Driver.Farr (Array.copy d.queries));
      ("result", Driver.Iarr (Array.make d.nq 0));
      ("nq", Driver.Iscalar d.nq) ]
  in
  [ { Driver.step_name = "+algorithmic";
      parallel = true;
      make = make Ninja_lang.Codegen.o2_vec_par;
      bindings;
      runs = (fun _ -> d.depth);
      prepare = (fun _ _ _ -> ());
      check = check d } ]

let benchmark : Driver.benchmark =
  {
    b_name = "TreeSearch";
    b_desc = "batched binary-tree lookups (memory latency bound)";
    b_algo_note = "level-synchronous SIMD-across-queries restructuring (gathers)";
    b_sources = [ ("naive", naive_src); ("algo", opt_src) ];
    default_scale = 8;
    steps =
      (fun ~scale ->
        let d = dataset ~scale in
        let naive_k = Common.parse_kernel naive_src in
        let simple name flags parallel =
          Driver.simple_step ~name ~parallel
            ~make:(fun ~machine -> Common.compile_with flags ~machine naive_k)
            ~bindings:(bind d) ~check:(check d)
        in
        [ simple "naive serial" Ninja_lang.Codegen.o2 false;
          simple "+autovec" Ninja_lang.Codegen.o2_vec false;
          simple "+parallel" Ninja_lang.Codegen.o2_vec_par true ]
        @ level_steps d
        @ [ Driver.simple_step ~name:"ninja" ~parallel:true
              ~make:(fun ~machine -> ninja ~machine)
              ~bindings:(bind d) ~check:(check d) ]);
  }
