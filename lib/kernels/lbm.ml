(* Lattice Boltzmann (D2Q9, BGK collision, pull streaming) — one time step
   over the interior of a 2D lattice.

   The naive code keeps the nine distributions per cell interleaved (AoS):
   every access in the vectorized cell loop then has stride 9, which the
   compiler must emulate with gather-priced sequences. The algorithmic
   change is AoS -> SoA (one array per direction), making every access unit
   stride; Ninja code additionally streams the output distributions with
   non-temporal stores. *)

open Ninja_vm
module Machine = Ninja_arch.Machine

(* D2Q9 directions and weights, index order: rest, E, W, N, S, NE, SW, SE, NW *)
let dirs = [| (0, 0); (1, 0); (-1, 0); (0, 1); (0, -1); (1, 1); (-1, -1); (1, -1); (-1, 1) |]

let weights =
  [| 4. /. 9.; 1. /. 9.; 1. /. 9.; 1. /. 9.; 1. /. 9.;
     1. /. 36.; 1. /. 36.; 1. /. 36.; 1. /. 36. |]

let q = Array.length dirs

(* Shared collision text: assumes f0..f8 (pulled distributions) are in
   scope, writes the post-collision values through [store k expr]. *)
let collision_src ~store =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "      var rho : float = f0 + f1 + f2 + f3 + f4 + f5 + f6 + f7 + f8;\n";
  Buffer.add_string buf
    "      var ux : float = (f1 - f2 + f5 - f6 + f7 - f8) / rho;\n";
  Buffer.add_string buf
    "      var uy : float = (f3 - f4 + f5 - f6 - f7 + f8) / rho;\n";
  Buffer.add_string buf "      var usq : float = 1.5 * (ux * ux + uy * uy);\n";
  Array.iteri
    (fun k (ex, ey) ->
      let cu =
        match (ex, ey) with
        | 0, 0 -> "0.0"
        | _ ->
            let term c v =
              if c = 0 then None
              else if c = 1 then Some v
              else Some ("(0.0 - " ^ v ^ ")")
            in
            let parts = List.filter_map Fun.id [ term ex "ux"; term ey "uy" ] in
            "3.0 * (" ^ String.concat " + " parts ^ ")"
      in
      Buffer.add_string buf (Fmt.str "      var cu%d : float = %s;\n" k cu);
      Buffer.add_string buf
        (Fmt.str
           "      var feq%d : float = %.9f * rho * (1.0 + cu%d + 0.5 * cu%d * cu%d - usq);\n"
           k weights.(k) k k k);
      Buffer.add_string buf (store k (Fmt.str "(f%d - omega * (f%d - feq%d))" k k k)))
    dirs;
  Buffer.contents buf

let naive_src =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    {|
kernel lbm_naive(f : float[], g : float[], w : int, h : int, omega : float) {
  var x : int;
  var y : int;
  pragma parallel
  for (y = 1; y < h - 1; y = y + 1) {
    for (x = 1; x < w - 1; x = x + 1) {
|};
  (* pull: incoming distribution k comes from the neighbor opposite to e_k *)
  Array.iteri
    (fun k (ex, ey) ->
      Buffer.add_string buf
        (Fmt.str "      var f%d : float = f[((y - %d) * w + (x - %d)) * 9 + %d];\n" k ey
           ex k))
    dirs;
  Buffer.add_string buf
    (collision_src ~store:(fun k e ->
         Fmt.str "      g[(y * w + x) * 9 + %d] = %s;\n" k e));
  Buffer.add_string buf "    }\n  }\n}\n";
  Buffer.contents buf

let opt_src =
  let buf = Buffer.create 4096 in
  let params =
    String.concat ", "
      (List.concat
         [ List.init q (fun k -> Fmt.str "f%da : float[]" k);
           List.init q (fun k -> Fmt.str "g%da : float[]" k) ])
  in
  Buffer.add_string buf
    (Fmt.str
       {|
kernel lbm_soa(%s, w : int, h : int, omega : float) {
  var x : int;
  var y : int;
  pragma parallel
  for (y = 1; y < h - 1; y = y + 1) {
    var row : int = y * w;
    pragma simd
    for (x = 1; x < w - 1; x = x + 1) {
|}
       params);
  Array.iteri
    (fun k (ex, ey) ->
      Buffer.add_string buf
        (Fmt.str "      var f%d : float = f%da[row - %d * w + x - %d];\n" k k ey ex))
    dirs;
  Buffer.add_string buf
    (collision_src ~store:(fun k e -> Fmt.str "      g%da[row + x] = %s;\n" k e));
  Buffer.add_string buf "    }\n  }\n}\n";
  Buffer.contents buf

let reference ~f ~w ~h ~omega =
  (* f is AoS: f.((y*w + x)*9 + k); returns the AoS post-step lattice *)
  let g = Array.copy f in
  for y = 1 to h - 2 do
    for x = 1 to w - 2 do
      let fk =
        Array.init q (fun k ->
            let ex, ey = dirs.(k) in
            f.((((y - ey) * w) + (x - ex)) * q + k))
      in
      let rho = Array.fold_left ( +. ) 0. fk in
      let ux = (fk.(1) -. fk.(2) +. fk.(5) -. fk.(6) +. fk.(7) -. fk.(8)) /. rho in
      let uy = (fk.(3) -. fk.(4) +. fk.(5) -. fk.(6) -. fk.(7) +. fk.(8)) /. rho in
      let usq = 1.5 *. ((ux *. ux) +. (uy *. uy)) in
      for k = 0 to q - 1 do
        let ex, ey = dirs.(k) in
        let cu = 3. *. ((float_of_int ex *. ux) +. (float_of_int ey *. uy)) in
        let feq = weights.(k) *. rho *. (1. +. cu +. (0.5 *. cu *. cu) -. usq) in
        g.((((y * w) + x) * q) + k) <- fk.(k) -. (omega *. (fk.(k) -. feq))
      done
    done
  done;
  g

let ninja ~machine =
  let fma = machine.Machine.fma_native in
  let b = Builder.create ~name:"lbm [ninja]" in
  let fbufs = Array.init q (fun k -> Builder.buffer_f b (Fmt.str "f%da" k)) in
  let gbufs = Array.init q (fun k -> Builder.buffer_f b (Fmt.str "g%da" k)) in
  let w_cell = Builder.param_cell_i b "w" in
  let h_cell = Builder.param_cell_i b "h" in
  let omega_cell = Builder.param_cell_f b "omega" in
  Builder.par_phase b (fun () ->
      let w = Builder.load_param_i b w_cell in
      let h = Builder.load_param_i b h_cell in
      let omega = Builder.vbroadcastf b (Builder.load_param_f b omega_cell) in
      let vw = Isa.vector_width_reg in
      let one = Builder.iconst b 1 in
      let const x = Builder.vbroadcastf b (Builder.fconst b x) in
      let one_f = const 1.0 and half = const 0.5 in
      let three = const 3.0 and c15 = const 1.5 in
      let vweights = Array.map (fun wk -> const wk) weights in
      let rows = Builder.ibin b Isub h (Builder.iconst b 2) in
      let ylo0, yhi0 = Builder.thread_range b ~n:rows in
      let ylo = Builder.ibin b Iadd ylo0 one in
      let yhi = Builder.ibin b Iadd yhi0 one in
      let w_m1 = Builder.ibin b Isub w one in
      Builder.for_ b ~lo:ylo ~hi:yhi ~step:one (fun y ->
          let row = Builder.ibin b Imul y w in
          Builder.for_ b ~lo:one ~hi:w_m1 ~step:vw (fun x ->
              let idx = Builder.ibin b Iadd row x in
              let fk =
                Array.init q (fun k ->
                    let ex, ey = dirs.(k) in
                    let off = -(ey * 1) in
                    (* neighbor index: (y - ey) * w + (x - ex) *)
                    let i =
                      let base =
                        if ey = 0 then idx
                        else begin
                          let d = Builder.ibin b Imul (Builder.iconst b off) w in
                          Builder.ibin b Iadd idx d
                        end
                      in
                      if ex = 0 then base
                      else Builder.ibin b Iadd base (Builder.iconst b (-ex))
                    in
                    let r = Builder.vf b in
                    Builder.emit b (Vloadf { dst = r; buf = fbufs.(k); idx = i; mask = None });
                    r)
              in
              let sum2 a c = Builder.vfbin b Fadd a c in
              let rho =
                Array.fold_left (fun acc r -> sum2 acc r) fk.(0) (Array.sub fk 1 (q - 1))
              in
              let sub a c = Builder.vfbin b Fsub a c in
              let ux_num = sub (sum2 (sum2 (sub fk.(1) fk.(2)) (sub fk.(5) fk.(6))) fk.(7)) fk.(8) in
              let uy_num = sum2 (sub (sub (sum2 (sub fk.(3) fk.(4)) fk.(5)) fk.(6)) fk.(7)) fk.(8) in
              let ux = Builder.vfbin b Fdiv ux_num rho in
              let uy = Builder.vfbin b Fdiv uy_num rho in
              let u2 =
                let xx = Builder.vfbin b Fmul ux ux in
                let t = Builder.vmuladd b ~fma uy uy xx in
                Builder.vfbin b Fmul c15 t
              in
              Array.iteri
                (fun k (ex, ey) ->
                  let cu =
                    match (ex, ey) with
                    | 0, 0 -> None
                    | _ ->
                        let eu =
                          match (ex, ey) with
                          | 1, 0 -> ux
                          | -1, 0 -> Builder.vfunop b Fneg ux
                          | 0, 1 -> uy
                          | 0, -1 -> Builder.vfunop b Fneg uy
                          | 1, 1 -> sum2 ux uy
                          | -1, -1 -> Builder.vfunop b Fneg (sum2 ux uy)
                          | 1, -1 -> sub ux uy
                          | -1, 1 -> sub uy ux
                          | _ -> assert false
                        in
                        Some (Builder.vfbin b Fmul three eu)
                  in
                  let inner =
                    match cu with
                    | None -> sub one_f u2
                    | Some cu ->
                        let t = sub (sum2 one_f cu) u2 in
                        let cu2h = Builder.vfbin b Fmul half (Builder.vfbin b Fmul cu cu) in
                        sum2 t cu2h
                  in
                  let feq = Builder.vfbin b Fmul (Builder.vfbin b Fmul vweights.(k) rho) inner in
                  let diff = sub fk.(k) feq in
                  let relaxed = sub fk.(k) (Builder.vfbin b Fmul omega diff) in
                  Builder.emit b (Vstoref_nt { buf = gbufs.(k); idx; src = relaxed }))
                dirs)));
  Builder.finish b

type dataset = {
  w : int;
  h : int;
  omega : float;
  f_aos : float array;
  expected_aos : float array;
}

let dataset ~scale =
  let w = (32 * scale) + 2 and h = 16 * scale in
  let n = w * h in
  let f_aos = Array.make (n * q) 0. in
  let rng = Ninja_util.Rng.create 51 in
  for c = 0 to n - 1 do
    for k = 0 to q - 1 do
      (* near-equilibrium initial state *)
      f_aos.((c * q) + k) <- weights.(k) *. (1. +. Ninja_util.Rng.float_range rng (-0.05) 0.05)
    done
  done;
  let omega = 1.2 in
  { w; h; omega; f_aos; expected_aos = reference ~f:f_aos ~w ~h ~omega }

let soa_of_aos aos ~cells k = Array.init cells (fun c -> aos.((c * q) + k))

let bind_naive d () =
  [ ("f", Driver.Farr (Array.copy d.f_aos));
    ("g", Driver.Farr (Array.copy d.f_aos));
    ("w", Driver.Iscalar d.w);
    ("h", Driver.Iscalar d.h);
    ("omega", Driver.Fscalar d.omega) ]

let bind_soa d () =
  let cells = d.w * d.h in
  List.concat
    [ List.init q (fun k -> (Fmt.str "f%da" k, Driver.Farr (soa_of_aos d.f_aos ~cells k)));
      List.init q (fun k -> (Fmt.str "g%da" k, Driver.Farr (soa_of_aos d.f_aos ~cells k)));
      [ ("w", Driver.Iscalar d.w); ("h", Driver.Iscalar d.h);
        ("omega", Driver.Fscalar d.omega) ] ]

let check_naive d mem =
  Driver.check_floats ~rtol:1e-3 ~atol:1e-5 ~expected:d.expected_aos (Driver.output_f mem "g")

let check_soa d mem =
  let cells = d.w * d.h in
  let rec go k =
    if k >= q then Ok ()
    else
      let expected = soa_of_aos d.expected_aos ~cells k in
      match
        Driver.check_floats ~rtol:1e-3 ~atol:1e-5 ~expected
          (Driver.output_f mem (Fmt.str "g%da" k))
      with
      | Ok () -> go (k + 1)
      | Error e -> Error (Fmt.str "direction %d: %s" k e)
  in
  go 0

let benchmark : Driver.benchmark =
  {
    b_name = "LBM";
    b_desc = "lattice Boltzmann D2Q9 time step (streaming + collision)";
    b_algo_note = "AoS -> SoA distributions; ninja adds streaming stores";
    b_sources = [ ("naive", naive_src); ("algo", opt_src) ];
    default_scale = 8;
    steps =
      (fun ~scale ->
        let d = dataset ~scale in
        Common.ladder
          ~sources:{ naive = naive_src; opt = opt_src; ninja }
          ~bind_naive:(bind_naive d) ~bind_opt:(bind_soa d) ~bind_ninja:(bind_soa d)
          ~check_naive:(check_naive d) ~check_opt:(check_soa d)
          ~check_ninja:(check_soa d));
  }
