(* 7-point 3D stencil sweep — bandwidth bound once parallel.

   The naive code funnels every neighbor access through a precomputed [idx]
   variable; because the subscripts are then not analyzable as affine in the
   x loop, the vectorizer rejects the stores and the loop stays scalar. The
   algorithmic change inlines the affine subscripts (and asserts
   independence), after which the sweep vectorizes with unit strides and
   becomes memory-bound. Ninja code additionally uses non-temporal stores to
   kill the write-allocate read traffic — the classic streaming-kernel
   optimization the paper credits for the last fraction. *)

open Ninja_vm
module Machine = Ninja_arch.Machine

let naive_src =
  {|
kernel stencil7_naive(a : float[], b : float[], nx : int, ny : int, nz : int,
                      c0 : float, c1 : float) {
  var x : int;
  var y : int;
  var z : int;
  pragma parallel
  for (y = 1; y < ny - 1; y = y + 1) {
    for (z = 1; z < nz - 1; z = z + 1) {
      for (x = 1; x < nx - 1; x = x + 1) {
        var idx : int = x + nx * (y + ny * z);
        b[idx] = c0 * a[idx]
               + c1 * (a[idx - 1] + a[idx + 1]
                     + a[idx - nx] + a[idx + nx]
                     + a[idx - nx * ny] + a[idx + nx * ny]);
      }
    }
  }
}
|}

let opt_src =
  {|
kernel stencil7_inlined(a : float[], b : float[], nx : int, ny : int, nz : int,
                        c0 : float, c1 : float) {
  var x : int;
  var y : int;
  var z : int;
  pragma parallel
  for (y = 1; y < ny - 1; y = y + 1) {
    for (z = 1; z < nz - 1; z = z + 1) {
      var row : int = nx * (y + ny * z);
      var plane : int = nx * ny;
      pragma simd
      for (x = 1; x < nx - 1; x = x + 1) {
        b[x + row] = c0 * a[x + row]
                   + c1 * (a[x + row - 1] + a[x + row + 1]
                         + a[x + row - nx] + a[x + row + nx]
                         + a[x + row - plane] + a[x + row + plane]);
      }
    }
  }
}
|}

let reference ~a ~nx ~ny ~nz ~c0 ~c1 =
  let b = Array.copy a in
  for z = 1 to nz - 2 do
    for y = 1 to ny - 2 do
      for x = 1 to nx - 2 do
        let idx = x + (nx * (y + (ny * z))) in
        b.(idx) <-
          (c0 *. a.(idx))
          +. (c1
             *. (a.(idx - 1) +. a.(idx + 1) +. a.(idx - nx) +. a.(idx + nx)
                +. a.(idx - (nx * ny))
                +. a.(idx + (nx * ny))))
      done
    done
  done;
  b

let ninja ~machine =
  let fma = machine.Machine.fma_native in
  let b = Builder.create ~name:"stencil7 [ninja]" in
  let ba = Builder.buffer_f b "a" in
  let bb = Builder.buffer_f b "b" in
  let nx_cell = Builder.param_cell_i b "nx" in
  let ny_cell = Builder.param_cell_i b "ny" in
  let nz_cell = Builder.param_cell_i b "nz" in
  let c0_cell = Builder.param_cell_f b "c0" in
  let c1_cell = Builder.param_cell_f b "c1" in
  Builder.par_phase b (fun () ->
      let nx = Builder.load_param_i b nx_cell in
      let ny = Builder.load_param_i b ny_cell in
      let nz = Builder.load_param_i b nz_cell in
      let vc0 = Builder.vbroadcastf b (Builder.load_param_f b c0_cell) in
      let vc1 = Builder.vbroadcastf b (Builder.load_param_f b c1_cell) in
      let w = Isa.vector_width_reg in
      let one = Builder.iconst b 1 in
      let plane = Builder.ibin b Imul nx ny in
      (* interior y rows chunked across threads *)
      let ny_m1 = Builder.ibin b Isub ny one in
      let rows = Builder.ibin b Isub ny_m1 one in
      let ylo0, yhi0 = Builder.thread_range b ~n:rows in
      let ylo = Builder.ibin b Iadd ylo0 one in
      let yhi = Builder.ibin b Iadd yhi0 one in
      let nz_m1 = Builder.ibin b Isub nz one in
      let nx_m1 = Builder.ibin b Isub nx one in
      Builder.for_ b ~lo:ylo ~hi:yhi ~step:one (fun y ->
          Builder.for_ b ~lo:one ~hi:nz_m1 ~step:one (fun z ->
              let zy = Builder.ibin b Imul ny z in
              let zy = Builder.ibin b Iadd zy y in
              let row = Builder.ibin b Imul nx zy in
              (* interior x in vector steps; nx is sized so the interior is
                 covered by whole vectors plus a tiny scalar fringe the
                 dataset pads away (nx - 2 divisible by the width) *)
              Builder.for_ b ~lo:one ~hi:nx_m1 ~step:w (fun x ->
                  let idx = Builder.ibin b Iadd x row in
                  let at off_reg =
                    let i = Builder.ibin b Iadd idx off_reg in
                    let r = Builder.vf b in
                    Builder.emit b (Vloadf { dst = r; buf = ba; idx = i; mask = None });
                    r
                  in
                  let center = Builder.vf b in
                  Builder.emit b (Vloadf { dst = center; buf = ba; idx; mask = None });
                  let m1 = Builder.iconst b (-1) in
                  let p1 = Builder.iconst b 1 in
                  let mnx = Builder.ibin b Isub (Builder.iconst b 0) nx in
                  let mpl = Builder.ibin b Isub (Builder.iconst b 0) plane in
                  let sum = Builder.vfbin b Fadd (at m1) (at p1) in
                  let sum = Builder.vfbin b Fadd sum (at mnx) in
                  let sum = Builder.vfbin b Fadd sum (at nx) in
                  let sum = Builder.vfbin b Fadd sum (at mpl) in
                  let sum = Builder.vfbin b Fadd sum (at plane) in
                  let res =
                    if fma then begin
                      let t = Builder.vfbin b Fmul vc1 sum in
                      Builder.vfma b vc0 center t
                    end
                    else begin
                      let t = Builder.vfbin b Fmul vc1 sum in
                      let c = Builder.vfbin b Fmul vc0 center in
                      Builder.vfbin b Fadd c t
                    end
                  in
                  Builder.emit b (Vstoref_nt { buf = bb; idx; src = res })))));
  Builder.finish b

type dataset = {
  nx : int;
  ny : int;
  nz : int;
  c0 : float;
  c1 : float;
  a : float array;
  expected : float array;
}

let dataset ~scale =
  (* nx - 2 is not vector-aligned in general; the ninja kernel's vector
     sweep over [1, nx-1) relies on masked/full vectors — we keep nx such
     that (nx - 2) mod 16 <= fringe handled by overrun into the padding
     column, so choose nx with nx - 2 a multiple of 16 plus the fringe. *)
  let nx = (64 * scale) + 2 in
  let ny = 32 * scale in
  let nz = 8 in
  let a = Ninja_workloads.Gen.grid3d ~seed:41 ~nx ~ny ~nz in
  let c0 = 0.5 and c1 = 1. /. 12. in
  { nx; ny; nz; c0; c1; a; expected = reference ~a ~nx ~ny ~nz ~c0 ~c1 }

let bind d () =
  [ ("a", Driver.Farr (Array.copy d.a));
    ("b", Driver.Farr (Array.copy d.a));
    ("nx", Driver.Iscalar d.nx);
    ("ny", Driver.Iscalar d.ny);
    ("nz", Driver.Iscalar d.nz);
    ("c0", Driver.Fscalar d.c0);
    ("c1", Driver.Fscalar d.c1) ]

let check d mem =
  (* only the interior is defined; boundary cells keep their input values,
     which [bind] seeds from the same array *)
  Driver.check_floats ~rtol:1e-4 ~atol:1e-5 ~expected:d.expected (Driver.output_f mem "b")

let benchmark : Driver.benchmark =
  {
    b_name = "Stencil7";
    b_desc = "7-point 3D stencil sweep (memory bandwidth bound)";
    b_algo_note = "inline affine subscripts (+pragma simd); ninja adds streaming stores";
    b_sources = [ ("naive", naive_src); ("algo", opt_src) ];
    default_scale = 4;
    steps =
      (fun ~scale ->
        let d = dataset ~scale in
        Common.ladder
          ~sources:{ naive = naive_src; opt = opt_src; ninja }
          ~bind_naive:(bind d) ~bind_opt:(bind d) ~bind_ninja:(bind d)
          ~check_naive:(check d) ~check_opt:(check d) ~check_ninja:(check d));
  }
