(* 5x5 2D convolution over a padded image.

   The naive code loops over the 25 taps with two short nested loops; the
   compiler's cost model refuses to vectorize a 5-trip loop, so only the
   scalar pipeline runs. The algorithmic change is the classic one: unroll
   the tap loops by hand so that the pixel (x) loop becomes the innermost
   loop and vectorizes with unit strides and hoisted coefficient
   broadcasts. Ninja code is the same structure scheduled by hand. *)

open Ninja_vm
module Machine = Ninja_arch.Machine

let taps = 5

let naive_src =
  {|
kernel conv2d_naive(img : float[], coef : float[], out : float[], w : int, h : int) {
  var x : int;
  var y : int;
  var ky : int;
  var kx : int;
  pragma parallel
  for (y = 0; y < h; y = y + 1) {
    for (x = 0; x < w; x = x + 1) {
      var acc : float = 0.0;
      for (ky = 0; ky < 5; ky = ky + 1) {
        for (kx = 0; kx < 5; kx = kx + 1) {
          acc = acc + img[(y + ky) * (w + 4) + x + kx] * coef[ky * 5 + kx];
        }
      }
      out[y * w + x] = acc;
    }
  }
}
|}

(* Tap loops unrolled by hand: the x loop is now innermost and vectorizes. *)
let opt_src =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    {|
kernel conv2d_unrolled(img : float[], coef : float[], out : float[], w : int, h : int) {
  var x : int;
  var y : int;
  pragma parallel
  for (y = 0; y < h; y = y + 1) {
    var row : int = y * (w + 4);
    pragma simd
    for (x = 0; x < w; x = x + 1) {
      var acc : float = 0.0;
|};
  for ky = 0 to taps - 1 do
    for kx = 0 to taps - 1 do
      Buffer.add_string buf
        (Fmt.str "      acc = acc + img[row + %d * (w + 4) + x + %d] * coef[%d];\n"
           ky kx ((ky * taps) + kx))
    done
  done;
  Buffer.add_string buf {|
      out[y * w + x] = acc;
    }
  }
}
|};
  Buffer.contents buf

let reference ~img ~coef ~w ~h =
  let pw = w + 4 in
  let out = Array.make (w * h) 0. in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      let acc = ref 0. in
      for ky = 0 to taps - 1 do
        for kx = 0 to taps - 1 do
          acc := !acc +. (img.(((y + ky) * pw) + x + kx) *. coef.((ky * taps) + kx))
        done
      done;
      out.((y * w) + x) <- !acc
    done
  done;
  out

let ninja ~machine =
  let fma = machine.Machine.fma_native in
  let b = Builder.create ~name:"conv2d [ninja]" in
  let img = Builder.buffer_f b "img" in
  let coef = Builder.buffer_f b "coef" in
  let out = Builder.buffer_f b "out" in
  let w_cell = Builder.param_cell_i b "w" in
  let h_cell = Builder.param_cell_i b "h" in
  Builder.par_phase b (fun () ->
      let w = Builder.load_param_i b w_cell in
      let h = Builder.load_param_i b h_cell in
      let vw = Isa.vector_width_reg in
      (* hoisted coefficient broadcasts *)
      let coefs =
        Array.init (taps * taps) (fun k ->
            let idx = Builder.iconst b k in
            let s = Builder.sf b in
            Builder.emit b (Loadf { dst = s; buf = coef; idx; chain = false });
            Builder.vbroadcastf b s)
      in
      let four = Builder.iconst b 4 in
      let pw = Builder.ibin b Iadd w four in
      (* rows are chunked across threads; each row's x loop is vectorized
         (w is kept a multiple of the widest SIMD width by the dataset) *)
      let row_lo, row_hi = Builder.thread_range b ~n:h in
      let one = Builder.iconst b 1 in
      let zero = Builder.iconst b 0 in
      Builder.for_ b ~lo:row_lo ~hi:row_hi ~step:one (fun y ->
          let row = Builder.ibin b Imul y pw in
          let out_row = Builder.ibin b Imul y w in
          Builder.for_ b ~lo:zero ~hi:w ~step:vw (fun x ->
              let acc = Builder.vf b in
              Builder.emit b (Vbroadcastf (acc, Builder.fconst b 0.));
              for ky = 0 to taps - 1 do
                let krow =
                  if ky = 0 then row
                  else begin
                    let o = Builder.iconst b ky in
                    let t = Builder.ibin b Imul o pw in
                    Builder.ibin b Iadd row t
                  end
                in
                for kx = 0 to taps - 1 do
                  let base =
                    if kx = 0 then Builder.ibin b Iadd krow x
                    else begin
                      let o = Builder.iconst b kx in
                      let t = Builder.ibin b Iadd krow o in
                      Builder.ibin b Iadd t x
                    end
                  in
                  let v = Builder.vf b in
                  Builder.emit b (Vloadf { dst = v; buf = img; idx = base; mask = None });
                  if fma then Builder.emit b (Vfma (acc, v, coefs.((ky * taps) + kx), acc))
                  else begin
                    let p = Builder.vfbin b Fmul v coefs.((ky * taps) + kx) in
                    Builder.emit b (Vfbin (Fadd, acc, acc, p))
                  end
                done
              done;
              let oidx = Builder.ibin b Iadd out_row x in
              Builder.emit b (Vstoref { buf = out; idx = oidx; src = acc; mask = None }))));
  Builder.finish b

type dataset = {
  w : int;
  h : int;
  img : float array;
  coef : float array;
  expected : float array;
}

let dataset ~scale =
  let w = 64 * scale and h = 32 * scale in
  let img = Ninja_workloads.Gen.floats ~seed:31 ~lo:0. ~hi:1. ((w + 4) * (h + 4)) in
  let coef = Ninja_workloads.Gen.floats ~seed:32 ~lo:(-0.2) ~hi:0.2 (taps * taps) in
  { w; h; img; coef; expected = reference ~img ~coef ~w ~h }

let bind d () =
  [ ("img", Driver.Farr (Array.copy d.img));
    ("coef", Driver.Farr (Array.copy d.coef));
    ("out", Driver.Farr (Array.make (d.w * d.h) 0.));
    ("w", Driver.Iscalar d.w);
    ("h", Driver.Iscalar d.h) ]

let check d mem =
  Driver.check_floats ~rtol:1e-3 ~atol:1e-4 ~expected:d.expected (Driver.output_f mem "out")

let benchmark : Driver.benchmark =
  {
    b_name = "Conv2D";
    b_desc = "5x5 image convolution (regular compute, register reuse)";
    b_algo_note = "unroll the 5x5 tap loops so the pixel loop vectorizes";
    b_sources = [ ("naive", naive_src); ("algo", opt_src) ];
    default_scale = 4;
    steps =
      (fun ~scale ->
        let d = dataset ~scale in
        Common.ladder
          ~sources:{ naive = naive_src; opt = opt_src; ninja }
          ~bind_naive:(bind d) ~bind_opt:(bind d) ~bind_ninja:(bind d)
          ~check_naive:(check d) ~check_opt:(check d) ~check_ninja:(check d));
  }
