(** Binding programs to data, and the benchmark/variant abstractions.

    The driver implements the calling convention shared by compiler output
    and hand-built Ninja programs: array parameters bind to same-named
    buffers, scalar parameters to one-element ["__p_<name>"] cells, and the
    compiler's hidden spill / reduction buffers are allocated automatically. *)

open Ninja_vm

type arg =
  | Farr of float array
  | Iarr of int array
  | Fscalar of float
  | Iscalar of int

val memory_for : Isa.program -> (string * arg) list -> Memory.t
(** Build a {!Memory.t} for [program]: array args bind by name, scalar args
    fill their parameter cells, hidden buffers ([__env_*], [__red_*]) are
    allocated. Raises [Memory.Bad_binding] on missing or mistyped args. *)

val output_f : Memory.t -> string -> float array
(** Fetch a float buffer's contents by name (a copy). *)

val output_i : Memory.t -> string -> int array

(** {1 Benchmark steps}

    A step is one rung of the paper's performance ladder for one benchmark
    (naive serial → +autovec → +parallel → +algorithmic change → Ninja). *)

type step = {
  step_name : string;
  parallel : bool;  (** run with one thread per core, else serially *)
  make : machine:Ninja_arch.Machine.t -> Isa.program;
      (** build/compile the program for a machine (FMA availability, etc.) *)
  bindings : unit -> (string * arg) list;
      (** fresh argument set (fresh output arrays) for one run *)
  runs : Ninja_arch.Machine.t -> int;
      (** kernel launches per measurement (e.g. sort passes); may depend on
          the machine's vector width *)
  prepare : Ninja_arch.Machine.t -> int -> Memory.t -> unit;
      (** pre-launch hook, e.g. to update a scalar cell between passes *)
  check : Memory.t -> (unit, string) result;
      (** validate outputs against the OCaml reference implementation *)
}

val set_scalar_i : Memory.t -> string -> int -> unit
(** [set_scalar_i mem name v] updates scalar parameter [name]'s cell —
    for [prepare] hooks that change a parameter between launches. *)

val simple_step :
  name:string ->
  parallel:bool ->
  make:(machine:Ninja_arch.Machine.t -> Isa.program) ->
  bindings:(unit -> (string * arg) list) ->
  check:(Memory.t -> (unit, string) result) ->
  step
(** A single-launch step with no pre-launch hook. *)

val run_step :
  ?trace:Ninja_vm.Trace.sink ->
  ?strategy:Ninja_vm.Interp.strategy ->
  ?fast_path:bool ->
  machine:Ninja_arch.Machine.t -> step -> Ninja_arch.Timing.report
(** Simulate one step on [machine] (threads = cores when [parallel]).
    [trace] forwards profiling events to the cycle-attribution profiler;
    passing it changes no reported number. [strategy] and [fast_path]
    forward to {!Ninja_arch.Timing.simulate} — pure performance knobs
    with bit-identical reports, used by the self-benchmark to measure
    the reference paths. *)

val validate_step :
  machine:Ninja_arch.Machine.t -> step -> (unit, string) result
(** Run the step functionally and apply its output check. *)

val lengths_for_verify : step -> (string * int) list
(** Buffer lengths implied by the step's bindings under the driver's
    calling convention (arrays by name, scalars as one-element
    ["__p_<name>"] cells, hidden spill/reduction buffers), for
    {!Ninja_vm.Verify.verify}'s bounds checking. *)

val verify_step :
  machine:Ninja_arch.Machine.t -> step -> Ninja_vm.Verify.issue list
(** Statically lint the step's program (no simulation): build it for
    [machine] and run {!Ninja_vm.Verify.verify} with the machine's vector
    width, the step's thread count, and the bindings' buffer lengths. *)

type benchmark = {
  b_name : string;
  b_desc : string;
  b_algo_note : string;  (** the algorithmic change applied (experiment T2) *)
  b_sources : (string * string) list;
      (** the benchmark's Cee sources by variant name — ["naive"] and,
          where a traditional-programmer rewrite exists, ["algo"] — for
          static analysis (opt-reports, experiment T3) without touching
          the step ladder *)
  steps : scale:int -> step list;
      (** the ladder, in order; [scale] grows the dataset (1 = unit tests,
          default benchmark scale is per-benchmark) *)
  default_scale : int;
}

(** Helpers for float comparisons in checks. *)

val close : ?rtol:float -> ?atol:float -> float -> float -> bool

val check_floats :
  ?rtol:float -> ?atol:float -> expected:float array -> float array ->
  (unit, string) result

val check_floats_mostly :
  ?rtol:float -> ?atol:float -> ?max_bad_frac:float ->
  expected:float array -> float array -> (unit, string) result
(** Like {!check_floats}, but tolerates a small fraction of mismatching
    elements (default 1%) — for kernels whose gather indices are sensitive
    to FP evaluation order through truncation. *)

val check_ints : expected:int array -> int array -> (unit, string) result
