(* Complex 1-D convolution (FIR filter over complex samples).

   The naive code keeps complex numbers interleaved (re, im, re, im, ...):
   every access in the vectorized tap loop then has stride 2 and is priced
   as a gather-emulation sequence. The algorithmic change splits the signal
   and taps into separate real/imaginary arrays (AoS -> SoA), making every
   access unit-stride. Unlike BlackScholes, there is almost no
   transcendental math to hide behind, so the layout change is the whole
   story. *)

open Ninja_vm
module Machine = Ninja_arch.Machine

let naive_src =
  {|
kernel cconv_naive(sig : float[], taps : float[], out : float[], n : int, t : int) {
  var i : int;
  var j : int;
  pragma parallel
  for (i = 0; i < n; i = i + 1) {
    var acc_re : float = 0.0;
    var acc_im : float = 0.0;
    for (j = 0; j < t; j = j + 1) {
      var sr : float = sig[2 * (i + j)];
      var si : float = sig[2 * (i + j) + 1];
      var cr : float = taps[2 * j];
      var ci : float = taps[2 * j + 1];
      acc_re = acc_re + (sr * cr - si * ci);
      acc_im = acc_im + (sr * ci + si * cr);
    }
    out[2 * i] = acc_re;
    out[2 * i + 1] = acc_im;
  }
}
|}

let opt_src =
  {|
kernel cconv_soa(sr : float[], si : float[], tr : float[], ti : float[],
                 outr : float[], outi : float[], n : int, t : int) {
  var i : int;
  var j : int;
  pragma parallel
  for (i = 0; i < n; i = i + 1) {
    var acc_re : float = 0.0;
    var acc_im : float = 0.0;
    pragma simd
    for (j = 0; j < t; j = j + 1) {
      acc_re = acc_re + (sr[i + j] * tr[j] - si[i + j] * ti[j]);
      acc_im = acc_im + (sr[i + j] * ti[j] + si[i + j] * tr[j]);
    }
    outr[i] = acc_re;
    outi[i] = acc_im;
  }
}
|}

let reference ~sr ~si ~tr ~ti ~n ~t =
  let outr = Array.make n 0. and outi = Array.make n 0. in
  for i = 0 to n - 1 do
    let ar = ref 0. and ai = ref 0. in
    for j = 0 to t - 1 do
      ar := !ar +. (sr.(i + j) *. tr.(j)) -. (si.(i + j) *. ti.(j));
      ai := !ai +. (sr.(i + j) *. ti.(j)) +. (si.(i + j) *. tr.(j))
    done;
    outr.(i) <- !ar;
    outi.(i) <- !ai
  done;
  (outr, outi)

(* Ninja: SoA, vectorized over OUTPUT samples (i) rather than taps, with tap
   scalars broadcast per tap — unit-stride loads of the signal, two
   accumulators, FMA chains. *)
let ninja ~machine =
  let fma = machine.Machine.fma_native in
  let b = Builder.create ~name:"cconv [ninja]" in
  let bsr = Builder.buffer_f b "sr" in
  let bsi = Builder.buffer_f b "si" in
  let btr = Builder.buffer_f b "tr" in
  let bti = Builder.buffer_f b "ti" in
  let boutr = Builder.buffer_f b "outr" in
  let bouti = Builder.buffer_f b "outi" in
  let n_cell = Builder.param_cell_i b "n" in
  let t_cell = Builder.param_cell_i b "t" in
  Builder.par_phase b (fun () ->
      let n = Builder.load_param_i b n_cell in
      let t = Builder.load_param_i b t_cell in
      let w = Isa.vector_width_reg in
      let lo, hi = Builder.thread_range_aligned b ~n in
      let one = Builder.iconst b 1 in
      let zero = Builder.iconst b 0 in
      Builder.for_ b ~lo ~hi ~step:w (fun i ->
          let accr = Builder.vf b in
          Builder.emit b (Vbroadcastf (accr, Builder.fconst b 0.));
          let acci = Builder.vf b in
          Builder.emit b (Vbroadcastf (acci, Builder.fconst b 0.));
          Builder.for_ b ~lo:zero ~hi:t ~step:one (fun j ->
              let idx = Builder.ibin b Iadd i j in
              let vload buf idx =
                let r = Builder.vf b in
                Builder.emit b (Vloadf { dst = r; buf; idx; mask = None });
                r
              in
              let sr = vload bsr idx and si = vload bsi idx in
              let sload buf =
                let r = Builder.sf b in
                Builder.emit b (Loadf { dst = r; buf; idx = j; chain = false });
                Builder.vbroadcastf b r
              in
              let cr = sload btr and ci = sload bti in
              if fma then begin
                Builder.emit b (Vfma (accr, sr, cr, accr));
                let neg_ci = Builder.vfunop b Fneg ci in
                Builder.emit b (Vfma (accr, si, neg_ci, accr));
                Builder.emit b (Vfma (acci, sr, ci, acci));
                Builder.emit b (Vfma (acci, si, cr, acci))
              end
              else begin
                let a = Builder.vfbin b Fmul sr cr in
                let c = Builder.vfbin b Fmul si ci in
                let re = Builder.vfbin b Fsub a c in
                Builder.emit b (Vfbin (Fadd, accr, accr, re));
                let d = Builder.vfbin b Fmul sr ci in
                let e = Builder.vfbin b Fmul si cr in
                let im = Builder.vfbin b Fadd d e in
                Builder.emit b (Vfbin (Fadd, acci, acci, im))
              end);
          Builder.emit b (Vstoref { buf = boutr; idx = i; src = accr; mask = None });
          Builder.emit b (Vstoref { buf = bouti; idx = i; src = acci; mask = None })));
  Builder.finish b

type dataset = {
  n : int;
  t : int;
  sr : float array;
  si : float array;
  tr : float array;
  ti : float array;
  eoutr : float array;
  eouti : float array;
}

let dataset ~scale =
  let n = 1024 * scale and t = 16 in
  let len = n + t in
  let sr = Ninja_workloads.Gen.floats ~seed:61 ~lo:(-1.) ~hi:1. len in
  let si = Ninja_workloads.Gen.floats ~seed:62 ~lo:(-1.) ~hi:1. len in
  let tr = Ninja_workloads.Gen.floats ~seed:63 ~lo:(-1.) ~hi:1. t in
  let ti = Ninja_workloads.Gen.floats ~seed:64 ~lo:(-1.) ~hi:1. t in
  let eoutr, eouti = reference ~sr ~si ~tr ~ti ~n ~t in
  { n; t; sr; si; tr; ti; eoutr; eouti }

let bind_naive d () =
  [ ("sig", Driver.Farr (Ninja_workloads.Gen.interleave2 d.sr d.si));
    ("taps", Driver.Farr (Ninja_workloads.Gen.interleave2 d.tr d.ti));
    ("out", Driver.Farr (Array.make (2 * d.n) 0.));
    ("n", Driver.Iscalar d.n);
    ("t", Driver.Iscalar d.t) ]

let bind_soa d () =
  [ ("sr", Driver.Farr (Array.copy d.sr));
    ("si", Driver.Farr (Array.copy d.si));
    ("tr", Driver.Farr (Array.copy d.tr));
    ("ti", Driver.Farr (Array.copy d.ti));
    ("outr", Driver.Farr (Array.make d.n 0.));
    ("outi", Driver.Farr (Array.make d.n 0.));
    ("n", Driver.Iscalar d.n);
    ("t", Driver.Iscalar d.t) ]

let check_naive d mem =
  let expected = Ninja_workloads.Gen.interleave2 d.eoutr d.eouti in
  Driver.check_floats ~rtol:1e-3 ~atol:1e-4 ~expected (Driver.output_f mem "out")

let check_soa d mem =
  let ( let* ) = Result.bind in
  let* () = Driver.check_floats ~rtol:1e-3 ~atol:1e-4 ~expected:d.eoutr (Driver.output_f mem "outr") in
  Driver.check_floats ~rtol:1e-3 ~atol:1e-4 ~expected:d.eouti (Driver.output_f mem "outi")

let benchmark : Driver.benchmark =
  {
    b_name = "ComplexConv1D";
    b_desc = "complex FIR filter (layout-sensitive SIMD)";
    b_algo_note = "AoS (interleaved re/im) -> SoA split of signal and taps";
    b_sources = [ ("naive", naive_src); ("algo", opt_src) ];
    default_scale = 8;
    steps =
      (fun ~scale ->
        let d = dataset ~scale in
        Common.ladder
          ~sources:{ naive = naive_src; opt = opt_src; ninja }
          ~bind_naive:(bind_naive d) ~bind_opt:(bind_soa d) ~bind_ninja:(bind_soa d)
          ~check_naive:(check_naive d) ~check_opt:(check_soa d)
          ~check_ninja:(check_soa d));
  }
