(* N-Body gravity (O(N^2) force computation) — the suite's compute-bound
   benchmark.

   The data is already structure-of-arrays, so the inner interaction loop
   auto-vectorizes once the compiler is allowed to (the [i]-body loads hoist
   as invariant broadcasts, the accumulations are sum reductions) — NBody is
   one of the paper's examples where compiler technology alone bridges the
   gap, and no algorithmic restructuring is needed at cache-resident body
   counts. The improved variant only adds the pragmas; Ninja code
   hand-schedules the inner loop with rsqrt and FMA. *)

open Ninja_vm
module Machine = Ninja_arch.Machine

let body_loop ~pragmas =
  Fmt.str
    {|
kernel nbody(x : float[], y : float[], z : float[], m : float[],
             ax : float[], ay : float[], az : float[], n : int, eps : float) {
  var i : int;
  var j : int;
  pragma parallel
  for (i = 0; i < n; i = i + 1) {
    var axi : float = 0.0;
    var ayi : float = 0.0;
    var azi : float = 0.0;
    %s
    for (j = 0; j < n; j = j + 1) {
      var dx : float = x[j] - x[i];
      var dy : float = y[j] - y[i];
      var dz : float = z[j] - z[i];
      var r2 : float = dx * dx + dy * dy + dz * dz + eps;
      var inv : float = 1.0 / sqrtf(r2);
      var inv3 : float = inv * inv * inv * m[j];
      axi = axi + dx * inv3;
      ayi = ayi + dy * inv3;
      azi = azi + dz * inv3;
    }
    ax[i] = axi;
    ay[i] = ayi;
    az[i] = azi;
  }
}
|}
    pragmas

let naive_src = body_loop ~pragmas:""
let opt_src = body_loop ~pragmas:"pragma simd"

let reference ~x ~y ~z ~m ~eps =
  let n = Array.length x in
  let ax = Array.make n 0. and ay = Array.make n 0. and az = Array.make n 0. in
  for i = 0 to n - 1 do
    let axi = ref 0. and ayi = ref 0. and azi = ref 0. in
    for j = 0 to n - 1 do
      let dx = x.(j) -. x.(i) and dy = y.(j) -. y.(i) and dz = z.(j) -. z.(i) in
      let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) +. eps in
      let inv = 1. /. Float.sqrt r2 in
      let inv3 = inv *. inv *. inv *. m.(j) in
      axi := !axi +. (dx *. inv3);
      ayi := !ayi +. (dy *. inv3);
      azi := !azi +. (dz *. inv3)
    done;
    ax.(i) <- !axi;
    ay.(i) <- !ayi;
    az.(i) <- !azi
  done;
  (ax, ay, az)

(* Hand-vectorized inner loop: invariant broadcasts hoisted, rsqrt instead
   of divide+sqrt, FMA where the machine has it, three vector accumulators
   reduced once per outer iteration. *)
let ninja ~machine =
  let fma = machine.Machine.fma_native in
  let b = Builder.create ~name:"nbody [ninja]" in
  let bx = Builder.buffer_f b "x" in
  let by = Builder.buffer_f b "y" in
  let bz = Builder.buffer_f b "z" in
  let bm = Builder.buffer_f b "m" in
  let bax = Builder.buffer_f b "ax" in
  let bay = Builder.buffer_f b "ay" in
  let baz = Builder.buffer_f b "az" in
  let n_cell = Builder.param_cell_i b "n" in
  let eps_cell = Builder.param_cell_f b "eps" in
  Builder.par_phase b (fun () ->
      let n = Builder.load_param_i b n_cell in
      let eps = Builder.load_param_f b eps_cell in
      let veps = Builder.vbroadcastf b eps in
      let w = Isa.vector_width_reg in
      let lo, hi = Builder.thread_range b ~n in
      let one = Builder.iconst b 1 in
      Builder.for_ b ~lo ~hi ~step:one (fun i ->
          let sload buf =
            let r = Builder.sf b in
            Builder.emit b (Loadf { dst = r; buf; idx = i; chain = false });
            r
          in
          let xi = Builder.vbroadcastf b (sload bx) in
          let yi = Builder.vbroadcastf b (sload by) in
          let zi = Builder.vbroadcastf b (sload bz) in
          let acc () =
            let r = Builder.vf b in
            Builder.emit b (Vbroadcastf (r, Builder.fconst b 0.));
            r
          in
          let accx = acc () and accy = acc () and accz = acc () in
          let zero = Builder.iconst b 0 in
          Builder.for_ b ~lo:zero ~hi:n ~step:w (fun j ->
              let vload buf =
                let r = Builder.vf b in
                Builder.emit b (Vloadf { dst = r; buf; idx = j; mask = None });
                r
              in
              let dx = Builder.vfbin b Fsub (vload bx) xi in
              let dy = Builder.vfbin b Fsub (vload by) yi in
              let dz = Builder.vfbin b Fsub (vload bz) zi in
              let r2 =
                let t = Builder.vmuladd b ~fma dx dx veps in
                let t = Builder.vmuladd b ~fma dy dy t in
                Builder.vmuladd b ~fma dz dz t
              in
              let inv = Builder.vfunop b Frsqrt r2 in
              let inv2 = Builder.vfbin b Fmul inv inv in
              let inv3 = Builder.vfbin b Fmul inv2 inv in
              let s = Builder.vfbin b Fmul inv3 (vload bm) in
              let accumulate acc d =
                if fma then Builder.emit b (Vfma (acc, d, s, acc))
                else begin
                  let p = Builder.vfbin b Fmul d s in
                  Builder.emit b (Vfbin (Fadd, acc, acc, p))
                end
              in
              accumulate accx dx;
              accumulate accy dy;
              accumulate accz dz);
          let store buf acc =
            let r = Builder.sf b in
            Builder.emit b (Vreducef (Rsum, r, acc));
            Builder.emit b (Storef { buf; idx = i; src = r })
          in
          store bax accx;
          store bay accy;
          store baz accz));
  Builder.finish b

type dataset = {
  n : int;
  eps : float;
  x : float array;
  y : float array;
  z : float array;
  m : float array;
  eax : float array;
  eay : float array;
  eaz : float array;
}

let dataset ~scale =
  let n = 256 * scale in
  let x = Ninja_workloads.Gen.floats ~seed:21 ~lo:(-1.) ~hi:1. n in
  let y = Ninja_workloads.Gen.floats ~seed:22 ~lo:(-1.) ~hi:1. n in
  let z = Ninja_workloads.Gen.floats ~seed:23 ~lo:(-1.) ~hi:1. n in
  let m = Ninja_workloads.Gen.floats ~seed:24 ~lo:0.1 ~hi:1. n in
  let eps = 0.01 in
  let eax, eay, eaz = reference ~x ~y ~z ~m ~eps in
  { n; eps; x; y; z; m; eax; eay; eaz }

let bind d () =
  [ ("x", Driver.Farr (Array.copy d.x));
    ("y", Driver.Farr (Array.copy d.y));
    ("z", Driver.Farr (Array.copy d.z));
    ("m", Driver.Farr (Array.copy d.m));
    ("ax", Driver.Farr (Array.make d.n 0.));
    ("ay", Driver.Farr (Array.make d.n 0.));
    ("az", Driver.Farr (Array.make d.n 0.));
    ("n", Driver.Iscalar d.n);
    ("eps", Driver.Fscalar d.eps) ]

let check d mem =
  let ( let* ) = Result.bind in
  let* () = Driver.check_floats ~rtol:2e-3 ~atol:1e-3 ~expected:d.eax (Driver.output_f mem "ax") in
  let* () = Driver.check_floats ~rtol:2e-3 ~atol:1e-3 ~expected:d.eay (Driver.output_f mem "ay") in
  Driver.check_floats ~rtol:2e-3 ~atol:1e-3 ~expected:d.eaz (Driver.output_f mem "az")

let benchmark : Driver.benchmark =
  {
    b_name = "NBody";
    b_desc = "O(N^2) gravitational force computation (compute bound)";
    b_algo_note = "none required (SoA layout; compiler vectorizes the interaction loop)";
    b_sources = [ ("naive", naive_src); ("algo", opt_src) ];
    default_scale = 4;
    steps =
      (fun ~scale ->
        let d = dataset ~scale in
        Common.ladder
          ~sources:{ naive = naive_src; opt = opt_src; ninja }
          ~bind_naive:(bind d) ~bind_opt:(bind d) ~bind_ninja:(bind d)
          ~check_naive:(check d) ~check_opt:(check d) ~check_ninja:(check d));
  }
