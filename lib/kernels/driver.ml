open Ninja_vm

type arg =
  | Farr of float array
  | Iarr of int array
  | Fscalar of float
  | Iscalar of int

(* Sizes of the compiler's hidden buffers; must cover the limits declared in
   Codegen (max_env_slots, max_reductions * max_threads). *)
let env_slots = 256
let red_slots = 16 * 64

let memory_for (prog : Isa.program) args =
  let bindings =
    Array.to_list prog.buffers
    |> List.map (fun (d : Isa.buffer_decl) ->
           let name = d.buf_name in
           let missing () = raise (Memory.Bad_binding ("missing argument: " ^ name)) in
           let value =
             if name = "__env_i" || name = "__red_i" then
               Memory.Ibuf (Array.make (if name = "__env_i" then env_slots else red_slots) 0)
             else if name = "__env_f" || name = "__red_f" then
               Memory.Fbuf (Array.make (if name = "__env_f" then env_slots else red_slots) 0.)
             else if String.length name > 4 && String.sub name 0 4 = "__p_" then begin
               let pname = String.sub name 4 (String.length name - 4) in
               match List.assoc_opt pname args with
               | Some (Fscalar x) -> Memory.Fbuf [| x |]
               | Some (Iscalar n) -> Memory.Ibuf [| n |]
               | Some _ ->
                   raise (Memory.Bad_binding ("parameter " ^ pname ^ " must be a scalar"))
               | None -> missing ()
             end
             else
               match List.assoc_opt name args with
               | Some (Farr a) -> Memory.Fbuf a
               | Some (Iarr a) -> Memory.Ibuf a
               | Some _ ->
                   raise (Memory.Bad_binding ("parameter " ^ name ^ " must be an array"))
               | None -> missing ()
           in
           (name, value))
  in
  Memory.create prog bindings

let output_f mem name =
  match Memory.find mem name with
  | _, Memory.Fbuf a -> Array.copy a
  | _, Memory.Ibuf _ -> invalid_arg (name ^ " is an int buffer")

let output_i mem name =
  match Memory.find mem name with
  | _, Memory.Ibuf a -> Array.copy a
  | _, Memory.Fbuf _ -> invalid_arg (name ^ " is a float buffer")

type step = {
  step_name : string;
  parallel : bool;
  make : machine:Ninja_arch.Machine.t -> Isa.program;
  bindings : unit -> (string * arg) list;
  runs : Ninja_arch.Machine.t -> int;
  prepare : Ninja_arch.Machine.t -> int -> Memory.t -> unit;
  check : Memory.t -> (unit, string) result;
}

let simple_step ~name ~parallel ~make ~bindings ~check =
  {
    step_name = name;
    parallel;
    make;
    bindings;
    runs = (fun _ -> 1);
    prepare = (fun _ _ _ -> ());
    check;
  }

(* Update a scalar parameter cell between launches. *)
let set_scalar_i mem name v =
  match Memory.find mem ("__p_" ^ name) with
  | _, Memory.Ibuf a -> a.(0) <- v
  | _, Memory.Fbuf _ -> invalid_arg (name ^ " is a float parameter")

let run_step ?trace ?strategy ?fast_path ~machine step =
  let prog = step.make ~machine in
  let mem = memory_for prog (step.bindings ()) in
  let n_threads = if step.parallel then machine.Ninja_arch.Machine.cores else 1 in
  Ninja_arch.Timing.simulate ~machine ~n_threads ~runs:(step.runs machine)
    ~prepare:(step.prepare machine) ?trace ?strategy ?fast_path prog mem

let validate_step ~machine step =
  let prog = step.make ~machine in
  let mem = memory_for prog (step.bindings ()) in
  let n_threads = if step.parallel then machine.Ninja_arch.Machine.cores else 1 in
  let width = machine.Ninja_arch.Machine.simd_width in
  match
    for run = 0 to step.runs machine - 1 do
      step.prepare machine run mem;
      ignore (Interp.run ~n_threads ~width prog mem : Interp.result)
    done
  with
  | () -> step.check mem
  | exception Memory.Trap msg -> Error ("trap: " ^ msg)

(* Buffer lengths a step's bindings imply, in the driver's calling
   convention — what the static verifier needs to check bounds. *)
let lengths_for_verify step =
  let args = step.bindings () in
  List.map
    (fun (name, arg) ->
      match arg with
      | Farr a -> (name, Array.length a)
      | Iarr a -> (name, Array.length a)
      | Fscalar _ | Iscalar _ -> ("__p_" ^ name, 1))
    args
  @ [
      ("__env_i", env_slots);
      ("__env_f", env_slots);
      ("__red_i", red_slots);
      ("__red_f", red_slots);
    ]

let verify_step ~machine step =
  let prog = step.make ~machine in
  let n_threads = if step.parallel then machine.Ninja_arch.Machine.cores else 1 in
  let width = machine.Ninja_arch.Machine.simd_width in
  Verify.verify ~width ~n_threads ~lengths:(lengths_for_verify step) prog

type benchmark = {
  b_name : string;
  b_desc : string;
  b_algo_note : string;
  b_sources : (string * string) list;
  steps : scale:int -> step list;
  default_scale : int;
}

let close ?(rtol = 1e-4) ?(atol = 1e-6) a b =
  let diff = Float.abs (a -. b) in
  diff <= atol +. (rtol *. Float.max (Float.abs a) (Float.abs b))

let check_floats ?rtol ?atol ~expected actual =
  if Array.length expected <> Array.length actual then
    Error
      (Fmt.str "length mismatch: expected %d, got %d" (Array.length expected)
         (Array.length actual))
  else begin
    let bad = ref None in
    Array.iteri
      (fun i e ->
        if !bad = None && not (close ?rtol ?atol e actual.(i)) then bad := Some i)
      expected;
    match !bad with
    | None -> Ok ()
    | Some i ->
        Error (Fmt.str "mismatch at index %d: expected %g, got %g" i expected.(i) actual.(i))
  end

(* Tolerant variant for kernels whose results are legitimately sensitive to
   FP evaluation order through [int()] truncation (e.g. computed gather
   indices): a small fraction of elements may disagree. *)
let check_floats_mostly ?rtol ?atol ?(max_bad_frac = 0.01) ~expected actual =
  if Array.length expected <> Array.length actual then
    Error
      (Fmt.str "length mismatch: expected %d, got %d" (Array.length expected)
         (Array.length actual))
  else begin
    let bad = ref 0 in
    Array.iteri
      (fun i e -> if not (close ?rtol ?atol e actual.(i)) then incr bad)
      expected;
    let frac = float_of_int !bad /. float_of_int (max 1 (Array.length expected)) in
    if frac <= max_bad_frac then Ok ()
    else Error (Fmt.str "%d of %d elements mismatch" !bad (Array.length expected))
  end

let check_ints ~expected actual =
  if Array.length expected <> Array.length actual then
    Error
      (Fmt.str "length mismatch: expected %d, got %d" (Array.length expected)
         (Array.length actual))
  else begin
    let bad = ref None in
    Array.iteri
      (fun i e -> if !bad = None && e <> actual.(i) then bad := Some i)
      expected;
    match !bad with
    | None -> Ok ()
    | Some i ->
        Error (Fmt.str "mismatch at index %d: expected %d, got %d" i expected.(i) actual.(i))
  end
