(* Static linter for virtual-ISA programs. See verify.mli for scope.

   The core is an abstract interpretation over the structured program:
   - per-register definedness, with three levels: undefined, defined on
     thread 0 only (written in a [Seq] phase), defined on every thread
     (written in a [Par] phase). Register files persist across phases in
     the interpreter, so the levels persist here too.
   - an interval domain for scalar-int and vector-int registers, used to
     prove accesses out of bounds. Intervals are over-approximations, so
     only accesses whose *entire* index range falls outside the buffer
     are reported; "might be out of bounds" is deliberately silent
     (remainder handling and strip-mined strided loops would drown the
     report otherwise). *)

type issue = { where : string; what : string }

let pp_issue ppf i = Fmt.pf ppf "%s: %s" i.where i.what

(* ------------------------------------------------------------------ *)
(* Interval domain                                                     *)

type itv = Top | R of int * int

let join a b =
  match (a, b) with
  | Top, _ | _, Top -> Top
  | R (a1, a2), R (b1, b2) -> R (min a1 b1, max a2 b2)

let itv_const n = R (n, n)

let itv_ibin (op : Isa.ibin) a b =
  match (op, a, b) with
  | Isa.Iadd, R (a1, a2), R (b1, b2) -> R (a1 + b1, a2 + b2)
  | Isa.Isub, R (a1, a2), R (b1, b2) -> R (a1 - b2, a2 - b1)
  | Isa.Imul, R (a1, a2), R (b1, b2) ->
      let p = [ a1 * b1; a1 * b2; a2 * b1; a2 * b2 ] in
      R (List.fold_left min max_int p, List.fold_left max min_int p)
  | Isa.Idiv, R (a1, a2), R (b1, b2) when a1 >= 0 && b1 >= 1 ->
      (* non-negative dividend, positive divisor: truncation = floor *)
      R (a1 / b2, a2 / b1)
  | Isa.Imod, R (a1, _), R (b1, b2) when a1 >= 0 && b1 >= 1 -> R (0, b2 - 1)
  | Isa.Imin, R (a1, a2), R (b1, b2) -> R (min a1 b1, min a2 b2)
  | Isa.Imax, R (a1, a2), R (b1, b2) -> R (max a1 b1, max a2 b2)
  | _ -> Top

(* ------------------------------------------------------------------ *)
(* Operand extraction (reads, writes) per register file                *)

type operand =
  | Osi of Isa.si_reg
  | Osf of Isa.sf_reg
  | Ovf of Isa.vf_reg
  | Ovi of Isa.vi_reg
  | Ovm of Isa.vm_reg

let om = function None -> [] | Some m -> [ Ovm m ]

(* (reads, writes) of an instruction. [Vinsertf] lists its destination as
   a read as well (untouched lanes are preserved); the leniency filter in
   [exec_instr] drops that read, treating the insert as a definition. *)
let operands (i : Isa.instr) : operand list * operand list =
  match i with
  | Iconst (d, _) -> ([], [ Osi d ])
  | Fconst (d, _) -> ([], [ Osf d ])
  | Imov (d, a) -> ([ Osi a ], [ Osi d ])
  | Fmov (d, a) -> ([ Osf a ], [ Osf d ])
  | Ibin (_, d, a, b) -> ([ Osi a; Osi b ], [ Osi d ])
  | Fbin (_, d, a, b) -> ([ Osf a; Osf b ], [ Osf d ])
  | Fma (d, a, b, c) -> ([ Osf a; Osf b; Osf c ], [ Osf d ])
  | Funop (_, d, a) -> ([ Osf a ], [ Osf d ])
  | Icmp (_, d, a, b) -> ([ Osi a; Osi b ], [ Osi d ])
  | Fcmp (_, d, a, b) -> ([ Osf a; Osf b ], [ Osi d ])
  | Iselect (d, c, a, b) -> ([ Osi c; Osi a; Osi b ], [ Osi d ])
  | Fselect (d, c, a, b) -> ([ Osi c; Osf a; Osf b ], [ Osf d ])
  | Fofi (d, a) -> ([ Osi a ], [ Osf d ])
  | Ioff (d, a) -> ([ Osf a ], [ Osi d ])
  | Loadf { dst; idx; _ } -> ([ Osi idx ], [ Osf dst ])
  | Loadi { dst; idx; _ } -> ([ Osi idx ], [ Osi dst ])
  | Storef { idx; src; _ } -> ([ Osi idx; Osf src ], [])
  | Storei { idx; src; _ } -> ([ Osi idx; Osi src ], [])
  | Vmovf (d, a) -> ([ Ovf a ], [ Ovf d ])
  | Vmovi (d, a) -> ([ Ovi a ], [ Ovi d ])
  | Vbroadcastf (d, a) -> ([ Osf a ], [ Ovf d ])
  | Vbroadcasti (d, a) -> ([ Osi a ], [ Ovi d ])
  | Viota d -> ([], [ Ovi d ])
  | Vfbin (_, d, a, b) -> ([ Ovf a; Ovf b ], [ Ovf d ])
  | Vfma (d, a, b, c) -> ([ Ovf a; Ovf b; Ovf c ], [ Ovf d ])
  | Vfunop (_, d, a) -> ([ Ovf a ], [ Ovf d ])
  | Vibin (_, d, a, b) -> ([ Ovi a; Ovi b ], [ Ovi d ])
  | Vfcmp (_, d, a, b) -> ([ Ovf a; Ovf b ], [ Ovm d ])
  | Vicmp (_, d, a, b) -> ([ Ovi a; Ovi b ], [ Ovm d ])
  | Vselectf (d, m, a, b) -> ([ Ovm m; Ovf a; Ovf b ], [ Ovf d ])
  | Vselecti (d, m, a, b) -> ([ Ovm m; Ovi a; Ovi b ], [ Ovi d ])
  | Vfofi (d, a) -> ([ Ovi a ], [ Ovf d ])
  | Vioff (d, a) -> ([ Ovf a ], [ Ovi d ])
  | Vpermutef (d, a, _) -> ([ Ovf a ], [ Ovf d ])
  | Vextractf (d, a, l) -> ([ Ovf a; Osi l ], [ Osf d ])
  | Vinsertf (d, l, a) -> ([ Ovf d; Osi l; Osf a ], [ Ovf d ])
  | Vreducef (_, d, a) -> ([ Ovf a ], [ Osf d ])
  | Vreducei (_, d, a) -> ([ Ovi a ], [ Osi d ])
  | Mconst (d, _) -> ([], [ Ovm d ])
  | Mpattern (d, _) -> ([], [ Ovm d ])
  | Mfirst (d, n) -> ([ Osi n ], [ Ovm d ])
  | Mnot (d, a) -> ([ Ovm a ], [ Ovm d ])
  | Mand (d, a, b) | Mor (d, a, b) -> ([ Ovm a; Ovm b ], [ Ovm d ])
  | Many (d, a) | Mall (d, a) | Mcount (d, a) -> ([ Ovm a ], [ Osi d ])
  | Vloadf { dst; idx; mask; _ } -> (Osi idx :: om mask, [ Ovf dst ])
  | Vloadi { dst; idx; mask; _ } -> (Osi idx :: om mask, [ Ovi dst ])
  | Vloadf_strided { dst; idx; stride; _ } -> ([ Osi idx; Osi stride ], [ Ovf dst ])
  | Vgatherf { dst; idx; mask; _ } -> (Ovi idx :: om mask, [ Ovf dst ])
  | Vgatheri { dst; idx; mask; _ } -> (Ovi idx :: om mask, [ Ovi dst ])
  | Vstoref { idx; src; mask; _ } -> (Osi idx :: Ovf src :: om mask, [])
  | Vstoref_nt { idx; src; _ } -> ([ Osi idx; Ovf src ], [])
  | Vstorei { idx; src; mask; _ } -> (Osi idx :: Ovi src :: om mask, [])
  | Vstoref_strided { idx; stride; src; _ } ->
      ([ Osi idx; Osi stride; Ovf src ], [])
  | Vscatterf { idx; src; mask; _ } -> (Ovi idx :: Ovf src :: om mask, [])
  | Vscatteri { idx; src; mask; _ } -> (Ovi idx :: Ovi src :: om mask, [])

(* ------------------------------------------------------------------ *)
(* Abstract state                                                      *)

(* Definedness levels. *)
let undef = 0
let solo = 1 (* defined on thread 0 only (written in a Seq phase) *)
let everywhere = 2

type st = {
  si_def : int array;
  si_itv : itv array;
  sf_def : int array;
  vf_def : int array;
  vi_def : int array;
  vi_itv : itv array;
  vm_def : int array;
}

let make_st (r : Isa.reg_counts) =
  {
    si_def = Array.make (max r.si Isa.reserved_si_regs) undef;
    si_itv = Array.make (max r.si Isa.reserved_si_regs) Top;
    sf_def = Array.make (max r.sf 1) undef;
    vf_def = Array.make (max r.vf 1) undef;
    vi_def = Array.make (max r.vi 1) undef;
    vi_itv = Array.make (max r.vi 1) Top;
    vm_def = Array.make (max r.vm 1) undef;
  }

let copy_st st =
  {
    si_def = Array.copy st.si_def;
    si_itv = Array.copy st.si_itv;
    sf_def = Array.copy st.sf_def;
    vf_def = Array.copy st.vf_def;
    vi_def = Array.copy st.vi_def;
    vi_itv = Array.copy st.vi_itv;
    vm_def = Array.copy st.vm_def;
  }

(* After an [If], a register counts as defined only if both branches
   (or the pre-state) define it; intervals join. *)
let merge_into dst a b =
  let m_def d x y = Array.iteri (fun i _ -> d.(i) <- min x.(i) y.(i)) d in
  let m_itv d x y = Array.iteri (fun i _ -> d.(i) <- join x.(i) y.(i)) d in
  m_def dst.si_def a.si_def b.si_def;
  m_itv dst.si_itv a.si_itv b.si_itv;
  m_def dst.sf_def a.sf_def b.sf_def;
  m_def dst.vf_def a.vf_def b.vf_def;
  m_def dst.vi_def a.vi_def b.vi_def;
  m_itv dst.vi_itv a.vi_itv b.vi_itv;
  m_def dst.vm_def a.vm_def b.vm_def

(* ------------------------------------------------------------------ *)
(* Main pass                                                           *)

type mode = Mpar | Mseq

let verify ?(width = 4) ?(n_threads = 4) ?(lengths = []) (p : Isa.program) :
    issue list =
  let issues = ref [] in
  let add ~where fmt =
    Fmt.kstr (fun what -> issues := { where; what } :: !issues) fmt
  in
  (* Structural checks first; a malformed program (register indices out of
     range) cannot be interpreted abstractly, so bail out after reporting. *)
  let structurally_ok =
    match Isa.validate p with
    | () -> true
    | exception Isa.Invalid_program msg ->
        add ~where:"structure" "%s" msg;
        false
  in
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun (b : Isa.buffer_decl) ->
      if Hashtbl.mem seen b.buf_name then
        add ~where:"buffers" "duplicate buffer name %s" b.buf_name;
      Hashtbl.replace seen b.buf_name ())
    p.buffers;
  if not structurally_ok then List.rev !issues
  else begin
    let len_of =
      Array.map
        (fun (b : Isa.buffer_decl) -> List.assoc_opt b.buf_name lengths)
        p.buffers
    in
    let buf_name (Isa.Buf b) = p.buffers.(b).buf_name in
    let phase_ctx = ref "" in
    let st = make_st p.regs in
    (* Thread id / thread count / vector width are set by the interpreter
       at every phase entry, on every participating thread. *)
    st.si_def.(0) <- everywhere;
    st.si_itv.(0) <- R (0, n_threads - 1);
    st.si_def.(1) <- everywhere;
    st.si_itv.(1) <- itv_const n_threads;
    st.si_def.(2) <- everywhere;
    st.si_itv.(2) <- itv_const width;
    let itv_si (Isa.Si r) = st.si_itv.(r) in
    let itv_vi (Isa.Vi r) = st.vi_itv.(r) in
    (* Read check. Cascade suppression: a register read while undefined is
       reported once, then treated as defined. *)
    let rd ~mode ~where o =
      let check name def i =
        if def.(i) = undef then begin
          add ~where "read of undefined register %s%d" name i;
          def.(i) <- everywhere
        end
        else if def.(i) = solo && mode = Mpar then begin
          add ~where
            "register %s%d was last written in a sequential phase and holds \
             its value on thread 0 only; route it through a buffer"
            name i;
          def.(i) <- everywhere
        end
      in
      match o with
      | Osi (Si r) -> check "i" st.si_def r
      | Osf (Sf r) -> check "f" st.sf_def r
      | Ovf (Vf r) -> check "v" st.vf_def r
      | Ovi (Vi r) -> check "x" st.vi_def r
      | Ovm (Vm r) -> check "m" st.vm_def r
    in
    let def_level ~mode old = match mode with Mpar -> everywhere | Mseq -> max old solo in
    let wr_si ~mode ~where (Isa.Si r) itv =
      if r < Isa.reserved_si_regs then
        add ~where "write to reserved register i%d" r;
      st.si_def.(r) <- def_level ~mode st.si_def.(r);
      st.si_itv.(r) <- itv
    in
    let wr_vi ~mode (Isa.Vi r) itv =
      st.vi_def.(r) <- def_level ~mode st.vi_def.(r);
      st.vi_itv.(r) <- itv
    in
    let wr ~mode ~where o =
      match o with
      | Osi r -> wr_si ~mode ~where r Top
      | Osf (Sf r) -> st.sf_def.(r) <- def_level ~mode st.sf_def.(r)
      | Ovf (Vf r) -> st.vf_def.(r) <- def_level ~mode st.vf_def.(r)
      | Ovi r -> wr_vi ~mode r Top
      | Ovm (Vm r) -> st.vm_def.(r) <- def_level ~mode st.vm_def.(r)
    in
    (* Provable out-of-bounds: the whole index interval lies outside the
       buffer. [span] is the reach beyond the first element (unit-stride
       vector ops touch idx .. idx+width-1). For an exact (singleton)
       index the span participates; for a range only the provably-wrong
       directions do — the interval is an over-approximation. *)
    let oob ~where b first span =
      match len_of.(let (Isa.Buf i) = b in i) with
      | None -> ()
      | Some len -> (
          match first with
          | Top -> ()
          | R (lo, hi) when lo = hi ->
              if lo < 0 || lo + span - 1 >= len then
                add ~where
                  "access to %s is out of bounds: touches element %d of %d"
                  (buf_name b)
                  (if lo < 0 then lo else lo + span - 1)
                  len
          | R (lo, hi) ->
              if lo >= len then
                add ~where
                  "access to %s is always out of bounds: index is at least \
                   %d but the buffer has %d elements"
                  (buf_name b) lo len
              else if hi + span - 1 < 0 then
                add ~where "access to %s is always out of bounds: index is negative"
                  (buf_name b))
    in
    let exec_instr ~mode (i : Isa.instr) =
      let where =
        Fmt.str "%s: %a" !phase_ctx (Isa.pp_instr p.buffers) i
      in
      (* 1. def-before-use on sources, with codegen-idiom leniency *)
      let reads, writes = operands i in
      let lenient =
        match i with
        | Vselectf (d, _, a, b) when a = d || b = d -> [ Ovf d ]
        | Vselecti (d, _, a, b) when a = d || b = d -> [ Ovi d ]
        | Vinsertf (d, _, _) -> [ Ovf d ]
        | _ -> []
      in
      List.iter
        (fun o -> if not (List.mem o lenient) then rd ~mode ~where o)
        reads;
      (* 2. provable out-of-bounds (masked ops skip: inactive lanes touch
         nothing, and the mask is how remainders stay in bounds) *)
      (match i with
      | Loadf { buf; idx; _ }
      | Loadi { buf; idx; _ }
      | Storef { buf; idx; _ }
      | Storei { buf; idx; _ } ->
          oob ~where buf (itv_si idx) 1
      | Vloadf { buf; idx; mask = None; _ }
      | Vloadi { buf; idx; mask = None; _ }
      | Vstoref { buf; idx; mask = None; _ }
      | Vstorei { buf; idx; mask = None; _ }
      | Vstoref_nt { buf; idx; _ } ->
          oob ~where buf (itv_si idx) width
      | Vloadf_strided { buf; idx; stride; _ }
      | Vstoref_strided { buf; idx; stride; _ } -> (
          match itv_si stride with
          | R (s, s') when s = s' && s >= 1 ->
              oob ~where buf (itv_si idx) (1 + (s * (width - 1)))
          | _ -> ())
      | Vgatherf { buf; idx; mask = None; _ }
      | Vgatheri { buf; idx; mask = None; _ }
      | Vscatterf { buf; idx; mask = None; _ }
      | Vscatteri { buf; idx; mask = None; _ } ->
          oob ~where buf (itv_vi idx) 1
      | _ -> ());
      (* 3. writes, with interval transfer where the domain tracks one *)
      match i with
      | Iconst (d, n) -> wr_si ~mode ~where d (itv_const n)
      | Imov (d, a) -> wr_si ~mode ~where d (itv_si a)
      | Ibin (op, d, a, b) ->
          wr_si ~mode ~where d (itv_ibin op (itv_si a) (itv_si b))
      | Icmp (_, d, _, _) | Fcmp (_, d, _, _) | Many (d, _) | Mall (d, _) ->
          wr_si ~mode ~where d (R (0, 1))
      | Mcount (d, _) -> wr_si ~mode ~where d (R (0, width))
      | Iselect (d, _, a, b) ->
          wr_si ~mode ~where d (join (itv_si a) (itv_si b))
      | Viota d -> wr_vi ~mode d (R (0, width - 1))
      | Vbroadcasti (d, a) -> wr_vi ~mode d (itv_si a)
      | Vmovi (d, a) -> wr_vi ~mode d (itv_vi a)
      | Vibin (op, d, a, b) ->
          wr_vi ~mode d (itv_ibin op (itv_vi a) (itv_vi b))
      | Vselecti (d, _, a, b) -> wr_vi ~mode d (join (itv_vi a) (itv_vi b))
      | _ -> List.iter (wr ~mode ~where) writes
    in
    (* Loop bodies are analyzed once: before entering, every register the
       body can write is widened to Top so first-iteration intervals are
       not mistaken for all-iteration facts. *)
    let rec widen_block b = List.iter widen_stmt b
    and widen_stmt (s : Isa.stmt) =
      match s with
      | I i ->
          let _, writes = operands i in
          List.iter
            (function
              | Osi (Isa.Si r) -> st.si_itv.(r) <- Top
              | Ovi (Isa.Vi r) -> st.vi_itv.(r) <- Top
              | Osf _ | Ovf _ | Ovm _ -> ())
            writes
      | For { idx = Si r; body; _ } ->
          st.si_itv.(r) <- Top;
          widen_block body
      | While { cond_block; body; _ } ->
          widen_block cond_block;
          widen_block body
      | If { then_; else_; _ } ->
          widen_block then_;
          widen_block else_
      | Region { body; _ } -> widen_block body
    in
    let rec block_writes_si target b = List.exists (stmt_writes_si target) b
    and stmt_writes_si target (s : Isa.stmt) =
      match s with
      | I i ->
          let _, writes = operands i in
          List.mem (Osi target) writes
      | For { idx; body; _ } -> idx = target || block_writes_si target body
      | While { cond_block; body; _ } ->
          block_writes_si target cond_block || block_writes_si target body
      | If { then_; else_; _ } ->
          block_writes_si target then_ || block_writes_si target else_
      | Region { body; _ } -> block_writes_si target body
    in
    let rec exec_block ~mode b = List.iter (exec_stmt ~mode) b
    and exec_stmt ~mode (s : Isa.stmt) =
      match s with
      | I i -> exec_instr ~mode i
      | For { idx; lo; hi; step; body } ->
          let where =
            Fmt.str "%s: for %a = %a to %a" !phase_ctx Isa.pp_si idx
              Isa.pp_si lo Isa.pp_si hi
          in
          List.iter (rd ~mode ~where) [ Osi lo; Osi hi; Osi step ];
          let lo_itv = itv_si lo and hi_itv = itv_si hi in
          widen_block body;
          let idx_itv =
            if block_writes_si idx body then Top
            else
              match (lo_itv, hi_itv) with
              | R (l, _), R (_, h) when h - 1 >= l -> R (l, h - 1)
              | _ -> Top
          in
          wr_si ~mode ~where idx idx_itv;
          (* Defs made in the body are retained after the loop: hand
             kernels store results computed inside; flagging the
             zero-trip case would be all noise. *)
          exec_block ~mode body
      | While { cond_block; cond; body } ->
          let where = Fmt.str "%s: while %a" !phase_ctx Isa.pp_si cond in
          widen_block cond_block;
          widen_block body;
          exec_block ~mode cond_block;
          rd ~mode ~where (Osi cond);
          exec_block ~mode body
      | If { cond; then_; else_ } ->
          let where = Fmt.str "%s: if %a" !phase_ctx Isa.pp_si cond in
          rd ~mode ~where (Osi cond);
          let saved = copy_st st in
          exec_block ~mode then_;
          let st_then = copy_st st in
          Array.blit saved.si_def 0 st.si_def 0 (Array.length st.si_def);
          Array.blit saved.si_itv 0 st.si_itv 0 (Array.length st.si_itv);
          Array.blit saved.sf_def 0 st.sf_def 0 (Array.length st.sf_def);
          Array.blit saved.vf_def 0 st.vf_def 0 (Array.length st.vf_def);
          Array.blit saved.vi_def 0 st.vi_def 0 (Array.length st.vi_def);
          Array.blit saved.vi_itv 0 st.vi_itv 0 (Array.length st.vi_itv);
          Array.blit saved.vm_def 0 st.vm_def 0 (Array.length st.vm_def);
          exec_block ~mode else_;
          merge_into st st_then (copy_st st)
      | Region { body; _ } -> exec_block ~mode body
    in
    List.iteri
      (fun n ph ->
        match ph with
        | Isa.Par b ->
            phase_ctx := Fmt.str "phase %d (parallel)" n;
            exec_block ~mode:Mpar b
        | Isa.Seq b ->
            phase_ctx := Fmt.str "phase %d (sequential)" n;
            exec_block ~mode:Mseq b)
      p.phases;
    List.rev !issues
  end

(* ------------------------------------------------------------------ *)
(* Flat-form checker for optimized decoded arrays                      *)

let check_flat (d : Decode.t) : issue list =
  let issues = ref [] in
  let p = d.Decode.prog in
  let regs = p.Isa.regs in
  Array.iteri
    (fun pi (ph : Decode.phase) ->
      let code = ph.Decode.code in
      let len = Array.length code in
      let add i fmt =
        Fmt.kstr
          (fun what ->
            issues := { where = Fmt.str "phase %d op %d" pi i; what } :: !issues)
          fmt
      in
      let chk_target i t =
        if t < 0 || t > len then add i "jump target %d outside [0, %d]" t len
      in
      let chk_reg i name r bound =
        if r < 0 || r >= max bound 1 then add i "%s reg %d out of range" name r
      in
      let chk_si i r = chk_reg i "si" r regs.Isa.si in
      let chk_sf i r = chk_reg i "sf" r regs.Isa.sf in
      let chk_vf i r = chk_reg i "vf" r regs.Isa.vf in
      let chk_operand i = function
        | Osi (Isa.Si r) -> chk_si i r
        | Osf (Isa.Sf r) -> chk_sf i r
        | Ovf (Isa.Vf r) -> chk_vf i r
        | Ovi (Isa.Vi r) -> chk_reg i "vi" r regs.Isa.vi
        | Ovm (Isa.Vm r) -> chk_reg i "vm" r regs.Isa.vm
      in
      let chk_buf i (Isa.Buf b) want =
        if b < 0 || b >= Array.length p.Isa.buffers then
          add i "buffer %d out of range" b
        else if p.Isa.buffers.(b).Isa.elt <> want then
          add i "buffer %s accessed with the wrong element type"
            p.Isa.buffers.(b).Isa.buf_name
      in
      Array.iteri
        (fun i op ->
          match (op : Decode.dop) with
          | Decode.Dinstr { i = instr; cls; cls_idx } ->
              if Isa.classify instr <> cls then add i "stale op class";
              if Isa.op_class_index cls <> cls_idx then add i "stale class index";
              let reads, writes = operands instr in
              List.iter (chk_operand i) reads;
              List.iter (chk_operand i) writes
          | Decode.Dfor { idx; lo; hi; step; id; exit } ->
              List.iter (chk_si i) [ idx; lo; hi; step ];
              if id < 0 || id >= d.Decode.n_fors then add i "for id %d out of range" id;
              chk_target i exit
          | Decode.Dforback { idx; id; body } ->
              chk_si i idx;
              if id < 0 || id >= d.Decode.n_fors then add i "for id %d out of range" id;
              chk_target i body
          | Decode.Dwhile { cond; exit } -> chk_si i cond; chk_target i exit
          | Decode.Dif { cond; else_ } -> chk_si i cond; chk_target i else_
          | Decode.Djmp t | Decode.Dgoto t -> chk_target i t
          | Decode.Denter _ | Decode.Dexit _ -> ()
          | Decode.Daddi { d; a; _ } | Decode.Dmuli { d; a; _ } ->
              chk_si i d; chk_si i a
          | Decode.Dloadf_at { dst; buf; imm; _ } ->
              chk_sf i dst; chk_buf i buf Isa.F32;
              if imm < 0 then add i "negative load index %d" imm
          | Decode.Dloadi_at { dst; buf; imm; _ } ->
              chk_si i dst; chk_buf i buf Isa.I32;
              if imm < 0 then add i "negative load index %d" imm
          | Decode.Dstoref_at { buf; imm; src } ->
              chk_sf i src; chk_buf i buf Isa.F32;
              if imm < 0 then add i "negative store index %d" imm
          | Decode.Dstorei_at { buf; imm; src } ->
              chk_si i src; chk_buf i buf Isa.I32;
              if imm < 0 then add i "negative store index %d" imm
          | Decode.Dphantom { cls; cls_idx; n } ->
              if n < 1 then add i "phantom with count %d" n;
              if Isa.op_class_index cls <> cls_idx then add i "stale class index"
          | Decode.Dsmuladd { t; a; b; d; x; y } ->
              List.iter (chk_sf i) [ t; a; b; d; x; y ];
              if x <> t && y <> t then add i "muladd does not read its product"
          | Decode.Dvmuladd { t; a; b; d; x; y } ->
              List.iter (chk_vf i) [ t; a; b; d; x; y ];
              if x <> t && y <> t then add i "muladd does not read its product")
        code)
    d.Decode.phases;
  List.rev !issues
