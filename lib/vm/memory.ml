(* Buffer store backing a program run. Each declared buffer is bound to an
   OCaml array and assigned a page-aligned base address in a flat virtual
   address space, so the cache simulator sees realistic, non-overlapping
   addresses. Modeled element size is 4 bytes (the paper's kernels are
   single-precision / 32-bit), even though values are held in OCaml's native
   64-bit representations. *)

type buffer = Fbuf of float array | Ibuf of int array

type t = {
  decls : Isa.buffer_decl array;
  buffers : buffer array;
  bases : int array; (* modeled base byte address per buffer *)
}

exception Bad_binding of string

let page = 4096
let first_base = 0x100000

let buffer_length = function
  | Fbuf a -> Array.length a
  | Ibuf a -> Array.length a

let create (prog : Isa.program) bindings =
  let n = Array.length prog.buffers in
  let buffers =
    Array.map
      (fun (d : Isa.buffer_decl) ->
        match List.assoc_opt d.buf_name bindings with
        | None -> raise (Bad_binding ("missing buffer binding: " ^ d.buf_name))
        | Some (Fbuf _ as b) when d.elt = Isa.F32 -> b
        | Some (Ibuf _ as b) when d.elt = Isa.I32 -> b
        | Some _ ->
            raise (Bad_binding ("buffer " ^ d.buf_name ^ " bound with wrong element type")))
      prog.buffers
  in
  List.iter
    (fun (name, _) ->
      if not (Array.exists (fun (d : Isa.buffer_decl) -> d.buf_name = name) prog.buffers)
      then raise (Bad_binding ("binding for undeclared buffer: " ^ name)))
    bindings;
  let bases = Array.make n 0 in
  let next = ref first_base in
  for i = 0 to n - 1 do
    bases.(i) <- !next;
    let bytes = buffer_length buffers.(i) * 4 in
    next := !next + ((bytes + page - 1) / page + 1) * page
  done;
  { decls = prog.buffers; buffers; bases }

exception Trap of string

let trap fmt = Fmt.kstr (fun s -> raise (Trap s)) fmt

let check t (Isa.Buf b) idx =
  let len = buffer_length t.buffers.(b) in
  if idx < 0 || idx >= len then
    trap "out-of-bounds access: %s[%d] (length %d)" t.decls.(b).buf_name idx len

let get_f t (Isa.Buf b as buf) idx =
  check t buf idx;
  match t.buffers.(b) with
  | Fbuf a -> a.(idx)
  | Ibuf _ -> trap "type confusion reading %s as f32" t.decls.(b).buf_name

let get_i t (Isa.Buf b as buf) idx =
  check t buf idx;
  match t.buffers.(b) with
  | Ibuf a -> a.(idx)
  | Fbuf _ -> trap "type confusion reading %s as i32" t.decls.(b).buf_name

let set_f t (Isa.Buf b as buf) idx v =
  check t buf idx;
  match t.buffers.(b) with
  | Fbuf a -> a.(idx) <- v
  | Ibuf _ -> trap "type confusion writing %s as f32" t.decls.(b).buf_name

let set_i t (Isa.Buf b as buf) idx v =
  check t buf idx;
  match t.buffers.(b) with
  | Ibuf a -> a.(idx) <- v
  | Fbuf _ -> trap "type confusion writing %s as i32" t.decls.(b).buf_name

(* Bulk accessors for the decoded fast path: one bounds/type check per
   contiguous vector access instead of one per lane. When any lane would
   be out of bounds — or the buffer has the wrong element type — they fall
   back to the per-lane accessors, so trap messages, trap order, and
   partially-written destination lanes are identical to a lane-by-lane
   loop. *)
let get_f_block t (Isa.Buf b as buf) base dst w =
  match t.buffers.(b) with
  | Fbuf a when base >= 0 && base + w <= Array.length a -> Array.blit a base dst 0 w
  | _ ->
      for l = 0 to w - 1 do
        dst.(l) <- get_f t buf (base + l)
      done

let get_i_block t (Isa.Buf b as buf) base dst w =
  match t.buffers.(b) with
  | Ibuf a when base >= 0 && base + w <= Array.length a -> Array.blit a base dst 0 w
  | _ ->
      for l = 0 to w - 1 do
        dst.(l) <- get_i t buf (base + l)
      done

let set_f_block t (Isa.Buf b as buf) base src w =
  match t.buffers.(b) with
  | Fbuf a when base >= 0 && base + w <= Array.length a -> Array.blit src 0 a base w
  | _ ->
      for l = 0 to w - 1 do
        set_f t buf (base + l) src.(l)
      done

let set_i_block t (Isa.Buf b as buf) base src w =
  match t.buffers.(b) with
  | Ibuf a when base >= 0 && base + w <= Array.length a -> Array.blit src 0 a base w
  | _ ->
      for l = 0 to w - 1 do
        set_i t buf (base + l) src.(l)
      done

let address t (Isa.Buf b) idx = t.bases.(b) + (idx * 4)

let length t (Isa.Buf b) = buffer_length t.buffers.(b)

let find t name =
  let rec go i =
    if i >= Array.length t.decls then raise Not_found
    else if t.decls.(i).buf_name = name then (Isa.Buf i, t.buffers.(i))
    else go (i + 1)
  in
  go 0

let total_bytes t =
  Array.fold_left (fun acc b -> acc + (buffer_length b * 4)) 0 t.buffers
