(* Closure-compiled execution backend: threaded code for decoded op arrays.

   [Interp]'s [Decoded]/[Optimized] strategies still pay, per dynamic op, a
   [match] over the [Decode.dop] tag, a second [match] over [Isa.instr] for
   straight-line ops, the register-wrapper field reads, and the full
   count/instructions/fuel bookkeeping. This module removes all of that by
   compiling each phase's op array once per run into chained OCaml
   closures (classic threaded code):

   - every straight-line op becomes a pre-resolved action closure: operand
     indices, the operator, the mask slot and the memory hook are resolved
     at compile time, so executing the op is one indirect call into
     specialized code;
   - basic blocks (maximal straight-line runs between branch targets)
     become superinstruction closures: the block's actions run back to
     back with no dispatch in between, and its count/instruction/fuel
     bookkeeping is hoisted into per-segment batch increments;
   - control ops compile to closures that tail-call the successor closure
     through a node table — the loop back edge is a single compare +
     direct jump to the body's block closure.

   Compiled closures take the per-thread execution state ({!tctx}: register
   files, counts row, event hook, thread id) as an argument rather than
   capturing it, so one compilation is shared by every simulated thread of
   a parallel phase — compile cost is per (phase, run), not per (phase,
   thread, run), which is what makes the backend profitable on short
   many-thread jobs. Reading a field of the [tctx] argument costs the same
   one load as reading a closure environment slot, so per-op execution is
   not slower for it.

   Observable equivalence. The compiled program produces bit-identical
   registers, memory, {!Counts} rows, totals, event streams, traces and
   traps to [Interp]'s flat executor. Bookkeeping batching follows the
   fuel waiver documented at [Interp]'s [Dphantom]/[Dfor] arms: a batched
   fuel decrement may trap up to n-1 ops early only when the observable
   state at the trap is identical (counts die with the exception). To keep
   trap *messages* and event prefixes exact, a batch segment never extends
   past an op that can trap or emit memory events — such ops terminate
   their segment, so "fuel exhausted" still wins exactly when the
   cumulative cost exceeds the fuel, and no event can precede a fuel trap
   that the reference would have refused. When a trace sink is attached,
   compilation falls back to per-op bookkeeping closures so the
   [Trace.Op] stream keeps its exact per-op order (same rule as the
   interpreter's traced [Dphantom] arm); execution is still threaded.

   Equivalence is property-tested four ways (Tree vs Decoded vs Optimized
   vs Compiled) in test/test_compile.ml, including seeded miscompilation
   mutants that the differential must refute. *)

type tctx = {
  si : int array;
  sf : float array;
  vf : float array array;
  vi : int array array;
  vm : bool array array;
  row : int array;
  thread : int;
  emit :
    nt:bool ->
    buf:Isa.buf ->
    idx:int ->
    bytes:int ->
    kind:Event.kind ->
    chain:bool ->
    unit;
}

type ctx = {
  mem : Memory.t;
  width : int;
  scratch : float array;
  all_true : bool array;
  instructions : int ref;
  fuel : int ref;
  prog_name : string;
  for_cur : int array;
  for_hi : int array;
  for_step : int array;
  trace : Trace.sink option;
}

(* Lane accesses below use [Array.unsafe_get]/[Array.unsafe_set]
   directly (the primitives inline to a bare load/store even without
   flambda; a named wrapper would not). The lane variable [l] is always
   in [0, width) by loop construction and every vector-register row is
   built with exactly [width] slots, so skipping the bounds check is
   sound. Register-file and memory-buffer indexing stays checked: the
   compiler-mutation differentials execute deliberately broken op
   arrays, which must fault exactly like the interpreter does. *)

(* Pre-resolved count-row indices (same constants as Interp's). *)
let salu_idx = Isa.op_class_index Isa.Salu
let branch_idx = Isa.op_class_index Isa.Branch
let sfp_idx = Isa.op_class_index Isa.Sfp
let vfp_idx = Isa.op_class_index Isa.Vfp
let sload_idx = Isa.op_class_index Isa.Sload
let sstore_idx = Isa.op_class_index Isa.Sstore

(* Ops whose action can raise a trap (division, lane checks, any memory
   access) or emit observable memory events. They terminate a bookkeeping
   segment: batching must never move a fuel trap across an event or turn
   an op's own trap into a premature fuel trap (see module comment). *)
let instr_barrier (ins : Isa.instr) =
  match ins with
  | Ibin ((Idiv | Imod), _, _, _) | Vibin ((Idiv | Imod), _, _, _)
  | Vpermutef _ | Vextractf _ | Vinsertf _
  | Loadf _ | Loadi _ | Storef _ | Storei _
  | Vloadf _ | Vloadi _ | Vloadf_strided _
  | Vgatherf _ | Vgatheri _
  | Vstoref _ | Vstorei _ | Vstoref_nt _ | Vstoref_strided _
  | Vscatterf _ | Vscatteri _ -> true
  | _ -> false

let compile ctx (code : Decode.dop array) : tctx -> unit =
  let mem = ctx.mem and width = ctx.width in
  let scratch = ctx.scratch and all_true = ctx.all_true in
  let instructions = ctx.instructions and fuel = ctx.fuel in
  let prog_name = ctx.prog_name in
  let for_cur = ctx.for_cur and for_hi = ctx.for_hi
  and for_step = ctx.for_step in
  let trace = ctx.trace in
  (* Mask slot resolution, compile-time specialized: the unmasked case is
     a constant, the masked case one row read from the argument state. *)
  let act_get = function
    | None -> fun (_ : tctx) -> all_true
    | Some (Isa.Vm m) -> fun (t : tctx) -> t.vm.(m)
  in
  let emit_lanes_act =
    match trace with
    | None -> fun (_ : tctx) _ -> ()
    | Some f ->
        fun (t : tctx) act ->
          let active =
            Array.fold_left (fun a b -> if b then a + 1 else a) 0 act
          in
          f (Trace.Lanes { thread = t.thread; active; width })
  in
  (* Semantic effect of one straight-line instruction, with operands,
     operators and masks resolved now. Arm for arm the bodies are
     Interp.run_flat's [exec_instr]. *)
  let action_of_instr (instr : Isa.instr) : tctx -> unit =
    match instr with
    | Iconst (Si d, n) -> fun t -> t.si.(d) <- n
    | Fconst (Sf d, x) -> fun t -> t.sf.(d) <- x
    | Imov (Si d, Si a) ->
        fun t ->
          let si = t.si in
          si.(d) <- si.(a)
    | Fmov (Sf d, Sf a) ->
        fun t ->
          let sf = t.sf in
          sf.(d) <- sf.(a)
    | Ibin (op, Si d, Si a, Si b) -> (
        match op with
        | Iadd ->
            fun t ->
              let si = t.si in
              si.(d) <- si.(a) + si.(b)
        | Isub ->
            fun t ->
              let si = t.si in
              si.(d) <- si.(a) - si.(b)
        | Imul ->
            fun t ->
              let si = t.si in
              si.(d) <- si.(a) * si.(b)
        | Idiv ->
            fun t ->
              let si = t.si in
              let b = si.(b) in
              si.(d) <-
                (if b = 0 then Memory.trap "integer division by zero"
                 else si.(a) / b)
        | Imod ->
            fun t ->
              let si = t.si in
              let b = si.(b) in
              si.(d) <-
                (if b = 0 then Memory.trap "integer modulo by zero"
                 else si.(a) mod b)
        | Iand ->
            fun t ->
              let si = t.si in
              si.(d) <- si.(a) land si.(b)
        | Ior ->
            fun t ->
              let si = t.si in
              si.(d) <- si.(a) lor si.(b)
        | Ixor ->
            fun t ->
              let si = t.si in
              si.(d) <- si.(a) lxor si.(b)
        | Ishl ->
            fun t ->
              let si = t.si in
              si.(d) <- si.(a) lsl si.(b)
        | Ishr ->
            fun t ->
              let si = t.si in
              si.(d) <- si.(a) asr si.(b)
        | Imin ->
            fun t ->
              let si = t.si in
              let a = si.(a) and b = si.(b) in
              si.(d) <- (if a <= b then a else b)
        | Imax ->
            fun t ->
              let si = t.si in
              let a = si.(a) and b = si.(b) in
              si.(d) <- (if a >= b then a else b))
    | Fbin (op, Sf d, Sf a, Sf b) -> (
        match op with
        | Fadd ->
            fun t ->
              let sf = t.sf in
              sf.(d) <- sf.(a) +. sf.(b)
        | Fsub ->
            fun t ->
              let sf = t.sf in
              sf.(d) <- sf.(a) -. sf.(b)
        | Fmul ->
            fun t ->
              let sf = t.sf in
              sf.(d) <- sf.(a) *. sf.(b)
        | Fdiv ->
            fun t ->
              let sf = t.sf in
              sf.(d) <- sf.(a) /. sf.(b)
        | Fmin ->
            fun t ->
              let sf = t.sf in
              sf.(d) <- Float.min sf.(a) sf.(b)
        | Fmax ->
            fun t ->
              let sf = t.sf in
              sf.(d) <- Float.max sf.(a) sf.(b))
    | Fma (Sf d, Sf a, Sf b, Sf c) ->
        fun t ->
          let sf = t.sf in
          sf.(d) <- (sf.(a) *. sf.(b)) +. sf.(c)
    | Funop (op, Sf d, Sf a) -> (
        match op with
        | Fneg ->
            fun t ->
              let sf = t.sf in
              sf.(d) <- -.sf.(a)
        | Fabs ->
            fun t ->
              let sf = t.sf in
              sf.(d) <- Float.abs sf.(a)
        | Fsqrt ->
            fun t ->
              let sf = t.sf in
              sf.(d) <- Float.sqrt sf.(a)
        | Frsqrt ->
            fun t ->
              let sf = t.sf in
              sf.(d) <- 1. /. Float.sqrt sf.(a)
        | Fexp ->
            fun t ->
              let sf = t.sf in
              sf.(d) <- Float.exp sf.(a)
        | Flog ->
            fun t ->
              let sf = t.sf in
              sf.(d) <- Float.log sf.(a)
        | Ffloor ->
            fun t ->
              let sf = t.sf in
              sf.(d) <- Float.floor sf.(a))
    | Icmp (op, Si d, Si a, Si b) -> (
        match op with
        | Ceq ->
            fun t ->
              let si = t.si in
              si.(d) <- (if si.(a) = si.(b) then 1 else 0)
        | Cne ->
            fun t ->
              let si = t.si in
              si.(d) <- (if si.(a) <> si.(b) then 1 else 0)
        | Clt ->
            fun t ->
              let si = t.si in
              si.(d) <- (if si.(a) < si.(b) then 1 else 0)
        | Cle ->
            fun t ->
              let si = t.si in
              si.(d) <- (if si.(a) <= si.(b) then 1 else 0)
        | Cgt ->
            fun t ->
              let si = t.si in
              si.(d) <- (if si.(a) > si.(b) then 1 else 0)
        | Cge ->
            fun t ->
              let si = t.si in
              si.(d) <- (if si.(a) >= si.(b) then 1 else 0))
    | Fcmp (op, Si d, Sf a, Sf b) -> (
        match op with
        | Ceq ->
            fun t ->
              let sf = t.sf in
              t.si.(d) <- (if Float.equal sf.(a) sf.(b) then 1 else 0)
        | Cne ->
            fun t ->
              let sf = t.sf in
              t.si.(d) <- (if not (Float.equal sf.(a) sf.(b)) then 1 else 0)
        | Clt ->
            fun t ->
              let sf = t.sf in
              t.si.(d) <- (if sf.(a) < sf.(b) then 1 else 0)
        | Cle ->
            fun t ->
              let sf = t.sf in
              t.si.(d) <- (if sf.(a) <= sf.(b) then 1 else 0)
        | Cgt ->
            fun t ->
              let sf = t.sf in
              t.si.(d) <- (if sf.(a) > sf.(b) then 1 else 0)
        | Cge ->
            fun t ->
              let sf = t.sf in
              t.si.(d) <- (if sf.(a) >= sf.(b) then 1 else 0))
    | Iselect (Si d, Si c, Si a, Si b) ->
        fun t ->
          let si = t.si in
          si.(d) <- (if si.(c) <> 0 then si.(a) else si.(b))
    | Fselect (Sf d, Si c, Sf a, Sf b) ->
        fun t ->
          let sf = t.sf in
          sf.(d) <- (if t.si.(c) <> 0 then sf.(a) else sf.(b))
    | Fofi (Sf d, Si a) -> fun t -> t.sf.(d) <- float_of_int t.si.(a)
    | Ioff (Si d, Sf a) -> fun t -> t.si.(d) <- int_of_float t.sf.(a)
    | Loadf { dst = Sf dst; buf; idx = Si idx; chain } ->
        fun t ->
          let i = t.si.(idx) in
          t.sf.(dst) <- Memory.get_f mem buf i;
          t.emit ~nt:false ~buf ~idx:i ~bytes:4 ~kind:Read ~chain
    | Loadi { dst = Si dst; buf; idx = Si idx; chain } ->
        fun t ->
          let si = t.si in
          let i = si.(idx) in
          si.(dst) <- Memory.get_i mem buf i;
          t.emit ~nt:false ~buf ~idx:i ~bytes:4 ~kind:Read ~chain
    | Storef { buf; idx = Si idx; src = Sf src } ->
        fun t ->
          let i = t.si.(idx) in
          Memory.set_f mem buf i t.sf.(src);
          t.emit ~nt:false ~buf ~idx:i ~bytes:4 ~kind:Write ~chain:false
    | Storei { buf; idx = Si idx; src = Si src } ->
        fun t ->
          let si = t.si in
          let i = si.(idx) in
          Memory.set_i mem buf i si.(src);
          t.emit ~nt:false ~buf ~idx:i ~bytes:4 ~kind:Write ~chain:false
    | Vmovf (Vf d, Vf a) ->
        fun t ->
          let vf = t.vf in
          Array.blit vf.(a) 0 vf.(d) 0 width
    | Vmovi (Vi d, Vi a) ->
        fun t ->
          let vi = t.vi in
          Array.blit vi.(a) 0 vi.(d) 0 width
    | Vbroadcastf (Vf d, Sf a) ->
        fun t -> Array.fill t.vf.(d) 0 width t.sf.(a)
    | Vbroadcasti (Vi d, Si a) ->
        fun t -> Array.fill t.vi.(d) 0 width t.si.(a)
    | Viota (Vi d) ->
        fun t ->
          let v = t.vi.(d) in
          for l = 0 to width - 1 do Array.unsafe_set v l (l) done
    | Vfbin (op, Vf d, Vf a, Vf b) -> (
        match op with
        | Fadd ->
            fun t ->
              let vf = t.vf in
              let d = vf.(d) and a = vf.(a) and b = vf.(b) in
              for l = 0 to width - 1 do Array.unsafe_set d l ((Array.unsafe_get a l) +. (Array.unsafe_get b l)) done
        | Fsub ->
            fun t ->
              let vf = t.vf in
              let d = vf.(d) and a = vf.(a) and b = vf.(b) in
              for l = 0 to width - 1 do Array.unsafe_set d l ((Array.unsafe_get a l) -. (Array.unsafe_get b l)) done
        | Fmul ->
            fun t ->
              let vf = t.vf in
              let d = vf.(d) and a = vf.(a) and b = vf.(b) in
              for l = 0 to width - 1 do Array.unsafe_set d l ((Array.unsafe_get a l) *. (Array.unsafe_get b l)) done
        | Fdiv ->
            fun t ->
              let vf = t.vf in
              let d = vf.(d) and a = vf.(a) and b = vf.(b) in
              for l = 0 to width - 1 do Array.unsafe_set d l ((Array.unsafe_get a l) /. (Array.unsafe_get b l)) done
        | Fmin ->
            fun t ->
              let vf = t.vf in
              let d = vf.(d) and a = vf.(a) and b = vf.(b) in
              for l = 0 to width - 1 do Array.unsafe_set d l (Float.min (Array.unsafe_get a l) (Array.unsafe_get b l)) done
        | Fmax ->
            fun t ->
              let vf = t.vf in
              let d = vf.(d) and a = vf.(a) and b = vf.(b) in
              for l = 0 to width - 1 do Array.unsafe_set d l (Float.max (Array.unsafe_get a l) (Array.unsafe_get b l)) done)
    | Vfma (Vf d, Vf a, Vf b, Vf c) ->
        fun t ->
          let vf = t.vf in
          let d = vf.(d) and a = vf.(a) and b = vf.(b) and c = vf.(c) in
          for l = 0 to width - 1 do Array.unsafe_set d l (((Array.unsafe_get a l) *. (Array.unsafe_get b l)) +. (Array.unsafe_get c l)) done
    | Vfunop (op, Vf d, Vf a) -> (
        match op with
        | Fneg ->
            fun t ->
              let vf = t.vf in
              let d = vf.(d) and a = vf.(a) in
              for l = 0 to width - 1 do Array.unsafe_set d l (-.(Array.unsafe_get a l)) done
        | Fabs ->
            fun t ->
              let vf = t.vf in
              let d = vf.(d) and a = vf.(a) in
              for l = 0 to width - 1 do Array.unsafe_set d l (Float.abs (Array.unsafe_get a l)) done
        | Fsqrt ->
            fun t ->
              let vf = t.vf in
              let d = vf.(d) and a = vf.(a) in
              for l = 0 to width - 1 do Array.unsafe_set d l (Float.sqrt (Array.unsafe_get a l)) done
        | Frsqrt ->
            fun t ->
              let vf = t.vf in
              let d = vf.(d) and a = vf.(a) in
              for l = 0 to width - 1 do Array.unsafe_set d l (1. /. Float.sqrt (Array.unsafe_get a l)) done
        | Fexp ->
            fun t ->
              let vf = t.vf in
              let d = vf.(d) and a = vf.(a) in
              for l = 0 to width - 1 do Array.unsafe_set d l (Float.exp (Array.unsafe_get a l)) done
        | Flog ->
            fun t ->
              let vf = t.vf in
              let d = vf.(d) and a = vf.(a) in
              for l = 0 to width - 1 do Array.unsafe_set d l (Float.log (Array.unsafe_get a l)) done
        | Ffloor ->
            fun t ->
              let vf = t.vf in
              let d = vf.(d) and a = vf.(a) in
              for l = 0 to width - 1 do Array.unsafe_set d l (Float.floor (Array.unsafe_get a l)) done)
    | Vibin (op, Vi d, Vi a, Vi b) -> (
        match op with
        | Iadd ->
            fun t ->
              let vi = t.vi in
              let d = vi.(d) and a = vi.(a) and b = vi.(b) in
              for l = 0 to width - 1 do Array.unsafe_set d l ((Array.unsafe_get a l) + (Array.unsafe_get b l)) done
        | Isub ->
            fun t ->
              let vi = t.vi in
              let d = vi.(d) and a = vi.(a) and b = vi.(b) in
              for l = 0 to width - 1 do Array.unsafe_set d l ((Array.unsafe_get a l) - (Array.unsafe_get b l)) done
        | Imul ->
            fun t ->
              let vi = t.vi in
              let d = vi.(d) and a = vi.(a) and b = vi.(b) in
              for l = 0 to width - 1 do Array.unsafe_set d l ((Array.unsafe_get a l) * (Array.unsafe_get b l)) done
        | Idiv ->
            fun t ->
              let vi = t.vi in
              let d = vi.(d) and a = vi.(a) and b = vi.(b) in
              for l = 0 to width - 1 do
                Array.unsafe_set d l
                  (if (Array.unsafe_get b l) = 0 then Memory.trap "integer division by zero"
                   else (Array.unsafe_get a l) / (Array.unsafe_get b l))
              done
        | Imod ->
            fun t ->
              let vi = t.vi in
              let d = vi.(d) and a = vi.(a) and b = vi.(b) in
              for l = 0 to width - 1 do
                Array.unsafe_set d l
                  (if (Array.unsafe_get b l) = 0 then Memory.trap "integer modulo by zero"
                   else (Array.unsafe_get a l) mod (Array.unsafe_get b l))
              done
        | Iand ->
            fun t ->
              let vi = t.vi in
              let d = vi.(d) and a = vi.(a) and b = vi.(b) in
              for l = 0 to width - 1 do Array.unsafe_set d l ((Array.unsafe_get a l) land (Array.unsafe_get b l)) done
        | Ior ->
            fun t ->
              let vi = t.vi in
              let d = vi.(d) and a = vi.(a) and b = vi.(b) in
              for l = 0 to width - 1 do Array.unsafe_set d l ((Array.unsafe_get a l) lor (Array.unsafe_get b l)) done
        | Ixor ->
            fun t ->
              let vi = t.vi in
              let d = vi.(d) and a = vi.(a) and b = vi.(b) in
              for l = 0 to width - 1 do Array.unsafe_set d l ((Array.unsafe_get a l) lxor (Array.unsafe_get b l)) done
        | Ishl ->
            fun t ->
              let vi = t.vi in
              let d = vi.(d) and a = vi.(a) and b = vi.(b) in
              for l = 0 to width - 1 do Array.unsafe_set d l ((Array.unsafe_get a l) lsl (Array.unsafe_get b l)) done
        | Ishr ->
            fun t ->
              let vi = t.vi in
              let d = vi.(d) and a = vi.(a) and b = vi.(b) in
              for l = 0 to width - 1 do Array.unsafe_set d l ((Array.unsafe_get a l) asr (Array.unsafe_get b l)) done
        | Imin ->
            fun t ->
              let vi = t.vi in
              let d = vi.(d) and a = vi.(a) and b = vi.(b) in
              for l = 0 to width - 1 do
                Array.unsafe_set d l ((if (Array.unsafe_get a l) <= (Array.unsafe_get b l) then (Array.unsafe_get a l) else (Array.unsafe_get b l)))
              done
        | Imax ->
            fun t ->
              let vi = t.vi in
              let d = vi.(d) and a = vi.(a) and b = vi.(b) in
              for l = 0 to width - 1 do
                Array.unsafe_set d l ((if (Array.unsafe_get a l) >= (Array.unsafe_get b l) then (Array.unsafe_get a l) else (Array.unsafe_get b l)))
              done)
    | Vfcmp (op, Vm d, Vf a, Vf b) -> (
        match op with
        | Ceq ->
            fun t ->
              let vf = t.vf in
              let d = t.vm.(d) and a = vf.(a) and b = vf.(b) in
              for l = 0 to width - 1 do Array.unsafe_set d l (Float.equal (Array.unsafe_get a l) (Array.unsafe_get b l)) done
        | Cne ->
            fun t ->
              let vf = t.vf in
              let d = t.vm.(d) and a = vf.(a) and b = vf.(b) in
              for l = 0 to width - 1 do
                Array.unsafe_set d l (not (Float.equal (Array.unsafe_get a l) (Array.unsafe_get b l)))
              done
        | Clt ->
            fun t ->
              let vf = t.vf in
              let d = t.vm.(d) and a = vf.(a) and b = vf.(b) in
              for l = 0 to width - 1 do Array.unsafe_set d l ((Array.unsafe_get a l) < (Array.unsafe_get b l)) done
        | Cle ->
            fun t ->
              let vf = t.vf in
              let d = t.vm.(d) and a = vf.(a) and b = vf.(b) in
              for l = 0 to width - 1 do Array.unsafe_set d l ((Array.unsafe_get a l) <= (Array.unsafe_get b l)) done
        | Cgt ->
            fun t ->
              let vf = t.vf in
              let d = t.vm.(d) and a = vf.(a) and b = vf.(b) in
              for l = 0 to width - 1 do Array.unsafe_set d l ((Array.unsafe_get a l) > (Array.unsafe_get b l)) done
        | Cge ->
            fun t ->
              let vf = t.vf in
              let d = t.vm.(d) and a = vf.(a) and b = vf.(b) in
              for l = 0 to width - 1 do Array.unsafe_set d l ((Array.unsafe_get a l) >= (Array.unsafe_get b l)) done)
    | Vicmp (op, Vm d, Vi a, Vi b) -> (
        match op with
        | Ceq ->
            fun t ->
              let vi = t.vi in
              let d = t.vm.(d) and a = vi.(a) and b = vi.(b) in
              for l = 0 to width - 1 do Array.unsafe_set d l ((Array.unsafe_get a l) = (Array.unsafe_get b l)) done
        | Cne ->
            fun t ->
              let vi = t.vi in
              let d = t.vm.(d) and a = vi.(a) and b = vi.(b) in
              for l = 0 to width - 1 do Array.unsafe_set d l ((Array.unsafe_get a l) <> (Array.unsafe_get b l)) done
        | Clt ->
            fun t ->
              let vi = t.vi in
              let d = t.vm.(d) and a = vi.(a) and b = vi.(b) in
              for l = 0 to width - 1 do Array.unsafe_set d l ((Array.unsafe_get a l) < (Array.unsafe_get b l)) done
        | Cle ->
            fun t ->
              let vi = t.vi in
              let d = t.vm.(d) and a = vi.(a) and b = vi.(b) in
              for l = 0 to width - 1 do Array.unsafe_set d l ((Array.unsafe_get a l) <= (Array.unsafe_get b l)) done
        | Cgt ->
            fun t ->
              let vi = t.vi in
              let d = t.vm.(d) and a = vi.(a) and b = vi.(b) in
              for l = 0 to width - 1 do Array.unsafe_set d l ((Array.unsafe_get a l) > (Array.unsafe_get b l)) done
        | Cge ->
            fun t ->
              let vi = t.vi in
              let d = t.vm.(d) and a = vi.(a) and b = vi.(b) in
              for l = 0 to width - 1 do Array.unsafe_set d l ((Array.unsafe_get a l) >= (Array.unsafe_get b l)) done)
    | Vselectf (Vf d, Vm m, Vf a, Vf b) ->
        fun t ->
          let vf = t.vf in
          let d = vf.(d) and m = t.vm.(m) and a = vf.(a) and b = vf.(b) in
          for l = 0 to width - 1 do
            Array.unsafe_set d l ((if (Array.unsafe_get m l) then (Array.unsafe_get a l) else (Array.unsafe_get b l)))
          done
    | Vselecti (Vi d, Vm m, Vi a, Vi b) ->
        fun t ->
          let vi = t.vi in
          let d = vi.(d) and m = t.vm.(m) and a = vi.(a) and b = vi.(b) in
          for l = 0 to width - 1 do
            Array.unsafe_set d l ((if (Array.unsafe_get m l) then (Array.unsafe_get a l) else (Array.unsafe_get b l)))
          done
    | Vfofi (Vf d, Vi a) ->
        fun t ->
          let d = t.vf.(d) and a = t.vi.(a) in
          for l = 0 to width - 1 do Array.unsafe_set d l (float_of_int (Array.unsafe_get a l)) done
    | Vioff (Vi d, Vf a) ->
        fun t ->
          let d = t.vi.(d) and a = t.vf.(a) in
          for l = 0 to width - 1 do Array.unsafe_set d l (int_of_float (Array.unsafe_get a l)) done
    | Vpermutef (Vf d, Vf a, pat) ->
        let n = Array.length pat in
        fun t ->
          let vf = t.vf in
          let d = vf.(d) and a = vf.(a) in
          for l = 0 to width - 1 do
            let s = pat.(l mod n) in
            if s < 0 || s >= width then
              Memory.trap "vperm lane %d out of range" s;
            Array.unsafe_set scratch l (a.(s))
          done;
          Array.blit scratch 0 d 0 width
    | Vextractf (Sf d, Vf a, Si lane) ->
        fun t ->
          let l = t.si.(lane) in
          if l < 0 || l >= width then
            Memory.trap "vextract lane %d out of range" l;
          t.sf.(d) <- (Array.unsafe_get t.vf.(a) l)
    | Vinsertf (Vf d, Si lane, Sf a) ->
        fun t ->
          let l = t.si.(lane) in
          if l < 0 || l >= width then
            Memory.trap "vinsert lane %d out of range" l;
          Array.unsafe_set t.vf.(d) l (t.sf.(a))
    | Vreducef (r, Sf d, Vf a) -> (
        match r with
        | Rsum ->
            fun t ->
              let a = t.vf.(a) in
              let acc = ref a.(0) in
              for l = 1 to width - 1 do acc := !acc +. (Array.unsafe_get a l) done;
              t.sf.(d) <- !acc
        | Rmin ->
            fun t ->
              let a = t.vf.(a) in
              let acc = ref a.(0) in
              for l = 1 to width - 1 do acc := Float.min !acc (Array.unsafe_get a l) done;
              t.sf.(d) <- !acc
        | Rmax ->
            fun t ->
              let a = t.vf.(a) in
              let acc = ref a.(0) in
              for l = 1 to width - 1 do acc := Float.max !acc (Array.unsafe_get a l) done;
              t.sf.(d) <- !acc)
    | Vreducei (r, Si d, Vi a) -> (
        match r with
        | Rsum ->
            fun t ->
              let a = t.vi.(a) in
              let acc = ref a.(0) in
              for l = 1 to width - 1 do acc := !acc + (Array.unsafe_get a l) done;
              t.si.(d) <- !acc
        | Rmin ->
            fun t ->
              let a = t.vi.(a) in
              let acc = ref a.(0) in
              for l = 1 to width - 1 do
                if (Array.unsafe_get a l) < !acc then acc := (Array.unsafe_get a l)
              done;
              t.si.(d) <- !acc
        | Rmax ->
            fun t ->
              let a = t.vi.(a) in
              let acc = ref a.(0) in
              for l = 1 to width - 1 do
                if (Array.unsafe_get a l) > !acc then acc := (Array.unsafe_get a l)
              done;
              t.si.(d) <- !acc)
    | Mconst (Vm d, v) -> fun t -> Array.fill t.vm.(d) 0 width v
    | Mpattern (Vm d, pat) ->
        let n = Array.length pat in
        fun t ->
          let d = t.vm.(d) in
          for l = 0 to width - 1 do Array.unsafe_set d l (pat.(l mod n)) done
    | Mfirst (Vm d, Si n) ->
        fun t ->
          let d = t.vm.(d) in
          let n = t.si.(n) in
          for l = 0 to width - 1 do Array.unsafe_set d l (l < n) done
    | Mnot (Vm d, Vm a) ->
        fun t ->
          let vm = t.vm in
          let d = vm.(d) and a = vm.(a) in
          for l = 0 to width - 1 do Array.unsafe_set d l (not (Array.unsafe_get a l)) done
    | Mand (Vm d, Vm a, Vm b) ->
        fun t ->
          let vm = t.vm in
          let d = vm.(d) and a = vm.(a) and b = vm.(b) in
          for l = 0 to width - 1 do Array.unsafe_set d l ((Array.unsafe_get a l) && (Array.unsafe_get b l)) done
    | Mor (Vm d, Vm a, Vm b) ->
        fun t ->
          let vm = t.vm in
          let d = vm.(d) and a = vm.(a) and b = vm.(b) in
          for l = 0 to width - 1 do Array.unsafe_set d l ((Array.unsafe_get a l) || (Array.unsafe_get b l)) done
    | Many (Si d, Vm a) ->
        fun t ->
          t.si.(d) <- (if Array.exists Fun.id t.vm.(a) then 1 else 0)
    | Mall (Si d, Vm a) ->
        fun t ->
          t.si.(d) <- (if Array.for_all Fun.id t.vm.(a) then 1 else 0)
    | Mcount (Si d, Vm a) ->
        fun t ->
          t.si.(d) <-
            Array.fold_left
              (fun acc b -> if b then acc + 1 else acc)
              0 t.vm.(a)
    | Vloadf { dst = Vf dst; buf; idx = Si idx; mask = None } ->
        fun t ->
          emit_lanes_act t all_true;
          let base = t.si.(idx) in
          Memory.get_f_block mem buf base t.vf.(dst) width;
          t.emit ~nt:false ~buf ~idx:base ~bytes:(width * 4) ~kind:Read
            ~chain:false
    | Vloadf { dst = Vf dst; buf; idx = Si idx; mask } ->
        let get_act = act_get mask in
        fun t ->
          let d = t.vf.(dst) and act = get_act t in
          emit_lanes_act t act;
          let base = t.si.(idx) in
          let any = ref false in
          for l = 0 to width - 1 do
            if (Array.unsafe_get act l) then begin
              Array.unsafe_set d l (Memory.get_f mem buf (base + l));
              any := true
            end
          done;
          if !any then
            t.emit ~nt:false ~buf ~idx:base ~bytes:(width * 4) ~kind:Read
              ~chain:false
    | Vloadi { dst = Vi dst; buf; idx = Si idx; mask = None } ->
        fun t ->
          emit_lanes_act t all_true;
          let base = t.si.(idx) in
          Memory.get_i_block mem buf base t.vi.(dst) width;
          t.emit ~nt:false ~buf ~idx:base ~bytes:(width * 4) ~kind:Read
            ~chain:false
    | Vloadi { dst = Vi dst; buf; idx = Si idx; mask } ->
        let get_act = act_get mask in
        fun t ->
          let d = t.vi.(dst) and act = get_act t in
          emit_lanes_act t act;
          let base = t.si.(idx) in
          let any = ref false in
          for l = 0 to width - 1 do
            if (Array.unsafe_get act l) then begin
              Array.unsafe_set d l (Memory.get_i mem buf (base + l));
              any := true
            end
          done;
          if !any then
            t.emit ~nt:false ~buf ~idx:base ~bytes:(width * 4) ~kind:Read
              ~chain:false
    | Vloadf_strided { dst = Vf dst; buf; idx = Si idx; stride = Si stride } ->
        fun t ->
          let d = t.vf.(dst) in
          let base = t.si.(idx) and s = t.si.(stride) in
          for l = 0 to width - 1 do
            let i = base + (l * s) in
            Array.unsafe_set d l (Memory.get_f mem buf i);
            t.emit ~nt:false ~buf ~idx:i ~bytes:4 ~kind:Read ~chain:false
          done
    | Vgatherf { dst = Vf dst; buf; idx = Vi idx; mask; chain } ->
        let get_act = act_get mask in
        fun t ->
          let d = t.vf.(dst) and ix = t.vi.(idx) and act = get_act t in
          emit_lanes_act t act;
          for l = 0 to width - 1 do
            if (Array.unsafe_get act l) then begin
              Array.unsafe_set d l (Memory.get_f mem buf (Array.unsafe_get ix l));
              t.emit ~nt:false ~buf ~idx:(Array.unsafe_get ix l) ~bytes:4 ~kind:Read ~chain
            end
          done
    | Vgatheri { dst = Vi dst; buf; idx = Vi idx; mask; chain } ->
        let get_act = act_get mask in
        fun t ->
          let vi = t.vi in
          let d = vi.(dst) and ix = vi.(idx) and act = get_act t in
          emit_lanes_act t act;
          for l = 0 to width - 1 do
            if (Array.unsafe_get act l) then begin
              Array.unsafe_set d l (Memory.get_i mem buf (Array.unsafe_get ix l));
              t.emit ~nt:false ~buf ~idx:(Array.unsafe_get ix l) ~bytes:4 ~kind:Read ~chain
            end
          done
    | Vstoref { buf; idx = Si idx; src = Vf src; mask = None } ->
        fun t ->
          emit_lanes_act t all_true;
          let base = t.si.(idx) in
          Memory.set_f_block mem buf base t.vf.(src) width;
          t.emit ~nt:false ~buf ~idx:base ~bytes:(width * 4) ~kind:Write
            ~chain:false
    | Vstoref { buf; idx = Si idx; src = Vf src; mask } ->
        let get_act = act_get mask in
        fun t ->
          let s = t.vf.(src) and act = get_act t in
          emit_lanes_act t act;
          let base = t.si.(idx) in
          let any = ref false in
          for l = 0 to width - 1 do
            if (Array.unsafe_get act l) then begin
              Memory.set_f mem buf (base + l) (Array.unsafe_get s l);
              any := true
            end
          done;
          if !any then
            t.emit ~nt:false ~buf ~idx:base ~bytes:(width * 4) ~kind:Write
              ~chain:false
    | Vstorei { buf; idx = Si idx; src = Vi src; mask = None } ->
        fun t ->
          emit_lanes_act t all_true;
          let base = t.si.(idx) in
          Memory.set_i_block mem buf base t.vi.(src) width;
          t.emit ~nt:false ~buf ~idx:base ~bytes:(width * 4) ~kind:Write
            ~chain:false
    | Vstorei { buf; idx = Si idx; src = Vi src; mask } ->
        let get_act = act_get mask in
        fun t ->
          let s = t.vi.(src) and act = get_act t in
          emit_lanes_act t act;
          let base = t.si.(idx) in
          let any = ref false in
          for l = 0 to width - 1 do
            if (Array.unsafe_get act l) then begin
              Memory.set_i mem buf (base + l) (Array.unsafe_get s l);
              any := true
            end
          done;
          if !any then
            t.emit ~nt:false ~buf ~idx:base ~bytes:(width * 4) ~kind:Write
              ~chain:false
    | Vstoref_nt { buf; idx = Si idx; src = Vf src } ->
        fun t ->
          let base = t.si.(idx) in
          Memory.set_f_block mem buf base t.vf.(src) width;
          t.emit ~nt:true ~buf ~idx:base ~bytes:(width * 4) ~kind:Write
            ~chain:false
    | Vstoref_strided { buf; idx = Si idx; stride = Si stride; src = Vf src }
      ->
        fun t ->
          let s = t.vf.(src) in
          let base = t.si.(idx) and st = t.si.(stride) in
          for l = 0 to width - 1 do
            let i = base + (l * st) in
            Memory.set_f mem buf i (Array.unsafe_get s l);
            t.emit ~nt:false ~buf ~idx:i ~bytes:4 ~kind:Write ~chain:false
          done
    | Vscatterf { buf; idx = Vi idx; src = Vf src; mask } ->
        let get_act = act_get mask in
        fun t ->
          let ix = t.vi.(idx) and s = t.vf.(src) and act = get_act t in
          emit_lanes_act t act;
          for l = 0 to width - 1 do
            if (Array.unsafe_get act l) then begin
              Memory.set_f mem buf (Array.unsafe_get ix l) (Array.unsafe_get s l);
              t.emit ~nt:false ~buf ~idx:(Array.unsafe_get ix l) ~bytes:4 ~kind:Write
                ~chain:false
            end
          done
    | Vscatteri { buf; idx = Vi idx; src = Vi src; mask } ->
        let get_act = act_get mask in
        fun t ->
          let vi = t.vi in
          let ix = vi.(idx) and s = vi.(src) and act = get_act t in
          emit_lanes_act t act;
          for l = 0 to width - 1 do
            if (Array.unsafe_get act l) then begin
              Memory.set_i mem buf (Array.unsafe_get ix l) (Array.unsafe_get s l);
              t.emit ~nt:false ~buf ~idx:(Array.unsafe_get ix l) ~bytes:4 ~kind:Write
                ~chain:false
            end
          done
  in
  (* (class, row index, count) bookkeeping triples, optional action and
     segment-barrier flag of one straight-line op. Denter/Dexit are
     handled by the block builders (they cost nothing and only matter
     when traced). *)
  let sop_of (op : Decode.dop) =
    match op with
    | Decode.Dinstr { i; cls; cls_idx } ->
        ([ (cls, cls_idx, 1) ], Some (action_of_instr i), instr_barrier i)
    | Decode.Daddi { d; a; imm } ->
        ( [ (Isa.Salu, salu_idx, 1) ],
          Some (fun t -> t.si.(d) <- t.si.(a) + imm),
          false )
    | Decode.Dmuli { d; a; imm } ->
        ( [ (Isa.Salu, salu_idx, 1) ],
          Some (fun t -> t.si.(d) <- t.si.(a) * imm),
          false )
    | Decode.Dloadf_at { dst; buf; imm; chain } ->
        ( [ (Isa.Sload, sload_idx, 1) ],
          Some
            (fun t ->
              t.sf.(dst) <- Memory.get_f mem buf imm;
              t.emit ~nt:false ~buf ~idx:imm ~bytes:4 ~kind:Read ~chain),
          true )
    | Decode.Dloadi_at { dst; buf; imm; chain } ->
        ( [ (Isa.Sload, sload_idx, 1) ],
          Some
            (fun t ->
              t.si.(dst) <- Memory.get_i mem buf imm;
              t.emit ~nt:false ~buf ~idx:imm ~bytes:4 ~kind:Read ~chain),
          true )
    | Decode.Dstoref_at { buf; imm; src } ->
        ( [ (Isa.Sstore, sstore_idx, 1) ],
          Some
            (fun t ->
              Memory.set_f mem buf imm t.sf.(src);
              t.emit ~nt:false ~buf ~idx:imm ~bytes:4 ~kind:Write
                ~chain:false),
          true )
    | Decode.Dstorei_at { buf; imm; src } ->
        ( [ (Isa.Sstore, sstore_idx, 1) ],
          Some
            (fun t ->
              Memory.set_i mem buf imm t.si.(src);
              t.emit ~nt:false ~buf ~idx:imm ~bytes:4 ~kind:Write
                ~chain:false),
          true )
    | Decode.Dphantom { cls; cls_idx; n } -> ([ (cls, cls_idx, n) ], None, false)
    | Decode.Dsmuladd { t = tr; a; b; d; x; y } ->
        ( [ (Isa.Sfp, sfp_idx, 2) ],
          Some
            (fun t ->
              let sf = t.sf in
              sf.(tr) <- sf.(a) *. sf.(b);
              sf.(d) <- sf.(x) +. sf.(y)),
          false )
    | Decode.Dvmuladd { t = tr; a; b; d; x; y } ->
        ( [ (Isa.Vfp, vfp_idx, 2) ],
          Some
            (fun t ->
              let vf = t.vf in
              let dt = vf.(tr) and la = vf.(a) and lb = vf.(b) in
              for l = 0 to width - 1 do Array.unsafe_set dt l ((Array.unsafe_get la l) *. (Array.unsafe_get lb l)) done;
              let dd = vf.(d) and lx = vf.(x) and ly = vf.(y) in
              for l = 0 to width - 1 do Array.unsafe_set dd l ((Array.unsafe_get lx l) +. (Array.unsafe_get ly l)) done),
          false )
    | Decode.Dfor _ | Decode.Dforback _ | Decode.Dwhile _ | Decode.Dif _
    | Decode.Djmp _ | Decode.Dgoto _ | Decode.Denter _ | Decode.Dexit _ ->
        assert false
  in
  let charge n =
    instructions := !instructions + n;
    fuel := !fuel - n;
    if !fuel < 0 then Memory.trap "fuel exhausted in %s" prog_name
  in
  let len = Array.length code in
  (* Node table: nodes.(i) runs the program from op i to the end of the
     phase. Closures reference successors through this table, so forward
     targets resolve and every transfer is a tail call. *)
  let nodes = Array.make (len + 1) (fun (_ : tctx) -> ()) in
  let goto k (t : tctx) = (Array.unsafe_get nodes k) t in
  (* Basic-block leaders: every jump target and every op following a
     control op starts a block. *)
  let leader = Array.make (len + 1) false in
  if len > 0 then leader.(0) <- true;
  Array.iteri
    (fun i op ->
      match (op : Decode.dop) with
      | Dfor { exit; _ } ->
          leader.(exit) <- true;
          leader.(i + 1) <- true
      | Dforback { body; _ } ->
          leader.(body) <- true;
          leader.(i + 1) <- true
      | Dwhile { exit; _ } ->
          leader.(exit) <- true;
          leader.(i + 1) <- true
      | Dif { else_; _ } ->
          leader.(else_) <- true;
          leader.(i + 1) <- true
      | Djmp t | Dgoto t ->
          leader.(t) <- true;
          if i + 1 <= len then leader.(i + 1) <- true
      | _ -> ())
    code;
  let is_straight i =
    match code.(i) with
    | Decode.Dfor _ | Decode.Dforback _ | Decode.Dwhile _ | Decode.Dif _
    | Decode.Djmp _ | Decode.Dgoto _ -> false
    | _ -> true
  in
  (* Split a straight-line range into bookkeeping segments: (costs keyed
     by row index, total, actions), in program order. Segments break
     after barrier ops (see [instr_barrier]). *)
  let segments lo hi =
    let segs = ref [] in
    let costs = Hashtbl.create 8 in
    let total = ref 0 in
    let acts = ref [] in
    let close () =
      if !total > 0 || !acts <> [] then begin
        let cost_arr =
          Hashtbl.fold (fun c n l -> (c, n) :: l) costs []
          |> List.sort compare |> Array.of_list
        in
        segs := (cost_arr, !total, Array.of_list (List.rev !acts)) :: !segs;
        Hashtbl.reset costs;
        total := 0;
        acts := []
      end
    in
    for i = lo to hi - 1 do
      match code.(i) with
      | Decode.Denter _ | Decode.Dexit _ -> ()
      | op ->
          let cs, action, barrier = sop_of op in
          List.iter
            (fun (_, ci, n) ->
              Hashtbl.replace costs ci
                (n + Option.value (Hashtbl.find_opt costs ci) ~default:0);
              total := !total + n)
            cs;
          (match action with Some a -> acts := a :: !acts | None -> ());
          if barrier then close ()
    done;
    close ();
    (* in reverse program order, ready for continuation-folding *)
    !segs
  in
  (* One segment fused with its continuation into a single closure: row
     and fuel updates are inlined next to the action calls, so a segment
     costs one indirect call, not a book-closure call plus dispatch. *)
  let chain_seg (cost_arr, tot, actions) (next : tctx -> unit) : tctx -> unit
      =
    match (cost_arr, actions) with
    | [| (c, n) |], [||] ->
        fun t ->
          let row = t.row in
          row.(c) <- row.(c) + n;
          charge tot;
          next t
    | [| (c, n) |], [| a |] ->
        fun t ->
          let row = t.row in
          row.(c) <- row.(c) + n;
          charge tot;
          a t;
          next t
    | [| (c, n) |], [| a; b |] ->
        fun t ->
          let row = t.row in
          row.(c) <- row.(c) + n;
          charge tot;
          a t;
          b t;
          next t
    | [| (c, n) |], _ ->
        fun t ->
          let row = t.row in
          row.(c) <- row.(c) + n;
          charge tot;
          for i = 0 to Array.length actions - 1 do
            (Array.unsafe_get actions i) t
          done;
          next t
    | [| (c1, n1); (c2, n2) |], [| a |] ->
        fun t ->
          let row = t.row in
          row.(c1) <- row.(c1) + n1;
          row.(c2) <- row.(c2) + n2;
          charge tot;
          a t;
          next t
    | [| (c1, n1); (c2, n2) |], [| a; b |] ->
        fun t ->
          let row = t.row in
          row.(c1) <- row.(c1) + n1;
          row.(c2) <- row.(c2) + n2;
          charge tot;
          a t;
          b t;
          next t
    | _ ->
        fun t ->
          let row = t.row in
          Array.iter (fun (c, n) -> row.(c) <- row.(c) + n) cost_arr;
          charge tot;
          for i = 0 to Array.length actions - 1 do
            (Array.unsafe_get actions i) t
          done;
          next t
  in
  (* Untraced block compiler: hoist bookkeeping into per-segment batches,
     then thread the fused segment closures directly. *)
  let compile_block_untraced lo hi =
    List.fold_left
      (fun next seg -> chain_seg seg next)
      (goto hi) (segments lo hi)
  in
  (* Fused innermost loop (untraced only): when a [Dforback]'s body is
     exactly one straight-line block, the whole loop becomes a single
     closure around an OCaml while loop — the back edge is an inline
     compare + inline Salu/Branch bookkeeping instead of two node-table
     transfers and a branch closure per iteration. Iteration order,
     bookkeeping order and trap points are identical to the threaded
     form (the edge is booked after the induction update, exactly as
     [compile_control]'s [Dforback] arm does). *)
  (* A segment with no continuation (a loop body's last segment). *)
  let last_seg (cost_arr, tot, actions) : tctx -> unit =
    match (cost_arr, actions) with
    | [| (c, n) |], [||] ->
        fun t ->
          let row = t.row in
          row.(c) <- row.(c) + n;
          charge tot
    | [| (c, n) |], [| a |] ->
        fun t ->
          let row = t.row in
          row.(c) <- row.(c) + n;
          charge tot;
          a t
    | [| (c, n) |], [| a; b |] ->
        fun t ->
          let row = t.row in
          row.(c) <- row.(c) + n;
          charge tot;
          a t;
          b t
    | [| (c, n) |], _ ->
        fun t ->
          let row = t.row in
          row.(c) <- row.(c) + n;
          charge tot;
          for i = 0 to Array.length actions - 1 do
            (Array.unsafe_get actions i) t
          done
    | [| (c1, n1); (c2, n2) |], [| a |] ->
        fun t ->
          let row = t.row in
          row.(c1) <- row.(c1) + n1;
          row.(c2) <- row.(c2) + n2;
          charge tot;
          a t
    | _ ->
        fun t ->
          let row = t.row in
          Array.iter (fun (c, n) -> row.(c) <- row.(c) + n) cost_arr;
          charge tot;
          for i = 0 to Array.length actions - 1 do
            (Array.unsafe_get actions i) t
          done
  in
  let compile_fused_loop ~lo ~fb ~idx ~id =
    let exit_k = goto (fb + 1) in
    (* taken back edge: induction update + fused Salu/Branch bookkeeping,
       exactly as [compile_control]'s untraced [Dforback] arm. The bound
       and step are loop-invariant (the body is straight-line, and only
       [Dfor]/[Dforback] for this [id] write them), so they are read once
       per loop entry; [for_cur] is still written through each edge so
       any direct jump to the [Dforback] node sees current state. *)
    let edge ~step_v ~hi_v (t : tctx) =
      let iv = for_cur.(id) + step_v in
      if iv < hi_v then begin
        for_cur.(id) <- iv;
        t.si.(idx) <- iv;
        let row = t.row in
        row.(salu_idx) <- row.(salu_idx) + 1;
        row.(branch_idx) <- row.(branch_idx) + 1;
        charge 2;
        true
      end
      else false
    in
    (* [segments] returns reverse program order: head = last segment *)
    match segments lo fb with
    | [ ([| (c, n) |], tot, [| a |]) ] ->
        (* commonest tight loop: one segment, one action — everything but
           the action call is inline in the while loop *)
        fun (t : tctx) ->
          let step_v = for_step.(id) and hi_v = for_hi.(id) in
          let row = t.row in
          let continue_ = ref true in
          while !continue_ do
            row.(c) <- row.(c) + n;
            charge tot;
            a t;
            continue_ := edge ~step_v ~hi_v t
          done;
          exit_k t
    | [ ([| (c, n) |], tot, [| a; b |]) ] ->
        fun (t : tctx) ->
          let step_v = for_step.(id) and hi_v = for_hi.(id) in
          let row = t.row in
          let continue_ = ref true in
          while !continue_ do
            row.(c) <- row.(c) + n;
            charge tot;
            a t;
            b t;
            continue_ := edge ~step_v ~hi_v t
          done;
          exit_k t
    | [ seg ] ->
        let s = last_seg seg in
        fun (t : tctx) ->
          let step_v = for_step.(id) and hi_v = for_hi.(id) in
          let continue_ = ref true in
          while !continue_ do
            s t;
            continue_ := edge ~step_v ~hi_v t
          done;
          exit_k t
    | [] ->
        fun (t : tctx) ->
          let step_v = for_step.(id) and hi_v = for_hi.(id) in
          let continue_ = ref true in
          while !continue_ do
            continue_ := edge ~step_v ~hi_v t
          done;
          exit_k t
    | last :: rest ->
        let body =
          List.fold_left (fun next seg -> chain_seg seg next) (last_seg last)
            rest
        in
        fun (t : tctx) ->
          let step_v = for_step.(id) and hi_v = for_hi.(id) in
          let continue_ = ref true in
          while !continue_ do
            body t;
            continue_ := edge ~step_v ~hi_v t
          done;
          exit_k t
  in
  (* Traced block compiler: one closure per op, bookkeeping and Trace.Op
     emission in exact per-op order (the interpreter's traced contract). *)
  let compile_block_traced f lo hi =
    let node = ref (goto hi) in
    for i = hi - 1 downto lo do
      let next = !node in
      node :=
        (match code.(i) with
        | Decode.Denter scope ->
            fun t ->
              f (Trace.Enter { thread = t.thread; scope });
              next t
        | Decode.Dexit scope ->
            fun t ->
              f (Trace.Exit { thread = t.thread; scope });
              next t
        | op -> (
            let cs, action, _ = sop_of op in
            let act = Option.value action ~default:(fun (_ : tctx) -> ()) in
            match cs with
            | [ (cls, ci, 1) ] ->
                fun t ->
                  let row = t.row in
                  row.(ci) <- row.(ci) + 1;
                  charge 1;
                  f (Trace.Op { thread = t.thread; cls });
                  act t;
                  next t
            | _ ->
                fun t ->
                  List.iter
                    (fun (cls, ci, n) ->
                      for _ = 1 to n do
                        t.row.(ci) <- t.row.(ci) + 1;
                        charge 1;
                        f (Trace.Op { thread = t.thread; cls })
                      done)
                    cs;
                  act t;
                  next t))
    done;
    !node
  in
  let compile_block lo hi =
    match trace with
    | None -> compile_block_untraced lo hi
    | Some f -> compile_block_traced f lo hi
  in
  (* Control ops compile to branch closures with the interpreter's exact
     bookkeeping (fused Salu+Branch on taken loop edges when untraced,
     per-op cnt when traced). *)
  let book_loop_edge =
    match trace with
    | None ->
        fun (t : tctx) ->
          let row = t.row in
          row.(salu_idx) <- row.(salu_idx) + 1;
          row.(branch_idx) <- row.(branch_idx) + 1;
          charge 2
    | Some f ->
        fun (t : tctx) ->
          let row = t.row in
          row.(salu_idx) <- row.(salu_idx) + 1;
          charge 1;
          f (Trace.Op { thread = t.thread; cls = Isa.Salu });
          row.(branch_idx) <- row.(branch_idx) + 1;
          charge 1;
          f (Trace.Op { thread = t.thread; cls = Isa.Branch })
  in
  let book_branch =
    match trace with
    | None ->
        fun (t : tctx) ->
          let row = t.row in
          row.(branch_idx) <- row.(branch_idx) + 1;
          charge 1
    | Some f ->
        fun (t : tctx) ->
          let row = t.row in
          row.(branch_idx) <- row.(branch_idx) + 1;
          charge 1;
          f (Trace.Op { thread = t.thread; cls = Isa.Branch })
  in
  let compile_control i (op : Decode.dop) =
    match op with
    | Dfor { idx; lo; hi; step; id; exit } ->
        let body = goto (i + 1) and exit_k = goto exit in
        fun (t : tctx) ->
          let si = t.si in
          let lo_v = si.(lo) and hi_v = si.(hi) and step_v = si.(step) in
          if step_v <= 0 then
            Memory.trap "for loop with non-positive step %d" step_v;
          if lo_v < hi_v then begin
            for_cur.(id) <- lo_v;
            for_hi.(id) <- hi_v;
            for_step.(id) <- step_v;
            si.(idx) <- lo_v;
            book_loop_edge t;
            body t
          end
          else exit_k t
    | Dforback { idx; id; body } ->
        let body_k = goto body and exit_k = goto (i + 1) in
        fun (t : tctx) ->
          let iv = for_cur.(id) + for_step.(id) in
          if iv < for_hi.(id) then begin
            for_cur.(id) <- iv;
            t.si.(idx) <- iv;
            book_loop_edge t;
            body_k t
          end
          else exit_k t
    | Dwhile { cond; exit } ->
        let then_k = goto (i + 1) and exit_k = goto exit in
        fun (t : tctx) ->
          book_branch t;
          if t.si.(cond) <> 0 then then_k t else exit_k t
    | Dif { cond; else_ } ->
        let then_k = goto (i + 1) and else_k = goto else_ in
        fun (t : tctx) ->
          book_branch t;
          if t.si.(cond) <> 0 then then_k t else else_k t
    | Djmp target -> goto target
    | Dgoto target ->
        let target_k = goto target in
        fun (t : tctx) ->
          book_branch t;
          target_k t
    | _ -> assert false
  in
  (* Fill the node table: fused block closures at straight-line leaders,
     branch closures at every control op. *)
  let i = ref 0 in
  while !i < len do
    if not (is_straight !i) then begin
      nodes.(!i) <- compile_control !i code.(!i);
      incr i
    end
    else begin
      let lo = !i in
      let j = ref (lo + 1) in
      while !j < len && is_straight !j && not leader.(!j) do
        incr j
      done;
      let block =
        match (trace, if !j < len then Some code.(!j) else None) with
        | None, Some (Decode.Dforback { idx; id; body }) when body = lo ->
            (* single-block innermost loop: body runs as a while loop *)
            compile_fused_loop ~lo ~fb:!j ~idx ~id
        | _ -> compile_block lo !j
      in
      nodes.(lo) <- block;
      (* interior straight-line ops are unreachable (not leaders), so
         their node slots stay as halts *)
      i := !j
    end
  done;
  if len = 0 then fun _ -> () else nodes.(0)
