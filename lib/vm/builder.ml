(* A small eDSL for writing programs directly against the ISA — the "Ninja
   programmer" path (hand intrinsics / assembly in the paper). It follows
   the same calling conventions as compiler-generated code so that the same
   kernel driver can run both:
   - scalar parameters live in one-element buffers named ["__p_<name>"];
   - array parameters are buffers named after the parameter.

   Typical shape:
   {[
     let b = Builder.create ~name:"nbody [ninja]" in
     let x = Builder.buffer_f b "x" in
     ...
     Builder.par_phase b (fun () -> ... Builder.emit b (...) ...);
     Builder.finish b
   ]} *)

type t = {
  name : string;
  mutable buffers : Isa.buffer_decl list; (* reversed *)
  mutable phases : Isa.phase list; (* reversed *)
  mutable code : Isa.stmt list; (* current phase, reversed *)
  mutable in_phase : bool;
  mutable si_next : int;
  mutable sf_next : int;
  mutable vf_next : int;
  mutable vi_next : int;
  mutable vm_next : int;
}

let create ~name =
  {
    name;
    buffers = [];
    phases = [];
    code = [];
    in_phase = false;
    si_next = Isa.reserved_si_regs;
    sf_next = 0;
    vf_next = 0;
    vi_next = 0;
    vm_next = 0;
  }

let declare_buffer b name (elt : Isa.elt_ty) =
  if List.exists (fun (d : Isa.buffer_decl) -> d.buf_name = name) b.buffers then
    invalid_arg ("Builder: duplicate buffer " ^ name);
  b.buffers <- { Isa.buf_name = name; elt } :: b.buffers;
  Isa.Buf (List.length b.buffers - 1)

let buffer_f b name = declare_buffer b name F32
let buffer_i b name = declare_buffer b name I32
let param_cell_f b name = declare_buffer b ("__p_" ^ name) F32
let param_cell_i b name = declare_buffer b ("__p_" ^ name) I32

let si b = let r = b.si_next in b.si_next <- r + 1; Isa.Si r
let sf b = let r = b.sf_next in b.sf_next <- r + 1; Isa.Sf r
let vf b = let r = b.vf_next in b.vf_next <- r + 1; Isa.Vf r
let vi b = let r = b.vi_next in b.vi_next <- r + 1; Isa.Vi r
let vm b = let r = b.vm_next in b.vm_next <- r + 1; Isa.Vm r

let emit b i =
  if not b.in_phase then invalid_arg "Builder.emit: outside a phase";
  b.code <- Isa.I i :: b.code

(* Convenience emitters *)
let iconst b n = let r = si b in emit b (Iconst (r, n)); r
let fconst b x = let r = sf b in emit b (Fconst (r, x)); r

let load_param_i b cell =
  let idx = iconst b 0 in
  let r = si b in
  emit b (Loadi { dst = r; buf = cell; idx; chain = false });
  r

let load_param_f b cell =
  let idx = iconst b 0 in
  let r = sf b in
  emit b (Loadf { dst = r; buf = cell; idx; chain = false });
  r

let ibin b op x y = let r = si b in emit b (Ibin (op, r, x, y)); r
let fbin b op x y = let r = sf b in emit b (Fbin (op, r, x, y)); r
let vfbin b op x y = let r = vf b in emit b (Vfbin (op, r, x, y)); r
let vibin b op x y = let r = vi b in emit b (Vibin (op, r, x, y)); r
let vfma b x y z = let r = vf b in emit b (Vfma (r, x, y, z)); r

(* [x*y + z] using FMA when the target machine has it, mul+add otherwise —
   Ninja code is machine-specific by definition. *)
let vmuladd b ~fma x y z =
  if fma then vfma b x y z
  else
    let p = vf b in
    emit b (Vfbin (Fmul, p, x, y));
    let r = vf b in
    emit b (Vfbin (Fadd, r, p, z));
    r
let vfunop b op x = let r = vf b in emit b (Vfunop (op, r, x)); r
let vbroadcastf b x = let r = vf b in emit b (Vbroadcastf (r, x)); r
let vbroadcasti b x = let r = vi b in emit b (Vbroadcasti (r, x)); r

let in_sub_block b f =
  let saved = b.code in
  b.code <- [];
  f ();
  let blk = List.rev b.code in
  b.code <- saved;
  blk

let for_ b ~lo ~hi ~step f =
  if not b.in_phase then invalid_arg "Builder.for_: outside a phase";
  let idx = si b in
  let body = in_sub_block b (fun () -> f idx) in
  b.code <- Isa.For { idx; lo; hi; step; body } :: b.code

(* Zero-cost profiling scope around a hand-written kernel's hot loop; the
   profiler attributes the enclosed work to [label]. *)
let region b label f =
  if not b.in_phase then invalid_arg "Builder.region: outside a phase";
  let body = in_sub_block b f in
  b.code <- Isa.Region { label; body } :: b.code

let while_ b ~cond f =
  if not b.in_phase then invalid_arg "Builder.while_: outside a phase";
  let cond_reg = si b in
  let cond_block =
    in_sub_block b (fun () ->
        let r = cond () in
        emit b (Imov (cond_reg, r)))
  in
  let body = in_sub_block b f in
  b.code <- Isa.While { cond_block; cond = cond_reg; body } :: b.code

let if_ b ~cond ?(else_ = fun () -> ()) then_ =
  if not b.in_phase then invalid_arg "Builder.if_: outside a phase";
  let t = in_sub_block b then_ in
  let e = in_sub_block b else_ in
  b.code <- Isa.If { cond; then_ = t; else_ = e } :: b.code

let phase b kind f =
  if b.in_phase then invalid_arg "Builder.phase: nested phases";
  b.in_phase <- true;
  b.code <- [];
  f ();
  let blk = List.rev b.code in
  b.phases <- (match kind with `Par -> Isa.Par blk | `Seq -> Isa.Seq blk) :: b.phases;
  b.code <- [];
  b.in_phase <- false

let par_phase b f = phase b `Par f
let seq_phase b f = phase b `Seq f

(* Static chunking of [0, n) across threads, the same scheme the
   parallelizer emits: returns (my_lo, my_hi) registers. *)
let thread_range b ~n =
  let nt = Isa.num_threads_reg and tid = Isa.thread_id_reg in
  let one = iconst b 1 in
  let nt_m1 = ibin b Isub nt one in
  let rounded = ibin b Iadd n nt_m1 in
  let chunk = ibin b Idiv rounded nt in
  let off = ibin b Imul tid chunk in
  let my_lo = ibin b Imin off n in
  let my_hi_raw = ibin b Iadd my_lo chunk in
  let my_hi = ibin b Imin my_hi_raw n in
  (my_lo, my_hi)

(* Like [thread_range], but rounds the chunk up to a multiple of the vector
   width so that no thread needs a scalar tail when [n] itself is a multiple
   of the width — the alignment trick every hand-tuned kernel uses. *)
let thread_range_aligned b ~n =
  let w = Isa.vector_width_reg in
  let nt = Isa.num_threads_reg and tid = Isa.thread_id_reg in
  let one = iconst b 1 in
  let nt_m1 = ibin b Isub nt one in
  let rounded = ibin b Iadd n nt_m1 in
  let chunk = ibin b Idiv rounded nt in
  let w_m1 = ibin b Isub w one in
  let chunk_r = ibin b Iadd chunk w_m1 in
  let chunk_q = ibin b Idiv chunk_r w in
  let chunk_al = ibin b Imul chunk_q w in
  let off = ibin b Imul tid chunk_al in
  let my_lo = ibin b Imin off n in
  let my_hi_raw = ibin b Iadd my_lo chunk_al in
  let my_hi = ibin b Imin my_hi_raw n in
  (my_lo, my_hi)

let finish b : Isa.program =
  if b.in_phase then invalid_arg "Builder.finish: unterminated phase";
  let program =
    {
      Isa.prog_name = b.name;
      buffers = Array.of_list (List.rev b.buffers);
      phases = List.rev b.phases;
      regs =
        {
          si = b.si_next;
          sf = b.sf_next;
          vf = b.vf_next;
          vi = b.vi_next;
          vm = b.vm_next;
        };
    }
  in
  Isa.validate program;
  program
