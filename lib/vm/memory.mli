(** The buffer store backing a program run.

    Each buffer declared by a program is bound to an OCaml array and given
    a page-aligned base address in a flat modeled address space, so the
    cache simulator sees realistic, non-overlapping addresses. The modeled
    element size is 4 bytes (the paper's kernels are single-precision /
    32-bit integer), independent of OCaml's in-memory representation. *)

type buffer = Fbuf of float array | Ibuf of int array

type t

exception Bad_binding of string
(** Binding list does not match the program's buffer declarations. *)

exception Trap of string
(** Runtime memory fault (bounds, type confusion); also reused by the
    interpreter for all runtime faults. *)

val trap : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Trap} with a formatted message. *)

val create : Isa.program -> (string * buffer) list -> t
(** Bind every declared buffer by name. Element types must match; extra or
    missing bindings raise {!Bad_binding}. *)

val get_f : t -> Isa.buf -> int -> float
(** Read a float element (bounds- and type-checked; raises {!Trap}). *)

val get_i : t -> Isa.buf -> int -> int
(** Read an int element (bounds- and type-checked; raises {!Trap}). *)

val set_f : t -> Isa.buf -> int -> float -> unit
(** Write a float element (bounds- and type-checked; raises {!Trap}). *)

val set_i : t -> Isa.buf -> int -> int -> unit
(** Write an int element (bounds- and type-checked; raises {!Trap}). *)

val get_f_block : t -> Isa.buf -> int -> float array -> int -> unit
(** [get_f_block t buf base dst w] reads the [w] contiguous elements
    starting at [base] into [dst.(0..w-1)] with a single bounds/type
    check, falling back to per-lane {!get_f} (identical traps and partial
    writes) when the range is not fully in bounds. *)

val get_i_block : t -> Isa.buf -> int -> int array -> int -> unit
(** Int counterpart of {!get_f_block}. *)

val set_f_block : t -> Isa.buf -> int -> float array -> int -> unit
(** [set_f_block t buf base src w] writes [src.(0..w-1)] to the [w]
    contiguous elements starting at [base]; same fallback contract as
    {!get_f_block}. *)

val set_i_block : t -> Isa.buf -> int -> int array -> int -> unit
(** Int counterpart of {!set_f_block}. *)

val address : t -> Isa.buf -> int -> int
(** Modeled byte address of an element. *)

val length : t -> Isa.buf -> int
(** Element count of a buffer. *)

val find : t -> string -> Isa.buf * buffer
(** Look a buffer up by name (the live array, not a copy).
    @raise Not_found *)

val total_bytes : t -> int
(** Total modeled bytes across buffers. *)
