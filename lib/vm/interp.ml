(* Functional interpreter for the vector ISA.

   The interpreter serves two purposes:
   - correctness: kernels (and the compiler that produced them) are checked
     against OCaml reference implementations on real data;
   - instrumentation: it produces the per-class instruction counts and the
     memory-address event stream that the timing model prices.

   [Par] phases are executed thread-after-thread; this equals parallel
   execution for race-free programs, and [~check_races:true] verifies that
   property (any location written by one thread and touched by another
   within the same phase is reported).

   Four execution strategies produce bit-identical registers, memory,
   counts, event streams and traps:

   - [Tree] walks the structured statement lists through small per-register
     accessor closures — the original, obviously-correct reference,
     deliberately left structurally untouched so it doubles as the
     performance baseline the self-benchmark measures against.
   - [Decoded] (the bare-[run] default) runs {!Decode}'s flat op arrays
     with an indexed program counter and a specialized executor: registers
     are plain array reads (no accessor closures), instruction classes are
     counted through a pre-resolved index straight into the thread's
     {!Counts} row, operator dispatch is hoisted out of vector lane loops,
     and loop bounds live in dense per-loop state slots.
   - [Optimized] additionally runs the {!Optimize} pass pipeline over the
     decoded arrays before dispatch.
   - [Compiled] (the simulation default, see [default_strategy]) runs the
     optimized arrays through {!Compile}: each phase becomes chained
     pre-resolved closures — threaded code with basic-block
     superinstructions — eliminating the dispatch [match]es entirely.

   Equivalence is property-tested instruction-by-instruction in
   test/test_fastpath.ml (three-way) and test/test_compile.ml (four-way),
   and pinned suite-wide by the experiments golden. The event/trace hooks
   are devirtualized in all paths: emit closures are selected once per
   phase on tracker/sink presence, so the no-profiler case pays no
   per-access option matching. *)

exception Trap = Memory.Trap

type result = { counts : Counts.t; instructions : int }

type strategy =
  | Tree
  | Decoded
  | Optimized of Optimize.config
  | Compiled of Optimize.config

(* The strategy the simulation surfaces (Timing.simulate, and through it
   experiments, ladder, bench and serve) resolve an absent ?strategy to.
   A process-wide cell rather than a [run] default so one --backend flag
   can steer every simulation a command performs; bare [run] keeps its
   own [Decoded] default. *)
let default_strategy_ref = ref (Compiled Optimize.default)
let default_strategy () = !default_strategy_ref
let set_default_strategy s = default_strategy_ref := s

let strategy_tag = function
  | Tree -> "tree"
  | Decoded -> "decoded"
  | Optimized c -> "optimized:" ^ Optimize.tag c
  | Compiled c -> "compiled:" ^ Optimize.tag c

let strategy_of_name name =
  match name with
  | "tree" -> Some Tree
  | "decoded" -> Some Decoded
  | "optimized" -> Some (Optimized Optimize.default)
  | "compiled" -> Some (Compiled Optimize.default)
  | _ -> None

type thread_state = {
  si : int array;
  sf : float array;
  vf : float array array;
  vi : int array array;
  vm : bool array array;
}

let make_state (regs : Isa.reg_counts) ~width =
  {
    si = Array.make (max regs.si 1) 0;
    sf = Array.make (max regs.sf 1) 0.;
    vf = Array.init (max regs.vf 1) (fun _ -> Array.make width 0.);
    vi = Array.init (max regs.vi 1) (fun _ -> Array.make width 0);
    vm = Array.init (max regs.vm 1) (fun _ -> Array.make width false);
  }

let eval_ibin op a b =
  match (op : Isa.ibin) with
  | Iadd -> a + b
  | Isub -> a - b
  | Imul -> a * b
  | Idiv -> if b = 0 then Memory.trap "integer division by zero" else a / b
  | Imod -> if b = 0 then Memory.trap "integer modulo by zero" else a mod b
  | Iand -> a land b
  | Ior -> a lor b
  | Ixor -> a lxor b
  | Ishl -> a lsl b
  | Ishr -> a asr b
  | Imin -> min a b
  | Imax -> max a b

let eval_fbin op a b =
  match (op : Isa.fbin) with
  | Fadd -> a +. b
  | Fsub -> a -. b
  | Fmul -> a *. b
  | Fdiv -> a /. b
  | Fmin -> Float.min a b
  | Fmax -> Float.max a b

let eval_funop op a =
  match (op : Isa.funop) with
  | Fneg -> -.a
  | Fabs -> Float.abs a
  | Fsqrt -> Float.sqrt a
  | Frsqrt -> 1. /. Float.sqrt a
  | Fexp -> Float.exp a
  | Flog -> Float.log a
  | Ffloor -> Float.floor a

let eval_icmp op a b =
  match (op : Isa.cmp) with
  | Ceq -> a = b
  | Cne -> a <> b
  | Clt -> a < b
  | Cle -> a <= b
  | Cgt -> a > b
  | Cge -> a >= b

let eval_fcmp op a b =
  match (op : Isa.cmp) with
  | Ceq -> Float.equal a b
  | Cne -> not (Float.equal a b)
  | Clt -> a < b
  | Cle -> a <= b
  | Cgt -> a > b
  | Cge -> a >= b

type race_tracker = {
  writes : (int, int) Hashtbl.t; (* addr -> writing thread *)
  reads : (int, int) Hashtbl.t; (* addr -> a reading thread (-1: several) *)
  mutable races : string list;
}

let race_tracker () = { writes = Hashtbl.create 4096; reads = Hashtbl.create 4096; races = [] }

let note_race rt fmt = Fmt.kstr (fun s -> if List.length rt.races < 16 then rt.races <- s :: rt.races) fmt

let track_access rt ~thread ~addr ~(kind : Event.kind) =
  match kind with
  | Write -> (
      (match Hashtbl.find_opt rt.reads addr with
      | Some t when t <> thread -> note_race rt "write by t%d races read by t%d at 0x%x" thread t addr
      | _ -> ());
      match Hashtbl.find_opt rt.writes addr with
      | Some t when t <> thread -> note_race rt "write by t%d races write by t%d at 0x%x" thread t addr
      | Some _ -> ()
      | None -> Hashtbl.replace rt.writes addr thread)
  | Read -> (
      (match Hashtbl.find_opt rt.writes addr with
      | Some t when t <> thread -> note_race rt "read by t%d races write by t%d at 0x%x" thread t addr
      | _ -> ());
      match Hashtbl.find_opt rt.reads addr with
      | Some t when t <> thread -> Hashtbl.replace rt.reads addr (-1)
      | Some _ -> ()
      | None -> Hashtbl.replace rt.reads addr thread)

exception Race of string list

(* The work one thread performs in one phase: the structured block (tree
   walk) or the decoded flat op array (indexed dispatch). *)
type work =
  | Wtree of Isa.block
  | Wflat of Decode.dop array
  | Wcomp of (Compile.tctx -> unit)
      (* a phase pre-compiled by {!Compile.compile}: one compilation,
         shared by every thread that executes the phase *)

(* Pre-resolved count-row indices for the decoded loop's bookkeeping. *)
let salu_idx = Isa.op_class_index Isa.Salu
let branch_idx = Isa.op_class_index Isa.Branch
let sfp_idx = Isa.op_class_index Isa.Sfp
let vfp_idx = Isa.op_class_index Isa.Vfp
let sload_idx = Isa.op_class_index Isa.Sload
let sstore_idx = Isa.op_class_index Isa.Sstore

let session ?(n_threads = 1) ?(width = 4) ?sink ?trace ?fuel
    ?(check_races = false) ?(strategy = Decoded) ?decoded ?on_states
    (prog : Isa.program) (mem : Memory.t) =
  Isa.validate prog;
  if n_threads < 1 then invalid_arg "Interp.run: n_threads < 1";
  if width < 1 then invalid_arg "Interp.run: width < 1";
  let counts = Counts.create n_threads in
  let instructions = ref 0 in
  let remaining_fuel = ref (Option.value fuel ~default:max_int) in
  let states = Array.init n_threads (fun _ -> make_state prog.regs ~width) in
  let scratch = Array.make width 0. in
  let all_true = Array.make width true in
  let tracker = if check_races then Some (race_tracker ()) else None in
  (* Phase work list and loop-state slots, per strategy. The decoded
     per-loop slots are safe as plain arrays: threads run one after
     another and a [Dfor] cannot be re-entered before it exits. *)
  let phase_work, n_fors =
    match decoded with
    | Some (d : Decode.t) ->
        (* pre-supplied flat form (possibly hand-transformed): the
           substrate for the optimizer's mutation tests, which must
           execute deliberately broken arrays *)
        ( Array.to_list
            (Array.map (fun (ph : Decode.phase) -> (ph.parallel, Wflat ph.code)) d.phases),
          d.n_fors )
    | None ->
    match strategy with
    | Tree ->
        ( List.map
            (function
              | Isa.Par b -> (true, Wtree b)
              | Isa.Seq b -> (false, Wtree b))
            prog.phases,
          0 )
    | Decoded | Optimized _ | Compiled _ ->
        let d = Decode.decode prog in
        let d =
          match strategy with
          | Optimized config | Compiled config -> Optimize.run ~config d
          | _ -> d
        in
        ( Array.to_list
            (Array.map (fun (ph : Decode.phase) -> (ph.parallel, Wflat ph.code)) d.phases),
          d.n_fors )
  in
  let for_cur = Array.make (max n_fors 1) 0 in
  let for_hi = Array.make (max n_fors 1) 0 in
  let for_step = Array.make (max n_fors 1) 0 in

  (* Compiled strategy: compile each flat phase once, up front — the
     closures take the per-thread state as an argument ({!Compile.tctx}),
     so a parallel phase's n_threads executions share one compilation.
     Selected even when [?decoded] supplies the arrays, so the
     compiler-mutation differentials can execute deliberately broken
     arrays through the compiled backend too. *)
  let phase_work =
    match strategy with
    | Compiled _ ->
        let cctx =
          {
            Compile.mem;
            width;
            scratch;
            all_true;
            instructions;
            fuel = remaining_fuel;
            prog_name = prog.prog_name;
            for_cur;
            for_hi;
            for_step;
            trace;
          }
        in
        List.map
          (fun (parallel, w) ->
            match w with
            | Wflat code -> (parallel, Wcomp (Compile.compile cctx code))
            | w -> (parallel, w))
          phase_work
    | _ -> phase_work
  in

  (* Memory-access hook, devirtualized: selected once per (thread, phase)
     on sink/tracker presence so the common no-instrumentation case is a
     constant no-op closure rather than two option matches per access. *)
  let make_emit ~thread =
    match (tracker, sink) with
    | None, None -> fun ~nt:_ ~buf:_ ~idx:_ ~bytes:_ ~kind:_ ~chain:_ -> ()
    | _ ->
        fun ~nt ~buf ~idx ~bytes ~kind ~chain ->
          (match tracker with
          | Some rt ->
              let base = Memory.address mem buf idx in
              let n = bytes / 4 in
              for k = 0 to n - 1 do
                track_access rt ~thread ~addr:(base + (k * 4)) ~kind
              done
          | None -> ());
          (match sink with
          | Some f ->
              f { Event.thread; addr = Memory.address mem buf idx; bytes; kind; chain; nt }
          | None -> ())
  in

  (* ---- tree walker: the reference implementation, kept structurally
     identical to the original interpreter (per-register accessor closures,
     classify-on-execute) so it stays the honest performance baseline. ---- *)
  let run_tree ~thread st block =
    let count cls n =
      Counts.add counts ~thread cls n;
      instructions := !instructions + n;
      remaining_fuel := !remaining_fuel - n;
      if !remaining_fuel < 0 then Memory.trap "fuel exhausted in %s" prog.prog_name;
      match trace with
      | Some f -> for _ = 1 to n do f (Trace.Op { thread; cls }) done
      | None -> ()
    in
    let emit ?(nt = false) ~buf ~idx ~bytes ~kind ~chain () =
      (match tracker with
      | Some rt ->
          let base = Memory.address mem buf idx in
          let n = bytes / 4 in
          for k = 0 to n - 1 do
            track_access rt ~thread ~addr:(base + (k * 4)) ~kind
          done
      | None -> ());
      match sink with
      | Some f ->
          f { Event.thread; addr = Memory.address mem buf idx; bytes; kind; chain; nt }
      | None -> ()
    in
    let geti (Isa.Si r) = st.si.(r) in
    let seti (Isa.Si r) v = st.si.(r) <- v in
    let getf (Isa.Sf r) = st.sf.(r) in
    let setf (Isa.Sf r) v = st.sf.(r) <- v in
    let getvf (Isa.Vf r) = st.vf.(r) in
    let getvi (Isa.Vi r) = st.vi.(r) in
    let getvm (Isa.Vm r) = st.vm.(r) in
    let lane_active mask l =
      match mask with None -> true | Some m -> (getvm m).(l)
    in
    (* SIMD utilization of a masked vector memory access; only computed when
       a profiler is listening. *)
    let emit_lanes mask =
      match trace with
      | None -> ()
      | Some f ->
          let active =
            match mask with
            | None -> width
            | Some m ->
                Array.fold_left (fun a b -> if b then a + 1 else a) 0 (getvm m)
          in
          f (Trace.Lanes { thread; active; width })
    in
    let exec_instr instr =
      count (Isa.classify instr) 1;
      match (instr : Isa.instr) with
      | Iconst (d, n) -> seti d n
      | Fconst (d, x) -> setf d x
      | Imov (d, a) -> seti d (geti a)
      | Fmov (d, a) -> setf d (getf a)
      | Ibin (op, d, a, b) -> seti d (eval_ibin op (geti a) (geti b))
      | Fbin (op, d, a, b) -> setf d (eval_fbin op (getf a) (getf b))
      | Fma (d, a, b, c) -> setf d ((getf a *. getf b) +. getf c)
      | Funop (op, d, a) -> setf d (eval_funop op (getf a))
      | Icmp (op, d, a, b) -> seti d (if eval_icmp op (geti a) (geti b) then 1 else 0)
      | Fcmp (op, d, a, b) -> seti d (if eval_fcmp op (getf a) (getf b) then 1 else 0)
      | Iselect (d, c, a, b) -> seti d (if geti c <> 0 then geti a else geti b)
      | Fselect (d, c, a, b) -> setf d (if geti c <> 0 then getf a else getf b)
      | Fofi (d, a) -> setf d (float_of_int (geti a))
      | Ioff (d, a) -> seti d (int_of_float (getf a))
      | Loadf { dst; buf; idx; chain } ->
          let i = geti idx in
          setf dst (Memory.get_f mem buf i);
          emit ~buf ~idx:i ~bytes:4 ~kind:Read ~chain ()
      | Loadi { dst; buf; idx; chain } ->
          let i = geti idx in
          seti dst (Memory.get_i mem buf i);
          emit ~buf ~idx:i ~bytes:4 ~kind:Read ~chain ()
      | Storef { buf; idx; src } ->
          let i = geti idx in
          Memory.set_f mem buf i (getf src);
          emit ~buf ~idx:i ~bytes:4 ~kind:Write ~chain:false ()
      | Storei { buf; idx; src } ->
          let i = geti idx in
          Memory.set_i mem buf i (geti src);
          emit ~buf ~idx:i ~bytes:4 ~kind:Write ~chain:false ()
      | Vmovf (d, a) -> Array.blit (getvf a) 0 (getvf d) 0 width
      | Vmovi (d, a) -> Array.blit (getvi a) 0 (getvi d) 0 width
      | Vbroadcastf (d, a) -> Array.fill (getvf d) 0 width (getf a)
      | Vbroadcasti (d, a) -> Array.fill (getvi d) 0 width (geti a)
      | Viota d ->
          let v = getvi d in
          for l = 0 to width - 1 do v.(l) <- l done
      | Vfbin (op, d, a, b) ->
          let d = getvf d and a = getvf a and b = getvf b in
          for l = 0 to width - 1 do d.(l) <- eval_fbin op a.(l) b.(l) done
      | Vfma (d, a, b, c) ->
          let d = getvf d and a = getvf a and b = getvf b and c = getvf c in
          for l = 0 to width - 1 do d.(l) <- (a.(l) *. b.(l)) +. c.(l) done
      | Vfunop (op, d, a) ->
          let d = getvf d and a = getvf a in
          for l = 0 to width - 1 do d.(l) <- eval_funop op a.(l) done
      | Vibin (op, d, a, b) ->
          let d = getvi d and a = getvi a and b = getvi b in
          for l = 0 to width - 1 do d.(l) <- eval_ibin op a.(l) b.(l) done
      | Vfcmp (op, d, a, b) ->
          let d = getvm d and a = getvf a and b = getvf b in
          for l = 0 to width - 1 do d.(l) <- eval_fcmp op a.(l) b.(l) done
      | Vicmp (op, d, a, b) ->
          let d = getvm d and a = getvi a and b = getvi b in
          for l = 0 to width - 1 do d.(l) <- eval_icmp op a.(l) b.(l) done
      | Vselectf (d, m, a, b) ->
          let d = getvf d and m = getvm m and a = getvf a and b = getvf b in
          for l = 0 to width - 1 do d.(l) <- (if m.(l) then a.(l) else b.(l)) done
      | Vselecti (d, m, a, b) ->
          let d = getvi d and m = getvm m and a = getvi a and b = getvi b in
          for l = 0 to width - 1 do d.(l) <- (if m.(l) then a.(l) else b.(l)) done
      | Vfofi (d, a) ->
          let d = getvf d and a = getvi a in
          for l = 0 to width - 1 do d.(l) <- float_of_int a.(l) done
      | Vioff (d, a) ->
          let d = getvi d and a = getvf a in
          for l = 0 to width - 1 do d.(l) <- int_of_float a.(l) done
      | Vpermutef (d, a, pat) ->
          let d = getvf d and a = getvf a in
          let n = Array.length pat in
          for l = 0 to width - 1 do
            let s = pat.(l mod n) in
            if s < 0 || s >= width then Memory.trap "vperm lane %d out of range" s;
            scratch.(l) <- a.(s)
          done;
          Array.blit scratch 0 d 0 width
      | Vextractf (d, a, lane) ->
          let l = geti lane in
          if l < 0 || l >= width then Memory.trap "vextract lane %d out of range" l;
          setf d (getvf a).(l)
      | Vinsertf (d, lane, a) ->
          let l = geti lane in
          if l < 0 || l >= width then Memory.trap "vinsert lane %d out of range" l;
          (getvf d).(l) <- getf a
      | Vreducef (r, d, a) ->
          let a = getvf a in
          let acc = ref a.(0) in
          for l = 1 to width - 1 do
            acc :=
              (match r with
              | Rsum -> !acc +. a.(l)
              | Rmin -> Float.min !acc a.(l)
              | Rmax -> Float.max !acc a.(l))
          done;
          setf d !acc
      | Vreducei (r, d, a) ->
          let a = getvi a in
          let acc = ref a.(0) in
          for l = 1 to width - 1 do
            acc :=
              (match r with
              | Rsum -> !acc + a.(l)
              | Rmin -> min !acc a.(l)
              | Rmax -> max !acc a.(l))
          done;
          seti d !acc
      | Mconst (d, v) -> Array.fill (getvm d) 0 width v
      | Mpattern (d, pat) ->
          let d = getvm d in
          let n = Array.length pat in
          for l = 0 to width - 1 do d.(l) <- pat.(l mod n) done
      | Mfirst (d, n) ->
          let d = getvm d and n = geti n in
          for l = 0 to width - 1 do d.(l) <- l < n done
      | Mnot (d, a) ->
          let d = getvm d and a = getvm a in
          for l = 0 to width - 1 do d.(l) <- not a.(l) done
      | Mand (d, a, b) ->
          let d = getvm d and a = getvm a and b = getvm b in
          for l = 0 to width - 1 do d.(l) <- a.(l) && b.(l) done
      | Mor (d, a, b) ->
          let d = getvm d and a = getvm a and b = getvm b in
          for l = 0 to width - 1 do d.(l) <- a.(l) || b.(l) done
      | Many (d, a) -> seti d (if Array.exists Fun.id (getvm a) then 1 else 0)
      | Mall (d, a) -> seti d (if Array.for_all Fun.id (getvm a) then 1 else 0)
      | Mcount (d, a) ->
          seti d (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 (getvm a))
      | Vloadf { dst; buf; idx; mask } ->
          emit_lanes mask;
          let base = geti idx in
          let d = getvf dst in
          let any = ref false in
          for l = 0 to width - 1 do
            if lane_active mask l then begin
              d.(l) <- Memory.get_f mem buf (base + l);
              any := true
            end
          done;
          if !any then emit ~buf ~idx:base ~bytes:(width * 4) ~kind:Read ~chain:false ()
      | Vloadi { dst; buf; idx; mask } ->
          emit_lanes mask;
          let base = geti idx in
          let d = getvi dst in
          let any = ref false in
          for l = 0 to width - 1 do
            if lane_active mask l then begin
              d.(l) <- Memory.get_i mem buf (base + l);
              any := true
            end
          done;
          if !any then emit ~buf ~idx:base ~bytes:(width * 4) ~kind:Read ~chain:false ()
      | Vloadf_strided { dst; buf; idx; stride } ->
          let base = geti idx and s = geti stride in
          let d = getvf dst in
          for l = 0 to width - 1 do
            let i = base + (l * s) in
            d.(l) <- Memory.get_f mem buf i;
            emit ~buf ~idx:i ~bytes:4 ~kind:Read ~chain:false ()
          done
      | Vgatherf { dst; buf; idx; mask; chain } ->
          emit_lanes mask;
          let d = getvf dst and ix = getvi idx in
          for l = 0 to width - 1 do
            if lane_active mask l then begin
              d.(l) <- Memory.get_f mem buf ix.(l);
              emit ~buf ~idx:ix.(l) ~bytes:4 ~kind:Read ~chain ()
            end
          done
      | Vgatheri { dst; buf; idx; mask; chain } ->
          emit_lanes mask;
          let d = getvi dst and ix = getvi idx in
          for l = 0 to width - 1 do
            if lane_active mask l then begin
              d.(l) <- Memory.get_i mem buf ix.(l);
              emit ~buf ~idx:ix.(l) ~bytes:4 ~kind:Read ~chain ()
            end
          done
      | Vstoref { buf; idx; src; mask } ->
          emit_lanes mask;
          let base = geti idx in
          let s = getvf src in
          let any = ref false in
          for l = 0 to width - 1 do
            if lane_active mask l then begin
              Memory.set_f mem buf (base + l) s.(l);
              any := true
            end
          done;
          if !any then emit ~buf ~idx:base ~bytes:(width * 4) ~kind:Write ~chain:false ()
      | Vstorei { buf; idx; src; mask } ->
          emit_lanes mask;
          let base = geti idx in
          let s = getvi src in
          let any = ref false in
          for l = 0 to width - 1 do
            if lane_active mask l then begin
              Memory.set_i mem buf (base + l) s.(l);
              any := true
            end
          done;
          if !any then emit ~buf ~idx:base ~bytes:(width * 4) ~kind:Write ~chain:false ()
      | Vstoref_nt { buf; idx; src } ->
          let base = geti idx in
          let s = getvf src in
          for l = 0 to width - 1 do
            Memory.set_f mem buf (base + l) s.(l)
          done;
          emit ~nt:true ~buf ~idx:base ~bytes:(width * 4) ~kind:Write ~chain:false ()
      | Vstoref_strided { buf; idx; stride; src } ->
          let base = geti idx and st' = geti stride in
          let s = getvf src in
          for l = 0 to width - 1 do
            let i = base + (l * st') in
            Memory.set_f mem buf i s.(l);
            emit ~buf ~idx:i ~bytes:4 ~kind:Write ~chain:false ()
          done
      | Vscatterf { buf; idx; src; mask } ->
          emit_lanes mask;
          let ix = getvi idx and s = getvf src in
          for l = 0 to width - 1 do
            if lane_active mask l then begin
              Memory.set_f mem buf ix.(l) s.(l);
              emit ~buf ~idx:ix.(l) ~bytes:4 ~kind:Write ~chain:false ()
            end
          done
      | Vscatteri { buf; idx; src; mask } ->
          emit_lanes mask;
          let ix = getvi idx and s = getvi src in
          for l = 0 to width - 1 do
            if lane_active mask l then begin
              Memory.set_i mem buf ix.(l) s.(l);
              emit ~buf ~idx:ix.(l) ~bytes:4 ~kind:Write ~chain:false ()
            end
          done
    in
    let rec exec_block b = List.iter exec_stmt b
    and exec_stmt = function
      | Isa.I i -> exec_instr i
      | Isa.For { idx; lo; hi; step; body } ->
          let lo = geti lo and hi = geti hi and step = geti step in
          if step <= 0 then Memory.trap "for loop with non-positive step %d" step;
          let i = ref lo in
          while !i < hi do
            seti idx !i;
            (* loop bookkeeping: induction update + compare, and the branch *)
            count Salu 1;
            count Branch 1;
            exec_block body;
            i := !i + step
          done
      | Isa.While { cond_block; cond; body } ->
          let continue = ref true in
          while !continue do
            exec_block cond_block;
            count Branch 1;
            if geti cond <> 0 then exec_block body else continue := false
          done
      | Isa.If { cond; then_; else_ } ->
          count Branch 1;
          if geti cond <> 0 then exec_block then_ else exec_block else_
      | Isa.Region { label; body } ->
          (match trace with
          | Some f -> f (Trace.Enter { thread; scope = Loop label })
          | None -> ());
          exec_block body;
          (match trace with
          | Some f -> f (Trace.Exit { thread; scope = Loop label })
          | None -> ())
    in
    exec_block block
  in

  (* ---- decoded executor: the fast path. Same semantics as [run_tree],
     op for op — registers read straight out of the state arrays, counts
     written through the pre-resolved class index, operator dispatch
     hoisted out of the lane loops. ---- *)
  let run_flat ~thread st (code : Decode.dop array) =
    let si = st.si and sf = st.sf and vf = st.vf and vi = st.vi and vm = st.vm in
    let row = Counts.thread_row counts ~thread in
    let cnt cls cls_idx n =
      row.(cls_idx) <- row.(cls_idx) + n;
      instructions := !instructions + n;
      remaining_fuel := !remaining_fuel - n;
      if !remaining_fuel < 0 then Memory.trap "fuel exhausted in %s" prog.prog_name;
      match trace with
      | Some f -> for _ = 1 to n do f (Trace.Op { thread; cls }) done
      | None -> ()
    in
    (* For headers / back edges count one Salu + one Branch. The untraced
       case is inlined at the Dfor/Dforback arms with the two updates
       fused into one bookkeeping step: fuel can only trap one op earlier,
       with identical observable state — counts die with the exception and
       no memory write sits between the two. This traced version keeps the
       per-op Trace.Op emission order. *)
    let cnt_loop_edge () =
      cnt Isa.Salu salu_idx 1;
      cnt Isa.Branch branch_idx 1
    in
    let emit =
      (* the common configuration — event sink, no race tracker — skips
         make_emit's per-call option matches *)
      match (tracker, sink) with
      | None, Some f ->
          fun ~nt ~buf ~idx ~bytes ~kind ~chain ->
            f { Event.thread; addr = Memory.address mem buf idx; bytes; kind; chain; nt }
      | _ -> make_emit ~thread
    in
    let act_of = function None -> all_true | Some (Isa.Vm m) -> vm.(m) in
    let emit_lanes_act =
      match trace with
      | None -> fun _ -> ()
      | Some f ->
          fun act ->
            let active = Array.fold_left (fun a b -> if b then a + 1 else a) 0 act in
            f (Trace.Lanes { thread; active; width })
    in
    let exec_instr instr =
      match (instr : Isa.instr) with
      | Iconst (Si d, n) -> si.(d) <- n
      | Fconst (Sf d, x) -> sf.(d) <- x
      | Imov (Si d, Si a) -> si.(d) <- si.(a)
      | Fmov (Sf d, Sf a) -> sf.(d) <- sf.(a)
      | Ibin (op, Si d, Si a, Si b) ->
          let a = si.(a) and b = si.(b) in
          si.(d) <-
            (match op with
            | Iadd -> a + b
            | Isub -> a - b
            | Imul -> a * b
            | Idiv -> if b = 0 then Memory.trap "integer division by zero" else a / b
            | Imod -> if b = 0 then Memory.trap "integer modulo by zero" else a mod b
            | Iand -> a land b
            | Ior -> a lor b
            | Ixor -> a lxor b
            | Ishl -> a lsl b
            | Ishr -> a asr b
            | Imin -> if a <= b then a else b
            | Imax -> if a >= b then a else b)
      | Fbin (op, Sf d, Sf a, Sf b) ->
          let a = sf.(a) and b = sf.(b) in
          sf.(d) <-
            (match op with
            | Fadd -> a +. b
            | Fsub -> a -. b
            | Fmul -> a *. b
            | Fdiv -> a /. b
            | Fmin -> Float.min a b
            | Fmax -> Float.max a b)
      | Fma (Sf d, Sf a, Sf b, Sf c) -> sf.(d) <- (sf.(a) *. sf.(b)) +. sf.(c)
      | Funop (op, Sf d, Sf a) ->
          let a = sf.(a) in
          sf.(d) <-
            (match op with
            | Fneg -> -.a
            | Fabs -> Float.abs a
            | Fsqrt -> Float.sqrt a
            | Frsqrt -> 1. /. Float.sqrt a
            | Fexp -> Float.exp a
            | Flog -> Float.log a
            | Ffloor -> Float.floor a)
      | Icmp (op, Si d, Si a, Si b) ->
          let a = si.(a) and b = si.(b) in
          let c =
            match op with
            | Ceq -> a = b
            | Cne -> a <> b
            | Clt -> a < b
            | Cle -> a <= b
            | Cgt -> a > b
            | Cge -> a >= b
          in
          si.(d) <- (if c then 1 else 0)
      | Fcmp (op, Si d, Sf a, Sf b) ->
          let a = sf.(a) and b = sf.(b) in
          let c =
            match op with
            | Ceq -> Float.equal a b
            | Cne -> not (Float.equal a b)
            | Clt -> a < b
            | Cle -> a <= b
            | Cgt -> a > b
            | Cge -> a >= b
          in
          si.(d) <- (if c then 1 else 0)
      | Iselect (Si d, Si c, Si a, Si b) ->
          si.(d) <- (if si.(c) <> 0 then si.(a) else si.(b))
      | Fselect (Sf d, Si c, Sf a, Sf b) ->
          sf.(d) <- (if si.(c) <> 0 then sf.(a) else sf.(b))
      | Fofi (Sf d, Si a) -> sf.(d) <- float_of_int si.(a)
      | Ioff (Si d, Sf a) -> si.(d) <- int_of_float sf.(a)
      | Loadf { dst = Sf dst; buf; idx = Si idx; chain } ->
          let i = si.(idx) in
          sf.(dst) <- Memory.get_f mem buf i;
          emit ~nt:false ~buf ~idx:i ~bytes:4 ~kind:Read ~chain
      | Loadi { dst = Si dst; buf; idx = Si idx; chain } ->
          let i = si.(idx) in
          si.(dst) <- Memory.get_i mem buf i;
          emit ~nt:false ~buf ~idx:i ~bytes:4 ~kind:Read ~chain
      | Storef { buf; idx = Si idx; src = Sf src } ->
          let i = si.(idx) in
          Memory.set_f mem buf i sf.(src);
          emit ~nt:false ~buf ~idx:i ~bytes:4 ~kind:Write ~chain:false
      | Storei { buf; idx = Si idx; src = Si src } ->
          let i = si.(idx) in
          Memory.set_i mem buf i si.(src);
          emit ~nt:false ~buf ~idx:i ~bytes:4 ~kind:Write ~chain:false
      | Vmovf (Vf d, Vf a) -> Array.blit vf.(a) 0 vf.(d) 0 width
      | Vmovi (Vi d, Vi a) -> Array.blit vi.(a) 0 vi.(d) 0 width
      | Vbroadcastf (Vf d, Sf a) -> Array.fill vf.(d) 0 width sf.(a)
      | Vbroadcasti (Vi d, Si a) -> Array.fill vi.(d) 0 width si.(a)
      | Viota (Vi d) ->
          let v = vi.(d) in
          for l = 0 to width - 1 do v.(l) <- l done
      | Vfbin (op, Vf d, Vf a, Vf b) ->
          let d = vf.(d) and a = vf.(a) and b = vf.(b) in
          (match op with
          | Fadd -> for l = 0 to width - 1 do d.(l) <- a.(l) +. b.(l) done
          | Fsub -> for l = 0 to width - 1 do d.(l) <- a.(l) -. b.(l) done
          | Fmul -> for l = 0 to width - 1 do d.(l) <- a.(l) *. b.(l) done
          | Fdiv -> for l = 0 to width - 1 do d.(l) <- a.(l) /. b.(l) done
          | Fmin -> for l = 0 to width - 1 do d.(l) <- Float.min a.(l) b.(l) done
          | Fmax -> for l = 0 to width - 1 do d.(l) <- Float.max a.(l) b.(l) done)
      | Vfma (Vf d, Vf a, Vf b, Vf c) ->
          let d = vf.(d) and a = vf.(a) and b = vf.(b) and c = vf.(c) in
          for l = 0 to width - 1 do d.(l) <- (a.(l) *. b.(l)) +. c.(l) done
      | Vfunop (op, Vf d, Vf a) ->
          let d = vf.(d) and a = vf.(a) in
          (match op with
          | Fneg -> for l = 0 to width - 1 do d.(l) <- -.a.(l) done
          | Fabs -> for l = 0 to width - 1 do d.(l) <- Float.abs a.(l) done
          | Fsqrt -> for l = 0 to width - 1 do d.(l) <- Float.sqrt a.(l) done
          | Frsqrt -> for l = 0 to width - 1 do d.(l) <- 1. /. Float.sqrt a.(l) done
          | Fexp -> for l = 0 to width - 1 do d.(l) <- Float.exp a.(l) done
          | Flog -> for l = 0 to width - 1 do d.(l) <- Float.log a.(l) done
          | Ffloor -> for l = 0 to width - 1 do d.(l) <- Float.floor a.(l) done)
      | Vibin (op, Vi d, Vi a, Vi b) ->
          let d = vi.(d) and a = vi.(a) and b = vi.(b) in
          (match op with
          | Iadd -> for l = 0 to width - 1 do d.(l) <- a.(l) + b.(l) done
          | Isub -> for l = 0 to width - 1 do d.(l) <- a.(l) - b.(l) done
          | Imul -> for l = 0 to width - 1 do d.(l) <- a.(l) * b.(l) done
          | Idiv ->
              for l = 0 to width - 1 do
                d.(l) <-
                  (if b.(l) = 0 then Memory.trap "integer division by zero"
                   else a.(l) / b.(l))
              done
          | Imod ->
              for l = 0 to width - 1 do
                d.(l) <-
                  (if b.(l) = 0 then Memory.trap "integer modulo by zero"
                   else a.(l) mod b.(l))
              done
          | Iand -> for l = 0 to width - 1 do d.(l) <- a.(l) land b.(l) done
          | Ior -> for l = 0 to width - 1 do d.(l) <- a.(l) lor b.(l) done
          | Ixor -> for l = 0 to width - 1 do d.(l) <- a.(l) lxor b.(l) done
          | Ishl -> for l = 0 to width - 1 do d.(l) <- a.(l) lsl b.(l) done
          | Ishr -> for l = 0 to width - 1 do d.(l) <- a.(l) asr b.(l) done
          | Imin ->
              for l = 0 to width - 1 do
                d.(l) <- (if a.(l) <= b.(l) then a.(l) else b.(l))
              done
          | Imax ->
              for l = 0 to width - 1 do
                d.(l) <- (if a.(l) >= b.(l) then a.(l) else b.(l))
              done)
      | Vfcmp (op, Vm d, Vf a, Vf b) ->
          let d = vm.(d) and a = vf.(a) and b = vf.(b) in
          (match op with
          | Ceq -> for l = 0 to width - 1 do d.(l) <- Float.equal a.(l) b.(l) done
          | Cne ->
              for l = 0 to width - 1 do d.(l) <- not (Float.equal a.(l) b.(l)) done
          | Clt -> for l = 0 to width - 1 do d.(l) <- a.(l) < b.(l) done
          | Cle -> for l = 0 to width - 1 do d.(l) <- a.(l) <= b.(l) done
          | Cgt -> for l = 0 to width - 1 do d.(l) <- a.(l) > b.(l) done
          | Cge -> for l = 0 to width - 1 do d.(l) <- a.(l) >= b.(l) done)
      | Vicmp (op, Vm d, Vi a, Vi b) ->
          let d = vm.(d) and a = vi.(a) and b = vi.(b) in
          (match op with
          | Ceq -> for l = 0 to width - 1 do d.(l) <- a.(l) = b.(l) done
          | Cne -> for l = 0 to width - 1 do d.(l) <- a.(l) <> b.(l) done
          | Clt -> for l = 0 to width - 1 do d.(l) <- a.(l) < b.(l) done
          | Cle -> for l = 0 to width - 1 do d.(l) <- a.(l) <= b.(l) done
          | Cgt -> for l = 0 to width - 1 do d.(l) <- a.(l) > b.(l) done
          | Cge -> for l = 0 to width - 1 do d.(l) <- a.(l) >= b.(l) done)
      | Vselectf (Vf d, Vm m, Vf a, Vf b) ->
          let d = vf.(d) and m = vm.(m) and a = vf.(a) and b = vf.(b) in
          for l = 0 to width - 1 do d.(l) <- (if m.(l) then a.(l) else b.(l)) done
      | Vselecti (Vi d, Vm m, Vi a, Vi b) ->
          let d = vi.(d) and m = vm.(m) and a = vi.(a) and b = vi.(b) in
          for l = 0 to width - 1 do d.(l) <- (if m.(l) then a.(l) else b.(l)) done
      | Vfofi (Vf d, Vi a) ->
          let d = vf.(d) and a = vi.(a) in
          for l = 0 to width - 1 do d.(l) <- float_of_int a.(l) done
      | Vioff (Vi d, Vf a) ->
          let d = vi.(d) and a = vf.(a) in
          for l = 0 to width - 1 do d.(l) <- int_of_float a.(l) done
      | Vpermutef (Vf d, Vf a, pat) ->
          let d = vf.(d) and a = vf.(a) in
          let n = Array.length pat in
          for l = 0 to width - 1 do
            let s = pat.(l mod n) in
            if s < 0 || s >= width then Memory.trap "vperm lane %d out of range" s;
            scratch.(l) <- a.(s)
          done;
          Array.blit scratch 0 d 0 width
      | Vextractf (Sf d, Vf a, Si lane) ->
          let l = si.(lane) in
          if l < 0 || l >= width then Memory.trap "vextract lane %d out of range" l;
          sf.(d) <- vf.(a).(l)
      | Vinsertf (Vf d, Si lane, Sf a) ->
          let l = si.(lane) in
          if l < 0 || l >= width then Memory.trap "vinsert lane %d out of range" l;
          vf.(d).(l) <- sf.(a)
      | Vreducef (r, Sf d, Vf a) ->
          let a = vf.(a) in
          let acc = ref a.(0) in
          (match r with
          | Rsum -> for l = 1 to width - 1 do acc := !acc +. a.(l) done
          | Rmin -> for l = 1 to width - 1 do acc := Float.min !acc a.(l) done
          | Rmax -> for l = 1 to width - 1 do acc := Float.max !acc a.(l) done);
          sf.(d) <- !acc
      | Vreducei (r, Si d, Vi a) ->
          let a = vi.(a) in
          let acc = ref a.(0) in
          (match r with
          | Rsum -> for l = 1 to width - 1 do acc := !acc + a.(l) done
          | Rmin -> for l = 1 to width - 1 do if a.(l) < !acc then acc := a.(l) done
          | Rmax -> for l = 1 to width - 1 do if a.(l) > !acc then acc := a.(l) done);
          si.(d) <- !acc
      | Mconst (Vm d, v) -> Array.fill vm.(d) 0 width v
      | Mpattern (Vm d, pat) ->
          let d = vm.(d) in
          let n = Array.length pat in
          for l = 0 to width - 1 do d.(l) <- pat.(l mod n) done
      | Mfirst (Vm d, Si n) ->
          let d = vm.(d) and n = si.(n) in
          for l = 0 to width - 1 do d.(l) <- l < n done
      | Mnot (Vm d, Vm a) ->
          let d = vm.(d) and a = vm.(a) in
          for l = 0 to width - 1 do d.(l) <- not a.(l) done
      | Mand (Vm d, Vm a, Vm b) ->
          let d = vm.(d) and a = vm.(a) and b = vm.(b) in
          for l = 0 to width - 1 do d.(l) <- a.(l) && b.(l) done
      | Mor (Vm d, Vm a, Vm b) ->
          let d = vm.(d) and a = vm.(a) and b = vm.(b) in
          for l = 0 to width - 1 do d.(l) <- a.(l) || b.(l) done
      | Many (Si d, Vm a) -> si.(d) <- (if Array.exists Fun.id vm.(a) then 1 else 0)
      | Mall (Si d, Vm a) -> si.(d) <- (if Array.for_all Fun.id vm.(a) then 1 else 0)
      | Mcount (Si d, Vm a) ->
          si.(d) <- Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 vm.(a)
      | Vloadf { dst = Vf dst; buf; idx = Si idx; mask = None } ->
          (* unmasked: every lane is active, so the whole vector moves with
             one bounds/type check (identical traps via the block fallback) *)
          emit_lanes_act all_true;
          let base = si.(idx) in
          Memory.get_f_block mem buf base vf.(dst) width;
          emit ~nt:false ~buf ~idx:base ~bytes:(width * 4) ~kind:Read ~chain:false
      | Vloadf { dst = Vf dst; buf; idx = Si idx; mask } ->
          let act = act_of mask in
          emit_lanes_act act;
          let base = si.(idx) in
          let d = vf.(dst) in
          let any = ref false in
          for l = 0 to width - 1 do
            if act.(l) then begin
              d.(l) <- Memory.get_f mem buf (base + l);
              any := true
            end
          done;
          if !any then emit ~nt:false ~buf ~idx:base ~bytes:(width * 4) ~kind:Read ~chain:false
      | Vloadi { dst = Vi dst; buf; idx = Si idx; mask = None } ->
          emit_lanes_act all_true;
          let base = si.(idx) in
          Memory.get_i_block mem buf base vi.(dst) width;
          emit ~nt:false ~buf ~idx:base ~bytes:(width * 4) ~kind:Read ~chain:false
      | Vloadi { dst = Vi dst; buf; idx = Si idx; mask } ->
          let act = act_of mask in
          emit_lanes_act act;
          let base = si.(idx) in
          let d = vi.(dst) in
          let any = ref false in
          for l = 0 to width - 1 do
            if act.(l) then begin
              d.(l) <- Memory.get_i mem buf (base + l);
              any := true
            end
          done;
          if !any then emit ~nt:false ~buf ~idx:base ~bytes:(width * 4) ~kind:Read ~chain:false
      | Vloadf_strided { dst = Vf dst; buf; idx = Si idx; stride = Si stride } ->
          let base = si.(idx) and s = si.(stride) in
          let d = vf.(dst) in
          for l = 0 to width - 1 do
            let i = base + (l * s) in
            d.(l) <- Memory.get_f mem buf i;
            emit ~nt:false ~buf ~idx:i ~bytes:4 ~kind:Read ~chain:false
          done
      | Vgatherf { dst = Vf dst; buf; idx = Vi idx; mask; chain } ->
          let act = act_of mask in
          emit_lanes_act act;
          let d = vf.(dst) and ix = vi.(idx) in
          for l = 0 to width - 1 do
            if act.(l) then begin
              d.(l) <- Memory.get_f mem buf ix.(l);
              emit ~nt:false ~buf ~idx:ix.(l) ~bytes:4 ~kind:Read ~chain
            end
          done
      | Vgatheri { dst = Vi dst; buf; idx = Vi idx; mask; chain } ->
          let act = act_of mask in
          emit_lanes_act act;
          let d = vi.(dst) and ix = vi.(idx) in
          for l = 0 to width - 1 do
            if act.(l) then begin
              d.(l) <- Memory.get_i mem buf ix.(l);
              emit ~nt:false ~buf ~idx:ix.(l) ~bytes:4 ~kind:Read ~chain
            end
          done
      | Vstoref { buf; idx = Si idx; src = Vf src; mask = None } ->
          emit_lanes_act all_true;
          let base = si.(idx) in
          Memory.set_f_block mem buf base vf.(src) width;
          emit ~nt:false ~buf ~idx:base ~bytes:(width * 4) ~kind:Write ~chain:false
      | Vstoref { buf; idx = Si idx; src = Vf src; mask } ->
          let act = act_of mask in
          emit_lanes_act act;
          let base = si.(idx) in
          let s = vf.(src) in
          let any = ref false in
          for l = 0 to width - 1 do
            if act.(l) then begin
              Memory.set_f mem buf (base + l) s.(l);
              any := true
            end
          done;
          if !any then emit ~nt:false ~buf ~idx:base ~bytes:(width * 4) ~kind:Write ~chain:false
      | Vstorei { buf; idx = Si idx; src = Vi src; mask = None } ->
          emit_lanes_act all_true;
          let base = si.(idx) in
          Memory.set_i_block mem buf base vi.(src) width;
          emit ~nt:false ~buf ~idx:base ~bytes:(width * 4) ~kind:Write ~chain:false
      | Vstorei { buf; idx = Si idx; src = Vi src; mask } ->
          let act = act_of mask in
          emit_lanes_act act;
          let base = si.(idx) in
          let s = vi.(src) in
          let any = ref false in
          for l = 0 to width - 1 do
            if act.(l) then begin
              Memory.set_i mem buf (base + l) s.(l);
              any := true
            end
          done;
          if !any then emit ~nt:false ~buf ~idx:base ~bytes:(width * 4) ~kind:Write ~chain:false
      | Vstoref_nt { buf; idx = Si idx; src = Vf src } ->
          let base = si.(idx) in
          Memory.set_f_block mem buf base vf.(src) width;
          emit ~nt:true ~buf ~idx:base ~bytes:(width * 4) ~kind:Write ~chain:false
      | Vstoref_strided { buf; idx = Si idx; stride = Si stride; src = Vf src } ->
          let base = si.(idx) and st' = si.(stride) in
          let s = vf.(src) in
          for l = 0 to width - 1 do
            let i = base + (l * st') in
            Memory.set_f mem buf i s.(l);
            emit ~nt:false ~buf ~idx:i ~bytes:4 ~kind:Write ~chain:false
          done
      | Vscatterf { buf; idx = Vi idx; src = Vf src; mask } ->
          let act = act_of mask in
          emit_lanes_act act;
          let ix = vi.(idx) and s = vf.(src) in
          for l = 0 to width - 1 do
            if act.(l) then begin
              Memory.set_f mem buf ix.(l) s.(l);
              emit ~nt:false ~buf ~idx:ix.(l) ~bytes:4 ~kind:Write ~chain:false
            end
          done
      | Vscatteri { buf; idx = Vi idx; src = Vi src; mask } ->
          let act = act_of mask in
          emit_lanes_act act;
          let ix = vi.(idx) and s = vi.(src) in
          for l = 0 to width - 1 do
            if act.(l) then begin
              Memory.set_i mem buf ix.(l) s.(l);
              emit ~nt:false ~buf ~idx:ix.(l) ~bytes:4 ~kind:Write ~chain:false
            end
          done
    in
    let len = Array.length code in
    let pc = ref 0 in
    while !pc < len do
      match Array.unsafe_get code !pc with
      | Decode.Dinstr { i; cls; cls_idx } ->
          (* cnt's body, inlined in the hottest arm of the dispatch loop *)
          row.(cls_idx) <- row.(cls_idx) + 1;
          instructions := !instructions + 1;
          remaining_fuel := !remaining_fuel - 1;
          if !remaining_fuel < 0 then Memory.trap "fuel exhausted in %s" prog.prog_name;
          (match trace with Some f -> f (Trace.Op { thread; cls }) | None -> ());
          exec_instr i;
          incr pc
      | Decode.Dfor { idx; lo; hi; step; id; exit } ->
          let lo = si.(lo) and hi = si.(hi) and step = si.(step) in
          if step <= 0 then Memory.trap "for loop with non-positive step %d" step;
          if lo < hi then begin
            for_cur.(id) <- lo;
            for_hi.(id) <- hi;
            for_step.(id) <- step;
            si.(idx) <- lo;
            (match trace with
            | None ->
                row.(salu_idx) <- row.(salu_idx) + 1;
                row.(branch_idx) <- row.(branch_idx) + 1;
                instructions := !instructions + 2;
                remaining_fuel := !remaining_fuel - 2;
                if !remaining_fuel < 0 then
                  Memory.trap "fuel exhausted in %s" prog.prog_name
            | Some _ -> cnt_loop_edge ());
            incr pc
          end
          else pc := exit
      | Decode.Dforback { idx; id; body } ->
          let i = for_cur.(id) + for_step.(id) in
          if i < for_hi.(id) then begin
            for_cur.(id) <- i;
            si.(idx) <- i;
            (match trace with
            | None ->
                row.(salu_idx) <- row.(salu_idx) + 1;
                row.(branch_idx) <- row.(branch_idx) + 1;
                instructions := !instructions + 2;
                remaining_fuel := !remaining_fuel - 2;
                if !remaining_fuel < 0 then
                  Memory.trap "fuel exhausted in %s" prog.prog_name
            | Some _ -> cnt_loop_edge ());
            pc := body
          end
          else incr pc
      | Decode.Dwhile { cond; exit } ->
          (match trace with
          | None ->
              row.(branch_idx) <- row.(branch_idx) + 1;
              instructions := !instructions + 1;
              remaining_fuel := !remaining_fuel - 1;
              if !remaining_fuel < 0 then
                Memory.trap "fuel exhausted in %s" prog.prog_name
          | Some _ -> cnt Isa.Branch branch_idx 1);
          if si.(cond) <> 0 then incr pc else pc := exit
      | Decode.Dif { cond; else_ } ->
          (match trace with
          | None ->
              row.(branch_idx) <- row.(branch_idx) + 1;
              instructions := !instructions + 1;
              remaining_fuel := !remaining_fuel - 1;
              if !remaining_fuel < 0 then
                Memory.trap "fuel exhausted in %s" prog.prog_name
          | Some _ -> cnt Isa.Branch branch_idx 1);
          if si.(cond) <> 0 then incr pc else pc := else_
      | Decode.Djmp target -> pc := target
      | Decode.Denter scope ->
          (match trace with
          | Some f -> f (Trace.Enter { thread; scope })
          | None -> ());
          incr pc
      | Decode.Dexit scope ->
          (match trace with
          | Some f -> f (Trace.Exit { thread; scope })
          | None -> ());
          incr pc
      (* ---- optimizer-specialized forms (Optimize). Each arm keeps the
         counts, fuel, Trace.Op emission and memory events of the ops it
         replaces, in the same order. ---- *)
      | Decode.Daddi { d; a; imm } ->
          row.(salu_idx) <- row.(salu_idx) + 1;
          instructions := !instructions + 1;
          remaining_fuel := !remaining_fuel - 1;
          if !remaining_fuel < 0 then Memory.trap "fuel exhausted in %s" prog.prog_name;
          (match trace with
          | Some f -> f (Trace.Op { thread; cls = Isa.Salu })
          | None -> ());
          si.(d) <- si.(a) + imm;
          incr pc
      | Decode.Dmuli { d; a; imm } ->
          row.(salu_idx) <- row.(salu_idx) + 1;
          instructions := !instructions + 1;
          remaining_fuel := !remaining_fuel - 1;
          if !remaining_fuel < 0 then Memory.trap "fuel exhausted in %s" prog.prog_name;
          (match trace with
          | Some f -> f (Trace.Op { thread; cls = Isa.Salu })
          | None -> ());
          si.(d) <- si.(a) * imm;
          incr pc
      | Decode.Dloadf_at { dst; buf; imm; chain } ->
          row.(sload_idx) <- row.(sload_idx) + 1;
          instructions := !instructions + 1;
          remaining_fuel := !remaining_fuel - 1;
          if !remaining_fuel < 0 then Memory.trap "fuel exhausted in %s" prog.prog_name;
          (match trace with
          | Some f -> f (Trace.Op { thread; cls = Isa.Sload })
          | None -> ());
          sf.(dst) <- Memory.get_f mem buf imm;
          emit ~nt:false ~buf ~idx:imm ~bytes:4 ~kind:Read ~chain;
          incr pc
      | Decode.Dloadi_at { dst; buf; imm; chain } ->
          row.(sload_idx) <- row.(sload_idx) + 1;
          instructions := !instructions + 1;
          remaining_fuel := !remaining_fuel - 1;
          if !remaining_fuel < 0 then Memory.trap "fuel exhausted in %s" prog.prog_name;
          (match trace with
          | Some f -> f (Trace.Op { thread; cls = Isa.Sload })
          | None -> ());
          si.(dst) <- Memory.get_i mem buf imm;
          emit ~nt:false ~buf ~idx:imm ~bytes:4 ~kind:Read ~chain;
          incr pc
      | Decode.Dstoref_at { buf; imm; src } ->
          row.(sstore_idx) <- row.(sstore_idx) + 1;
          instructions := !instructions + 1;
          remaining_fuel := !remaining_fuel - 1;
          if !remaining_fuel < 0 then Memory.trap "fuel exhausted in %s" prog.prog_name;
          (match trace with
          | Some f -> f (Trace.Op { thread; cls = Isa.Sstore })
          | None -> ());
          Memory.set_f mem buf imm sf.(src);
          emit ~nt:false ~buf ~idx:imm ~bytes:4 ~kind:Write ~chain:false;
          incr pc
      | Decode.Dstorei_at { buf; imm; src } ->
          row.(sstore_idx) <- row.(sstore_idx) + 1;
          instructions := !instructions + 1;
          remaining_fuel := !remaining_fuel - 1;
          if !remaining_fuel < 0 then Memory.trap "fuel exhausted in %s" prog.prog_name;
          (match trace with
          | Some f -> f (Trace.Op { thread; cls = Isa.Sstore })
          | None -> ());
          Memory.set_i mem buf imm si.(src);
          emit ~nt:false ~buf ~idx:imm ~bytes:4 ~kind:Write ~chain:false;
          incr pc
      | Decode.Dgoto target ->
          row.(branch_idx) <- row.(branch_idx) + 1;
          instructions := !instructions + 1;
          remaining_fuel := !remaining_fuel - 1;
          if !remaining_fuel < 0 then Memory.trap "fuel exhausted in %s" prog.prog_name;
          (match trace with
          | Some f -> f (Trace.Op { thread; cls = Isa.Branch })
          | None -> ());
          pc := target
      | Decode.Dphantom { cls; cls_idx; n } ->
          (match trace with
          | None ->
              (* batched bookkeeping, same fuel waiver as the loop edges:
                 a trap can only land up to n-1 ops early, with identical
                 observable state *)
              row.(cls_idx) <- row.(cls_idx) + n;
              instructions := !instructions + n;
              remaining_fuel := !remaining_fuel - n;
              if !remaining_fuel < 0 then
                Memory.trap "fuel exhausted in %s" prog.prog_name
          | Some _ ->
              (* per-op, so the Trace.Op prefix at a fuel trap is exact *)
              for _ = 1 to n do cnt cls cls_idx 1 done);
          incr pc
      | Decode.Dsmuladd { t; a; b; d; x; y } ->
          (match trace with
          | None ->
              row.(sfp_idx) <- row.(sfp_idx) + 2;
              instructions := !instructions + 2;
              remaining_fuel := !remaining_fuel - 2;
              if !remaining_fuel < 0 then
                Memory.trap "fuel exhausted in %s" prog.prog_name
          | Some _ ->
              cnt Isa.Sfp sfp_idx 1;
              cnt Isa.Sfp sfp_idx 1);
          sf.(t) <- sf.(a) *. sf.(b);
          sf.(d) <- sf.(x) +. sf.(y);
          incr pc
      | Decode.Dvmuladd { t; a; b; d; x; y } ->
          (match trace with
          | None ->
              row.(vfp_idx) <- row.(vfp_idx) + 2;
              instructions := !instructions + 2;
              remaining_fuel := !remaining_fuel - 2;
              if !remaining_fuel < 0 then
                Memory.trap "fuel exhausted in %s" prog.prog_name
          | Some _ ->
              cnt Isa.Vfp vfp_idx 1;
              cnt Isa.Vfp vfp_idx 1);
          (* the two lane loops of the replaced Vfbin pair, back to back *)
          let dt = vf.(t) and la = vf.(a) and lb = vf.(b) in
          for l = 0 to width - 1 do
            dt.(l) <- la.(l) *. lb.(l)
          done;
          let dd = vf.(d) and lx = vf.(x) and ly = vf.(y) in
          for l = 0 to width - 1 do
            dd.(l) <- lx.(l) +. ly.(l)
          done;
          incr pc
    done
  in

  (* ---- compiled executor: run one thread through a phase closure
     pre-compiled by {!Compile} (see the phase_work mapping above). ---- *)
  let run_compiled ~thread st (k : Compile.tctx -> unit) =
    let emit =
      match (tracker, sink) with
      | None, Some f ->
          fun ~nt ~buf ~idx ~bytes ~kind ~chain ->
            f { Event.thread; addr = Memory.address mem buf idx; bytes; kind; chain; nt }
      | _ -> make_emit ~thread
    in
    k
      {
        Compile.si = st.si;
        sf = st.sf;
        vf = st.vf;
        vi = st.vi;
        vm = st.vm;
        row = Counts.thread_row counts ~thread;
        thread;
        emit;
      }
  in

  let run_block ~thread st = function
    | Wtree b -> run_tree ~thread st b
    | Wflat code -> run_flat ~thread st code
    | Wcomp k -> run_compiled ~thread st k
  in

  let init_thread tid =
    let st = states.(tid) in
    let (Isa.Si t) = Isa.thread_id_reg in
    let (Isa.Si n) = Isa.num_threads_reg in
    let (Isa.Si w) = Isa.vector_width_reg in
    st.si.(t) <- tid;
    st.si.(n) <- n_threads;
    st.si.(w) <- width
  in
  (* The launch thunk: everything above (decode, optimize, compile,
     executor selection) ran once; each call below is one kernel launch
     against the same memory. Per-launch architectural state — counts,
     fuel, the register files — is reset so launch N is indistinguishable
     from a fresh [run] call. *)
  let budget = Option.value fuel ~default:max_int in
  fun () ->
    Counts.clear counts;
    instructions := 0;
    remaining_fuel := budget;
    Array.iter
      (fun st ->
        Array.fill st.si 0 (Array.length st.si) 0;
        Array.fill st.sf 0 (Array.length st.sf) 0.;
        Array.iter (fun a -> Array.fill a 0 width 0.) st.vf;
        Array.iter (fun a -> Array.fill a 0 width 0) st.vi;
        Array.iter (fun a -> Array.fill a 0 width false) st.vm)
      states;
    List.iteri
      (fun phase_idx (parallel, work) ->
        (match tracker with
        | Some rt ->
            Hashtbl.reset rt.writes;
            Hashtbl.reset rt.reads
        | None -> ());
        let run_thread ~parallel tid work =
          init_thread tid;
          let scope = Trace.Phase { index = phase_idx; parallel } in
          (match trace with
          | Some f -> f (Trace.Enter { thread = tid; scope })
          | None -> ());
          run_block ~thread:tid states.(tid) work;
          match trace with
          | Some f -> f (Trace.Exit { thread = tid; scope })
          | None -> ()
        in
        if parallel then
          for tid = 0 to n_threads - 1 do
            run_thread ~parallel:true tid work
          done
        else run_thread ~parallel:false 0 work;
        match tracker with
        | Some rt when rt.races <> [] -> raise (Race (List.rev rt.races))
        | _ -> ())
      phase_work;
    (match on_states with Some f -> f states | None -> ());
    { counts = Counts.copy counts; instructions = !instructions }

let run ?n_threads ?width ?sink ?trace ?fuel ?check_races ?strategy ?decoded
    ?on_states prog mem =
  (session ?n_threads ?width ?sink ?trace ?fuel ?check_races ?strategy ?decoded
     ?on_states prog mem)
    ()
