(* Functional interpreter for the vector ISA.

   The interpreter serves two purposes:
   - correctness: kernels (and the compiler that produced them) are checked
     against OCaml reference implementations on real data;
   - instrumentation: it produces the per-class instruction counts and the
     memory-address event stream that the timing model prices.

   [Par] phases are executed thread-after-thread; this equals parallel
   execution for race-free programs, and [~check_races:true] verifies that
   property (any location written by one thread and touched by another
   within the same phase is reported). *)

exception Trap = Memory.Trap

type result = { counts : Counts.t; instructions : int }

type thread_state = {
  si : int array;
  sf : float array;
  vf : float array array;
  vi : int array array;
  vm : bool array array;
}

let make_state (regs : Isa.reg_counts) ~width =
  {
    si = Array.make (max regs.si 1) 0;
    sf = Array.make (max regs.sf 1) 0.;
    vf = Array.init (max regs.vf 1) (fun _ -> Array.make width 0.);
    vi = Array.init (max regs.vi 1) (fun _ -> Array.make width 0);
    vm = Array.init (max regs.vm 1) (fun _ -> Array.make width false);
  }

let eval_ibin op a b =
  match (op : Isa.ibin) with
  | Iadd -> a + b
  | Isub -> a - b
  | Imul -> a * b
  | Idiv -> if b = 0 then Memory.trap "integer division by zero" else a / b
  | Imod -> if b = 0 then Memory.trap "integer modulo by zero" else a mod b
  | Iand -> a land b
  | Ior -> a lor b
  | Ixor -> a lxor b
  | Ishl -> a lsl b
  | Ishr -> a asr b
  | Imin -> min a b
  | Imax -> max a b

let eval_fbin op a b =
  match (op : Isa.fbin) with
  | Fadd -> a +. b
  | Fsub -> a -. b
  | Fmul -> a *. b
  | Fdiv -> a /. b
  | Fmin -> Float.min a b
  | Fmax -> Float.max a b

let eval_funop op a =
  match (op : Isa.funop) with
  | Fneg -> -.a
  | Fabs -> Float.abs a
  | Fsqrt -> Float.sqrt a
  | Frsqrt -> 1. /. Float.sqrt a
  | Fexp -> Float.exp a
  | Flog -> Float.log a
  | Ffloor -> Float.floor a

let eval_icmp op a b =
  match (op : Isa.cmp) with
  | Ceq -> a = b
  | Cne -> a <> b
  | Clt -> a < b
  | Cle -> a <= b
  | Cgt -> a > b
  | Cge -> a >= b

let eval_fcmp op a b =
  match (op : Isa.cmp) with
  | Ceq -> Float.equal a b
  | Cne -> not (Float.equal a b)
  | Clt -> a < b
  | Cle -> a <= b
  | Cgt -> a > b
  | Cge -> a >= b

type race_tracker = {
  writes : (int, int) Hashtbl.t; (* addr -> writing thread *)
  reads : (int, int) Hashtbl.t; (* addr -> a reading thread (-1: several) *)
  mutable races : string list;
}

let race_tracker () = { writes = Hashtbl.create 4096; reads = Hashtbl.create 4096; races = [] }

let note_race rt fmt = Fmt.kstr (fun s -> if List.length rt.races < 16 then rt.races <- s :: rt.races) fmt

let track_access rt ~thread ~addr ~(kind : Event.kind) =
  match kind with
  | Write -> (
      (match Hashtbl.find_opt rt.reads addr with
      | Some t when t <> thread -> note_race rt "write by t%d races read by t%d at 0x%x" thread t addr
      | _ -> ());
      match Hashtbl.find_opt rt.writes addr with
      | Some t when t <> thread -> note_race rt "write by t%d races write by t%d at 0x%x" thread t addr
      | Some _ -> ()
      | None -> Hashtbl.replace rt.writes addr thread)
  | Read -> (
      (match Hashtbl.find_opt rt.writes addr with
      | Some t when t <> thread -> note_race rt "read by t%d races write by t%d at 0x%x" thread t addr
      | _ -> ());
      match Hashtbl.find_opt rt.reads addr with
      | Some t when t <> thread -> Hashtbl.replace rt.reads addr (-1)
      | Some _ -> ()
      | None -> Hashtbl.replace rt.reads addr thread)

exception Race of string list

let run ?(n_threads = 1) ?(width = 4) ?sink ?trace ?fuel ?(check_races = false)
    (prog : Isa.program) (mem : Memory.t) =
  Isa.validate prog;
  if n_threads < 1 then invalid_arg "Interp.run: n_threads < 1";
  if width < 1 then invalid_arg "Interp.run: width < 1";
  let counts = Counts.create n_threads in
  let instructions = ref 0 in
  let remaining_fuel = ref (Option.value fuel ~default:max_int) in
  let states = Array.init n_threads (fun _ -> make_state prog.regs ~width) in
  let scratch = Array.make width 0. in
  let tracker = if check_races then Some (race_tracker ()) else None in

  (* Per-thread execution context, rebuilt cheaply per phase. *)
  let run_block ~thread st block =
    let count cls n =
      Counts.add counts ~thread cls n;
      instructions := !instructions + n;
      remaining_fuel := !remaining_fuel - n;
      if !remaining_fuel < 0 then Memory.trap "fuel exhausted in %s" prog.prog_name;
      match trace with
      | Some f -> for _ = 1 to n do f (Trace.Op { thread; cls }) done
      | None -> ()
    in
    let emit ?(nt = false) ~buf ~idx ~bytes ~kind ~chain () =
      (match tracker with
      | Some rt ->
          let base = Memory.address mem buf idx in
          let n = bytes / 4 in
          for k = 0 to n - 1 do
            track_access rt ~thread ~addr:(base + (k * 4)) ~kind
          done
      | None -> ());
      match sink with
      | Some f ->
          f { Event.thread; addr = Memory.address mem buf idx; bytes; kind; chain; nt }
      | None -> ()
    in
    let geti (Isa.Si r) = st.si.(r) in
    let seti (Isa.Si r) v = st.si.(r) <- v in
    let getf (Isa.Sf r) = st.sf.(r) in
    let setf (Isa.Sf r) v = st.sf.(r) <- v in
    let getvf (Isa.Vf r) = st.vf.(r) in
    let getvi (Isa.Vi r) = st.vi.(r) in
    let getvm (Isa.Vm r) = st.vm.(r) in
    let lane_active mask l =
      match mask with None -> true | Some m -> (getvm m).(l)
    in
    (* SIMD utilization of a masked vector memory access; only computed when
       a profiler is listening. *)
    let emit_lanes mask =
      match trace with
      | None -> ()
      | Some f ->
          let active =
            match mask with
            | None -> width
            | Some m ->
                Array.fold_left (fun a b -> if b then a + 1 else a) 0 (getvm m)
          in
          f (Trace.Lanes { thread; active; width })
    in
    let exec_instr instr =
      count (Isa.classify instr) 1;
      match (instr : Isa.instr) with
      | Iconst (d, n) -> seti d n
      | Fconst (d, x) -> setf d x
      | Imov (d, a) -> seti d (geti a)
      | Fmov (d, a) -> setf d (getf a)
      | Ibin (op, d, a, b) -> seti d (eval_ibin op (geti a) (geti b))
      | Fbin (op, d, a, b) -> setf d (eval_fbin op (getf a) (getf b))
      | Fma (d, a, b, c) -> setf d ((getf a *. getf b) +. getf c)
      | Funop (op, d, a) -> setf d (eval_funop op (getf a))
      | Icmp (op, d, a, b) -> seti d (if eval_icmp op (geti a) (geti b) then 1 else 0)
      | Fcmp (op, d, a, b) -> seti d (if eval_fcmp op (getf a) (getf b) then 1 else 0)
      | Iselect (d, c, a, b) -> seti d (if geti c <> 0 then geti a else geti b)
      | Fselect (d, c, a, b) -> setf d (if geti c <> 0 then getf a else getf b)
      | Fofi (d, a) -> setf d (float_of_int (geti a))
      | Ioff (d, a) -> seti d (int_of_float (getf a))
      | Loadf { dst; buf; idx; chain } ->
          let i = geti idx in
          setf dst (Memory.get_f mem buf i);
          emit ~buf ~idx:i ~bytes:4 ~kind:Read ~chain ()
      | Loadi { dst; buf; idx; chain } ->
          let i = geti idx in
          seti dst (Memory.get_i mem buf i);
          emit ~buf ~idx:i ~bytes:4 ~kind:Read ~chain ()
      | Storef { buf; idx; src } ->
          let i = geti idx in
          Memory.set_f mem buf i (getf src);
          emit ~buf ~idx:i ~bytes:4 ~kind:Write ~chain:false ()
      | Storei { buf; idx; src } ->
          let i = geti idx in
          Memory.set_i mem buf i (geti src);
          emit ~buf ~idx:i ~bytes:4 ~kind:Write ~chain:false ()
      | Vmovf (d, a) -> Array.blit (getvf a) 0 (getvf d) 0 width
      | Vmovi (d, a) -> Array.blit (getvi a) 0 (getvi d) 0 width
      | Vbroadcastf (d, a) -> Array.fill (getvf d) 0 width (getf a)
      | Vbroadcasti (d, a) -> Array.fill (getvi d) 0 width (geti a)
      | Viota d ->
          let v = getvi d in
          for l = 0 to width - 1 do v.(l) <- l done
      | Vfbin (op, d, a, b) ->
          let d = getvf d and a = getvf a and b = getvf b in
          for l = 0 to width - 1 do d.(l) <- eval_fbin op a.(l) b.(l) done
      | Vfma (d, a, b, c) ->
          let d = getvf d and a = getvf a and b = getvf b and c = getvf c in
          for l = 0 to width - 1 do d.(l) <- (a.(l) *. b.(l)) +. c.(l) done
      | Vfunop (op, d, a) ->
          let d = getvf d and a = getvf a in
          for l = 0 to width - 1 do d.(l) <- eval_funop op a.(l) done
      | Vibin (op, d, a, b) ->
          let d = getvi d and a = getvi a and b = getvi b in
          for l = 0 to width - 1 do d.(l) <- eval_ibin op a.(l) b.(l) done
      | Vfcmp (op, d, a, b) ->
          let d = getvm d and a = getvf a and b = getvf b in
          for l = 0 to width - 1 do d.(l) <- eval_fcmp op a.(l) b.(l) done
      | Vicmp (op, d, a, b) ->
          let d = getvm d and a = getvi a and b = getvi b in
          for l = 0 to width - 1 do d.(l) <- eval_icmp op a.(l) b.(l) done
      | Vselectf (d, m, a, b) ->
          let d = getvf d and m = getvm m and a = getvf a and b = getvf b in
          for l = 0 to width - 1 do d.(l) <- (if m.(l) then a.(l) else b.(l)) done
      | Vselecti (d, m, a, b) ->
          let d = getvi d and m = getvm m and a = getvi a and b = getvi b in
          for l = 0 to width - 1 do d.(l) <- (if m.(l) then a.(l) else b.(l)) done
      | Vfofi (d, a) ->
          let d = getvf d and a = getvi a in
          for l = 0 to width - 1 do d.(l) <- float_of_int a.(l) done
      | Vioff (d, a) ->
          let d = getvi d and a = getvf a in
          for l = 0 to width - 1 do d.(l) <- int_of_float a.(l) done
      | Vpermutef (d, a, pat) ->
          let d = getvf d and a = getvf a in
          let n = Array.length pat in
          for l = 0 to width - 1 do
            let s = pat.(l mod n) in
            if s < 0 || s >= width then Memory.trap "vperm lane %d out of range" s;
            scratch.(l) <- a.(s)
          done;
          Array.blit scratch 0 d 0 width
      | Vextractf (d, a, lane) ->
          let l = geti lane in
          if l < 0 || l >= width then Memory.trap "vextract lane %d out of range" l;
          setf d (getvf a).(l)
      | Vinsertf (d, lane, a) ->
          let l = geti lane in
          if l < 0 || l >= width then Memory.trap "vinsert lane %d out of range" l;
          (getvf d).(l) <- getf a
      | Vreducef (r, d, a) ->
          let a = getvf a in
          let acc = ref a.(0) in
          for l = 1 to width - 1 do
            acc :=
              (match r with
              | Rsum -> !acc +. a.(l)
              | Rmin -> Float.min !acc a.(l)
              | Rmax -> Float.max !acc a.(l))
          done;
          setf d !acc
      | Vreducei (r, d, a) ->
          let a = getvi a in
          let acc = ref a.(0) in
          for l = 1 to width - 1 do
            acc :=
              (match r with
              | Rsum -> !acc + a.(l)
              | Rmin -> min !acc a.(l)
              | Rmax -> max !acc a.(l))
          done;
          seti d !acc
      | Mconst (d, v) -> Array.fill (getvm d) 0 width v
      | Mpattern (d, pat) ->
          let d = getvm d in
          let n = Array.length pat in
          for l = 0 to width - 1 do d.(l) <- pat.(l mod n) done
      | Mfirst (d, n) ->
          let d = getvm d and n = geti n in
          for l = 0 to width - 1 do d.(l) <- l < n done
      | Mnot (d, a) ->
          let d = getvm d and a = getvm a in
          for l = 0 to width - 1 do d.(l) <- not a.(l) done
      | Mand (d, a, b) ->
          let d = getvm d and a = getvm a and b = getvm b in
          for l = 0 to width - 1 do d.(l) <- a.(l) && b.(l) done
      | Mor (d, a, b) ->
          let d = getvm d and a = getvm a and b = getvm b in
          for l = 0 to width - 1 do d.(l) <- a.(l) || b.(l) done
      | Many (d, a) -> seti d (if Array.exists Fun.id (getvm a) then 1 else 0)
      | Mall (d, a) -> seti d (if Array.for_all Fun.id (getvm a) then 1 else 0)
      | Mcount (d, a) ->
          seti d (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 (getvm a))
      | Vloadf { dst; buf; idx; mask } ->
          emit_lanes mask;
          let base = geti idx in
          let d = getvf dst in
          let any = ref false in
          for l = 0 to width - 1 do
            if lane_active mask l then begin
              d.(l) <- Memory.get_f mem buf (base + l);
              any := true
            end
          done;
          if !any then emit ~buf ~idx:base ~bytes:(width * 4) ~kind:Read ~chain:false ()
      | Vloadi { dst; buf; idx; mask } ->
          emit_lanes mask;
          let base = geti idx in
          let d = getvi dst in
          let any = ref false in
          for l = 0 to width - 1 do
            if lane_active mask l then begin
              d.(l) <- Memory.get_i mem buf (base + l);
              any := true
            end
          done;
          if !any then emit ~buf ~idx:base ~bytes:(width * 4) ~kind:Read ~chain:false ()
      | Vloadf_strided { dst; buf; idx; stride } ->
          let base = geti idx and s = geti stride in
          let d = getvf dst in
          for l = 0 to width - 1 do
            let i = base + (l * s) in
            d.(l) <- Memory.get_f mem buf i;
            emit ~buf ~idx:i ~bytes:4 ~kind:Read ~chain:false ()
          done
      | Vgatherf { dst; buf; idx; mask; chain } ->
          emit_lanes mask;
          let d = getvf dst and ix = getvi idx in
          for l = 0 to width - 1 do
            if lane_active mask l then begin
              d.(l) <- Memory.get_f mem buf ix.(l);
              emit ~buf ~idx:ix.(l) ~bytes:4 ~kind:Read ~chain ()
            end
          done
      | Vgatheri { dst; buf; idx; mask; chain } ->
          emit_lanes mask;
          let d = getvi dst and ix = getvi idx in
          for l = 0 to width - 1 do
            if lane_active mask l then begin
              d.(l) <- Memory.get_i mem buf ix.(l);
              emit ~buf ~idx:ix.(l) ~bytes:4 ~kind:Read ~chain ()
            end
          done
      | Vstoref { buf; idx; src; mask } ->
          emit_lanes mask;
          let base = geti idx in
          let s = getvf src in
          let any = ref false in
          for l = 0 to width - 1 do
            if lane_active mask l then begin
              Memory.set_f mem buf (base + l) s.(l);
              any := true
            end
          done;
          if !any then emit ~buf ~idx:base ~bytes:(width * 4) ~kind:Write ~chain:false ()
      | Vstorei { buf; idx; src; mask } ->
          emit_lanes mask;
          let base = geti idx in
          let s = getvi src in
          let any = ref false in
          for l = 0 to width - 1 do
            if lane_active mask l then begin
              Memory.set_i mem buf (base + l) s.(l);
              any := true
            end
          done;
          if !any then emit ~buf ~idx:base ~bytes:(width * 4) ~kind:Write ~chain:false ()
      | Vstoref_nt { buf; idx; src } ->
          let base = geti idx in
          let s = getvf src in
          for l = 0 to width - 1 do
            Memory.set_f mem buf (base + l) s.(l)
          done;
          emit ~nt:true ~buf ~idx:base ~bytes:(width * 4) ~kind:Write ~chain:false ()
      | Vstoref_strided { buf; idx; stride; src } ->
          let base = geti idx and st' = geti stride in
          let s = getvf src in
          for l = 0 to width - 1 do
            let i = base + (l * st') in
            Memory.set_f mem buf i s.(l);
            emit ~buf ~idx:i ~bytes:4 ~kind:Write ~chain:false ()
          done
      | Vscatterf { buf; idx; src; mask } ->
          emit_lanes mask;
          let ix = getvi idx and s = getvf src in
          for l = 0 to width - 1 do
            if lane_active mask l then begin
              Memory.set_f mem buf ix.(l) s.(l);
              emit ~buf ~idx:ix.(l) ~bytes:4 ~kind:Write ~chain:false ()
            end
          done
      | Vscatteri { buf; idx; src; mask } ->
          emit_lanes mask;
          let ix = getvi idx and s = getvi src in
          for l = 0 to width - 1 do
            if lane_active mask l then begin
              Memory.set_i mem buf ix.(l) s.(l);
              emit ~buf ~idx:ix.(l) ~bytes:4 ~kind:Write ~chain:false ()
            end
          done
    in
    let rec exec_block b = List.iter exec_stmt b
    and exec_stmt = function
      | Isa.I i -> exec_instr i
      | Isa.For { idx; lo; hi; step; body } ->
          let lo = geti lo and hi = geti hi and step = geti step in
          if step <= 0 then Memory.trap "for loop with non-positive step %d" step;
          let i = ref lo in
          while !i < hi do
            seti idx !i;
            (* loop bookkeeping: induction update + compare, and the branch *)
            count Salu 1;
            count Branch 1;
            exec_block body;
            i := !i + step
          done
      | Isa.While { cond_block; cond; body } ->
          let continue = ref true in
          while !continue do
            exec_block cond_block;
            count Branch 1;
            if geti cond <> 0 then exec_block body else continue := false
          done
      | Isa.If { cond; then_; else_ } ->
          count Branch 1;
          if geti cond <> 0 then exec_block then_ else exec_block else_
      | Isa.Region { label; body } ->
          (match trace with
          | Some f -> f (Trace.Enter { thread; scope = Loop label })
          | None -> ());
          exec_block body;
          (match trace with
          | Some f -> f (Trace.Exit { thread; scope = Loop label })
          | None -> ())
    in
    exec_block block
  in

  let init_thread tid =
    let st = states.(tid) in
    let (Isa.Si t) = Isa.thread_id_reg in
    let (Isa.Si n) = Isa.num_threads_reg in
    let (Isa.Si w) = Isa.vector_width_reg in
    st.si.(t) <- tid;
    st.si.(n) <- n_threads;
    st.si.(w) <- width
  in
  List.iteri
    (fun phase_idx phase ->
      (match tracker with
      | Some rt ->
          Hashtbl.reset rt.writes;
          Hashtbl.reset rt.reads
      | None -> ());
      let run_thread ~parallel tid block =
        init_thread tid;
        let scope = Trace.Phase { index = phase_idx; parallel } in
        (match trace with
        | Some f -> f (Trace.Enter { thread = tid; scope })
        | None -> ());
        run_block ~thread:tid states.(tid) block;
        match trace with
        | Some f -> f (Trace.Exit { thread = tid; scope })
        | None -> ()
      in
      (match phase with
      | Isa.Par block ->
          for tid = 0 to n_threads - 1 do
            run_thread ~parallel:true tid block
          done
      | Isa.Seq block -> run_thread ~parallel:false 0 block);
      match tracker with
      | Some rt when rt.races <> [] -> raise (Race (List.rev rt.races))
      | _ -> ())
    prog.phases;
  { counts; instructions = !instructions }
