(** Closure-compiled execution backend: threaded code for decoded op
    arrays.

    The per-phase compiler behind {!Interp}'s [Compiled] strategy. Where
    the [Decoded]/[Optimized] executor pays, per dynamic op, a [match]
    over the op tag, a second [match] over the instruction, register
    index field reads and five bookkeeping memory operations, this
    module compiles each flat op array once per run into chained OCaml
    closures:

    - every straight-line op becomes a pre-resolved action closure
      (operands, operator and mask slot are resolved at compile time);
    - basic blocks become superinstruction closures whose
      count/instruction/fuel bookkeeping is batched per segment — a
      segment never extends past an op that can trap or emit a memory
      event, which keeps trap messages and event prefixes bit-identical
      to the interpreter (the same fuel waiver as [Interp]'s fused loop
      edges);
    - control ops tail-call their successors through a node table, so a
      loop iteration is one compare plus a direct jump to the body's
      block closure.

    Compiled closures take the per-thread state ({!tctx}) as an argument
    instead of capturing it, so one compilation serves every simulated
    thread of a parallel phase: compile cost is per (phase, run), not
    per (phase, thread, run). Reading a [tctx] field costs the same one
    load as reading a closure-environment slot, so per-op execution
    speed is unchanged.

    Registers, memory, {!Counts} rows, totals, event streams, traces and
    traps are bit-identical to the flat interpreter by construction;
    test/test_compile.ml pins this with a four-way qcheck differential
    and seeded miscompilation mutants. When a trace sink is attached,
    compilation falls back to per-op bookkeeping closures so the
    [Trace.Op] stream keeps its exact per-op order. *)

(** The per-thread execution state a compiled closure runs against: the
    thread's register file rows, its {!Counts} row, its (already
    devirtualized) memory-event hook and its id for trace/event
    attribution. One {!compile} result may be called with any number of
    distinct [tctx] values, one per simulated thread. *)
type tctx = {
  si : int array;  (** scalar int registers *)
  sf : float array;  (** scalar float registers *)
  vf : float array array;  (** vector float registers *)
  vi : int array array;  (** vector int registers *)
  vm : bool array array;  (** vector mask registers *)
  row : int array;  (** this thread's {!Counts} row *)
  thread : int;  (** thread id (trace/event attribution) *)
  emit :
    nt:bool ->
    buf:Isa.buf ->
    idx:int ->
    bytes:int ->
    kind:Event.kind ->
    chain:bool ->
    unit;
      (** memory-event hook, already devirtualized by the caller *)
}

(** The run-constant compilation context, shared by every thread: the
    memory image, loop-state slots, the shared instruction/fuel cells
    and the trace sink. Closures capture these cells directly, so the
    caller must pass the same arrays/refs the rest of the run observes.
    [scratch] and [all_true] are the interpreter's shared width-sized
    scratch rows (threads execute one after another, so sharing is
    safe). *)
type ctx = {
  mem : Memory.t;  (** shared memory image *)
  width : int;  (** SIMD width *)
  scratch : float array;  (** permute scratch row (width-sized) *)
  all_true : bool array;  (** the unmasked lane-activity row *)
  instructions : int ref;  (** shared dynamic-op total *)
  fuel : int ref;  (** shared remaining fuel *)
  prog_name : string;  (** for the fuel-trap message *)
  for_cur : int array;  (** per-loop induction value slots *)
  for_hi : int array;  (** per-loop bound slots *)
  for_step : int array;  (** per-loop step slots *)
  trace : Trace.sink option;  (** trace sink; [Some _] disables batching *)
}

val compile : ctx -> Decode.dop array -> tctx -> unit
(** [compile ctx code] compiles one phase's op array into its entry
    closure. Compilation cost is linear in the {e static} op count —
    negligible against the millions of dynamic ops a phase executes —
    and touches no observable state; only calling the returned closure
    (with one thread's {!tctx}) executes the phase. The closure may be
    called repeatedly only if the caller resets the state it captures
    and is passed in between. *)
