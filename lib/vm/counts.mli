(** Per-thread dynamic instruction counts by {!Isa.op_class}. The timing
    model prices these with per-machine issue costs; the analysis library
    derives floating-point operation totals from them. *)

type t

val create : int -> t
(** [create n_threads] with all counts zero. *)

val add : t -> thread:int -> Isa.op_class -> int -> unit
(** [add t ~thread cls n] bumps one thread's count of [cls] by [n]. *)

val thread_row : t -> thread:int -> int array
(** One thread's mutable count row, indexed by {!Isa.op_class_index} —
    the interpreter's fast dispatch loop counts directly into it, skipping
    the per-instruction class-to-index translation. Writes through the row
    are equivalent to {!add}. *)

val thread_count : t -> thread:int -> Isa.op_class -> int
(** Count of one class on one thread. *)

val total : t -> Isa.op_class -> int
(** Count of one class summed over threads. *)

val grand_total : t -> int
(** All instructions, all threads. *)

val per_thread_total : t -> thread:int -> int
(** All instructions executed by one thread. *)

val clear : t -> unit
(** Reset every count to zero, keeping the arrays — a reusable
    interpreter session zeroes its counts at each launch. *)

val copy : t -> t
(** Deep copy — a session's launch result snapshots its counts so the
    next launch's {!clear} cannot disturb a retained report. *)

val merge_into : dst:t -> t -> unit
(** Accumulate [src] into [dst] (equal thread counts required) — used when
    a measurement spans several kernel launches. *)

val pp : t Fmt.t
(** One line per non-zero class. *)
