(** An eDSL for writing programs directly against the ISA — the "Ninja
    programmer" path (hand intrinsics / assembly in the paper's terms).

    Follows the same calling convention as compiler-generated code (array
    parameters bind to same-named buffers, scalar parameters to one-element
    ["__p_<name>"] cells), so the kernel driver runs both.

    {[
      let b = Builder.create ~name:"saxpy [ninja]" in
      let x = Builder.buffer_f b "x" in
      let n_cell = Builder.param_cell_i b "n" in
      Builder.par_phase b (fun () ->
          let n = Builder.load_param_i b n_cell in
          let lo, hi = Builder.thread_range_aligned b ~n in
          Builder.for_ b ~lo ~hi ~step:Isa.vector_width_reg (fun i -> ...));
      Builder.finish b
    ]} *)

type t
(** A program under construction (mutable). *)

val create : name:string -> t
(** Start an empty program named [name]. *)

(** {1 Buffers and parameters} *)

val buffer_f : t -> string -> Isa.buf
(** Declare a float array parameter bound by name at run time. *)

val buffer_i : t -> string -> Isa.buf
(** Declare an int array parameter bound by name at run time. *)

val param_cell_f : t -> string -> Isa.buf
(** Declare the one-element cell backing scalar parameter [name]. *)

val param_cell_i : t -> string -> Isa.buf
(** As {!param_cell_f}, for an int scalar parameter. *)

val load_param_f : t -> Isa.buf -> Isa.sf_reg
(** Emit a load of a scalar parameter (call inside the phase using it —
    registers are thread-private). *)

val load_param_i : t -> Isa.buf -> Isa.si_reg
(** As {!load_param_f}, for an int scalar parameter. *)

(** {1 Registers} *)

val si : t -> Isa.si_reg
(** Allocate a fresh scalar int register. *)

val sf : t -> Isa.sf_reg
(** Allocate a fresh scalar float register. *)

val vf : t -> Isa.vf_reg
(** Allocate a fresh vector float register. *)

val vi : t -> Isa.vi_reg
(** Allocate a fresh vector int register. *)

val vm : t -> Isa.vm_reg
(** Allocate a fresh vector mask register. *)

(** {1 Emission} *)

val emit : t -> Isa.instr -> unit
(** Append an instruction to the current phase.
    @raise Invalid_argument outside a phase. *)

val iconst : t -> int -> Isa.si_reg
(** Materialize an int constant into a fresh register. *)

val fconst : t -> float -> Isa.sf_reg
(** Materialize a float constant into a fresh register. *)

val ibin : t -> Isa.ibin -> Isa.si_reg -> Isa.si_reg -> Isa.si_reg
(** Emit a scalar int binop into a fresh destination register. *)

val fbin : t -> Isa.fbin -> Isa.sf_reg -> Isa.sf_reg -> Isa.sf_reg
(** Emit a scalar float binop into a fresh destination register. *)

val vfbin : t -> Isa.fbin -> Isa.vf_reg -> Isa.vf_reg -> Isa.vf_reg
(** Emit a vector float binop into a fresh destination register. *)

val vibin : t -> Isa.ibin -> Isa.vi_reg -> Isa.vi_reg -> Isa.vi_reg
(** Emit a vector int binop into a fresh destination register. *)

val vfma : t -> Isa.vf_reg -> Isa.vf_reg -> Isa.vf_reg -> Isa.vf_reg
(** [vfma b x y z] emits a fused [x*y + z] (see {!vmuladd} for the
    machine-portable form). *)

val vmuladd :
  t -> fma:bool -> Isa.vf_reg -> Isa.vf_reg -> Isa.vf_reg -> Isa.vf_reg
(** [x*y + z] with a fused instruction when the target has FMA, mul+add
    otherwise — Ninja code is machine-specific by definition. *)

val vfunop : t -> Isa.funop -> Isa.vf_reg -> Isa.vf_reg
(** Emit a vector float unop into a fresh destination register. *)

val vbroadcastf : t -> Isa.sf_reg -> Isa.vf_reg
(** Splat a scalar float across a fresh vector register. *)

val vbroadcasti : t -> Isa.si_reg -> Isa.vi_reg
(** Splat a scalar int across a fresh vector register. *)

(** {1 Control flow} *)

val for_ :
  t -> lo:Isa.si_reg -> hi:Isa.si_reg -> step:Isa.si_reg ->
  (Isa.si_reg -> unit) -> unit
(** Counted loop; the callback receives the induction register and emits
    the body. *)

val while_ : t -> cond:(unit -> Isa.si_reg) -> (unit -> unit) -> unit
(** [while_ b ~cond body]: [cond] emits the condition block and returns the
    register tested against zero. *)

val if_ : t -> cond:Isa.si_reg -> ?else_:(unit -> unit) -> (unit -> unit) -> unit
(** Conditional on a scalar register ([<> 0] is true). *)

val region : t -> string -> (unit -> unit) -> unit
(** [region b label body]: wrap [body] in a zero-cost {!Isa.stmt.Region}
    profiling scope — the cycle-attribution profiler charges the enclosed
    work to [label]. Free when no profiler is attached. *)

(** {1 Phases and threading} *)

val par_phase : t -> (unit -> unit) -> unit
(** A block every thread executes (barrier at the end). *)

val seq_phase : t -> (unit -> unit) -> unit
(** A block only thread 0 executes. *)

val thread_range : t -> n:Isa.si_reg -> Isa.si_reg * Isa.si_reg
(** Static chunking of [0, n) across threads (the parallelizer's scheme):
    this thread's [lo, hi). *)

val thread_range_aligned : t -> n:Isa.si_reg -> Isa.si_reg * Isa.si_reg
(** Like {!thread_range} with the chunk rounded up to a vector-width
    multiple, so no scalar tails are needed when [n] is width-aligned. *)

val finish : t -> Isa.program
(** Validate and return the program. *)
