(** Static linter ("verifier") for virtual-ISA programs.

    {!Isa.validate} only checks register ranges and buffer element types;
    this pass goes further and lints every program — compiler-generated
    and hand-scheduled Ninja alike — for:

    - register def-before-use, per register file, including the SPMD
      discipline: a register defined in a [Seq] phase holds its value on
      thread 0 only, so reading it from a [Par] phase is flagged (state
      must travel through buffers, as the compiler's spill convention does);
    - writes to the reserved registers ([Si 0]..[Si 2]);
    - mask discipline (masks are registers too: undefined-mask uses flag);
    - provable out-of-bounds accesses against declared buffer lengths,
      via a conservative interval analysis of scalar and lane indices —
      only accesses that are out of bounds on {e every} execution are
      reported, so strip-mined remainder handling never false-positives;
    - structural validity ({!Isa.validate} failures and duplicate buffer
      names are reported as issues instead of exceptions).

    The verifier is deliberately lenient where the code generator's idiom
    requires it: blending into an as-yet-undefined destination
    ([Vselectf (d, m, x, d)]) and lane insertion into a fresh register
    ([Vinsertf]) are treated as definitions, not reads. *)

type issue = { where : string; what : string }
(** One finding: [where] locates it (phase/statement path), [what] says
    what is wrong. *)

val pp_issue : issue Fmt.t
(** ["<where>: <what>"]. *)

(** One register operand of an instruction, tagged by register file. *)
type operand =
  | Osi of Isa.si_reg  (** scalar int register *)
  | Osf of Isa.sf_reg  (** scalar float register *)
  | Ovf of Isa.vf_reg  (** vector float register *)
  | Ovi of Isa.vi_reg  (** vector int register *)
  | Ovm of Isa.vm_reg  (** mask register *)

val operands : Isa.instr -> operand list * operand list
(** [(reads, writes)] of one instruction, covering every register
    operand. [Vinsertf] lists its destination among the reads as well
    (untouched lanes are preserved), so def/use analyses — the verifier's
    definedness pass and {!Optimize}'s kill/liveness sets — see the
    partial write for what it is. *)

val verify :
  ?width:int ->
  ?n_threads:int ->
  ?lengths:(string * int) list ->
  Isa.program ->
  issue list
(** [verify ~width ~n_threads ~lengths p] returns all issues found, in
    program order (deterministic). [lengths] gives element counts per
    buffer name; buffers without an entry are skipped by the bounds
    check. Defaults: [width = 4], [n_threads = 4], [lengths = []].
    Never raises. *)

val check_flat : Decode.t -> issue list
(** Structural linter for decoded (and in particular {!Optimize}d) op
    arrays: register indices within the program's declared counts, jump
    targets within [[0, len]] (len = one past the end, a legal halt),
    [Dfor]/[Dforback] ids below [n_fors], buffer indices and element
    types on the immediate load/store forms, phantom counts at least 1,
    pre-classified op classes consistent with {!Isa.classify}, and fused
    multiply-adds that actually read their product. Deterministic order;
    never raises. An unoptimized {!Decode.decode} result always checks
    clean for a {!Isa.validate}-clean program. *)
