(** Static linter ("verifier") for virtual-ISA programs.

    {!Isa.validate} only checks register ranges and buffer element types;
    this pass goes further and lints every program — compiler-generated
    and hand-scheduled Ninja alike — for:

    - register def-before-use, per register file, including the SPMD
      discipline: a register defined in a [Seq] phase holds its value on
      thread 0 only, so reading it from a [Par] phase is flagged (state
      must travel through buffers, as the compiler's spill convention does);
    - writes to the reserved registers ([Si 0]..[Si 2]);
    - mask discipline (masks are registers too: undefined-mask uses flag);
    - provable out-of-bounds accesses against declared buffer lengths,
      via a conservative interval analysis of scalar and lane indices —
      only accesses that are out of bounds on {e every} execution are
      reported, so strip-mined remainder handling never false-positives;
    - structural validity ({!Isa.validate} failures and duplicate buffer
      names are reported as issues instead of exceptions).

    The verifier is deliberately lenient where the code generator's idiom
    requires it: blending into an as-yet-undefined destination
    ([Vselectf (d, m, x, d)]) and lane insertion into a fresh register
    ([Vinsertf]) are treated as definitions, not reads. *)

type issue = { where : string; what : string }
(** One finding: [where] locates it (phase/statement path), [what] says
    what is wrong. *)

val pp_issue : issue Fmt.t
(** ["<where>: <what>"]. *)

val verify :
  ?width:int ->
  ?n_threads:int ->
  ?lengths:(string * int) list ->
  Isa.program ->
  issue list
(** [verify ~width ~n_threads ~lengths p] returns all issues found, in
    program order (deterministic). [lengths] gives element counts per
    buffer name; buffers without an entry are skipped by the bounds
    check. Defaults: [width = 4], [n_threads = 4], [lengths = []].
    Never raises. *)
