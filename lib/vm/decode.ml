(* Pre-decode pass: flatten a structured Isa.program into contiguous arrays
   of resolved operations executed by Interp's indexed dispatch loop.

   The tree walker re-traverses statement lists, re-reads register wrappers
   and re-classifies every instruction on each dynamic execution. Decoding
   does that work once per program:

   - every straight-line instruction is stored with its op class
     pre-classified;
   - structured control flow ([For]/[While]/[If]) becomes conditional
     jumps with absolute targets inside one flat [dop array] per phase;
   - [For] headers get a dense [id] into per-activation state arrays (the
     interpreter reads [lo]/[hi]/[step] once at entry, exactly like the
     tree walker), valid because a given [For] op cannot be re-entered
     before it exits (the ISA has no calls or gotos);
   - [Region] markers become paired enter/exit ops carrying their
     pre-built {!Trace.scope} value, so the profiling hooks allocate
     nothing per encounter.

   Decoding performs no semantic transformation: Interp executes a decoded
   program with bit-identical registers, memory, {!Counts} and event
   streams to the tree walker (property-tested in test/test_fastpath.ml,
   and pinned suite-wide by the experiments golden). *)

(* The constructors below Dexit are never produced by [decode]: they are
   the specialized forms {!Optimize} rewrites decoded ops into. They are
   appended after the original constructors on purpose — Marshal assigns
   variant tags in declaration order, so appending keeps the byte
   representation (and therefore [fingerprint]) of every unoptimized
   decoded program unchanged. *)
type dop =
  | Dinstr of { i : Isa.instr; cls : Isa.op_class; cls_idx : int }
  | Dfor of { idx : int; lo : int; hi : int; step : int; id : int; exit : int }
  | Dforback of { idx : int; id : int; body : int }
  | Dwhile of { cond : int; exit : int }
  | Dif of { cond : int; else_ : int }
  | Djmp of int
  | Denter of Trace.scope
  | Dexit of Trace.scope
  | Daddi of { d : int; a : int; imm : int }
  | Dmuli of { d : int; a : int; imm : int }
  | Dloadf_at of { dst : int; buf : Isa.buf; imm : int; chain : bool }
  | Dloadi_at of { dst : int; buf : Isa.buf; imm : int; chain : bool }
  | Dstoref_at of { buf : Isa.buf; imm : int; src : int }
  | Dstorei_at of { buf : Isa.buf; imm : int; src : int }
  | Dgoto of int
  | Dphantom of { cls : Isa.op_class; cls_idx : int; n : int }
  | Dsmuladd of { t : int; a : int; b : int; d : int; x : int; y : int }
  | Dvmuladd of { t : int; a : int; b : int; d : int; x : int; y : int }

type phase = { parallel : bool; code : dop array }

type t = { prog : Isa.program; phases : phase array; n_fors : int }

(* Growable op buffer with back-patching (jump targets are only known once
   the enclosed block has been decoded). *)
type buf = { mutable ops : dop array; mutable len : int }

let push b op =
  if b.len = Array.length b.ops then begin
    let bigger = Array.make (2 * Array.length b.ops) (Djmp 0) in
    Array.blit b.ops 0 bigger 0 b.len;
    b.ops <- bigger
  end;
  b.ops.(b.len) <- op;
  b.len <- b.len + 1;
  b.len - 1

let patch b i op = b.ops.(i) <- op

let decode (p : Isa.program) : t =
  let n_fors = ref 0 in
  let decode_block block =
    let b = { ops = Array.make 64 (Djmp 0); len = 0 } in
    let rec go_block blk = List.iter go_stmt blk
    and go_stmt = function
      | Isa.I i ->
          let cls = Isa.classify i in
          ignore (push b (Dinstr { i; cls; cls_idx = Isa.op_class_index cls }) : int)
      | Isa.For { idx = Si idx; lo = Si lo; hi = Si hi; step = Si step; body } ->
          let id = !n_fors in
          incr n_fors;
          let head = push b (Djmp 0) in
          go_block body;
          let back = push b (Dforback { idx; id; body = head + 1 }) in
          patch b head (Dfor { idx; lo; hi; step; id; exit = back + 1 })
      | Isa.While { cond_block; cond = Si cond; body } ->
          let cond_start = b.len in
          go_block cond_block;
          let test = push b (Djmp 0) in
          go_block body;
          let jump_back = push b (Djmp cond_start) in
          patch b test (Dwhile { cond; exit = jump_back + 1 })
      | Isa.If { cond = Si cond; then_; else_ } ->
          let branch = push b (Djmp 0) in
          go_block then_;
          if else_ = [] then patch b branch (Dif { cond; else_ = b.len })
          else begin
            let skip_else = push b (Djmp 0) in
            go_block else_;
            patch b branch (Dif { cond; else_ = skip_else + 1 });
            patch b skip_else (Djmp b.len)
          end
      | Isa.Region { label; body } ->
          let scope = Trace.Loop label in
          ignore (push b (Denter scope) : int);
          go_block body;
          ignore (push b (Dexit scope) : int)
    in
    go_block block;
    Array.sub b.ops 0 b.len
  in
  let phases =
    List.map
      (function
        | Isa.Par blk -> { parallel = true; code = decode_block blk }
        | Isa.Seq blk -> { parallel = false; code = decode_block blk })
      p.phases
    |> Array.of_list
  in
  { prog = p; phases; n_fors = !n_fors }

let size t =
  Array.fold_left (fun acc ph -> acc + Array.length ph.code) 0 t.phases

(* The decoded form is pure data (variants, ints, floats, strings,
   arrays — no closures), so a no-sharing Marshal of it is a canonical
   byte string: the content-addressed result store digests exactly what
   the interpreter will execute. Buffer declarations and register counts
   are included because they shape memory binding and validation. *)
let fingerprint t =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          (t.prog.Isa.prog_name, t.prog.Isa.buffers, t.prog.Isa.regs,
           t.n_fors, t.phases)
          [ Marshal.No_sharing ]))
