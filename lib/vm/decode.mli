(** Pre-decode pass for the interpreter's fast dispatch loop.

    Flattens a structured {!Isa.program} into one contiguous [dop array]
    per phase: operands resolved to plain register indices, structured
    control flow lowered to conditional jumps with absolute targets,
    instruction classes pre-classified and [Region] profiling scopes
    pre-built. {!Interp.run} executes the decoded form by default
    (strategy [Decoded]) with results bit-identical to the tree walker
    (strategy [Tree]); decoding itself changes no semantics. *)

(** One decoded operation. Jump targets are absolute indices into the
    enclosing phase's op array; a [pc] past the end halts the phase. *)
type dop =
  | Dinstr of { i : Isa.instr; cls : Isa.op_class; cls_idx : int }
      (** straight-line instruction with its op class pre-classified and
          [cls_idx = Isa.op_class_index cls] pre-resolved for direct
          count-row updates *)
  | Dfor of { idx : int; lo : int; hi : int; step : int; id : int; exit : int }
      (** [For] header: reads the [lo]/[hi]/[step] scalar registers once,
          stores them in the interpreter's per-[id] loop-state arrays, and
          either enters the body (next op) or jumps to [exit] *)
  | Dforback of { idx : int; id : int; body : int }
      (** [For] back edge: advance loop [id]'s induction value, write it
          to register [idx] and jump to [body], or fall through *)
  | Dwhile of { cond : int; exit : int }
      (** [While] test, placed after the condition block: falls through to
          the body when register [cond] is non-zero, else jumps to [exit] *)
  | Dif of { cond : int; else_ : int }
      (** [If] branch: falls through to the then-block when register
          [cond] is non-zero, else jumps to [else_] *)
  | Djmp of int  (** unconditional jump (loop back edges, else skips) *)
  | Denter of Trace.scope  (** profiling scope opened (pre-built value) *)
  | Dexit of Trace.scope  (** profiling scope closed *)
  | Daddi of { d : int; a : int; imm : int }
      (** optimizer-specialized scalar add with an immediate operand
          ([si.(d) <- si.(a) + imm]); counts as one [Salu] op, exactly
          like the [Ibin] it replaces. Never produced by {!decode} —
          {!Optimize} introduces it, and the constructor is appended
          after the original ones so unoptimized {!fingerprint}s are
          unchanged (Marshal tags are positional). *)
  | Dmuli of { d : int; a : int; imm : int }
      (** optimizer-specialized scalar multiply by an immediate
          ([si.(d) <- si.(a) * imm]); one [Salu] op *)
  | Dloadf_at of { dst : int; buf : Isa.buf; imm : int; chain : bool }
      (** optimizer-specialized scalar float load at a known element
          index; one [Sload] op with the identical memory event *)
  | Dloadi_at of { dst : int; buf : Isa.buf; imm : int; chain : bool }
      (** optimizer-specialized scalar int load at a known element
          index; one [Sload] op *)
  | Dstoref_at of { buf : Isa.buf; imm : int; src : int }
      (** optimizer-specialized scalar float store at a known element
          index; one [Sstore] op *)
  | Dstorei_at of { buf : Isa.buf; imm : int; src : int }
      (** optimizer-specialized scalar int store at a known element
          index; one [Sstore] op *)
  | Dgoto of int
      (** unconditional jump that still counts one [Branch] op: replaces
          a constant-condition [Dif]/[Dwhile], preserving the branch's
          instruction count (unlike [Djmp], which counts nothing) *)
  | Dphantom of { cls : Isa.op_class; cls_idx : int; n : int }
      (** bookkeeping-only stand-in for [n >= 1] dead-code-eliminated ops
          of class [cls]: bumps counts, total instructions and fuel as if
          the removed ops had executed (and emits their [Trace.Op] events
          when traced) but performs no register work *)
  | Dsmuladd of { t : int; a : int; b : int; d : int; x : int; y : int }
      (** fused scalar multiply-add pair
          ([sf.(t) <- sf.(a) *. sf.(b); sf.(d) <- sf.(x) +. sf.(y)] with
          [x = t] or [y = t]); counts two [Sfp] ops, exactly like the
          adjacent [Fbin] pair it replaces *)
  | Dvmuladd of { t : int; a : int; b : int; d : int; x : int; y : int }
      (** fused vector multiply-add pair (lane loops of the two [Vfbin]
          ops it replaces, run back to back); counts two [Vfp] ops *)

(** One decoded phase: the flat op array and whether it runs on every
    thread ([Par]) or on thread 0 only ([Seq]). *)
type phase = { parallel : bool; code : dop array }

(** A decoded program. [n_fors] is the number of [Dfor] headers across all
    phases — the size of the interpreter's loop-state arrays. *)
type t = { prog : Isa.program; phases : phase array; n_fors : int }

val decode : Isa.program -> t
(** Flatten [program]. O(static size); performs no validation (callers run
    {!Isa.validate} first, as {!Interp.run} does). *)

val size : t -> int
(** Total decoded ops across phases (for tests and diagnostics). *)

val fingerprint : t -> string
(** Hex digest of the decoded program — a canonical content address over
    exactly what the interpreter executes (flattened op arrays, buffer
    declarations, register counts). Two programs with equal fingerprints
    simulate identically on the same machine; the persistent result
    store keys on this. *)
