(* Typed profiling events for the cycle-attribution profiler.

   The interpreter emits scope (loop region / phase), per-instruction and
   lane-utilization events; the timing model decorates every memory access
   with the cache level it reached, the stall it was charged, and the DRAM
   traffic it caused. A [sink] is an optional plain closure: when absent the
   per-instruction cost is a single [match] on [None], so the profiler is a
   no-op unless requested.

   This module lives in the VM library (below both the timing model and the
   profiler) so that every layer can emit into the same stream; [level] is
   therefore a VM-local copy of the hierarchy's level type. *)

type level = L1 | L2 | LLC | Dram

let level_index = function L1 -> 0 | L2 -> 1 | LLC -> 2 | Dram -> 3
let level_name = function L1 -> "L1" | L2 -> "L2" | LLC -> "LLC" | Dram -> "DRAM"
let all_levels = [ L1; L2; LLC; Dram ]

type scope =
  | Loop of string (* a source loop (compiled code) or a Builder region *)
  | Phase of { index : int; parallel : bool }

let scope_label = function
  | Loop l -> l
  | Phase { index; parallel } ->
      Fmt.str "phase %d (%s)" index (if parallel then "par" else "seq")

type event =
  | Enter of { thread : int; scope : scope }
  | Exit of { thread : int; scope : scope }
  | Op of { thread : int; cls : Isa.op_class }
  | Lanes of { thread : int; active : int; width : int }
  | Access of {
      thread : int;
      level : level;
      covered : bool; (* missing lines were prefetch-covered *)
      stall : float; (* cycles charged to the thread by the timing model *)
      bytes : int;
      write : bool;
      dram_bytes : int; (* DRAM traffic (reads + writebacks) this access caused *)
    }
  | Drain of { dram_bytes : int }
      (* end-of-run writeback drain: dirty lines still resident, counted as
         DRAM write traffic by the timing model *)

type sink = event -> unit

let pp ppf = function
  | Enter { thread; scope } -> Fmt.pf ppf "[t%d] enter %s" thread (scope_label scope)
  | Exit { thread; scope } -> Fmt.pf ppf "[t%d] exit %s" thread (scope_label scope)
  | Op { thread; cls } -> Fmt.pf ppf "[t%d] op %s" thread (Isa.op_class_name cls)
  | Lanes { thread; active; width } -> Fmt.pf ppf "[t%d] lanes %d/%d" thread active width
  | Access { thread; level; covered; stall; bytes; write; dram_bytes } ->
      Fmt.pf ppf "[t%d] %s %s%s %dB stall %.2f dram %dB" thread
        (if write then "W" else "R")
        (level_name level)
        (if covered then " covered" else "")
        bytes stall dram_bytes
  | Drain { dram_bytes } -> Fmt.pf ppf "drain %dB" dram_bytes
