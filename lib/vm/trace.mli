(** Typed profiling events for the cycle-attribution profiler.

    {!Interp.run} emits scope, instruction and lane-utilization events;
    {!Ninja_arch.Timing.simulate} additionally decorates every memory access
    with the cache level it reached, the stall cycles it was charged, and
    the DRAM traffic it caused. Both take the sink as an option: when absent
    the instrumentation is a no-op. [Ninja_profile.Profile] aggregates the
    stream into attribution tables and a Chrome trace. *)

(** Cache-hierarchy level reached by an access. A VM-local copy of
    [Ninja_arch.Hierarchy.level] (this library sits below the
    architecture model). *)
type level = L1 | L2 | LLC | Dram

val level_index : level -> int
(** Dense index 0..3, in [L1]..[Dram] order (for accumulation arrays). *)

val level_name : level -> string
(** ["L1"], ["L2"], ["LLC"], ["DRAM"]. *)

val all_levels : level list
(** All levels, innermost first. *)

(** An attribution scope: costs are charged to the innermost scope open on
    the emitting thread. *)
type scope =
  | Loop of string
      (** a compiled source loop (labeled with its source span by the
          compiler) or a {!Builder.region} of a hand-written kernel *)
  | Phase of { index : int; parallel : bool }  (** an SPMD program phase *)

val scope_label : scope -> string
(** Stable display label, e.g. ["for(i) L3-7"] or ["phase 0 (par)"]. *)

(** One profiling event. Events of one thread are emitted in program
    order; the interpreter runs threads one after another, so the stream
    is deterministic. *)
type event =
  | Enter of { thread : int; scope : scope }  (** scope opened *)
  | Exit of { thread : int; scope : scope }  (** scope closed *)
  | Op of { thread : int; cls : Isa.op_class }
      (** one dynamic instruction (loop bookkeeping included) *)
  | Lanes of { thread : int; active : int; width : int }
      (** SIMD utilization of one masked vector memory access: [active] of
          [width] lanes enabled *)
  | Access of {
      thread : int;
      level : level;  (** deepest level the access reached *)
      covered : bool;  (** missing lines were prefetch-covered *)
      stall : float;  (** cycles the timing model charged the thread *)
      bytes : int;
      write : bool;
      dram_bytes : int;
          (** DRAM traffic (line fills + evicted writebacks) caused *)
    }  (** one priced memory access (emitted by the timing model) *)
  | Drain of { dram_bytes : int }
      (** end-of-run writeback drain of still-dirty cache lines *)

type sink = event -> unit
(** Event consumer. [None] everywhere means profiling is off. *)

val pp : event Fmt.t
(** Debug rendering of one event. *)
