(** Functional interpreter for the vector ISA.

    Executes a program against a {!Memory.t} with a configurable thread
    count and vector width, producing per-class instruction counts and
    (optionally) a memory-access event stream for the timing model.

    [Par] phases execute thread-after-thread, which equals true parallel
    execution for race-free programs; [~check_races:true] verifies that
    property at element granularity and raises {!Race} otherwise.

    Four execution strategies produce bit-identical results: [Tree] walks
    the structured program (the reference), [Decoded] — the bare-[run]
    default — runs {!Decode}'s flat op arrays with an indexed dispatch
    loop, [Optimized] additionally runs the {!Optimize} pass pipeline
    over the decoded arrays first, and [Compiled] — the simulation
    default, see {!default_strategy} — threads the optimized arrays into
    chained closures via {!Compile}. *)

exception Trap of string
(** Runtime fault: out-of-bounds access, division by zero, bad lane index,
    non-positive loop step, or fuel exhaustion. (Alias of
    [Memory.Trap].) *)

exception Race of string list
(** Raised at a phase barrier when [check_races] found conflicting accesses
    (up to 16 descriptions). *)

type result = {
  counts : Counts.t;  (** dynamic instruction counts, per thread and class *)
  instructions : int;  (** total dynamic instructions *)
}

type strategy =
  | Tree  (** walk the structured statement tree (reference walker) *)
  | Decoded
      (** run the {!Decode}d flat form with indexed dispatch (default;
          bit-identical results, several times faster) *)
  | Optimized of Optimize.config
      (** decode, then run the configured {!Optimize} passes before
          dispatch. Counts, traces, events, traps, memory and final
          registers stay bit-identical to [Decoded]; only host wall-clock
          changes *)
  | Compiled of Optimize.config
      (** decode, optimize, then compile each phase into chained
          pre-resolved closures ({!Compile}: threaded code, basic-block
          superinstructions, batched bookkeeping) — the fastest backend,
          observables still bit-identical *)

val default_strategy : unit -> strategy
(** The strategy simulations run with when none is requested explicitly:
    {!Timing.simulate} (and through it experiments, the ladder, the
    benchmarks and the serve layer) resolves an absent [?strategy] to
    this. Initially [Compiled Optimize.default]; the CLI [--backend]
    flag overrides it process-wide via {!set_default_strategy}. Bare
    {!run} keeps its own [Decoded] default. *)

val set_default_strategy : strategy -> unit
(** Set {!default_strategy}. Not thread-safe: meant for CLI startup,
    before any simulation runs. *)

val strategy_tag : strategy -> string
(** Stable identity string ("tree", "decoded", "optimized:<passes>",
    "compiled:<passes>") — disjoint per backend and per optimizer
    config, embedded into persistent-store keys. *)

val strategy_of_name : string -> strategy option
(** Parse a [--backend] name ("tree" | "decoded" | "optimized" |
    "compiled"; the latter two with the default pass pipeline). *)

(** Final architectural state of one thread: scalar int/float files and
    vector float/int/mask files (one array per register, one slot per
    lane). Exposed read-only via [on_states] so differential tests can
    compare strategies; aliasing the arrays after [run] returns is
    unspecified. *)
type thread_state = {
  si : int array;  (** scalar integer registers *)
  sf : float array;  (** scalar float registers *)
  vf : float array array;  (** vector float registers *)
  vi : int array array;  (** vector integer registers *)
  vm : bool array array;  (** vector mask registers *)
}

val session :
  ?n_threads:int ->
  ?width:int ->
  ?sink:Event.sink ->
  ?trace:Trace.sink ->
  ?fuel:int ->
  ?check_races:bool ->
  ?strategy:strategy ->
  ?decoded:Decode.t ->
  ?on_states:(thread_state array -> unit) ->
  Isa.program ->
  Memory.t ->
  unit ->
  result
(** [session program memory] validates the program and performs all
    per-program work once — decode, optimizer passes, closure
    compilation, executor selection — returning a launch thunk. Each call
    of the thunk is one kernel launch against the same memory, with
    counts, fuel and the register files freshly reset: a sequence of
    thunk calls is observably identical to the same sequence of {!run}
    calls, but multi-launch steps no longer pay the per-program costs on
    every launch. Parameters are those of {!run}. *)

val run :
  ?n_threads:int ->
  ?width:int ->
  ?sink:Event.sink ->
  ?trace:Trace.sink ->
  ?fuel:int ->
  ?check_races:bool ->
  ?strategy:strategy ->
  ?decoded:Decode.t ->
  ?on_states:(thread_state array -> unit) ->
  Isa.program ->
  Memory.t ->
  result
(** [run program memory] validates and executes the program — a
    single-launch {!session}.

    @param n_threads SPMD thread count for [Par] phases (default 1).
    @param width vector lane count (default 4).
    @param sink receives every memory access event as it happens.
    @param trace receives profiling events (scope enter/exit for phases and
      [Region]s, one {!Trace.Op} per dynamic instruction, SIMD
      lane-utilization per masked vector memory access). Adds no work when
      absent.
    @param fuel optional dynamic-instruction budget; exceeding it traps
      (useful to bound buggy [While] loops in tests).
    @param check_races track per-phase read/write sets and raise {!Race}
      on cross-thread conflicts (costly; meant for tests).
    @param strategy execution strategy (default [Decoded]; note that
      {!Timing.simulate} resolves its own absent strategy to
      {!default_strategy} instead).
    @param decoded run this pre-supplied flat form instead of decoding
      [program] ([program] must be the one it was decoded from). The
      decode/optimize side of [strategy] is bypassed, but a [Compiled _]
      strategy still selects the compiled executor for the supplied
      arrays. Meant for tests that execute hand-transformed — or
      deliberately broken — op arrays, e.g. the optimizer's and
      compiler's mutation differentials.
    @param on_states called once after the last phase with the final
      per-thread register state (index = thread id); meant for
      differential tests. *)
