(* Per-thread dynamic instruction counts, by operation class. The timing
   model prices these with per-machine issue costs; the analysis library
   derives arithmetic-operation totals from them. *)

type t = { n_threads : int; table : int array array (* [thread].[class] *) }

let create n_threads =
  { n_threads; table = Array.init n_threads (fun _ -> Array.make Isa.op_class_count 0) }

let add t ~thread cls n =
  let row = t.table.(thread) in
  let i = Isa.op_class_index cls in
  row.(i) <- row.(i) + n

let thread_row t ~thread = t.table.(thread)

let thread_count t ~thread cls = t.table.(thread).(Isa.op_class_index cls)

let total t cls =
  let i = Isa.op_class_index cls in
  Array.fold_left (fun acc row -> acc + row.(i)) 0 t.table

let grand_total t =
  Array.fold_left (fun acc row -> acc + Array.fold_left ( + ) 0 row) 0 t.table

let per_thread_total t ~thread = Array.fold_left ( + ) 0 t.table.(thread)

let clear t =
  Array.iter (fun row -> Array.fill row 0 (Array.length row) 0) t.table

let copy t =
  { n_threads = t.n_threads; table = Array.map Array.copy t.table }

let merge_into ~dst src =
  if dst.n_threads <> src.n_threads then invalid_arg "Counts.merge_into: thread counts differ";
  Array.iteri
    (fun t row -> Array.iteri (fun c n -> dst.table.(t).(c) <- dst.table.(t).(c) + n) row)
    src.table

let pp ppf t =
  List.iter
    (fun cls ->
      let n = total t cls in
      if n > 0 then Fmt.pf ppf "%-9s %d@." (Isa.op_class_name cls) n)
    Isa.all_op_classes
