(* Bytecode optimizer: a pass pipeline over {!Decode}'s flat op arrays.

   The optimizer speeds up the *host* interpreter, never the *simulated*
   machine: every pass must leave the per-class instruction counts, the
   total dynamic instruction count, the {!Trace} event stream, the memory
   event stream, traps (including their messages and positions), final
   memory contents and the final register files bit-identical to the
   unoptimized decoded program. Timing reports therefore round-trip
   unchanged by construction — the ops/s gain is wall-clock reduction at a
   fixed simulated instruction mix. Concretely:

   - a rewrite may replace an op only with one of the same op class
     ([Ibin] folds to [Iconst]: both Salu; [Fdiv]/[Fsqrt]/[Fexp]/[Flog]
     are never folded — their classes differ from [Fconst]'s Sfp);
   - dead ops become {!Decode.Dphantom} stand-ins that keep the
     bookkeeping (counts, fuel, traced ops) without the register work;
   - constant-condition branches become {!Decode.Dgoto}, which still
     counts one Branch op;
   - ops that can trap ([Idiv]/[Imod] with an unproven divisor, lane
     accesses, every memory op) are never removed.

   Each pass is independently correct on *any* valid decoded array, so
   passes compose in every order and the pipeline is idempotent —
   property-tested per pass, pairwise-shuffled and three-way against the
   Tree walker in test/test_optimize.ml. *)

type pass = Fold | Moves | Imm | Dce | Peephole

type config = { passes : pass list }

let all_passes = [ Fold; Moves; Imm; Dce; Peephole ]
let default = { passes = all_passes }
let none = { passes = [] }

let pass_name = function
  | Fold -> "fold"
  | Moves -> "moves"
  | Imm -> "imm"
  | Dce -> "dce"
  | Peephole -> "peephole"

let pass_of_name = function
  | "fold" -> Some Fold
  | "moves" -> Some Moves
  | "imm" -> Some Imm
  | "dce" -> Some Dce
  | "peephole" -> Some Peephole
  | _ -> None

let tag c = String.concat "," (List.map pass_name c.passes)

let parse_passes s =
  if s = "" || s = "none" then Ok none
  else if s = "all" then Ok default
  else
    let names = String.split_on_char ',' s |> List.map String.trim in
    let rec go acc = function
      | [] -> Ok { passes = List.rev acc }
      | n :: rest -> (
          match pass_of_name n with
          | Some p -> go (p :: acc) rest
          | None ->
              Error
                (Fmt.str "unknown pass %S (expected fold, moves, imm, dce, peephole)" n))
    in
    go [] names

type pass_stats = { ps_pass : pass; ps_stats : (string * int) list }

type report = { r_prog : string; r_ops : int; r_passes : pass_stats list }

(* ------------------------------------------------------------------ *)
(* Shared machinery                                                    *)

let dinstr i =
  let cls = Isa.classify i in
  Decode.Dinstr { i; cls; cls_idx = Isa.op_class_index cls }

(* Ops with several successors or a non-fallthrough successor: block
   boundaries for the forward const/copy walks and reset points for the
   backward liveness walk. *)
let is_control = function
  | Decode.Dfor _ | Decode.Dforback _ | Decode.Dwhile _ | Decode.Dif _
  | Decode.Djmp _ | Decode.Dgoto _ -> true
  | _ -> false

(* [t.(i)] holds when some op jumps to [i]; index [len] (halt) included. *)
let jump_targets code =
  let t = Array.make (Array.length code + 1) false in
  Array.iter
    (fun op ->
      match (op : Decode.dop) with
      | Decode.Dfor { exit; _ } | Decode.Dwhile { exit; _ } -> t.(exit) <- true
      | Decode.Dforback { body; _ } -> t.(body) <- true
      | Decode.Dif { else_; _ } -> t.(else_) <- true
      | Decode.Djmp k | Decode.Dgoto k -> t.(k) <- true
      | _ -> ())
    code;
  t

let dop_writes (op : Decode.dop) : Verify.operand list =
  match op with
  | Decode.Dinstr { i; _ } -> snd (Verify.operands i)
  | Decode.Dfor { idx; _ } | Decode.Dforback { idx; _ } ->
      [ Verify.Osi (Isa.Si idx) ]
  | Decode.Daddi { d; _ } | Decode.Dmuli { d; _ } -> [ Verify.Osi (Isa.Si d) ]
  | Decode.Dloadf_at { dst; _ } -> [ Verify.Osf (Isa.Sf dst) ]
  | Decode.Dloadi_at { dst; _ } -> [ Verify.Osi (Isa.Si dst) ]
  | Decode.Dsmuladd { t; d; _ } ->
      [ Verify.Osf (Isa.Sf t); Verify.Osf (Isa.Sf d) ]
  | Decode.Dvmuladd { t; d; _ } ->
      [ Verify.Ovf (Isa.Vf t); Verify.Ovf (Isa.Vf d) ]
  | Decode.Dwhile _ | Decode.Dif _ | Decode.Djmp _ | Decode.Dgoto _
  | Decode.Denter _ | Decode.Dexit _ | Decode.Dphantom _
  | Decode.Dstoref_at _ | Decode.Dstorei_at _ -> []

let dop_reads (op : Decode.dop) : Verify.operand list =
  match op with
  | Decode.Dinstr { i; _ } -> fst (Verify.operands i)
  | Decode.Dfor { lo; hi; step; _ } ->
      [ Verify.Osi (Isa.Si lo); Verify.Osi (Isa.Si hi); Verify.Osi (Isa.Si step) ]
  | Decode.Dwhile { cond; _ } | Decode.Dif { cond; _ } ->
      [ Verify.Osi (Isa.Si cond) ]
  | Decode.Daddi { a; _ } | Decode.Dmuli { a; _ } -> [ Verify.Osi (Isa.Si a) ]
  | Decode.Dstoref_at { src; _ } -> [ Verify.Osf (Isa.Sf src) ]
  | Decode.Dstorei_at { src; _ } -> [ Verify.Osi (Isa.Si src) ]
  | Decode.Dsmuladd { a; b; x; y; _ } ->
      [ Verify.Osf (Isa.Sf a); Verify.Osf (Isa.Sf b); Verify.Osf (Isa.Sf x);
        Verify.Osf (Isa.Sf y) ]
  | Decode.Dvmuladd { a; b; x; y; _ } ->
      [ Verify.Ovf (Isa.Vf a); Verify.Ovf (Isa.Vf b); Verify.Ovf (Isa.Vf x);
        Verify.Ovf (Isa.Vf y) ]
  | Decode.Dforback _ | Decode.Djmp _ | Decode.Dgoto _ | Decode.Denter _
  | Decode.Dexit _ | Decode.Dphantom _ | Decode.Dloadf_at _
  | Decode.Dloadi_at _ -> []

(* Evaluation helpers for the folder. These must mirror Interp's runtime
   evaluation *exactly* (Float.min, Float.equal, truncating int_of_float,
   1. /. Float.sqrt for rsqrt) — a folded constant is the value the
   interpreter would have computed. *)
let eval_ibin op a b =
  match (op : Isa.ibin) with
  | Iadd -> a + b
  | Isub -> a - b
  | Imul -> a * b
  | Idiv -> a / b (* caller guarantees b <> 0 *)
  | Imod -> a mod b
  | Iand -> a land b
  | Ior -> a lor b
  | Ixor -> a lxor b
  | Ishl -> a lsl b
  | Ishr -> a asr b
  | Imin -> if a <= b then a else b
  | Imax -> if a >= b then a else b

let eval_fbin op a b =
  match (op : Isa.fbin) with
  | Fadd -> a +. b
  | Fsub -> a -. b
  | Fmul -> a *. b
  | Fdiv -> a /. b
  | Fmin -> Float.min a b
  | Fmax -> Float.max a b

let eval_icmp op a b =
  match (op : Isa.cmp) with
  | Ceq -> a = b
  | Cne -> a <> b
  | Clt -> a < b
  | Cle -> a <= b
  | Cgt -> a > b
  | Cge -> a >= b

let eval_fcmp op a b =
  match (op : Isa.cmp) with
  | Ceq -> Float.equal a b
  | Cne -> not (Float.equal a b)
  | Clt -> a < b
  | Cle -> a <= b
  | Cgt -> a > b
  | Cge -> a >= b

(* Per-block known-constant state shared by fold and imm: scalar int and
   scalar float registers only (vector constants are not tracked). Reset
   at every jump target and after every control op. *)
type consts = { ki : (int, int) Hashtbl.t; kf : (int, float) Hashtbl.t }

let consts_create () = { ki = Hashtbl.create 16; kf = Hashtbl.create 16 }

let consts_reset c =
  Hashtbl.reset c.ki;
  Hashtbl.reset c.kf

let consts_kill c op =
  List.iter
    (function
      | Verify.Osi (Isa.Si r) -> Hashtbl.remove c.ki r
      | Verify.Osf (Isa.Sf r) -> Hashtbl.remove c.kf r
      | _ -> ())
    (dop_writes op)

(* Transfer the (already rewritten) op through the const state: record the
   constants it produces, kill everything else it writes. *)
let consts_track c (op : Decode.dop) =
  match op with
  | Decode.Dinstr { i = Isa.Iconst (Si d, n); _ } -> Hashtbl.replace c.ki d n
  | Decode.Dinstr { i = Isa.Fconst (Sf d, x); _ } -> Hashtbl.replace c.kf d x
  | Decode.Daddi { d; a; imm } -> (
      match Hashtbl.find_opt c.ki a with
      | Some va -> Hashtbl.replace c.ki d (va + imm)
      | None -> Hashtbl.remove c.ki d)
  | Decode.Dmuli { d; a; imm } -> (
      match Hashtbl.find_opt c.ki a with
      | Some va -> Hashtbl.replace c.ki d (va * imm)
      | None -> Hashtbl.remove c.ki d)
  | _ -> consts_kill c op

(* ------------------------------------------------------------------ *)
(* fold: constant folding and constant-condition branches              *)

let fold_pass _regs code =
  let folded = ref 0 and branches = ref 0 in
  let tgt = jump_targets code in
  let c = consts_create () in
  let gi (Isa.Si r) = Hashtbl.find_opt c.ki r in
  let gf (Isa.Sf r) = Hashtbl.find_opt c.kf r in
  let len = Array.length code in
  for i = 0 to len - 1 do
    if tgt.(i) then consts_reset c;
    let op = code.(i) in
    let fold_i d n =
      incr folded;
      Some (dinstr (Isa.Iconst (d, n)))
    in
    let fold_f d x =
      incr folded;
      Some (dinstr (Isa.Fconst (d, x)))
    in
    let op' =
      match op with
      | Decode.Dinstr { i = instr; _ } -> (
          match instr with
          | Isa.Imov (d, a) -> (
              match gi a with Some v -> fold_i d v | None -> None)
          | Isa.Ibin (bop, d, a, b) -> (
              match (gi a, gi b) with
              | Some va, Some vb -> (
                  match bop with
                  | (Idiv | Imod) when vb = 0 -> None (* keep the trap *)
                  | _ -> fold_i d (eval_ibin bop va vb))
              | _ -> None)
          | Isa.Icmp (cop, d, a, b) -> (
              match (gi a, gi b) with
              | Some va, Some vb ->
                  fold_i d (if eval_icmp cop va vb then 1 else 0)
              | _ -> None)
          | Isa.Fcmp (cop, d, a, b) -> (
              match (gf a, gf b) with
              | Some va, Some vb ->
                  fold_i d (if eval_fcmp cop va vb then 1 else 0)
              | _ -> None)
          | Isa.Iselect (d, cond, a, b) -> (
              match gi cond with
              | Some v -> (
                  let src = if v <> 0 then a else b in
                  match gi src with
                  | Some vs -> fold_i d vs
                  | None ->
                      incr folded;
                      Some (dinstr (Isa.Imov (d, src))))
              | None -> None)
          | Isa.Ioff (d, a) -> (
              match gf a with
              | Some v -> fold_i d (int_of_float v)
              | None -> None)
          | Isa.Fmov (d, a) -> (
              match gf a with Some v -> fold_f d v | None -> None)
          | Isa.Fbin (bop, d, a, b) when bop <> Isa.Fdiv -> (
              (* Fdiv is Sdivsqrt, not Sfp: folding it to Fconst would
                 change the instruction mix *)
              match (gf a, gf b) with
              | Some va, Some vb -> fold_f d (eval_fbin bop va vb)
              | _ -> None)
          | Isa.Fma (d, a, b, e) -> (
              match (gf a, gf b, gf e) with
              | Some va, Some vb, Some ve -> fold_f d ((va *. vb) +. ve)
              | _ -> None)
          | Isa.Funop (uop, d, a) -> (
              match uop with
              | Fneg | Fabs | Ffloor | Frsqrt -> (
                  match gf a with
                  | Some v ->
                      fold_f d
                        (match uop with
                        | Fneg -> -.v
                        | Fabs -> Float.abs v
                        | Ffloor -> Float.floor v
                        | _ -> 1. /. Float.sqrt v)
                  | None -> None)
              | Fsqrt | Fexp | Flog -> None (* Sdivsqrt/Smath class *))
          | Isa.Fselect (d, cond, a, b) -> (
              match gi cond with
              | Some v -> (
                  let src = if v <> 0 then a else b in
                  match gf src with
                  | Some vs -> fold_f d vs
                  | None ->
                      incr folded;
                      Some (dinstr (Isa.Fmov (d, src))))
              | None -> None)
          | Isa.Fofi (d, a) -> (
              match gi a with
              | Some v -> fold_f d (float_of_int v)
              | None -> None)
          | _ -> None)
      | Decode.Daddi { d; a; imm } -> (
          match Hashtbl.find_opt c.ki a with
          | Some va -> fold_i (Isa.Si d) (va + imm)
          | None -> None)
      | Decode.Dmuli { d; a; imm } -> (
          match Hashtbl.find_opt c.ki a with
          | Some va -> fold_i (Isa.Si d) (va * imm)
          | None -> None)
      | Decode.Dif { cond; else_ } -> (
          match Hashtbl.find_opt c.ki cond with
          | Some v ->
              incr branches;
              Some (Decode.Dgoto (if v <> 0 then i + 1 else else_))
          | None -> None)
      | Decode.Dwhile { cond; exit } -> (
          match Hashtbl.find_opt c.ki cond with
          | Some v ->
              incr branches;
              Some (Decode.Dgoto (if v <> 0 then i + 1 else exit))
          | None -> None)
      | _ -> None
    in
    (match op' with Some o -> code.(i) <- o | None -> ());
    let cur = code.(i) in
    consts_track c cur;
    if is_control cur then consts_reset c
  done;
  [ ("folded", !folded); ("branches", !branches) ]

(* ------------------------------------------------------------------ *)
(* moves: copy propagation (operand renaming only)                     *)

(* Rewrites *reads* of a register known to be a copy to read the copy's
   source instead — register contents are never changed, so every
   observable is trivially preserved. A read is never rewritten into a
   register the same op writes: per-lane vector execution and the
   post-write event emission of gathers make fresh intra-op aliasing
   observable, so we simply never introduce any. *)
let moves_pass _regs code =
  let rewritten = ref 0 in
  let tgt = jump_targets code in
  let mi = Hashtbl.create 8 and mf = Hashtbl.create 8 in
  let mvf = Hashtbl.create 8 and mvi = Hashtbl.create 8 in
  let reset () =
    Hashtbl.reset mi; Hashtbl.reset mf; Hashtbl.reset mvf; Hashtbl.reset mvi
  in
  let kill tbl r =
    Hashtbl.remove tbl r;
    let stale = Hashtbl.fold (fun k v acc -> if v = r then k :: acc else acc) tbl [] in
    List.iter (Hashtbl.remove tbl) stale
  in
  let kill_op op =
    List.iter
      (function
        | Verify.Osi (Isa.Si r) -> kill mi r
        | Verify.Osf (Isa.Sf r) -> kill mf r
        | Verify.Ovf (Isa.Vf r) -> kill mvf r
        | Verify.Ovi (Isa.Vi r) -> kill mvi r
        | Verify.Ovm _ -> ())
      (dop_writes op)
  in
  let len = Array.length code in
  for i = 0 to len - 1 do
    if tgt.(i) then reset ();
    let op = code.(i) in
    let writes = dop_writes op in
    let written_si r =
      List.exists (function Verify.Osi (Isa.Si w) -> w = r | _ -> false) writes
    in
    let written_sf r =
      List.exists (function Verify.Osf (Isa.Sf w) -> w = r | _ -> false) writes
    in
    let written_vf r =
      List.exists (function Verify.Ovf (Isa.Vf w) -> w = r | _ -> false) writes
    in
    let written_vi r =
      List.exists (function Verify.Ovi (Isa.Vi w) -> w = r | _ -> false) writes
    in
    let sub tbl written r =
      match Hashtbl.find_opt tbl r with
      | Some r' when not (written r') ->
          incr rewritten;
          r'
      | _ -> r
    in
    let rsi (Isa.Si r) = Isa.Si (sub mi written_si r) in
    let rsf (Isa.Sf r) = Isa.Sf (sub mf written_sf r) in
    let rvf (Isa.Vf r) = Isa.Vf (sub mvf written_vf r) in
    let rvi (Isa.Vi r) = Isa.Vi (sub mvi written_vi r) in
    let subst (instr : Isa.instr) : Isa.instr =
      match instr with
      | Iconst _ | Fconst _ | Viota _ | Mconst _ | Mpattern _ | Mnot _
      | Mand _ | Mor _ | Many _ | Mall _ | Mcount _ -> instr
      | Imov (d, a) -> Imov (d, rsi a)
      | Fmov (d, a) -> Fmov (d, rsf a)
      | Ibin (op, d, a, b) -> Ibin (op, d, rsi a, rsi b)
      | Fbin (op, d, a, b) -> Fbin (op, d, rsf a, rsf b)
      | Fma (d, a, b, c) -> Fma (d, rsf a, rsf b, rsf c)
      | Funop (op, d, a) -> Funop (op, d, rsf a)
      | Icmp (op, d, a, b) -> Icmp (op, d, rsi a, rsi b)
      | Fcmp (op, d, a, b) -> Fcmp (op, d, rsf a, rsf b)
      | Iselect (d, c, a, b) -> Iselect (d, rsi c, rsi a, rsi b)
      | Fselect (d, c, a, b) -> Fselect (d, rsi c, rsf a, rsf b)
      | Fofi (d, a) -> Fofi (d, rsi a)
      | Ioff (d, a) -> Ioff (d, rsf a)
      | Loadf l -> Loadf { l with idx = rsi l.idx }
      | Loadi l -> Loadi { l with idx = rsi l.idx }
      | Storef s -> Storef { s with idx = rsi s.idx; src = rsf s.src }
      | Storei s -> Storei { s with idx = rsi s.idx; src = rsi s.src }
      | Vmovf (d, a) -> Vmovf (d, rvf a)
      | Vmovi (d, a) -> Vmovi (d, rvi a)
      | Vbroadcastf (d, a) -> Vbroadcastf (d, rsf a)
      | Vbroadcasti (d, a) -> Vbroadcasti (d, rsi a)
      | Vfbin (op, d, a, b) -> Vfbin (op, d, rvf a, rvf b)
      | Vfma (d, a, b, c) -> Vfma (d, rvf a, rvf b, rvf c)
      | Vfunop (op, d, a) -> Vfunop (op, d, rvf a)
      | Vibin (op, d, a, b) -> Vibin (op, d, rvi a, rvi b)
      | Vfcmp (op, d, a, b) -> Vfcmp (op, d, rvf a, rvf b)
      | Vicmp (op, d, a, b) -> Vicmp (op, d, rvi a, rvi b)
      | Vselectf (d, m, a, b) -> Vselectf (d, m, rvf a, rvf b)
      | Vselecti (d, m, a, b) -> Vselecti (d, m, rvi a, rvi b)
      | Vfofi (d, a) -> Vfofi (d, rvi a)
      | Vioff (d, a) -> Vioff (d, rvf a)
      | Vpermutef (d, a, pat) -> Vpermutef (d, rvf a, pat)
      | Vextractf (d, a, l) -> Vextractf (d, rvf a, rsi l)
      | Vinsertf (d, l, a) -> Vinsertf (d, rsi l, rsf a) (* d is read+write *)
      | Vreducef (r, d, a) -> Vreducef (r, d, rvf a)
      | Vreducei (r, d, a) -> Vreducei (r, d, rvi a)
      | Mfirst (d, n) -> Mfirst (d, rsi n)
      | Vloadf l -> Vloadf { l with idx = rsi l.idx }
      | Vloadi l -> Vloadi { l with idx = rsi l.idx }
      | Vloadf_strided l ->
          Vloadf_strided { l with idx = rsi l.idx; stride = rsi l.stride }
      | Vgatherf g -> Vgatherf { g with idx = rvi g.idx }
      | Vgatheri g -> Vgatheri { g with idx = rvi g.idx }
      | Vstoref s -> Vstoref { s with idx = rsi s.idx; src = rvf s.src }
      | Vstoref_nt s -> Vstoref_nt { s with idx = rsi s.idx; src = rvf s.src }
      | Vstorei s -> Vstorei { s with idx = rsi s.idx; src = rvi s.src }
      | Vstoref_strided s ->
          Vstoref_strided
            { s with idx = rsi s.idx; stride = rsi s.stride; src = rvf s.src }
      | Vscatterf s -> Vscatterf { s with idx = rvi s.idx; src = rvf s.src }
      | Vscatteri s -> Vscatteri { s with idx = rvi s.idx; src = rvi s.src }
    in
    let op' =
      match op with
      | Decode.Dinstr { i = instr; cls; cls_idx } ->
          Decode.Dinstr { i = subst instr; cls; cls_idx }
      | Decode.Dfor f ->
          let (Isa.Si lo) = rsi (Isa.Si f.lo) in
          let (Isa.Si hi) = rsi (Isa.Si f.hi) in
          let (Isa.Si step) = rsi (Isa.Si f.step) in
          Decode.Dfor { f with lo; hi; step }
      | Decode.Dwhile w ->
          let (Isa.Si cond) = rsi (Isa.Si w.cond) in
          Decode.Dwhile { w with cond }
      | Decode.Dif b ->
          let (Isa.Si cond) = rsi (Isa.Si b.cond) in
          Decode.Dif { b with cond }
      | Decode.Daddi r ->
          let (Isa.Si a) = rsi (Isa.Si r.a) in
          Decode.Daddi { r with a }
      | Decode.Dmuli r ->
          let (Isa.Si a) = rsi (Isa.Si r.a) in
          Decode.Dmuli { r with a }
      | Decode.Dstoref_at s ->
          let (Isa.Sf src) = rsf (Isa.Sf s.src) in
          Decode.Dstoref_at { s with src }
      | Decode.Dstorei_at s ->
          let (Isa.Si src) = rsi (Isa.Si s.src) in
          Decode.Dstorei_at { s with src }
      | _ -> op
    in
    code.(i) <- op';
    (match op' with
    | Decode.Dinstr { i = Isa.Imov (Si d, Si a); _ } ->
        let root = Option.value (Hashtbl.find_opt mi a) ~default:a in
        kill mi d;
        if root <> d then Hashtbl.replace mi d root
    | Decode.Dinstr { i = Isa.Fmov (Sf d, Sf a); _ } ->
        let root = Option.value (Hashtbl.find_opt mf a) ~default:a in
        kill mf d;
        if root <> d then Hashtbl.replace mf d root
    | Decode.Dinstr { i = Isa.Vmovf (Vf d, Vf a); _ } ->
        let root = Option.value (Hashtbl.find_opt mvf a) ~default:a in
        kill mvf d;
        if root <> d then Hashtbl.replace mvf d root
    | Decode.Dinstr { i = Isa.Vmovi (Vi d, Vi a); _ } ->
        let root = Option.value (Hashtbl.find_opt mvi a) ~default:a in
        kill mvi d;
        if root <> d then Hashtbl.replace mvi d root
    | _ -> kill_op op');
    if is_control op' then reset ()
  done;
  [ ("rewritten", !rewritten) ]

(* ------------------------------------------------------------------ *)
(* imm: immediate-operand specialization (ropAddI-style op forms)      *)

let imm_pass _regs code =
  let specialized = ref 0 in
  let tgt = jump_targets code in
  let c = consts_create () in
  let ki r = Hashtbl.find_opt c.ki r in
  let len = Array.length code in
  for i = 0 to len - 1 do
    if tgt.(i) then consts_reset c;
    let op = code.(i) in
    let spec o =
      incr specialized;
      Some o
    in
    let op' =
      match op with
      | Decode.Dinstr { i = Isa.Ibin (bop, Si d, Si a, Si b); _ } -> (
          match (bop, ki a, ki b) with
          | _, Some _, Some _ -> None (* fully constant: fold's job *)
          | Isa.Iadd, None, Some vb -> spec (Decode.Daddi { d; a; imm = vb })
          | Isa.Iadd, Some va, None -> spec (Decode.Daddi { d; a = b; imm = va })
          | Isa.Isub, None, Some vb -> spec (Decode.Daddi { d; a; imm = -vb })
          | Isa.Imul, None, Some vb -> spec (Decode.Dmuli { d; a; imm = vb })
          | Isa.Imul, Some va, None -> spec (Decode.Dmuli { d; a = b; imm = va })
          | _ -> None)
      | Decode.Dinstr { i = Isa.Loadf { dst = Sf dst; buf; idx = Si idx; chain }; _ }
        -> (
          match ki idx with
          | Some v when v >= 0 -> spec (Decode.Dloadf_at { dst; buf; imm = v; chain })
          | _ -> None)
      | Decode.Dinstr { i = Isa.Loadi { dst = Si dst; buf; idx = Si idx; chain }; _ }
        -> (
          match ki idx with
          | Some v when v >= 0 -> spec (Decode.Dloadi_at { dst; buf; imm = v; chain })
          | _ -> None)
      | Decode.Dinstr { i = Isa.Storef { buf; idx = Si idx; src = Sf src }; _ } -> (
          match ki idx with
          | Some v when v >= 0 -> spec (Decode.Dstoref_at { buf; imm = v; src })
          | _ -> None)
      | Decode.Dinstr { i = Isa.Storei { buf; idx = Si idx; src = Si src }; _ } -> (
          match ki idx with
          | Some v when v >= 0 -> spec (Decode.Dstorei_at { buf; imm = v; src })
          | _ -> None)
      | _ -> None
    in
    (match op' with Some o -> code.(i) <- o | None -> ());
    let cur = code.(i) in
    consts_track c cur;
    if is_control cur then consts_reset c
  done;
  [ ("specialized", !specialized) ]

(* ------------------------------------------------------------------ *)
(* dce: dead defs -> phantoms, unreachable ops, phantom coalescing     *)

(* Pure single-write register ops that can never trap and touch no
   memory: the only ops a dead def may remove. [Idiv]/[Imod] (divisor),
   lane ops and every memory access stay. *)
let dce_candidate (i : Isa.instr) =
  match i with
  | Iconst _ | Fconst _ | Imov _ | Fmov _ | Fbin _ | Fma _ | Funop _
  | Icmp _ | Fcmp _ | Iselect _ | Fselect _ | Fofi _ | Ioff _
  | Vmovf _ | Vmovi _ | Vbroadcastf _ | Vbroadcasti _ | Viota _ | Vfbin _
  | Vfma _ | Vfunop _ | Vfcmp _ | Vicmp _ | Vselectf _ | Vselecti _
  | Vfofi _ | Vioff _ | Vreducef _ | Vreducei _
  | Mconst _ | Mpattern _ | Mfirst _ | Mnot _ | Mand _ | Mor _ | Many _
  | Mall _ | Mcount _ -> true
  | Ibin (op, _, _, _) | Vibin (op, _, _, _) -> (
      match op with Idiv | Imod -> false | _ -> true)
  | Vpermutef _ | Vextractf _ | Vinsertf _ (* lane traps / partial write *)
  | Loadf _ | Loadi _ | Storef _ | Storei _ | Vloadf _ | Vloadi _
  | Vloadf_strided _ | Vgatherf _ | Vgatheri _ | Vstoref _ | Vstoref_nt _
  | Vstorei _ | Vstoref_strided _ | Vscatterf _ | Vscatteri _ -> false

(* Writes that preserve part of the destination's prior contents (masked
   lanes, untouched lanes of a single-lane insert): the old value flows
   through the op, so backward liveness must treat the write as a read
   and never as a kill. *)
let dop_partial_write (op : Decode.dop) =
  match op with
  | Decode.Dinstr { i; _ } -> (
      match i with
      | Isa.Vinsertf _ -> true
      | Isa.Vloadf { mask = Some _; _ } | Isa.Vloadi { mask = Some _; _ } -> true
      | Isa.Vgatherf { mask = Some _; _ } | Isa.Vgatheri { mask = Some _; _ } ->
          true
      | _ -> false)
  | _ -> false

let dce_pass (regs : Isa.reg_counts) code =
  let dead = ref 0 and unreachable = ref 0 and coalesced = ref 0 in
  let len = Array.length code in
  (* 1. ops unreachable from pc 0 (constant-folded branches leave some):
     neutralize to Djmp so later passes and the flat checker see a plain
     op. Already-Djmp slots are left alone (keeps the pass idempotent). *)
  let reach = Array.make (len + 1) false in
  let stack = ref [ 0 ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | i :: rest ->
        stack := rest;
        if i <= len && not reach.(i) then begin
          reach.(i) <- true;
          if i < len then
            let succs =
              match code.(i) with
              | Decode.Dfor { exit; _ } | Decode.Dwhile { exit; _ } ->
                  [ i + 1; exit ]
              | Decode.Dforback { body; _ } -> [ i + 1; body ]
              | Decode.Dif { else_; _ } -> [ i + 1; else_ ]
              | Decode.Djmp t | Decode.Dgoto t -> [ t ]
              | _ -> [ i + 1 ]
            in
            stack := succs @ !stack
        end
  done;
  for i = 0 to len - 1 do
    if not reach.(i) then
      match code.(i) with
      | Decode.Djmp _ -> ()
      | _ ->
          code.(i) <- Decode.Djmp (i + 1);
          incr unreachable
  done;
  (* 2. backward in-block liveness. Every register is live at each control
     op and at the phase end (register files persist across phases and are
     observable via on_states), so a def is dead only when a later op in
     the same straight-line run overwrites it with no intervening read. *)
  let live_si = Array.make (max regs.si 1) true in
  let live_sf = Array.make (max regs.sf 1) true in
  let live_vf = Array.make (max regs.vf 1) true in
  let live_vi = Array.make (max regs.vi 1) true in
  let live_vm = Array.make (max regs.vm 1) true in
  let all_live () =
    Array.fill live_si 0 (Array.length live_si) true;
    Array.fill live_sf 0 (Array.length live_sf) true;
    Array.fill live_vf 0 (Array.length live_vf) true;
    Array.fill live_vi 0 (Array.length live_vi) true;
    Array.fill live_vm 0 (Array.length live_vm) true
  in
  let set v = function
    | Verify.Osi (Isa.Si r) -> live_si.(r) <- v
    | Verify.Osf (Isa.Sf r) -> live_sf.(r) <- v
    | Verify.Ovf (Isa.Vf r) -> live_vf.(r) <- v
    | Verify.Ovi (Isa.Vi r) -> live_vi.(r) <- v
    | Verify.Ovm (Isa.Vm r) -> live_vm.(r) <- v
  in
  let is_live = function
    | Verify.Osi (Isa.Si r) -> live_si.(r)
    | Verify.Osf (Isa.Sf r) -> live_sf.(r)
    | Verify.Ovf (Isa.Vf r) -> live_vf.(r)
    | Verify.Ovi (Isa.Vi r) -> live_vi.(r)
    | Verify.Ovm (Isa.Vm r) -> live_vm.(r)
  in
  all_live ();
  for i = len - 1 downto 0 do
    let op = code.(i) in
    if is_control op then all_live ()
    else begin
      let candidate =
        match op with
        | Decode.Dinstr { i = instr; _ } -> dce_candidate instr
        | Decode.Daddi _ | Decode.Dmuli _ -> true
        | _ -> false
      in
      let writes = dop_writes op in
      match (candidate, writes) with
      | true, [ w ] when not (is_live w) ->
          let cls =
            match op with
            | Decode.Dinstr { cls; _ } -> cls
            | _ -> Isa.Salu (* Daddi/Dmuli *)
          in
          code.(i) <-
            Decode.Dphantom { cls; cls_idx = Isa.op_class_index cls; n = 1 };
          incr dead
      | _ ->
          if dop_partial_write op then List.iter (set true) writes
          else List.iter (set false) writes;
          List.iter (set true) (dop_reads op)
    end
  done;
  (* 3. coalesce adjacent same-class phantoms not entered from elsewhere:
     one phantom carries the whole count, the vacated slots become jumps
     past the run (only the first is ever executed). *)
  let tgt = jump_targets code in
  let i = ref 0 in
  while !i < len do
    (match code.(!i) with
    | Decode.Dphantom { cls; cls_idx; n } ->
        let j = ref (!i + 1) and total = ref n in
        let continue_run () =
          !j < len
          && (not tgt.(!j))
          &&
          match code.(!j) with
          | Decode.Dphantom { cls = cls'; _ } -> cls' = cls
          | _ -> false
        in
        while continue_run () do
          (match code.(!j) with
          | Decode.Dphantom { n = n'; _ } -> total := !total + n'
          | _ -> ());
          incr j
        done;
        if !j > !i + 1 then begin
          code.(!i) <- Decode.Dphantom { cls; cls_idx; n = !total };
          for k = !i + 1 to !j - 1 do
            code.(k) <- Decode.Djmp !j
          done;
          coalesced := !coalesced + (!j - !i - 1)
        end;
        i := !j
    | _ -> incr i)
  done;
  [ ("dead", !dead); ("unreachable", !unreachable); ("coalesced", !coalesced) ]

(* ------------------------------------------------------------------ *)
(* peephole: fuse adjacent mul+add pairs                               *)

let peephole_pass _regs code =
  let fused = ref 0 in
  let tgt = jump_targets code in
  let len = Array.length code in
  for i = 0 to len - 2 do
    if not tgt.(i + 1) then
      match (code.(i), code.(i + 1)) with
      | ( Decode.Dinstr { i = Isa.Vfbin (Fmul, Vf t, Vf a, Vf b); _ },
          Decode.Dinstr { i = Isa.Vfbin (Fadd, Vf d, Vf x, Vf y); _ } )
        when x = t || y = t ->
          code.(i) <- Decode.Dvmuladd { t; a; b; d; x; y };
          code.(i + 1) <- Decode.Djmp (i + 2);
          incr fused
      | ( Decode.Dinstr { i = Isa.Fbin (Fmul, Sf t, Sf a, Sf b); _ },
          Decode.Dinstr { i = Isa.Fbin (Fadd, Sf d, Sf x, Sf y); _ } )
        when x = t || y = t ->
          code.(i) <- Decode.Dsmuladd { t; a; b; d; x; y };
          code.(i + 1) <- Decode.Djmp (i + 2);
          incr fused
      | _ -> ()
  done;
  [ ("fused", !fused) ]

(* ------------------------------------------------------------------ *)
(* Pipeline                                                            *)

let apply p =
  match p with
  | Fold -> fold_pass
  | Moves -> moves_pass
  | Imm -> imm_pass
  | Dce -> dce_pass
  | Peephole -> peephole_pass

let run_report ?(config = default) (d : Decode.t) : Decode.t * report =
  let phases =
    Array.map
      (fun (ph : Decode.phase) -> { ph with Decode.code = Array.copy ph.Decode.code })
      d.Decode.phases
  in
  let regs = d.Decode.prog.Isa.regs in
  let per_pass =
    List.map
      (fun p ->
        let stats =
          Array.fold_left
            (fun acc (ph : Decode.phase) ->
              let s = apply p regs ph.Decode.code in
              match acc with
              | None -> Some s
              | Some prev ->
                  Some (List.map2 (fun (k, a) (_, b) -> (k, a + b)) prev s))
            None phases
        in
        { ps_pass = p; ps_stats = Option.value stats ~default:[] })
      config.passes
  in
  ( { d with Decode.phases },
    { r_prog = d.Decode.prog.Isa.prog_name;
      r_ops = Decode.size d;
      r_passes = per_pass } )

let run ?config d = fst (run_report ?config d)

let total_rewrites r =
  List.fold_left
    (fun acc ps -> List.fold_left (fun a (_, n) -> a + n) acc ps.ps_stats)
    0 r.r_passes

let pp_report ppf r =
  Fmt.pf ppf "opt-report for program %s (%d ops)@." r.r_prog r.r_ops;
  List.iter
    (fun ps ->
      Fmt.pf ppf "  pass %s: %a@." (pass_name ps.ps_pass)
        Fmt.(list ~sep:(any ", ") (fun ppf (k, n) -> Fmt.pf ppf "%s %d" k n))
        ps.ps_stats)
    r.r_passes;
  Fmt.pf ppf "  total rewrites: %d@." (total_rewrites r)
