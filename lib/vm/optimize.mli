(** Bytecode optimizer: a pass pipeline over {!Decode}'s flat op arrays.

    The optimizer speeds up the {e host} interpreter, never the
    {e simulated} machine: every pass preserves the per-class instruction
    counts, the total dynamic instruction count, the {!Trace} event
    stream (order included), the memory event stream, traps (messages
    and positions), final memory contents and the final register files
    bit-for-bit against the unoptimized decoded program — so timing
    reports round-trip unchanged and the ops/s gain is pure wall-clock.
    Rewrites therefore stay within an op class ([Ibin] folds to
    [Iconst], both Salu; [Fdiv]/[Fsqrt]/[Fexp]/[Flog] are never folded),
    dead defs become count-preserving {!Decode.Dphantom}s, and
    constant-condition branches become branch-counting {!Decode.Dgoto}s.

    Each pass is independently correct on any valid decoded array, so
    passes compose in every order and the full pipeline is idempotent
    (property-tested in test/test_optimize.ml: per-pass, pairwise
    shuffles, and three-way Tree-vs-Decoded-vs-Optimized). *)

(** One optimization pass:

    - [Fold]: constant folding and propagation of scalar int/float
      constants within straight-line blocks; constant-condition
      [Dif]/[Dwhile] become [Dgoto].
    - [Moves]: copy propagation — reads of a register known to mirror
      another are renamed to the source (register contents never change).
    - [Imm]: immediate-operand specialization in the [ropAddI] style —
      [Ibin] with one known-constant operand becomes
      [Daddi]/[Dmuli]; scalar loads/stores at a known non-negative index
      become the [D*_at] forms.
    - [Dce]: defs provably overwritten before any read become
      {!Decode.Dphantom}s (adjacent same-class phantoms coalesce into
      one multi-count phantom); ops unreachable after branch folding are
      neutralized.
    - [Peephole]: adjacent scalar/vector multiply-then-dependent-add
      pairs fuse into {!Decode.Dsmuladd}/{!Decode.Dvmuladd}. *)
type pass = Fold | Moves | Imm | Dce | Peephole

type config = { passes : pass list }
(** Which passes to run, in order. A pass may appear more than once. *)

val all_passes : pass list
(** Every pass, in the canonical pipeline order
    [Fold; Moves; Imm; Dce; Peephole]. *)

val default : config
(** All passes in canonical order. *)

val none : config
(** The empty pipeline: [run ~config:none] copies the program verbatim. *)

val pass_name : pass -> string
(** Stable lowercase name ("fold", "moves", "imm", "dce", "peephole") —
    the [--passes] syntax and the opt-report label. *)

val pass_of_name : string -> pass option
(** Inverse of {!pass_name}. *)

val parse_passes : string -> (config, string) result
(** Parse a comma-separated pass list ("fold,dce"). ["all"] is
    {!default}; [""] and ["none"] are {!none}. Unknown names produce a
    human-readable [Error]. *)

val tag : config -> string
(** Canonical string form of a config ("fold,moves,imm,dce,peephole") —
    embedded into persistent-store cache keys so optimized results can
    never alias differently-optimized (or unoptimized) entries. *)

type pass_stats = { ps_pass : pass; ps_stats : (string * int) list }
(** Per-pass rewrite counters, summed across phases. Keys are fixed per
    pass (fold: "folded"/"branches"; moves: "rewritten"; imm:
    "specialized"; dce: "dead"/"unreachable"/"coalesced"; peephole:
    "fused") and reported in a deterministic order. *)

type report = {
  r_prog : string;  (** program name *)
  r_ops : int;  (** static decoded ops across phases *)
  r_passes : pass_stats list;  (** one entry per configured pass, in order *)
}

val run : ?config:config -> Decode.t -> Decode.t
(** [run d] applies the configured passes (default: {!default}) to every
    phase of [d] and returns the optimized program. [d] itself is never
    mutated (op arrays are copied first). The result executes with
    observables bit-identical to [d] and always passes
    {!Verify.check_flat} clean when [d] does. *)

val run_report : ?config:config -> Decode.t -> Decode.t * report
(** Like {!run}, also returning per-pass rewrite statistics. *)

val total_rewrites : report -> int
(** Sum of every counter in the report. *)

val pp_report : report Fmt.t
(** Render in the {!Optreport} style: a ["opt-report for program %s"]
    header followed by one indented line per pass and a total.
    Deterministic — the golden transcript byte-compares it. *)
