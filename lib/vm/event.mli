(** Memory-access events emitted by the interpreter and consumed by the
    timing model's cache hierarchy. *)

type kind = Read | Write

type t = {
  thread : int;
  addr : int;  (** modeled byte address (see {!Memory.address}) *)
  bytes : int;  (** may span several cache lines for vector accesses *)
  kind : kind;
  chain : bool;
      (** the address depended on a previous load (pointer chasing): miss
          latency cannot be hidden by memory-level parallelism *)
  nt : bool;  (** non-temporal store: bypasses the cache hierarchy *)
}

type sink = t -> unit
(** Consumer of access events (the cache hierarchy walker). *)

val pp : t Fmt.t
(** Debug rendering of one access event. *)
