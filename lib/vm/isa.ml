(* The virtual vector ISA targeted by the Cee compiler and by hand-written
   "Ninja" kernels.

   Design notes:
   - Registers are virtual (unbounded count, declared per program) and typed
     by register file: scalar int [Si], scalar float [Sf], vector float [Vf],
     vector int [Vi] (lane indices for gather/scatter), and mask [Vm].
     The wrappers exist so the compiler cannot mix register files.
   - Control flow is structured ([For]/[While]/[If]) rather than
     label-and-branch: the timing model charges branch overhead per
     iteration, and a structured form keeps both the interpreter and the
     compiler honest and testable.
   - Programs are SPMD: a [Par] phase runs the block once per thread
     (registers are thread-private, buffers shared) with an implicit barrier
     at phase end; a [Seq] phase runs on thread 0 only.
   - By convention register [Si 0] holds the thread id and [Si 1] the thread
     count; the interpreter initializes both.
   - Vector width is a property of the machine, not the program: vector
     instructions operate on however many lanes the executing machine has.
     Width-generic code uses [Si 2], initialized to the machine's width. *)

type si_reg = Si of int [@@unboxed]
type sf_reg = Sf of int [@@unboxed]
type vf_reg = Vf of int [@@unboxed]
type vi_reg = Vi of int [@@unboxed]
type vm_reg = Vm of int [@@unboxed]
type buf = Buf of int [@@unboxed]

(* Well-known registers (see convention above). *)
let thread_id_reg = Si 0
let num_threads_reg = Si 1
let vector_width_reg = Si 2
let reserved_si_regs = 3

type elt_ty = F32 | I32

type ibin =
  | Iadd | Isub | Imul | Idiv | Imod
  | Iand | Ior | Ixor | Ishl | Ishr
  | Imin | Imax

type fbin = Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax

type funop = Fneg | Fabs | Fsqrt | Frsqrt | Fexp | Flog | Ffloor

type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge

type red = Rsum | Rmin | Rmax

type instr =
  (* Scalar compute *)
  | Iconst of si_reg * int
  | Fconst of sf_reg * float
  | Imov of si_reg * si_reg
  | Fmov of sf_reg * sf_reg
  | Ibin of ibin * si_reg * si_reg * si_reg
  | Fbin of fbin * sf_reg * sf_reg * sf_reg
  | Fma of sf_reg * sf_reg * sf_reg * sf_reg (* dst = a *. b +. c *)
  | Funop of funop * sf_reg * sf_reg
  | Icmp of cmp * si_reg * si_reg * si_reg
  | Fcmp of cmp * si_reg * sf_reg * sf_reg
  | Iselect of si_reg * si_reg * si_reg * si_reg (* dst = if cond<>0 then a else b *)
  | Fselect of sf_reg * si_reg * sf_reg * sf_reg
  | Fofi of sf_reg * si_reg
  | Ioff of si_reg * sf_reg (* truncate toward zero *)
  (* Scalar memory; [chain] marks address-dependent (pointer-chasing) loads
     whose miss latency cannot be overlapped. *)
  | Loadf of { dst : sf_reg; buf : buf; idx : si_reg; chain : bool }
  | Loadi of { dst : si_reg; buf : buf; idx : si_reg; chain : bool }
  | Storef of { buf : buf; idx : si_reg; src : sf_reg }
  | Storei of { buf : buf; idx : si_reg; src : si_reg }
  (* Vector compute *)
  | Vmovf of vf_reg * vf_reg
  | Vmovi of vi_reg * vi_reg
  | Vbroadcastf of vf_reg * sf_reg
  | Vbroadcasti of vi_reg * si_reg
  | Viota of vi_reg (* lane ids 0..width-1 *)
  | Vfbin of fbin * vf_reg * vf_reg * vf_reg
  | Vfma of vf_reg * vf_reg * vf_reg * vf_reg
  | Vfunop of funop * vf_reg * vf_reg
  | Vibin of ibin * vi_reg * vi_reg * vi_reg
  | Vfcmp of cmp * vm_reg * vf_reg * vf_reg
  | Vicmp of cmp * vm_reg * vi_reg * vi_reg
  | Vselectf of vf_reg * vm_reg * vf_reg * vf_reg
  | Vselecti of vi_reg * vm_reg * vi_reg * vi_reg
  | Vfofi of vf_reg * vi_reg
  | Vioff of vi_reg * vf_reg
  | Vpermutef of vf_reg * vf_reg * int array (* dst.(l) = src.(pat.(l mod |pat|)) *)
  | Vextractf of sf_reg * vf_reg * si_reg (* dynamic lane *)
  | Vinsertf of vf_reg * si_reg * sf_reg
  | Vreducef of red * sf_reg * vf_reg
  | Vreducei of red * si_reg * vi_reg
  (* Masks *)
  | Mconst of vm_reg * bool
  | Mpattern of vm_reg * bool array (* lane l gets pat.(l mod |pat|) *)
  | Mfirst of vm_reg * si_reg (* lanes [0, n) set *)
  | Mnot of vm_reg * vm_reg
  | Mand of vm_reg * vm_reg * vm_reg
  | Mor of vm_reg * vm_reg * vm_reg
  | Many of si_reg * vm_reg
  | Mall of si_reg * vm_reg
  | Mcount of si_reg * vm_reg
  (* Vector memory. Unit-stride forms take a scalar element index; strided
     forms add a scalar stride (in elements) between lanes; gather/scatter
     take per-lane indices. Masked lanes are untouched. *)
  | Vloadf of { dst : vf_reg; buf : buf; idx : si_reg; mask : vm_reg option }
  | Vloadi of { dst : vi_reg; buf : buf; idx : si_reg; mask : vm_reg option }
  | Vloadf_strided of { dst : vf_reg; buf : buf; idx : si_reg; stride : si_reg }
  | Vgatherf of { dst : vf_reg; buf : buf; idx : vi_reg; mask : vm_reg option; chain : bool }
  | Vgatheri of { dst : vi_reg; buf : buf; idx : vi_reg; mask : vm_reg option; chain : bool }
  | Vstoref of { buf : buf; idx : si_reg; src : vf_reg; mask : vm_reg option }
  | Vstoref_nt of { buf : buf; idx : si_reg; src : vf_reg }
    (* Non-temporal (streaming) store: bypasses the cache hierarchy, so no
       write-allocate read traffic. Ninja streaming kernels use it. *)
  | Vstorei of { buf : buf; idx : si_reg; src : vi_reg; mask : vm_reg option }
  | Vstoref_strided of { buf : buf; idx : si_reg; stride : si_reg; src : vf_reg }
  | Vscatterf of { buf : buf; idx : vi_reg; src : vf_reg; mask : vm_reg option }
  | Vscatteri of { buf : buf; idx : vi_reg; src : vi_reg; mask : vm_reg option }

type block = stmt list

and stmt =
  | I of instr
  | For of { idx : si_reg; lo : si_reg; hi : si_reg; step : si_reg; body : block }
    (* [lo]/[hi]/[step] are read once at loop entry; [hi] is exclusive;
       [step] must be positive. *)
  | While of { cond_block : block; cond : si_reg; body : block }
    (* Evaluate [cond_block], loop while register [cond] <> 0. *)
  | If of { cond : si_reg; then_ : block; else_ : block }
  | Region of { label : string; body : block }
    (* Zero-cost attribution marker: executes [body], bounding a profiling
       scope named [label]. The compiler wraps every source loop in one
       (label = index variable + source span); Builder.region lets Ninja
       kernels mark theirs. Contributes no instructions, cycles or program
       size. *)

type phase =
  | Par of block (* executed by every thread; barrier at the end *)
  | Seq of block (* executed by thread 0 only *)

(* Whether a program contains any SPMD phase — what decides how many
   modeled threads a simulation launches (the tuner's candidates derive
   their thread count from the compiled program, not from a flag). *)
let phase_parallel = function Par _ -> true | Seq _ -> false

type buffer_decl = { buf_name : string; elt : elt_ty }

type reg_counts = { si : int; sf : int; vf : int; vi : int; vm : int }

type program = {
  prog_name : string;
  buffers : buffer_decl array;
  phases : phase list;
  regs : reg_counts;
}

let has_par_phase (p : program) = List.exists phase_parallel p.phases

(* ------------------------------------------------------------------ *)
(* Operation classes for the timing model.                             *)

type op_class =
  | Salu (* scalar integer ALU, moves, compares, selects, conversions *)
  | Sfp (* scalar FP add/sub/mul/fma/min/max/neg/abs/floor *)
  | Sdivsqrt (* scalar FP div, sqrt, rsqrt *)
  | Smath (* scalar exp/log *)
  | Valu
  | Vfp
  | Vdivsqrt
  | Vmath
  | Vshuf (* permutes, broadcasts, extracts, inserts, reductions *)
  | Vmask (* mask logic *)
  | Sload
  | Sstore
  | Vload (* unit-stride or strided vector access *)
  | Vstore
  | Vgather
  | Vscatter
  | Branch

let op_class_count = 17

let op_class_index = function
  | Salu -> 0 | Sfp -> 1 | Sdivsqrt -> 2 | Smath -> 3
  | Valu -> 4 | Vfp -> 5 | Vdivsqrt -> 6 | Vmath -> 7
  | Vshuf -> 8 | Vmask -> 9
  | Sload -> 10 | Sstore -> 11 | Vload -> 12 | Vstore -> 13
  | Vgather -> 14 | Vscatter -> 15 | Branch -> 16

let all_op_classes =
  [ Salu; Sfp; Sdivsqrt; Smath; Valu; Vfp; Vdivsqrt; Vmath; Vshuf; Vmask;
    Sload; Sstore; Vload; Vstore; Vgather; Vscatter; Branch ]

let op_class_name = function
  | Salu -> "salu" | Sfp -> "sfp" | Sdivsqrt -> "sdivsqrt" | Smath -> "smath"
  | Valu -> "valu" | Vfp -> "vfp" | Vdivsqrt -> "vdivsqrt" | Vmath -> "vmath"
  | Vshuf -> "vshuf" | Vmask -> "vmask"
  | Sload -> "sload" | Sstore -> "sstore" | Vload -> "vload"
  | Vstore -> "vstore" | Vgather -> "vgather" | Vscatter -> "vscatter"
  | Branch -> "branch"

let classify_funop ~vector = function
  (* [Frsqrt] is the hardware reciprocal-sqrt approximation (x86 rsqrtss):
     single-cycle class, unlike true sqrt/div. Only Ninja code and the
     fast-math compiler mode emit it. *)
  | Fneg | Fabs | Ffloor | Frsqrt -> if vector then Vfp else Sfp
  | Fsqrt -> if vector then Vdivsqrt else Sdivsqrt
  | Fexp | Flog -> if vector then Vmath else Smath

let classify_fbin ~vector = function
  | Fdiv -> if vector then Vdivsqrt else Sdivsqrt
  | Fadd | Fsub | Fmul | Fmin | Fmax -> if vector then Vfp else Sfp

let classify instr =
  match instr with
  | Iconst _ | Imov _ | Ibin _ | Icmp _ | Fcmp _ | Iselect _ | Ioff _ -> Salu
  | Fconst _ | Fmov _ | Fselect _ | Fofi _ | Fma _ -> Sfp
  | Fbin (op, _, _, _) -> classify_fbin ~vector:false op
  | Funop (op, _, _) -> classify_funop ~vector:false op
  | Loadf _ | Loadi _ -> Sload
  | Storef _ | Storei _ -> Sstore
  | Vbroadcastf _ | Vbroadcasti _ | Viota _ | Vpermutef _ | Vextractf _
  | Vinsertf _ | Vreducef _ | Vreducei _ -> Vshuf
  | Vfbin (op, _, _, _) -> classify_fbin ~vector:true op
  | Vmovf _ | Vfma _ | Vselectf _ | Vfofi _ -> Vfp
  | Vfunop (op, _, _) -> classify_funop ~vector:true op
  | Vmovi _ | Vibin _ | Vicmp _ | Vselecti _ | Vioff _ -> Valu
  | Vfcmp _ -> Vfp
  | Mconst _ | Mpattern _ | Mfirst _ | Mnot _ | Mand _ | Mor _ | Many _
  | Mall _ | Mcount _ -> Vmask
  | Vloadf _ | Vloadi _ -> Vload
  (* strided accesses have no direct instruction on the modeled machines:
     they are priced like gather/scatter (per-lane load + insert) *)
  | Vloadf_strided _ | Vgatherf _ | Vgatheri _ -> Vgather
  | Vstoref _ | Vstoref_nt _ | Vstorei _ -> Vstore
  | Vstoref_strided _ -> Vscatter
  | Vscatterf _ | Vscatteri _ -> Vscatter

let elt_size = function F32 -> 4 | I32 -> 4

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)

exception Invalid_program of string

let invalid fmt = Fmt.kstr (fun s -> raise (Invalid_program s)) fmt

let validate (p : program) =
  let check_si (Si r) = if r < 0 || r >= p.regs.si then invalid "si reg %d out of range" r in
  let check_sf (Sf r) = if r < 0 || r >= p.regs.sf then invalid "sf reg %d out of range" r in
  let check_vf (Vf r) = if r < 0 || r >= p.regs.vf then invalid "vf reg %d out of range" r in
  let check_vi (Vi r) = if r < 0 || r >= p.regs.vi then invalid "vi reg %d out of range" r in
  let check_vm (Vm r) = if r < 0 || r >= p.regs.vm then invalid "vm reg %d out of range" r in
  let check_mask = Option.iter check_vm in
  let check_buf ~want (Buf b) =
    if b < 0 || b >= Array.length p.buffers then invalid "buffer %d out of range" b;
    let got = p.buffers.(b).elt in
    if got <> want then
      invalid "buffer %s has element type %s but is accessed as %s"
        p.buffers.(b).buf_name
        (match got with F32 -> "f32" | I32 -> "i32")
        (match want with F32 -> "f32" | I32 -> "i32")
  in
  let check_instr = function
    | Iconst (d, _) -> check_si d
    | Fconst (d, _) -> check_sf d
    | Imov (d, a) -> check_si d; check_si a
    | Fmov (d, a) -> check_sf d; check_sf a
    | Ibin (_, d, a, b) -> check_si d; check_si a; check_si b
    | Fbin (_, d, a, b) -> check_sf d; check_sf a; check_sf b
    | Fma (d, a, b, c) -> check_sf d; check_sf a; check_sf b; check_sf c
    | Funop (_, d, a) -> check_sf d; check_sf a
    | Icmp (_, d, a, b) -> check_si d; check_si a; check_si b
    | Fcmp (_, d, a, b) -> check_si d; check_sf a; check_sf b
    | Iselect (d, c, a, b) -> check_si d; check_si c; check_si a; check_si b
    | Fselect (d, c, a, b) -> check_sf d; check_si c; check_sf a; check_sf b
    | Fofi (d, a) -> check_sf d; check_si a
    | Ioff (d, a) -> check_si d; check_sf a
    | Loadf { dst; buf; idx; _ } -> check_sf dst; check_buf ~want:F32 buf; check_si idx
    | Loadi { dst; buf; idx; _ } -> check_si dst; check_buf ~want:I32 buf; check_si idx
    | Storef { buf; idx; src } -> check_buf ~want:F32 buf; check_si idx; check_sf src
    | Storei { buf; idx; src } -> check_buf ~want:I32 buf; check_si idx; check_si src
    | Vmovf (d, a) -> check_vf d; check_vf a
    | Vmovi (d, a) -> check_vi d; check_vi a
    | Vbroadcastf (d, a) -> check_vf d; check_sf a
    | Vbroadcasti (d, a) -> check_vi d; check_si a
    | Viota d -> check_vi d
    | Vfbin (_, d, a, b) -> check_vf d; check_vf a; check_vf b
    | Vfma (d, a, b, c) -> check_vf d; check_vf a; check_vf b; check_vf c
    | Vfunop (_, d, a) -> check_vf d; check_vf a
    | Vibin (_, d, a, b) -> check_vi d; check_vi a; check_vi b
    | Vfcmp (_, d, a, b) -> check_vm d; check_vf a; check_vf b
    | Vicmp (_, d, a, b) -> check_vm d; check_vi a; check_vi b
    | Vselectf (d, m, a, b) -> check_vf d; check_vm m; check_vf a; check_vf b
    | Vselecti (d, m, a, b) -> check_vi d; check_vm m; check_vi a; check_vi b
    | Vfofi (d, a) -> check_vf d; check_vi a
    | Vioff (d, a) -> check_vi d; check_vf a
    | Vpermutef (d, a, pat) ->
        check_vf d; check_vf a;
        if Array.length pat = 0 then invalid "empty permutation pattern"
    | Vextractf (d, a, l) -> check_sf d; check_vf a; check_si l
    | Vinsertf (d, l, a) -> check_vf d; check_si l; check_sf a
    | Vreducef (_, d, a) -> check_sf d; check_vf a
    | Vreducei (_, d, a) -> check_si d; check_vi a
    | Mconst (d, _) -> check_vm d
    | Mpattern (d, pat) ->
        check_vm d;
        if Array.length pat = 0 then invalid "empty mask pattern" 
    | Mfirst (d, n) -> check_vm d; check_si n
    | Mnot (d, a) -> check_vm d; check_vm a
    | Mand (d, a, b) | Mor (d, a, b) -> check_vm d; check_vm a; check_vm b
    | Many (d, a) | Mall (d, a) | Mcount (d, a) -> check_si d; check_vm a
    | Vloadf { dst; buf; idx; mask } ->
        check_vf dst; check_buf ~want:F32 buf; check_si idx; check_mask mask
    | Vloadi { dst; buf; idx; mask } ->
        check_vi dst; check_buf ~want:I32 buf; check_si idx; check_mask mask
    | Vloadf_strided { dst; buf; idx; stride } ->
        check_vf dst; check_buf ~want:F32 buf; check_si idx; check_si stride
    | Vgatherf { dst; buf; idx; mask; _ } ->
        check_vf dst; check_buf ~want:F32 buf; check_vi idx; check_mask mask
    | Vgatheri { dst; buf; idx; mask; _ } ->
        check_vi dst; check_buf ~want:I32 buf; check_vi idx; check_mask mask
    | Vstoref { buf; idx; src; mask } ->
        check_buf ~want:F32 buf; check_si idx; check_vf src; check_mask mask
    | Vstoref_nt { buf; idx; src } ->
        check_buf ~want:F32 buf; check_si idx; check_vf src
    | Vstorei { buf; idx; src; mask } ->
        check_buf ~want:I32 buf; check_si idx; check_vi src; check_mask mask
    | Vstoref_strided { buf; idx; stride; src } ->
        check_buf ~want:F32 buf; check_si idx; check_si stride; check_vf src
    | Vscatterf { buf; idx; src; mask } ->
        check_buf ~want:F32 buf; check_vi idx; check_vf src; check_mask mask
    | Vscatteri { buf; idx; src; mask } ->
        check_buf ~want:I32 buf; check_vi idx; check_vi src; check_mask mask
  in
  let rec check_block b = List.iter check_stmt b
  and check_stmt = function
    | I i -> check_instr i
    | For { idx; lo; hi; step; body } ->
        check_si idx; check_si lo; check_si hi; check_si step;
        check_block body
    | While { cond_block; cond; body } ->
        check_block cond_block; check_si cond; check_block body
    | If { cond; then_; else_ } ->
        check_si cond; check_block then_; check_block else_
    | Region { body; _ } -> check_block body
  in
  if p.regs.si < reserved_si_regs then
    invalid "programs must declare at least %d scalar int registers" reserved_si_regs;
  List.iter (function Par b | Seq b -> check_block b) p.phases

(* ------------------------------------------------------------------ *)
(* Pretty-printing (assembler-style, for docs and debugging)           *)

let pp_si ppf (Si r) = Fmt.pf ppf "i%d" r
let pp_sf ppf (Sf r) = Fmt.pf ppf "f%d" r
let pp_vf ppf (Vf r) = Fmt.pf ppf "v%d" r
let pp_vi ppf (Vi r) = Fmt.pf ppf "x%d" r
let pp_vm ppf (Vm r) = Fmt.pf ppf "m%d" r

let ibin_name = function
  | Iadd -> "add" | Isub -> "sub" | Imul -> "mul" | Idiv -> "div"
  | Imod -> "mod" | Iand -> "and" | Ior -> "or" | Ixor -> "xor"
  | Ishl -> "shl" | Ishr -> "shr" | Imin -> "min" | Imax -> "max"

let fbin_name = function
  | Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"
  | Fmin -> "fmin" | Fmax -> "fmax"

let funop_name = function
  | Fneg -> "fneg" | Fabs -> "fabs" | Fsqrt -> "fsqrt" | Frsqrt -> "frsqrt"
  | Fexp -> "fexp" | Flog -> "flog" | Ffloor -> "ffloor"

let cmp_name = function
  | Ceq -> "eq" | Cne -> "ne" | Clt -> "lt" | Cle -> "le" | Cgt -> "gt"
  | Cge -> "ge"

let red_name = function Rsum -> "sum" | Rmin -> "min" | Rmax -> "max"

let pp_buf buffers ppf (Buf b) =
  if b >= 0 && b < Array.length buffers then
    Fmt.pf ppf "@%s" buffers.(b).buf_name
  else Fmt.pf ppf "@?%d" b

let pp_mask ppf = function
  | None -> ()
  | Some m -> Fmt.pf ppf " ?%a" pp_vm m

let pp_chain ppf chain = if chain then Fmt.pf ppf " !chain"

let pp_instr buffers ppf instr =
  let buf = pp_buf buffers in
  match instr with
  | Iconst (d, n) -> Fmt.pf ppf "iconst %a, %d" pp_si d n
  | Fconst (d, x) -> Fmt.pf ppf "fconst %a, %g" pp_sf d x
  | Imov (d, a) -> Fmt.pf ppf "imov %a, %a" pp_si d pp_si a
  | Fmov (d, a) -> Fmt.pf ppf "fmov %a, %a" pp_sf d pp_sf a
  | Ibin (op, d, a, b) ->
      Fmt.pf ppf "%s %a, %a, %a" (ibin_name op) pp_si d pp_si a pp_si b
  | Fbin (op, d, a, b) ->
      Fmt.pf ppf "%s %a, %a, %a" (fbin_name op) pp_sf d pp_sf a pp_sf b
  | Fma (d, a, b, c) ->
      Fmt.pf ppf "fma %a, %a, %a, %a" pp_sf d pp_sf a pp_sf b pp_sf c
  | Funop (op, d, a) -> Fmt.pf ppf "%s %a, %a" (funop_name op) pp_sf d pp_sf a
  | Icmp (c, d, a, b) ->
      Fmt.pf ppf "icmp.%s %a, %a, %a" (cmp_name c) pp_si d pp_si a pp_si b
  | Fcmp (c, d, a, b) ->
      Fmt.pf ppf "fcmp.%s %a, %a, %a" (cmp_name c) pp_si d pp_sf a pp_sf b
  | Iselect (d, c, a, b) ->
      Fmt.pf ppf "isel %a, %a, %a, %a" pp_si d pp_si c pp_si a pp_si b
  | Fselect (d, c, a, b) ->
      Fmt.pf ppf "fsel %a, %a, %a, %a" pp_sf d pp_si c pp_sf a pp_sf b
  | Fofi (d, a) -> Fmt.pf ppf "fofi %a, %a" pp_sf d pp_si a
  | Ioff (d, a) -> Fmt.pf ppf "ioff %a, %a" pp_si d pp_sf a
  | Loadf { dst; buf = b; idx; chain } ->
      Fmt.pf ppf "loadf %a, %a[%a]%a" pp_sf dst buf b pp_si idx pp_chain chain
  | Loadi { dst; buf = b; idx; chain } ->
      Fmt.pf ppf "loadi %a, %a[%a]%a" pp_si dst buf b pp_si idx pp_chain chain
  | Storef { buf = b; idx; src } ->
      Fmt.pf ppf "storef %a[%a], %a" buf b pp_si idx pp_sf src
  | Storei { buf = b; idx; src } ->
      Fmt.pf ppf "storei %a[%a], %a" buf b pp_si idx pp_si src
  | Vmovf (d, a) -> Fmt.pf ppf "vmovf %a, %a" pp_vf d pp_vf a
  | Vmovi (d, a) -> Fmt.pf ppf "vmovi %a, %a" pp_vi d pp_vi a
  | Vbroadcastf (d, a) -> Fmt.pf ppf "vbcastf %a, %a" pp_vf d pp_sf a
  | Vbroadcasti (d, a) -> Fmt.pf ppf "vbcasti %a, %a" pp_vi d pp_si a
  | Viota d -> Fmt.pf ppf "viota %a" pp_vi d
  | Vfbin (op, d, a, b) ->
      Fmt.pf ppf "v%s %a, %a, %a" (fbin_name op) pp_vf d pp_vf a pp_vf b
  | Vfma (d, a, b, c) ->
      Fmt.pf ppf "vfma %a, %a, %a, %a" pp_vf d pp_vf a pp_vf b pp_vf c
  | Vfunop (op, d, a) ->
      Fmt.pf ppf "v%s %a, %a" (funop_name op) pp_vf d pp_vf a
  | Vibin (op, d, a, b) ->
      Fmt.pf ppf "vi%s %a, %a, %a" (ibin_name op) pp_vi d pp_vi a pp_vi b
  | Vfcmp (c, d, a, b) ->
      Fmt.pf ppf "vfcmp.%s %a, %a, %a" (cmp_name c) pp_vm d pp_vf a pp_vf b
  | Vicmp (c, d, a, b) ->
      Fmt.pf ppf "vicmp.%s %a, %a, %a" (cmp_name c) pp_vm d pp_vi a pp_vi b
  | Vselectf (d, m, a, b) ->
      Fmt.pf ppf "vself %a, %a, %a, %a" pp_vf d pp_vm m pp_vf a pp_vf b
  | Vselecti (d, m, a, b) ->
      Fmt.pf ppf "vseli %a, %a, %a, %a" pp_vi d pp_vm m pp_vi a pp_vi b
  | Vfofi (d, a) -> Fmt.pf ppf "vfofi %a, %a" pp_vf d pp_vi a
  | Vioff (d, a) -> Fmt.pf ppf "vioff %a, %a" pp_vi d pp_vf a
  | Vpermutef (d, a, pat) ->
      Fmt.pf ppf "vperm %a, %a, [%a]" pp_vf d pp_vf a
        Fmt.(array ~sep:(any ";") int) pat
  | Vextractf (d, a, l) ->
      Fmt.pf ppf "vextr %a, %a[%a]" pp_sf d pp_vf a pp_si l
  | Vinsertf (d, l, a) ->
      Fmt.pf ppf "vins %a[%a], %a" pp_vf d pp_si l pp_sf a
  | Vreducef (r, d, a) ->
      Fmt.pf ppf "vred.%s %a, %a" (red_name r) pp_sf d pp_vf a
  | Vreducei (r, d, a) ->
      Fmt.pf ppf "vired.%s %a, %a" (red_name r) pp_si d pp_vi a
  | Mconst (d, v) -> Fmt.pf ppf "mconst %a, %b" pp_vm d v
  | Mpattern (d, pat) ->
      Fmt.pf ppf "mpat %a, [%a]" pp_vm d
        Fmt.(array ~sep:(any ";") (fmt "%b")) pat
  | Mfirst (d, n) -> Fmt.pf ppf "mfirst %a, %a" pp_vm d pp_si n
  | Mnot (d, a) -> Fmt.pf ppf "mnot %a, %a" pp_vm d pp_vm a
  | Mand (d, a, b) -> Fmt.pf ppf "mand %a, %a, %a" pp_vm d pp_vm a pp_vm b
  | Mor (d, a, b) -> Fmt.pf ppf "mor %a, %a, %a" pp_vm d pp_vm a pp_vm b
  | Many (d, a) -> Fmt.pf ppf "many %a, %a" pp_si d pp_vm a
  | Mall (d, a) -> Fmt.pf ppf "mall %a, %a" pp_si d pp_vm a
  | Mcount (d, a) -> Fmt.pf ppf "mcount %a, %a" pp_si d pp_vm a
  | Vloadf { dst; buf = b; idx; mask } ->
      Fmt.pf ppf "vloadf %a, %a[%a]%a" pp_vf dst buf b pp_si idx pp_mask mask
  | Vloadi { dst; buf = b; idx; mask } ->
      Fmt.pf ppf "vloadi %a, %a[%a]%a" pp_vi dst buf b pp_si idx pp_mask mask
  | Vloadf_strided { dst; buf = b; idx; stride } ->
      Fmt.pf ppf "vloadf.s %a, %a[%a:%a]" pp_vf dst buf b pp_si idx pp_si stride
  | Vgatherf { dst; buf = b; idx; mask; chain } ->
      Fmt.pf ppf "vgathf %a, %a[%a]%a%a" pp_vf dst buf b pp_vi idx pp_mask mask
        pp_chain chain
  | Vgatheri { dst; buf = b; idx; mask; chain } ->
      Fmt.pf ppf "vgathi %a, %a[%a]%a%a" pp_vi dst buf b pp_vi idx pp_mask mask
        pp_chain chain
  | Vstoref { buf = b; idx; src; mask } ->
      Fmt.pf ppf "vstoref %a[%a], %a%a" buf b pp_si idx pp_vf src pp_mask mask
  | Vstoref_nt { buf = b; idx; src } ->
      Fmt.pf ppf "vstoref.nt %a[%a], %a" buf b pp_si idx pp_vf src
  | Vstorei { buf = b; idx; src; mask } ->
      Fmt.pf ppf "vstorei %a[%a], %a%a" buf b pp_si idx pp_vi src pp_mask mask
  | Vstoref_strided { buf = b; idx; stride; src } ->
      Fmt.pf ppf "vstoref.s %a[%a:%a], %a" buf b pp_si idx pp_si stride pp_vf src
  | Vscatterf { buf = b; idx; src; mask } ->
      Fmt.pf ppf "vscatf %a[%a], %a%a" buf b pp_vi idx pp_vf src pp_mask mask
  | Vscatteri { buf = b; idx; src; mask } ->
      Fmt.pf ppf "vscati %a[%a], %a%a" buf b pp_vi idx pp_vi src pp_mask mask

let pp_program ppf (p : program) =
  let rec pp_block indent ppf b = List.iter (pp_stmt indent ppf) b
  and pp_stmt indent ppf = function
    | I i -> Fmt.pf ppf "%s%a@." indent (pp_instr p.buffers) i
    | For { idx; lo; hi; step; body } ->
        Fmt.pf ppf "%sfor %a = %a to %a step %a {@." indent pp_si idx pp_si lo
          pp_si hi pp_si step;
        pp_block (indent ^ "  ") ppf body;
        Fmt.pf ppf "%s}@." indent
    | While { cond_block; cond; body } ->
        Fmt.pf ppf "%swhile {@." indent;
        pp_block (indent ^ "  ") ppf cond_block;
        Fmt.pf ppf "%s} %a {@." indent pp_si cond;
        pp_block (indent ^ "  ") ppf body;
        Fmt.pf ppf "%s}@." indent
    | If { cond; then_; else_ } ->
        Fmt.pf ppf "%sif %a {@." indent pp_si cond;
        pp_block (indent ^ "  ") ppf then_;
        if else_ <> [] then begin
          Fmt.pf ppf "%s} else {@." indent;
          pp_block (indent ^ "  ") ppf else_
        end;
        Fmt.pf ppf "%s}@." indent
    | Region { label; body } ->
        Fmt.pf ppf "%sregion %S {@." indent label;
        pp_block (indent ^ "  ") ppf body;
        Fmt.pf ppf "%s}@." indent
  in
  Fmt.pf ppf "program %s@." p.prog_name;
  Array.iter
    (fun { buf_name; elt } ->
      Fmt.pf ppf "  buffer %s : %s@." buf_name
        (match elt with F32 -> "f32" | I32 -> "i32"))
    p.buffers;
  List.iteri
    (fun i ph ->
      match ph with
      | Par b ->
          Fmt.pf ppf "phase %d (parallel) {@." i;
          pp_block "  " ppf b;
          Fmt.pf ppf "}@."
      | Seq b ->
          Fmt.pf ppf "phase %d (sequential) {@." i;
          pp_block "  " ppf b;
          Fmt.pf ppf "}@.")
    p.phases

(* Static instruction count (program size, used as an effort proxy). *)
let static_size (p : program) =
  let rec block b = List.fold_left (fun acc s -> acc + stmt s) 0 b
  and stmt = function
    | I _ -> 1
    | For { body; _ } -> 1 + block body
    | While { cond_block; body; _ } -> 1 + block cond_block + block body
    | If { then_; else_; _ } -> 1 + block then_ + block else_
    | Region { body; _ } -> block body (* annotation only: free *)
  in
  List.fold_left (fun acc ph -> acc + match ph with Par b | Seq b -> block b) 0 p.phases
