(* Source-to-source loop transformations for the auto-tuner.

   Everything here rewrites parsed Cee into Cee, so candidates flow
   through the unchanged pipeline (typecheck, codegen, verifier,
   simulator). Applicability combines syntactic preconditions with the
   dependence engine's legality facts; anything the checks cannot prove
   is left untouched and reported as inapplicable, never guessed. *)

type t = Id | Interchange | Unroll of int

let name = function
  | Id -> "none"
  | Interchange -> "interchange"
  | Unroll f -> Fmt.str "unroll%d" f

let menu = [ Id; Interchange; Unroll 2; Unroll 4 ]

(* Same rendering as Codegen.loop_label / Deps.loop_label so tuner
   decisions line up with vec-reports, opt-reports and legality facts. *)
let loop_label (loop : Ast.for_loop) =
  Fmt.str "for(%s=%a;%s<%a)" loop.index Ast.pp_expr loop.init loop.index
    Ast.pp_expr loop.limit

(* ------------------------------------------------------------------ *)
(* Interchange of perfect 2-deep nests                                  *)

let perfect_inner (outer : Ast.for_loop) =
  match outer.body with [ Ast.For inner ] -> Some inner | _ -> None

(* Loop indices are ordinary kernel-level scalars, so either loop's
   bounds could in principle read the other index (or an array cell the
   body writes); swapping re-evaluates bounds in a different order, so
   all four bounds must be invariant: no mention of either index, no
   array reads. Dependence legality on top comes from the engine. *)
let interchange_ok (outer : Ast.for_loop) (inner : Ast.for_loop) =
  let invariant e =
    (not (Analysis.mentions outer.index e))
    && (not (Analysis.mentions inner.index e))
    && not (Analysis.has_index e)
  in
  invariant outer.init && invariant outer.limit && invariant inner.init
  && invariant inner.limit
  && (Deps.analyze_loop outer).legality.interchangeable

let rec interchange_block count (b : Ast.block) =
  List.map (interchange_stmt count) b

and interchange_stmt count (s : Ast.stmt) =
  match s with
  | Ast.For outer -> (
      match perfect_inner outer with
      | Some inner when interchange_ok outer inner ->
          incr count;
          (* pragmas were asserted about the original nesting order, so
             both loops drop them; add_parallel_pragmas re-annotates
             whatever stays provable. Deeper nests inside the moved body
             may qualify too. *)
          let body = interchange_block count inner.body in
          Ast.For
            { inner with
              pragmas = [];
              span = outer.span;
              body =
                [ Ast.For { outer with pragmas = []; span = inner.span; body } ]
            }
      | _ -> Ast.For { outer with body = interchange_block count outer.body })
  | Ast.If (c, t, e) ->
      Ast.If (c, interchange_block count t, interchange_block count e)
  | Ast.While (c, b) -> Ast.While (c, interchange_block count b)
  | Ast.Decl _ | Ast.Assign _ | Ast.Store _ -> s

(* ------------------------------------------------------------------ *)
(* Unrolling innermost loops                                            *)

(* Replicating the body [f] times keeps iterations in sequential order,
   so unrolling is semantics-preserving wherever the preconditions hold:
   the bounds are invariant (no reads of body-assigned scalars, no array
   reads), the index is not assigned in the body, and every declared
   local carries an initializer (an init-less declaration could be
   carrying a value across iterations, which per-copy renaming would
   sever). *)

let rec no_inner_for = function
  | [] -> true
  | Ast.For _ :: _ -> false
  | Ast.If (_, t, e) :: tl -> no_inner_for t && no_inner_for e && no_inner_for tl
  | Ast.While (_, b) :: tl -> no_inner_for b && no_inner_for tl
  | (Ast.Decl _ | Ast.Assign _ | Ast.Store _) :: tl -> no_inner_for tl

let rec decls_renameable = function
  | [] -> true
  | Ast.Decl (_, ty, init) :: tl ->
      init <> None && (not (Ast.is_array ty)) && decls_renameable tl
  | Ast.If (_, t, e) :: tl ->
      decls_renameable t && decls_renameable e && decls_renameable tl
  | Ast.While (_, b) :: tl -> decls_renameable b && decls_renameable tl
  | Ast.For { body; _ } :: tl -> decls_renameable body && decls_renameable tl
  | (Ast.Assign _ | Ast.Store _) :: tl -> decls_renameable tl

let unrollable (loop : Ast.for_loop) =
  let assigned = Analysis.assigned_in_block loop.body in
  let invariant e =
    (not (Analysis.has_index e))
    && Analysis.S.is_empty (Analysis.S.inter (Analysis.scalar_reads e) assigned)
  in
  no_inner_for loop.body
  && decls_renameable loop.body
  && (not (Analysis.S.mem loop.index assigned))
  && invariant loop.init && invariant loop.limit

module SM = Map.Make (String)

let rec subst_expr env (e : Ast.expr) =
  match e with
  | Ast.Var v -> ( match SM.find_opt v env with Some e' -> e' | None -> e)
  | Ast.Int_lit _ | Ast.Float_lit _ -> e
  | Ast.Index (a, i) -> Ast.Index (a, subst_expr env i)
  | Ast.Bin (op, x, y) -> Ast.Bin (op, subst_expr env x, subst_expr env y)
  | Ast.Un (op, x) -> Ast.Un (op, subst_expr env x)
  | Ast.Call (f, args) -> Ast.Call (f, List.map (subst_expr env) args)

(* One unrolled copy: declared locals renamed [name__u<k>] so the copies
   can live in a single block, the index replaced by [index + k*step].
   The environment threads left-to-right; branch-local declarations stay
   branch-local (a leak would only surface as a typecheck rejection of
   the candidate, never as wrong code). *)
let rec copy_block ~suffix env (b : Ast.block) =
  let env, rev =
    List.fold_left
      (fun (env, acc) s ->
        let env, s' = copy_stmt ~suffix env s in
        (env, s' :: acc))
      (env, []) b
  in
  (env, List.rev rev)

and copy_stmt ~suffix env (s : Ast.stmt) =
  match s with
  | Ast.Decl (v, ty, init) ->
      let v' = v ^ suffix in
      (SM.add v (Ast.Var v') env, Ast.Decl (v', ty, Option.map (subst_expr env) init))
  | Ast.Assign (v, e) ->
      let e' = subst_expr env e in
      let v' = match SM.find_opt v env with Some (Ast.Var r) -> r | _ -> v in
      (env, Ast.Assign (v', e'))
  | Ast.Store (a, i, e, sp) ->
      (env, Ast.Store (a, subst_expr env i, subst_expr env e, sp))
  | Ast.If (c, t, e) ->
      let _, t' = copy_block ~suffix env t in
      let _, e' = copy_block ~suffix env e in
      (env, Ast.If (subst_expr env c, t', e'))
  | Ast.While (c, b) ->
      let _, b' = copy_block ~suffix env b in
      (env, Ast.While (subst_expr env c, b'))
  | Ast.For _ -> (env, s) (* excluded by [no_inner_for] *)

let unroll_loop f (loop : Ast.for_loop) : Ast.stmt list =
  let m = f * loop.step in
  (* largest init + k*m not exceeding limit: truncating division keeps
     degenerate (empty) loops empty, so no extra guard is needed *)
  let main_limit =
    Ast.fold_expr
      (Ast.Bin
         ( Ast.Add,
           loop.init,
           Ast.Bin
             ( Ast.Mul,
               Ast.Bin
                 (Ast.Div, Ast.Bin (Ast.Sub, loop.limit, loop.init), Ast.Int_lit m),
               Ast.Int_lit m ) ))
  in
  let copy k =
    let env =
      if k = 0 then SM.empty
      else
        SM.singleton loop.index
          (Ast.Bin (Ast.Add, Ast.Var loop.index, Ast.Int_lit (k * loop.step)))
    in
    snd (copy_block ~suffix:(Fmt.str "__u%d" k) env loop.body)
  in
  let copies = List.concat (List.init f copy) in
  [ Ast.For { loop with pragmas = []; limit = main_limit; step = m; body = copies };
    Ast.For { loop with pragmas = []; init = main_limit } ]

let rec unroll_block f count (b : Ast.block) : Ast.block =
  List.concat_map
    (fun (s : Ast.stmt) ->
      match s with
      | Ast.For loop when unrollable loop ->
          incr count;
          unroll_loop f loop
      | Ast.For loop -> [ Ast.For { loop with body = unroll_block f count loop.body } ]
      | Ast.If (c, t, e) ->
          [ Ast.If (c, unroll_block f count t, unroll_block f count e) ]
      | Ast.While (c, b) -> [ Ast.While (c, unroll_block f count b) ]
      | Ast.Decl _ | Ast.Assign _ | Ast.Store _ -> [ s ])
    b

(* ------------------------------------------------------------------ *)

let apply t (k : Ast.kernel) =
  match t with
  | Id -> Ok k
  | Interchange ->
      let count = ref 0 in
      let body = interchange_block count k.body in
      if !count = 0 then Error "no interchangeable perfect loop nest"
      else Ok { k with body }
  | Unroll f ->
      if f < 2 then Error "unroll factor must be at least 2"
      else
        let count = ref 0 in
        let body = unroll_block f count k.body in
        if !count = 0 then Error "no unrollable innermost loop"
        else Ok { k with body }

let add_parallel_pragmas (k : Ast.kernel) =
  let added = ref [] in
  let body =
    List.map
      (fun (s : Ast.stmt) ->
        match s with
        | Ast.For loop when not (List.mem Ast.Parallel loop.pragmas) ->
            if (Deps.analyze_loop loop).legality.parallelizable then begin
              added := loop_label loop :: !added;
              Ast.For { loop with pragmas = Ast.Parallel :: loop.pragmas }
            end
            else s
        | s -> s)
      k.body
  in
  ({ k with body }, List.rev !added)

let parallel_labels (k : Ast.kernel) =
  List.filter_map
    (fun (s : Ast.stmt) ->
      match s with
      | Ast.For loop when List.mem Ast.Parallel loop.pragmas ->
          Some (loop_label loop)
      | _ -> None)
    k.body
