(** Loop analysis for the auto-vectorizer (and the parallelizer's scalar
    privatization): subscript classification, scalar dependence classes,
    reduction recognition, constant-distance array dependence testing, and
    the vectorization legality decision.

    The analysis is deliberately that of a *traditional* compiler:
    subscripts must be affine in the loop variable to use wide memory
    operations; loop-carried dependences are rejected conservatively unless
    the programmer asserts independence with [pragma simd]; scalars must be
    loop-invariant, privatizable, or recognizable sum/min/max reductions. *)

module S : Set.S with type elt = string

type red_kind = Rsum | Rmin | Rmax

type scalar_class =
  | Invariant  (** read-only in the loop body *)
  | Private  (** defined before use on every iteration *)
  | Reduction of red_kind

type subscript =
  | Sub_invariant  (** same address every iteration *)
  | Sub_affine of int * Ast.expr  (** [stride * i + base], base invariant *)
  | Sub_complex  (** data-dependent: gather/scatter territory *)

type plan = { scalars : (string * scalar_class) list }
(** Classification of every scalar assigned in the loop body. *)

val red_kind_name : red_kind -> string
(** ["sum"] / ["min"] / ["max"] — the spelling used in reports. *)

(** {1 Syntactic helpers} *)

val mentions : string -> Ast.expr -> bool
(** [mentions v e] — does [e] read the scalar [v] anywhere (including
    inside subscripts)? *)

val mentions_any : S.t -> Ast.expr -> bool
(** [mentions_any set e] — does [e] read any scalar in [set]? *)

val has_index : Ast.expr -> bool
(** Does [e] contain an array reference [a[i]] anywhere? *)

val scalar_reads : Ast.expr -> S.t
(** The scalars an expression reads (array names excluded, subscript
    contents included). *)

val assigned_in_block : Ast.block -> S.t
(** Every scalar assigned anywhere in the block, loop indices included —
    the [varying] set for {!classify_subscript}. *)

(** {1 Classification} *)

val classify_subscript : loop_var:string -> varying:S.t -> Ast.expr -> subscript
(** How a subscript moves as [loop_var] advances; a base mentioning any
    scalar in [varying] (assigned in the body) forces the gather path. *)

val reduction_of_assign : string -> Ast.expr -> red_kind option
(** Recognize [v = v + e] / [v = v - e] / [v = fminf(v, e)] /
    [v = fmaxf(v, e)] (commuted forms included) with [v] not in [e]. *)

val classify_scalars_diag :
  Ast.block -> ((string * scalar_class) list, Diag.t) result
(** Classify every assigned scalar; unrecognized loop-carried scalar
    dependences come back as a [SCALAR_CYCLE] diagnostic (no span — the
    caller attaches the loop's). *)

val const_difference : Ast.expr -> Ast.expr -> int option
(** Symbolic difference of two int expressions when all non-constant terms
    cancel — the engine of the constant-distance dependence test. *)

val linearize : Ast.expr -> int * (Ast.expr * int) list
(** An int expression as [constant + sum of coefficient * opaque-term],
    opaque terms compared structurally — the normal form behind
    {!const_difference}, exposed for the dependence engine's multi-index
    GCD test. *)

type array_access = { array : string; sub : Ast.expr; is_write : bool }

val collect_accesses : Ast.block -> array_access list
(** Every array reference in the block, in syntactic order; stores come
    before the reads inside their own subscript and right-hand side. *)

(** {1 Legality} *)

val vectorize_diag : force:bool -> Ast.for_loop -> (plan, Diag.t) result
(** Decide vectorizability and produce the codegen plan. [force]
    corresponds to [pragma simd]: it skips the array dependence test but
    never the mechanical requirements (no inner loops, no declarations in
    branches, classifiable scalars). Rejections come back as structured
    diagnostics with stable reason codes ([NON_UNIT_STEP], [SCALAR_CYCLE],
    [AOS_LAYOUT], [NON_UNIT_STRIDE], [LOOP_CARRIED_DEP],
    [GATHER_REQUIRED], [INVARIANT_STORE], [INNER_LOOP],
    [COMPLEX_CONTROL]) carrying the loop's source span. *)

val parallel_diag : Ast.for_loop -> (plan, Diag.t) result
(** Scalar classification for a [pragma parallel] loop (privatization and
    reduction detection), with structured rejection. *)

val mechanics_diag : Ast.block -> (unit, Diag.t) result
(** The mechanical vector-body requirements alone (no inner loops, no
    declarations in conditional branches), as a structured verdict
    ([INNER_LOOP] / [COMPLEX_CONTROL], no span). *)

val access_remarks : Ast.for_loop -> Diag.t list
(** icc-style remarks on a vectorizable loop's memory traffic: strided
    accesses ([NON_UNIT_STRIDE]), interleaved-record accesses
    ([AOS_LAYOUT]) and data-dependent subscripts ([GATHER_REQUIRED]) all
    vectorize on this VM, but at the paper's bandwidth penalty.
    Deterministic (sorted by array name). *)

val race_diags : Ast.for_loop -> Diag.t list
(** The pragma race checker: run the affine dependence machinery over an
    asserted loop and report *provable* cross-iteration conflicts as
    [RACE] warnings (loop-invariant store addresses, constant-distance
    same-element conflicts). [Sub_complex] subscripts prove nothing, so
    legitimately asserted scatters stay quiet. Deterministic. *)
