(* Type checking for Cee. The language is strict about numeric types: there
   are no implicit int/float conversions (use the [float]/[int] casts), so
   every expression has exactly one type, which the vectorizer and code
   generator recompute with [type_of_expr]. Conditions are C-style ints. *)

exception Type_error of string

let err fmt = Fmt.kstr (fun s -> raise (Type_error s)) fmt

module Env = Map.Make (String)

type env = Ast.ty Env.t

let intrinsic_sig name : Ast.ty list * Ast.ty =
  match name with
  | "sqrtf" | "rsqrtf" | "expf" | "logf" | "fabsf" | "floorf" ->
      ([ Ast.Tfloat ], Ast.Tfloat)
  | "fminf" | "fmaxf" -> ([ Ast.Tfloat; Ast.Tfloat ], Ast.Tfloat)
  | "float" -> ([ Ast.Tint ], Ast.Tfloat)
  | "int" -> ([ Ast.Tfloat ], Ast.Tint)
  | _ -> err "unknown function %s" name

let rec type_of_expr (env : env) (e : Ast.expr) : Ast.ty =
  match e with
  | Int_lit _ -> Tint
  | Float_lit _ -> Tfloat
  | Var v -> (
      match Env.find_opt v env with
      | Some ty ->
          if Ast.is_array ty then err "array %s used as a scalar" v else ty
      | None -> err "unbound variable %s" v)
  | Index (a, i) -> (
      (match type_of_expr env i with
      | Tint -> ()
      | t -> err "subscript of %s has type %s, expected int" a (Ast.ty_name t));
      match Env.find_opt a env with
      | Some ty -> (
          match Ast.elt_ty_opt ty with
          | Some elt -> elt
          | None -> err "%s has type %s and cannot be indexed" a (Ast.ty_name ty))
      | None -> err "unbound array %s" a)
  | Bin (op, a, b) -> (
      let ta = type_of_expr env a and tb = type_of_expr env b in
      if ta <> tb then
        err "operands of %s have different types (%s vs %s)" (Ast.binop_name op)
          (Ast.ty_name ta) (Ast.ty_name tb);
      match op with
      | Add | Sub | Mul | Div -> ta
      | Mod -> if ta = Tint then Tint else err "%% requires int operands"
      | Lt | Le | Gt | Ge | Eq | Ne -> Tint
      | And | Or ->
          if ta = Tint then Tint else err "&&/|| require int (condition) operands")
  | Un (Neg, a) -> type_of_expr env a
  | Un (Not, a) ->
      if type_of_expr env a = Tint then Tint else err "! requires an int operand"
  | Call (f, args) ->
      let arg_tys, ret = intrinsic_sig f in
      if List.length args <> List.length arg_tys then
        err "%s expects %d argument(s)" f (List.length arg_tys);
      List.iteri
        (fun i (want, arg) ->
          let got = type_of_expr env arg in
          if got <> want then
            err "argument %d of %s has type %s, expected %s" (i + 1) f
              (Ast.ty_name got) (Ast.ty_name want))
        (List.combine arg_tys args);
      ret

let rec check_block env (b : Ast.block) =
  match b with
  | [] -> ()
  | stmt :: rest ->
      let env' = check_stmt env stmt in
      check_block env' rest

and check_stmt env (stmt : Ast.stmt) : env =
  match stmt with
  | Decl (v, ty, init) ->
      if Ast.is_array ty then err "local arrays are not supported (%s)" v;
      (match init with
      | None -> ()
      | Some e ->
          let t = type_of_expr env e in
          if t <> ty then
            err "initializer of %s has type %s, expected %s" v (Ast.ty_name t)
              (Ast.ty_name ty));
      Env.add v ty env
  | Assign (v, e) -> (
      match Env.find_opt v env with
      | None -> err "assignment to unbound variable %s" v
      | Some ty when Ast.is_array ty -> err "cannot assign to array %s" v
      | Some ty ->
          let t = type_of_expr env e in
          if t <> ty then
            err "assignment to %s : %s from expression of type %s" v
              (Ast.ty_name ty) (Ast.ty_name t);
          env)
  | Store (a, i, e, _) -> (
      match Env.find_opt a env with
      | Some ty -> (
          match Ast.elt_ty_opt ty with
          | None -> err "%s has type %s and cannot be indexed" a (Ast.ty_name ty)
          | Some want ->
              (match type_of_expr env i with
              | Tint -> ()
              | t ->
                  err "subscript of %s has type %s, expected int" a (Ast.ty_name t));
              let got = type_of_expr env e in
              if got <> want then
                err "store to %s of type %s, expected %s" a (Ast.ty_name got)
                  (Ast.ty_name want);
              env)
      | None -> err "unbound array %s" a)
  | If (c, t, e) ->
      if type_of_expr env c <> Tint then err "if condition must be int";
      check_block env t;
      check_block env e;
      env
  | While (c, b) ->
      if type_of_expr env c <> Tint then err "while condition must be int";
      check_block env b;
      env
  | For { index; init; limit; body; _ } ->
      (match Env.find_opt index env with
      | Some Tint -> ()
      | Some t -> err "loop variable %s has type %s, expected int" index (Ast.ty_name t)
      | None -> err "loop variable %s must be declared before the loop" index);
      if type_of_expr env init <> Tint then err "loop bound of %s must be int" index;
      if type_of_expr env limit <> Tint then err "loop limit of %s must be int" index;
      check_block env body;
      env

let initial_env (k : Ast.kernel) =
  List.fold_left
    (fun env (name, ty) ->
      if Env.mem name env then err "duplicate parameter %s" name;
      Env.add name ty env)
    Env.empty k.params

let check_kernel (k : Ast.kernel) = check_block (initial_env k) k.body

let check_kernel_diag (k : Ast.kernel) : (unit, Diag.t) result =
  match check_kernel k with
  | () -> Ok ()
  | exception Type_error msg -> Error (Diag.v Diag.Error Diag.Type_error "%s" msg)
