(* Loop analysis for the auto-vectorizer (and the parallelizer's scalar
   privatization): subscript classification, scalar dependence classes,
   reduction recognition, and the vectorization legality decision.

   The analysis is deliberately that of a *traditional* compiler:
   - subscripts must be affine in the loop variable with a constant stride
     to use wide loads/stores; anything else becomes a gather/scatter;
   - loop-carried dependences are rejected conservatively unless the
     programmer asserts independence with [pragma simd] (the paper's
     low-effort vehicle for bridging the compiler's legality wall);
   - scalars must be loop-invariant, privatizable, or recognizable
     reductions. *)

module S = Set.Make (String)

type red_kind = Rsum | Rmin | Rmax

type scalar_class = Invariant | Private | Reduction of red_kind

type subscript =
  | Sub_invariant (* same address every iteration *)
  | Sub_affine of int * Ast.expr (* stride * i + base, base loop-invariant *)
  | Sub_complex (* data-dependent: needs gather/scatter *)

type plan = {
  (* classification of every scalar assigned in the body *)
  scalars : (string * scalar_class) list;
}

(* Internally every rejection is a structured diagnostic with a stable
   reason code; the exception never escapes the public [_diag] entry
   points, which also fill in the loop-level span. *)
exception Rejected of Diag.t

let fail code fmt =
  Fmt.kstr (fun s -> raise (Rejected (Diag.v Diag.Error code "%s" s))) fmt

let red_kind_name = function Rsum -> "sum" | Rmin -> "min" | Rmax -> "max"

(* ------------------------------------------------------------------ *)
(* Syntactic helpers                                                   *)

let rec mentions v (e : Ast.expr) =
  match e with
  | Int_lit _ | Float_lit _ -> false
  | Var x -> x = v
  | Index (_, i) -> mentions v i
  | Bin (_, a, b) -> mentions v a || mentions v b
  | Un (_, a) -> mentions v a
  | Call (_, args) -> List.exists (mentions v) args

let rec mentions_any set (e : Ast.expr) =
  match e with
  | Int_lit _ | Float_lit _ -> false
  | Var x -> S.mem x set
  | Index (_, i) -> mentions_any set i
  | Bin (_, a, b) -> mentions_any set a || mentions_any set b
  | Un (_, a) -> mentions_any set a
  | Call (_, args) -> List.exists (mentions_any set) args

let rec has_index (e : Ast.expr) =
  match e with
  | Int_lit _ | Float_lit _ | Var _ -> false
  | Index _ -> true
  | Bin (_, a, b) -> has_index a || has_index b
  | Un (_, a) -> has_index a
  | Call (_, args) -> List.exists has_index args

(* Scalar variables read by an expression (array names excluded, subscript
   contents included). *)
let rec scalar_reads (e : Ast.expr) : S.t =
  match e with
  | Int_lit _ | Float_lit _ -> S.empty
  | Var x -> S.singleton x
  | Index (_, i) -> scalar_reads i
  | Bin (_, a, b) -> S.union (scalar_reads a) (scalar_reads b)
  | Un (_, a) -> scalar_reads a
  | Call (_, args) ->
      List.fold_left (fun acc a -> S.union acc (scalar_reads a)) S.empty args

(* All scalars assigned anywhere in a block (including loop indices). *)
let rec assigned_in_block (b : Ast.block) : S.t =
  List.fold_left (fun acc s -> S.union acc (assigned_in_stmt s)) S.empty b

and assigned_in_stmt (s : Ast.stmt) : S.t =
  match s with
  | Decl (v, _, _) -> S.singleton v
  | Assign (v, _) -> S.singleton v
  | Store _ -> S.empty
  | If (_, t, e) -> S.union (assigned_in_block t) (assigned_in_block e)
  | While (_, b) -> assigned_in_block b
  | For { index; body; _ } -> S.add index (assigned_in_block body)

(* Count the occurrences of scalar [v] as a read in a block. *)
let count_reads v (b : Ast.block) =
  let n = ref 0 in
  let rec expr (e : Ast.expr) =
    match e with
    | Int_lit _ | Float_lit _ -> ()
    | Var x -> if x = v then incr n
    | Index (_, i) -> expr i
    | Bin (_, a, b) -> expr a; expr b
    | Un (_, a) -> expr a
    | Call (_, args) -> List.iter expr args
  in
  let rec stmt (s : Ast.stmt) =
    match s with
    | Decl (_, _, init) -> Option.iter expr init
    | Assign (_, e) -> expr e
    | Store (_, i, e, _) -> expr i; expr e
    | If (c, t, e) -> expr c; List.iter stmt t; List.iter stmt e
    | While (c, b) -> expr c; List.iter stmt b
    | For { init; limit; body; _ } -> expr init; expr limit; List.iter stmt body
  in
  List.iter stmt b;
  !n

(* ------------------------------------------------------------------ *)
(* Subscript classification                                            *)

(* [classify_subscript ~loop_var ~varying e] decides how [e] moves as
   [loop_var] advances. [varying] is the set of scalars whose value changes
   within an iteration (assigned in the body): a base containing one is not
   loop-invariant and forces the gather path. *)
let classify_subscript ~loop_var ~varying (e : Ast.expr) : subscript =
  (* returns (stride, base) with e == stride * loop_var + base *)
  let rec affine (e : Ast.expr) : (int * Ast.expr) option =
    if not (mentions loop_var e) then
      if mentions_any varying e || has_index e then None else Some (0, e)
    else
      match e with
      | Var x when x = loop_var -> Some (1, Int_lit 0)
      | Bin (Add, a, b) -> (
          match (affine a, affine b) with
          | Some (ka, ba), Some (kb, bb) -> Some (ka + kb, Ast.Bin (Add, ba, bb))
          | _ -> None)
      | Bin (Sub, a, b) -> (
          match (affine a, affine b) with
          | Some (ka, ba), Some (kb, bb) -> Some (ka - kb, Ast.Bin (Sub, ba, bb))
          | _ -> None)
      | Bin (Mul, Int_lit k, b) -> (
          match affine b with
          | Some (kb, bb) -> Some (k * kb, Ast.Bin (Mul, Int_lit k, bb))
          | None -> None)
      | Bin (Mul, a, Int_lit k) -> (
          match affine a with
          | Some (ka, ba) -> Some (k * ka, Ast.Bin (Mul, Ast.Int_lit k, ba))
          | None -> None)
      | _ -> None
  in
  match affine e with
  | Some (0, _) ->
      if mentions_any varying e || has_index e then Sub_complex else Sub_invariant
  | Some (k, base) -> Sub_affine (k, base)
  | None -> Sub_complex

(* ------------------------------------------------------------------ *)
(* Scalar classification                                               *)

(* Reduction pattern for [v]: [v = v + e], [v = v - e],
   [v = fminf(v, e)], [v = fmaxf(v, e)] (commuted forms included for
   + / min / max), with [v] not occurring in [e]. *)
let reduction_of_assign v (rhs : Ast.expr) : red_kind option =
  let ok e = not (mentions v e) in
  match rhs with
  | Bin (Add, Var x, e) when x = v && ok e -> Some Rsum
  | Bin (Add, e, Var x) when x = v && ok e -> Some Rsum
  | Bin (Sub, Var x, e) when x = v && ok e -> Some Rsum
  | Call ("fminf", [ Var x; e ]) when x = v && ok e -> Some Rmin
  | Call ("fminf", [ e; Var x ]) when x = v && ok e -> Some Rmin
  | Call ("fmaxf", [ Var x; e ]) when x = v && ok e -> Some Rmax
  | Call ("fmaxf", [ e; Var x ]) when x = v && ok e -> Some Rmax
  | _ -> None

(* Reads of scalars "exposed" at the top of the body, i.e. possibly executed
   before any assignment to the same scalar in the same iteration. Walks in
   program order, tracking the defined-set; [If] contributes definitions
   only when both branches define. *)
let exposed_reads (body : Ast.block) : S.t =
  let exposed = ref S.empty in
  let note defined reads = exposed := S.union !exposed (S.diff reads defined) in
  let rec block defined (b : Ast.block) =
    List.fold_left stmt defined b
  and stmt defined (s : Ast.stmt) =
    match s with
    | Decl (v, _, init) ->
        Option.iter (fun e -> note defined (scalar_reads e)) init;
        S.add v defined
    | Assign (v, e) ->
        note defined (scalar_reads e);
        S.add v defined
    | Store (_, i, e, _) ->
        note defined (scalar_reads i);
        note defined (scalar_reads e);
        defined
    | If (c, t, e) ->
        note defined (scalar_reads c);
        let dt = block defined t and de = block defined e in
        S.union defined (S.inter dt de)
    | While (c, b) ->
        note defined (scalar_reads c);
        (* the body may loop: reads inside are exposed to earlier iterations
           of the while, so evaluate it against its own final defined-set
           conservatively (run twice) *)
        let d1 = block defined b in
        ignore (block defined b : S.t);
        S.inter d1 (block defined b)
    | For { index; init; limit; body; _ } ->
        note defined (scalar_reads init);
        note defined (scalar_reads limit);
        let defined = S.add index defined in
        (* two passes for the same cross-iteration reason as While *)
        ignore (block defined body : S.t);
        ignore (block defined body : S.t);
        defined
  in
  ignore (block S.empty body : S.t);
  !exposed

let classify_scalars_x (body : Ast.block) : (string * scalar_class) list =
  let assigned = assigned_in_block body in
  let exposed = exposed_reads body in
  S.fold
    (fun v acc ->
      if not (S.mem v exposed) then (v, Private) :: acc
      else begin
        (* read-before-write: must be a reduction *)
        let kinds = ref [] in
        let bad = ref None in
        let rec scan_stmt (s : Ast.stmt) =
          match s with
          | Assign (x, rhs) when x = v -> (
              match reduction_of_assign v rhs with
              | Some k -> kinds := k :: !kinds
              | None -> bad := Some "assignment does not match a reduction pattern")
          | Decl (x, _, _) when x = v ->
              bad := Some "declared and read-before-write"
          | If (_, t, e) -> List.iter scan_stmt t; List.iter scan_stmt e
          | While (_, b) -> List.iter scan_stmt b
          | For { index; body; _ } ->
              if index = v then bad := Some "loop index is live across iterations";
              List.iter scan_stmt body
          | Assign _ | Decl _ | Store _ -> ()
        in
        List.iter scan_stmt body;
        (match !bad with
        | Some reason ->
            fail Diag.Scalar_cycle "scalar %s carries a dependence: %s" v reason
        | None -> ());
        (match !kinds with
        | [] ->
            fail Diag.Scalar_cycle "scalar %s is read but never assigned a reduction" v
        | k :: rest ->
            if List.exists (fun k' -> k' <> k) rest then
              fail Diag.Scalar_cycle "scalar %s mixes reduction kinds" v;
            (* every read of v must be the one inside a reduction assignment *)
            let reads = count_reads v body in
            if reads <> List.length !kinds then
              fail Diag.Scalar_cycle "scalar %s is read outside its reduction updates" v;
            ())
        ;
        (v, Reduction (List.hd !kinds)) :: acc
      end)
    assigned []

(* ------------------------------------------------------------------ *)
(* Vectorization legality                                              *)

(* Mechanical requirements: single basic-block-with-ifs body. If-conversion
   handles [If] whose branches contain only assignments and stores. *)
let rec check_mechanics ~in_if (body : Ast.block) =
  List.iter
    (fun (s : Ast.stmt) ->
      match s with
      | Decl _ when in_if ->
          fail Diag.Complex_control "declaration inside a conditional branch"
      | Decl _ | Assign _ | Store _ -> ()
      | If (_, t, e) ->
          check_mechanics ~in_if:true t;
          check_mechanics ~in_if:true e
      | While _ -> fail Diag.Inner_loop "while loop in vector-candidate body"
      | For _ -> fail Diag.Inner_loop "nested loop in vector-candidate body")
    body

type array_access = { array : string; sub : Ast.expr; is_write : bool }

let rec collect_accesses (b : Ast.block) : array_access list =
  List.concat_map collect_stmt b

and collect_stmt (s : Ast.stmt) : array_access list =
  let rec expr (e : Ast.expr) =
    match e with
    | Int_lit _ | Float_lit _ | Var _ -> []
    | Index (a, i) -> { array = a; sub = i; is_write = false } :: expr i
    | Bin (_, x, y) -> expr x @ expr y
    | Un (_, x) -> expr x
    | Call (_, args) -> List.concat_map expr args
  in
  match s with
  | Decl (_, _, None) -> []
  | Decl (_, _, Some e) | Assign (_, e) -> expr e
  | Store (a, i, e, _) -> ({ array = a; sub = i; is_write = true } :: expr i) @ expr e
  | If (c, t, e) -> expr c @ collect_accesses t @ collect_accesses e
  | While (c, b) -> expr c @ collect_accesses b
  | For { init; limit; body; _ } -> expr init @ expr limit @ collect_accesses body

(* Symbolic linearization for constant-distance tests: an int expression as
   [constant + sum of coefficient * opaque-term]. Opaque terms are compared
   structurally. Returns the constant difference of two expressions when
   all symbolic terms cancel. *)
let add_term ts (t, c) =
  let rec go = function
    | [] -> if c = 0 then [] else [ (t, c) ]
    | (t', c') :: rest when t' = t ->
        if c' + c = 0 then rest else (t', c' + c) :: rest
    | x :: rest -> x :: go rest
  in
  go ts

let merge_lin (c1, ts1) (c2, ts2) = (c1 + c2, List.fold_left add_term ts1 ts2)

let scale_lin k (c, ts) =
  (k * c, List.filter_map (fun (t, c') -> if k * c' = 0 then None else Some (t, k * c')) ts)

let rec linearize (e : Ast.expr) : int * (Ast.expr * int) list =
  match e with
  | Int_lit n -> (n, [])
  | Bin (Add, a, b) -> merge_lin (linearize a) (linearize b)
  | Bin (Sub, a, b) -> merge_lin (linearize a) (scale_lin (-1) (linearize b))
  | Bin (Mul, Int_lit k, b) -> scale_lin k (linearize b)
  | Bin (Mul, a, Int_lit k) -> scale_lin k (linearize a)
  | Un (Neg, a) -> scale_lin (-1) (linearize a)
  | e -> (0, [ (e, 1) ])

let const_difference e1 e2 : int option =
  match merge_lin (linearize e1) (scale_lin (-1) (linearize e2)) with
  | c, [] -> Some c
  | _ -> None

(* The distinct (|stride|, residue mod |stride|) pairs among an array's
   strided (|stride| >= 2) affine accesses. Two or more distinct residues
   at the same address expression shape are the signature of interleaved
   record fields — the AoS layout the paper's first fix removes. *)
let strided_pairs ~classify accesses array =
  List.filter_map
    (fun (a : array_access) ->
      if a.array <> array then None
      else
        match classify a with
        | Sub_affine (k, b) when abs k >= 2 ->
            let k = abs k in
            let c, _ = linearize b in
            Some (k, ((c mod k) + k) mod k)
        | _ -> None)
    accesses
  |> List.sort_uniq compare

(* Refine the reason code for a failed array dependence test. *)
let dep_code ~classify accesses array =
  match strided_pairs ~classify accesses array with
  | [] -> Diag.Loop_carried_dep
  | [ _ ] -> Diag.Non_unit_stride
  | _ :: _ :: _ -> Diag.Aos_layout

(* Conservative cross-iteration dependence test on arrays, with
   constant-distance disambiguation: two references with the same stride
   whose bases differ by a constant not divisible by the stride can never
   touch the same element. *)
let check_dependences ~loop_var ~varying (body : Ast.block) =
  let accesses = collect_accesses body in
  let classify (a : array_access) = classify_subscript ~loop_var ~varying a.sub in
  let disjoint_or_same ~stride b1 b2 ~allow_same =
    match const_difference b1 b2 with
    | Some 0 -> allow_same
    | Some c -> c mod abs stride <> 0 (* never the same element *)
    | None -> false
  in
  List.iter
    (fun w ->
      if w.is_write then begin
        (match classify w with
        | Sub_complex ->
            fail Diag.Gather_required
              "store to %s with non-affine subscript (assert with pragma simd)"
              w.array
        | Sub_invariant ->
            fail Diag.Invariant_store "store to %s at a loop-invariant address"
              w.array
        | Sub_affine (0, _) ->
            fail Diag.Invariant_store "store to %s at a loop-invariant address"
              w.array
        | Sub_affine _ -> ());
        List.iter
          (fun other ->
            if other.array = w.array && not (other == w) then
              match (classify w, classify other) with
              | Sub_affine (k, b1), Sub_affine (k', b2)
                when k = k'
                     && disjoint_or_same ~stride:k b1 b2
                          ~allow_same:(not other.is_write || other.sub = w.sub) -> ()
              | _ ->
                  fail
                    (dep_code ~classify accesses w.array)
                    "possible loop-carried dependence on %s (assert with pragma simd)"
                    w.array)
          accesses
      end)
    accesses

(* Main entry: decide whether [loop] can be vectorized and produce the
   codegen plan. [force] corresponds to [pragma simd]: it skips the
   dependence test but never the mechanical requirements. *)
let vectorize_x ~force (loop : Ast.for_loop) : plan =
  if loop.step <> 1 then fail Diag.Non_unit_step "only unit-step loops are vectorized";
  check_mechanics ~in_if:false loop.body;
  let scalars = classify_scalars_x loop.body in
  let varying = assigned_in_block loop.body in
  (* stores at loop-invariant addresses break even forced vectorization *)
  if not force then check_dependences ~loop_var:loop.index ~varying loop.body;
  ignore
    (List.map
       (fun (a : array_access) ->
         if a.is_write then
           match classify_subscript ~loop_var:loop.index ~varying a.sub with
           | Sub_invariant | Sub_affine (0, _) ->
               fail Diag.Invariant_store "store to %s at a loop-invariant address"
                 a.array
           | _ -> ()
         else ())
       (collect_accesses loop.body));
  { scalars }

let vectorize_diag ~force (loop : Ast.for_loop) : (plan, Diag.t) result =
  match vectorize_x ~force loop with
  | p -> Ok p
  | exception Rejected d -> Error (Diag.with_span loop.span d)

(* Parallelization shares the scalar analysis: every assigned scalar in the
   parallel body must be private or a reduction. *)
let parallel_diag (loop : Ast.for_loop) : (plan, Diag.t) result =
  match { scalars = classify_scalars_x loop.body } with
  | p -> Ok p
  | exception Rejected d -> Error (Diag.with_span loop.span d)

(* ------------------------------------------------------------------ *)
(* Structured sub-analyses for the dependence engine (Deps): the same
   internal machinery, exposed piecewise so legality facts can be built
   from orthogonal verdicts instead of one combined pass/fail.          *)

let classify_scalars_diag (body : Ast.block) :
    ((string * scalar_class) list, Diag.t) result =
  match classify_scalars_x body with
  | s -> Ok s
  | exception Rejected d -> Error d

let mechanics_diag (body : Ast.block) : (unit, Diag.t) result =
  match check_mechanics ~in_if:false body with
  | () -> Ok ()
  | exception Rejected d -> Error d

(* ------------------------------------------------------------------ *)
(* Opt-report remarks and the pragma race checker                       *)

(* Remarks on a vectorizable loop's memory traffic: strided and gathered
   accesses do vectorize here (the VM has strided loads and a hardware
   gather), but at the paper's bandwidth penalty — report them icc-style
   so the layout pathology is visible even when legality holds. *)
let access_remarks (loop : Ast.for_loop) : Diag.t list =
  let varying = assigned_in_block loop.body in
  let classify (a : array_access) =
    classify_subscript ~loop_var:loop.index ~varying a.sub
  in
  let accesses = collect_accesses loop.body in
  let arrays =
    List.sort_uniq compare (List.map (fun (a : array_access) -> a.array) accesses)
  in
  List.filter_map
    (fun arr ->
      let subs =
        List.filter_map
          (fun (a : array_access) -> if a.array = arr then Some (classify a) else None)
          accesses
      in
      if List.mem Sub_complex subs then
        Some
          (Diag.v ~span:loop.span Diag.Remark Diag.Gather_required
             "data-dependent subscript on %s: gather/scatter emitted" arr)
      else
        match strided_pairs ~classify accesses arr with
        | [] -> None
        | [ (k, _) ] ->
            Some
              (Diag.v ~span:loop.span Diag.Remark Diag.Non_unit_stride
                 "stride-%d access to %s: strided memory operations emitted" k arr)
        | (k, _) :: _ :: _ ->
            Some
              (Diag.v ~span:loop.span Diag.Remark Diag.Aos_layout
                 "%s is accessed as %d-wide interleaved records (AoS layout)" arr k))
    arrays

(* The pragma race checker: run the affine dependence machinery over an
   asserted loop anyway and report dependences that are *provable* — not
   merely possible — as RACE diagnostics. [Sub_complex] subscripts prove
   nothing, so the paper's legitimate asserted scatters stay quiet. *)
let race_diags (loop : Ast.for_loop) : Diag.t list =
  let varying = assigned_in_block loop.body in
  let classify (a : array_access) =
    classify_subscript ~loop_var:loop.index ~varying a.sub
  in
  let accesses = collect_accesses loop.body in
  let out = ref [] in
  let add d =
    if not (List.exists (fun d' -> Diag.compare d d' = 0) !out) then out := d :: !out
  in
  List.iter
    (fun (w : array_access) ->
      if w.is_write then
        match classify w with
        | Sub_invariant | Sub_affine (0, _) ->
            add
              (Diag.v ~span:loop.span Diag.Warning Diag.Race
                 "asserted-independent loop stores to %s at a loop-invariant \
                  address: every iteration writes the same element"
                 w.array)
        | Sub_affine (k, b1) ->
            List.iter
              (fun (o : array_access) ->
                if o.array = w.array && not (o == w) then
                  match classify o with
                  | Sub_affine (k', b2) when k' = k -> (
                      match const_difference b1 b2 with
                      | Some c when c <> 0 && c mod k = 0 ->
                          add
                            (Diag.v ~span:loop.span Diag.Warning Diag.Race
                               "asserted-independent loop carries a dependence \
                                on %s: iterations %d apart touch the same element"
                               w.array
                               (abs (c / k)))
                      | _ -> ())
                  | _ -> ())
              accesses
        | Sub_complex -> ())
    accesses;
  List.sort Diag.compare !out
