(* Abstract syntax of "Cee", the small C-like kernel language that the
   benchmarks' naive and algorithmically-improved variants are written in.

   The language is deliberately restricted to what a traditional compiler
   reasons about well:
   - one kernel per compilation unit, with scalar and 1-D array parameters;
   - structured statements only;
   - [for] loops in the canonical form
       [for (i = e0; i < e1; i = i + c)]  with [c] a positive constant;
   - OpenMP-style annotations: [pragma parallel] requests threading of the
     next for loop, [pragma simd] asserts it is safe to vectorize. *)

type ty = Tint | Tfloat | Tarr_int | Tarr_float

type binop =
  | Add | Sub | Mul | Div | Mod (* Mod is integer-only *)
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or

type unop = Neg | Not

type expr =
  | Int_lit of int
  | Float_lit of float
  | Var of string
  | Index of string * expr (* a[e] *)
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Call of string * expr list (* math intrinsics and casts *)

type pragma = Parallel | Simd

type stmt =
  | Decl of string * ty * expr option
  | Assign of string * expr
  | Store of string * expr * expr * Diag.span (* a[e1] = e2, at its source line *)
  | If of expr * block * block
  | While of expr * block
  | For of for_loop

and for_loop = {
  index : string;
  init : expr;
  limit : expr; (* exclusive: i < limit *)
  step : int; (* positive constant *)
  pragmas : pragma list;
  body : block;
  span : Diag.span; (* source lines of the loop, threaded by the parser *)
}

and block = stmt list

type kernel = { kname : string; params : (string * ty) list; body : block }

(* The math intrinsics the language knows, with their arities. [rsqrtf] is
   the explicit fast reciprocal square root ("-ffast-math by hand"). *)
let intrinsics =
  [ ("sqrtf", 1); ("rsqrtf", 1); ("expf", 1); ("logf", 1); ("fabsf", 1);
    ("floorf", 1); ("fminf", 2); ("fmaxf", 2); ("float", 1); ("int", 1) ]

let ty_name = function
  | Tint -> "int"
  | Tfloat -> "float"
  | Tarr_int -> "int[]"
  | Tarr_float -> "float[]"

let is_array = function Tarr_int | Tarr_float -> true | Tint | Tfloat -> false

(* Total: malformed input must never abort the process. Callers turn [None]
   into a proper diagnostic (a type error, or an internal-error diagnostic
   where the typechecker already guarantees an array). *)
let elt_ty_opt = function
  | Tarr_int -> Some Tint
  | Tarr_float -> Some Tfloat
  | Tint | Tfloat -> None

(* ------------------------------------------------------------------ *)
(* Size metrics (programming-effort proxies for experiment T2)         *)

let rec expr_nodes = function
  | Int_lit _ | Float_lit _ | Var _ -> 1
  | Index (_, e) -> 1 + expr_nodes e
  | Bin (_, a, b) -> 1 + expr_nodes a + expr_nodes b
  | Un (_, a) -> 1 + expr_nodes a
  | Call (_, args) -> 1 + List.fold_left (fun acc e -> acc + expr_nodes e) 0 args

let rec stmt_nodes = function
  | Decl (_, _, None) -> 1
  | Decl (_, _, Some e) -> 1 + expr_nodes e
  | Assign (_, e) -> 1 + expr_nodes e
  | Store (_, i, e, _) -> 1 + expr_nodes i + expr_nodes e
  | If (c, t, e) -> 1 + expr_nodes c + block_nodes t + block_nodes e
  | While (c, b) -> 1 + expr_nodes c + block_nodes b
  | For { init; limit; body; _ } ->
      1 + expr_nodes init + expr_nodes limit + block_nodes body

and block_nodes b = List.fold_left (fun acc s -> acc + stmt_nodes s) 0 b

let kernel_nodes k = block_nodes k.body

(* ------------------------------------------------------------------ *)
(* Pretty-printing back to concrete syntax                             *)

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "==" | Ne -> "!="
  | And -> "&&" | Or -> "||"

let rec pp_expr ppf = function
  | Int_lit n -> Fmt.int ppf n
  | Float_lit x ->
      (* decimal form that our own lexer can read back *)
      if Float.is_integer x && Float.abs x < 1e15 then Fmt.pf ppf "%.1f" x
      else Fmt.pf ppf "%.17g" x
  | Var v -> Fmt.string ppf v
  | Index (a, e) -> Fmt.pf ppf "%s[%a]" a pp_expr e
  | Bin (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp_expr a (binop_name op) pp_expr b
  | Un (Neg, a) -> Fmt.pf ppf "(-%a)" pp_expr a
  | Un (Not, a) -> Fmt.pf ppf "(!%a)" pp_expr a
  | Call (f, args) -> Fmt.pf ppf "%s(%a)" f Fmt.(list ~sep:comma pp_expr) args

let rec pp_stmt indent ppf stmt =
  let pad = String.make indent ' ' in
  match stmt with
  | Decl (v, ty, None) -> Fmt.pf ppf "%svar %s : %s;@." pad v (ty_name ty)
  | Decl (v, ty, Some e) ->
      Fmt.pf ppf "%svar %s : %s = %a;@." pad v (ty_name ty) pp_expr e
  | Assign (v, e) -> Fmt.pf ppf "%s%s = %a;@." pad v pp_expr e
  | Store (a, i, e, _) -> Fmt.pf ppf "%s%s[%a] = %a;@." pad a pp_expr i pp_expr e
  | If (c, t, []) ->
      Fmt.pf ppf "%sif (%a) {@.%a%s}@." pad pp_expr c (pp_block (indent + 2)) t pad
  | If (c, t, e) ->
      Fmt.pf ppf "%sif (%a) {@.%a%s} else {@.%a%s}@." pad pp_expr c
        (pp_block (indent + 2)) t pad (pp_block (indent + 2)) e pad
  | While (c, b) ->
      Fmt.pf ppf "%swhile (%a) {@.%a%s}@." pad pp_expr c (pp_block (indent + 2)) b pad
  | For { index; init; limit; step; pragmas; body; _ } ->
      List.iter
        (fun p ->
          Fmt.pf ppf "%spragma %s@." pad
            (match p with Parallel -> "parallel" | Simd -> "simd"))
        pragmas;
      Fmt.pf ppf "%sfor (%s = %a; %s < %a; %s = %s + %d) {@.%a%s}@." pad index
        pp_expr init index pp_expr limit index index step
        (pp_block (indent + 2)) body pad

and pp_block indent ppf b = List.iter (pp_stmt indent ppf) b

let pp_kernel ppf k =
  Fmt.pf ppf "kernel %s(%a) {@.%a}@." k.kname
    Fmt.(list ~sep:comma (fun ppf (n, t) -> Fmt.pf ppf "%s : %s" n (ty_name t)))
    k.params (pp_block 2) k.body

(* ------------------------------------------------------------------ *)
(* Constant folding (and the fast-math rewrite)                        *)

let rec fold_expr (e : expr) : expr =
  match e with
  | Int_lit _ | Float_lit _ | Var _ -> e
  | Index (a, i) -> Index (a, fold_expr i)
  | Un (op, a) -> (
      match (op, fold_expr a) with
      | Neg, Int_lit n -> Int_lit (-n)
      | Neg, Float_lit x -> Float_lit (-.x)
      | op, a -> Un (op, a))
  | Call (f, args) -> Call (f, List.map fold_expr args)
  | Bin (op, a, b) -> (
      let a = fold_expr a and b = fold_expr b in
      match (op, a, b) with
      | Add, Int_lit x, Int_lit y -> Int_lit (x + y)
      | Sub, Int_lit x, Int_lit y -> Int_lit (x - y)
      | Mul, Int_lit x, Int_lit y -> Int_lit (x * y)
      | Div, Int_lit x, Int_lit y when y <> 0 -> Int_lit (x / y)
      | Mod, Int_lit x, Int_lit y when y <> 0 -> Int_lit (x mod y)
      | Add, Float_lit x, Float_lit y -> Float_lit (x +. y)
      | Sub, Float_lit x, Float_lit y -> Float_lit (x -. y)
      | Mul, Float_lit x, Float_lit y -> Float_lit (x *. y)
      | Div, Float_lit x, Float_lit y -> Float_lit (x /. y)
      | Add, e, Int_lit 0 | Add, Int_lit 0, e -> e
      | Sub, e, Int_lit 0 -> e
      | Mul, e, Int_lit 1 | Mul, Int_lit 1, e -> e
      | op, a, b -> Bin (op, a, b))

let rec fold_block (b : block) : block = List.map fold_stmt b

and fold_stmt (s : stmt) : stmt =
  match s with
  | Decl (v, ty, init) -> Decl (v, ty, Option.map fold_expr init)
  | Assign (v, e) -> Assign (v, fold_expr e)
  | Store (a, i, e, sp) -> Store (a, fold_expr i, fold_expr e, sp)
  | If (c, t, e) -> If (fold_expr c, fold_block t, fold_block e)
  | While (c, b) -> While (fold_expr c, fold_block b)
  | For f -> For { f with init = fold_expr f.init; limit = fold_expr f.limit; body = fold_block f.body }

(* ------------------------------------------------------------------ *)
(* Span erasure (for structural comparison, e.g. the print/reparse
   round-trip test: pretty-printing moves line numbers, not structure)  *)

let rec erase_spans_block (b : block) : block = List.map erase_spans_stmt b

and erase_spans_stmt (s : stmt) : stmt =
  match s with
  | Decl _ | Assign _ -> s
  | Store (a, i, e, _) -> Store (a, i, e, Diag.no_span)
  | If (c, t, e) -> If (c, erase_spans_block t, erase_spans_block e)
  | While (c, b) -> While (c, erase_spans_block b)
  | For f -> For { f with body = erase_spans_block f.body; span = Diag.no_span }

let erase_spans (k : kernel) : kernel = { k with body = erase_spans_block k.body }

