(* Code generation from Cee to the vector ISA.

   The generator models a traditional optimizing compiler:
   - scalar code: one virtual register per variable, constant folding,
     optional FMA contraction and fast-math rsqrt rewriting;
   - auto-vectorization of innermost for loops (strip-mined main loop +
     scalar remainder), with if-conversion to masks, unit-stride /
     strided / gather memory classification, and sum/min/max reductions;
   - parallelization of top-level [pragma parallel] loops into SPMD [Par]
     phases with static chunking, privatization, and reduction combining.

   Cross-phase scalar state lives in hidden spill buffers ([__env_i] /
   [__env_f]); per-thread reduction partials in [__red_i] / [__red_f]; and
   scalar kernel parameters are passed in one-element [__p_<name>] buffers.
   The kernel driver (lib/kernels) binds these automatically. *)

open Ninja_vm

exception Compile_error of string

let cerr fmt = Fmt.kstr (fun s -> raise (Compile_error s)) fmt

type flags = {
  vectorize : bool; (* auto-vectorizer + pragma simd honored *)
  parallelize : bool; (* pragma parallel honored *)
  fast_math : bool; (* 1/sqrtf(x) -> rsqrtf, as icc -fp-model fast *)
  fma : bool; (* contract a*b+c on FMA machines *)
}

let o2 = { vectorize = false; parallelize = false; fast_math = false; fma = false }
let o2_vec = { o2 with vectorize = true; fast_math = true }
let o2_vec_par = { o2_vec with parallelize = true }

let flags_name f =
  match (f.vectorize, f.parallelize) with
  | false, false -> "O2"
  | true, false -> "O2+vec"
  | false, true -> "O2+par"
  | true, true -> "O2+vec+par"

type vec_outcome = Vectorized | Scalar of string

type result = {
  program : Isa.program;
  (* vectorization report: one entry per candidate loop, innermost first *)
  vec_report : (string * vec_outcome) list;
}

(* Limits for the hidden buffers (checked at compile time, bound by the
   kernel driver). *)
let max_env_slots = 256
let max_threads = 64
let max_reductions = 16

(* Constant folding lives in {!Ast.fold_expr} so that the dependence
   analysis can reuse it. *)
let fold_block = Ast.fold_block

(* ------------------------------------------------------------------ *)
(* Compilation context                                                 *)

type binding =
  | Bint of Isa.si_reg
  | Bfloat of Isa.sf_reg
  | Barray of Isa.buf * Ast.ty

type ctx = {
  flags : flags;
  mutable si_next : int;
  mutable sf_next : int;
  mutable vf_next : int;
  mutable vi_next : int;
  mutable vm_next : int;
  mutable code : Isa.stmt list; (* current block, reversed *)
  mutable buffers : Isa.buffer_decl list; (* reversed *)
  mutable report : (string * vec_outcome) list; (* reversed *)
  (* top-level scalars that must survive phase transitions:
     (binding, env slot within its type's spill buffer) *)
  mutable spill : (binding * int) list;
  (* pointer-chasing detection: scalars whose value (data- or
     control-)depends on a load; loads whose address mentions one are
     emitted with [chain = true] so the timing model charges their miss
     latency without memory-level-parallelism discount *)
  mutable tainted : Analysis.S.t;
  mutable control_taint : bool;
  mutable env_i_slots : int;
  mutable env_f_slots : int;
  mutable red_slots : int; (* reduction groups allocated so far *)
  env_i : Isa.buf;
  env_f : Isa.buf;
  red_i : Isa.buf;
  red_f : Isa.buf;
}

let fresh_si ctx = let r = ctx.si_next in ctx.si_next <- r + 1; Isa.Si r
let fresh_sf ctx = let r = ctx.sf_next in ctx.sf_next <- r + 1; Isa.Sf r
let fresh_vf ctx = let r = ctx.vf_next in ctx.vf_next <- r + 1; Isa.Vf r
let fresh_vi ctx = let r = ctx.vi_next in ctx.vi_next <- r + 1; Isa.Vi r
let fresh_vm ctx = let r = ctx.vm_next in ctx.vm_next <- r + 1; Isa.Vm r

let instr ctx i = ctx.code <- Isa.I i :: ctx.code
let stmt ctx s = ctx.code <- s :: ctx.code

(* Build a sub-block with the same context. *)
let in_block ctx f =
  let saved = ctx.code in
  ctx.code <- [];
  f ();
  let b = List.rev ctx.code in
  ctx.code <- saved;
  b

let iconst ctx n =
  let r = fresh_si ctx in
  instr ctx (Iconst (r, n));
  r

let fconst ctx x =
  let r = fresh_sf ctx in
  instr ctx (Fconst (r, x));
  r

(* ------------------------------------------------------------------ *)
(* Environments                                                        *)

type env = (string * binding) list

let lookup env v =
  match List.assoc_opt v env with
  | Some b -> b
  | None -> cerr "unbound variable %s (checker should have caught this)" v

let lookup_int env v =
  match lookup env v with
  | Bint r -> r
  | _ -> cerr "%s is not an int variable" v

let lookup_array env a =
  match lookup env a with
  | Barray (b, ty) -> (b, ty)
  | _ -> cerr "%s is not an array" a

let ty_env env : Check.env =
  List.fold_left
    (fun m (name, b) ->
      let ty : Ast.ty =
        match b with
        | Bint _ -> Tint
        | Bfloat _ -> Tfloat
        | Barray (_, ty) -> ty
      in
      (* first binding (most recent) wins *)
      if Check.Env.mem name m then m else Check.Env.add name ty m)
    Check.Env.empty env

let type_of ctx env e =
  ignore ctx;
  Check.type_of_expr (ty_env env) e

(* ------------------------------------------------------------------ *)
(* Scalar expression compilation                                       *)

let subscript_chains (sub : Ast.expr) = Analysis.has_index sub

(* chain flag for scalar loads: the subscript embeds another load, or
   mentions a load-tainted scalar (see [ctx.tainted]) *)
let scalar_chain ctx (sub : Ast.expr) =
  Analysis.has_index sub || Analysis.mentions_any ctx.tainted sub

let taints ctx (e : Ast.expr) =
  ctx.control_taint || Analysis.has_index e || Analysis.mentions_any ctx.tainted e

let note_assign_taint ctx v (e : Ast.expr) =
  if taints ctx e then ctx.tainted <- Analysis.S.add v ctx.tainted
  else ctx.tainted <- Analysis.S.remove v ctx.tainted

let rec expr_i ctx env (e : Ast.expr) : Isa.si_reg =
  match e with
  | Int_lit n -> iconst ctx n
  | Var v -> lookup_int env v
  | Index (a, sub) ->
      let buf, _ = lookup_array env a in
      let idx = expr_i ctx env sub in
      let dst = fresh_si ctx in
      instr ctx (Loadi { dst; buf; idx; chain = scalar_chain ctx sub });
      dst
  | Un (Neg, a) ->
      let ra = expr_i ctx env a in
      let zero = iconst ctx 0 in
      let dst = fresh_si ctx in
      instr ctx (Ibin (Isub, dst, zero, ra));
      dst
  | Un (Not, a) ->
      let ra = expr_i ctx env a in
      let zero = iconst ctx 0 in
      let dst = fresh_si ctx in
      instr ctx (Icmp (Ceq, dst, ra, zero));
      dst
  | Call ("int", [ a ]) ->
      let ra = expr_f ctx env a in
      let dst = fresh_si ctx in
      instr ctx (Ioff (dst, ra));
      dst
  | Call (f, _) -> cerr "call to %s does not produce an int" f
  | Float_lit _ -> cerr "float literal in int context"
  | Bin (op, a, b) -> (
      let cmp_like (c : Isa.cmp) =
        match type_of ctx env a with
        | Tfloat ->
            let ra = expr_f ctx env a and rb = expr_f ctx env b in
            let dst = fresh_si ctx in
            instr ctx (Fcmp (c, dst, ra, rb));
            dst
        | _ ->
            let ra = expr_i ctx env a and rb = expr_i ctx env b in
            let dst = fresh_si ctx in
            instr ctx (Icmp (c, dst, ra, rb));
            dst
      in
      let arith (op : Isa.ibin) =
        let ra = expr_i ctx env a and rb = expr_i ctx env b in
        let dst = fresh_si ctx in
        instr ctx (Ibin (op, dst, ra, rb));
        dst
      in
      let logical (op : Isa.ibin) =
        (* normalize both sides to 0/1 and combine bitwise *)
        let norm e =
          let r = expr_i ctx env e in
          let zero = iconst ctx 0 in
          let d = fresh_si ctx in
          instr ctx (Icmp (Cne, d, r, zero));
          d
        in
        let ra = norm a in
        let rb = norm b in
        let dst = fresh_si ctx in
        instr ctx (Ibin (op, dst, ra, rb));
        dst
      in
      match op with
      | Add -> arith Iadd
      | Sub -> arith Isub
      | Mul -> arith Imul
      | Div -> arith Idiv
      | Mod -> arith Imod
      | Lt -> cmp_like Clt
      | Le -> cmp_like Cle
      | Gt -> cmp_like Cgt
      | Ge -> cmp_like Cge
      | Eq -> cmp_like Ceq
      | Ne -> cmp_like Cne
      | And -> logical Iand
      | Or -> logical Ior)

and expr_f ctx env (e : Ast.expr) : Isa.sf_reg =
  match e with
  | Float_lit x -> fconst ctx x
  | Var v -> (
      match lookup env v with
      | Bfloat r -> r
      | _ -> cerr "%s is not a float variable" v)
  | Index (a, sub) ->
      let buf, _ = lookup_array env a in
      let idx = expr_i ctx env sub in
      let dst = fresh_sf ctx in
      instr ctx (Loadf { dst; buf; idx; chain = scalar_chain ctx sub });
      dst
  | Un (Neg, a) ->
      let ra = expr_f ctx env a in
      let dst = fresh_sf ctx in
      instr ctx (Funop (Fneg, dst, ra));
      dst
  | Un (Not, _) -> cerr "! in float context"
  | Int_lit _ -> cerr "int literal in float context (use float())"
  (* fast-math: 1.0 / sqrtf(x) becomes the rsqrt approximation *)
  | Bin (Div, Float_lit 1.0, Call ("sqrtf", [ x ])) when ctx.flags.fast_math ->
      let rx = expr_f ctx env x in
      let dst = fresh_sf ctx in
      instr ctx (Funop (Frsqrt, dst, rx));
      dst
  (* FMA contraction *)
  | Bin (Add, Bin (Mul, a, b), c) when ctx.flags.fma ->
      let ra = expr_f ctx env a and rb = expr_f ctx env b and rc = expr_f ctx env c in
      let dst = fresh_sf ctx in
      instr ctx (Fma (dst, ra, rb, rc));
      dst
  | Bin (Add, c, Bin (Mul, a, b)) when ctx.flags.fma ->
      let ra = expr_f ctx env a and rb = expr_f ctx env b and rc = expr_f ctx env c in
      let dst = fresh_sf ctx in
      instr ctx (Fma (dst, ra, rb, rc));
      dst
  | Bin (op, a, b) ->
      let fb : Isa.fbin =
        match op with
        | Add -> Fadd | Sub -> Fsub | Mul -> Fmul | Div -> Fdiv
        | _ -> cerr "operator %s in float context" (Ast.binop_name op)
      in
      let ra = expr_f ctx env a and rb = expr_f ctx env b in
      let dst = fresh_sf ctx in
      instr ctx (Fbin (fb, dst, ra, rb));
      dst
  | Call ("float", [ a ]) ->
      let ra = expr_i ctx env a in
      let dst = fresh_sf ctx in
      instr ctx (Fofi (dst, ra));
      dst
  | Call ("fminf", [ a; b ]) ->
      let ra = expr_f ctx env a and rb = expr_f ctx env b in
      let dst = fresh_sf ctx in
      instr ctx (Fbin (Fmin, dst, ra, rb));
      dst
  | Call ("fmaxf", [ a; b ]) ->
      let ra = expr_f ctx env a and rb = expr_f ctx env b in
      let dst = fresh_sf ctx in
      instr ctx (Fbin (Fmax, dst, ra, rb));
      dst
  | Call (f, [ a ]) ->
      let un : Isa.funop =
        match f with
        | "sqrtf" -> Fsqrt
        | "rsqrtf" -> Frsqrt
        | "expf" -> Fexp
        | "logf" -> Flog
        | "fabsf" -> Fabs
        | "floorf" -> Ffloor
        | _ -> cerr "unknown float function %s" f
      in
      let ra = expr_f ctx env a in
      let dst = fresh_sf ctx in
      instr ctx (Funop (un, dst, ra));
      dst
  | Call (f, _) -> cerr "bad arity for %s" f

(* ------------------------------------------------------------------ *)
(* Vector expression compilation                                       *)

(* Vector compilation environment for one vectorized loop body. *)
type vctx = {
  c : ctx;
  env : env; (* scalar bindings visible around the loop *)
  loop_var : string;
  i_scalar : Isa.si_reg; (* current base iteration (lane 0) *)
  vi_lanes : Isa.vi_reg; (* broadcast(i) + iota, refreshed per iteration *)
  varying : Analysis.S.t; (* scalars assigned in the body *)
  mutable vbind : (string * vbinding) list; (* lane-valued bindings *)
  (* loop-invariant code motion: constant and invariant-scalar broadcasts
     are emitted once in the loop preheader and cached here *)
  mutable pre : Isa.instr list; (* preheader, reversed *)
  mutable lit_f : (float * Isa.vf_reg) list;
  mutable lit_i : (int * Isa.vi_reg) list;
  mutable inv_f : (string * Isa.vf_reg) list;
  mutable inv_i : (string * Isa.vi_reg) list;
  stored_arrays : Analysis.S.t; (* arrays written in the body (alias barrier) *)
  mutable inv_load_f : ((string * Ast.expr) * Isa.vf_reg) list;
  mutable inv_load_i : ((string * Ast.expr) * Isa.vi_reg) list;
  mutable inv_base : (Ast.expr * Isa.si_reg) list; (* hoisted subscript bases *)
}

and vbinding = Vint of Isa.vi_reg | Vfloat of Isa.vf_reg

let vlookup vc v = List.assoc_opt v vc.vbind

let pre_emit vc i = vc.pre <- i :: vc.pre

(* broadcast of a float literal, hoisted to the preheader *)
let vlit_f vc x =
  match List.assoc_opt x vc.lit_f with
  | Some r -> r
  | None ->
      let ctx = vc.c in
      let s = fresh_sf ctx in
      pre_emit vc (Fconst (s, x));
      let r = fresh_vf ctx in
      pre_emit vc (Vbroadcastf (r, s));
      vc.lit_f <- (x, r) :: vc.lit_f;
      r

let vlit_i vc n =
  match List.assoc_opt n vc.lit_i with
  | Some r -> r
  | None ->
      let ctx = vc.c in
      let s = fresh_si ctx in
      pre_emit vc (Iconst (s, n));
      let r = fresh_vi ctx in
      pre_emit vc (Vbroadcasti (r, s));
      vc.lit_i <- (n, r) :: vc.lit_i;
      r

(* broadcast of a loop-invariant scalar variable, hoisted to the preheader *)
let vinv_f vc v reg =
  match List.assoc_opt v vc.inv_f with
  | Some r -> r
  | None ->
      let r = fresh_vf vc.c in
      pre_emit vc (Vbroadcastf (r, reg));
      vc.inv_f <- (v, r) :: vc.inv_f;
      r

let vinv_i vc v reg =
  match List.assoc_opt v vc.inv_i with
  | Some r -> r
  | None ->
      let r = fresh_vi vc.c in
      pre_emit vc (Vbroadcasti (r, reg));
      vc.inv_i <- (v, r) :: vc.inv_i;
      r

(* Classify a subscript relative to the vectorized loop. *)
let vsubscript vc sub = Analysis.classify_subscript ~loop_var:vc.loop_var ~varying:vc.varying sub

let rec vexpr_i vc (e : Ast.expr) : Isa.vi_reg =
  let ctx = vc.c in
  match e with
  | Var v when v = vc.loop_var -> vc.vi_lanes
  | Var v -> (
      match vlookup vc v with
      | Some (Vint r) -> r
      | Some (Vfloat _) -> cerr "%s is not an int variable" v
      | None ->
          (* loop-invariant scalar: broadcast hoisted to the preheader *)
          vinv_i vc v (lookup_int vc.env v))
  | Int_lit n -> vlit_i vc n
  | Float_lit _ -> cerr "float literal in int context"
  | Un (Neg, a) ->
      let ra = vexpr_i vc a in
      let zero = vlit_i vc 0 in
      let dst = fresh_vi ctx in
      instr ctx (Vibin (Isub, dst, zero, ra));
      dst
  | Un (Not, a) ->
      let m = vexpr_m vc a in
      let notm = fresh_vm ctx in
      instr ctx (Mnot (notm, m));
      mask_to_int vc notm
  | Call ("int", [ a ]) ->
      let ra = vexpr_f vc a in
      let dst = fresh_vi ctx in
      instr ctx (Vioff (dst, ra));
      dst
  | Call (f, _) -> cerr "call to %s does not produce an int" f
  | Bin ((Lt | Le | Gt | Ge | Eq | Ne | And | Or), _, _) ->
      let m = vexpr_m vc e in
      mask_to_int vc m
  | Bin (op, a, b) ->
      let ib : Isa.ibin =
        match op with
        | Add -> Iadd | Sub -> Isub | Mul -> Imul | Div -> Idiv | Mod -> Imod
        (* unreachable: the preceding arm consumed every comparison and
           logical operator, leaving only the arithmetic ones above *)
        | _ -> assert false
      in
      let ra = vexpr_i vc a and rb = vexpr_i vc b in
      let dst = fresh_vi ctx in
      instr ctx (Vibin (ib, dst, ra, rb));
      dst
  | Index (a, sub) -> vload_int vc ~array:a ~sub ~mask:None

and mask_to_int vc m =
  let ctx = vc.c in
  let ones = vlit_i vc 1 in
  let zeros = vlit_i vc 0 in
  let dst = fresh_vi ctx in
  instr ctx (Vselecti (dst, m, ones, zeros));
  dst

(* Expression typing inside a vector body: body-local (lane-valued)
   bindings shadow the surrounding scalar environment. *)
and vtype_of vc (e : Ast.expr) : Ast.ty =
  let base = ty_env vc.env in
  let tenv =
    List.fold_left
      (fun m (name, b) ->
        let ty : Ast.ty = match b with Vint _ -> Tint | Vfloat _ -> Tfloat in
        Check.Env.add name ty m)
      base vc.vbind
  in
  let tenv = Check.Env.add vc.loop_var Ast.Tint tenv in
  Check.type_of_expr tenv e

and vexpr_m vc (e : Ast.expr) : Isa.vm_reg =
  let ctx = vc.c in
  match e with
  | Bin ((Lt | Le | Gt | Ge | Eq | Ne) as op, a, b) -> (
      let c : Isa.cmp =
        match op with
        | Lt -> Clt | Le -> Cle | Gt -> Cgt | Ge -> Cge | Eq -> Ceq | Ne -> Cne
        (* unreachable: [op] is bound by the comparison-only pattern above *)
        | _ -> assert false
      in
      match vtype_of vc a with
      | Tfloat ->
          let ra = vexpr_f vc a and rb = vexpr_f vc b in
          let dst = fresh_vm ctx in
          instr ctx (Vfcmp (c, dst, ra, rb));
          dst
      | _ ->
          let ra = vexpr_i vc a and rb = vexpr_i vc b in
          let dst = fresh_vm ctx in
          instr ctx (Vicmp (c, dst, ra, rb));
          dst)
  | Bin (And, a, b) ->
      let ma = vexpr_m vc a and mb = vexpr_m vc b in
      let dst = fresh_vm ctx in
      instr ctx (Mand (dst, ma, mb));
      dst
  | Bin (Or, a, b) ->
      let ma = vexpr_m vc a and mb = vexpr_m vc b in
      let dst = fresh_vm ctx in
      instr ctx (Mor (dst, ma, mb));
      dst
  | Un (Not, a) ->
      let ma = vexpr_m vc a in
      let dst = fresh_vm ctx in
      instr ctx (Mnot (dst, ma));
      dst
  | e ->
      (* arbitrary int expression as condition: <> 0 *)
      let ra = vexpr_i vc e in
      let zeros = vlit_i vc 0 in
      let dst = fresh_vm ctx in
      instr ctx (Vicmp (Cne, dst, ra, zeros));
      dst

and vector_indices vc ~stride ~base_idx =
  (* per-lane element indices: base_idx + iota * stride *)
  let ctx = vc.c in
  let iota = fresh_vi ctx in
  instr ctx (Viota iota);
  let sreg = iconst ctx stride in
  let vs = fresh_vi ctx in
  instr ctx (Vbroadcasti (vs, sreg));
  let scaled = fresh_vi ctx in
  instr ctx (Vibin (Imul, scaled, iota, vs));
  let vbase = fresh_vi ctx in
  instr ctx (Vbroadcasti (vbase, base_idx));
  let idx = fresh_vi ctx in
  instr ctx (Vibin (Iadd, idx, vbase, scaled));
  idx

(* Scalar index of lane 0 for an affine subscript [stride * i + base]. The
   base is loop-invariant by construction, so its computation is hoisted to
   the preheader (strength reduction of addressing). *)
and affine_lane0 vc ~stride ~base =
  let ctx = vc.c in
  let base_r =
    match List.assoc_opt base vc.inv_base with
    | Some r -> r
    | None ->
        let saved = ctx.code in
        ctx.code <- [];
        let r = expr_i ctx vc.env base in
        let pre_code = ctx.code in
        ctx.code <- saved;
        List.iter
          (* unreachable [_]: [expr_i] emits instructions only, never
             control statements, so the captured block is all [Isa.I] *)
          (fun st -> match st with Isa.I i -> pre_emit vc i | _ -> assert false)
          (List.rev pre_code);
        vc.inv_base <- (base, r) :: vc.inv_base;
        r
  in
  if stride = 1 then begin
    let dst = fresh_si ctx in
    instr ctx (Ibin (Iadd, dst, vc.i_scalar, base_r));
    dst
  end
  else begin
    let k = iconst ctx stride in
    let scaled = fresh_si ctx in
    instr ctx (Ibin (Imul, scaled, vc.i_scalar, k));
    let dst = fresh_si ctx in
    instr ctx (Ibin (Iadd, dst, scaled, base_r));
    dst
  end

and vload_float vc ~array ~sub ~mask : Isa.vf_reg =
  let ctx = vc.c in
  let buf, _ = lookup_array vc.env array in
  let dst = fresh_vf ctx in
  (match vsubscript vc sub with
  | Sub_invariant when not (Analysis.S.mem array vc.stored_arrays) -> (
      (* loop-invariant load from a read-only array: hoist to the preheader
         (load once, broadcast once) *)
      match List.assoc_opt (array, sub) vc.inv_load_f with
      | Some r -> instr ctx (Vmovf (dst, r))
      | None ->
          let saved = ctx.code in
          ctx.code <- [];
          let idx = expr_i ctx vc.env sub in
          let pre_code = ctx.code in
          ctx.code <- saved;
          List.iter
            (* unreachable [_]: [expr_i] emits instructions only *)
            (fun st -> match st with Isa.I i -> pre_emit vc i | _ -> assert false)
            (List.rev pre_code);
          let s = fresh_sf ctx in
          pre_emit vc (Loadf { dst = s; buf; idx; chain = subscript_chains sub });
          let r = fresh_vf ctx in
          pre_emit vc (Vbroadcastf (r, s));
          vc.inv_load_f <- ((array, sub), r) :: vc.inv_load_f;
          instr ctx (Vmovf (dst, r)))
  | Sub_invariant ->
      let idx = expr_i ctx vc.env sub in
      let s = fresh_sf ctx in
      instr ctx (Loadf { dst = s; buf; idx; chain = subscript_chains sub });
      instr ctx (Vbroadcastf (dst, s))
  | Sub_affine (1, base) ->
      let idx = affine_lane0 vc ~stride:1 ~base in
      instr ctx (Vloadf { dst; buf; idx; mask })
  | Sub_affine (k, base) when mask = None ->
      let idx = affine_lane0 vc ~stride:k ~base in
      let stride = iconst ctx k in
      instr ctx (Vloadf_strided { dst; buf; idx; stride })
  | Sub_affine (k, base) ->
      (* masked strided access: fall back to a gather *)
      let base_idx = affine_lane0 vc ~stride:k ~base in
      let idx = vector_indices vc ~stride:k ~base_idx in
      instr ctx (Vgatherf { dst; buf; idx; mask; chain = false })
  | Sub_complex ->
      let idx = vexpr_i vc sub in
      (* per-lane addresses are independent: lanes supply the MLP *)
      instr ctx (Vgatherf { dst; buf; idx; mask; chain = false }));
  dst

and vload_int vc ~array ~sub ~mask : Isa.vi_reg =
  let ctx = vc.c in
  let buf, _ = lookup_array vc.env array in
  let dst = fresh_vi ctx in
  (match vsubscript vc sub with
  | Sub_invariant when not (Analysis.S.mem array vc.stored_arrays) -> (
      match List.assoc_opt (array, sub) vc.inv_load_i with
      | Some r -> instr ctx (Vmovi (dst, r))
      | None ->
          let saved = ctx.code in
          ctx.code <- [];
          let idx = expr_i ctx vc.env sub in
          let pre_code = ctx.code in
          ctx.code <- saved;
          List.iter
            (* unreachable [_]: [expr_i] emits instructions only *)
            (fun st -> match st with Isa.I i -> pre_emit vc i | _ -> assert false)
            (List.rev pre_code);
          let s = fresh_si ctx in
          pre_emit vc (Loadi { dst = s; buf; idx; chain = subscript_chains sub });
          let r = fresh_vi ctx in
          pre_emit vc (Vbroadcasti (r, s));
          vc.inv_load_i <- ((array, sub), r) :: vc.inv_load_i;
          instr ctx (Vmovi (dst, r)))
  | Sub_invariant ->
      let idx = expr_i ctx vc.env sub in
      let s = fresh_si ctx in
      instr ctx (Loadi { dst = s; buf; idx; chain = subscript_chains sub });
      instr ctx (Vbroadcasti (dst, s))
  | Sub_affine (1, base) ->
      let idx = affine_lane0 vc ~stride:1 ~base in
      instr ctx (Vloadi { dst; buf; idx; mask })
  | Sub_affine (k, base) ->
      let base_idx = affine_lane0 vc ~stride:k ~base in
      let idx = vector_indices vc ~stride:k ~base_idx in
      instr ctx (Vgatheri { dst; buf; idx; mask; chain = false })
  | Sub_complex ->
      let idx = vexpr_i vc sub in
      instr ctx (Vgatheri { dst; buf; idx; mask; chain = false }));
  dst

and vexpr_f vc (e : Ast.expr) : Isa.vf_reg =
  let ctx = vc.c in
  match e with
  | Var v -> (
      match vlookup vc v with
      | Some (Vfloat r) -> r
      | Some (Vint _) -> cerr "%s is not a float variable" v
      | None ->
          let r =
            match lookup vc.env v with
            | Bfloat r -> r
            | _ -> cerr "%s is not a float variable" v
          in
          vinv_f vc v r)
  | Float_lit x -> vlit_f vc x
  | Int_lit _ -> cerr "int literal in float context (use float())"
  | Un (Neg, a) ->
      let ra = vexpr_f vc a in
      let dst = fresh_vf ctx in
      instr ctx (Vfunop (Fneg, dst, ra));
      dst
  | Un (Not, _) -> cerr "! in float context"
  | Bin (Div, Float_lit 1.0, Call ("sqrtf", [ x ])) when vc.c.flags.fast_math ->
      let rx = vexpr_f vc x in
      let dst = fresh_vf ctx in
      instr ctx (Vfunop (Frsqrt, dst, rx));
      dst
  | Bin (Add, Bin (Mul, a, b), c) when vc.c.flags.fma ->
      let ra = vexpr_f vc a and rb = vexpr_f vc b and rc = vexpr_f vc c in
      let dst = fresh_vf ctx in
      instr ctx (Vfma (dst, ra, rb, rc));
      dst
  | Bin (Add, c, Bin (Mul, a, b)) when vc.c.flags.fma ->
      let ra = vexpr_f vc a and rb = vexpr_f vc b and rc = vexpr_f vc c in
      let dst = fresh_vf ctx in
      instr ctx (Vfma (dst, ra, rb, rc));
      dst
  | Bin (op, a, b) ->
      let fb : Isa.fbin =
        match op with
        | Add -> Fadd | Sub -> Fsub | Mul -> Fmul | Div -> Fdiv
        | _ -> cerr "operator %s in float context" (Ast.binop_name op)
      in
      let ra = vexpr_f vc a and rb = vexpr_f vc b in
      let dst = fresh_vf ctx in
      instr ctx (Vfbin (fb, dst, ra, rb));
      dst
  | Call ("float", [ a ]) ->
      let ra = vexpr_i vc a in
      let dst = fresh_vf ctx in
      instr ctx (Vfofi (dst, ra));
      dst
  | Call ("fminf", [ a; b ]) ->
      let ra = vexpr_f vc a and rb = vexpr_f vc b in
      let dst = fresh_vf ctx in
      instr ctx (Vfbin (Fmin, dst, ra, rb));
      dst
  | Call ("fmaxf", [ a; b ]) ->
      let ra = vexpr_f vc a and rb = vexpr_f vc b in
      let dst = fresh_vf ctx in
      instr ctx (Vfbin (Fmax, dst, ra, rb));
      dst
  | Call (f, [ a ]) ->
      let un : Isa.funop =
        match f with
        | "sqrtf" -> Fsqrt
        | "rsqrtf" -> Frsqrt
        | "expf" -> Fexp
        | "logf" -> Flog
        | "fabsf" -> Fabs
        | "floorf" -> Ffloor
        | _ -> cerr "unknown float function %s" f
      in
      let ra = vexpr_f vc a in
      let dst = fresh_vf ctx in
      instr ctx (Vfunop (un, dst, ra));
      dst
  | Call (f, _) -> cerr "bad arity for %s" f
  | Index (a, sub) -> vload_float vc ~array:a ~sub ~mask:None

(* ------------------------------------------------------------------ *)
(* Vector statement compilation (with if-conversion)                   *)

let isa_red : Analysis.red_kind -> Isa.red = function
  | Rsum -> Rsum
  | Rmin -> Rmin
  | Rmax -> Rmax

(* neutral elements for reduction accumulators *)
let neutral_f : Analysis.red_kind -> float = function
  | Rsum -> 0.
  | Rmin -> infinity
  | Rmax -> neg_infinity

let neutral_i : Analysis.red_kind -> int = function
  | Rsum -> 0
  | Rmin -> max_int
  | Rmax -> min_int

(* Split a recognized reduction assignment [v = v (+) e] into the operator
   and the contributed expression. Must stay in sync with
   {!Analysis.reduction_of_assign}. *)
let reduction_rhs v (rhs : Ast.expr) : [ `Add | `Sub | `Min | `Max ] * Ast.expr =
  match rhs with
  | Bin (Add, Var x, e) when x = v -> (`Add, e)
  | Bin (Add, e, Var x) when x = v -> (`Add, e)
  | Bin (Sub, Var x, e) when x = v -> (`Sub, e)
  | Call ("fminf", [ Var x; e ]) when x = v -> (`Min, e)
  | Call ("fminf", [ e; Var x ]) when x = v -> (`Min, e)
  | Call ("fmaxf", [ Var x; e ]) when x = v -> (`Max, e)
  | Call ("fmaxf", [ e; Var x ]) when x = v -> (`Max, e)
  | _ -> cerr "assignment to %s is not a reduction update" v

type vloop_state = {
  vc : vctx;
  mutable cur_mask : Isa.vm_reg option;
  (* reduction accumulators: var -> (kind, acc binding) *)
  reductions : (string * (Analysis.red_kind * vbinding)) list;
}

let combine_mask vs m =
  match vs.cur_mask with
  | None -> m
  | Some outer ->
      let ctx = vs.vc.c in
      let dst = fresh_vm ctx in
      instr ctx (Mand (dst, outer, m));
      dst

(* Register coalescing: a move into a variable can be elided by binding the
   variable directly to the right-hand side's register — but only when that
   register is private to this expression (not a cached broadcast, another
   variable's register, or the lane-index vector). *)
let shared_vf vc (r : Isa.vf_reg) =
  List.exists (fun (_, b) -> match b with Vfloat x -> x = r | Vint _ -> false) vc.vbind
  || List.exists (fun (_, x) -> x = r) vc.lit_f
  || List.exists (fun (_, x) -> x = r) vc.inv_f
  || List.exists (fun (_, x) -> x = r) vc.inv_load_f

let shared_vi vc (r : Isa.vi_reg) =
  vc.vi_lanes = r
  || List.exists (fun (_, b) -> match b with Vint x -> x = r | Vfloat _ -> false) vc.vbind
  || List.exists (fun (_, x) -> x = r) vc.lit_i
  || List.exists (fun (_, x) -> x = r) vc.inv_i
  || List.exists (fun (_, x) -> x = r) vc.inv_load_i

let rec compile_vstmt vs (s : Ast.stmt) =
  let vc = vs.vc in
  let ctx = vc.c in
  match s with
  | Decl (v, ty, init) ->
      let b =
        match ty with
        | Tfloat -> (
            match init with
            | Some e ->
                let ve = vexpr_f vc e in
                if shared_vf vc ve then begin
                  let r = fresh_vf ctx in
                  instr ctx (Vmovf (r, ve));
                  Vfloat r
                end
                else Vfloat ve
            | None -> Vfloat (fresh_vf ctx))
        | Tint -> (
            match init with
            | Some e ->
                let ve = vexpr_i vc e in
                if shared_vi vc ve then begin
                  let r = fresh_vi ctx in
                  instr ctx (Vmovi (r, ve));
                  Vint r
                end
                else Vint ve
            | None -> Vint (fresh_vi ctx))
        | _ -> cerr "array declaration in vector body"
      in
      vc.vbind <- (v, b) :: vc.vbind
  | Assign (v, rhs) -> (
      match List.assoc_opt v vs.reductions with
      | Some (_kind, acc) -> compile_vreduction vs v acc rhs
      | None -> compile_vassign vs v rhs)
  | Store (a, sub, rhs, _) -> compile_vstore vs ~array:a ~sub ~rhs
  | If (c, t, e) ->
      let mc = vexpr_m vc c in
      let m_then = combine_mask vs mc in
      let saved = vs.cur_mask in
      vs.cur_mask <- Some m_then;
      List.iter (compile_vstmt vs) t;
      (if e <> [] then begin
         let notc = fresh_vm ctx in
         instr ctx (Mnot (notc, mc));
         let m_else = match saved with
           | None -> notc
           | Some outer ->
               let dst = fresh_vm ctx in
               instr ctx (Mand (dst, outer, notc));
               dst
         in
         vs.cur_mask <- Some m_else;
         List.iter (compile_vstmt vs) e
       end);
      vs.cur_mask <- saved
  | While _ | For _ -> cerr "loop inside vectorized body (analysis bug)"

and compile_vassign vs v rhs =
  let vc = vs.vc in
  let ctx = vc.c in
  let ty =
    match vlookup vc v with
    | Some (Vfloat _) -> Ast.Tfloat
    | Some (Vint _) -> Ast.Tint
    | None -> type_of ctx vc.env (Ast.Var v)
  in
  match ty with
  | Tfloat ->
      let ve = vexpr_f vc rhs in
      (match (vs.cur_mask, vlookup vc v) with
      | None, _ when not (shared_vf vc ve) ->
          (* rebind: the move coalesces away *)
          vc.vbind <- (v, Vfloat ve) :: List.remove_assoc v vc.vbind
      | None, Some (Vfloat target) -> instr ctx (Vmovf (target, ve))
      | None, (Some (Vint _) | None) ->
          let r = fresh_vf ctx in
          instr ctx (Vmovf (r, ve));
          vc.vbind <- (v, Vfloat r) :: List.remove_assoc v vc.vbind
      | Some m, Some (Vfloat target) -> instr ctx (Vselectf (target, m, ve, target))
      | Some m, (Some (Vint _) | None) ->
          let r = fresh_vf ctx in
          instr ctx (Vselectf (r, m, ve, r));
          vc.vbind <- (v, Vfloat r) :: List.remove_assoc v vc.vbind)
  | Tint ->
      let ve = vexpr_i vc rhs in
      (match (vs.cur_mask, vlookup vc v) with
      | None, _ when not (shared_vi vc ve) ->
          vc.vbind <- (v, Vint ve) :: List.remove_assoc v vc.vbind
      | None, Some (Vint target) -> instr ctx (Vmovi (target, ve))
      | None, (Some (Vfloat _) | None) ->
          let r = fresh_vi ctx in
          instr ctx (Vmovi (r, ve));
          vc.vbind <- (v, Vint r) :: List.remove_assoc v vc.vbind
      | Some m, Some (Vint target) -> instr ctx (Vselecti (target, m, ve, target))
      | Some m, (Some (Vfloat _) | None) ->
          let r = fresh_vi ctx in
          instr ctx (Vselecti (r, m, ve, r));
          vc.vbind <- (v, Vint r) :: List.remove_assoc v vc.vbind)
  | _ -> cerr "assignment to array %s" v

and compile_vreduction vs v acc rhs =
  let vc = vs.vc in
  let ctx = vc.c in
  let op, e = reduction_rhs v rhs in
  match acc with
  | Vfloat accr ->
      let ve = vexpr_f vc e in
      let combined = fresh_vf ctx in
      (match op with
      | `Add -> instr ctx (Vfbin (Fadd, combined, accr, ve))
      | `Sub -> instr ctx (Vfbin (Fsub, combined, accr, ve))
      | `Min -> instr ctx (Vfbin (Fmin, combined, accr, ve))
      | `Max -> instr ctx (Vfbin (Fmax, combined, accr, ve)));
      (match vs.cur_mask with
      | None -> instr ctx (Vmovf (accr, combined))
      | Some m -> instr ctx (Vselectf (accr, m, combined, accr)))
  | Vint accr ->
      let ve = vexpr_i vc e in
      let combined = fresh_vi ctx in
      (match op with
      | `Add -> instr ctx (Vibin (Iadd, combined, accr, ve))
      | `Sub -> instr ctx (Vibin (Isub, combined, accr, ve))
      | `Min -> instr ctx (Vibin (Imin, combined, accr, ve))
      | `Max -> instr ctx (Vibin (Imax, combined, accr, ve)));
      (match vs.cur_mask with
      | None -> instr ctx (Vmovi (accr, combined))
      | Some m -> instr ctx (Vselecti (accr, m, combined, accr)))

and compile_vstore vs ~array ~sub ~rhs =
  let vc = vs.vc in
  let ctx = vc.c in
  let buf, aty = lookup_array vc.env array in
  let mask = vs.cur_mask in
  match Ast.elt_ty_opt aty with
  | Some Tfloat -> (
      let ve = vexpr_f vc rhs in
      match vsubscript vc sub with
      | Sub_affine (1, base) ->
          let idx = affine_lane0 vc ~stride:1 ~base in
          instr ctx (Vstoref { buf; idx; src = ve; mask })
      | Sub_affine (k, base) when mask = None ->
          let idx = affine_lane0 vc ~stride:k ~base in
          let stride = iconst ctx k in
          instr ctx (Vstoref_strided { buf; idx; stride; src = ve })
      | Sub_affine (k, base) ->
          let base_idx = affine_lane0 vc ~stride:k ~base in
          let idx = vector_indices vc ~stride:k ~base_idx in
          instr ctx (Vscatterf { buf; idx; src = ve; mask })
      | Sub_invariant | Sub_complex ->
          let idx = vexpr_i vc sub in
          instr ctx (Vscatterf { buf; idx; src = ve; mask }))
  | Some Tint -> (
      let ve = vexpr_i vc rhs in
      match vsubscript vc sub with
      | Sub_affine (1, base) ->
          let idx = affine_lane0 vc ~stride:1 ~base in
          instr ctx (Vstorei { buf; idx; src = ve; mask })
      | Sub_affine (k, base) ->
          let base_idx = affine_lane0 vc ~stride:k ~base in
          let idx = vector_indices vc ~stride:k ~base_idx in
          instr ctx (Vscatteri { buf; idx; src = ve; mask })
      | Sub_invariant | Sub_complex ->
          let idx = vexpr_i vc sub in
          instr ctx (Vscatteri { buf; idx; src = ve; mask }))
  | Some _ | None ->
      cerr "internal error: vector store to %s, which is not an array \
            (checker invariant violated)" array

(* ------------------------------------------------------------------ *)
(* Scalar statement compilation and the vectorized-loop driver         *)

(* Human-readable loop label for the vectorization report. *)
let loop_label (loop : Ast.for_loop) =
  Fmt.str "for(%s=%a;%s<%a)" loop.index Ast.pp_expr loop.init loop.index
    Ast.pp_expr loop.limit

(* Stable attribution label for the profiler: index variable plus the
   source span the parser stamped. Keyed on the span (not the bounds) so
   the label survives the parallelizer's `for(i=__my_lo;...)` chunk
   rewrite and names the vector main loop, its remainder and the scalar
   fallback identically. *)
let region_label (loop : Ast.for_loop) =
  if loop.span = Diag.no_span then Fmt.str "for(%s)" loop.index
  else Fmt.str "for(%s) L%d-%d" loop.index loop.span.first_line loop.span.last_line

(* Abstract taint-only walk of a block (no code emitted): used as a
   pre-pass before compiling loop bodies so that loop-carried pointer
   chasing (node = f(load); ...; load a[node] on the next iteration) is
   visible to the chain analysis. *)
let rec taint_prepass ctx (b : Ast.block) =
  List.iter
    (fun (st : Ast.stmt) ->
      match st with
      | Decl (v, _, Some e) | Assign (v, e) -> note_assign_taint ctx v e
      | Decl (_, _, None) | Store _ -> ()
      | If (c, t, e) ->
          let saved = ctx.control_taint in
          ctx.control_taint <- saved || taints ctx c;
          taint_prepass ctx t;
          taint_prepass ctx e;
          ctx.control_taint <- saved
      | While (c, body) ->
          let saved = ctx.control_taint in
          ctx.control_taint <- saved || taints ctx c;
          taint_prepass ctx body;
          taint_prepass ctx body;
          ctx.control_taint <- saved
      | For { body; _ } ->
          taint_prepass ctx body;
          taint_prepass ctx body)
    b

let rec compile_block ctx env (b : Ast.block) : unit =
  ignore (List.fold_left (fun env s -> compile_stmt ctx env s) env b)

and compile_stmt ctx env (s : Ast.stmt) : env =
  match s with
  | Decl (v, ty, init) -> (
      (match init with
      | Some e -> note_assign_taint ctx v e
      | None -> ());
      match ty with
      | Tint ->
          let r = fresh_si ctx in
          (match init with
          | Some e ->
              let re = expr_i ctx env e in
              instr ctx (Imov (r, re))
          | None -> ());
          (v, Bint r) :: env
      | Tfloat ->
          let r = fresh_sf ctx in
          (match init with
          | Some e ->
              let re = expr_f ctx env e in
              instr ctx (Fmov (r, re))
          | None -> ());
          (v, Bfloat r) :: env
      | _ -> cerr "local arrays are not supported")
  | Assign (v, e) -> (
      note_assign_taint ctx v e;
      (match lookup env v with
      | Bint r ->
          let re = expr_i ctx env e in
          instr ctx (Imov (r, re))
      | Bfloat r ->
          let re = expr_f ctx env e in
          instr ctx (Fmov (r, re))
      | Barray _ -> cerr "cannot assign to array %s" v);
      env)
  | Store (a, sub, e, _) ->
      let buf, aty = lookup_array env a in
      let idx = expr_i ctx env sub in
      (match Ast.elt_ty_opt aty with
      | Some Tfloat ->
          let src = expr_f ctx env e in
          instr ctx (Storef { buf; idx; src })
      | Some Tint ->
          let src = expr_i ctx env e in
          instr ctx (Storei { buf; idx; src })
      | Some _ | None ->
          cerr "internal error: store to %s, which is not an array \
                (checker invariant violated)" a);
      env
  | If (c, t, e) ->
      let rc = expr_i ctx env c in
      let saved = ctx.control_taint in
      ctx.control_taint <- saved || taints ctx c;
      let then_ = in_block ctx (fun () -> compile_block ctx env t) in
      let else_ = in_block ctx (fun () -> compile_block ctx env e) in
      ctx.control_taint <- saved;
      stmt ctx (Isa.If { cond = rc; then_; else_ });
      env
  | While (c, b) ->
      let cond = fresh_si ctx in
      let cond_block =
        in_block ctx (fun () ->
            let rc = expr_i ctx env c in
            instr ctx (Imov (cond, rc)))
      in
      let saved = ctx.control_taint in
      ctx.control_taint <- saved || taints ctx c;
      let body = in_block ctx (fun () -> compile_block ctx env b) in
      ctx.control_taint <- saved;
      stmt ctx (Isa.While { cond_block; cond; body });
      env
  | For loop ->
      if List.mem Ast.Parallel loop.pragmas && ctx.flags.parallelize then
        cerr "pragma parallel is only supported on top-level loops";
      compile_for ctx env loop;
      env

(* A for loop inside a phase: compile it (vectorized or scalar) inside a
   zero-cost [Region] scope so the profiler can attribute its cycles back
   to the source lines. *)
and compile_for ctx env (loop : Ast.for_loop) : unit =
  let body = in_block ctx (fun () -> compile_for_unregioned ctx env loop) in
  stmt ctx (Isa.Region { label = region_label loop; body })

(* Try the vectorizer first, fall back to the scalar loop (recording why),
   recursing into the body either way. *)
and compile_for_unregioned ctx env (loop : Ast.for_loop) : unit =
  let label = loop_label loop in
  if ctx.flags.vectorize then begin
    let force = List.mem Ast.Simd loop.pragmas in
    (* cost model: refuse short constant-trip loops unless forced *)
    let short_trip =
      match (loop.init, loop.limit) with
      | Ast.Int_lit lo, Ast.Int_lit hi -> hi - lo < 8
      | _ -> false
    in
    if short_trip && not force then begin
      ctx.report <- (label, Scalar "trip count too small to profit") :: ctx.report;
      compile_scalar_for ctx env loop
    end
    else
    match Analysis.vectorize_diag ~force loop with
    | Ok plan ->
        ctx.report <- (label, Vectorized) :: ctx.report;
        compile_vector_loop ctx env loop plan
    | Error d ->
        let reason = Diag.label d in
        if force then
          cerr "pragma simd on loop %s cannot be honored: %s" label reason;
        ctx.report <- (label, Scalar reason) :: ctx.report;
        compile_scalar_for ctx env loop
  end
  else compile_scalar_for ctx env loop

and compile_scalar_for ctx env (loop : Ast.for_loop) : unit =
  let idx = lookup_int env loop.index in
  let lo = expr_i ctx env loop.init in
  let hi = expr_i ctx env loop.limit in
  let step = iconst ctx loop.step in
  (* two abstract passes reach the taint fixpoint for loop-carried chains *)
  taint_prepass ctx loop.body;
  taint_prepass ctx loop.body;
  let body = in_block ctx (fun () -> compile_block ctx env loop.body) in
  stmt ctx (Isa.For { idx; lo; hi; step; body })

(* Strip-mined vector loop + scalar remainder. *)
and compile_vector_loop ctx env (loop : Ast.for_loop) (plan : Analysis.plan) : unit =
  let i_reg = lookup_int env loop.index in
  let lo = expr_i ctx env loop.init in
  let hi = expr_i ctx env loop.limit in
  let w = Isa.vector_width_reg in
  (* main_hi = lo + max(hi - lo, 0) / w * w *)
  let len = fresh_si ctx in
  instr ctx (Ibin (Isub, len, hi, lo));
  let zero = iconst ctx 0 in
  let len_pos = fresh_si ctx in
  instr ctx (Ibin (Imax, len_pos, len, zero));
  let q = fresh_si ctx in
  instr ctx (Ibin (Idiv, q, len_pos, w));
  let main_len = fresh_si ctx in
  instr ctx (Ibin (Imul, main_len, q, w));
  let main_hi = fresh_si ctx in
  instr ctx (Ibin (Iadd, main_hi, lo, main_len));
  (* reduction accumulators *)
  let reductions =
    List.filter_map
      (fun (v, cls) ->
        match (cls : Analysis.scalar_class) with
        | Reduction kind -> (
            match lookup env v with
            | Bfloat _ ->
                let acc = fresh_vf ctx in
                let n = fconst ctx (neutral_f kind) in
                instr ctx (Vbroadcastf (acc, n));
                Some (v, (kind, Vfloat acc))
            | Bint _ ->
                let acc = fresh_vi ctx in
                let n = iconst ctx (neutral_i kind) in
                instr ctx (Vbroadcasti (acc, n));
                Some (v, (kind, Vint acc))
            | Barray _ -> cerr "array %s cannot be a reduction" v)
        | Invariant | Private -> None)
      plan.scalars
  in
  (* vector main loop; constant/invariant broadcasts collected during body
     compilation land in the preheader (loop-invariant code motion) *)
  let lanes = fresh_vi ctx in
  let vc =
    {
      c = ctx;
      env;
      loop_var = loop.index;
      i_scalar = i_reg;
      vi_lanes = lanes;
      varying = Analysis.assigned_in_block loop.body;
      vbind = [];
      pre = [];
      lit_f = [];
      lit_i = [];
      inv_f = [];
      inv_i = [];
      stored_arrays =
        List.fold_left
          (fun acc (a : Analysis.array_access) ->
            if a.is_write then Analysis.S.add a.array acc else acc)
          Analysis.S.empty
          (Analysis.collect_accesses loop.body);
      inv_load_f = [];
      inv_load_i = [];
      inv_base = [];
    }
  in
  let body =
    in_block ctx (fun () ->
        (* lane indices for this iteration: i + iota *)
        let iota = fresh_vi ctx in
        instr ctx (Viota iota);
        let vbase = fresh_vi ctx in
        instr ctx (Vbroadcasti (vbase, i_reg));
        instr ctx (Vibin (Iadd, lanes, vbase, iota));
        let vs = { vc; cur_mask = None; reductions } in
        List.iter (compile_vstmt vs) loop.body)
  in
  List.iter (instr ctx) (List.rev vc.pre);
  stmt ctx (Isa.For { idx = i_reg; lo; hi = main_hi; step = w; body });
  (* fold vector accumulators into the scalar reduction variables *)
  List.iter
    (fun (v, (kind, acc)) ->
      match (acc, lookup env v) with
      | Vfloat accr, Bfloat vr ->
          let partial = fresh_sf ctx in
          instr ctx (Vreducef (isa_red kind, partial, accr));
          let combined = fresh_sf ctx in
          let op : Isa.fbin =
            match kind with Rsum -> Fadd | Rmin -> Fmin | Rmax -> Fmax
          in
          instr ctx (Fbin (op, combined, vr, partial));
          instr ctx (Fmov (vr, combined))
      | Vint accr, Bint vr ->
          let partial = fresh_si ctx in
          instr ctx (Vreducei (isa_red kind, partial, accr));
          let combined = fresh_si ctx in
          let op : Isa.ibin =
            match kind with Rsum -> Iadd | Rmin -> Imin | Rmax -> Imax
          in
          instr ctx (Ibin (op, combined, vr, partial));
          instr ctx (Imov (vr, combined))
      | _ -> cerr "reduction variable %s changed type" v)
    reductions;
  (* scalar remainder loop *)
  let one = iconst ctx 1 in
  let rem_body = in_block ctx (fun () -> compile_block ctx env loop.body) in
  stmt ctx (Isa.For { idx = i_reg; lo = main_hi; hi; step = one; body = rem_body })

(* ------------------------------------------------------------------ *)
(* Top level: phases, parallel loops, kernel entry                     *)

let flush_seq ctx phases =
  if ctx.code <> [] then begin
    phases := Isa.Seq (List.rev ctx.code) :: !phases;
    ctx.code <- []
  end

(* Spill/reload of top-level scalars around [Par] phases (registers are
   thread-private; buffers are the only cross-thread channel). *)
let spill_all ctx =
  List.iter
    (fun (b, slot) ->
      let idx = iconst ctx slot in
      match b with
      | Bint r -> instr ctx (Storei { buf = ctx.env_i; idx; src = r })
      | Bfloat r -> instr ctx (Storef { buf = ctx.env_f; idx; src = r })
      | Barray _ ->
          cerr "internal error: array binding in the spill list \
                (alloc_slot rejects arrays)")
    ctx.spill

let reload_all ctx =
  List.iter
    (fun (b, slot) ->
      let idx = iconst ctx slot in
      match b with
      | Bint dst -> instr ctx (Loadi { dst; buf = ctx.env_i; idx; chain = false })
      | Bfloat dst -> instr ctx (Loadf { dst; buf = ctx.env_f; idx; chain = false })
      | Barray _ ->
          cerr "internal error: array binding in the spill list \
                (alloc_slot rejects arrays)")
    ctx.spill

let compile_parallel_loop ctx env phases (loop : Ast.for_loop) : unit =
  let plan =
    match Analysis.parallel_diag loop with
    | Ok p -> p
    | Error d ->
        cerr "pragma parallel on loop %s cannot be honored: %s" (loop_label loop)
          (Diag.label d)
  in
  (* close the current sequential phase, spilling live scalars *)
  spill_all ctx;
  flush_seq ctx phases;
  (* ---- parallel phase ---- *)
  reload_all ctx;
  let lo = expr_i ctx env loop.init in
  let hi = expr_i ctx env loop.limit in
  let len = fresh_si ctx in
  instr ctx (Ibin (Isub, len, hi, lo));
  let zero = iconst ctx 0 in
  let len_pos = fresh_si ctx in
  instr ctx (Ibin (Imax, len_pos, len, zero));
  let nt = Isa.num_threads_reg and tid = Isa.thread_id_reg in
  let nt_m1 = fresh_si ctx in
  let one = iconst ctx 1 in
  instr ctx (Ibin (Isub, nt_m1, nt, one));
  let len_round = fresh_si ctx in
  instr ctx (Ibin (Iadd, len_round, len_pos, nt_m1));
  let chunk = fresh_si ctx in
  instr ctx (Ibin (Idiv, chunk, len_round, nt));
  let off = fresh_si ctx in
  instr ctx (Ibin (Imul, off, tid, chunk));
  let my_lo_raw = fresh_si ctx in
  instr ctx (Ibin (Iadd, my_lo_raw, lo, off));
  let my_lo = fresh_si ctx in
  instr ctx (Ibin (Imin, my_lo, my_lo_raw, hi));
  let my_hi_raw = fresh_si ctx in
  instr ctx (Ibin (Iadd, my_hi_raw, my_lo, chunk));
  let my_hi = fresh_si ctx in
  instr ctx (Ibin (Imin, my_hi, my_hi_raw, hi));
  (* private accumulators for reductions, starting at the neutral element *)
  let reductions =
    List.filter_map
      (fun (v, cls) ->
        match (cls : Analysis.scalar_class) with
        | Reduction kind ->
            let slot_base = ctx.red_slots * max_threads in
            if ctx.red_slots >= max_reductions then
              cerr "too many parallel reductions (max %d)" max_reductions;
            ctx.red_slots <- ctx.red_slots + 1;
            let local : binding =
              match lookup env v with
              | Bfloat _ ->
                  let r = fresh_sf ctx in
                  instr ctx (Fconst (r, neutral_f kind));
                  Bfloat r
              | Bint _ ->
                  let r = fresh_si ctx in
                  instr ctx (Iconst (r, neutral_i kind));
                  Bint r
              | Barray _ -> cerr "array %s cannot be a reduction" v
            in
            Some (v, kind, local, slot_base)
        | Invariant | Private -> None)
      plan.scalars
  in
  let env' =
    List.fold_left (fun env (v, _, local, _) -> (v, local) :: env) env reductions
  in
  let env' = ("__my_lo", Bint my_lo) :: ("__my_hi", Bint my_hi) :: env' in
  let chunk_loop =
    {
      loop with
      init = Ast.Var "__my_lo";
      limit = Ast.Var "__my_hi";
      pragmas = List.filter (fun p -> p <> Ast.Parallel) loop.pragmas;
    }
  in
  compile_for ctx env' chunk_loop;
  (* publish reduction partials *)
  List.iter
    (fun (_, _, local, slot_base) ->
      let base = iconst ctx slot_base in
      let idx = fresh_si ctx in
      instr ctx (Ibin (Iadd, idx, base, tid));
      match local with
      | Bfloat r -> instr ctx (Storef { buf = ctx.red_f; idx; src = r })
      | Bint r -> instr ctx (Storei { buf = ctx.red_i; idx; src = r })
      (* unreachable: [local] is constructed a few lines up as Bint or
         Bfloat only (the Barray case there raises) *)
      | Barray _ -> assert false)
    reductions;
  phases := Isa.Par (List.rev ctx.code) :: !phases;
  ctx.code <- [];
  (* ---- combine phase (sequential) ---- *)
  List.iter
    (fun (v, kind, _, slot_base) ->
      let t = fresh_si ctx in
      let lo = iconst ctx 0 in
      let one = iconst ctx 1 in
      let body =
        in_block ctx (fun () ->
            let base = iconst ctx slot_base in
            let idx = fresh_si ctx in
            instr ctx (Ibin (Iadd, idx, base, t));
            match lookup env v with
            | Bfloat vr ->
                let p = fresh_sf ctx in
                instr ctx (Loadf { dst = p; buf = ctx.red_f; idx; chain = false });
                let op : Isa.fbin =
                  match (kind : Analysis.red_kind) with
                  | Rsum -> Fadd
                  | Rmin -> Fmin
                  | Rmax -> Fmax
                in
                instr ctx (Fbin (op, vr, vr, p))
            | Bint vr ->
                let p = fresh_si ctx in
                instr ctx (Loadi { dst = p; buf = ctx.red_i; idx; chain = false });
                let op : Isa.ibin =
                  match (kind : Analysis.red_kind) with
                  | Rsum -> Iadd
                  | Rmin -> Imin
                  | Rmax -> Imax
                in
                instr ctx (Ibin (op, vr, vr, p))
            | Barray _ ->
                cerr "internal error: reduction variable %s is bound to an \
                      array in the combine phase" v)
      in
      stmt ctx (Isa.For { idx = t; lo; hi = Isa.num_threads_reg; step = one; body }))
    reductions

let compile ~(flags : flags) (kernel : Ast.kernel) : result =
  (match Check.check_kernel kernel with
  | () -> ()
  | exception Check.Type_error msg -> cerr "type error in %s: %s" kernel.kname msg);
  let body = fold_block kernel.body in
  (* buffer table: array params, scalar-parameter cells, spill + reduction *)
  let array_params = List.filter (fun (_, ty) -> Ast.is_array ty) kernel.params in
  let scalar_params = List.filter (fun (_, ty) -> not (Ast.is_array ty)) kernel.params in
  let elt_of : Ast.ty -> Isa.elt_ty = function
    | Tarr_float | Tfloat -> F32
    | Tarr_int | Tint -> I32
  in
  let buffer_decls =
    List.map (fun (n, ty) -> { Isa.buf_name = n; elt = elt_of ty }) array_params
    @ List.map (fun (n, ty) -> { Isa.buf_name = "__p_" ^ n; elt = elt_of ty }) scalar_params
    @ [ { Isa.buf_name = "__env_i"; elt = I32 };
        { Isa.buf_name = "__env_f"; elt = F32 };
        { Isa.buf_name = "__red_i"; elt = I32 };
        { Isa.buf_name = "__red_f"; elt = F32 } ]
  in
  let buf_index name =
    let rec go i = function
      | [] -> cerr "internal error: unknown buffer %s in %s" name kernel.kname
      | (d : Isa.buffer_decl) :: rest -> if d.buf_name = name then Isa.Buf i else go (i + 1) rest
    in
    go 0 buffer_decls
  in
  let ctx =
    {
      flags;
      si_next = Isa.reserved_si_regs;
      sf_next = 0;
      vf_next = 0;
      vi_next = 0;
      vm_next = 0;
      code = [];
      buffers = buffer_decls;
      report = [];
      spill = [];
      tainted = Analysis.S.empty;
      control_taint = false;
      env_i_slots = 0;
      env_f_slots = 0;
      red_slots = 0;
      env_i = buf_index "__env_i";
      env_f = buf_index "__env_f";
      red_i = buf_index "__red_i";
      red_f = buf_index "__red_f";
    }
  in
  let alloc_slot ctx (b : binding) =
    match b with
    | Bint _ ->
        let s = ctx.env_i_slots in
        ctx.env_i_slots <- s + 1;
        if s >= max_env_slots then cerr "too many top-level int scalars";
        s
    | Bfloat _ ->
        let s = ctx.env_f_slots in
        ctx.env_f_slots <- s + 1;
        if s >= max_env_slots then cerr "too many top-level float scalars";
        s
    | Barray _ -> cerr "internal error: spill slot requested for an array binding"
  in
  (* parameter bindings + prologue loads of scalar parameters *)
  let env = ref [] in
  List.iter
    (fun (n, ty) -> env := (n, Barray (buf_index n, ty)) :: !env)
    array_params;
  List.iter
    (fun (n, ty) ->
      let cell = buf_index ("__p_" ^ n) in
      let idx = iconst ctx 0 in
      let b : binding =
        match (ty : Ast.ty) with
        | Tint ->
            let r = fresh_si ctx in
            instr ctx (Loadi { dst = r; buf = cell; idx; chain = false });
            Bint r
        | Tfloat ->
            let r = fresh_sf ctx in
            instr ctx (Loadf { dst = r; buf = cell; idx; chain = false });
            Bfloat r
        (* unreachable: [scalar_params] filtered out array types above *)
        | _ -> assert false
      in
      let slot = alloc_slot ctx b in
      ctx.spill <- (b, slot) :: ctx.spill;
      env := (n, b) :: !env)
    scalar_params;
  (* top-level statement walk with phase splitting *)
  let phases = ref [] in
  List.iter
    (fun (s : Ast.stmt) ->
      match s with
      | Decl (v, ty, init) ->
          let b : binding =
            match (ty : Ast.ty) with
            | Tint -> Bint (fresh_si ctx)
            | Tfloat -> Bfloat (fresh_sf ctx)
            | _ -> cerr "local arrays are not supported"
          in
          (match (init, b) with
          | Some e, Bint r ->
              let re = expr_i ctx !env e in
              instr ctx (Imov (r, re))
          | Some e, Bfloat r ->
              let re = expr_f ctx !env e in
              instr ctx (Fmov (r, re))
          (* top-level scalars are spilled around every [Par] phase, so an
             uninitialized one would store a never-written register; give
             it a defined zero (what the VM's register file holds anyway) *)
          | None, Bint r -> instr ctx (Iconst (r, 0))
          | None, Bfloat r -> instr ctx (Fconst (r, 0.))
          (* unreachable: [b] is constructed just above as Bint or Bfloat *)
          | _ -> assert false);
          let slot = alloc_slot ctx b in
          ctx.spill <- (b, slot) :: ctx.spill;
          env := (v, b) :: !env
      | For loop when List.mem Ast.Parallel loop.pragmas && flags.parallelize ->
          compile_parallel_loop ctx !env phases loop
      | For loop when List.mem Ast.Parallel loop.pragmas ->
          (* threading disabled: strip the pragma and run sequentially *)
          env :=
            compile_stmt ctx !env
              (For { loop with pragmas = List.filter (fun p -> p <> Ast.Parallel) loop.pragmas })
      | s -> env := compile_stmt ctx !env s)
    body;
  flush_seq ctx phases;
  let program =
    {
      Isa.prog_name = Fmt.str "%s [%s]" kernel.kname (flags_name flags);
      buffers = Array.of_list buffer_decls;
      phases = List.rev !phases;
      regs =
        {
          si = ctx.si_next;
          sf = ctx.sf_next;
          vf = ctx.vf_next;
          vi = ctx.vi_next;
          vm = ctx.vm_next;
        };
    }
  in
  Isa.validate program;
  { program; vec_report = List.rev ctx.report }
