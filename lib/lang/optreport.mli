(** icc-[-qopt-report]-style per-loop optimization report for Cee sources.

    The pass replays the decisions the code generator makes at its full
    [O2+vec+par] setting — parallelization of top-level [pragma parallel]
    loops, the short-trip profitability check, vectorization legality —
    without generating any code, and collects every decision as a
    structured {!Diag.t} with a stable reason code. The dependence engine
    ({!Deps}) refines the report: rejections caused by a dependence are
    located at the blocking store (not the loop header) with the exact
    distance/direction vector named in a remark, loops whose legality
    rests on the driver's disjoint-buffer convention carry a [MAY_ALIAS]
    note, and pragma-asserted loops run the dependence-based
    {!Deps.race_diags} detector, so a provably unsafe assertion surfaces
    as a [RACE] warning right in the report. *)

type loop_report = {
  label : string;  (** [for(i=lo;i<hi)] — matches the vec-report label *)
  span : Diag.span;
  depth : int;  (** 0 for top-level loops, +1 per enclosing loop *)
  parallelized : bool;
  vectorized : bool;
  diags : Diag.t list;  (** rejections, race warnings, access remarks *)
}

type t = {
  kernel_name : string;
  errors : Diag.t list;  (** kernel-level parse/type errors (then no loops) *)
  loops : loop_report list;  (** in source order, nested loops after their parent *)
}

val analyze : Ast.kernel -> t
(** Analyze a parsed kernel. Never raises: type errors land in [errors]. *)

val analyze_src : ?name:string -> string -> t
(** Parse and analyze; lexical/syntax errors land in [errors] with [name]
    (default ["<input>"]) as the kernel name. *)

val pp : t Fmt.t
(** Render the report. Deterministic: identical input gives byte-identical
    output regardless of worker-domain count. *)
