(** Whole-nest loop dependence analysis with distance/direction vectors,
    an alias-aware may-dependence layer, and exported legality facts.

    The engine runs GCD and Banerjee-style bounds tests over affine
    subscripts (built on {!Analysis.classify_subscript} and
    {!Analysis.const_difference}), lifts scalar dependence classes from
    the existing plan, and derives per-loop legality facts — the precise
    version of the single-loop constant-distance test the code generator
    uses. Facts are exported as a stable JSON schema (["ninja-deps/v1"])
    for external tuners. The analysis is total: every parser-accepted
    kernel gets a verdict or a structured {!Diag.t}, never an exception.

    By default the engine assumes the driver's calling convention: distinct
    array parameters are bound to disjoint buffers ([noalias]). Passing
    [~noalias:false] turns every cross-array pair involving a write into a
    conservative may-dependence; when the disjointness assertion is
    load-bearing for a verdict, the loop carries a [MAY_ALIAS] note. *)

(** Dependence direction in iteration space, from the write's iteration to
    the other access's: [Dlt] means the write's iteration is earlier. *)
type direction = Dlt | Deq | Dgt | Dany

val direction_name : direction -> string
(** ["<"], ["="], [">"], ["*"] — the textbook direction-vector glyphs. *)

(** Dependence classes: flow (read-after-write), anti (write-after-read),
    output (write-after-write). *)
type dep_kind = Flow | Anti | Output

val dep_kind_name : dep_kind -> string
(** ["flow"] / ["anti"] / ["output"] — the stable JSON spelling. *)

type dep = {
  kind : dep_kind;
  array : string;  (** the written array *)
  other_array : string;  (** differs from [array] only for aliased pairs *)
  distance : int option;
      (** other-iteration minus write-iteration when provably constant *)
  direction : direction;
  carried : bool;  (** crosses iterations ([distance <> Some 0]) *)
  aliased : bool;  (** exists only under the may-alias assumption *)
  src_span : Diag.span;  (** the store statement *)
  dst_span : Diag.span;  (** the other access's statement, when known *)
}

type legality = {
  vectorizable : bool;
  parallelizable : bool;
  interchangeable : bool;  (** perfect 2-deep nests only; conservative *)
  peelable : bool;  (** every dependence has a known constant distance *)
  blocking_dep : (string * int option * direction) option;
      (** the first dependence that kills vectorization, when any *)
}

type loop_facts = {
  label : string;  (** [for(i=lo;i<hi)] — matches vec-report labels *)
  span : Diag.span;
  depth : int;  (** 0 for top-level loops, +1 per enclosing loop *)
  index : string;
  step : int;
  deps : dep list;  (** deduplicated, deterministically ordered *)
  scalars : (string * Analysis.scalar_class) list;
  scalar_diag : Diag.t option;  (** [SCALAR_CYCLE] when scalars fail *)
  mech_diag : Diag.t option;  (** [INNER_LOOP]/[COMPLEX_CONTROL] if any *)
  notes : Diag.t list;  (** [MAY_ALIAS] when the assertion is load-bearing *)
  legality : legality;
}

type t = {
  kernel_name : string;
  errors : Diag.t list;  (** kernel-level parse/type errors (then no loops) *)
  loops : loop_facts list;  (** source order, nested loops after parent *)
}

val analyze : ?noalias:bool -> Ast.kernel -> t
(** Analyze every loop of a parsed kernel ([noalias] defaults to [true]).
    Never raises: type errors land in [errors]. *)

val analyze_src : ?noalias:bool -> ?name:string -> string -> t
(** Parse and analyze; syntax errors land in [errors] with [name]
    (default ["<input>"]) as the kernel name. *)

val analyze_loop : ?noalias:bool -> ?depth:int -> Ast.for_loop -> loop_facts
(** Facts for one loop level (constant folding applied first). *)

val iteration_independent : loop_facts -> bool
(** The permutation-oracle contract: [true] only when executing the loop's
    iterations in any order — in particular reversed — must produce
    bit-identical results. Requires [parallelizable] and no floating-point
    reductions (reassociation is not bit-stable). *)

val relegalize : loop_facts -> deps:dep list -> loop_facts
(** Recompute the legality record from a substituted dependence list,
    keeping every other fact — the hook the mutation tests use to seed
    engine bugs (dropped alias deps, dropped anti deps, ...). *)

val legality_of :
  step_ok:bool ->
  mech_ok:bool ->
  scalars_ok:bool ->
  interchangeable:bool ->
  dep list ->
  legality
(** The pure legality derivation from a dependence list and the orthogonal
    per-loop verdicts; exposed for differential tests. *)

val race_diags : Ast.for_loop -> Diag.t list
(** The dependence-based race detector: *provable* cross-iteration
    conflicts in an asserted-independent loop as [RACE] warnings, located
    at the offending store. Subsumes the legacy syntactic checker
    ({!Analysis.race_diags}): loop-invariant store addresses and constant
    nonzero dependence distances are exactly its two proofs, and the
    equal-stride test applies no trip-count pruning. May-dependences are
    never reported, so legitimately asserted scatters stay quiet. *)

val to_json : t -> Ninja_report.Json.t
(** The stable export, schema ["ninja-deps/v1"]: kernel name, errors, and
    per-loop [{label; span; depth; index; step; scalars; scalar_diag;
    mech_diag; deps; notes; legality; iteration_independent}]. *)

val pp : t Fmt.t
(** Human-readable rendering for [ninja_cli analyze --deps].
    Deterministic. *)

val pp_dep : dep Fmt.t
(** One dependence vector, e.g. ["flow a distance 1 (<) at line 4"]. *)
