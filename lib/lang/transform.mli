(** Source-level loop transformations for the auto-tuner.

    Each transformation rewrites a parsed kernel into another legal Cee
    kernel — the tuner's candidate programs stay ordinary source the
    whole existing pipeline (typecheck, codegen, verifier, simulator)
    can process. Applicability is decided here with syntactic checks
    plus the dependence engine's legality facts ({!Deps.analyze_loop}),
    so the tuner never compiles a transform the analysis cannot prove
    safe:

    - {e interchange} swaps a perfect 2-deep loop nest when the
      dependence engine marks the outer loop [interchangeable] and the
      inner bounds are invariant in the outer index;
    - {e unroll} by a constant factor replicates an innermost loop body
      (sequential order preserved, so it is always semantics-preserving
      where the syntactic preconditions hold) with a scalar remainder
      loop.

    Transformations drop the pragmas of the loops they rewrite; the
    separate {!add_parallel_pragmas} pass re-annotates top-level loops
    the dependence engine proves parallelizable. *)

(** The tuner's transformation menu. [Id] is the identity (the untransformed
    source); [Unroll f] replicates innermost loop bodies [f] times. *)
type t = Id | Interchange | Unroll of int

val name : t -> string
(** Stable spelling used in reports and JSON: ["none"], ["interchange"],
    ["unroll2"], ... *)

val menu : t list
(** The fixed search space the tuner enumerates:
    [[Id; Interchange; Unroll 2; Unroll 4]]. *)

val loop_label : Ast.for_loop -> string
(** [for(i=lo;i<hi)] — the same rendering as the vec-report, opt-report
    and dependence-engine labels, so tuner decisions line up with them. *)

val apply : t -> Ast.kernel -> (Ast.kernel, string) result
(** Apply the transformation everywhere it is provably legal. [Error]
    with a human-readable reason when no loop qualifies ([Id] always
    succeeds); the kernel is returned unchanged otherwise untouched
    loops included. Deterministic. *)

val add_parallel_pragmas : Ast.kernel -> Ast.kernel * string list
(** Annotate every un-annotated top-level [for] loop that
    {!Deps.analyze_loop} proves [parallelizable] with [pragma parallel];
    returns the rewritten kernel and the labels of the loops annotated
    (empty when nothing changed). Programmer-asserted pragmas are kept. *)

val parallel_labels : Ast.kernel -> string list
(** Labels of the top-level loops currently carrying [pragma parallel] —
    what the tuner reports as "parallelized" for a candidate compiled
    with threading enabled. *)
