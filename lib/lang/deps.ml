(* Whole-nest dependence analysis over Cee loop nests: distance/direction
   vectors per array-access pair (GCD and Banerjee-style bounds tests over
   affine subscripts, with {!Analysis.classify_subscript} /
   {!Analysis.const_difference} as the base case), a conservative may-alias
   layer for driver-bound array parameters, scalar dependence classes
   lifted from the existing plan, and per-loop legality facts derived from
   the vectors. Everything is total: a parser-accepted kernel always gets
   a verdict or a structured diagnostic, never an exception. *)

type direction = Dlt | Deq | Dgt | Dany

let direction_name = function
  | Dlt -> "<"
  | Deq -> "="
  | Dgt -> ">"
  | Dany -> "*"

type dep_kind = Flow | Anti | Output

let dep_kind_name = function
  | Flow -> "flow"
  | Anti -> "anti"
  | Output -> "output"

type dep = {
  kind : dep_kind;
  array : string;
  other_array : string;
  distance : int option;
  direction : direction;
  carried : bool;
  aliased : bool;
  src_span : Diag.span;
  dst_span : Diag.span;
}

type legality = {
  vectorizable : bool;
  parallelizable : bool;
  interchangeable : bool;
  peelable : bool;
  blocking_dep : (string * int option * direction) option;
}

type loop_facts = {
  label : string;
  span : Diag.span;
  depth : int;
  index : string;
  step : int;
  deps : dep list;
  scalars : (string * Analysis.scalar_class) list;
  scalar_diag : Diag.t option;
  mech_diag : Diag.t option;
  notes : Diag.t list;
  legality : legality;
}

type t = {
  kernel_name : string;
  errors : Diag.t list;
  loops : loop_facts list;
}

(* Same rendering as Codegen.loop_label / Optreport.loop_label so facts
   line up with vec-reports and opt-reports. *)
let loop_label (loop : Ast.for_loop) =
  Fmt.str "for(%s=%a;%s<%a)" loop.index Ast.pp_expr loop.init loop.index
    Ast.pp_expr loop.limit

(* ------------------------------------------------------------------ *)
(* Access collection, with the enclosing statement's span              *)

type access = {
  a_array : string;
  a_sub : Ast.expr;
  a_write : bool;
  a_span : Diag.span;
}

let rec accesses_of_expr sp (e : Ast.expr) : access list =
  match e with
  | Int_lit _ | Float_lit _ | Var _ -> []
  | Index (a, i) ->
      { a_array = a; a_sub = i; a_write = false; a_span = sp }
      :: accesses_of_expr sp i
  | Bin (_, x, y) -> accesses_of_expr sp x @ accesses_of_expr sp y
  | Un (_, x) -> accesses_of_expr sp x
  | Call (_, args) -> List.concat_map (accesses_of_expr sp) args

let rec accesses_of_block (b : Ast.block) : access list =
  List.concat_map accesses_of_stmt b

and accesses_of_stmt (s : Ast.stmt) : access list =
  match s with
  | Decl (_, _, None) -> []
  | Decl (_, _, Some e) | Assign (_, e) -> accesses_of_expr Diag.no_span e
  | Store (a, i, e, sp) ->
      ({ a_array = a; a_sub = i; a_write = true; a_span = sp }
       :: accesses_of_expr sp i)
      @ accesses_of_expr sp e
  | If (c, t, e) ->
      accesses_of_expr Diag.no_span c @ accesses_of_block t @ accesses_of_block e
  | While (c, b) -> accesses_of_expr Diag.no_span c @ accesses_of_block b
  | For { init; limit; body; _ } ->
      accesses_of_expr Diag.no_span init
      @ accesses_of_expr Diag.no_span limit
      @ accesses_of_block body

(* ------------------------------------------------------------------ *)
(* The pair test                                                       *)

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(* deterministic order: by source position of the write, then content *)
let dep_rank_kind = function Flow -> 0 | Anti -> 1 | Output -> 2
let dep_rank_dir = function Dlt -> 0 | Deq -> 1 | Dgt -> 2 | Dany -> 3

let dep_compare (a : dep) (b : dep) =
  Stdlib.compare
    ( (a.src_span.first_line, a.src_span.last_line),
      a.array, a.other_array, dep_rank_kind a.kind, a.distance,
      dep_rank_dir a.direction, a.aliased,
      (a.dst_span.first_line, a.dst_span.last_line) )
    ( (b.src_span.first_line, b.src_span.last_line),
      b.array, b.other_array, dep_rank_kind b.kind, b.distance,
      dep_rank_dir b.direction, b.aliased,
      (b.dst_span.first_line, b.dst_span.last_line) )

(* Loop bounds when both are integer literals (after constant folding):
   the Banerjee window for unequal-stride pairs. *)
let const_bounds (loop : Ast.for_loop) =
  match (loop.init, loop.limit) with
  | Ast.Int_lit lo, Ast.Int_lit hi when lo < hi -> Some (lo, hi - 1)
  | _ -> None

(* Classified subscript: [`Aff (k, b)] means [k * i + b] with [b]
   loop-invariant ([k = 0] for invariant addresses, where [b] is the whole
   subscript expression); [`Complex] proves nothing. *)
let norm ~loop_var ~varying (sub : Ast.expr) =
  match Analysis.classify_subscript ~loop_var ~varying sub with
  | Analysis.Sub_invariant -> `Aff (0, sub)
  | Analysis.Sub_affine (k, b) -> `Aff (k, b)
  | Analysis.Sub_complex -> `Complex

let mk_dep ~(w : access) ~(o : access) ~distance ~direction ~carried ~aliased =
  let kind =
    if o.a_write then Output
    else
      match distance with
      | Some d when d < 0 -> Anti
      | _ -> Flow (* a true or may-dependence *)
  in
  {
    kind;
    array = w.a_array;
    other_array = o.a_array;
    distance;
    direction;
    carried;
    aliased;
    src_span = w.a_span;
    dst_span = o.a_span;
  }

(* Dependence between write [w] at iteration [i1] and access [o] at
   iteration [i2] of the same (or aliased) array; distance is [i2 - i1].
   [None] means the pair is proven independent. *)
let pair_dep ~bounds ~loop_var ~varying (w : access) (o : access) : dep option =
  let some = Option.some in
  let dep = mk_dep ~w ~o in
  match (norm ~loop_var ~varying w.a_sub, norm ~loop_var ~varying o.a_sub) with
  | `Complex, _ | _, `Complex ->
      some (dep ~distance:None ~direction:Dany ~carried:true ~aliased:false)
  | `Aff (0, b1), `Aff (0, b2) -> (
      (* two loop-invariant addresses: all iteration pairs or none *)
      match Analysis.const_difference b1 b2 with
      | Some 0 -> some (dep ~distance:None ~direction:Dany ~carried:true ~aliased:false)
      | Some _ -> None
      | None -> some (dep ~distance:None ~direction:Dany ~carried:true ~aliased:false))
  | `Aff (k1, b1), `Aff (k2, b2) when k1 = k2 -> (
      (* equal strides: the exact constant-distance test (no trip-count
         pruning, so every conflict the legacy race checker proves is a
         dependence here too) *)
      match Analysis.const_difference b1 b2 with
      | None -> some (dep ~distance:None ~direction:Dany ~carried:true ~aliased:false)
      | Some c ->
          if c mod k1 <> 0 then None
          else
            let d = c / k1 in
            if d = 0 then
              if o.a_write && not (o.a_sub = w.a_sub) then
                (* two syntactically different stores to the same element in
                   the same iteration: order-sensitive under vector masks *)
                some (dep ~distance:(Some 0) ~direction:Deq ~carried:false
                        ~aliased:false)
              else None (* same-iteration, same-statement shape: benign *)
            else
              some
                (dep ~distance:(Some d)
                   ~direction:(if d > 0 then Dlt else Dgt)
                   ~carried:true ~aliased:false))
  | `Aff (k1, b1), `Aff (k2, b2) -> (
      (* unequal strides: GCD test, then a Banerjee-style bounds test when
         the loop bounds are compile-time constants *)
      let g = gcd k1 k2 in
      match Analysis.const_difference b2 b1 with
      | Some c when g <> 0 && c mod g <> 0 -> None
      | Some c -> (
          match bounds with
          | Some (lo, hi) ->
              (* range of k1*i1 - k2*i2 over [lo, hi]^2 *)
              let mn = min (k1 * lo) (k1 * hi) - max (k2 * lo) (k2 * hi) in
              let mx = max (k1 * lo) (k1 * hi) - min (k2 * lo) (k2 * hi) in
              if c < mn || c > mx then None
              else
                some (dep ~distance:None ~direction:Dany ~carried:true
                        ~aliased:false)
          | None ->
              some (dep ~distance:None ~direction:Dany ~carried:true
                      ~aliased:false))
      | None ->
          some (dep ~distance:None ~direction:Dany ~carried:true ~aliased:false))

(* All dependences of one loop level. [noalias] is the driver's calling
   convention made into an assertion: distinct array parameters are bound
   to disjoint buffers. With [noalias = false] every cross-array pair
   involving a write becomes a conservative may-dependence. *)
let collect_deps ~noalias (loop : Ast.for_loop) : dep list =
  let varying = Analysis.assigned_in_block loop.body in
  let loop_var = loop.index in
  let bounds = const_bounds loop in
  let accesses = Array.of_list (accesses_of_block loop.body) in
  let out = ref [] in
  let add d = out := d :: !out in
  Array.iteri
    (fun iw (w : access) ->
      if w.a_write then begin
        (* self-conflicts: an address that does not advance with the loop
           (or cannot be analyzed) may collide with itself *)
        (match norm ~loop_var ~varying w.a_sub with
        | `Aff (0, _) ->
            add
              (mk_dep ~w ~o:w ~distance:None ~direction:Dany ~carried:true
                 ~aliased:false)
        | `Complex ->
            add
              (mk_dep ~w ~o:w ~distance:None ~direction:Dany ~carried:true
                 ~aliased:false)
        | `Aff _ -> ());
        Array.iteri
          (fun io (o : access) ->
            if io <> iw then
              if o.a_array = w.a_array then begin
                (* write-write pairs are symmetric: test each once *)
                if (not o.a_write) || io > iw then
                  match pair_dep ~bounds ~loop_var ~varying w o with
                  | Some d -> add d
                  | None -> ()
              end
              else if not noalias then
                (* may-alias: unknown relative offset, so any overlap is
                   possible in either direction *)
                add
                  (mk_dep ~w ~o ~distance:None ~direction:Dany ~carried:true
                     ~aliased:true))
          accesses
      end)
    accesses;
  List.sort_uniq dep_compare !out

(* ------------------------------------------------------------------ *)
(* Interchange legality (perfect 2-deep nests)                         *)

(* Per-loop-variable integer coefficients of a subscript, via
   {!Analysis.linearize}: [Some (coeffs, rest)] when every term either is
   a loop variable with an integer coefficient or mentions neither a loop
   variable nor a body-assigned scalar. *)
let multi_affine ~vars ~varying (sub : Ast.expr) =
  let c, terms = Analysis.linearize sub in
  let coeffs = List.map (fun v -> (v, 0)) vars in
  let rec go coeffs rest = function
    | [] -> Some (coeffs, (c, rest))
    | (Ast.Var v, k) :: tl when List.mem_assoc v coeffs ->
        go ((v, List.assoc v coeffs + k) :: List.remove_assoc v coeffs) rest tl
    | (e, k) :: tl ->
        if
          List.exists (fun v -> Analysis.mentions v e) vars
          || Analysis.mentions_any varying e
          || Analysis.has_index e
        then None
        else go coeffs ((e, k) :: rest) tl
  in
  go coeffs [] terms

(* The canonical row-major shape [outer * limit + inner (+ const)] with the
   inner loop running over [0, limit): injective in (outer, inner), so an
   address function equal to it collides only with itself at the same
   iteration pair. *)
let row_major_injective ~(outer : Ast.for_loop) ~(inner : Ast.for_loop) sub =
  inner.init = Ast.Int_lit 0
  &&
  let canonical =
    Ast.Bin (Add, Bin (Mul, Var outer.index, inner.limit), Var inner.index)
  in
  match Analysis.const_difference sub canonical with
  | Some _ -> true
  | None -> false

let interchange_ok ~noalias (loop : Ast.for_loop) =
  match loop.body with
  | [ Ast.For inner ] -> (
      match Analysis.classify_scalars_diag inner.body with
      | Error _ -> false
      | Ok _ -> (
          let vars = [ loop.index; inner.index ] in
          let varying =
            Analysis.S.remove inner.index
              (Analysis.assigned_in_block inner.body)
          in
          let accesses = Array.of_list (accesses_of_block inner.body) in
          let injective sub = row_major_injective ~outer:loop ~inner sub in
          (* GCD over both index variables at once: the pair can only meet
             if the gcd of all four coefficients divides the constant
             difference of the bases *)
          let pair_independent (w : access) (o : access) =
            match
              ( multi_affine ~vars ~varying w.a_sub,
                multi_affine ~vars ~varying o.a_sub )
            with
            | Some (c1, r1), Some (c2, r2) -> (
                let ks =
                  List.map (fun v -> List.assoc v c1) vars
                  @ List.map (fun v -> List.assoc v c2) vars
                in
                let g = List.fold_left gcd 0 ks in
                (* constant difference of the non-index parts: the opaque
                   terms must cancel symbolically *)
                let expr_of (c, ts) =
                  List.fold_left
                    (fun acc (e, k) ->
                      Ast.Bin (Add, acc, Bin (Mul, Int_lit k, e)))
                    (Ast.Int_lit c) ts
                in
                let base_diff =
                  Analysis.const_difference (expr_of r1) (expr_of r2)
                in
                match base_diff with
                | Some c when g <> 0 && c mod g <> 0 -> true
                | Some 0 when c1 = c2 ->
                    (* identical address function: same-iteration conflicts
                       only, provided it is injective over the nest *)
                    injective w.a_sub
                | _ -> false)
            | _ -> false
          in
          let ok = ref true in
          Array.iteri
            (fun iw (w : access) ->
              if w.a_write && !ok then
                Array.iteri
                  (fun io (o : access) ->
                    if !ok then
                      if io = iw then begin
                        if not (injective w.a_sub) then ok := false
                      end
                      else if o.a_array = w.a_array then begin
                        if ((not o.a_write) || io > iw)
                           && not (pair_independent w o)
                        then ok := false
                      end
                      else if not noalias then ok := false)
                  accesses)
            accesses;
          !ok))
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Legality facts                                                      *)

let blocks_vectorization (d : dep) =
  d.carried || (d.kind = Output && d.distance = Some 0)

let legality_of ~step_ok ~mech_ok ~scalars_ok ~interchangeable (deps : dep list)
    : legality =
  let blocking = List.filter blocks_vectorization deps in
  let carried = List.filter (fun d -> d.carried) deps in
  {
    vectorizable = step_ok && mech_ok && scalars_ok && blocking = [];
    parallelizable = scalars_ok && carried = [];
    interchangeable;
    peelable = scalars_ok && List.for_all (fun d -> d.distance <> None) deps;
    blocking_dep =
      (match blocking with
      | [] -> None
      | d :: _ -> Some (d.array, d.distance, d.direction));
  }

let analyze_loop ?(noalias = true) ?(depth = 0) (loop : Ast.for_loop) :
    loop_facts =
  let loop =
    match Ast.fold_stmt (Ast.For loop) with
    | Ast.For l -> l
    | _ -> loop (* fold_stmt preserves constructors *)
  in
  let scalars, scalar_diag =
    match Analysis.classify_scalars_diag loop.body with
    | Ok s -> (List.sort compare s, None)
    | Error d -> ([], Some (Diag.with_span loop.span d))
  in
  let mech_diag =
    match Analysis.mechanics_diag loop.body with
    | Ok () -> None
    | Error d -> Some (Diag.with_span loop.span d)
  in
  let deps_noalias = collect_deps ~noalias:true loop in
  let deps_mayalias = collect_deps ~noalias:false loop in
  let deps = if noalias then deps_noalias else deps_mayalias in
  let step_ok = loop.step = 1 in
  let scalars_ok = scalar_diag = None in
  let mech_ok = mech_diag = None in
  let leg_of d ~inter = legality_of ~step_ok ~mech_ok ~scalars_ok ~interchangeable:inter d in
  let legality = leg_of deps ~inter:(interchange_ok ~noalias loop) in
  let notes =
    (* the restrict-style assertion, surfaced when it is load-bearing: the
       fact holds only because distinct parameters are assumed disjoint *)
    let with_alias = leg_of deps_mayalias ~inter:(interchange_ok ~noalias:false loop) in
    let without = leg_of deps_noalias ~inter:(interchange_ok ~noalias:true loop) in
    if
      (without.vectorizable && not with_alias.vectorizable)
      || (without.parallelizable && not with_alias.parallelizable)
    then
      let arrays =
        List.sort_uniq compare
          (List.concat_map
             (fun (d : dep) ->
               if d.aliased then [ d.array; d.other_array ] else [])
             deps_mayalias)
      in
      [ Diag.v ~span:loop.span Diag.Remark Diag.May_alias
          "legality assumes %s are bound to disjoint buffers (the driver's \
           calling convention)"
          (String.concat ", " arrays) ]
    else []
  in
  {
    label = loop_label loop;
    span = loop.span;
    depth;
    index = loop.index;
    step = loop.step;
    deps;
    scalars;
    scalar_diag;
    mech_diag;
    notes;
    legality;
  }

let relegalize (f : loop_facts) ~(deps : dep list) : loop_facts =
  let legality =
    legality_of ~step_ok:(f.step = 1) ~mech_ok:(f.mech_diag = None)
      ~scalars_ok:(f.scalar_diag = None)
      ~interchangeable:f.legality.interchangeable deps
  in
  { f with deps; legality }

let iteration_independent (f : loop_facts) =
  f.legality.parallelizable
  && List.for_all
       (fun (_, c) ->
         match (c : Analysis.scalar_class) with
         | Analysis.Reduction _ -> false
         | Analysis.Invariant | Analysis.Private -> true)
       f.scalars

(* ------------------------------------------------------------------ *)
(* Whole-kernel analysis                                               *)

let rec walk_block ~noalias ~depth acc (b : Ast.block) =
  List.fold_left (fun acc s -> walk_stmt ~noalias ~depth acc s) acc b

and walk_stmt ~noalias ~depth acc (s : Ast.stmt) =
  match s with
  | Decl _ | Assign _ | Store _ -> acc
  | If (_, t, e) ->
      walk_block ~noalias ~depth (walk_block ~noalias ~depth acc t) e
  | While (_, b) -> walk_block ~noalias ~depth acc b
  | For loop ->
      let acc = analyze_loop ~noalias ~depth loop :: acc in
      walk_block ~noalias ~depth:(depth + 1) acc loop.body

let analyze ?(noalias = true) (k : Ast.kernel) : t =
  match Check.check_kernel_diag k with
  | Error d -> { kernel_name = k.kname; errors = [ d ]; loops = [] }
  | Ok () ->
      let body = Ast.fold_block k.body in
      { kernel_name = k.kname;
        errors = [];
        loops = List.rev (walk_block ~noalias ~depth:0 [] body) }

let analyze_src ?(noalias = true) ?(name = "<input>") src : t =
  match Parser.parse_kernel_diag src with
  | Ok k -> analyze ~noalias k
  | Error d -> { kernel_name = name; errors = [ d ]; loops = [] }

(* ------------------------------------------------------------------ *)
(* The dependence-based race detector                                  *)

(* Provable conflicts only: an asserted-independent loop is reported when
   the engine can exhibit the colliding iterations, never on a mere
   may-dependence — so the paper's legitimate asserted scatters stay
   quiet. By construction this flags everything the legacy syntactic
   checker ({!Analysis.race_diags}) flags: its two proofs (loop-invariant
   store address; equal-stride constant distance) are exactly the
   invariant-write self-dependence and the [distance = Some d <> 0]
   vectors here, and the equal-stride test applies no trip-count pruning. *)
let race_diags (loop : Ast.for_loop) : Diag.t list =
  let facts = analyze_loop ~noalias:true loop in
  let span_of (d : dep) =
    if d.src_span = Diag.no_span then loop.span else d.src_span
  in
  let out =
    List.filter_map
      (fun (d : dep) ->
        match d.distance with
        | Some n when n <> 0 ->
            Some
              (Diag.v ~span:(span_of d) Diag.Warning Diag.Race
                 "asserted-independent loop carries a dependence on %s: \
                  iterations %d apart touch the same element"
                 d.array (abs n))
        | _ -> None)
      facts.deps
  in
  (* loop-invariant store addresses, straight from the access list (the
     legacy checker's first proof) *)
  let varying = Analysis.assigned_in_block loop.body in
  let invariant_writes =
    List.filter_map
      (fun (a : access) ->
        if not a.a_write then None
        else
          match Analysis.classify_subscript ~loop_var:loop.index ~varying a.a_sub with
          | Analysis.Sub_invariant | Analysis.Sub_affine (0, _) ->
              Some
                (Diag.v
                   ~span:(if a.a_span = Diag.no_span then loop.span else a.a_span)
                   Diag.Warning Diag.Race
                   "asserted-independent loop stores to %s at a loop-invariant \
                    address: every iteration writes the same element"
                   a.a_array)
          | _ -> None)
      (accesses_of_block loop.body)
  in
  let all = invariant_writes @ out in
  let dedup =
    List.fold_left
      (fun acc d ->
        if List.exists (fun d' -> Diag.compare d d' = 0) acc then acc
        else d :: acc)
      [] all
  in
  List.sort Diag.compare dedup

(* ------------------------------------------------------------------ *)
(* Stable JSON export (schema "ninja-deps/v1")                         *)

module Json = Ninja_report.Json

let json_of_span (s : Diag.span) =
  if s = Diag.no_span then Json.Null
  else
    Json.Obj
      [ ("first_line", Json.Num (float_of_int s.first_line));
        ("last_line", Json.Num (float_of_int s.last_line)) ]

let json_of_diag (d : Diag.t) =
  Json.Obj
    [ ("code", Json.Str (Diag.code_name d.Diag.code));
      ("severity", Json.Str (Diag.severity_name d.Diag.severity));
      ("span", json_of_span d.Diag.span);
      ("message", Json.Str d.Diag.message) ]

let json_of_dep (d : dep) =
  Json.Obj
    [ ("kind", Json.Str (dep_kind_name d.kind));
      ("array", Json.Str d.array);
      ("other_array", Json.Str d.other_array);
      ( "distance",
        match d.distance with
        | None -> Json.Null
        | Some n -> Json.Num (float_of_int n) );
      ("direction", Json.Str (direction_name d.direction));
      ("carried", Json.Bool d.carried);
      ("aliased", Json.Bool d.aliased);
      ("src", json_of_span d.src_span);
      ("dst", json_of_span d.dst_span) ]

let json_of_legality (l : legality) =
  Json.Obj
    [ ("vectorizable", Json.Bool l.vectorizable);
      ("parallelizable", Json.Bool l.parallelizable);
      ("interchangeable", Json.Bool l.interchangeable);
      ("peelable", Json.Bool l.peelable);
      ( "blocking_dep",
        match l.blocking_dep with
        | None -> Json.Null
        | Some (a, dist, dir) ->
            Json.Obj
              [ ("array", Json.Str a);
                ( "distance",
                  match dist with
                  | None -> Json.Null
                  | Some n -> Json.Num (float_of_int n) );
                ("direction", Json.Str (direction_name dir)) ] ) ]

let json_of_loop (f : loop_facts) =
  Json.Obj
    [ ("label", Json.Str f.label);
      ("span", json_of_span f.span);
      ("depth", Json.Num (float_of_int f.depth));
      ("index", Json.Str f.index);
      ("step", Json.Num (float_of_int f.step));
      ( "scalars",
        Json.List
          (List.map
             (fun (n, c) ->
               Json.Obj
                 [ ("name", Json.Str n);
                   ( "class",
                     Json.Str
                       (match (c : Analysis.scalar_class) with
                       | Analysis.Invariant -> "invariant"
                       | Analysis.Private -> "private"
                       | Analysis.Reduction k ->
                           "reduction:" ^ Analysis.red_kind_name k) ) ])
             f.scalars) );
      ( "scalar_diag",
        match f.scalar_diag with None -> Json.Null | Some d -> json_of_diag d );
      ( "mech_diag",
        match f.mech_diag with None -> Json.Null | Some d -> json_of_diag d );
      ("deps", Json.List (List.map json_of_dep f.deps));
      ("notes", Json.List (List.map json_of_diag f.notes));
      ("legality", json_of_legality f.legality);
      ("iteration_independent", Json.Bool (iteration_independent f)) ]

let to_json (t : t) =
  Json.Obj
    [ ("schema", Json.Str "ninja-deps/v1");
      ("kernel", Json.Str t.kernel_name);
      ("errors", Json.List (List.map json_of_diag t.errors));
      ("loops", Json.List (List.map json_of_loop t.loops)) ]

(* ------------------------------------------------------------------ *)
(* Plain-text rendering (ninja_cli analyze --deps)                     *)

let pp_dep ppf (d : dep) =
  Fmt.pf ppf "%s %s" (dep_kind_name d.kind) d.array;
  if d.other_array <> d.array then Fmt.pf ppf "->%s" d.other_array;
  (match d.distance with
  | Some n -> Fmt.pf ppf " distance %d" n
  | None -> Fmt.pf ppf " distance ?");
  Fmt.pf ppf " (%s)" (direction_name d.direction);
  if d.aliased then Fmt.pf ppf " [aliased]";
  if d.src_span <> Diag.no_span then Fmt.pf ppf " at %a" Diag.pp_span d.src_span

let pp ppf (t : t) =
  Fmt.pf ppf "dependence facts for kernel %s@." t.kernel_name;
  List.iter (fun d -> Fmt.pf ppf "  %a@." Diag.pp d) t.errors;
  if t.loops = [] && t.errors = [] then Fmt.pf ppf "  (no loops)@.";
  List.iter
    (fun (f : loop_facts) ->
      let pad = String.make (2 + (2 * f.depth)) ' ' in
      if f.span = Diag.no_span then Fmt.pf ppf "%sLOOP %s:@." pad f.label
      else Fmt.pf ppf "%sLOOP %s at %a:@." pad f.label Diag.pp_span f.span;
      Fmt.pf ppf "%s  vectorizable=%b parallelizable=%b interchangeable=%b \
                  peelable=%b independent=%b@."
        pad f.legality.vectorizable f.legality.parallelizable
        f.legality.interchangeable f.legality.peelable
        (iteration_independent f);
      (match f.legality.blocking_dep with
      | None -> ()
      | Some (a, dist, dir) ->
          Fmt.pf ppf "%s  blocking dependence: %s %s (%s)@." pad a
            (match dist with Some n -> Fmt.str "distance %d" n | None -> "distance ?")
            (direction_name dir));
      List.iter (fun d -> Fmt.pf ppf "%s  dep: %a@." pad pp_dep d) f.deps;
      List.iter (fun d -> Fmt.pf ppf "%s  %a@." pad Diag.pp d) f.notes)
    t.loops
