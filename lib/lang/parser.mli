(** Recursive-descent parser for Cee. Enforces the canonical for-loop shape
    [for (i = e0; i < e1; i = i + c)] (positive constant [c]) that every
    later pass relies on; unary minus on literals folds at parse time so
    pretty-printing round-trips. For-loop nodes carry their source span. *)

exception Error of string
(** Syntax error, rendered with its source span. *)

val parse_kernel_diag : string -> (Ast.kernel, Diag.t) result
(** Parse one [kernel name(params) { ... }] compilation unit. Lexical and
    syntax failures come back as structured {!Diag.t} values (code
    [SYNTAX]) carrying the offending source line; malformed input never
    raises and never aborts the process. *)

val parse_kernel : string -> Ast.kernel
(** Like {!parse_kernel_diag} but raising.
    @raise Error on lexical or syntax errors *)
