(** Structured compiler diagnostics with stable reason codes.

    Every analysis and code-generation failure in the Cee pipeline is
    described by a {!t}: a machine-readable reason {!code} (the stable
    vocabulary the opt-report, experiment T3 and the negative tests key
    on), a source {!span} threaded from the lexer/parser, a severity, a
    human-readable message, and an optional remediation hint naming the
    fix the paper applies for that pathology. *)

(** Stable reason codes. The constructor names render as the upper-case
    snake form ([Aos_layout] -> ["AOS_LAYOUT"]); both the rendering and
    the set itself are part of the tool's stable surface. *)
type code =
  | Aos_layout  (** interleaved record fields accessed at stride > 1 *)
  | Non_unit_stride  (** strided (but not interleaved) accesses *)
  | Non_unit_step  (** loop step <> 1 defeats the vectorizer *)
  | Loop_carried_dep  (** possible cross-iteration array dependence *)
  | Scalar_cycle  (** scalar recurrence that is not a known reduction *)
  | Gather_required  (** data-dependent subscript: gather/scatter *)
  | Invariant_store  (** every iteration stores to the same address *)
  | Inner_loop  (** nested/while loop inside a vector candidate *)
  | Complex_control  (** control flow if-conversion cannot handle *)
  | Short_trip  (** trip count too small to profit *)
  | Race  (** pragma-asserted loop is provably not independent *)
  | May_alias
      (** a legality fact holds only because array parameters are assumed
          bound to disjoint buffers (the driver's convention) — a
          restrict-style assertion made visible *)
  | Syntax  (** lexer/parser error *)
  | Type_error  (** Cee type error *)
  | Internal  (** compiler invariant violation (a bug in us) *)

val code_name : code -> string
(** ["AOS_LAYOUT"], ["NON_UNIT_STRIDE"], ... — the stable spelling. *)

type severity =
  | Error  (** the construct is rejected / cannot be honored *)
  | Warning  (** accepted, but the programmer's assertion looks wrong *)
  | Remark  (** icc-style informational note on generated code *)

val severity_name : severity -> string

type span = { first_line : int; last_line : int }
(** 1-based source lines, inclusive. The lexer tracks lines only (no
    columns), so spans are line ranges. *)

val no_span : span
(** The unknown span ([{0; 0}]); rendered as nothing. *)

val line_span : int -> span
(** The one-line span [{l; l}]. *)

val lines : int -> int -> span
(** [lines a b] spans from [min a b] to [max a b], inclusive. *)

val pp_span : span Fmt.t
(** ["line 4"] / ["lines 4-9"]; nothing for {!no_span}. *)

type t = {
  code : code;
  severity : severity;
  span : span;
  message : string;
  hint : string option;
      (** remediation, defaulted per-code from {!hint_for} by {!v} *)
}

val v :
  ?span:span ->
  ?hint:string ->
  severity ->
  code ->
  ('a, Format.formatter, unit, t) format4 ->
  'a
(** [v sev code fmt ...] builds a diagnostic. When [?hint] is omitted the
    per-code default from {!hint_for} is used (pass [~hint:""] to
    suppress a hint entirely). *)

val hint_for : code -> string option
(** The paper's fix for each pathology (None for syntax/type/internal). *)

val with_span : span -> t -> t
(** Fill in the span if the diagnostic carries {!no_span}. *)

val label : t -> string
(** ["CODE: message"] — the stable one-line form used by vec-reports. *)

val pp : t Fmt.t
(** ["lines 4-9: error AOS_LAYOUT: ...\n  hint: ..."] — deterministic. *)

val to_string : t -> string

val compare : t -> t -> int
(** Deterministic order: span, then severity, code, message. *)
