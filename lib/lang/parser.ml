(* Recursive-descent parser for Cee. See {!Ast} for the grammar the parser
   enforces; the canonical for-loop shape is checked here so that every
   later pass may rely on it. *)

exception Error of string

(* Internally every syntax error is a structured diagnostic carrying its
   source span; the public [parse_kernel] re-renders it as the classic
   [Error] string for existing call sites, while [parse_kernel_diag]
   returns it intact. *)
exception Error_diag of Diag.t

let error ~line fmt =
  Fmt.kstr
    (fun s ->
      raise
        (Error_diag (Diag.v ~span:(Diag.line_span line) Diag.Error Diag.Syntax "%s" s)))
    fmt

type state = { toks : Lexer.located array; mutable pos : int }

let cur st = st.toks.(st.pos)
let line st = (cur st).line
let advance st = st.pos <- st.pos + 1

let expect st tok =
  if (cur st).tok = tok then advance st
  else
    error ~line:(line st) "expected %s but found %s" (Lexer.token_name tok)
      (Lexer.token_name (cur st).tok)

let expect_ident st =
  match (cur st).tok with
  | IDENT s -> advance st; s
  | t -> error ~line:(line st) "expected identifier, found %s" (Lexer.token_name t)

let parse_type st : Ast.ty =
  let base =
    match (cur st).tok with
    | KW "int" -> advance st; `Int
    | KW "float" -> advance st; `Float
    | t -> error ~line:(line st) "expected a type, found %s" (Lexer.token_name t)
  in
  if (cur st).tok = LBRACKET then begin
    advance st;
    expect st RBRACKET;
    match base with `Int -> Tarr_int | `Float -> Tarr_float
  end
  else match base with `Int -> Tint | `Float -> Tfloat

let rec parse_expr st : Ast.expr = parse_or st

and parse_or st =
  let lhs = ref (parse_and st) in
  while (cur st).tok = OROR do
    advance st;
    lhs := Ast.Bin (Or, !lhs, parse_and st)
  done;
  !lhs

and parse_and st =
  let lhs = ref (parse_cmp st) in
  while (cur st).tok = ANDAND do
    advance st;
    lhs := Ast.Bin (And, !lhs, parse_cmp st)
  done;
  !lhs

and parse_cmp st =
  let lhs = parse_add st in
  let op : Ast.binop option =
    match (cur st).tok with
    | LT -> Some Lt | LE -> Some Le | GT -> Some Gt | GE -> Some Ge
    | EQ -> Some Eq | NE -> Some Ne
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
      advance st;
      Ast.Bin (op, lhs, parse_add st)

and parse_add st =
  let lhs = ref (parse_mul st) in
  let continue = ref true in
  while !continue do
    match (cur st).tok with
    | PLUS -> advance st; lhs := Ast.Bin (Add, !lhs, parse_mul st)
    | MINUS -> advance st; lhs := Ast.Bin (Sub, !lhs, parse_mul st)
    | _ -> continue := false
  done;
  !lhs

and parse_mul st =
  let lhs = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    match (cur st).tok with
    | STAR -> advance st; lhs := Ast.Bin (Mul, !lhs, parse_unary st)
    | SLASH -> advance st; lhs := Ast.Bin (Div, !lhs, parse_unary st)
    | PERCENT -> advance st; lhs := Ast.Bin (Mod, !lhs, parse_unary st)
    | _ -> continue := false
  done;
  !lhs

and parse_unary st =
  match (cur st).tok with
  | MINUS -> (
      advance st;
      match parse_unary st with
      | Ast.Int_lit n -> Ast.Int_lit (-n)
      | Ast.Float_lit x -> Ast.Float_lit (-.x)
      | e -> Ast.Un (Neg, e))
  | BANG -> advance st; Ast.Un (Not, parse_unary st)
  | _ -> parse_primary st

and parse_args st =
  expect st LPAREN;
  if (cur st).tok = RPAREN then begin advance st; [] end
  else begin
    let args = ref [ parse_expr st ] in
    while (cur st).tok = COMMA do
      advance st;
      args := parse_expr st :: !args
    done;
    expect st RPAREN;
    List.rev !args
  end

and parse_primary st =
  match (cur st).tok with
  | INT n -> advance st; Ast.Int_lit n
  | FLOAT x -> advance st; Ast.Float_lit x
  | LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st RPAREN;
      e
  | KW (("float" | "int") as name) ->
      (* cast syntax: float(e), int(e); the cast name is bound by the
         pattern itself, so no unreachable re-match is needed *)
      advance st;
      let args = parse_args st in
      if List.length args <> 1 then error ~line:(line st) "%s() takes one argument" name;
      Ast.Call (name, args)
  | IDENT name -> (
      advance st;
      match (cur st).tok with
      | LPAREN ->
          let args = parse_args st in
          (match List.assoc_opt name Ast.intrinsics with
          | None -> error ~line:(line st) "unknown function %s" name
          | Some arity when List.length args <> arity ->
              error ~line:(line st) "%s expects %d argument(s)" name arity
          | Some _ -> Ast.Call (name, args))
      | LBRACKET ->
          advance st;
          let e = parse_expr st in
          expect st RBRACKET;
          Ast.Index (name, e)
      | _ -> Ast.Var name)
  | t -> error ~line:(line st) "expected an expression, found %s" (Lexer.token_name t)

let rec parse_block st : Ast.block =
  expect st LBRACE;
  let stmts = ref [] in
  while (cur st).tok <> RBRACE do
    stmts := parse_stmt st :: !stmts
  done;
  advance st;
  List.rev !stmts

and parse_stmt st : Ast.stmt =
  match (cur st).tok with
  | KW "var" ->
      advance st;
      let name = expect_ident st in
      expect st COLON;
      let ty = parse_type st in
      let init =
        if (cur st).tok = ASSIGN then begin
          advance st;
          Some (parse_expr st)
        end
        else None
      in
      expect st SEMI;
      Decl (name, ty, init)
  | KW "if" ->
      advance st;
      expect st LPAREN;
      let c = parse_expr st in
      expect st RPAREN;
      let t = parse_block st in
      let e =
        if (cur st).tok = KW "else" then begin
          advance st;
          parse_block st
        end
        else []
      in
      If (c, t, e)
  | KW "while" ->
      advance st;
      expect st LPAREN;
      let c = parse_expr st in
      expect st RPAREN;
      let b = parse_block st in
      While (c, b)
  | KW "pragma" | KW "for" -> parse_for st []
  | IDENT name -> (
      let l = line st in
      advance st;
      match (cur st).tok with
      | ASSIGN ->
          advance st;
          let e = parse_expr st in
          expect st SEMI;
          Assign (name, e)
      | LBRACKET ->
          advance st;
          let i = parse_expr st in
          expect st RBRACKET;
          expect st ASSIGN;
          let e = parse_expr st in
          expect st SEMI;
          Store (name, i, e, Diag.line_span l)
      | t ->
          error ~line:(line st) "expected = or [ after %s, found %s" name
            (Lexer.token_name t))
  | t -> error ~line:(line st) "expected a statement, found %s" (Lexer.token_name t)

and parse_for st pragmas : Ast.stmt =
  match (cur st).tok with
  | KW "pragma" ->
      advance st;
      let p : Ast.pragma =
        match (cur st).tok with
        | KW "parallel" -> advance st; Parallel
        | KW "simd" -> advance st; Simd
        | t -> error ~line:(line st) "unknown pragma %s" (Lexer.token_name t)
      in
      parse_for st (p :: pragmas)
  | KW "for" ->
      let l = line st in
      advance st;
      expect st LPAREN;
      let index = expect_ident st in
      expect st ASSIGN;
      let init = parse_expr st in
      expect st SEMI;
      let index2 = expect_ident st in
      if index2 <> index then error ~line:l "for condition must test loop variable %s" index;
      expect st LT;
      let limit = parse_expr st in
      expect st SEMI;
      let index3 = expect_ident st in
      if index3 <> index then error ~line:l "for update must assign loop variable %s" index;
      expect st ASSIGN;
      let index4 = expect_ident st in
      if index4 <> index then
        error ~line:l "for update must have the form %s = %s + <const>" index index;
      expect st PLUS;
      let step =
        match (cur st).tok with
        | INT n when n > 0 -> advance st; n
        | _ -> error ~line:l "for step must be a positive integer constant"
      in
      expect st RPAREN;
      let body = parse_block st in
      (* the token before the current position is the block's closing brace *)
      let last = st.toks.(st.pos - 1).line in
      For
        { index; init; limit; step; pragmas = List.rev pragmas; body;
          span = Diag.lines l last }
  | t -> error ~line:(line st) "expected for after pragma, found %s" (Lexer.token_name t)

let parse_kernel_toks st : Ast.kernel =
  expect st (KW "kernel");
  let kname = expect_ident st in
  expect st LPAREN;
  let params = ref [] in
  if (cur st).tok <> RPAREN then begin
    let parse_param () =
      let name = expect_ident st in
      expect st COLON;
      let ty = parse_type st in
      params := (name, ty) :: !params
    in
    parse_param ();
    while (cur st).tok = COMMA do
      advance st;
      parse_param ()
    done
  end;
  expect st RPAREN;
  let body = parse_block st in
  if (cur st).tok <> EOF then
    error ~line:(line st) "trailing input after kernel body";
  { kname; params = List.rev !params; body }

(* Lexer errors arrive as strings "line %d: ..."; recover the span from the
   prefix so even tokenization failures carry a usable location. *)
let diag_of_lexer_error msg =
  let span =
    try Scanf.sscanf msg "line %d:" Diag.line_span with
    | Scanf.Scan_failure _ | Failure _ | End_of_file -> Diag.no_span
  in
  Diag.v ~span Diag.Error Diag.Syntax "%s" msg

let parse_kernel_diag src : (Ast.kernel, Diag.t) result =
  match
    let st = { toks = Lexer.tokenize src; pos = 0 } in
    parse_kernel_toks st
  with
  | k -> Ok k
  | exception Error_diag d -> Error d
  | exception Lexer.Error msg -> Error (diag_of_lexer_error msg)

let parse_kernel src : Ast.kernel =
  match parse_kernel_diag src with
  | Ok k -> k
  | Error d -> raise (Error (Diag.to_string d))
