(** Type checking for Cee. The language has no implicit int/float
    conversions (use the [float]/[int] casts), so every expression has
    exactly one type — recomputed later by the vectorizer and code
    generator through {!type_of_expr}. Conditions are C-style ints. *)

exception Type_error of string

module Env : Map.S with type key = string

type env = Ast.ty Env.t

val type_of_expr : env -> Ast.expr -> Ast.ty
(** @raise Type_error on ill-typed expressions or unbound names. *)

val check_block : env -> Ast.block -> unit

val initial_env : Ast.kernel -> env
(** Parameter bindings (rejects duplicates). *)

val check_kernel : Ast.kernel -> unit
(** Check a whole kernel. @raise Type_error *)

val check_kernel_diag : Ast.kernel -> (unit, Diag.t) result
(** Like {!check_kernel} but returning type errors as structured
    diagnostics (code [TYPE]) instead of raising. *)
