(* Structured compiler diagnostics. See the interface for the contract;
   everything here is deliberately deterministic (no tables, no state) so
   diagnostic output can be byte-compared across worker-domain counts. *)

type code =
  | Aos_layout
  | Non_unit_stride
  | Non_unit_step
  | Loop_carried_dep
  | Scalar_cycle
  | Gather_required
  | Invariant_store
  | Inner_loop
  | Complex_control
  | Short_trip
  | Race
  | May_alias
  | Syntax
  | Type_error
  | Internal

let code_name = function
  | Aos_layout -> "AOS_LAYOUT"
  | Non_unit_stride -> "NON_UNIT_STRIDE"
  | Non_unit_step -> "NON_UNIT_STEP"
  | Loop_carried_dep -> "LOOP_CARRIED_DEP"
  | Scalar_cycle -> "SCALAR_CYCLE"
  | Gather_required -> "GATHER_REQUIRED"
  | Invariant_store -> "INVARIANT_STORE"
  | Inner_loop -> "INNER_LOOP"
  | Complex_control -> "COMPLEX_CONTROL"
  | Short_trip -> "SHORT_TRIP"
  | Race -> "RACE"
  | May_alias -> "MAY_ALIAS"
  | Syntax -> "SYNTAX"
  | Type_error -> "TYPE"
  | Internal -> "INTERNAL"

(* rank for ordering only; the numeric value is not part of the surface *)
let code_rank = function
  | Aos_layout -> 0 | Non_unit_stride -> 1 | Non_unit_step -> 2
  | Loop_carried_dep -> 3 | Scalar_cycle -> 4 | Gather_required -> 5
  | Invariant_store -> 6 | Inner_loop -> 7 | Complex_control -> 8
  | Short_trip -> 9 | Race -> 10 | May_alias -> 11 | Syntax -> 12
  | Type_error -> 13 | Internal -> 14

type severity = Error | Warning | Remark

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Remark -> "remark"

let severity_rank = function Error -> 0 | Warning -> 1 | Remark -> 2

type span = { first_line : int; last_line : int }

let no_span = { first_line = 0; last_line = 0 }
let line_span l = { first_line = l; last_line = l }
let lines a b = { first_line = min a b; last_line = max a b }

let pp_span ppf s =
  if s = no_span then ()
  else if s.first_line = s.last_line then Fmt.pf ppf "line %d" s.first_line
  else Fmt.pf ppf "lines %d-%d" s.first_line s.last_line

type t = {
  code : code;
  severity : severity;
  span : span;
  message : string;
  hint : string option;
}

(* The remediation the paper applies for each pathology; see DESIGN.md
   "Benchmarks" (column "Naive pathology") for where each one bites. *)
let hint_for = function
  | Aos_layout ->
      Some
        "convert the interleaved records to one array per field (AoS -> SoA, \
         the paper's layout change)"
  | Non_unit_stride ->
      Some "restructure the data layout so accesses are unit-stride (AoS -> SoA)"
  | Non_unit_step ->
      Some "rewrite with a unit step and scale the subscripts instead"
  | Loop_carried_dep ->
      Some
        "restructure the algorithm to break the dependence, or assert \
         independence with pragma simd if it is spurious"
  | Scalar_cycle ->
      Some
        "rewrite the recurrence as a sum/min/max reduction, or privatize the \
         scalar by defining it before every use"
  | Gather_required ->
      Some
        "precompute the indices into a unit-stride layout (blocking), or rely \
         on hardware gather/scatter support"
  | Invariant_store ->
      Some "hoist the store out of the loop, or index it by the loop variable"
  | Inner_loop ->
      Some
        "unroll the short inner loop or interchange the nest so the innermost \
         loop is the vector candidate (the paper's Conv2D fix)"
  | Complex_control ->
      Some "hoist declarations out of conditional branches"
  | Short_trip ->
      Some "merge or block loops so the innermost trip count covers the SIMD width"
  | Race ->
      Some
        "remove the pragma, or make iterations independent (privatize the \
         state or use a reduction)"
  | May_alias ->
      Some
        "keep the array parameters bound to disjoint buffers (the driver's \
         calling convention), or copy overlapping inputs first — the \
         restrict assertion this analysis assumes"
  | Syntax | Type_error | Internal -> None

let v ?span:(sp = no_span) ?hint severity code fmt =
  Fmt.kstr
    (fun message ->
      let hint =
        match hint with
        | Some "" -> None
        | Some h -> Some h
        | None -> hint_for code
      in
      { code; severity; span = sp; message; hint })
    fmt

let with_span sp d = if d.span = no_span then { d with span = sp } else d

let label d = Fmt.str "%s: %s" (code_name d.code) d.message

let pp ppf d =
  if d.span <> no_span then Fmt.pf ppf "%a: " pp_span d.span;
  Fmt.pf ppf "%s %s" (severity_name d.severity) (label d);
  match d.hint with
  | None -> ()
  | Some h -> Fmt.pf ppf "@.  hint: %s" h

let to_string d = Fmt.str "%a" pp d

let compare a b =
  let c = Stdlib.compare (a.span.first_line, a.span.last_line) (b.span.first_line, b.span.last_line) in
  if c <> 0 then c
  else
    let c = Stdlib.compare (severity_rank a.severity) (severity_rank b.severity) in
    if c <> 0 then c
    else
      let c = Stdlib.compare (code_rank a.code) (code_rank b.code) in
      if c <> 0 then c else Stdlib.compare a.message b.message
