(* Per-loop optimization report. Mirrors the decision sequence of
   {!Codegen.compile_for} / {!Codegen.compile_parallel_loop} at the full
   [o2_vec_par] setting, but collects diagnostics instead of emitting
   code. Keep the two in sync: the report must say "VECTORIZED" exactly
   when the code generator would vectorize. *)

type loop_report = {
  label : string;
  span : Diag.span;
  depth : int;
  parallelized : bool;
  vectorized : bool;
  diags : Diag.t list;
}

type t = {
  kernel_name : string;
  errors : Diag.t list;
  loops : loop_report list;
}

(* Same rendering as Codegen.loop_label so report lines match vec-reports. *)
let loop_label (loop : Ast.for_loop) =
  Fmt.str "for(%s=%a;%s<%a)" loop.index Ast.pp_expr loop.init loop.index
    Ast.pp_expr loop.limit

let prefix_message pre (d : Diag.t) = { d with Diag.message = pre ^ d.Diag.message }

let rec walk_block ~depth acc (b : Ast.block) =
  List.fold_left (fun acc s -> walk_stmt ~depth acc s) acc b

and walk_stmt ~depth acc (s : Ast.stmt) =
  match s with
  | Decl _ | Assign _ | Store _ -> acc
  | If (_, t, e) -> walk_block ~depth (walk_block ~depth acc t) e
  | While (_, b) -> walk_block ~depth acc b
  | For loop -> walk_for ~depth acc loop

and walk_for ~depth acc (loop : Ast.for_loop) =
  let has_parallel = List.mem Ast.Parallel loop.pragmas in
  let force = List.mem Ast.Simd loop.pragmas in
  let facts = Deps.analyze_loop ~depth loop in
  let diags = ref [] in
  let addd d = diags := d :: !diags in
  (* satellite of the dependence engine: when a dependence kills
     vectorization, point at the blocking store, not the loop header, and
     name the exact dependence vector *)
  let locate_blocking (d : Diag.t) =
    let dep_code =
      match d.Diag.code with
      | Diag.Loop_carried_dep | Diag.Aos_layout | Diag.Non_unit_stride
      | Diag.Gather_required | Diag.Invariant_store -> true
      | _ -> false
    in
    let blocking =
      List.find_opt
        (fun (bd : Deps.dep) ->
          bd.Deps.carried
          || (bd.Deps.kind = Deps.Output && bd.Deps.distance = Some 0))
        facts.Deps.deps
    in
    match blocking with
    | Some bd when dep_code ->
        let d =
          if bd.Deps.src_span <> Diag.no_span then
            { d with Diag.span = bd.Deps.src_span }
          else d
        in
        let note =
          Diag.v ~span:d.Diag.span ~hint:"" Diag.Remark d.Diag.code
            "blocking dependence: %s %s distance %s (%s)"
            (Deps.dep_kind_name bd.Deps.kind)
            bd.Deps.array
            (match bd.Deps.distance with
            | Some n -> string_of_int n
            | None -> "?")
            (Deps.direction_name bd.Deps.direction)
        in
        (d, Some note)
    | _ -> (d, None)
  in
  let parallelized =
    if not has_parallel then false
    else if depth > 0 then begin
      (* the code generator rejects this shape outright *)
      addd
        (Diag.v ~span:loop.span ~hint:"" Diag.Error Diag.Complex_control
           "pragma parallel is only supported on top-level loops");
      false
    end
    else
      match Analysis.parallel_diag loop with
      | Ok _ -> true
      | Error d -> addd (prefix_message "pragma parallel cannot be honored: " d); false
  in
  (* cost model: short constant-trip loops stay scalar unless forced;
     a parallelized loop iterates over runtime chunk bounds, so the
     constant-trip test never applies to it (as in codegen) *)
  let short_trip =
    (not parallelized)
    &&
    match (loop.init, loop.limit) with
    | Ast.Int_lit lo, Ast.Int_lit hi -> hi - lo < 8
    | _ -> false
  in
  let vectorized =
    if short_trip && not force then begin
      addd
        (Diag.v ~span:loop.span Diag.Remark Diag.Short_trip
           "trip count too small to profit");
      false
    end
    else
      match Analysis.vectorize_diag ~force loop with
      | Ok _ ->
          List.iter addd (Analysis.access_remarks loop);
          true
      | Error d ->
          let d =
            if force then prefix_message "pragma simd cannot be honored: " d
            else d
          in
          let d, note = locate_blocking d in
          addd d;
          Option.iter addd note;
          false
  in
  (* the restrict-style assertion, when it is load-bearing for legality *)
  List.iter addd facts.Deps.notes;
  if force || has_parallel then List.iter addd (Deps.race_diags loop);
  let report =
    {
      label = loop_label loop;
      span = loop.span;
      depth;
      parallelized;
      vectorized;
      diags = List.stable_sort Diag.compare (List.rev !diags);
    }
  in
  let acc = report :: acc in
  (* a vectorized body provably contains no loops (mechanics); recurse
     only where the code generator would fall back to scalar code *)
  if vectorized then acc else walk_block ~depth:(depth + 1) acc loop.body

let analyze (k : Ast.kernel) : t =
  match Check.check_kernel_diag k with
  | Error d -> { kernel_name = k.kname; errors = [ d ]; loops = [] }
  | Ok () ->
      let body = Ast.fold_block k.body in
      { kernel_name = k.kname;
        errors = [];
        loops = List.rev (walk_block ~depth:0 [] body) }

let analyze_src ?(name = "<input>") src : t =
  match Parser.parse_kernel_diag src with
  | Ok k -> analyze k
  | Error d -> { kernel_name = name; errors = [ d ]; loops = [] }

let pp ppf (t : t) =
  Fmt.pf ppf "opt-report for kernel %s@." t.kernel_name;
  List.iter (fun d -> Fmt.pf ppf "  %a@." Diag.pp d) t.errors;
  if t.loops = [] && t.errors = [] then Fmt.pf ppf "  (no loops)@.";
  List.iter
    (fun (l : loop_report) ->
      let pad = String.make (2 + (2 * l.depth)) ' ' in
      let verdict =
        match (l.parallelized, l.vectorized) with
        | true, true -> "PARALLELIZED, VECTORIZED"
        | true, false -> "PARALLELIZED, not vectorized"
        | false, true -> "VECTORIZED"
        | false, false -> "not vectorized"
      in
      if l.span = Diag.no_span then Fmt.pf ppf "%sLOOP %s: %s@." pad l.label verdict
      else Fmt.pf ppf "%sLOOP %s at %a: %s@." pad l.label Diag.pp_span l.span verdict;
      List.iter
        (fun (d : Diag.t) ->
          (* a diagnostic located more precisely than the loop header (e.g.
             at the blocking store) prints its own span *)
          let at =
            if d.Diag.span <> Diag.no_span && d.Diag.span <> l.span then
              Fmt.str " (at %a)" Diag.pp_span d.Diag.span
            else ""
          in
          Fmt.pf ppf "%s  %s %s: %s%s@." pad
            (Diag.severity_name d.Diag.severity)
            (Diag.code_name d.Diag.code)
            d.Diag.message at;
          match d.Diag.hint with
          | None -> ()
          | Some h -> Fmt.pf ppf "%s    hint: %s@." pad h)
        l.diags)
    t.loops
