(* The service core: per-request validation, in-flight coalescing,
   admission control, and ordered reply emission over the shared
   work-stealing pool.

   Concurrency design, in lock order:

   - [t.mu] guards every service counter plus the in-flight table.
     Admission and pool submission happen atomically under it, so a
     force shutdown ([cancel_queued]) can never race a half-admitted
     request.
   - each [conn]'s [c_mu] guards its sequence counters, reorder buffer
     and writer. [finish] may run while [t.mu] is held (reject paths),
     but nothing ever takes [t.mu] while holding a [c_mu], so the order
     is acyclic.

   Determinism: requests get a per-connection sequence number at ingest,
   and replies are released strictly in sequence through a reorder
   buffer — whatever order pool tasks complete in, the reply *stream* of
   a connection depends only on its request stream. Work results are
   themselves deterministic (the engines are), so the whole stream is
   byte-identical across [-j] levels and store temperatures. The only
   timing-dependent numbers (coalescing hits, overload rejections, live
   cache counters) are quarantined in the [report] request's opt-in
   ["live"] section. *)

module P = Protocol
module Json = Ninja_report.Json
module E = Ninja_core.Experiments
module Store = Ninja_core.Store
module Tuner = Ninja_core.Tuner
module Pool = Ninja_util.Pool
module Machine = Ninja_arch.Machine
module Driver = Ninja_kernels.Driver

type conn = {
  c_mu : Mutex.t;
  c_write : string -> unit;
  mutable c_next : int;  (* next sequence number to assign at ingest *)
  mutable c_emit : int;  (* next sequence number to release *)
  c_buf : (int, string) Hashtbl.t;  (* finished but not yet released *)
}

type waiter = { w_conn : conn; w_seq : int; w_id : P.id }

type entry = { e_key : string; e_rtype : string; mutable e_waiters : waiter list }

type t = {
  mu : Mutex.t;
  pool : Pool.t;
  max_inflight : int;
  inflight_tbl : (string, entry) Hashtbl.t;
  keys_seen : (string, unit) Hashtbl.t;
  mutable inflight : int;
  mutable shutting_down : bool;
  (* ingest-ordered counters (deterministic per request stream) *)
  mutable received : int;
  mutable n_simulate : int;
  mutable n_analyze : int;
  mutable n_tune : int;
  mutable n_report : int;
  mutable protocol_errors : int;
  (* timing-dependent counters (live section / tests only) *)
  mutable coalesced : int;
  mutable overloaded : int;
  mutable rejected_shutdown : int;
  mutable completed : int;
  (* engine-counter baselines at service creation *)
  hits0 : int;
  misses0 : int;
  store0 : int;
}

type stats = {
  s_received : int;
  s_simulate : int;
  s_analyze : int;
  s_tune : int;
  s_report : int;
  s_protocol_errors : int;
  s_distinct_keys : int;
  s_coalesced : int;
  s_overloaded : int;
  s_rejected_shutdown : int;
  s_completed : int;
  s_inflight : int;
  s_simulations : int;
  s_memo_hits : int;
  s_store_hits : int;
}

let locked mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let default_max_inflight = 64

let create ?domains ?(max_inflight = default_max_inflight) () =
  let domains =
    match domains with Some d -> max 1 d | None -> Pool.default_domains ()
  in
  let hits0, misses0 = E.cache_stats () in
  {
    mu = Mutex.create ();
    pool = Pool.create ~domains;
    max_inflight = max 0 max_inflight;
    inflight_tbl = Hashtbl.create 64;
    keys_seen = Hashtbl.create 64;
    inflight = 0;
    shutting_down = false;
    received = 0;
    n_simulate = 0;
    n_analyze = 0;
    n_tune = 0;
    n_report = 0;
    protocol_errors = 0;
    coalesced = 0;
    overloaded = 0;
    rejected_shutdown = 0;
    completed = 0;
    hits0;
    misses0;
    store0 = E.store_hit_count ();
  }

let pool t = t.pool

let conn ~write =
  {
    c_mu = Mutex.create ();
    c_write = write;
    c_next = 0;
    c_emit = 0;
    c_buf = Hashtbl.create 16;
  }

(* Park a finished reply line at its sequence slot and release every
   consecutively-ready line, in order, through the connection's writer.
   The writer runs under [c_mu], which serializes interleaved emitters. *)
let finish conn seq line =
  locked conn.c_mu (fun () ->
      Hashtbl.replace conn.c_buf seq line;
      let rec release () =
        match Hashtbl.find_opt conn.c_buf conn.c_emit with
        | Some l ->
            Hashtbl.remove conn.c_buf conn.c_emit;
            conn.c_emit <- conn.c_emit + 1;
            conn.c_write l;
            release ()
        | None -> ()
      in
      release ())

let error_line id code message =
  P.encode_reply (P.Error_reply { id = Some id; code; message })

(* ------------------------------------------------------------------ *)
(* Work resolution: sync name validation + the pool task body           *)

let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

let key_sep = "\x00"

let simulate_key ~machine ~bench ~step =
  String.concat key_sep [ "simulate"; machine; bench; step ]

let analyze_key ~bench ~variant =
  String.concat key_sep
    [ "analyze"; bench; Option.value variant ~default:"*" ]

let tune_key ~machine ~bench = String.concat key_sep [ "tune"; machine; bench ]

let report_payload r = Store.report_to_json r

let resolve req =
  match req with
  | P.Report _ -> assert false (* handled synchronously in dispatch *)
  | P.Simulate { bench; machine; step } ->
      let* machine = Validate.machine_of_name machine in
      let* b = Validate.bench_of_name bench in
      let mname = machine.Machine.name in
      let key = simulate_key ~machine:mname ~bench:b.Driver.b_name ~step in
      let compute () =
        (* step validation is deferred here because checking a name
           means building (or reusing) the benchmark's ladder — too
           expensive for the ingest thread. *)
        let* step = Validate.step_of_bench b step in
        let r = E.run_step_cached ~machine b step in
        Ok
          (Json.Obj
             [
               ("bench", Json.Str b.Driver.b_name);
               ("machine", Json.Str mname);
               ("step", Json.Str step);
               ("report", report_payload r);
             ])
      in
      Ok (key, "simulate", compute)
  | P.Analyze { bench; variant } ->
      let* b = Validate.bench_of_name bench in
      let* variants = Validate.variants_of_bench b ~variant in
      let key = analyze_key ~bench:b.Driver.b_name ~variant in
      let compute () =
        Ok
          (Json.Obj
             [
               ("bench", Json.Str b.Driver.b_name);
               ( "variants",
                 Json.List
                   (List.map
                      (fun (vname, src) ->
                        let name = b.Driver.b_name ^ "/" ^ vname in
                        Json.Obj
                          [
                            ("variant", Json.Str name);
                            ( "facts",
                              Ninja_lang.Deps.to_json
                                (Ninja_lang.Deps.analyze_src ~name src) );
                          ])
                      variants) );
             ])
      in
      Ok (key, "analyze", compute)
  | P.Tune { bench; machine } ->
      let* machine = Validate.machine_of_name machine in
      let* b = Validate.bench_of_name bench in
      let key = tune_key ~machine:machine.Machine.name ~bench:b.Driver.b_name in
      let compute () = Ok (Tuner.to_json (E.tuned_result ~machine b)) in
      Ok (key, "tune", compute)

(* ------------------------------------------------------------------ *)
(* Report request (synchronous, at ingest)                             *)

let num i = Json.Num (float_of_int i)

let report_json t ~live =
  locked t.mu (fun () ->
      let traffic =
        Json.Obj
          [
            ("received", num t.received);
            ( "by_type",
              Json.Obj
                [
                  ("simulate", num t.n_simulate);
                  ("analyze", num t.n_analyze);
                  ("tune", num t.n_tune);
                  ("report", num t.n_report);
                ] );
            ("protocol_errors", num t.protocol_errors);
            ("distinct_keys", num (Hashtbl.length t.keys_seen));
          ]
      in
      let base = [ ("schema", Json.Str P.version); ("traffic", traffic) ] in
      if not live then Json.Obj base
      else
        let hits, misses = E.cache_stats () in
        let store_hits = E.store_hit_count () in
        Json.Obj
          (base
          @ [
              ( "live",
                Json.Obj
                  [
                    ("inflight", num t.inflight);
                    ("completed", num t.completed);
                    ("coalesced", num t.coalesced);
                    ("overloaded", num t.overloaded);
                    ("rejected_shutdown", num t.rejected_shutdown);
                    ("simulations", num (misses - t.misses0));
                    ("memo_hits", num (hits - t.hits0));
                    ("store_hits", num (store_hits - t.store0));
                  ] );
            ]))

let stats t =
  locked t.mu (fun () ->
      let hits, misses = E.cache_stats () in
      let store_hits = E.store_hit_count () in
      {
        s_received = t.received;
        s_simulate = t.n_simulate;
        s_analyze = t.n_analyze;
        s_tune = t.n_tune;
        s_report = t.n_report;
        s_protocol_errors = t.protocol_errors;
        s_distinct_keys = Hashtbl.length t.keys_seen;
        s_coalesced = t.coalesced;
        s_overloaded = t.overloaded;
        s_rejected_shutdown = t.rejected_shutdown;
        s_completed = t.completed;
        s_inflight = t.inflight;
        s_simulations = misses - t.misses0;
        s_memo_hits = hits - t.hits0;
        s_store_hits = store_hits - t.store0;
      })

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)

let run_entry t e compute =
  let outcome =
    match compute () with
    | r -> r
    | exception ex -> Error (P.Internal_error, Printexc.to_string ex)
  in
  let waiters =
    locked t.mu (fun () ->
        (* A force shutdown may have already swept this entry and
           answered its waiters; only the sweep or this task settles an
           entry, never both. *)
        match Hashtbl.find_opt t.inflight_tbl e.e_key with
        | Some e' when e' == e ->
            Hashtbl.remove t.inflight_tbl e.e_key;
            t.inflight <- t.inflight - 1;
            t.completed <- t.completed + 1;
            let ws = List.rev e.e_waiters in
            e.e_waiters <- [];
            ws
        | _ -> [])
  in
  List.iter
    (fun w ->
      let reply =
        match outcome with
        | Ok result -> P.Result { id = w.w_id; rtype = e.e_rtype; result }
        | Error (code, message) ->
            P.Error_reply { id = Some w.w_id; code; message }
      in
      finish w.w_conn w.w_seq (P.encode_reply reply))
    waiters

let dispatch t conn seq id req =
  locked t.mu (fun () ->
      match req with
      | P.Simulate _ -> t.n_simulate <- t.n_simulate + 1
      | P.Analyze _ -> t.n_analyze <- t.n_analyze + 1
      | P.Tune _ -> t.n_tune <- t.n_tune + 1
      | P.Report _ -> t.n_report <- t.n_report + 1);
  match req with
  | P.Report { live } ->
      finish conn seq
        (P.encode_reply
           (P.Result { id; rtype = "report"; result = report_json t ~live }))
  | _ -> (
      match resolve req with
      | Error (code, msg) -> finish conn seq (error_line id code msg)
      | Ok (key, rtype, compute) -> (
          let w = { w_conn = conn; w_seq = seq; w_id = id } in
          let verdict =
            locked t.mu (fun () ->
                Hashtbl.replace t.keys_seen key ();
                if t.shutting_down then begin
                  t.rejected_shutdown <- t.rejected_shutdown + 1;
                  `Reject (P.Shutting_down, "service is shutting down")
                end
                else
                  match Hashtbl.find_opt t.inflight_tbl key with
                  | Some e ->
                      t.coalesced <- t.coalesced + 1;
                      e.e_waiters <- w :: e.e_waiters;
                      `Attached
                  | None ->
                      if t.inflight >= t.max_inflight then begin
                        t.overloaded <- t.overloaded + 1;
                        `Reject
                          ( P.Overloaded,
                            Printf.sprintf
                              "at capacity (%d request%s in flight); retry \
                               after a drain"
                              t.inflight
                              (if t.inflight = 1 then "" else "s") )
                      end
                      else begin
                        let e = { e_key = key; e_rtype = rtype; e_waiters = [ w ] } in
                        Hashtbl.replace t.inflight_tbl key e;
                        t.inflight <- t.inflight + 1;
                        (* submit under [t.mu] so admission and
                           enqueueing are atomic w.r.t. cancel_queued *)
                        Pool.submit ~label:key t.pool (fun () ->
                            run_entry t e compute);
                        `Admitted
                      end)
          in
          match verdict with
          | `Reject (code, msg) -> finish conn seq (error_line id code msg)
          | `Attached | `Admitted -> ()))

let handle_line t conn line =
  let seq =
    locked conn.c_mu (fun () ->
        let s = conn.c_next in
        conn.c_next <- s + 1;
        s)
  in
  locked t.mu (fun () -> t.received <- t.received + 1);
  match P.decode_request line with
  | Error de ->
      locked t.mu (fun () -> t.protocol_errors <- t.protocol_errors + 1);
      finish conn seq (P.encode_reply (P.error_of_decode de))
  | Ok (id, req) -> dispatch t conn seq id req

(* ------------------------------------------------------------------ *)
(* Shutdown                                                            *)

let shutdown ?(drain = true) t =
  locked t.mu (fun () -> t.shutting_down <- true);
  if not drain then ignore (Pool.cancel_queued t.pool);
  (* Tasks already running always finish and answer their waiters. *)
  (try Pool.wait t.pool with _ -> ());
  (* Entries whose task was cancelled before it started are orphans:
     answer every waiter with a structured shutting_down error so no
     client hangs. *)
  let orphans =
    locked t.mu (fun () ->
        let es = Hashtbl.fold (fun _ e acc -> e :: acc) t.inflight_tbl [] in
        Hashtbl.reset t.inflight_tbl;
        t.inflight <- 0;
        t.rejected_shutdown <- t.rejected_shutdown + List.length (List.concat_map (fun e -> e.e_waiters) es);
        es)
  in
  List.iter
    (fun e ->
      let ws = List.rev e.e_waiters in
      e.e_waiters <- [];
      List.iter
        (fun w ->
          finish w.w_conn w.w_seq
            (error_line w.w_id P.Shutting_down
               "service shut down before this request ran"))
        ws)
    orphans;
  (match E.store () with Some st -> Store.flush_costs st | None -> ());
  Pool.shutdown t.pool
