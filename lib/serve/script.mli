(** Deterministic transcript replay for the protocol golden test.

    A script is line-oriented text: [#] comments and blank lines are
    echoed, [!service k=v ...] starts a fresh service session (keys
    [domains], [max_inflight]), [!shutdown] drain-shuts the current
    session in place (later requests then exercise the [shutting_down]
    reply), [!encode-error <code> <msg>] pins a reply encoding without a
    live trigger, and [> <line>] sends one request line. Requests run in
    lockstep — the engine waits for each reply before sending the next —
    so the transcript is byte-identical across -j levels and store
    temperatures; the inherently concurrent behaviors (coalescing,
    saturation) are covered by the stress tests instead. *)

val run : string -> string
(** Replay a script against live in-process services and return the
    full transcript: every input line echoed, each request followed by
    its [< <reply>] line. Any session left open at the end is
    drain-shut. *)

val golden_script : string
(** The canonical script behind [test/golden_serve.txt]: every request
    type, the wire defaults, machine-alias key identity, and every
    synchronously reachable error code. *)
