(* Transports: hook a Service onto stdio or a loopback TCP listener.

   Both speak the same line protocol: read one request per line, emit
   one reply per line. The TCP listener serves each accepted connection
   on its own [Thread] (system threads, not domains: connection handling
   is I/O-bound and the simulation work itself runs on the service's
   domain pool), so slow readers never block each other. *)

let serve_channels t ~ic ~oc =
  let conn =
    Service.conn ~write:(fun line ->
        output_string oc line;
        output_char oc '\n';
        flush oc)
  in
  let rec loop () =
    match input_line ic with
    | line ->
        Service.handle_line t conn line;
        loop ()
    | exception End_of_file -> ()
  in
  loop ()

let run_stdio t =
  serve_channels t ~ic:stdin ~oc:stdout;
  Service.shutdown ~drain:true t

let handle_client t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let conn =
    Service.conn ~write:(fun line ->
        (* a client that hangs up mid-reply is its own problem: swallow
           the broken pipe so the pool task fanning out to several
           waiters still reaches the live ones *)
        try
          output_string oc line;
          output_char oc '\n';
          flush oc
        with _ -> ())
  in
  let rec loop () =
    match input_line ic with
    | line ->
        Service.handle_line t conn line;
        loop ()
    | exception End_of_file -> ()
  in
  (try loop () with _ -> ());
  try Unix.close fd with _ -> ()

let run_tcp t ~port ?conns ?on_listen () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen sock 64;
  let actual_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  (match on_listen with Some f -> f actual_port | None -> ());
  let served = ref 0 in
  let threads = ref [] in
  let continue () = match conns with None -> true | Some n -> !served < n in
  while continue () do
    let fd, _ = Unix.accept sock in
    incr served;
    threads := Thread.create (handle_client t) fd :: !threads
  done;
  List.iter Thread.join !threads;
  (try Unix.close sock with _ -> ());
  Service.shutdown ~drain:true t
