(* The ninja-serve/v1 wire protocol.

   One request per line, one reply per line, both JSON objects rendered
   compactly (no internal newlines). Decoding is strict: a request is a
   JSON object whose every field is known for its type, with required
   fields present and every value of the right shape. Anything else maps
   to a structured error reply — never an exception — with a stable
   error code the clients (and the golden protocol tests) can match on.

   Replies echo the request's [id] verbatim so clients can correlate;
   error replies for requests whose id could not even be parsed carry
   [null]. *)

module Json = Ninja_report.Json

let version = "ninja-serve/v1"

type id = Id_num of float | Id_str of string

type request =
  | Simulate of { bench : string; machine : string; step : string }
  | Analyze of { bench : string; variant : string option }
  | Tune of { bench : string; machine : string }
  | Report of { live : bool }

type error_code =
  | Bad_json
  | Bad_request
  | Missing_field
  | Bad_field
  | Unknown_field
  | Unknown_type
  | Unknown_benchmark
  | Unknown_machine
  | Unknown_step
  | Unknown_variant
  | Overloaded
  | Shutting_down
  | Internal_error

let error_code_name = function
  | Bad_json -> "bad_json"
  | Bad_request -> "bad_request"
  | Missing_field -> "missing_field"
  | Bad_field -> "bad_field"
  | Unknown_field -> "unknown_field"
  | Unknown_type -> "unknown_type"
  | Unknown_benchmark -> "unknown_benchmark"
  | Unknown_machine -> "unknown_machine"
  | Unknown_step -> "unknown_step"
  | Unknown_variant -> "unknown_variant"
  | Overloaded -> "overloaded"
  | Shutting_down -> "shutting_down"
  | Internal_error -> "internal_error"

let all_error_codes =
  [
    Bad_json; Bad_request; Missing_field; Bad_field; Unknown_field;
    Unknown_type; Unknown_benchmark; Unknown_machine; Unknown_step;
    Unknown_variant; Overloaded; Shutting_down; Internal_error;
  ]

let error_code_of_name s =
  List.find_opt (fun c -> error_code_name c = s) all_error_codes

type reply =
  | Result of { id : id; rtype : string; result : Json.t }
  | Error_reply of { id : id option; code : error_code; message : string }

let request_type_name = function
  | Simulate _ -> "simulate"
  | Analyze _ -> "analyze"
  | Tune _ -> "tune"
  | Report _ -> "report"

let request_type_names = [ "simulate"; "analyze"; "tune"; "report" ]

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)

let id_json = function Id_num n -> Json.Num n | Id_str s -> Json.Str s

let request_fields = function
  | Simulate { bench; machine; step } ->
      [ ("bench", Json.Str bench); ("machine", Json.Str machine);
        ("step", Json.Str step) ]
  | Analyze { bench; variant } -> (
      ("bench", Json.Str bench)
      ::
      (match variant with
      | Some v -> [ ("variant", Json.Str v) ]
      | None -> []))
  | Tune { bench; machine } ->
      [ ("bench", Json.Str bench); ("machine", Json.Str machine) ]
  | Report { live } -> [ ("live", Json.Bool live) ]

let encode_request id req =
  Json.to_string ~indent:false
    (Json.Obj
       (("id", id_json id)
       :: ("type", Json.Str (request_type_name req))
       :: request_fields req))

let encode_reply = function
  | Result { id; rtype; result } ->
      Json.to_string ~indent:false
        (Json.Obj
           [ ("id", id_json id); ("ok", Json.Bool true);
             ("type", Json.Str rtype); ("result", result) ])
  | Error_reply { id; code; message } ->
      Json.to_string ~indent:false
        (Json.Obj
           [ ("id", match id with Some i -> id_json i | None -> Json.Null);
             ("ok", Json.Bool false);
             ( "error",
               Json.Obj
                 [ ("code", Json.Str (error_code_name code));
                   ("message", Json.Str message) ] ) ])

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)

type decode_error = { de_id : id option; de_code : error_code; de_msg : string }

let err ?id code msg = Error { de_id = id; de_code = code; de_msg = msg }

(* Per-type field specifications: every field a request may carry beyond
   [id]/[type]. Strictness lives here — a field outside the spec is
   [Unknown_field] even when its value would be well-formed. *)
let known_fields = function
  | "simulate" -> [ "bench"; "machine"; "step" ]
  | "analyze" -> [ "bench"; "variant" ]
  | "tune" -> [ "bench"; "machine" ]
  | "report" -> [ "live" ]
  | _ -> []

let opt_str ~id fields name =
  match List.assoc_opt name fields with
  | None -> Ok None
  | Some (Json.Str s) -> Ok (Some s)
  | Some _ -> err ~id Bad_field (Printf.sprintf "field %S must be a string" name)

let req_str ~id fields name =
  match opt_str ~id fields name with
  | Ok (Some s) -> Ok s
  | Ok None ->
      err ~id Missing_field (Printf.sprintf "missing required field %S" name)
  | Error e -> Error e

let opt_bool ~id fields name ~default =
  match List.assoc_opt name fields with
  | None -> Ok default
  | Some (Json.Bool b) -> Ok b
  | Some _ ->
      err ~id Bad_field (Printf.sprintf "field %S must be a boolean" name)

let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

let decode_typed id fields rtype =
  let known = "id" :: "type" :: known_fields rtype in
  match
    List.find_opt (fun (k, _) -> not (List.mem k known)) fields
  with
  | Some (k, _) ->
      err ~id Unknown_field
        (Printf.sprintf "unknown field %S for request type %S" k rtype)
  | None -> (
      match rtype with
      | "simulate" ->
          let* bench = req_str ~id fields "bench" in
          let* machine =
            let* m = opt_str ~id fields "machine" in
            Ok (Option.value m ~default:"westmere")
          in
          let* step =
            let* s = opt_str ~id fields "step" in
            Ok (Option.value s ~default:"ninja")
          in
          Ok (id, Simulate { bench; machine; step })
      | "analyze" ->
          let* bench = req_str ~id fields "bench" in
          let* variant = opt_str ~id fields "variant" in
          Ok (id, Analyze { bench; variant })
      | "tune" ->
          let* bench = req_str ~id fields "bench" in
          let* machine =
            let* m = opt_str ~id fields "machine" in
            Ok (Option.value m ~default:"westmere")
          in
          Ok (id, Tune { bench; machine })
      | "report" ->
          let* live = opt_bool ~id fields "live" ~default:false in
          Ok (id, Report { live })
      | other ->
          err ~id Unknown_type
            (Printf.sprintf "unknown request type %S (have: %s)" other
               (String.concat ", " request_type_names)))

let decode_request line =
  match Json.parse line with
  | exception Json.Parse_error m -> err Bad_json m
  | Json.Obj fields -> (
      let id =
        match List.assoc_opt "id" fields with
        | Some (Json.Num n) -> Ok (Id_num n)
        | Some (Json.Str s) -> Ok (Id_str s)
        | Some _ -> err Bad_field "field \"id\" must be a number or a string"
        | None -> err Missing_field "missing required field \"id\""
      in
      let* id = id in
      match List.assoc_opt "type" fields with
      | Some (Json.Str rtype) -> decode_typed id fields rtype
      | Some _ -> err ~id Bad_field "field \"type\" must be a string"
      | None -> err ~id Missing_field "missing required field \"type\"")
  | _ -> err Bad_request "a request must be a JSON object"

let error_of_decode { de_id; de_code; de_msg } =
  Error_reply { id = de_id; code = de_code; message = de_msg }
