(** Request-name resolution: machines, benchmarks, variants and ladder
    steps, with structured errors.

    Every resolver returns [Error (code, message)] — the exact
    {!Protocol.error_code} and human message the service puts in its
    error reply — instead of raising, so a misspelled name in a
    well-formed request can never crash a connection. The machine name
    table is the single source of truth shared with [ninja_cli]'s
    [--machine] flag. *)

val machine_names : string list
(** The canonical preset names, in presentation order (aliases like
    ["core2"] and ["knf"] resolve but are not listed). *)

val machine_of_name :
  string ->
  (Ninja_arch.Machine.t, Protocol.error_code * string) result
(** Case-insensitive preset lookup; [Error (Unknown_machine, _)] lists
    the valid names. *)

val bench_of_name :
  string ->
  (Ninja_kernels.Driver.benchmark, Protocol.error_code * string) result
(** Registry lookup; [Error (Unknown_benchmark, _)] lists the suite. *)

val variants_of_bench :
  Ninja_kernels.Driver.benchmark ->
  variant:string option ->
  ((string * string) list, Protocol.error_code * string) result
(** The benchmark's Cee sources to analyze: all of them when [variant]
    is [None], the named one otherwise ([Error (Unknown_variant, _)]
    when it does not exist). *)

val step_of_bench :
  Ninja_kernels.Driver.benchmark ->
  string ->
  (string, Protocol.error_code * string) result
(** Check a ladder-step name against the benchmark's ladder at its
    default scale, plus the synthetic ["tuned"] rung. Builds (or reuses)
    the memoized ladder, so the first call per benchmark costs a
    compile. *)
