(** Transports for the simulation service: stdio and loopback TCP.

    Both read one request per line and write one reply per line (the
    {!Protocol} framing). The service itself is transport-agnostic;
    these are thin adapters over {!Service.handle_line}. *)

val serve_channels : Service.t -> ic:in_channel -> oc:out_channel -> unit
(** Serve one client on a channel pair: read [ic] to end-of-file,
    feeding every line to the service, replies written (and flushed) to
    [oc] in request order. Returns at EOF without shutting the service
    down — the building block for both transports and the in-process
    tests. *)

val run_stdio : Service.t -> unit
(** Serve stdin/stdout until EOF, then {!Service.shutdown} with a full
    drain — every accepted request is answered before return. The
    [ninja_cli serve --stdio] main loop. *)

val run_tcp :
  Service.t ->
  port:int -> ?conns:int -> ?on_listen:(int -> unit) -> unit -> unit
(** Listen on [127.0.0.1:port] ([port = 0] picks an ephemeral port) and
    serve each accepted connection on its own system thread. [on_listen]
    receives the actual bound port once the socket is listening — how
    tests connect to an ephemeral port without a race. With [conns] the
    listener stops accepting after that many connections, joins their
    threads, shuts the service down (full drain) and returns; without
    it, serves forever. *)
