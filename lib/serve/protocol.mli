(** The [ninja-serve/v1] wire protocol: typed requests and replies with
    strict line-delimited JSON encoding.

    One request per line, one reply per line, both compact JSON objects
    (never containing a newline). A request is an object with a required
    ["id"] (number or string, echoed verbatim in the reply), a required
    ["type"], and only the fields that type knows — unknown fields are
    rejected, not ignored, so client typos surface as structured
    {!Error_reply}s instead of silently-defaulted behavior. Decoding
    never raises: every malformed input maps to a {!decode_error} with a
    stable {!error_code}. *)

val version : string
(** ["ninja-serve/v1"], reported by the service's [report] result. *)

(** A request/reply correlation id, number or string, echoed verbatim. *)
type id = Id_num of float | Id_str of string

(** The four request types. [Simulate] runs one ladder step of one
    benchmark on one machine through the cached experiment engine;
    [Analyze] runs source dependence analysis on a benchmark kernel
    variant; [Tune] runs the auto-tuning driver; [Report] returns
    service/traffic statistics (with timing-dependent counters only when
    [live] is set, keeping the default reply deterministic). [machine]
    defaults to ["westmere"] and [step] to ["ninja"] when omitted on the
    wire. *)
type request =
  | Simulate of { bench : string; machine : string; step : string }
  | Analyze of { bench : string; variant : string option }
  | Tune of { bench : string; machine : string }
  | Report of { live : bool }

(** Stable machine-readable failure classes. The first six are protocol
    shape errors; the [Unknown_*] name errors mean a well-formed request
    named something the registry/ladder does not have; [Overloaded] is
    the backpressure reply past [--max-inflight]; [Shutting_down]
    rejects work arriving after shutdown began; [Internal_error] wraps
    unexpected exceptions from the engine. *)
type error_code =
  | Bad_json
  | Bad_request
  | Missing_field
  | Bad_field
  | Unknown_field
  | Unknown_type
  | Unknown_benchmark
  | Unknown_machine
  | Unknown_step
  | Unknown_variant
  | Overloaded
  | Shutting_down
  | Internal_error

val error_code_name : error_code -> string
(** The wire name, e.g. [Bad_json] → ["bad_json"]. *)

val error_code_of_name : string -> error_code option
(** Inverse of {!error_code_name}; [None] for unknown names. *)

val all_error_codes : error_code list
(** Every code, in declaration order — the golden-test enumeration. *)

(** A reply: either a successful [Result] carrying the request's type
    name and a type-specific JSON payload, or an [Error_reply] whose
    [id] is [None] only when the request's id itself was unparseable. *)
type reply =
  | Result of { id : id; rtype : string; result : Ninja_report.Json.t }
  | Error_reply of { id : id option; code : error_code; message : string }

val request_type_name : request -> string
(** The wire ["type"] value of a request. *)

val request_type_names : string list
(** All request type names, in fixed presentation order. *)

val encode_request : id -> request -> string
(** Render one request as a single compact JSON line (no newline).
    Always emits every field, including ones that equal the wire
    default, so [decode_request (encode_request id r) = Ok (id, r)]. *)

val encode_reply : reply -> string
(** Render one reply as a single compact JSON line (no newline). *)

(** A structured decode failure: the offending request's id when it
    could be recovered, a stable code, and a human-readable message. *)
type decode_error = { de_id : id option; de_code : error_code; de_msg : string }

val decode_request : string -> (id * request, decode_error) result
(** Strictly parse one request line. Never raises; any malformed input —
    bad JSON, non-object, missing/badly-typed [id] or [type], unknown
    type, unknown field, wrong field shape — becomes [Error]. *)

val error_of_decode : decode_error -> reply
(** The {!Error_reply} a service sends for a failed decode. *)
