(* Name resolution for wire requests: machine presets, benchmarks,
   source variants and ladder steps, each mapping a bad name to the
   matching Protocol error code instead of raising. The machine table
   mirrors ninja_cli's presets (which delegates here) so the CLI and the
   service can never drift apart. *)

module Machine = Ninja_arch.Machine
module Driver = Ninja_kernels.Driver
module P = Protocol

let machine_names =
  [ "westmere"; "mic"; "kentsfield"; "nehalem"; "future1"; "future2"; "future3" ]

let machine_of_name name =
  match String.lowercase_ascii name with
  | "kentsfield" | "core2" -> Ok Machine.kentsfield
  | "nehalem" -> Ok Machine.nehalem
  | "westmere" -> Ok Machine.westmere
  | "mic" | "knf" | "knights-ferry" -> Ok Machine.knights_ferry
  | "future1" -> Ok (Machine.future ~generation:1)
  | "future2" -> Ok (Machine.future ~generation:2)
  | "future3" -> Ok (Machine.future ~generation:3)
  | other ->
      Error
        ( P.Unknown_machine,
          Printf.sprintf "unknown machine %S (have: %s)" other
            (String.concat ", " machine_names) )

let bench_of_name name =
  match Ninja_kernels.Registry.find name with
  | b -> Ok b
  | exception Invalid_argument _ ->
      Error
        ( P.Unknown_benchmark,
          Printf.sprintf "unknown benchmark %S (have: %s)" name
            (String.concat ", "
               (List.map
                  (fun (b : Driver.benchmark) -> b.b_name)
                  Ninja_kernels.Registry.all)) )

let variants_of_bench (b : Driver.benchmark) ~variant =
  match variant with
  | None -> Ok b.b_sources
  | Some v -> (
      match List.assoc_opt v b.b_sources with
      | Some src -> Ok [ (v, src) ]
      | None ->
          Error
            ( P.Unknown_variant,
              Printf.sprintf "benchmark %s has no %S variant (has: %s)"
                b.b_name v
                (String.concat ", " (List.map fst b.b_sources)) ))

(* The synthetic rung run_step_cached knows beyond the benchmark's own
   ladder. *)
let synthetic_steps = [ "tuned" ]

let step_of_bench (b : Driver.benchmark) name =
  let ladder = Ninja_core.Experiments.ladder b ~scale:b.default_scale in
  let names =
    List.map (fun (s : Driver.step) -> s.step_name) ladder @ synthetic_steps
  in
  if List.mem name names then Ok name
  else
    Error
      ( P.Unknown_step,
        Printf.sprintf "benchmark %s has no %S step (has: %s)" b.b_name name
          (String.concat ", " names) )
