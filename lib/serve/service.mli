(** The simulation service core: validation, request coalescing,
    admission control, and in-order reply emission.

    A service owns a {!Ninja_util.Pool} of worker domains. Each incoming
    line gets a per-connection sequence number at ingest, is strictly
    decoded ({!Protocol.decode_request}) and name-validated, and is then
    either answered synchronously (decode errors, name errors, [report],
    backpressure/shutdown rejections) or dispatched to the pool.
    Identical in-flight work requests {e coalesce}: the service keys
    each request on its resolved parameters, and a request whose key is
    already being computed attaches as a waiter to that computation
    instead of consuming an admission slot — one simulation fans its
    result out to every waiter. Distinct keys are admitted only while
    fewer than [max_inflight] are in flight; past that the service
    answers [overloaded] immediately (closed-loop backpressure).

    Replies are released strictly in each connection's request order
    through a reorder buffer, so a connection's reply stream is a pure
    function of its request stream — byte-identical across [-j] levels
    and store temperatures. Timing-dependent counters appear only in the
    [report] request's opt-in ["live"] section and in {!stats}. *)

type t

type conn
(** One client connection: a sequence counter, a reply reorder buffer,
    and a writer. Connections are cheap; make one per client. *)

val default_max_inflight : int
(** [64] — the default admission bound. *)

val create : ?domains:int -> ?max_inflight:int -> unit -> t
(** Spawn a service over a fresh pool of [domains] workers (default
    {!Ninja_util.Pool.default_domains}; clamped to at least 1).
    [max_inflight] (default {!default_max_inflight}, clamped to at least
    0) bounds concurrently-admitted {e distinct} work keys; [0] makes
    every work request answer [overloaded] — the deterministic-
    backpressure configuration the golden tests use. Engine counters
    ({!Ninja_core.Experiments.cache_stats}) are baselined here so
    {!stats} reports deltas for this service's lifetime. *)

val conn : write:(string -> unit) -> conn
(** A new connection whose replies are emitted through [write], one
    complete reply line (no trailing newline) per call. [write] is
    called under the connection's lock — never concurrently with
    itself — and in request order. *)

val handle_line : t -> conn -> string -> unit
(** Ingest one request line. Always results in exactly one reply line
    for this position in the stream — possibly emitted later, when the
    pool task finishes, but never out of order. Never raises on any
    input; engine exceptions become [internal_error] replies. *)

val shutdown : ?drain:bool -> t -> unit
(** Stop the service: new work is answered [shutting_down] from the
    moment shutdown begins. With [drain] (the default) every admitted
    request finishes and is answered normally; with [~drain:false] the
    queued backlog is cancelled ({!Ninja_util.Pool.cancel_queued}) and
    the waiters of never-started entries are answered [shutting_down] —
    no client hangs either way. Running tasks always finish. Flushes the
    installed store's cost estimates and joins the pool; the service
    must not be used afterwards. *)

val pool : t -> Ninja_util.Pool.t
(** The underlying pool — exposed so the saturation tests can occupy
    workers deterministically (a blocker task holding a lock) before
    submitting requests. *)

(** A snapshot of the service counters, all since {!create}. The
    [s_simulations]/[s_memo_hits]/[s_store_hits] trio are deltas of the
    global engine counters — [s_simulations] is the number of
    simulations actually executed, the coalescing tests' ground truth. *)
type stats = {
  s_received : int;  (** lines ingested, well-formed or not *)
  s_simulate : int;  (** decoded [simulate] requests *)
  s_analyze : int;  (** decoded [analyze] requests *)
  s_tune : int;  (** decoded [tune] requests *)
  s_report : int;  (** decoded [report] requests *)
  s_protocol_errors : int;  (** lines rejected at decode *)
  s_distinct_keys : int;  (** distinct resolved work keys seen *)
  s_coalesced : int;  (** requests attached to an in-flight computation *)
  s_overloaded : int;  (** requests rejected by admission control *)
  s_rejected_shutdown : int;  (** requests rejected or orphaned by shutdown *)
  s_completed : int;  (** work entries finished *)
  s_inflight : int;  (** work entries currently admitted *)
  s_simulations : int;  (** engine simulations actually executed *)
  s_memo_hits : int;  (** engine in-memory memo hits *)
  s_store_hits : int;  (** engine persistent-store hits *)
}

val stats : t -> stats
(** Snapshot the counters. Quiescent (post-{!shutdown} or idle) reads
    are exact; mid-flight reads are an instantaneous mixture. *)
