(* Deterministic transcript replay: the engine behind the protocol
   golden test and its generator.

   A script is a line-oriented text: comments and blank lines are echoed
   verbatim, [!...] directives manage service sessions, and [> ...]
   lines are request lines sent to the live service. The engine runs in
   lockstep — after sending a request it blocks until that request's
   reply has been emitted, then appends it as a [< ...] line — so the
   output transcript is a pure function of the script, byte-identical
   across -j levels and cache temperatures. (Coalescing and saturation
   behavior, which are inherently concurrent, are covered by the stress
   tests instead.) *)

(* One connection's reply sink: replies in arrival order plus a count to
   block on. *)
type sink = {
  mu : Mutex.t;
  cond : Condition.t;
  mutable replies : string list;  (* newest first *)
  mutable count : int;
}

let make_sink () =
  { mu = Mutex.create (); cond = Condition.create (); replies = []; count = 0 }

let sink_write s line =
  Mutex.lock s.mu;
  s.replies <- line :: s.replies;
  s.count <- s.count + 1;
  Condition.signal s.cond;
  Mutex.unlock s.mu

(* Block until at least [n] replies have arrived, then return the [n]th
   (1-based) — the one the lockstep loop just caused. *)
let sink_await s n =
  Mutex.lock s.mu;
  while s.count < n do
    Condition.wait s.cond s.mu
  done;
  let r = List.nth s.replies (s.count - n) in
  Mutex.unlock s.mu;
  r

type session = {
  svc : Service.t;
  conn : Service.conn;
  sink : sink;
  mutable sent : int;
  mutable shut : bool;
}

let parse_kv defaults line =
  (* "!service domains=1 max_inflight=4" *)
  String.split_on_char ' ' line
  |> List.filter (fun s -> s <> "")
  |> List.fold_left
       (fun acc tok ->
         match String.index_opt tok '=' with
         | None -> acc
         | Some i ->
             let k = String.sub tok 0 i in
             let v = String.sub tok (i + 1) (String.length tok - i - 1) in
             (k, v) :: acc)
       defaults

let start_session line =
  let kv = parse_kv [] line in
  let int_of k default =
    match List.assoc_opt k kv with
    | Some v -> ( match int_of_string_opt v with Some i -> i | None -> default)
    | None -> default
  in
  let svc =
    Service.create ~domains:(int_of "domains" 1)
      ~max_inflight:(int_of "max_inflight" Service.default_max_inflight)
      ()
  in
  let sink = make_sink () in
  let conn = Service.conn ~write:(sink_write sink) in
  { svc; conn; sink; sent = 0; shut = false }

let close_session s =
  if not s.shut then begin
    s.shut <- true;
    Service.shutdown ~drain:true s.svc
  end

let strip_prefix p line =
  if String.length line >= String.length p
     && String.sub line 0 (String.length p) = p
  then Some (String.sub line (String.length p) (String.length line - String.length p))
  else None

let run script =
  let out = Buffer.create 4096 in
  let emit l =
    Buffer.add_string out l;
    Buffer.add_char out '\n'
  in
  let session = ref None in
  let lines = String.split_on_char '\n' script in
  (* a trailing newline in the script yields one empty trailing element;
     drop it so echoing does not add a blank line *)
  let lines =
    match List.rev lines with "" :: rest -> List.rev rest | _ -> lines
  in
  List.iter
    (fun line ->
      match strip_prefix "> " line with
      | Some req -> (
          emit line;
          match !session with
          | None -> emit "! error: no active service session"
          | Some s ->
              Service.handle_line s.svc s.conn req;
              s.sent <- s.sent + 1;
              emit ("< " ^ sink_await s.sink s.sent))
      | None -> (
          match strip_prefix "!service" line with
          | Some args ->
              Option.iter close_session !session;
              emit line;
              session := Some (start_session args)
          | None -> (
              match strip_prefix "!shutdown" line with
              | Some _ ->
                  emit line;
                  (* drain-shutdown the session but keep it current:
                     later requests exercise the shutting_down reply *)
                  Option.iter close_session !session
              | None -> (
                  match strip_prefix "!encode-error " line with
                  | Some rest ->
                      emit line;
                      let code_name, msg =
                        match String.index_opt rest ' ' with
                        | Some i ->
                            ( String.sub rest 0 i,
                              String.sub rest (i + 1)
                                (String.length rest - i - 1) )
                        | None -> (rest, "")
                      in
                      let code =
                        match Protocol.error_code_of_name code_name with
                        | Some c -> c
                        | None -> Protocol.Internal_error
                      in
                      emit
                        ("< "
                        ^ Protocol.encode_reply
                            (Protocol.Error_reply
                               { id = None; code; message = msg }))
                  | None ->
                      (* comments, blank lines, anything else: echo *)
                      emit line))))
    lines;
  Option.iter close_session !session;
  Buffer.contents out

(* ------------------------------------------------------------------ *)
(* The canonical golden script                                         *)

(* Every request type, every wire default, and every synchronously
   reachable error code. Simulation-bearing requests stay on the
   cheapest benchmark/step pairs so the golden regenerates in seconds.
   internal_error has no deterministic trigger, so its shape is pinned
   with an encode-only fixture. *)
let golden_script =
  String.concat "\n"
    [
      "# ninja-serve/v1 protocol golden transcript";
      "# regenerate: dune exec tools/gen_serve_golden.exe > test/golden_serve.txt";
      "";
      "!service domains=1 max_inflight=4";
      "";
      "# --- happy paths ---------------------------------------------";
      "> {\"id\": 1, \"type\": \"report\"}";
      "> {\"id\": \"an-1\", \"type\": \"analyze\", \"bench\": \"blackscholes\", \"variant\": \"naive\"}";
      "> {\"id\": 2, \"type\": \"analyze\", \"bench\": \"blackscholes\"}";
      "> {\"id\": 3, \"type\": \"simulate\", \"bench\": \"blackscholes\", \"machine\": \"westmere\", \"step\": \"+autovec\"}";
      "# wire defaults: machine westmere, step ninja";
      "> {\"id\": 4, \"type\": \"simulate\", \"bench\": \"blackscholes\"}";
      "# machine aliases resolve to the same key (knf = knights-ferry)";
      "> {\"id\": 5, \"type\": \"simulate\", \"bench\": \"blackscholes\", \"machine\": \"knf\", \"step\": \"+autovec\"}";
      "> {\"id\": 6, \"type\": \"report\"}";
      "";
      "# --- protocol shape errors -----------------------------------";
      "> not json at all";
      "> {\"id\": 7, \"type\": \"simulate\", \"bench\"";
      "> [1, 2, 3]";
      "> \"just a string\"";
      "> {\"type\": \"report\"}";
      "> {\"id\": true, \"type\": \"report\"}";
      "> {\"id\": 8}";
      "> {\"id\": 9, \"type\": 42}";
      "> {\"id\": 10, \"type\": \"frobnicate\"}";
      "> {\"id\": 11, \"type\": \"simulate\"}";
      "> {\"id\": 12, \"type\": \"simulate\", \"bench\": 3}";
      "> {\"id\": 13, \"type\": \"simulate\", \"bench\": \"blackscholes\", \"threads\": 4}";
      "> {\"id\": 14, \"type\": \"report\", \"live\": \"yes\"}";
      "";
      "# --- name errors ---------------------------------------------";
      "> {\"id\": 15, \"type\": \"simulate\", \"bench\": \"quicksort\"}";
      "> {\"id\": 16, \"type\": \"simulate\", \"bench\": \"blackscholes\", \"machine\": \"pentium\"}";
      "> {\"id\": 17, \"type\": \"simulate\", \"bench\": \"blackscholes\", \"step\": \"+magic\"}";
      "> {\"id\": 18, \"type\": \"analyze\", \"bench\": \"blackscholes\", \"variant\": \"mystery\"}";
      "";
      "# --- backpressure: max_inflight=0 rejects all work ------------";
      "!service domains=1 max_inflight=0";
      "> {\"id\": 19, \"type\": \"simulate\", \"bench\": \"blackscholes\", \"step\": \"+autovec\"}";
      "# report is served at ingest and never needs an admission slot";
      "> {\"id\": 20, \"type\": \"report\"}";
      "";
      "# --- shutdown semantics --------------------------------------";
      "!shutdown";
      "> {\"id\": 21, \"type\": \"simulate\", \"bench\": \"blackscholes\", \"step\": \"+autovec\"}";
      "";
      "# --- internal_error reply shape (encode-only fixture) ---------";
      "!encode-error internal_error something unexpected happened";
      "";
    ]
