(* Cycle-attribution profiler: aggregates the typed event stream that
   Interp.run and Timing.simulate emit (see Ninja_vm.Trace) into per-scope
   and per-benchmark attribution, plus Chrome-trace spans.

   Two invariants matter here:

   - The chip-level numbers are EVENT-DERIVED, not copied from the timing
     report: per-thread instruction counts are rebuilt from [Op] events and
     repriced with [Timing.issue_time], stalls are summed from [Access]
     events, DRAM traffic from [Access]/[Drain] events. The classification
     rule is then the timing model's verbatim — so `classify` agreeing with
     [report.bound] is an end-to-end check that no event was lost or
     double-counted (a test asserts it over the whole suite).

   - Everything is deterministic: the interpreter runs threads one after
     another, scopes are kept in first-seen order, and the per-thread
     virtual clocks that give Chrome spans their timestamps advance only by
     modeled costs. Two runs of the same profile are byte-identical. *)

module Machine = Ninja_arch.Machine
module Timing = Ninja_arch.Timing
module Driver = Ninja_kernels.Driver
open Ninja_vm

type kind = Kloop | Kphase

type span = {
  sp_thread : int;
  sp_label : string;
  sp_kind : kind;
  sp_t0 : float; (* virtual cycles at scope entry *)
  sp_t1 : float;
}

(* Mutable per-scope accumulator, merged across threads by label. *)
type stats = {
  s_label : string;
  s_kind : kind;
  mutable s_instrs : int;
  s_classes : int array; (* by Isa.op_class_index *)
  mutable s_stall : float;
  mutable s_dram_bytes : int;
  s_levels : int array; (* accesses by deepest Trace.level *)
  mutable s_covered : int; (* prefetch-covered misses *)
  mutable s_lanes_active : int;
  mutable s_lanes_total : int;
}

let fresh_stats label kind =
  {
    s_label = label;
    s_kind = kind;
    s_instrs = 0;
    s_classes = Array.make Isa.op_class_count 0;
    s_stall = 0.;
    s_dram_bytes = 0;
    s_levels = Array.make 4 0;
    s_covered = 0;
    s_lanes_active = 0;
    s_lanes_total = 0;
  }

type open_scope = { os_scope : Trace.scope; os_stats : stats; os_t0 : float }

type collector = {
  c_machine : Machine.t;
  c_n_threads : int;
  scopes : (string, stats) Hashtbl.t;
  mutable order : string list; (* first-seen, reversed *)
  stacks : open_scope list array; (* per thread *)
  clock : float array; (* per-thread virtual cycles *)
  in_seq : bool array; (* thread currently inside a sequential phase *)
  counts : Counts.t; (* rebuilt from Op events *)
  seq_classes : int array; (* Op events inside sequential phases *)
  mutable seq_stall : float;
  stalls : float array; (* per thread, from Access events *)
  mutable dram_bytes : int;
  mutable lanes_active : int;
  mutable lanes_total : int;
  mutable spans : span list; (* reversed *)
  mutable events : int;
}

let collector ~machine ~n_threads =
  {
    c_machine = machine;
    c_n_threads = n_threads;
    scopes = Hashtbl.create 64;
    order = [];
    stacks = Array.make n_threads [];
    clock = Array.make n_threads 0.;
    in_seq = Array.make n_threads false;
    counts = Counts.create n_threads;
    seq_classes = Array.make Isa.op_class_count 0;
    seq_stall = 0.;
    stalls = Array.make n_threads 0.;
    dram_bytes = 0;
    lanes_active = 0;
    lanes_total = 0;
    spans = [];
    events = 0;
  }

let scope_kind : Trace.scope -> kind = function
  | Trace.Loop _ -> Kloop
  | Trace.Phase _ -> Kphase

let stats_for c scope =
  let label = Trace.scope_label scope in
  match Hashtbl.find_opt c.scopes label with
  | Some s -> s
  | None ->
      let s = fresh_stats label (scope_kind scope) in
      Hashtbl.replace c.scopes label s;
      c.order <- label :: c.order;
      s

(* Attribute to the innermost open scope of the thread. Every instruction
   is inside at least the phase scope; "(outside)" only shows up for
   synthetic streams in tests. *)
let top c thread =
  match c.stacks.(thread) with
  | { os_stats; _ } :: _ -> os_stats
  | [] -> stats_for c (Trace.Loop "(outside)")

let feed c (ev : Trace.event) =
  c.events <- c.events + 1;
  match ev with
  | Enter { thread; scope } ->
      let st = stats_for c scope in
      (match scope with
      | Trace.Phase { parallel; _ } -> c.in_seq.(thread) <- not parallel
      | Trace.Loop _ -> ());
      c.stacks.(thread) <-
        { os_scope = scope; os_stats = st; os_t0 = c.clock.(thread) } :: c.stacks.(thread)
  | Exit { thread; scope } -> (
      match c.stacks.(thread) with
      | { os_scope; os_stats; os_t0 } :: rest when os_scope = scope ->
          c.stacks.(thread) <- rest;
          (match scope with
          | Trace.Phase _ -> c.in_seq.(thread) <- false
          | Trace.Loop _ -> ());
          c.spans <-
            {
              sp_thread = thread;
              sp_label = os_stats.s_label;
              sp_kind = os_stats.s_kind;
              sp_t0 = os_t0;
              sp_t1 = c.clock.(thread);
            }
            :: c.spans
      | _ ->
          invalid_arg
            (Fmt.str "Profile: unbalanced scope exit %S on thread %d"
               (Trace.scope_label scope) thread))
  | Op { thread; cls } ->
      let st = top c thread in
      st.s_instrs <- st.s_instrs + 1;
      let i = Isa.op_class_index cls in
      st.s_classes.(i) <- st.s_classes.(i) + 1;
      Counts.add c.counts ~thread cls 1;
      if c.in_seq.(thread) then c.seq_classes.(i) <- c.seq_classes.(i) + 1;
      c.clock.(thread) <- c.clock.(thread) +. c.c_machine.issue_cost cls
  | Lanes { thread; active; width } ->
      let st = top c thread in
      st.s_lanes_active <- st.s_lanes_active + active;
      st.s_lanes_total <- st.s_lanes_total + width;
      c.lanes_active <- c.lanes_active + active;
      c.lanes_total <- c.lanes_total + width
  | Access { thread; level; covered; stall; bytes = _; write = _; dram_bytes } ->
      let st = top c thread in
      let li = Trace.level_index level in
      st.s_levels.(li) <- st.s_levels.(li) + 1;
      if covered then st.s_covered <- st.s_covered + 1;
      st.s_stall <- st.s_stall +. stall;
      st.s_dram_bytes <- st.s_dram_bytes + dram_bytes;
      c.stalls.(thread) <- c.stalls.(thread) +. stall;
      if c.in_seq.(thread) then c.seq_stall <- c.seq_stall +. stall;
      c.dram_bytes <- c.dram_bytes + dram_bytes;
      c.clock.(thread) <- c.clock.(thread) +. stall
  | Drain { dram_bytes } -> c.dram_bytes <- c.dram_bytes + dram_bytes

let sink c : Trace.sink = feed c

(* ------------------------------------------------------------------ *)
(* Finalized profile                                                   *)

type row = {
  r_label : string;
  r_kind : kind;
  r_instrs : int;
  r_issue : float;
  r_stall : float;
  r_cycles : float; (* r_issue +. r_stall *)
  r_share : float; (* of the summed work of all scopes *)
  r_dram_mb : float;
  r_levels : int array; (* L1 / L2 / LLC / DRAM access counts *)
  r_covered : int;
  r_lane_util : float option; (* None: no masked vector accesses *)
}

type t = {
  prog_name : string;
  step_name : string;
  machine : Machine.t;
  n_threads : int;
  report : Timing.report;
  rows : row list; (* first-seen scope order *)
  spans : span list; (* program order *)
  events : int;
  (* event-derived chip attribution (slowest thread, as in the model) *)
  issue : float;
  stall : float;
  dram_time : float;
  serial : float; (* modeled cycles spent in sequential phases *)
  bound : Timing.bound; (* classification recomputed from events *)
  lane_util : float option;
}

let counts_of_classes classes =
  let counts = Counts.create 1 in
  List.iter
    (fun cls ->
      let n = classes.(Isa.op_class_index cls) in
      if n > 0 then Counts.add counts ~thread:0 cls n)
    Isa.all_op_classes;
  counts

(* Port-model price of one scope's own instructions (same formula the
   timing model applies to whole threads). *)
let scope_issue machine classes =
  Timing.issue_time machine (counts_of_classes classes) ~thread:0

let finalize c ~report ~prog_name ~step_name =
  Array.iteri
    (fun t stack ->
      if stack <> [] then
        invalid_arg (Fmt.str "Profile: scope left open on thread %d" t))
    c.stacks;
  let m = c.c_machine in
  let issue = Array.init c.c_n_threads (fun t -> Timing.issue_time m c.counts ~thread:t) in
  let slowest = ref 0 in
  let time t = issue.(t) +. c.stalls.(t) in
  for t = 1 to c.c_n_threads - 1 do
    if time t > time !slowest then slowest := t
  done;
  let chip = time !slowest in
  let dram_time = float_of_int c.dram_bytes /. Machine.bytes_per_cycle m in
  (* the timing model's classification rule, verbatim, over event-derived
     inputs — must reproduce [report.bound] *)
  let bound : Timing.bound =
    if dram_time >= chip then Bandwidth
    else if c.stalls.(!slowest) > issue.(!slowest) then Latency
    else Compute
  in
  let serial = scope_issue m c.seq_classes +. c.seq_stall in
  let scope_cycles = Hashtbl.create 16 in
  let total_work = ref 0. in
  List.iter
    (fun label ->
      let s = Hashtbl.find c.scopes label in
      let cyc = scope_issue m s.s_classes +. s.s_stall in
      Hashtbl.replace scope_cycles label cyc;
      total_work := !total_work +. cyc)
    (List.rev c.order);
  let rows =
    List.map
      (fun label ->
        let s = Hashtbl.find c.scopes label in
        let cyc = Hashtbl.find scope_cycles label in
        {
          r_label = label;
          r_kind = s.s_kind;
          r_instrs = s.s_instrs;
          r_issue = cyc -. s.s_stall;
          r_stall = s.s_stall;
          r_cycles = cyc;
          r_share = (if !total_work > 0. then cyc /. !total_work else 0.);
          r_dram_mb = float_of_int s.s_dram_bytes /. 1e6;
          r_levels = Array.copy s.s_levels;
          r_covered = s.s_covered;
          r_lane_util =
            (if s.s_lanes_total = 0 then None
             else Some (float_of_int s.s_lanes_active /. float_of_int s.s_lanes_total));
        })
      (List.rev c.order)
  in
  {
    prog_name;
    step_name;
    machine = m;
    n_threads = c.c_n_threads;
    report;
    rows;
    spans = List.rev c.spans;
    events = c.events;
    issue = issue.(!slowest);
    stall = c.stalls.(!slowest);
    dram_time;
    serial;
    bound;
    lane_util =
      (if c.lanes_total = 0 then None
       else Some (float_of_int c.lanes_active /. float_of_int c.lanes_total));
  }

(* ------------------------------------------------------------------ *)
(* Running a benchmark step under the profiler                         *)

let of_step ~machine ~prog_name (step : Driver.step) =
  let n_threads = if step.parallel then machine.Machine.cores else 1 in
  let c = collector ~machine ~n_threads in
  let report = Driver.run_step ~trace:(sink c) ~machine step in
  finalize c ~report ~prog_name ~step_name:step.step_name

(* ------------------------------------------------------------------ *)
(* Fractions and tables                                                *)

(* Shares of the end-to-end modeled cycles each resource accounts for.
   They need not sum to 1: execution overlaps compute with DRAM traffic
   (the model takes the max), and barrier/spawn overhead belongs to no
   resource. *)
type fractions = {
  f_compute : float;
  f_bandwidth : float;
  f_latency : float;
  f_serial : float;
}

let fractions t =
  let d = Float.max t.report.cycles 1. in
  {
    f_compute = t.issue /. d;
    f_bandwidth = t.dram_time /. d;
    f_latency = t.stall /. d;
    f_serial = t.serial /. d;
  }

let kind_name = function Kloop -> "loop" | Kphase -> "phase"

let pct x = Fmt.str "%.0f%%" (100. *. x)

let attribution_table t =
  let tbl =
    Ninja_report.Table.create
      ~title:
        (Fmt.str "Cycle attribution: %s / %s on %s (%s-bound, %.3g Mcycles)"
           t.prog_name t.step_name t.machine.Machine.name
           (Timing.bound_name t.bound) (t.report.cycles /. 1e6))
      ~columns:
        [ "scope"; "kind"; "instrs"; "Mcyc"; "share"; "stall Mcyc"; "DRAM MB";
          "L1"; "L2"; "LLC"; "DRAM"; "lanes" ]
  in
  List.iter
    (fun r ->
      Ninja_report.Table.add_row tbl
        [ r.r_label; kind_name r.r_kind;
          string_of_int r.r_instrs;
          Ninja_report.Table.cell_f (r.r_cycles /. 1e6);
          pct r.r_share;
          Ninja_report.Table.cell_f (r.r_stall /. 1e6);
          Ninja_report.Table.cell_f r.r_dram_mb;
          string_of_int r.r_levels.(0);
          string_of_int r.r_levels.(1);
          string_of_int r.r_levels.(2);
          string_of_int r.r_levels.(3);
          (match r.r_lane_util with None -> "-" | Some u -> pct u) ])
    t.rows;
  tbl

let summary_columns =
  [ "benchmark"; "compute"; "bandwidth"; "latency"; "serial"; "lanes"; "class" ]

let summary_row t =
  let f = fractions t in
  [ t.prog_name; pct f.f_compute; pct f.f_bandwidth; pct f.f_latency;
    pct f.f_serial;
    (match t.lane_util with None -> "-" | Some u -> pct u);
    Timing.bound_name t.bound ]

let summary_table ~title profiles =
  let tbl = Ninja_report.Table.create ~title ~columns:summary_columns in
  List.iter (fun p -> Ninja_report.Table.add_row tbl (summary_row p)) profiles;
  tbl

let roofline_csv profiles =
  let pts =
    List.map
      (fun t ->
        let r = t.report in
        let label = Fmt.str "%s/%s@%s" t.prog_name t.step_name t.machine.Machine.name in
        if r.Timing.dram_read_bytes + r.Timing.dram_write_bytes = 0 then
          Ninja_analysis.Roofline.point_compute ~label r
        else Ninja_analysis.Roofline.point ~label r)
      profiles
  in
  Ninja_analysis.Roofline.to_csv pts
