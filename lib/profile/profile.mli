(** Cycle-attribution profiler.

    Consumes the typed event stream emitted by {!Ninja_vm.Interp.run} and
    {!Ninja_arch.Timing.simulate} (see {!Ninja_vm.Trace}) and rolls it into:

    - per-scope attribution rows (source loops via the compiler's
      [Region] markers, plus the program's phases),
    - chip-level resource fractions (compute / bandwidth / latency /
      serial) of the modeled execution time, and
    - spans with deterministic virtual-clock timestamps for Chrome-trace
      export ({!Chrome}).

    The chip-level numbers are re-derived from the events alone — counts
    rebuilt from [Op] events and repriced with {!Ninja_arch.Timing.issue_time},
    stalls summed from [Access] events — and then classified with the timing
    model's rule verbatim, so the profile's bound agreeing with the report's
    bound is an end-to-end integrity check of the whole pipeline. All output
    is deterministic: profiling the same step twice is byte-identical. *)

(** Scope kind: a compiler-marked source loop or an execution phase. *)
type kind = Kloop | Kphase

(** One closed scope instance on a thread's virtual timeline, in cycles. *)
type span = {
  sp_thread : int;
  sp_label : string;
  sp_kind : kind;
  sp_t0 : float;  (** virtual cycles at scope entry *)
  sp_t1 : float;  (** virtual cycles at scope exit *)
}

(** Per-scope attribution: what ran inside one loop or phase. *)
type row = {
  r_label : string;
  r_kind : kind;
  r_instrs : int;  (** dynamic instructions attributed to this scope *)
  r_issue : float;  (** port-model issue cycles for those instructions *)
  r_stall : float;  (** memory stall cycles charged inside the scope *)
  r_cycles : float;  (** [r_issue +. r_stall] *)
  r_share : float;  (** fraction of the summed work of all scopes *)
  r_dram_mb : float;  (** DRAM traffic the scope's accesses caused *)
  r_levels : int array;  (** accesses served by L1 / L2 / LLC / DRAM *)
  r_covered : int;  (** misses covered by the prefetcher *)
  r_lane_util : float option;
      (** mean SIMD lane occupancy of masked vector memory ops; [None]
          when the scope executed none *)
}

(** A finalized profile of one benchmark step on one machine. *)
type t = {
  prog_name : string;
  step_name : string;
  machine : Ninja_arch.Machine.t;
  n_threads : int;
  report : Ninja_arch.Timing.report;  (** the run's ordinary timing report *)
  rows : row list;  (** scopes in first-seen order *)
  spans : span list;  (** program order *)
  events : int;  (** total events consumed *)
  issue : float;  (** slowest thread's issue cycles, event-derived *)
  stall : float;  (** slowest thread's stall cycles, event-derived *)
  dram_time : float;  (** chip DRAM-bandwidth bound, event-derived *)
  serial : float;  (** modeled cycles inside sequential phases *)
  bound : Ninja_arch.Timing.bound;
      (** bottleneck classification recomputed from events only; must equal
          [report.bound] (tested) *)
  lane_util : float option;  (** whole-run SIMD lane occupancy *)
}

(** {1 Collecting}

    The collector is exposed so tests can drive it with synthetic event
    streams; normal use goes through {!of_step}. *)

type collector

val collector : machine:Ninja_arch.Machine.t -> n_threads:int -> collector
(** A fresh collector for a run with [n_threads] threads on [machine]
    (the machine prices instructions for the virtual clocks). *)

val sink : collector -> Ninja_vm.Trace.sink
(** The event sink to pass as [?trace] to the simulator. *)

val finalize :
  collector ->
  report:Ninja_arch.Timing.report ->
  prog_name:string ->
  step_name:string ->
  t
(** Close the books: aggregate everything fed so far into a profile.
    Raises [Invalid_argument] if any scope is still open (unbalanced
    [Enter]/[Exit]). *)

val of_step :
  machine:Ninja_arch.Machine.t ->
  prog_name:string ->
  Ninja_kernels.Driver.step ->
  t
(** Run one benchmark step under the profiler (same thread count rules as
    {!Ninja_kernels.Driver.run_step}) and aggregate its events. *)

(** {1 Derived views} *)

(** Shares of the end-to-end modeled cycles attributable to each resource.
    They need not sum to 1: compute overlaps DRAM traffic (the model takes
    the max) and spawn/barrier overhead belongs to no resource. *)
type fractions = {
  f_compute : float;  (** slowest thread's issue time *)
  f_bandwidth : float;  (** DRAM-bandwidth bound *)
  f_latency : float;  (** slowest thread's exposed miss latency *)
  f_serial : float;  (** work executed in sequential phases *)
}

val fractions : t -> fractions
(** Resource fractions of [report.cycles]. *)

val attribution_table : t -> Ninja_report.Table.t
(** Per-scope table: instructions, cycles, share, stalls, DRAM traffic,
    cache-level access counts and lane utilization for each loop/phase. *)

val summary_table : title:string -> t list -> Ninja_report.Table.t
(** One row per profile: resource fractions, lane utilization and the
    event-derived bottleneck class (experiment T4's shape). *)

val roofline_csv : t list -> string
(** Roofline-ready CSV (via {!Ninja_analysis.Roofline}): one point per
    profile, labeled [bench/step\@machine]. *)
