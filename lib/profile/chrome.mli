(** Chrome [trace_event] export of a profile's spans.

    The output loads in [chrome://tracing] or {{:https://ui.perfetto.dev}
    Perfetto}: one track per hardware thread, one complete ("X") event per
    loop/phase span, timestamps in microseconds derived from the profiler's
    virtual cycle clocks at the machine's frequency. Deterministic — the
    same profile always serializes to the same bytes (a golden test pins
    the shape). *)

val to_json : Profile.t -> string
(** Serialize a profile as a Chrome trace_event JSON document (object form,
    with [traceEvents], [displayTimeUnit] and an [otherData] block carrying
    machine/benchmark metadata). *)
