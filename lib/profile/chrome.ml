(* Chrome trace_event exporter (the JSON format chrome://tracing and
   Perfetto read). Spans come from the profiler's per-thread virtual
   clocks, so the trace is deterministic: cycles convert to microseconds
   at the machine's frequency and every float is printed with a fixed
   format. Complete ("X") events only — begin/end pairing is already done
   by the collector. *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let us_of_cycles ~freq_ghz cycles =
  (* cycles / (GHz * 1e3) = microseconds *)
  cycles /. (freq_ghz *. 1e3)

let to_json (p : Profile.t) =
  let freq_ghz = p.machine.Ninja_arch.Machine.freq_ghz in
  let buf = Buffer.create 4096 in
  let first = ref true in
  let event s =
    if !first then first := false else Buffer.add_string buf ",\n";
    Buffer.add_string buf "  ";
    Buffer.add_string buf s
  in
  Buffer.add_string buf "{\"traceEvents\": [\n";
  event
    (Fmt.str
       "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": 0, \
        \"args\": {\"name\": \"%s/%s on %s\"}}"
       (escape p.prog_name) (escape p.step_name)
       (escape p.machine.Ninja_arch.Machine.name));
  for t = 0 to p.n_threads - 1 do
    event
      (Fmt.str
         "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": %d, \
          \"args\": {\"name\": \"hw thread %d\"}}"
         t t)
  done;
  List.iter
    (fun (sp : Profile.span) ->
      let ts = us_of_cycles ~freq_ghz sp.sp_t0 in
      let dur = us_of_cycles ~freq_ghz (sp.sp_t1 -. sp.sp_t0) in
      let cat = match sp.sp_kind with Profile.Kloop -> "loop" | Profile.Kphase -> "phase" in
      event
        (Fmt.str
           "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", \"pid\": 0, \
            \"tid\": %d, \"ts\": %.3f, \"dur\": %.3f}"
           (escape sp.sp_label) cat sp.sp_thread ts dur))
    p.spans;
  Buffer.add_string buf "\n],\n";
  Buffer.add_string buf
    (Fmt.str
       "\"displayTimeUnit\": \"ms\",\n\
        \"otherData\": {\"machine\": \"%s\", \"benchmark\": \"%s\", \
        \"variant\": \"%s\", \"threads\": %d, \"modeled_mcycles\": %.3f, \
        \"bound\": \"%s\"}}\n"
       (escape p.machine.Ninja_arch.Machine.name)
       (escape p.prog_name) (escape p.step_name) p.n_threads
       (p.report.Ninja_arch.Timing.cycles /. 1e6)
       (Ninja_arch.Timing.bound_name p.bound));
  Buffer.contents buf
