(** Persistent content-addressed result store for simulation reports.

    Simulations are pure functions of (compiled program, machine
    configuration, step, simulator version), so their
    {!Ninja_arch.Timing.report}s are cached on disk (default
    [_ninja_cache/]) across processes: a warm rerun of the full
    experiment grid executes zero simulations. Keys are digests over the
    {e decoded} program ({!Ninja_vm.Decode.fingerprint}), a canonical
    fingerprint of every machine parameter (including the issue-cost
    vector), the step name, and a version salt; values are full reports
    serialized via {!Ninja_report.Json}, whose shortest-round-trip
    number printing makes reloaded reports bit-identical to freshly
    simulated ones — warm tables render byte-for-byte the same.

    Writes are atomic (unique temp file + rename), so concurrent writers
    of one key are safe. Loads re-verify the key digest and a payload
    checksum; {e any} corruption, truncation or version skew makes
    {!load} return [None] and the caller re-simulates — the store can
    miss, but never return wrong data.

    The store also aggregates per-ladder-step simulation costs
    ([costs.json]) that {!Jobs.prefill} uses to seed the work-stealing
    scheduler longest-expected-first. *)

type t

type stats = {
  hits : int;  (** entries loaded and verified *)
  misses : int;  (** lookups that fell through to simulation *)
  errors : int;  (** corrupt/stale entries dropped (subset of misses) *)
  writes : int;  (** entries written *)
}

val version_salt : string
(** The simulator-version salt mixed into every key. Bump it whenever
    the timing model or interpreter semantics change in a way the
    program/machine fingerprints cannot see; old entries then miss and
    are re-simulated. *)

val default_dir : string
(** ["_ninja_cache"], the CLI default for [--cache-dir]. *)

val open_ : ?salt:string -> dir:string -> unit -> t
(** Open (creating directories as needed) a store rooted at [dir].
    [salt] defaults to {!version_salt}; tests override it to prove that
    a salt bump invalidates old entries. *)

val dir : t -> string

val scratch : ?salt:string -> unit -> t
(** A throwaway store in a fresh unique directory under the system temp
    dir — guaranteed cold. For smoke gates and load tests; pair with
    {!destroy}. *)

val destroy : t -> unit
(** Recursively delete the store's directory. For {!scratch} stores;
    the handle must not be used afterwards. *)

val key :
  ?opt:string ->
  ?backend:string ->
  t -> machine:Ninja_arch.Machine.t -> step_name:string ->
  Ninja_vm.Isa.program -> string
(** The content address of one simulation: a hex digest over the store's
    salt, the machine fingerprint, [step_name], the decoded program's
    fingerprint, [opt] — the {!Ninja_vm.Optimize.tag} of the pass
    list the interpreter ran (default [""], plain decoded arrays) —
    and [backend], the {!Ninja_vm.Interp.strategy_tag} of the execution
    backend that produced the report (default [""]). Because the
    program fingerprint always hashes the unoptimized decode, the tags
    are what keep optimized-run and compiled-run entries from aliasing
    plain decoded ones. *)

val load :
  t -> key:string -> machine:Ninja_arch.Machine.t ->
  Ninja_arch.Timing.report option
(** Look [key] up. [Some report] only when the entry exists, its stored
    key and payload checksum verify, and its machine name matches
    [machine] (the returned report carries the caller's [machine] value);
    every failure mode is a silent [None]. *)

val save :
  t -> key:string -> machine:Ninja_arch.Machine.t -> step_name:string ->
  cost_s:float -> Ninja_arch.Timing.report -> unit
(** Write one entry atomically and fold [cost_s] (the measured
    simulation wall time) into the pending per-step cost estimates
    (flushed by {!flush_costs}). *)

val entry_cost : t -> key:string -> float option
(** The stored per-key simulation cost, without deserializing the whole
    report; [None] on any missing or unreadable entry. *)

val step_costs : t -> (string * float) list
(** Per-ladder-step mean simulation seconds from [costs.json], recorded
    by prior runs — the scheduler's cost estimates. Empty when the store
    is fresh or the file is unreadable. *)

val flush_costs : t -> unit
(** Blend the costs accumulated by {!save} since the last flush into
    [costs.json] (atomic replace; 50/50 exponential blend with the
    previous estimate). *)

val stats : t -> stats

(** {1 Report serialization}

    Exposed for the round-trip property tests; {!save}/{!load} are the
    production path. *)

val report_to_json : Ninja_arch.Timing.report -> Ninja_report.Json.t

val report_of_json :
  machine:Ninja_arch.Machine.t -> Ninja_report.Json.t ->
  Ninja_arch.Timing.report
(** Strict: raises [Failure] on any missing field, shape violation, or
    machine-name mismatch. *)
