module Machine = Ninja_arch.Machine
module Driver = Ninja_kernels.Driver
module Pool = Ninja_util.Pool
module E = Experiments

type job = { machine : Machine.t; bench : Driver.benchmark; step : string }

let key j = (j.machine.Machine.name, j.bench.Driver.b_name, j.step)

let all_jobs ?(experiments = E.all) () =
  let seen = Hashtbl.create 256 in
  List.concat_map (fun (e : E.experiment) -> e.needs ()) experiments
  |> List.filter_map (fun (machine, bench, step) ->
         let j = { machine; bench; step } in
         if Hashtbl.mem seen (key j) then None
         else begin
           Hashtbl.add seen (key j) ();
           Some j
         end)

type class_stat = { step_name : string; jobs : int; wall_s : float }

type summary = {
  domains : int;
  total_jobs : int;
  executed : int;
  hits : int;
  wall_s : float;
  per_class : class_stat list;
}

(* Fixed presentation order for per-class stats; unknown steps (none
   today) would sort after the ladder. *)
let ladder_order = [ "naive serial"; "+autovec"; "+parallel"; "+algorithmic"; "ninja" ]

let class_rank s =
  let rec go i = function
    | [] -> (List.length ladder_order, s)
    | x :: tl -> if x = s then (i, s) else go (i + 1) tl
  in
  go 0 ladder_order

let aggregate timed =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (step, dt) ->
      let jobs, wall = Option.value (Hashtbl.find_opt tbl step) ~default:(0, 0.) in
      Hashtbl.replace tbl step (jobs + 1, wall +. dt))
    timed;
  Hashtbl.fold (fun step_name (jobs, wall_s) acc -> { step_name; jobs; wall_s } :: acc) tbl []
  |> List.sort (fun a b -> compare (class_rank a.step_name) (class_rank b.step_name))

let pp_summary ppf s =
  Fmt.pf ppf "job grid: %d jobs on %d domain%s in %.1fs (%d simulated, %d cache hits)"
    s.total_jobs s.domains
    (if s.domains = 1 then "" else "s")
    s.wall_s s.executed s.hits;
  List.iter
    (fun c -> Fmt.pf ppf "@.  %-14s %3d jobs %8.1fs" c.step_name c.jobs c.wall_s)
    s.per_class

let prefill ?domains ?experiments ?(verbose = false) () =
  let domains = match domains with Some d -> max 1 d | None -> Pool.default_domains () in
  let jobs = all_jobs ?experiments () in
  let hits0, misses0 = E.cache_stats () in
  let t0 = Unix.gettimeofday () in
  let timed =
    Pool.map_list ~domains
      (fun j ->
        let s = Unix.gettimeofday () in
        ignore (E.run_step_cached ~machine:j.machine j.bench j.step);
        (j.step, Unix.gettimeofday () -. s))
      jobs
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let hits1, misses1 = E.cache_stats () in
  let summary =
    {
      domains;
      total_jobs = List.length jobs;
      executed = misses1 - misses0;
      hits = hits1 - hits0;
      wall_s;
      per_class = aggregate timed;
    }
  in
  (* Quiet by default so library callers (tests, golden generation) get a
     clean stderr; the CLI and the bench harness opt in. *)
  if verbose then Fmt.epr "%a@." pp_summary summary;
  summary
