module Machine = Ninja_arch.Machine
module Driver = Ninja_kernels.Driver
module Pool = Ninja_util.Pool
module Json = Ninja_report.Json
module E = Experiments

type job = { machine : Machine.t; bench : Driver.benchmark; step : string }

let key j = (j.machine.Machine.name, j.bench.Driver.b_name, j.step)

let all_jobs ?(experiments = E.all) () =
  let seen = Hashtbl.create 256 in
  List.concat_map (fun (e : E.experiment) -> e.needs ()) experiments
  |> List.filter_map (fun (machine, bench, step) ->
         let j = { machine; bench; step } in
         if Hashtbl.mem seen (key j) then None
         else begin
           Hashtbl.add seen (key j) ();
           Some j
         end)

type class_stat = { step_name : string; jobs : int; wall_s : float }

type summary = {
  domains : int;
  total_jobs : int;
  executed : int;
  hits : int;
  store_hits : int;
  wall_s : float;
  per_class : class_stat list;
  sched : Pool.stats;
}

(* Fixed presentation order for per-class stats; unknown steps (none
   today) would sort after the ladder. *)
let ladder_order =
  [ "naive serial"; "+autovec"; "+parallel"; "+algorithmic"; "tuned"; "ninja" ]

let class_rank s =
  let rec go i = function
    | [] -> (List.length ladder_order, s)
    | x :: tl -> if x = s then (i, s) else go (i + 1) tl
  in
  go 0 ladder_order

(* ------------------------------------------------------------------ *)
(* Cost estimates for longest-expected-first seeding                    *)

(* Fallback when the store has no recorded costs yet: a static rank of
   how expensive each ladder step is to *simulate*. The hand-tuned ninja
   variants and the +algorithmic rewrites run big vector workloads (and
   on MIC, many modeled threads); naive serial executes the most dynamic
   instructions per element; the compiler steps sit between. The exact
   numbers only matter relative to each other. *)
let static_cost = function
  | "tuned" -> 6. (* a whole candidate search: the priciest job class *)
  | "ninja" -> 5.
  | "+algorithmic" -> 4.
  | "naive serial" -> 3.
  | "+parallel" -> 2.
  | "+autovec" -> 1.
  | _ -> 0.5

let estimate step_costs j =
  match List.assoc_opt j.step step_costs with
  | Some c when c > 0. -> c
  | _ -> static_cost j.step

(* Descending expected cost, stable on the deterministic enumeration
   order — with round-robin deque seeding this is the LPT heuristic, and
   work stealing absorbs estimate error. The *results* are independent of
   this order (each job is pure and keyed), so -j N output stays
   byte-identical to -j 1. *)
let schedule_order step_costs jobs =
  List.stable_sort
    (fun a b -> compare (estimate step_costs b) (estimate step_costs a))
    jobs

let aggregate timed =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (step, dt) ->
      let jobs, wall = Option.value (Hashtbl.find_opt tbl step) ~default:(0, 0.) in
      Hashtbl.replace tbl step (jobs + 1, wall +. dt))
    timed;
  Hashtbl.fold (fun step_name (jobs, wall_s) acc -> { step_name; jobs; wall_s } :: acc) tbl []
  |> List.sort (fun a b -> compare (class_rank a.step_name) (class_rank b.step_name))

let pp_summary ppf s =
  Fmt.pf ppf
    "job grid: %d jobs on %d domain%s in %.1fs (%d simulated, %d memo hits, %d store hits)"
    s.total_jobs s.domains
    (if s.domains = 1 then "" else "s")
    s.wall_s s.executed s.hits s.store_hits;
  List.iter
    (fun c -> Fmt.pf ppf "@.  %-14s %3d jobs %8.1fs" c.step_name c.jobs c.wall_s)
    s.per_class;
  Fmt.pf ppf "@.%a" Pool.pp_stats s.sched

(* ------------------------------------------------------------------ *)
(* Chrome trace export of the grid schedule                             *)

(* One complete ("X") event per job on its executing domain's track, in
   the same trace_event dialect as Ninja_profile.Chrome — so a grid run
   can be inspected in chrome://tracing / Perfetto next to simulated-
   cycle profiles. Wall-clock based and therefore non-deterministic;
   never part of checked output. *)
type span = { s_label : string; s_domain : int; s_t0 : float; s_t1 : float }

let spans_to_chrome spans =
  let t_base =
    List.fold_left (fun acc s -> Float.min acc s.s_t0) Float.infinity spans
  in
  let events =
    List.map
      (fun s ->
        Json.Obj
          [
            ("name", Json.Str s.s_label);
            ("cat", Json.Str "grid-job");
            ("ph", Json.Str "X");
            ("ts", Json.Num (Float.round ((s.s_t0 -. t_base) *. 1e6)));
            ("dur", Json.Num (Float.round ((s.s_t1 -. s.s_t0) *. 1e6)));
            ("pid", Json.Num 1.);
            ("tid", Json.Num (float_of_int s.s_domain));
          ])
      (List.sort (fun a b -> compare (a.s_t0, a.s_label) (b.s_t0, b.s_label)) spans)
  in
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.List events);
         ("displayTimeUnit", Json.Str "ms");
         ( "otherData",
           Json.Obj [ ("source", Json.Str "ninja job grid scheduler") ] );
       ])

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

(* ------------------------------------------------------------------ *)

let prefill ?domains ?experiments ?(verbose = false) ?sched_trace () =
  let domains = match domains with Some d -> max 1 d | None -> Pool.default_domains () in
  let jobs = all_jobs ?experiments () in
  let store = E.store () in
  let step_costs = match store with Some st -> Store.step_costs st | None -> [] in
  let ordered = schedule_order step_costs jobs in
  let hits0, misses0 = E.cache_stats () in
  let store0 = E.store_hit_count () in
  let sched = ref None in
  let spans_mu = Mutex.create () in
  let spans = ref [] in
  (* Domain.self () is an opaque unique id; number domains by first
     appearance for compact trace tracks. *)
  let domain_ids = Hashtbl.create 8 in
  let domain_index id =
    Mutex.lock spans_mu;
    let i =
      match Hashtbl.find_opt domain_ids id with
      | Some i -> i
      | None ->
          let i = Hashtbl.length domain_ids in
          Hashtbl.add domain_ids id i;
          i
    in
    Mutex.unlock spans_mu;
    i
  in
  let t0 = Unix.gettimeofday () in
  let timed =
    Pool.map_list ~domains
      ~on_stats:(fun s -> sched := Some s)
      ~label:(fun j ->
        Fmt.str "%s/%s/%s" j.machine.Machine.name j.bench.Driver.b_name j.step)
      (fun j ->
        let s = Unix.gettimeofday () in
        ignore (E.run_step_cached ~machine:j.machine j.bench j.step);
        let e = Unix.gettimeofday () in
        (if sched_trace <> None then
           let span =
             {
               s_label =
                 Fmt.str "%s/%s/%s" j.machine.Machine.name j.bench.Driver.b_name
                   j.step;
               s_domain = domain_index (Domain.self () :> int);
               s_t0 = s;
               s_t1 = e;
             }
           in
           Mutex.lock spans_mu;
           spans := span :: !spans;
           Mutex.unlock spans_mu);
        (j.step, e -. s))
      ordered
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let hits1, misses1 = E.cache_stats () in
  let store1 = E.store_hit_count () in
  (match store with Some st -> Store.flush_costs st | None -> ());
  (match sched_trace with
  | Some path -> write_file path (spans_to_chrome !spans)
  | None -> ());
  let summary =
    {
      domains;
      total_jobs = List.length jobs;
      executed = misses1 - misses0;
      hits = hits1 - hits0;
      store_hits = store1 - store0;
      wall_s;
      per_class = aggregate timed;
      sched =
        (match !sched with
        | Some s -> s
        | None ->
            (* map_list always reports stats on success; synthesize an
               empty snapshot if a future path skips it *)
            {
              Pool.domains;
              tasks_run = List.length jobs;
              steals = 0;
              cancelled = 0;
              busy_s = [| wall_s |];
              run_per_domain = [| List.length jobs |];
              max_depth = [| 0 |];
            });
    }
  in
  (* Quiet by default so library callers (tests, golden generation) get a
     clean stderr; the CLI and the bench harness opt in. *)
  if verbose then Fmt.epr "%a@." pp_summary summary;
  summary
