(* Auto-tuning driver: enumerate → prune → compile → verify → dedupe →
   simulate → pick, all deterministic. See tuner.mli for the contract.

   The search space is deliberately small and fixed (the paper's point is
   that a handful of traditional transformations recovers most of the
   ninja gap): per source variant, the transform menu crossed with three
   compiler-flag settings, plus a dependence-proven auto-parallelization
   setting. Unrolled candidates are only compiled scalar — the unrolled
   body defeats the vectorizer's idiom matching, and the vectorized
   search points are already covered by the untransformed candidates. *)

open Ninja_kernels
module Machine = Ninja_arch.Machine
module Timing = Ninja_arch.Timing
module Ast = Ninja_lang.Ast
module Codegen = Ninja_lang.Codegen
module Transform = Ninja_lang.Transform
module Isa = Ninja_vm.Isa
module Decode = Ninja_vm.Decode
module Verify = Ninja_vm.Verify
module Json = Ninja_report.Json
module Pool = Ninja_util.Pool

type status =
  | Legal
  | Winner
  | Evaluated
  | Duplicate of int
  | Rejected of string * string

type candidate = {
  c_index : int;
  c_variant : string;
  c_vectorize : bool;
  c_parallelize : bool;
  c_autopar : bool;
  c_transform : string;
  c_status : status;
  c_cycles : float option;
}

let flags_desc ~vectorize ~parallelize ~autopar =
  if autopar then "vec+par+autopar"
  else if parallelize then "vec+par"
  else if vectorize then "vec"
  else "scalar"

let candidate_name c =
  Fmt.str "%s/%s/%s" c.c_variant
    (flags_desc ~vectorize:c.c_vectorize ~parallelize:c.c_parallelize
       ~autopar:c.c_autopar)
    c.c_transform

type decision = { d_loop : string; d_vectorized : bool; d_parallelized : bool }

type t = {
  t_bench : string;
  t_machine : string;
  t_scale : int;
  t_candidates : candidate list;
  t_winner : candidate;
  t_report : Timing.report;
  t_naive : Timing.report;
  t_ninja : Timing.report;
  t_decisions : decision list;
  t_simulated : int;
}

(* ------------------------------------------------------------------ *)
(* Enumeration                                                          *)

(* Which existing rung a variant's candidates clone their run wrappers
   (bindings, launch count, per-run prepare, output check) from. The
   rung must compile the very same source, so the wrappers are congruent
   by construction. *)
let variant_base = [ ("naive", "+parallel"); ("algo", "+algorithmic") ]

(* (vectorize, parallelize, autopar). The first three reproduce the
   ladder's own presets exactly (so identity candidates deduplicate
   against nothing but themselves and cost-match the existing rungs);
   the fourth lets the dependence engine add the pragmas itself. *)
let flag_menu =
  [ (false, false, false); (true, false, false); (true, true, false);
    (true, true, true) ]

let preset ~vec ~par =
  if not vec then Codegen.o2 else if not par then Codegen.o2_vec
  else Codegen.o2_vec_par

type spec = {
  sp_variant : string;
  sp_kernel : Ast.kernel;
  sp_step : Driver.step;
  sp_transform : Transform.t;
  sp_vec : bool;
  sp_par : bool;
  sp_auto : bool;
}

let specs ~steps (bench : Driver.benchmark) =
  List.concat_map
    (fun (variant, src) ->
      match List.assoc_opt variant variant_base with
      | None -> []
      | Some base_name -> (
          match
            List.find_opt
              (fun (s : Driver.step) -> s.step_name = base_name)
              steps
          with
          | None -> []
          | Some base ->
              let kernel = Common.parse_kernel src in
              List.concat_map
                (fun tr ->
                  List.filter_map
                    (fun (v, p, a) ->
                      match tr with
                      | Transform.Unroll _ when v || p || a -> None
                      | _ ->
                          Some
                            { sp_variant = variant; sp_kernel = kernel;
                              sp_step = base; sp_transform = tr; sp_vec = v;
                              sp_par = p; sp_auto = a })
                    flag_menu)
                Transform.menu))
    bench.b_sources

(* ------------------------------------------------------------------ *)
(* Static admission: transform, compile, verify                         *)

type built = {
  bt_prog : Isa.program;
  bt_step : Driver.step;
  bt_kernel : Ast.kernel;
  bt_vec_report : (string * Codegen.vec_outcome) list;
}

let build ~machine i sp =
  let cand status =
    { c_index = i; c_variant = sp.sp_variant; c_vectorize = sp.sp_vec;
      c_parallelize = sp.sp_par; c_autopar = sp.sp_auto;
      c_transform = Transform.name sp.sp_transform; c_status = status;
      c_cycles = None }
  in
  match Transform.apply sp.sp_transform sp.sp_kernel with
  | Error msg -> (cand (Rejected ("TUNE_NOT_APPLICABLE", msg)), None)
  | Ok k -> (
      let k = if sp.sp_auto then fst (Transform.add_parallel_pragmas k) else k in
      let flags =
        { (preset ~vec:sp.sp_vec ~par:sp.sp_par) with
          Codegen.fma = machine.Machine.fma_native }
      in
      match Codegen.compile ~flags k with
      | exception Codegen.Compile_error msg ->
          (cand (Rejected ("TUNE_COMPILE_ERROR", msg)), None)
      | exception Failure msg ->
          (cand (Rejected ("TUNE_COMPILE_ERROR", msg)), None)
      | res -> (
          let prog = res.Codegen.program in
          (* Candidates launch as many modeled threads as the compiled
             program actually needs — derived from the program, not from
             the flag, so a parallelize-flagged candidate whose loops
             stayed sequential is simulated (and priced) sequentially. *)
          let step =
            { sp.sp_step with Driver.step_name = "tuned";
              parallel = Isa.has_par_phase prog;
              make = (fun ~machine:_ -> prog) }
          in
          match Driver.verify_step ~machine step with
          | [] ->
              ( cand Legal,
                Some
                  { bt_prog = prog; bt_step = step; bt_kernel = k;
                    bt_vec_report = res.Codegen.vec_report } )
          | issue :: _ as issues ->
              let detail =
                Fmt.str "%d issue(s), first: %a" (List.length issues)
                  Verify.pp_issue issue
              in
              (cand (Rejected ("TUNE_VERIFY_FAILED", detail)), None)))

(* Keep the earliest candidate per decoded-program fingerprint; later
   twins are never simulated separately. *)
let dedupe pairs =
  let seen = Hashtbl.create 16 in
  List.map
    (fun (c, b) ->
      match b with
      | None -> (c, None)
      | Some bt -> (
          let fp = Decode.fingerprint (Decode.decode bt.bt_prog) in
          match Hashtbl.find_opt seen fp with
          | Some j -> ({ c with c_status = Duplicate j }, None)
          | None ->
              Hashtbl.add seen fp c.c_index;
              (c, Some bt)))
    pairs

let admit ?(domains = 1) ~machine ~steps bench =
  let sps = specs ~steps bench in
  let indexed = List.mapi (fun i sp -> (i, sp)) sps in
  dedupe (Pool.map_list ~domains (fun (i, sp) -> build ~machine i sp) indexed)

let plan ~machine ~steps bench = List.map fst (admit ~machine ~steps bench)

(* ------------------------------------------------------------------ *)
(* Evaluation by simulated time                                         *)

(* [sims] counts evaluations that actually ran (store misses) — the
   basis of [t_simulated]; atomic because candidates evaluate on the
   pool. *)
let simulate ~sims ?store ~machine ~step_name step prog =
  match store with
  | None ->
      Atomic.incr sims;
      Driver.run_step ~machine step
  | Some st -> (
      let backend =
        Ninja_vm.Interp.strategy_tag (Ninja_vm.Interp.default_strategy ())
      in
      let key = Store.key ~backend st ~machine ~step_name prog in
      match Store.load st ~key ~machine with
      | Some r -> r
      | None ->
          Atomic.incr sims;
          let t0 = Unix.gettimeofday () in
          let r = Driver.run_step ~machine step in
          Store.save st ~key ~machine ~step_name
            ~cost_s:(Unix.gettimeofday () -. t0)
            r;
          r)

(* Every loop label in the kernel, outermost first, encounter order —
   the rows of the per-loop decision table. *)
let rec loop_labels (b : Ast.block) =
  List.concat_map
    (fun (s : Ast.stmt) ->
      match s with
      | Ast.For loop -> Transform.loop_label loop :: loop_labels loop.body
      | Ast.If (_, th, el) -> loop_labels th @ loop_labels el
      | Ast.While (_, body) -> loop_labels body
      | Ast.Decl _ | Ast.Assign _ | Ast.Store _ -> [])
    b

let decisions (c : candidate) bt =
  let par_labels =
    if c.c_parallelize then Transform.parallel_labels bt.bt_kernel else []
  in
  let vectorized label =
    c.c_vectorize
    &&
    match List.assoc_opt label bt.bt_vec_report with
    | Some Codegen.Vectorized -> true
    | Some (Codegen.Scalar _) -> false
    | None -> (
        (* A parallelized loop is rewritten into per-thread chunk loops
           before vectorization, so its report entry carries rewritten
           bounds ([for(i=__my_lo;i<__my_hi)]) — match on the index. *)
        match String.index_opt label '=' with
        | None -> false
        | Some eq -> (
            let prefix = String.sub label 0 (eq + 1) in
            match
              List.find_opt
                (fun (l, _) -> String.starts_with ~prefix l)
                bt.bt_vec_report
            with
            | Some (_, Codegen.Vectorized) -> true
            | Some (_, Codegen.Scalar _) | None -> false))
  in
  List.map
    (fun label ->
      { d_loop = label; d_vectorized = vectorized label;
        d_parallelized = List.mem label par_labels })
    (loop_labels bt.bt_kernel.Ast.body)

let tune ?(domains = 1) ?store ?run_rung ~machine ~scale ~steps
    (bench : Driver.benchmark) =
  let sims = Atomic.make 0 in
  let admitted = admit ~domains ~machine ~steps bench in
  let evaluated =
    Pool.map_list ~domains
      (fun (c, bt) ->
        match bt with
        | None -> (c, None)
        | Some bt ->
            let r = simulate ~sims ?store ~machine ~step_name:"tuned" bt.bt_step bt.bt_prog in
            ( { c with c_status = Evaluated; c_cycles = Some r.Timing.cycles },
              Some (bt, r) ))
      admitted
  in
  let ranked =
    List.filter_map
      (fun (c, e) -> Option.map (fun (bt, r) -> (c, bt, r)) e)
      evaluated
    |> List.stable_sort (fun (c1, _, r1) (c2, _, r2) ->
           match Float.compare r1.Timing.cycles r2.Timing.cycles with
           | 0 -> Int.compare c1.c_index c2.c_index
           | n -> n)
  in
  (* The cheapest simulated candidate must also reproduce the reference
     output on the host interpreter; a winner that does not is rejected
     and the next-best candidate is validated instead. *)
  let rec pick rejected = function
    | [] ->
        failwith
          ("Tuner: no functionally valid candidate for " ^ bench.b_name)
    | (c, bt, r) :: rest -> (
        match Driver.validate_step ~machine bt.bt_step with
        | Ok () -> (c, bt, r, rejected)
        | Error msg -> pick ((c.c_index, msg) :: rejected) rest)
  in
  let wc, wbt, wr, check_rejected = pick [] ranked in
  let candidates =
    List.map
      (fun (c, _) ->
        if c.c_index = wc.c_index then { c with c_status = Winner }
        else
          match List.assoc_opt c.c_index check_rejected with
          | Some msg -> { c with c_status = Rejected ("TUNE_CHECK_FAILED", msg) }
          | None -> c)
      evaluated
  in
  let run_rung =
    match run_rung with
    | Some f -> f
    | None -> (
        fun name ->
          match
            List.find_opt (fun (s : Driver.step) -> s.Driver.step_name = name) steps
          with
          | None -> invalid_arg ("Tuner: benchmark has no ladder step " ^ name)
          | Some step ->
              simulate ~sims ?store ~machine ~step_name:name step
                (step.Driver.make ~machine))
  in
  let naive = run_rung "naive serial" in
  let ninja = run_rung "ninja" in
  { t_bench = bench.b_name; t_machine = machine.Machine.name; t_scale = scale;
    t_candidates = candidates; t_winner = { wc with c_status = Winner };
    t_report = wr; t_naive = naive; t_ninja = ninja;
    t_decisions = decisions wc wbt; t_simulated = Atomic.get sims }

(* ------------------------------------------------------------------ *)
(* Derived metrics                                                      *)

let speedup_vs_naive t = Timing.speedup ~baseline:t.t_naive t.t_report
let ratio_vs_ninja t = t.t_report.Timing.seconds /. t.t_ninja.Timing.seconds

let gap_closed t =
  let n = t.t_naive.Timing.seconds in
  let j = t.t_ninja.Timing.seconds in
  let u = t.t_report.Timing.seconds in
  let denom = n -. j in
  if denom <= 0. then 1.0 else Float.min 1.0 (Float.max 0.0 ((n -. u) /. denom))

let counts t =
  List.fold_left
    (fun (e, v, d, r) c ->
      match c.c_status with
      | Winner | Evaluated -> (e + 1, v + 1, d, r)
      | Duplicate _ -> (e + 1, v, d + 1, r)
      | Rejected _ -> (e + 1, v, d, r + 1)
      | Legal -> (e + 1, v, d, r))
    (0, 0, 0, 0) t.t_candidates

(* ------------------------------------------------------------------ *)
(* Export                                                               *)

let to_json t =
  let w = t.t_winner in
  let num x = Json.Num x in
  let int n = Json.Num (float_of_int n) in
  let enumerated, evaluated, duplicates, rejected = counts t in
  Json.Obj
    [ ("schema", Json.Str "ninja-tune/v1");
      ("benchmark", Json.Str t.t_bench);
      ("machine", Json.Str t.t_machine);
      ("scale", int t.t_scale);
      ( "winner",
        Json.Obj
          [ ("candidate", Json.Str (candidate_name w));
            ("variant", Json.Str w.c_variant);
            ("vectorize", Json.Bool w.c_vectorize);
            ("parallelize", Json.Bool w.c_parallelize);
            ("autopar", Json.Bool w.c_autopar);
            ("transform", Json.Str w.c_transform);
            ("cycles", num t.t_report.Timing.cycles) ] );
      ("naive_cycles", num t.t_naive.Timing.cycles);
      ("ninja_cycles", num t.t_ninja.Timing.cycles);
      ("speedup_vs_naive", num (speedup_vs_naive t));
      ("ratio_vs_ninja", num (ratio_vs_ninja t));
      ("gap_closed", num (gap_closed t));
      ( "decisions",
        Json.List
          (List.map
             (fun d ->
               Json.Obj
                 [ ("loop", Json.Str d.d_loop);
                   ("vectorized", Json.Bool d.d_vectorized);
                   ("parallelized", Json.Bool d.d_parallelized) ])
             t.t_decisions) );
      ( "candidates",
        Json.Obj
          [ ("enumerated", int enumerated); ("evaluated", int evaluated);
            ("duplicates", int duplicates); ("rejected", int rejected) ] );
      ( "rejected",
        Json.List
          (List.filter_map
             (fun c ->
               match c.c_status with
               | Rejected (code, detail) ->
                   Some
                     (Json.Obj
                        [ ("candidate", Json.Str (candidate_name c));
                          ("reason", Json.Str code);
                          ("detail", Json.Str detail) ])
               | _ -> None)
             t.t_candidates) ) ]

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)

let pp_status ppf = function
  | Legal -> Fmt.string ppf "legal"
  | Winner -> Fmt.string ppf "WINNER"
  | Evaluated -> Fmt.string ppf "evaluated"
  | Duplicate i -> Fmt.pf ppf "duplicate of #%d" i
  | Rejected (code, detail) -> Fmt.pf ppf "rejected %s: %s" code detail

let pp ppf t =
  let enumerated, evaluated, duplicates, rejected = counts t in
  Fmt.pf ppf "TUNE %s on %s (scale %d)@." t.t_bench t.t_machine t.t_scale;
  Fmt.pf ppf "  winner %s: %.3f Mcycles (%.2fx vs naive serial, %.2fx of ninja, gap closed %.0f%%)@."
    (candidate_name t.t_winner)
    (t.t_report.Timing.cycles /. 1e6)
    (speedup_vs_naive t) (ratio_vs_ninja t)
    (100. *. gap_closed t);
  List.iter
    (fun d ->
      Fmt.pf ppf "  loop %s: %s, %s@." d.d_loop
        (if d.d_vectorized then "vectorized" else "scalar")
        (if d.d_parallelized then "parallelized" else "serial"))
    t.t_decisions;
  Fmt.pf ppf "  candidates: %d enumerated, %d evaluated, %d duplicates, %d rejected@."
    enumerated evaluated duplicates rejected;
  List.iter
    (fun c ->
      match c.c_status with
      | Rejected (code, detail) ->
          Fmt.pf ppf "  rejected %s — %s: %s@." (candidate_name c) code detail
      | _ -> ())
    t.t_candidates

let pp_plan ppf cands =
  List.iter
    (fun c ->
      Fmt.pf ppf "  #%02d %-32s %a@." c.c_index (candidate_name c) pp_status
        c.c_status)
    cands
