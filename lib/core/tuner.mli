(** ComPar-style auto-tuning compiler driver: the "tuned" ladder rung.

    Per benchmark and machine, the tuner enumerates per-loop optimization
    strategies over the registered Cee sources — compiler flags
    (vectorize on/off, parallelize on/off, dependence-proven automatic
    [pragma parallel] insertion) crossed with source transformations from
    {!Ninja_lang.Transform.menu} (loop interchange, unroll by a small
    fixed factor) — prunes the space with the dependence engine's
    legality facts so only provably legal transforms are compiled,
    rejects anything the compiler or the static ISA verifier refuses,
    deduplicates candidates by their decoded-program fingerprint, and
    evaluates every survivor {e by simulated time} through the existing
    pipeline (codegen → verify → decode → optimize → interp). The winner
    (strict cycle minimum, earliest-enumerated on ties) is additionally
    validated functionally against the benchmark's reference output;
    a winner that fails validation is rejected and the next-best
    candidate wins.

    Everything is deterministic: candidates are enumerated in a fixed
    order, evaluated results are position-stable under
    {!Ninja_util.Pool.map_list}, and no wall-clock quantity enters the
    result, so the winner and its JSON export are byte-identical across
    domain counts and cold/warm store states. Candidate evaluations are
    memoized in the persistent {!Store} under the ["tuned"] step tag, so
    repeated tuning runs are warm-cache cheap. *)

(** Final verdict on one candidate. [Legal] appears only in {!plan}
    output (statically admissible, not yet simulated). *)
type status =
  | Legal  (** compiles and verifies; awaiting simulation ({!plan} only) *)
  | Winner  (** the chosen candidate *)
  | Evaluated  (** simulated, but beaten by the winner *)
  | Duplicate of int
      (** identical decoded program to the earlier candidate with this
          index; never simulated separately *)
  | Rejected of string * string
      (** stable reason code ([TUNE_NOT_APPLICABLE] /
          [TUNE_COMPILE_ERROR] / [TUNE_VERIFY_FAILED] /
          [TUNE_CHECK_FAILED]) and a human-readable detail *)

type candidate = {
  c_index : int;  (** position in the fixed enumeration order *)
  c_variant : string;  (** source variant ("naive" / "algo") *)
  c_vectorize : bool;  (** compiled with the auto-vectorizer on *)
  c_parallelize : bool;  (** compiled with threading on *)
  c_autopar : bool;
      (** dependence-proven [pragma parallel] insertion applied *)
  c_transform : string;  (** {!Ninja_lang.Transform.name} of the rewrite *)
  c_status : status;
  c_cycles : float option;  (** simulated cycles when evaluated *)
}

val candidate_name : candidate -> string
(** Compact stable spelling ["variant/flags/transform"], e.g.
    ["algo/vec+par/none"] — used in tables, reports and JSON. *)

type decision = {
  d_loop : string;  (** loop label, matching vec-report/deps labels *)
  d_vectorized : bool;
  d_parallelized : bool;  (** top-level loop compiled into a [Par] phase *)
}

type t = {
  t_bench : string;
  t_machine : string;
  t_scale : int;
  t_candidates : candidate list;  (** enumeration order, final statuses *)
  t_winner : candidate;
  t_report : Ninja_arch.Timing.report;  (** the winner's simulation *)
  t_naive : Ninja_arch.Timing.report;  (** the "naive serial" rung *)
  t_ninja : Ninja_arch.Timing.report;  (** the "ninja" rung *)
  t_decisions : decision list;  (** per-loop choices in the winner *)
  t_simulated : int;
      (** simulations this session actually executed ([0] when every
          evaluation was served by the store — a fully warm run). The
          only cache-state-dependent field; deliberately excluded from
          {!to_json} and {!pp}. The experiment layer uses it to account
          a warm ["tuned"] grid job as a store hit. *)
}

val tune :
  ?domains:int ->
  ?store:Store.t ->
  ?run_rung:(string -> Ninja_arch.Timing.report) ->
  machine:Ninja_arch.Machine.t ->
  scale:int ->
  steps:Ninja_kernels.Driver.step list ->
  Ninja_kernels.Driver.benchmark ->
  t
(** Tune one benchmark on one machine. [steps] is the benchmark's ladder
    at [scale] (candidates clone the matching rung's
    bindings, launch count, per-run preparation and output check);
    [domains] (default [1] = serial) sizes the work-stealing pool the
    candidate search runs on; [store], when given, memoizes candidate
    evaluations under the ["tuned"] step tag and the baseline rungs
    under their own step names. [run_rung], when given, supplies the
    "naive serial" and "ninja" baseline reports (the experiment grid
    passes its memoized {!Experiments.run_step_cached}); the default
    simulates them through [store]. The result is independent of
    [domains] and of store temperature. *)

val plan :
  machine:Ninja_arch.Machine.t ->
  steps:Ninja_kernels.Driver.step list ->
  Ninja_kernels.Driver.benchmark ->
  candidate list
(** The static half of {!tune}: enumeration, legality pruning,
    compilation, verification and fingerprint dedup — zero simulations,
    so goldens can pin the search space cheaply. Surviving candidates
    carry status [Legal]. *)

val speedup_vs_naive : t -> float
(** Modeled-seconds ratio naive/tuned (how much faster tuned is). *)

val ratio_vs_ninja : t -> float
(** Modeled-seconds ratio tuned/ninja ([1.0] = ninja parity, bigger is
    further from ninja). *)

val gap_closed : t -> float
(** Fraction of the naive-to-ninja simulated-time gap the tuned variant
    closes, [(naive - tuned) / (naive - ninja)] clamped to [[0, 1]]
    ([1.0] when ninja is not faster than naive). *)

val counts : t -> int * int * int * int
(** [(enumerated, evaluated, duplicates, rejected)] candidate totals;
    [evaluated] includes the winner. *)

val to_json : t -> Ninja_report.Json.t
(** The stable export, schema ["ninja-tune/v1"]: benchmark, machine,
    scale, winner (variant/flags/transform + cycles), baseline cycles,
    speedups and gap closed, per-loop decisions, candidate counts, and
    every rejected candidate with its reason code. Deterministic — no
    wall-clock or cache-state field, so warm and cold runs export
    byte-identical documents. *)

val pp : t Fmt.t
(** Opt-report-style human rendering: the winner and its per-loop
    decisions, candidate counts, and each rejected candidate's reason.
    Deterministic. *)

val pp_plan : candidate list Fmt.t
(** Human rendering of {!plan} output (one line per candidate).
    Deterministic; used by the opt-report golden. *)
