(** The paper's evaluation, regenerated.

    Each experiment returns rendered tables (see DESIGN.md for the mapping
    from experiment ids to the paper's claims). Results are deterministic;
    simulated runs are memoized within a process, so running several
    experiments shares the underlying simulations. Experiments themselves
    are pure table formatting: every simulation they read is declared up
    front by [needs], so {!Jobs.prefill} can execute the whole grid on a
    domain pool before any table is rendered. *)

type job = Ninja_arch.Machine.t * Ninja_kernels.Driver.benchmark * string
(** One simulation: (machine, benchmark, ladder-step name). The memo key is
    [(machine.name, benchmark.b_name, step_name)]. *)

type experiment = {
  id : string;  (** stable id: "t1", "f1" ... "a1" *)
  title : string;
  claim : string;  (** which abstract claim it reproduces *)
  needs : unit -> job list;
      (** the closed set of simulations [run] reads (possibly with
          duplicates; dedup is the caller's job) *)
  run : unit -> Ninja_report.Table.t list;
}

val all : experiment list
(** In presentation order: T1, F1..F8, T2..T4, T6, T7, A1. T4 (measured
    cycle attribution) runs its simulations under the profiler, outside
    the memo cache — its [needs] is empty by design. *)

val t4_profiles :
  (Ninja_arch.Machine.t * Ninja_profile.Profile.t list) list Lazy.t
(** The ninja-variant profiles behind T4 (Westmere and Knights Ferry, the
    whole suite), memoized for the process — also the data source for the
    report-sync tooling and tests that compare measured bottleneck classes
    with the timing reports'. *)

val find : string -> experiment
(** Lookup by id (case-insensitive). Raises [Not_found]. *)

val gap : Ninja_arch.Timing.report -> Ninja_arch.Timing.report -> float
(** [gap naive best] = modeled-seconds ratio (how much faster [best] is). *)

val ladder :
  Ninja_kernels.Driver.benchmark -> scale:int -> Ninja_kernels.Driver.step list
(** [bench.steps ~scale], memoized per process. Building a ladder runs
    the compiler pipeline over every variant (~0.5s per benchmark) and
    is a pure function of its arguments, so all callers share one
    construction. Domain-safe. *)

val run_step_cached :
  machine:Ninja_arch.Machine.t ->
  Ninja_kernels.Driver.benchmark ->
  string ->
  Ninja_arch.Timing.report
(** Simulate one named ladder step of a benchmark at its default scale,
    memoized on (machine name, benchmark, step). The synthetic step name
    ["tuned"] runs (and memoizes) a whole {!tuned_result} session and
    returns its winner's report. Domain-safe: the cache is
    mutex-protected; the simulation itself runs outside the lock. *)

val tuned_result :
  ?domains:int ->
  machine:Ninja_arch.Machine.t ->
  Ninja_kernels.Driver.benchmark ->
  Tuner.t
(** The full tuning session behind the ["tuned"] rung (candidates,
    per-loop decisions, baselines), at the benchmark's default scale,
    memoized per (machine name, benchmark) and cleared by
    {!reset_cache}. Baseline rungs are read through {!run_step_cached};
    candidate simulations are memoized in the installed {!Store} (if
    any) under the ["tuned"] step tag. [domains] (default [1]) sizes
    the pool the candidate search runs on; the result is independent
    of it. *)

val cache_stats : unit -> int * int
(** [(hits, misses)] since start / the last {!reset_cache}. A miss is a
    simulation actually executed; a hit is a memoized read. Jobs served
    by the persistent store count as neither (see {!store_hit_count}). *)

val store_hit_count : unit -> int
(** Jobs served by the persistent {!Store} (no simulation, no memo hit)
    since start / the last {!reset_cache}. *)

val reset_cache : unit -> unit
(** Drop all memoized reports and zero the hit/miss/store counters
    (tests). The persistent store, if set, is untouched. *)

val set_store : Store.t option -> unit
(** Install (or clear) the persistent result store consulted below the
    in-memory memo: on a memo miss, a verified disk entry replaces the
    simulation; every simulation that does run is written back with its
    measured cost. Set once at startup, before parallel work begins. *)

val store : unit -> Store.t option
(** The currently installed store. *)
