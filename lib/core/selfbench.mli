(** The simulator self-benchmark.

    Measures the simulator's own wall-clock throughput — simulated
    instructions per second — over a grid of (benchmark, machine, ladder
    step) jobs, in two configurations: the default fast path (pre-decoded
    dispatch over the fast cache hierarchy) and the reference baseline
    (tree-walking interpreter over the reference hierarchy). The two
    produce bit-identical simulation reports; their instruction counts
    are asserted equal per job, so the ratio is a pure measure of
    simulator overhead. Results are written as [BENCH_simulator.json]
    (schema {!schema_version}) by the [bench simulate] harness mode. *)

type job_result = {
  j_bench : string;
  j_machine : string;
  j_step : string;
  j_ops : int;  (** simulated instructions (identical in both configurations) *)
  j_fast_s : float;  (** wall seconds, fast configuration *)
  j_baseline_s : float;  (** wall seconds, baseline configuration *)
}

type bench_result = {
  b_name : string;
  b_ops : int;  (** summed over the benchmark's jobs *)
  b_fast_s : float;
  b_baseline_s : float;
  b_ops_per_s : float;
  b_baseline_ops_per_s : float;
}

type result = {
  domains : int;  (** pool size used (the [-j] value) *)
  wall_s : float;  (** whole-run wall clock, seconds *)
  jobs : job_result list;
  benchmarks : bench_result list;  (** aggregated across machines and steps *)
  geomean_ops_per_s : float;
  baseline_geomean_ops_per_s : float;
  speedup : float;  (** fast over baseline geomean *)
}

val schema_version : string
(** ["ninja-selfbench/v1"], the ["schema"] field of the JSON report. *)

val default_steps : string list
(** Both ladder endpoints, ["naive serial"] and ["ninja"] — the scalar and
    the vector instruction mix. *)

val default_machines : Ninja_arch.Machine.t list
(** Westmere and Knights Ferry, the paper's two evaluation machines. *)

val run :
  ?domains:int ->
  ?repeats:int ->
  ?benchmarks:Ninja_kernels.Driver.benchmark list ->
  ?machines:Ninja_arch.Machine.t list ->
  ?steps:string list ->
  ?progress:(job_result -> unit) ->
  unit ->
  result
(** Run the grid. [domains] defaults to 1 — timing jobs serially keeps
    per-job seconds meaningful on any host; larger values trade accuracy
    of attribution for wall-clock. Each configuration of each job runs
    once untimed (warm-up) plus [repeats] timed times (default 2); the
    reported seconds are the minimum, the standard low-noise estimator
    for deterministic work. Steps a benchmark does not have are skipped.
    [progress] is called once per finished job (from worker domains when
    [domains > 1]).
    @raise Invalid_argument on an empty grid or a fast/baseline
    instruction-count mismatch (which would mean the two interpreter
    strategies diverged — a bug). *)

val to_json : result -> Ninja_report.Json.t

val write_json : path:string -> result -> unit
(** Serialize {!to_json} to [path]. *)

val pp_result : Format.formatter -> result -> unit
(** Human-oriented summary (goes to stderr in the harness). *)
