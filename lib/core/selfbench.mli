(** The simulator self-benchmark.

    Measures the simulator's own wall-clock throughput — simulated
    instructions per second — over a grid of (benchmark, machine, ladder
    step) jobs, in four configurations: the fast path (pre-decoded
    dispatch over the fast cache hierarchy), the optimized pipeline
    (fast path plus the {!Ninja_vm.Optimize} passes over the decoded
    arrays), the compiled backend (optimized arrays threaded into
    chained closures by {!Ninja_vm.Compile} — the simulation default),
    and the reference baseline (tree-walking interpreter over the
    reference hierarchy). All four produce bit-identical simulation
    reports — the optimized and compiled reports are compared
    structurally against the fast one on every job, and instruction
    counts are asserted equal — so the ratios are a pure measure of
    simulator overhead. Results are written as [BENCH_simulator.json]
    (schema {!schema_version}) by the [bench simulate] harness mode. *)

type job_result = {
  j_bench : string;
  j_machine : string;
  j_step : string;
  j_ops : int;  (** simulated instructions (identical in all configurations) *)
  j_fast_s : float;  (** wall seconds, fast configuration *)
  j_opt_s : float;  (** wall seconds, optimized configuration *)
  j_compiled_s : float;  (** wall seconds, compiled configuration *)
  j_baseline_s : float;  (** wall seconds, baseline configuration *)
}

type bench_result = {
  b_name : string;
  b_ops : int;  (** summed over the benchmark's jobs *)
  b_fast_s : float;
  b_opt_s : float;
  b_compiled_s : float;
  b_baseline_s : float;
  b_ops_per_s : float;
  b_opt_ops_per_s : float;
  b_compiled_ops_per_s : float;
  b_baseline_ops_per_s : float;
}

type result = {
  domains : int;  (** pool size used (the [-j] value) *)
  wall_s : float;  (** whole-run wall clock, seconds *)
  sched : Ninja_util.Pool.stats;
      (** work-stealing scheduler counters for the run (synthetic
          single-domain snapshot when the serial path ran) *)
  configurations : (string * string) list;
      (** (configuration name, {!Ninja_vm.Interp.strategy_tag}) pairs for
          the four timed configurations, recorded in the JSON report *)
  jobs : job_result list;
  benchmarks : bench_result list;  (** aggregated across machines and steps *)
  geomean_ops_per_s : float;
  opt_geomean_ops_per_s : float;
  compiled_geomean_ops_per_s : float;
  baseline_geomean_ops_per_s : float;
  speedup : float;  (** fast over baseline geomean *)
  opt_speedup : float;  (** optimized over baseline geomean *)
  compiled_speedup : float;  (** compiled over baseline geomean *)
}

type grid_result = {
  g_domains : int;
  g_jobs : int;  (** grid size after dedup *)
  g_cold_wall_s : float;
  g_cold_executed : int;  (** simulations run cold (= [g_jobs] on a fresh store) *)
  g_cold_store_hits : int;  (** nonzero when the store was already partly warm *)
  g_cold_steals : int;
  g_warm_wall_s : float;
  g_warm_executed : int;  (** must be 0: every job served from disk *)
  g_warm_store_hits : int;  (** must equal [g_jobs] *)
  g_warm_speedup : float;  (** cold wall over warm wall *)
}
(** Cold-vs-warm timing of the experiment grid against a persistent
    {!Store} (see {!run_grid}). *)

val schema_version : string
(** ["ninja-selfbench/v4"], the ["schema"] field of the JSON report.
    v2 added ["domains"]-aware defaults, the ["sched"] scheduler-stats
    object, and the optional ["grid"] cold/warm store object; v3 added
    the optimized-pipeline configuration (["opt_geomean_ops_per_s"],
    ["opt_speedup"], per-benchmark ["opt_ops_per_s"]); v4 added the
    compiled configuration (["compiled_geomean_ops_per_s"],
    ["compiled_speedup"], per-benchmark ["compiled_ops_per_s"]), the
    ["configurations"] object recording each configuration's backend
    tag, and the per-job ["job_times"] array that [tools/bench_check.ml]
    uses to compare like-for-like jobs across reports. *)

val default_steps : string list
(** Both ladder endpoints, ["naive serial"] and ["ninja"] — the scalar and
    the vector instruction mix. *)

val default_machines : Ninja_arch.Machine.t list
(** Westmere and Knights Ferry, the paper's two evaluation machines. *)

val run :
  ?domains:int ->
  ?repeats:int ->
  ?opt:Ninja_vm.Optimize.config ->
  ?benchmarks:Ninja_kernels.Driver.benchmark list ->
  ?machines:Ninja_arch.Machine.t list ->
  ?steps:string list ->
  ?progress:(job_result -> unit) ->
  unit ->
  result
(** Run the grid. [domains] defaults to
    {!Ninja_util.Pool.default_domains} — on a multi-core host jobs time
    in parallel (minimum-of-repeats absorbs most of the interference;
    pass [~domains:1] when per-job seconds must be maximally clean).
    [opt] is the pass list the optimized configuration runs (default
    {!Ninja_vm.Optimize.default}, all passes).
    Each configuration of each job runs once untimed (warm-up) plus
    [repeats] timed times (default 2); the reported seconds are the
    minimum, the standard low-noise estimator for deterministic work.
    Steps a benchmark does not have are skipped. [progress] is called
    once per finished job (from worker domains when [domains > 1]).
    @raise Invalid_argument on an empty grid, a fast/baseline
    instruction-count mismatch, or an optimized or compiled timing
    report that is not structurally identical to the fast one (any
    would mean the interpreter strategies diverged — a bug). *)

val run_grid :
  ?domains:int ->
  ?experiments:Experiments.experiment list ->
  store:Store.t ->
  unit ->
  grid_result
(** Time the experiment grid cold then warm against [store]: install it,
    drop the in-process memo, {!Jobs.prefill} (cold — simulates and
    writes entries), drop the memo again, prefill once more (warm —
    every job must load from disk, zero simulations). The previously
    installed store and the memo cache are restored/reset on exit, even
    on exceptions. *)

val to_json : ?grid:grid_result -> result -> Ninja_report.Json.t
(** The JSON report; [grid], when given, is embedded as the ["grid"]
    object. *)

val write_json : ?grid:grid_result -> path:string -> result -> unit
(** Serialize {!to_json} to [path]. *)

val pp_result : Format.formatter -> result -> unit
(** Human-oriented summary (goes to stderr in the harness). *)

val pp_grid : Format.formatter -> grid_result -> unit
(** One-line cold/warm summary (stderr). *)
