(* Keep EXPERIMENTS.md's generated sections in sync with the code.

   The document carries marker pairs

     <!-- BEGIN GENERATED: <id> -->
     ...generated text...
     <!-- END GENERATED: <id> -->

   and this module owns what goes between them: each registered id has a
   generator that renders the current experiment output (deterministic, so
   "in sync" is byte equality). [Check] reports drifted sections without
   touching the file — the CI gate; [Write] splices fresh content in. *)

module Table = Ninja_report.Table

let begin_marker id = Fmt.str "<!-- BEGIN GENERATED: %s -->" id
let end_marker id = Fmt.str "<!-- END GENERATED: %s -->" id

(* An experiment's tables as a fenced block (markdown-safe ASCII). *)
let tables_of_experiment id () =
  let e = Experiments.find id in
  let buf = Buffer.create 1024 in
  List.iter
    (fun t -> Buffer.add_string buf (Fmt.str "```@.%a```@." Table.render t))
    (e.run ());
  Buffer.contents buf

let generators =
  [ ("t3", tables_of_experiment "t3");
    ("t4", tables_of_experiment "t4");
    ("t6", tables_of_experiment "t6");
    ("t7", tables_of_experiment "t7") ]

let sections = List.map fst generators

type mode = Check | Write

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

(* First occurrence of [sub] in [s] at or after [start]. *)
let find_sub ?(start = 0) s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  if m = 0 then None else go start

(* Find the span between a marker pair: returns (content_start, content_end)
   where content runs from just after the BEGIN line's newline to the start
   of the END line. *)
let find_section doc id =
  let b = begin_marker id and e = end_marker id in
  match find_sub doc b with
  | None -> Error (Fmt.str "marker pair for section %S is missing" id)
  | Some bi -> (
      let after_begin =
        match String.index_from_opt doc (bi + String.length b) '\n' with
        | Some nl -> nl + 1
        | None -> String.length doc
      in
      match find_sub ~start:after_begin doc e with
      | None -> Error (Fmt.str "section %S has no END marker" id)
      | Some ei -> Ok (after_begin, ei))

let sync mode ~path =
  match read_file path with
  | exception Sys_error msg -> Error msg
  | doc ->
      let doc = ref doc in
      let touched = ref [] in
      let err = ref None in
      List.iter
        (fun (id, gen) ->
          if !err = None then
            match find_section !doc id with
            | Error e -> err := Some e
            | Ok (cs, ce) ->
                let current = String.sub !doc cs (ce - cs) in
                let fresh = gen () in
                if current <> fresh then begin
                  touched := id :: !touched;
                  if mode = Write then
                    doc :=
                      String.sub !doc 0 cs ^ fresh
                      ^ String.sub !doc ce (String.length !doc - ce)
                end)
        generators;
      (match !err with
      | Some e -> Error e
      | None ->
          if mode = Write && !touched <> [] then write_file path !doc;
          Ok (List.rev !touched))
