(** The experiment job grid: the closed set of (machine, benchmark, step)
    simulations every experiment reads, executed across a pool of worker
    domains ({!Ninja_util.Pool}) into the shared memo cache.

    The grid is deterministic: jobs are enumerated in a fixed order
    (experiment presentation order, first occurrence wins on duplicates)
    and each job is an independent pure simulation, so the memoized
    reports — and therefore every rendered table — are byte-identical
    whatever the domain count or scheduling interleaving. *)

type job = {
  machine : Ninja_arch.Machine.t;
  bench : Ninja_kernels.Driver.benchmark;
  step : string;
}

val all_jobs : ?experiments:Experiments.experiment list -> unit -> job list
(** The deduplicated grid for the given experiments (default: all of
    {!Experiments.all}), in deterministic enumeration order. *)

type class_stat = {
  step_name : string;  (** ladder step ("naive serial" ... "ninja") *)
  jobs : int;  (** jobs of this class executed or found cached *)
  wall_s : float;  (** summed per-job wall-clock, seconds *)
}

type summary = {
  domains : int;  (** pool size used *)
  total_jobs : int;  (** grid size after dedup *)
  executed : int;  (** simulations actually run (cache misses) *)
  hits : int;  (** jobs already present in the memo cache *)
  wall_s : float;  (** whole-prefill wall clock, seconds *)
  per_class : class_stat list;  (** by ladder step, fixed ladder order *)
}

val prefill :
  ?domains:int ->
  ?experiments:Experiments.experiment list ->
  ?verbose:bool ->
  unit ->
  summary
(** Run the grid on [domains] workers (default
    {!Ninja_util.Pool.default_domains}; [1] = serial in the calling
    domain) and populate {!Experiments.run_step_cached}'s memo cache.
    After a prefill, running the covered experiments performs no further
    simulation. With [~verbose:true] the summary is also printed to
    stderr; the default is quiet, so library callers keep a clean error
    stream. *)

val pp_summary : Format.formatter -> summary -> unit
(** Multi-line, human-oriented; contains wall-clock times, so callers keep
    it out of deterministic output streams (the CLI sends it to stderr). *)
