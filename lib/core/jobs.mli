(** The experiment job grid: the closed set of (machine, benchmark, step)
    simulations every experiment reads, executed across a pool of worker
    domains ({!Ninja_util.Pool}) into the shared memo cache.

    The grid is deterministic: jobs are enumerated in a fixed order
    (experiment presentation order, first occurrence wins on duplicates)
    and each job is an independent pure simulation, so the memoized
    reports — and therefore every rendered table — are byte-identical
    whatever the domain count or scheduling interleaving.

    Scheduling is cost-aware: jobs are seeded across the pool's deques
    longest-expected-first (LPT), using per-step mean simulation costs
    recorded in the persistent {!Store} by prior runs when one is
    installed ({!Experiments.set_store}), and a static ladder-rank
    heuristic otherwise; work stealing absorbs estimation error. *)

type job = {
  machine : Ninja_arch.Machine.t;
  bench : Ninja_kernels.Driver.benchmark;
  step : string;
}

val all_jobs : ?experiments:Experiments.experiment list -> unit -> job list
(** The deduplicated grid for the given experiments (default: all of
    {!Experiments.all}), in deterministic enumeration order. *)

val schedule_order : (string * float) list -> job list -> job list
(** [schedule_order step_costs jobs]: [jobs] stably sorted by descending
    expected cost — [step_costs] (per-step mean seconds, see
    {!Store.step_costs}) where available, a static ladder-rank heuristic
    for steps never measured. Exposed for tests; {!prefill} applies it
    automatically. *)

type class_stat = {
  step_name : string;  (** ladder step ("naive serial" ... "ninja") *)
  jobs : int;  (** jobs of this class executed or found cached *)
  wall_s : float;  (** summed per-job wall-clock, seconds *)
}

type summary = {
  domains : int;  (** pool size used *)
  total_jobs : int;  (** grid size after dedup *)
  executed : int;  (** simulations actually run (cache misses) *)
  hits : int;  (** jobs already present in the memo cache *)
  store_hits : int;  (** jobs served from the persistent store *)
  wall_s : float;  (** whole-prefill wall clock, seconds *)
  per_class : class_stat list;  (** by ladder step, fixed ladder order *)
  sched : Ninja_util.Pool.stats;
      (** scheduler counters: steals, per-domain busy time and task
          counts, peak queue depths (synthetic single-domain snapshot
          when the serial path ran) *)
}

val prefill :
  ?domains:int ->
  ?experiments:Experiments.experiment list ->
  ?verbose:bool ->
  ?sched_trace:string ->
  unit ->
  summary
(** Run the grid on [domains] workers (default
    {!Ninja_util.Pool.default_domains}; [1] = serial in the calling
    domain) and populate {!Experiments.run_step_cached}'s memo cache.
    After a prefill, running the covered experiments performs no further
    simulation. When a persistent store is installed, jobs hit it before
    simulating, every executed simulation is written back, and the
    measured per-step costs are flushed for the next run's scheduling.
    With [~verbose:true] the summary is also printed to stderr; the
    default is quiet, so library callers keep a clean error stream.
    [sched_trace], if given, writes a Chrome trace_event JSON of the
    realized schedule (one span per job on its executing domain's track,
    same dialect as {!Ninja_profile.Chrome}) to that path. *)

val pp_summary : Format.formatter -> summary -> unit
(** Multi-line, human-oriented; contains wall-clock times, so callers keep
    it out of deterministic output streams (the CLI sends it to stderr). *)
