module Machine = Ninja_arch.Machine
module Timing = Ninja_arch.Timing
module Driver = Ninja_kernels.Driver
module Registry = Ninja_kernels.Registry
module Table = Ninja_report.Table
module Roofline = Ninja_analysis.Roofline
module Stats = Ninja_util.Stats

type job = Machine.t * Driver.benchmark * string

type experiment = {
  id : string;
  title : string;
  claim : string;
  needs : unit -> job list;
  run : unit -> Table.t list;
}

let gap (naive : Timing.report) (best : Timing.report) = Timing.speedup ~baseline:naive best

(* ------------------------------------------------------------------ *)
(* Memoized step execution                                             *)

(* The memo cache is shared by the domain pool (Jobs.prefill) and by the
   serial fallback below, so every read and write takes [cache_mu]. The
   simulation itself runs outside the lock: jobs are pure (fresh memory,
   deterministic workloads), so a racy double-compute of the same key just
   stores the identical report twice. *)

let cache : (string * string * string, Timing.report) Hashtbl.t = Hashtbl.create 64

(* Full tuning sessions (the "tuned" rung), keyed (machine name, bench).
   A session is much more than a report — candidate list, per-loop
   decisions, baselines — so T7 and the CLI read this table while the
   plain report memo above serves F1/F4 and the prefill grid. *)
let tuned_results : (string * string, Tuner.t) Hashtbl.t = Hashtbl.create 16
let cache_mu = Mutex.create ()
let cache_hits = ref 0
let cache_misses = ref 0
let store_hits = ref 0

(* The optional persistent layer below the in-memory memo. Set once at
   startup (CLI flags / test setup) before any parallel work; reads from
   worker domains are then safe (the ref itself is not mutated
   concurrently, and Store.t is internally synchronized). *)
let the_store : Store.t option ref = ref None

let set_store s = the_store := s
let store () = !the_store

let locked f =
  Mutex.lock cache_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock cache_mu) f

let cache_stats () = locked (fun () -> (!cache_hits, !cache_misses))
let store_hit_count () = locked (fun () -> !store_hits)

let reset_cache () =
  locked (fun () ->
      Hashtbl.reset cache;
      Hashtbl.reset tuned_results;
      cache_hits := 0;
      cache_misses := 0;
      store_hits := 0)

(* Building a benchmark's ladder ([bench.steps]) runs the whole
   source-level compiler pipeline over every variant — around half a
   second per benchmark, which dwarfs many of the simulations themselves
   (and *is* the warm-path cost once reports come from the store). The
   ladder is a pure function of (benchmark, scale), so build it once per
   process. Built outside the lock: a racy duplicate build just loses,
   and the first inserted value wins so every caller shares one ladder. *)
let ladders : (string * int, Driver.step list) Hashtbl.t = Hashtbl.create 16

let ladder (bench : Driver.benchmark) ~scale =
  let k = (bench.Driver.b_name, scale) in
  match locked (fun () -> Hashtbl.find_opt ladders k) with
  | Some steps -> steps
  | None ->
      let built = bench.steps ~scale in
      locked (fun () ->
          match Hashtbl.find_opt ladders k with
          | Some steps -> steps
          | None ->
              Hashtbl.add ladders k built;
              built)

let find_step (bench : Driver.benchmark) name =
  let steps = ladder bench ~scale:bench.default_scale in
  match List.find_opt (fun (s : Driver.step) -> s.step_name = name) steps with
  | Some s -> s
  | None -> invalid_arg (Fmt.str "benchmark %s has no step %S" bench.b_name name)

let naive = "naive serial"
let autovec = "+autovec"
let parallel = "+parallel"
let algorithmic = "+algorithmic"
let tuned = "tuned"
let ninja = "ninja"

let rec run_step_cached ~machine (bench : Driver.benchmark) step_name =
  let key = (machine.Machine.name, bench.b_name, step_name) in
  let cached =
    locked (fun () ->
        match Hashtbl.find_opt cache key with
        | Some r ->
            incr cache_hits;
            Some r
        | None -> None)
  in
  match cached with
  | Some r -> r
  | None when step_name = tuned ->
      (* The synthetic rung: a whole tuning session, memoized as one unit.
         Its candidate simulations go through the persistent store (not
         this memo), so the session counts as a single miss — or, when
         the store served every evaluation, as a single store hit, so a
         warm grid rerun still reports zero simulations executed. *)
      let tr = tuned_result ~machine bench in
      let r = tr.Tuner.t_report in
      locked (fun () ->
          if tr.Tuner.t_simulated = 0 then incr store_hits
          else incr cache_misses;
          Hashtbl.replace cache key r);
      r
  | None -> (
      let step = find_step bench step_name in
      (* Probe the persistent store below the memo: a verified disk entry
         replaces the simulation entirely (and counts as neither memo hit
         nor miss — [cache_misses] stays "simulations executed"). *)
      let from_store =
        match !the_store with
        | None -> None
        | Some st ->
            let prog = step.Driver.make ~machine in
            (* the simulation runs through the process-default backend
               (Driver.run_step's resolved strategy), so its tag is part
               of the key — a buggy backend can only poison its own key
               space *)
            let backend =
              Ninja_vm.Interp.strategy_tag (Ninja_vm.Interp.default_strategy ())
            in
            let skey = Store.key ~backend st ~machine ~step_name prog in
            (st, skey, Store.load st ~key:skey ~machine) |> Option.some
      in
      match from_store with
      | Some (_, _, Some r) ->
          locked (fun () ->
              incr store_hits;
              Hashtbl.replace cache key r);
          r
      | (None | Some (_, _, None)) as probed ->
          let t0 = Unix.gettimeofday () in
          let r = Driver.run_step ~machine step in
          let cost_s = Unix.gettimeofday () -. t0 in
          (match probed with
          | Some (st, skey, None) ->
              Store.save st ~key:skey ~machine ~step_name ~cost_s r
          | _ -> ());
          locked (fun () ->
              incr cache_misses;
              Hashtbl.replace cache key r);
          r)

and tuned_result ?(domains = 1) ~machine (bench : Driver.benchmark) =
  let k = (machine.Machine.name, bench.Driver.b_name) in
  match locked (fun () -> Hashtbl.find_opt tuned_results k) with
  | Some t -> t
  | None ->
      let scale = bench.default_scale in
      let steps = ladder bench ~scale in
      (* Tuned outside the lock (it may itself read this memo through
         [run_rung]); a racy duplicate session computes the identical
         value and the first insert wins. *)
      let t =
        Tuner.tune ~domains ?store:!the_store
          ~run_rung:(run_step_cached ~machine bench)
          ~machine ~scale ~steps bench
      in
      locked (fun () ->
          match Hashtbl.find_opt tuned_results k with
          | Some t -> t
          | None ->
              Hashtbl.add tuned_results k t;
              t)

let suite = Registry.all
let westmere = Machine.westmere
let mic = Machine.knights_ferry

(* Derived machines used by f6/f7/a1; hoisted so [needs] and [run] agree
   on the exact machine (the memo key is the machine name). *)
let gather_cpu = Machine.with_name (Machine.with_gather westmere true) "Westmere+gather"
let no_gather_mic = Machine.with_name (Machine.with_gather mic false) "KNF-no-gather"
let future_machines = [ westmere; Machine.future ~generation:1; Machine.future ~generation:2 ]

let a1_variants =
  [ ("baseline", westmere);
    ("no prefetcher", Machine.with_name (Machine.with_prefetch westmere false) "W-nopf");
    ("with gather", gather_cpu);
    ("half bandwidth",
     Machine.with_name { westmere with dram_bw_gbs = westmere.dram_bw_gbs /. 2. } "W-halfbw");
    ("double bandwidth",
     Machine.with_name { westmere with dram_bw_gbs = westmere.dram_bw_gbs *. 2. } "W-2xbw") ]

(* [cross machines steps]: every (machine, benchmark, step) combination
   over the whole suite — the closed-set declarations below. *)
let cross machines steps : job list =
  List.concat_map
    (fun m -> List.concat_map (fun (b : Driver.benchmark) -> List.map (fun s -> (m, b, s)) steps) suite)
    machines

let geomean_row label values =
  label :: List.map (fun v -> Table.cell_x v) values

(* ------------------------------------------------------------------ *)
(* T1: benchmark suite characterization                                 *)

let t1 () =
  let t =
    Table.create ~title:"T1. Benchmark suite (measured on Westmere, best variant)"
      ~columns:
        [ "benchmark"; "description"; "Mflops"; "DRAM MB"; "flop/B"; "bound" ]
  in
  List.iter
    (fun (b : Driver.benchmark) ->
      let r = run_step_cached ~machine:westmere b ninja in
      let bytes = r.dram_read_bytes + r.dram_write_bytes in
      let intensity =
        if bytes = 0 then Float.infinity else Timing.flops r /. float_of_int bytes
      in
      Table.add_row t
        [ b.b_name; b.b_desc;
          Table.cell_f (Timing.flops r /. 1e6);
          Table.cell_f (float_of_int bytes /. 1e6);
          Table.cell_f intensity;
          Timing.bound_name r.bound ])
    suite;
  [ t ]

(* ------------------------------------------------------------------ *)
(* F1: the Ninja gap on Westmere                                        *)

let f1 () =
  let t =
    Table.create
      ~title:"F1. Ninja gap on Core i7 X980 (naive serial C vs auto-tuned vs best-optimized)"
      ~columns:
        [ "benchmark"; "naive Mcyc"; "tuned Mcyc"; "ninja Mcyc"; "gap";
          "tuned gap" ]
  in
  let gaps, tgaps =
    List.fold_left
      (fun (gs, ts) (b : Driver.benchmark) ->
        let rn = run_step_cached ~machine:westmere b naive in
        let rt = run_step_cached ~machine:westmere b tuned in
        let rj = run_step_cached ~machine:westmere b ninja in
        let g = gap rn rj and tg = gap rt rj in
        Table.add_row t
          [ b.b_name;
            Table.cell_f (rn.cycles /. 1e6);
            Table.cell_f (rt.cycles /. 1e6);
            Table.cell_f (rj.cycles /. 1e6);
            Table.cell_x g;
            Table.cell_x tg ];
        (g :: gs, tg :: ts))
      ([], []) suite
  in
  Table.add_row t
    [ "GEOMEAN"; ""; ""; "";
      Table.cell_x (Stats.geomean gaps);
      Table.cell_x (Stats.geomean tgaps) ];
  Table.add_row t
    [ "MAX"; ""; ""; "";
      Table.cell_x (Stats.maximum gaps);
      Table.cell_x (Stats.maximum tgaps) ];
  [ t ]

(* ------------------------------------------------------------------ *)
(* F2: unaddressed gap across processor generations                     *)

let f2 () =
  let machines = Machine.paper_cpus @ [ mic ] in
  let t =
    Table.create
      ~title:"F2. Ninja gap if unaddressed, across architecture generations"
      ~columns:("benchmark" :: List.map (fun (m : Machine.t) -> m.name) machines)
  in
  let per_machine = Array.make (List.length machines) [] in
  List.iter
    (fun (b : Driver.benchmark) ->
      let cells =
        List.mapi
          (fun i m ->
            let g =
              gap (run_step_cached ~machine:m b naive) (run_step_cached ~machine:m b ninja)
            in
            per_machine.(i) <- g :: per_machine.(i);
            Table.cell_x g)
          machines
      in
      Table.add_row t (b.b_name :: cells))
    suite;
  Table.add_row t
    (geomean_row "GEOMEAN" (Array.to_list (Array.map Stats.geomean per_machine)));
  [ t ]

(* ------------------------------------------------------------------ *)
(* F3: compiler technology alone (auto-vec, then + threading)           *)

let f3 () =
  let t =
    Table.create
      ~title:
        "F3. Compiler steps on unchanged naive code (Westmere; speedup over naive serial)"
      ~columns:[ "benchmark"; "+autovec"; "+parallel"; "residual gap to ninja" ]
  in
  let residuals =
    List.map
      (fun (b : Driver.benchmark) ->
        let rn = run_step_cached ~machine:westmere b naive in
        let rv = run_step_cached ~machine:westmere b autovec in
        let rp = run_step_cached ~machine:westmere b parallel in
        let rj = run_step_cached ~machine:westmere b ninja in
        let residual = gap rp rj in
        Table.add_row t
          [ b.b_name; Table.cell_x (gap rn rv); Table.cell_x (gap rn rp);
            Table.cell_x residual ];
        residual)
      suite
  in
  Table.add_row t [ "GEOMEAN"; ""; ""; Table.cell_x (Stats.geomean residuals) ];
  [ t ]

(* ------------------------------------------------------------------ *)
(* T2: the algorithmic changes and their (low) effort                   *)

let t2 () =
  let t =
    Table.create
      ~title:"T2. Algorithmic changes applied for the bridged variant"
      ~columns:[ "benchmark"; "change"; "naive AST nodes"; "opt AST nodes" ]
  in
  let node_count (step : Driver.step) =
    (* effort proxy: static size of the compiled program *)
    Ninja_vm.Isa.static_size (step.make ~machine:westmere)
  in
  List.iter
    (fun (b : Driver.benchmark) ->
      let steps = b.steps ~scale:1 in
      let find n = List.find (fun (s : Driver.step) -> s.step_name = n) steps in
      Table.add_row t
        [ b.b_name; b.b_algo_note;
          string_of_int (node_count (find naive));
          string_of_int (node_count (find algorithmic)) ])
    suite;
  [ t ]

(* ------------------------------------------------------------------ *)
(* T3: why the naive code fails to vectorize, and what the rewrite      *)
(* changes — purely static (opt-report reason codes; zero simulations)  *)

(* The distinct reason codes a source's opt-report produces, sorted for
   determinism. Remarks count too: a loop that vectorizes *with strided
   accesses* (AOS_LAYOUT / NON_UNIT_STRIDE remarks) is exactly the
   bandwidth story T3 is about. *)
let reason_codes src =
  let report = Ninja_lang.Optreport.analyze_src src in
  let codes =
    List.concat_map
      (fun (l : Ninja_lang.Optreport.loop_report) ->
        List.map (fun (d : Ninja_lang.Diag.t) -> Ninja_lang.Diag.code_name d.code) l.diags)
      report.loops
    @ List.map
        (fun (d : Ninja_lang.Diag.t) -> Ninja_lang.Diag.code_name d.code)
        report.errors
  in
  match List.sort_uniq compare codes with
  | [] -> "-"
  | cs -> String.concat " " cs

let t3 () =
  let t =
    Table.create
      ~title:
        "T3. Static diagnosis of the naive code vs the rewrite (opt-report reason codes)"
      ~columns:[ "benchmark"; "naive codes"; "algorithmic change"; "rewrite codes" ]
  in
  List.iter
    (fun (b : Driver.benchmark) ->
      let variant name =
        List.assoc_opt name b.b_sources |> Option.map reason_codes
      in
      Table.add_row t
        [ b.b_name;
          Option.value ~default:"-" (variant "naive");
          b.b_algo_note;
          Option.value ~default:"(no traditional rewrite)" (variant "algo") ])
    suite;
  [ t ]

(* ------------------------------------------------------------------ *)
(* T6: the dependence engine's legality facts across the suite — purely *)
(* static (zero simulations), the input a ComPar-style tuner consumes   *)

let t6 () =
  let t =
    Table.create
      ~title:
        "T6. Dependence-engine legality facts per loop (distance/direction \
         vectors; zero simulations)"
      ~columns:
        [ "benchmark"; "variant"; "loop"; "vec"; "par"; "interch"; "peel";
          "blocking dependence" ]
  in
  let yn v = if v then "yes" else "no" in
  List.iter
    (fun (b : Driver.benchmark) ->
      List.iter
        (fun (vname, src) ->
          let facts =
            Ninja_lang.Deps.analyze_src ~name:(b.b_name ^ "/" ^ vname) src
          in
          List.iter
            (fun (f : Ninja_lang.Deps.loop_facts) ->
              let blocking =
                match f.legality.blocking_dep with
                | None -> "-"
                | Some (a, dist, dir) ->
                    Fmt.str "%s %s (%s)" a
                      (match dist with
                      | Some n -> Fmt.str "d=%d" n
                      | None -> "d=?")
                      (Ninja_lang.Deps.direction_name dir)
              in
              Table.add_row t
                [ b.b_name; vname;
                  String.make (2 * f.depth) ' ' ^ f.label;
                  yn f.legality.vectorizable;
                  yn f.legality.parallelizable;
                  yn f.legality.interchangeable;
                  yn f.legality.peelable;
                  blocking ])
            facts.loops)
        b.b_sources)
    suite;
  [ t ]

(* ------------------------------------------------------------------ *)
(* T7: the auto-tuner vs ninja — what a ComPar-style search over the    *)
(* legality-pruned transform space recovers of the remaining gap        *)

let t7 () =
  let table_for (m : Machine.t) =
    let t =
      Table.create
        ~title:
          (Fmt.str
             "T7. Auto-tuned variant vs ninja on %s (best legal candidate by simulated time)"
             m.name)
        ~columns:
          [ "benchmark"; "naive Mcyc"; "tuned Mcyc"; "ninja Mcyc"; "vs ninja";
            "gap closed"; "winner"; "cands" ]
    in
    let ratios, halved =
      List.fold_left
        (fun (rs, h) (b : Driver.benchmark) ->
          let tr = tuned_result ~machine:m b in
          let ratio = Tuner.ratio_vs_ninja tr in
          let closed = Tuner.gap_closed tr in
          let enumerated, _, _, _ = Tuner.counts tr in
          Table.add_row t
            [ b.b_name;
              Table.cell_f (tr.Tuner.t_naive.cycles /. 1e6);
              Table.cell_f (tr.Tuner.t_report.cycles /. 1e6);
              Table.cell_f (tr.Tuner.t_ninja.cycles /. 1e6);
              Table.cell_x ratio;
              Fmt.str "%.0f%%" (100. *. closed);
              Tuner.candidate_name tr.Tuner.t_winner;
              string_of_int enumerated ];
          (ratio :: rs, if closed >= 0.5 then h + 1 else h))
        ([], 0) suite
    in
    Table.add_row t
      [ "GEOMEAN"; ""; ""; ""; Table.cell_x (Stats.geomean ratios); ""; ""; "" ];
    Table.add_row t
      [ "GAP >=50% CLOSED"; ""; ""; ""; "";
        Fmt.str "%d/%d" halved (List.length suite); ""; "" ];
    t
  in
  [ table_for westmere; table_for mic ]

(* ------------------------------------------------------------------ *)
(* F4: the bridged gap (algorithmic changes + compiler vs ninja)        *)

let f4 () =
  let t =
    Table.create
      ~title:"F4. Gap after algorithmic changes + compiler, and after auto-tuning (Westmere)"
      ~columns:
        [ "benchmark"; "+algorithmic Mcyc"; "tuned Mcyc"; "ninja Mcyc";
          "remaining gap"; "tuned remaining gap" ]
  in
  let gaps, tgaps =
    List.fold_left
      (fun (gs, ts) (b : Driver.benchmark) ->
        let ra = run_step_cached ~machine:westmere b algorithmic in
        let rt = run_step_cached ~machine:westmere b tuned in
        let rj = run_step_cached ~machine:westmere b ninja in
        let g = gap ra rj and tg = gap rt rj in
        Table.add_row t
          [ b.b_name;
            Table.cell_f (ra.cycles /. 1e6);
            Table.cell_f (rt.cycles /. 1e6);
            Table.cell_f (rj.cycles /. 1e6);
            Table.cell_x g;
            Table.cell_x tg ];
        (g :: gs, tg :: ts))
      ([], []) suite
  in
  Table.add_row t
    [ "GEOMEAN"; ""; ""; "";
      Table.cell_x (Stats.geomean gaps);
      Table.cell_x (Stats.geomean tgaps) ];
  [ t ]

(* ------------------------------------------------------------------ *)
(* F5: the same analysis on Intel MIC (Knights Ferry)                   *)

let f5 () =
  let t =
    Table.create
      ~title:"F5. Knights Ferry (MIC): naive gap and bridged gap"
      ~columns:[ "benchmark"; "naive gap"; "bridged gap" ]
  in
  let ngaps, bgaps =
    List.fold_left
      (fun (ng, bg) (b : Driver.benchmark) ->
        let rn = run_step_cached ~machine:mic b naive in
        let ra = run_step_cached ~machine:mic b algorithmic in
        let rj = run_step_cached ~machine:mic b ninja in
        let g1 = gap rn rj and g2 = gap ra rj in
        Table.add_row t [ b.b_name; Table.cell_x g1; Table.cell_x g2 ];
        (g1 :: ng, g2 :: bg))
      ([], []) suite
  in
  Table.add_row t
    [ "GEOMEAN"; Table.cell_x (Stats.geomean ngaps); Table.cell_x (Stats.geomean bgaps) ];
  [ t ]

(* ------------------------------------------------------------------ *)
(* F6: hardware support for programmability (gather, prefetch)          *)

let f6 () =
  let t =
    Table.create
      ~title:
        "F6. Hardware gather support: bridged-variant speedup from adding (CPU) or removing (MIC) gather"
      ~columns:
        [ "benchmark"; "CPU +algorithmic"; "CPU+gather"; "benefit";
          "MIC ninja"; "MIC w/o gather"; "loss" ]
  in
  List.iter
    (fun (b : Driver.benchmark) ->
      let cpu = run_step_cached ~machine:westmere b algorithmic in
      let cpu_g = run_step_cached ~machine:gather_cpu b algorithmic in
      let micr = run_step_cached ~machine:mic b ninja in
      let mic_ng = run_step_cached ~machine:no_gather_mic b ninja in
      Table.add_row t
        [ b.b_name;
          Table.cell_f (cpu.cycles /. 1e6);
          Table.cell_f (cpu_g.cycles /. 1e6);
          Table.cell_x (gap cpu cpu_g);
          Table.cell_f (micr.cycles /. 1e6);
          Table.cell_f (mic_ng.cycles /. 1e6);
          Table.cell_x (gap micr mic_ng) ])
    suite;
  [ t ]

(* ------------------------------------------------------------------ *)
(* F7: projection over future architectures                             *)

let f7 () =
  let machines = future_machines in
  let t =
    Table.create
      ~title:
        "F7. Gap growth on future architectures (cores x2, SIMD x2 per generation)"
      ~columns:[ "machine"; "naive gap (geomean)"; "bridged gap (geomean)" ]
  in
  List.iter
    (fun (m : Machine.t) ->
      let ngaps, bgaps =
        List.fold_left
          (fun (ng, bg) (b : Driver.benchmark) ->
            let rn = run_step_cached ~machine:m b naive in
            let ra = run_step_cached ~machine:m b algorithmic in
            let rj = run_step_cached ~machine:m b ninja in
            (gap rn rj :: ng, gap ra rj :: bg))
          ([], []) suite
      in
      Table.add_row t
        [ m.name; Table.cell_x (Stats.geomean ngaps); Table.cell_x (Stats.geomean bgaps) ])
    machines;
  [ t ]

(* ------------------------------------------------------------------ *)
(* F8: roofline placement of the best variants                          *)

let f8 () =
  let table_for (m : Machine.t) =
    let t =
      Table.create
        ~title:
          (Fmt.str "F8. Roofline placement of ninja variants on %s (ridge %.1f flop/B)"
             m.name (Roofline.ridge_intensity m))
        ~columns:[ "benchmark"; "flop/B"; "GFLOP/s"; "roof GF/s"; "efficiency" ]
    in
    List.iter
      (fun (b : Driver.benchmark) ->
        let r = run_step_cached ~machine:m b ninja in
        let p =
          if r.dram_read_bytes + r.dram_write_bytes = 0 then
            Roofline.point_compute ~label:b.b_name r
          else Roofline.point ~label:b.b_name r
        in
        Table.add_row t
          [ b.b_name;
            Table.cell_f p.intensity;
            Table.cell_f p.gflops;
            Table.cell_f p.roof_gflops;
            Fmt.str "%.0f%%" (100. *. p.efficiency) ])
      suite;
    t
  in
  [ table_for westmere; table_for mic ]

(* ------------------------------------------------------------------ *)
(* T4: measured cycle attribution (the profiler as an experiment)       *)

(* Profiled runs need an event sink, so they bypass the memo cache:
   [needs] stays empty and the grid-closure invariant (prefill ⇒ zero
   misses) is untouched. The lazy memo keeps repeated renders within one
   process from re-simulating; rendering happens serially after prefill,
   so plain [lazy] suffices. *)
let t4_profiles =
  lazy
    (List.map
       (fun (m : Machine.t) ->
         ( m,
           List.map
             (fun (b : Driver.benchmark) ->
               Ninja_profile.Profile.of_step ~machine:m ~prog_name:b.b_name
                 (find_step b ninja))
             suite ))
       [ westmere; mic ])

let t4 () =
  List.map
    (fun ((m : Machine.t), profiles) ->
      Ninja_profile.Profile.summary_table
        ~title:
          (Fmt.str
             "T4. Measured cycle attribution of ninja variants on %s (event-derived fractions of modeled cycles)"
             m.name)
        profiles)
    (Lazy.force t4_profiles)

(* ------------------------------------------------------------------ *)
(* A1: machine-feature ablation on the bridged variant                  *)

let a1 () =
  let variants = a1_variants in
  let t =
    Table.create
      ~title:
        "A1. Ablation: +algorithmic variant runtime (Mcycles) under machine-feature changes"
      ~columns:("benchmark" :: List.map fst variants)
  in
  List.iter
    (fun (b : Driver.benchmark) ->
      Table.add_row t
        (b.b_name
        :: List.map
             (fun (_, m) ->
               Table.cell_f ((run_step_cached ~machine:m b algorithmic).cycles /. 1e6))
             variants))
    suite;
  [ t ]

(* ------------------------------------------------------------------ *)

(* Each experiment's [needs] declares the exact simulation jobs its [run]
   will read through [run_step_cached] — the closed set Jobs.prefill
   executes on the domain pool. The differential test asserts closure:
   after a prefill, rendering every experiment causes zero cache misses. *)
let all =
  [ { id = "t1"; title = "Benchmark characterization"; claim = "suite description (paper Table 1)";
      needs = (fun () -> cross [ westmere ] [ ninja ]); run = t1 };
    { id = "f1"; title = "Ninja gap on Westmere"; claim = "claim 1: avg 24X, up to 53X";
      needs = (fun () -> cross [ westmere ] [ naive; tuned; ninja ]); run = f1 };
    { id = "f2"; title = "Gap across generations"; claim = "claim 2: gap grows if unaddressed";
      needs = (fun () -> cross (Machine.paper_cpus @ [ mic ]) [ naive; ninja ]); run = f2 };
    { id = "f3"; title = "Compiler-only ladder"; claim = "claim 3a: vectorization + threading on naive code";
      needs = (fun () -> cross [ westmere ] [ naive; autovec; parallel; ninja ]); run = f3 };
    { id = "t2"; title = "Algorithmic changes"; claim = "claim 3b: the low-effort code changes";
      needs = (fun () -> []); run = t2 };
    { id = "t3"; title = "Static diagnosis"; claim = "why naive code stays scalar (reason codes)";
      needs = (fun () -> []); run = t3 };
    { id = "f4"; title = "Bridged gap"; claim = "claim 3c: avg ~1.3X after changes + compiler";
      needs = (fun () -> cross [ westmere ] [ algorithmic; tuned; ninja ]); run = f4 };
    { id = "f5"; title = "Knights Ferry (MIC)"; claim = "claim 5: same story on manycore";
      needs = (fun () -> cross [ mic ] [ naive; algorithmic; ninja ]); run = f5 };
    { id = "f6"; title = "Hardware gather support"; claim = "claim 4: hardware support for programmability";
      needs =
        (fun () ->
          cross [ westmere; gather_cpu ] [ algorithmic ]
          @ cross [ mic; no_gather_mic ] [ ninja ]);
      run = f6 };
    { id = "f7"; title = "Future scaling"; claim = "claims 2+3: bridged gap stays stable";
      needs = (fun () -> cross future_machines [ naive; algorithmic; ninja ]); run = f7 };
    { id = "f8"; title = "Roofline placement"; claim = "bound-and-bottleneck analysis";
      needs = (fun () -> cross [ westmere; mic ] [ ninja ]); run = f8 };
    { id = "t4"; title = "Measured cycle attribution"; claim = "bottleneck classes as a measured output (profiler; matches T1)";
      needs = (fun () -> []); run = t4 };
    { id = "t6"; title = "Dependence legality facts"; claim = "the legality wall, loop by loop (distance/direction vectors)";
      needs = (fun () -> []); run = t6 };
    { id = "t7"; title = "Auto-tuner vs ninja"; claim = "ComPar-style search over the legality-pruned space (tuned rung)";
      needs = (fun () -> cross [ westmere; mic ] [ naive; tuned; ninja ]); run = t7 };
    { id = "a1"; title = "Machine-feature ablation"; claim = "sensitivity analysis (ours)";
      needs = (fun () -> cross (List.map snd a1_variants) [ algorithmic ]); run = a1 } ]

let find id =
  let id = String.lowercase_ascii id in
  match List.find_opt (fun e -> e.id = id) all with
  | Some e -> e
  | None -> raise Not_found
