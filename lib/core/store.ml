(* The persistent content-addressed result store.

   Every simulation in this repository is a pure function of (compiled
   program, machine configuration, step semantics, simulator version), so
   its report can be cached on disk across processes. An entry's key is a
   digest over exactly those inputs:

   - the *decoded* program ({!Ninja_vm.Decode.fingerprint} — the flat op
     arrays the interpreter executes, not the source that produced them),
   - a canonical fingerprint of every machine parameter the timing model
     reads (including the per-op-class issue-cost vector, so editing a
     cost table invalidates entries even though the machine keeps its
     name),
   - the ladder step name (steps also differ in thread count, launch
     count and prepare hooks, which live outside the program), and
   - the store's version salt, bumped whenever the timing model's
     semantics change.

   Values are the full {!Ninja_arch.Timing.report} records, serialized
   with the {!Ninja_report.Json} printer (whose number rendering is
   shortest-round-trip, so every float reloads bit-identically — warm
   tables are byte-identical to cold ones). Writes go to a unique temp
   file followed by an atomic [Sys.rename], so concurrent writers of the
   same key are safe (both write identical bytes; last rename wins).
   Loads re-verify the key digest and a payload checksum and re-parse
   strictly; any corruption, truncation, staleness or version skew makes
   [load] return [None] — the caller falls through to re-simulation, so
   the store can never return wrong data, only miss.

   The store also aggregates per-ladder-step simulation costs
   (costs.json) that {!Jobs.prefill} uses to seed the work-stealing
   deques longest-expected-first. *)

module Machine = Ninja_arch.Machine
module Timing = Ninja_arch.Timing
module Hierarchy = Ninja_arch.Hierarchy
module Counts = Ninja_vm.Counts
module Isa = Ninja_vm.Isa
module Decode = Ninja_vm.Decode
module Json = Ninja_report.Json

(* Bump whenever the timing model or interpreter semantics change in a
   way the program/machine fingerprints cannot see.
   v2: keys gained an optimizer-pass-list component, so entries produced
   by optimized op arrays can never alias unoptimized ones.
   v4: keys gained an execution-backend component
   ({!Ninja_vm.Interp.strategy_tag}), so entries produced by the
   closure-compiled executor can never alias interpreted ones. *)
let version_salt = "ninja-store/v4"

let default_dir = "_ninja_cache"

type stats = { hits : int; misses : int; errors : int; writes : int }

type t = {
  dir : string;
  salt : string;
  mu : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable errors : int;
  mutable writes : int;
  cost_acc : (string, float * int) Hashtbl.t;  (* step -> (sum_s, n) *)
}

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> () (* concurrent creator *)
  end

let open_ ?(salt = version_salt) ~dir () =
  mkdir_p dir;
  {
    dir;
    salt;
    mu = Mutex.create ();
    hits = 0;
    misses = 0;
    errors = 0;
    writes = 0;
    cost_acc = Hashtbl.create 8;
  }

let dir t = t.dir

(* Throwaway stores: a fresh unique directory under the system temp dir,
   for smoke gates and load tests whose "cold" must mean cold whatever
   state the build directory is in. *)
let scratch ?salt () =
  let d = Filename.temp_file "ninja-scratch-store" "" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  open_ ?salt ~dir:d ()

let destroy t =
  let rec rm_rf p =
    if Sys.is_directory p then begin
      Array.iter (fun e -> rm_rf (Filename.concat p e)) (Sys.readdir p);
      Unix.rmdir p
    end
    else Sys.remove p
  in
  if Sys.file_exists t.dir then rm_rf t.dir

let stats t =
  locked t (fun () ->
      { hits = t.hits; misses = t.misses; errors = t.errors; writes = t.writes })

(* ------------------------------------------------------------------ *)
(* Key composition                                                     *)

(* Every parameter the timing model reads, in a fixed order. The issue
   cost function is fingerprinted by applying it to every op class, and
   gather cost separately (it also depends on gather_native/simd). *)
let machine_fingerprint (m : Machine.t) =
  let cache (c : Machine.cache_cfg) =
    Printf.sprintf "%d/%d/%d/%d" c.size_bytes c.assoc c.line_bytes c.latency
  in
  let costs =
    String.concat ","
      (List.map
         (fun cls -> Printf.sprintf "%h" (m.issue_cost cls))
         Isa.all_op_classes)
  in
  Printf.sprintf
    "%s|%h|%d|%d|%d|%b|%b|%b|%d|%s|%s|%s|%d|%h|%d|%d|costs:%s|gather:%h"
    m.name m.freq_ghz m.cores m.simd_width m.issue_width m.fma_native
    m.gather_native m.prefetch m.mlp (cache m.l1) (cache m.l2) (cache m.llc)
    m.dram_latency m.dram_bw_gbs m.barrier_cycles m.spawn_cycles costs
    (Machine.gather_cost m)

let key ?(opt = "") ?(backend = "") t ~machine ~step_name prog =
  (* [opt] is the {!Ninja_vm.Optimize.tag} of the pass list the
     interpreter ran ("" = plain decoded arrays), [backend] the
     {!Ninja_vm.Interp.strategy_tag} of the execution backend ("" =
     backend-agnostic). The fingerprint hashes the *unoptimized* decode,
     so without these components an entry simulated through a buggy
     pass — or a buggy compiled executor — could satisfy a later
     unoptimized lookup (and vice versa); mixing the tags in keeps the
     key spaces disjoint. *)
  let prog_fp = Decode.fingerprint (Decode.decode prog) in
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [ t.salt; machine_fingerprint machine; step_name; prog_fp; opt;
            backend ]))

(* ------------------------------------------------------------------ *)
(* Report (de)serialization                                            *)

let all_levels = Hierarchy.[ L1; L2; LLC; Dram ]

let level_of_name s =
  match List.find_opt (fun l -> Hierarchy.level_name l = s) all_levels with
  | Some l -> l
  | None -> failwith ("Store: unknown cache level " ^ s)

let bound_of_name = function
  | "compute" -> Timing.Compute
  | "bandwidth" -> Timing.Bandwidth
  | "latency" -> Timing.Latency
  | s -> failwith ("Store: unknown bound " ^ s)

let counts_to_json ~n_threads counts =
  Json.List
    (List.init n_threads (fun thread ->
         Json.List
           (Array.to_list
              (Array.map
                 (fun n -> Json.Num (float_of_int n))
                 (Counts.thread_row counts ~thread)))))

let report_to_json (r : Timing.report) =
  Json.Obj
    [
      ("machine", Json.Str r.machine.Machine.name);
      ("n_threads", Json.Num (float_of_int r.n_threads));
      ("cycles", Json.Num r.cycles);
      ("seconds", Json.Num r.seconds);
      ("issue_cycles", Json.Num r.issue_cycles);
      ("stall_cycles", Json.Num r.stall_cycles);
      ("dram_time", Json.Num r.dram_time);
      ("overhead_cycles", Json.Num r.overhead_cycles);
      ("dram_read_bytes", Json.Num (float_of_int r.dram_read_bytes));
      ("dram_write_bytes", Json.Num (float_of_int r.dram_write_bytes));
      ("instructions", Json.Num (float_of_int r.instructions));
      ("bound", Json.Str (Timing.bound_name r.bound));
      ( "level_accesses",
        Json.Obj
          (List.map
             (fun (l, n) ->
               (Hierarchy.level_name l, Json.Num (float_of_int n)))
             r.level_accesses) );
      ("counts", counts_to_json ~n_threads:r.n_threads r.counts);
    ]

(* Strict readers: any shape violation raises, and [load] maps every
   exception to a miss. *)
let get k j = match Json.member k j with Some v -> v | None -> failwith ("Store: missing field " ^ k)
let num k j = match Json.to_float (get k j) with Some x -> x | None -> failwith ("Store: non-number " ^ k)
let str k j = match Json.to_str (get k j) with Some s -> s | None -> failwith ("Store: non-string " ^ k)
let int_ k j =
  let x = num k j in
  if Float.is_integer x then int_of_float x else failwith ("Store: non-integer " ^ k)

let counts_of_json ~n_threads j =
  let rows = match Json.to_list j with Some l -> l | None -> failwith "Store: counts not a list" in
  if List.length rows <> n_threads then failwith "Store: counts thread mismatch";
  let counts = Counts.create n_threads in
  List.iteri
    (fun thread row ->
      let cells = match Json.to_list row with Some l -> l | None -> failwith "Store: counts row" in
      if List.length cells <> Isa.op_class_count then failwith "Store: counts width";
      let dst = Counts.thread_row counts ~thread in
      List.iteri
        (fun i c ->
          match Json.to_float c with
          | Some x when Float.is_integer x -> dst.(i) <- int_of_float x
          | _ -> failwith "Store: counts cell")
        cells)
    rows;
  counts

let report_of_json ~machine j =
  if str "machine" j <> machine.Machine.name then
    failwith "Store: machine name mismatch";
  let n_threads = int_ "n_threads" j in
  let levels =
    match get "level_accesses" j with
    | Json.Obj fields ->
        List.map (fun (name, v) ->
            match Json.to_float v with
            | Some x when Float.is_integer x -> (level_of_name name, int_of_float x)
            | _ -> failwith "Store: level count")
          fields
    | _ -> failwith "Store: level_accesses"
  in
  {
    Timing.machine;
    n_threads;
    cycles = num "cycles" j;
    seconds = num "seconds" j;
    issue_cycles = num "issue_cycles" j;
    stall_cycles = num "stall_cycles" j;
    dram_time = num "dram_time" j;
    overhead_cycles = num "overhead_cycles" j;
    dram_read_bytes = int_ "dram_read_bytes" j;
    dram_write_bytes = int_ "dram_write_bytes" j;
    counts = counts_of_json ~n_threads (get "counts" j);
    instructions = int_ "instructions" j;
    level_accesses = levels;
    bound = bound_of_name (str "bound" j);
  }

(* ------------------------------------------------------------------ *)
(* Entry files                                                         *)

(* Two-level layout (aa/aabbcc...json) keeps directory listings short on
   large grids. *)
let entry_path t key = Filename.concat (Filename.concat t.dir (String.sub key 0 2)) (key ^ ".json")

let payload_checksum report_json =
  Digest.to_hex (Digest.string (Json.to_string ~indent:false report_json))

let entry_schema = "ninja-store-entry/v1"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let atomic_write ~path content =
  mkdir_p (Filename.dirname path);
  let tmp =
    Printf.sprintf "%s.tmp.%d.%x" path (Unix.getpid ()) (Hashtbl.hash (Domain.self ()))
  in
  let oc = open_out_bin tmp in
  (try
     Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc content)
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let save t ~key ~machine ~step_name ~cost_s report =
  let report_json = report_to_json report in
  let entry =
    Json.Obj
      [
        ("schema", Json.Str entry_schema);
        ("key", Json.Str key);
        ("machine", Json.Str machine.Machine.name);
        ("step", Json.Str step_name);
        ("cost_s", Json.Num cost_s);
        ("checksum", Json.Str (payload_checksum report_json));
        ("report", report_json);
      ]
  in
  atomic_write ~path:(entry_path t key) (Json.to_string entry);
  locked t (fun () ->
      t.writes <- t.writes + 1;
      let sum, n = Option.value (Hashtbl.find_opt t.cost_acc step_name) ~default:(0., 0) in
      Hashtbl.replace t.cost_acc step_name (sum +. cost_s, n + 1))

let load t ~key ~machine =
  let path = entry_path t key in
  if not (Sys.file_exists path) then begin
    locked t (fun () -> t.misses <- t.misses + 1);
    None
  end
  else
    match
      let j = Json.parse (read_file path) in
      if str "schema" j <> entry_schema then failwith "Store: entry schema";
      if str "key" j <> key then failwith "Store: key mismatch";
      let report_json = get "report" j in
      if str "checksum" j <> payload_checksum report_json then
        failwith "Store: checksum mismatch";
      report_of_json ~machine report_json
    with
    | report ->
        locked t (fun () -> t.hits <- t.hits + 1);
        Some report
    | exception _ ->
        (* corrupt / stale / truncated: silently fall through to
           re-simulation, which will overwrite the entry *)
        locked t (fun () ->
            t.errors <- t.errors + 1;
            t.misses <- t.misses + 1);
        None

(* [load] also surfaces the stored per-key cost for callers that want it
   without deserializing the whole report. *)
let entry_cost t ~key =
  let path = entry_path t key in
  if not (Sys.file_exists path) then None
  else
    match num "cost_s" (Json.parse (read_file path)) with
    | c -> Some c
    | exception _ -> None

(* ------------------------------------------------------------------ *)
(* Per-step cost estimates (scheduler seeding)                         *)

let costs_path t = Filename.concat t.dir "costs.json"

let step_costs t =
  match
    let j = Json.parse (read_file (costs_path t)) in
    match j with
    | Json.Obj fields ->
        List.filter_map
          (fun (step, v) -> Option.map (fun c -> (step, c)) (Json.to_float v))
          fields
    | _ -> []
  with
  | costs -> costs
  | exception _ -> []

let flush_costs t =
  let acc = locked t (fun () ->
      let l = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.cost_acc [] in
      Hashtbl.reset t.cost_acc;
      l)
  in
  if acc <> [] then begin
    let old = step_costs t in
    (* exponential blend toward the latest mean keeps estimates adaptive
       without a full history *)
    let merged =
      List.sort_uniq compare (List.map fst old @ List.map fst acc)
      |> List.map (fun step ->
             let fresh =
               Option.map (fun (s, n) -> s /. float_of_int n)
                 (List.assoc_opt step acc)
             in
             let prev = List.assoc_opt step old in
             let v =
               match (prev, fresh) with
               | Some p, Some f -> (0.5 *. p) +. (0.5 *. f)
               | None, Some f -> f
               | Some p, None -> p
               | None, None -> assert false
             in
             (step, Json.Num v))
    in
    atomic_write ~path:(costs_path t) (Json.to_string (Json.Obj merged))
  end
