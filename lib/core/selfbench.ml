(* The simulator self-benchmark: how fast is the simulator itself?

   Every experiment number in this repository is deterministic, so the
   only performance that can regress is the wall-clock cost of producing
   them. This module measures simulated-ops-per-second over a grid of
   (benchmark, machine, ladder step) jobs, running each job twice:

   - the *fast* configuration — the pre-decoded [Interp.Decoded] executor
     over the fast-path cache hierarchy (the defaults);
   - the *optimized* configuration — [Interp.Optimized], the fast path
     plus the {!Ninja_vm.Optimize} pass pipeline over the decoded
     arrays; and
   - the *baseline* configuration — [Interp.Tree] over the reference
     hierarchy ([~fast_path:false]), i.e. the simulator as it was before
     the fast path existed.

   All three produce bit-identical reports (the optimized one is checked
   structurally against the fast one on every job); the per-job
   instruction counts are asserted equal, so the ops/s ratios are a pure
   like-for-like measure of the interpreter and cache-model overhead.
   Results aggregate per
   benchmark (summing ops and seconds across machines and steps) and the
   headline number is the geometric mean of per-benchmark ops/s, matching
   how the paper reports performance summaries. *)

module Machine = Ninja_arch.Machine
module Driver = Ninja_kernels.Driver
module Registry = Ninja_kernels.Registry
module Stats = Ninja_util.Stats
module Pool = Ninja_util.Pool
module Json = Ninja_report.Json

let schema_version = "ninja-selfbench/v3"

type job = { bench : Driver.benchmark; machine : Machine.t; step : Driver.step }

type job_result = {
  j_bench : string;
  j_machine : string;
  j_step : string;
  j_ops : int;  (** simulated instructions, identical in all configurations *)
  j_fast_s : float;
  j_opt_s : float;
  j_baseline_s : float;
}

type bench_result = {
  b_name : string;
  b_ops : int;
  b_fast_s : float;
  b_opt_s : float;
  b_baseline_s : float;
  b_ops_per_s : float;
  b_opt_ops_per_s : float;
  b_baseline_ops_per_s : float;
}

type result = {
  domains : int;
  wall_s : float;
  sched : Pool.stats;
  jobs : job_result list;
  benchmarks : bench_result list;
  geomean_ops_per_s : float;
  opt_geomean_ops_per_s : float;
  baseline_geomean_ops_per_s : float;
  speedup : float;
  opt_speedup : float;
}

type grid_result = {
  g_domains : int;
  g_jobs : int;
  g_cold_wall_s : float;
  g_cold_executed : int;
  g_cold_store_hits : int;
  g_cold_steals : int;
  g_warm_wall_s : float;
  g_warm_executed : int;
  g_warm_store_hits : int;
  g_warm_speedup : float;
}

(* Both ladder endpoints: "naive serial" exercises the scalar instruction
   mix, "ninja" the vector/intrinsics mix (every benchmark has both). *)
let default_steps = [ "naive serial"; "ninja" ]
let default_machines = [ Machine.westmere; Machine.knights_ferry ]

let jobs_of ~benchmarks ~machines ~steps =
  List.concat_map
    (fun (b : Driver.benchmark) ->
      let ladder = Experiments.ladder b ~scale:b.default_scale in
      List.concat_map
        (fun machine ->
          List.filter_map
            (fun step_name ->
              List.find_opt
                (fun (s : Driver.step) -> s.step_name = step_name)
                ladder
              |> Option.map (fun step -> { bench = b; machine; step }))
            steps)
        machines)
    benchmarks

(* Best-of-[repeats] timing: each job is tens of milliseconds, so a
   single sample is at the mercy of the scheduler; the minimum over a few
   repetitions is the standard low-noise estimator for deterministic
   work. The simulated result is identical across repetitions. *)
let time ~repeats f =
  let r = ref (f ()) in (* untimed warm-up run; also the returned report *)
  let best = ref infinity in
  for _ = 1 to repeats do
    let t0 = Unix.gettimeofday () in
    r := f ();
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  (!r, !best)

let run_job ~opt ~repeats { bench; machine; step } =
  let fast, j_fast_s = time ~repeats (fun () -> Driver.run_step ~machine step) in
  let optimized, j_opt_s =
    time ~repeats (fun () ->
        Driver.run_step ~strategy:(Ninja_vm.Interp.Optimized opt) ~machine step)
  in
  let baseline, j_baseline_s =
    time ~repeats (fun () ->
        Driver.run_step ~strategy:Ninja_vm.Interp.Tree ~fast_path:false ~machine
          step)
  in
  if fast.Ninja_arch.Timing.instructions <> baseline.Ninja_arch.Timing.instructions
  then
    invalid_arg
      (Fmt.str "Selfbench: %s/%s/%s: fast path simulated %d ops, baseline %d"
         bench.Driver.b_name machine.Machine.name step.Driver.step_name
         fast.Ninja_arch.Timing.instructions
         baseline.Ninja_arch.Timing.instructions);
  (* the optimizer must not move a single reported number: the whole
     timing report — cycles, stalls, DRAM traffic, per-class counts —
     is compared structurally, not just the instruction total *)
  if compare optimized fast <> 0 then
    invalid_arg
      (Fmt.str
         "Selfbench: %s/%s/%s: optimized pipeline changed the timing report"
         bench.Driver.b_name machine.Machine.name step.Driver.step_name);
  {
    j_bench = bench.Driver.b_name;
    j_machine = machine.Machine.name;
    j_step = step.Driver.step_name;
    j_ops = fast.Ninja_arch.Timing.instructions;
    j_fast_s;
    j_opt_s;
    j_baseline_s;
  }

let aggregate ~benchmarks jobs =
  List.filter_map
    (fun (b : Driver.benchmark) ->
      match List.filter (fun j -> j.j_bench = b.Driver.b_name) jobs with
      | [] -> None
      | mine ->
          let sum f = List.fold_left (fun acc j -> acc +. f j) 0. mine in
          let ops =
            List.fold_left (fun acc j -> acc + j.j_ops) 0 mine
          in
          let fast_s = sum (fun j -> j.j_fast_s) in
          let opt_s = sum (fun j -> j.j_opt_s) in
          let baseline_s = sum (fun j -> j.j_baseline_s) in
          Some
            {
              b_name = b.Driver.b_name;
              b_ops = ops;
              b_fast_s = fast_s;
              b_opt_s = opt_s;
              b_baseline_s = baseline_s;
              b_ops_per_s = Stats.ratio (float_of_int ops) fast_s;
              b_opt_ops_per_s = Stats.ratio (float_of_int ops) opt_s;
              b_baseline_ops_per_s = Stats.ratio (float_of_int ops) baseline_s;
            })
    benchmarks

let run ?domains ?(repeats = 2) ?(opt = Ninja_vm.Optimize.default)
    ?(benchmarks = Registry.all) ?(machines = default_machines)
    ?(steps = default_steps) ?(progress = fun _ -> ()) () =
  let domains =
    match domains with Some d -> max 1 d | None -> Pool.default_domains ()
  in
  let repeats = max 1 repeats in
  let jobs = jobs_of ~benchmarks ~machines ~steps in
  if jobs = [] then invalid_arg "Selfbench.run: empty job grid";
  let sched = ref None in
  let t0 = Unix.gettimeofday () in
  let results =
    Pool.map_list ~domains
      ~on_stats:(fun s -> sched := Some s)
      (fun j ->
        let r = run_job ~opt ~repeats j in
        progress r;
        r)
      jobs
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let per_bench = aggregate ~benchmarks results in
  let geomean_ops_per_s =
    Stats.geomean (List.map (fun b -> b.b_ops_per_s) per_bench)
  in
  let opt_geomean_ops_per_s =
    Stats.geomean (List.map (fun b -> b.b_opt_ops_per_s) per_bench)
  in
  let baseline_geomean_ops_per_s =
    Stats.geomean (List.map (fun b -> b.b_baseline_ops_per_s) per_bench)
  in
  {
    domains;
    wall_s;
    sched =
      (match !sched with
      | Some s -> s
      | None ->
          {
            Pool.domains;
            tasks_run = List.length results;
            steals = 0;
            cancelled = 0;
            busy_s = [| wall_s |];
            run_per_domain = [| List.length results |];
            max_depth = [| 0 |];
          });
    jobs = results;
    benchmarks = per_bench;
    geomean_ops_per_s;
    opt_geomean_ops_per_s;
    baseline_geomean_ops_per_s;
    speedup = Stats.ratio geomean_ops_per_s baseline_geomean_ops_per_s;
    opt_speedup = Stats.ratio opt_geomean_ops_per_s baseline_geomean_ops_per_s;
  }

(* Cold-vs-warm persistent-store benchmark: run the experiment grid twice
   against [store] — once with an empty memo (cold: simulates and writes
   entries) and once more with the memo dropped again (warm: every job
   must come back from disk). The in-process memo and any previously
   installed store are saved and restored, so this is safe to run from
   the harness without perturbing later work. *)
let run_grid ?domains ?experiments ~store () =
  let saved_store = Experiments.store () in
  Fun.protect
    ~finally:(fun () ->
      Experiments.set_store saved_store;
      Experiments.reset_cache ())
    (fun () ->
      Experiments.set_store (Some store);
      Experiments.reset_cache ();
      let cold = Jobs.prefill ?domains ?experiments () in
      Experiments.reset_cache ();
      let warm = Jobs.prefill ?domains ?experiments () in
      {
        g_domains = cold.Jobs.domains;
        g_jobs = cold.Jobs.total_jobs;
        g_cold_wall_s = cold.Jobs.wall_s;
        g_cold_executed = cold.Jobs.executed;
        g_cold_store_hits = cold.Jobs.store_hits;
        g_cold_steals = cold.Jobs.sched.Pool.steals;
        g_warm_wall_s = warm.Jobs.wall_s;
        g_warm_executed = warm.Jobs.executed;
        g_warm_store_hits = warm.Jobs.store_hits;
        g_warm_speedup = Stats.ratio cold.Jobs.wall_s warm.Jobs.wall_s;
      })

let num_i i = Json.Num (float_of_int i)

let sched_to_json (s : Pool.stats) =
  Json.Obj
    [
      ("domains", num_i s.Pool.domains);
      ("tasks_run", num_i s.Pool.tasks_run);
      ("steals", num_i s.Pool.steals);
      ("cancelled", num_i s.Pool.cancelled);
      ( "busy_s",
        Json.List (Array.to_list (Array.map (fun x -> Json.Num x) s.Pool.busy_s))
      );
      ( "run_per_domain",
        Json.List (Array.to_list (Array.map num_i s.Pool.run_per_domain)) );
      ("max_depth", Json.List (Array.to_list (Array.map num_i s.Pool.max_depth)));
    ]

let grid_to_json g =
  Json.Obj
    [
      ("domains", num_i g.g_domains);
      ("jobs", num_i g.g_jobs);
      ("cold_wall_s", Json.Num g.g_cold_wall_s);
      ("cold_executed", num_i g.g_cold_executed);
      ("cold_store_hits", num_i g.g_cold_store_hits);
      ("cold_steals", num_i g.g_cold_steals);
      ("warm_wall_s", Json.Num g.g_warm_wall_s);
      ("warm_executed", num_i g.g_warm_executed);
      ("warm_store_hits", num_i g.g_warm_store_hits);
      ("warm_speedup", Json.Num g.g_warm_speedup);
    ]

let to_json ?grid r =
  Json.Obj
    ([
      ("schema", Json.Str schema_version);
      ("jobs", Json.Num (float_of_int (List.length r.jobs)));
      ("domains", Json.Num (float_of_int r.domains));
      ("sched", sched_to_json r.sched);
      ("wall_s", Json.Num r.wall_s);
      ("geomean_ops_per_s", Json.Num r.geomean_ops_per_s);
      ("opt_geomean_ops_per_s", Json.Num r.opt_geomean_ops_per_s);
      ("baseline_geomean_ops_per_s", Json.Num r.baseline_geomean_ops_per_s);
      ("speedup", Json.Num r.speedup);
      ("opt_speedup", Json.Num r.opt_speedup);
      ( "benchmarks",
        Json.List
          (List.map
             (fun b ->
               Json.Obj
                 [
                   ("name", Json.Str b.b_name);
                   ("ops", Json.Num (float_of_int b.b_ops));
                   ("ops_per_s", Json.Num b.b_ops_per_s);
                   ("opt_ops_per_s", Json.Num b.b_opt_ops_per_s);
                   ("baseline_ops_per_s", Json.Num b.b_baseline_ops_per_s);
                   ("wall_s", Json.Num (b.b_fast_s +. b.b_opt_s +. b.b_baseline_s));
                 ])
             r.benchmarks) );
    ]
    @ match grid with None -> [] | Some g -> [ ("grid", grid_to_json g) ])

let write_json ?grid ~path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string (to_json ?grid r)))

let pp_result ppf r =
  Fmt.pf ppf "self-benchmark: %d jobs on %d domain%s in %.1fs@."
    (List.length r.jobs) r.domains
    (if r.domains = 1 then "" else "s")
    r.wall_s;
  List.iter
    (fun b ->
      Fmt.pf ppf "  %-16s %10.0f ops/s  opt %10.0f  (baseline %10.0f, %.2fx/%.2fx)@."
        b.b_name b.b_ops_per_s b.b_opt_ops_per_s b.b_baseline_ops_per_s
        (b.b_ops_per_s /. b.b_baseline_ops_per_s)
        (b.b_opt_ops_per_s /. b.b_baseline_ops_per_s))
    r.benchmarks;
  Fmt.pf ppf
    "  geomean: %.0f ops/s (optimized %.0f) over %.0f baseline — %.2fx, \
     optimized %.2fx@."
    r.geomean_ops_per_s r.opt_geomean_ops_per_s r.baseline_geomean_ops_per_s
    r.speedup r.opt_speedup;
  Fmt.pf ppf "  %a" Pool.pp_stats r.sched

let pp_grid ppf g =
  Fmt.pf ppf
    "store grid: %d jobs on %d domain%s: cold %.1fs (%d simulated, %d steals) \
     -> warm %.2fs (%d simulated, %d store hits) — %.1fx"
    g.g_jobs g.g_domains
    (if g.g_domains = 1 then "" else "s")
    g.g_cold_wall_s g.g_cold_executed g.g_cold_steals g.g_warm_wall_s
    g.g_warm_executed g.g_warm_store_hits g.g_warm_speedup
