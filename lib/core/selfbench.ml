(* The simulator self-benchmark: how fast is the simulator itself?

   Every experiment number in this repository is deterministic, so the
   only performance that can regress is the wall-clock cost of producing
   them. This module measures simulated-ops-per-second over a grid of
   (benchmark, machine, ladder step) jobs, running each job twice:

   - the *fast* configuration — the pre-decoded [Interp.Decoded] executor
     over the fast-path cache hierarchy (the defaults); and
   - the *baseline* configuration — [Interp.Tree] over the reference
     hierarchy ([~fast_path:false]), i.e. the simulator as it was before
     the fast path existed.

   Both produce bit-identical reports; the per-job instruction counts are
   asserted equal, so the ops/s ratio is a pure like-for-like measure of
   the interpreter and cache-model overhead. Results aggregate per
   benchmark (summing ops and seconds across machines and steps) and the
   headline number is the geometric mean of per-benchmark ops/s, matching
   how the paper reports performance summaries. *)

module Machine = Ninja_arch.Machine
module Driver = Ninja_kernels.Driver
module Registry = Ninja_kernels.Registry
module Stats = Ninja_util.Stats
module Pool = Ninja_util.Pool
module Json = Ninja_report.Json

let schema_version = "ninja-selfbench/v1"

type job = { bench : Driver.benchmark; machine : Machine.t; step : Driver.step }

type job_result = {
  j_bench : string;
  j_machine : string;
  j_step : string;
  j_ops : int;  (** simulated instructions, identical in both configurations *)
  j_fast_s : float;
  j_baseline_s : float;
}

type bench_result = {
  b_name : string;
  b_ops : int;
  b_fast_s : float;
  b_baseline_s : float;
  b_ops_per_s : float;
  b_baseline_ops_per_s : float;
}

type result = {
  domains : int;
  wall_s : float;
  jobs : job_result list;
  benchmarks : bench_result list;
  geomean_ops_per_s : float;
  baseline_geomean_ops_per_s : float;
  speedup : float;
}

(* Both ladder endpoints: "naive serial" exercises the scalar instruction
   mix, "ninja" the vector/intrinsics mix (every benchmark has both). *)
let default_steps = [ "naive serial"; "ninja" ]
let default_machines = [ Machine.westmere; Machine.knights_ferry ]

let jobs_of ~benchmarks ~machines ~steps =
  List.concat_map
    (fun (b : Driver.benchmark) ->
      let ladder = b.steps ~scale:b.default_scale in
      List.concat_map
        (fun machine ->
          List.filter_map
            (fun step_name ->
              List.find_opt
                (fun (s : Driver.step) -> s.step_name = step_name)
                ladder
              |> Option.map (fun step -> { bench = b; machine; step }))
            steps)
        machines)
    benchmarks

(* Best-of-[repeats] timing: each job is tens of milliseconds, so a
   single sample is at the mercy of the scheduler; the minimum over a few
   repetitions is the standard low-noise estimator for deterministic
   work. The simulated result is identical across repetitions. *)
let time ~repeats f =
  let r = ref (f ()) in (* untimed warm-up run; also the returned report *)
  let best = ref infinity in
  for _ = 1 to repeats do
    let t0 = Unix.gettimeofday () in
    r := f ();
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  (!r, !best)

let run_job ~repeats { bench; machine; step } =
  let fast, j_fast_s = time ~repeats (fun () -> Driver.run_step ~machine step) in
  let baseline, j_baseline_s =
    time ~repeats (fun () ->
        Driver.run_step ~strategy:Ninja_vm.Interp.Tree ~fast_path:false ~machine
          step)
  in
  if fast.Ninja_arch.Timing.instructions <> baseline.Ninja_arch.Timing.instructions
  then
    invalid_arg
      (Fmt.str "Selfbench: %s/%s/%s: fast path simulated %d ops, baseline %d"
         bench.Driver.b_name machine.Machine.name step.Driver.step_name
         fast.Ninja_arch.Timing.instructions
         baseline.Ninja_arch.Timing.instructions);
  {
    j_bench = bench.Driver.b_name;
    j_machine = machine.Machine.name;
    j_step = step.Driver.step_name;
    j_ops = fast.Ninja_arch.Timing.instructions;
    j_fast_s;
    j_baseline_s;
  }

let aggregate ~benchmarks jobs =
  List.filter_map
    (fun (b : Driver.benchmark) ->
      match List.filter (fun j -> j.j_bench = b.Driver.b_name) jobs with
      | [] -> None
      | mine ->
          let sum f = List.fold_left (fun acc j -> acc +. f j) 0. mine in
          let ops =
            List.fold_left (fun acc j -> acc + j.j_ops) 0 mine
          in
          let fast_s = sum (fun j -> j.j_fast_s) in
          let baseline_s = sum (fun j -> j.j_baseline_s) in
          Some
            {
              b_name = b.Driver.b_name;
              b_ops = ops;
              b_fast_s = fast_s;
              b_baseline_s = baseline_s;
              b_ops_per_s = Stats.ratio (float_of_int ops) fast_s;
              b_baseline_ops_per_s = Stats.ratio (float_of_int ops) baseline_s;
            })
    benchmarks

let run ?(domains = 1) ?(repeats = 2) ?(benchmarks = Registry.all)
    ?(machines = default_machines) ?(steps = default_steps)
    ?(progress = fun _ -> ()) () =
  let domains = max 1 domains in
  let repeats = max 1 repeats in
  let jobs = jobs_of ~benchmarks ~machines ~steps in
  if jobs = [] then invalid_arg "Selfbench.run: empty job grid";
  let t0 = Unix.gettimeofday () in
  let results =
    Pool.map_list ~domains
      (fun j ->
        let r = run_job ~repeats j in
        progress r;
        r)
      jobs
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let per_bench = aggregate ~benchmarks results in
  let geomean_ops_per_s =
    Stats.geomean (List.map (fun b -> b.b_ops_per_s) per_bench)
  in
  let baseline_geomean_ops_per_s =
    Stats.geomean (List.map (fun b -> b.b_baseline_ops_per_s) per_bench)
  in
  {
    domains;
    wall_s;
    jobs = results;
    benchmarks = per_bench;
    geomean_ops_per_s;
    baseline_geomean_ops_per_s;
    speedup = Stats.ratio geomean_ops_per_s baseline_geomean_ops_per_s;
  }

let to_json r =
  Json.Obj
    [
      ("schema", Json.Str schema_version);
      ("jobs", Json.Num (float_of_int (List.length r.jobs)));
      ("domains", Json.Num (float_of_int r.domains));
      ("wall_s", Json.Num r.wall_s);
      ("geomean_ops_per_s", Json.Num r.geomean_ops_per_s);
      ("baseline_geomean_ops_per_s", Json.Num r.baseline_geomean_ops_per_s);
      ("speedup", Json.Num r.speedup);
      ( "benchmarks",
        Json.List
          (List.map
             (fun b ->
               Json.Obj
                 [
                   ("name", Json.Str b.b_name);
                   ("ops", Json.Num (float_of_int b.b_ops));
                   ("ops_per_s", Json.Num b.b_ops_per_s);
                   ("baseline_ops_per_s", Json.Num b.b_baseline_ops_per_s);
                   ("wall_s", Json.Num (b.b_fast_s +. b.b_baseline_s));
                 ])
             r.benchmarks) );
    ]

let write_json ~path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string (to_json r)))

let pp_result ppf r =
  Fmt.pf ppf "self-benchmark: %d jobs on %d domain%s in %.1fs@."
    (List.length r.jobs) r.domains
    (if r.domains = 1 then "" else "s")
    r.wall_s;
  List.iter
    (fun b ->
      Fmt.pf ppf "  %-16s %10.0f ops/s  (baseline %10.0f, %.2fx)@." b.b_name
        b.b_ops_per_s b.b_baseline_ops_per_s
        (b.b_ops_per_s /. b.b_baseline_ops_per_s))
    r.benchmarks;
  Fmt.pf ppf "  geomean: %.0f ops/s over %.0f baseline — %.2fx"
    r.geomean_ops_per_s r.baseline_geomean_ops_per_s r.speedup
