(* The simulator self-benchmark: how fast is the simulator itself?

   Every experiment number in this repository is deterministic, so the
   only performance that can regress is the wall-clock cost of producing
   them. This module measures simulated-ops-per-second over a grid of
   (benchmark, machine, ladder step) jobs, running each job in four
   configurations:

   - the *fast* configuration — the pre-decoded [Interp.Decoded] executor
     over the fast-path cache hierarchy;
   - the *optimized* configuration — [Interp.Optimized], the fast path
     plus the {!Ninja_vm.Optimize} pass pipeline over the decoded
     arrays;
   - the *compiled* configuration — [Interp.Compiled], the optimized
     arrays threaded into chained closures by {!Ninja_vm.Compile} (the
     simulation default since that backend landed); and
   - the *baseline* configuration — [Interp.Tree] over the reference
     hierarchy ([~fast_path:false]), i.e. the simulator as it was before
     the fast path existed.

   All four produce bit-identical reports (the optimized and compiled
   ones are checked structurally against the fast one on every job); the
   per-job instruction counts are asserted equal, so the ops/s ratios are
   a pure like-for-like measure of the interpreter and cache-model
   overhead. Results aggregate per
   benchmark (summing ops and seconds across machines and steps) and the
   headline number is the geometric mean of per-benchmark ops/s, matching
   how the paper reports performance summaries. *)

module Machine = Ninja_arch.Machine
module Driver = Ninja_kernels.Driver
module Registry = Ninja_kernels.Registry
module Stats = Ninja_util.Stats
module Pool = Ninja_util.Pool
module Json = Ninja_report.Json

let schema_version = "ninja-selfbench/v4"

type job = { bench : Driver.benchmark; machine : Machine.t; step : Driver.step }

type job_result = {
  j_bench : string;
  j_machine : string;
  j_step : string;
  j_ops : int;  (** simulated instructions, identical in all configurations *)
  j_fast_s : float;
  j_opt_s : float;
  j_compiled_s : float;
  j_baseline_s : float;
}

type bench_result = {
  b_name : string;
  b_ops : int;
  b_fast_s : float;
  b_opt_s : float;
  b_compiled_s : float;
  b_baseline_s : float;
  b_ops_per_s : float;
  b_opt_ops_per_s : float;
  b_compiled_ops_per_s : float;
  b_baseline_ops_per_s : float;
}

type result = {
  domains : int;
  wall_s : float;
  sched : Pool.stats;
  configurations : (string * string) list;
  jobs : job_result list;
  benchmarks : bench_result list;
  geomean_ops_per_s : float;
  opt_geomean_ops_per_s : float;
  compiled_geomean_ops_per_s : float;
  baseline_geomean_ops_per_s : float;
  speedup : float;
  opt_speedup : float;
  compiled_speedup : float;
}

type grid_result = {
  g_domains : int;
  g_jobs : int;
  g_cold_wall_s : float;
  g_cold_executed : int;
  g_cold_store_hits : int;
  g_cold_steals : int;
  g_warm_wall_s : float;
  g_warm_executed : int;
  g_warm_store_hits : int;
  g_warm_speedup : float;
}

(* Both ladder endpoints: "naive serial" exercises the scalar instruction
   mix, "ninja" the vector/intrinsics mix (every benchmark has both). *)
let default_steps = [ "naive serial"; "ninja" ]
let default_machines = [ Machine.westmere; Machine.knights_ferry ]

let jobs_of ~benchmarks ~machines ~steps =
  List.concat_map
    (fun (b : Driver.benchmark) ->
      let ladder = Experiments.ladder b ~scale:b.default_scale in
      List.concat_map
        (fun machine ->
          List.filter_map
            (fun step_name ->
              List.find_opt
                (fun (s : Driver.step) -> s.step_name = step_name)
                ladder
              |> Option.map (fun step -> { bench = b; machine; step }))
            steps)
        machines)
    benchmarks

(* Best-of-[repeats] timing, round-robin across the configurations: each
   job is tens of milliseconds and the host's slow periods (frequency
   scaling, hypervisor steal) last whole seconds, so timing one
   configuration's repeats back to back would let a single slow epoch
   bias that configuration's minimum. Interleaving the configurations
   per round spreads any epoch across all of them; the minimum over
   rounds is then a fair low-noise estimator for deterministic work. The
   simulated result is identical across repetitions. *)
let time_round_robin ~repeats fs =
  let n = Array.length fs in
  let reports = Array.map (fun f -> f ()) fs (* untimed warm-up runs *) in
  let best = Array.make n infinity in
  for _ = 1 to repeats do
    Array.iteri
      (fun i f ->
        let t0 = Unix.gettimeofday () in
        reports.(i) <- f ();
        let dt = Unix.gettimeofday () -. t0 in
        if dt < best.(i) then best.(i) <- dt)
      fs
  done;
  (reports, best)

let run_job ~opt ~repeats { bench; machine; step } =
  (* every configuration names its strategy explicitly: the bare default
     is the process-wide backend, which is exactly what this benchmark
     must not depend on *)
  let reports, best =
    time_round_robin ~repeats
      [|
        (fun () ->
          Driver.run_step ~strategy:Ninja_vm.Interp.Decoded ~machine step);
        (fun () ->
          Driver.run_step ~strategy:(Ninja_vm.Interp.Optimized opt) ~machine
            step);
        (fun () ->
          Driver.run_step ~strategy:(Ninja_vm.Interp.Compiled opt) ~machine
            step);
        (fun () ->
          Driver.run_step ~strategy:Ninja_vm.Interp.Tree ~fast_path:false
            ~machine step);
      |]
  in
  let fast = reports.(0)
  and optimized = reports.(1)
  and compiled = reports.(2)
  and baseline = reports.(3) in
  let j_fast_s = best.(0)
  and j_opt_s = best.(1)
  and j_compiled_s = best.(2)
  and j_baseline_s = best.(3) in
  if fast.Ninja_arch.Timing.instructions <> baseline.Ninja_arch.Timing.instructions
  then
    invalid_arg
      (Fmt.str "Selfbench: %s/%s/%s: fast path simulated %d ops, baseline %d"
         bench.Driver.b_name machine.Machine.name step.Driver.step_name
         fast.Ninja_arch.Timing.instructions
         baseline.Ninja_arch.Timing.instructions);
  (* the optimizer must not move a single reported number: the whole
     timing report — cycles, stalls, DRAM traffic, per-class counts —
     is compared structurally, not just the instruction total *)
  if compare optimized fast <> 0 then
    invalid_arg
      (Fmt.str
         "Selfbench: %s/%s/%s: optimized pipeline changed the timing report"
         bench.Driver.b_name machine.Machine.name step.Driver.step_name);
  if compare compiled fast <> 0 then
    invalid_arg
      (Fmt.str
         "Selfbench: %s/%s/%s: compiled backend changed the timing report"
         bench.Driver.b_name machine.Machine.name step.Driver.step_name);
  {
    j_bench = bench.Driver.b_name;
    j_machine = machine.Machine.name;
    j_step = step.Driver.step_name;
    j_ops = fast.Ninja_arch.Timing.instructions;
    j_fast_s;
    j_opt_s;
    j_compiled_s;
    j_baseline_s;
  }

let aggregate ~benchmarks jobs =
  List.filter_map
    (fun (b : Driver.benchmark) ->
      match List.filter (fun j -> j.j_bench = b.Driver.b_name) jobs with
      | [] -> None
      | mine ->
          let sum f = List.fold_left (fun acc j -> acc +. f j) 0. mine in
          let ops =
            List.fold_left (fun acc j -> acc + j.j_ops) 0 mine
          in
          let fast_s = sum (fun j -> j.j_fast_s) in
          let opt_s = sum (fun j -> j.j_opt_s) in
          let compiled_s = sum (fun j -> j.j_compiled_s) in
          let baseline_s = sum (fun j -> j.j_baseline_s) in
          Some
            {
              b_name = b.Driver.b_name;
              b_ops = ops;
              b_fast_s = fast_s;
              b_opt_s = opt_s;
              b_compiled_s = compiled_s;
              b_baseline_s = baseline_s;
              b_ops_per_s = Stats.ratio (float_of_int ops) fast_s;
              b_opt_ops_per_s = Stats.ratio (float_of_int ops) opt_s;
              b_compiled_ops_per_s = Stats.ratio (float_of_int ops) compiled_s;
              b_baseline_ops_per_s = Stats.ratio (float_of_int ops) baseline_s;
            })
    benchmarks

let run ?domains ?(repeats = 2) ?(opt = Ninja_vm.Optimize.default)
    ?(benchmarks = Registry.all) ?(machines = default_machines)
    ?(steps = default_steps) ?(progress = fun _ -> ()) () =
  let domains =
    match domains with Some d -> max 1 d | None -> Pool.default_domains ()
  in
  let repeats = max 1 repeats in
  let jobs = jobs_of ~benchmarks ~machines ~steps in
  if jobs = [] then invalid_arg "Selfbench.run: empty job grid";
  let sched = ref None in
  let t0 = Unix.gettimeofday () in
  let results =
    Pool.map_list ~domains
      ~on_stats:(fun s -> sched := Some s)
      (fun j ->
        let r = run_job ~opt ~repeats j in
        progress r;
        r)
      jobs
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let per_bench = aggregate ~benchmarks results in
  let geomean_ops_per_s =
    Stats.geomean (List.map (fun b -> b.b_ops_per_s) per_bench)
  in
  let opt_geomean_ops_per_s =
    Stats.geomean (List.map (fun b -> b.b_opt_ops_per_s) per_bench)
  in
  let compiled_geomean_ops_per_s =
    Stats.geomean (List.map (fun b -> b.b_compiled_ops_per_s) per_bench)
  in
  let baseline_geomean_ops_per_s =
    Stats.geomean (List.map (fun b -> b.b_baseline_ops_per_s) per_bench)
  in
  let configurations =
    [
      ("fast", Ninja_vm.Interp.strategy_tag Ninja_vm.Interp.Decoded);
      ("optimized", Ninja_vm.Interp.strategy_tag (Ninja_vm.Interp.Optimized opt));
      ("compiled", Ninja_vm.Interp.strategy_tag (Ninja_vm.Interp.Compiled opt));
      ("baseline", Ninja_vm.Interp.strategy_tag Ninja_vm.Interp.Tree);
    ]
  in
  {
    domains;
    wall_s;
    sched =
      (match !sched with
      | Some s -> s
      | None ->
          {
            Pool.domains;
            tasks_run = List.length results;
            steals = 0;
            cancelled = 0;
            busy_s = [| wall_s |];
            run_per_domain = [| List.length results |];
            max_depth = [| 0 |];
          });
    configurations;
    jobs = results;
    benchmarks = per_bench;
    geomean_ops_per_s;
    opt_geomean_ops_per_s;
    compiled_geomean_ops_per_s;
    baseline_geomean_ops_per_s;
    speedup = Stats.ratio geomean_ops_per_s baseline_geomean_ops_per_s;
    opt_speedup = Stats.ratio opt_geomean_ops_per_s baseline_geomean_ops_per_s;
    compiled_speedup =
      Stats.ratio compiled_geomean_ops_per_s baseline_geomean_ops_per_s;
  }

(* Cold-vs-warm persistent-store benchmark: run the experiment grid twice
   against [store] — once with an empty memo (cold: simulates and writes
   entries) and once more with the memo dropped again (warm: every job
   must come back from disk). The in-process memo and any previously
   installed store are saved and restored, so this is safe to run from
   the harness without perturbing later work. *)
let run_grid ?domains ?experiments ~store () =
  let saved_store = Experiments.store () in
  Fun.protect
    ~finally:(fun () ->
      Experiments.set_store saved_store;
      Experiments.reset_cache ())
    (fun () ->
      Experiments.set_store (Some store);
      Experiments.reset_cache ();
      let cold = Jobs.prefill ?domains ?experiments () in
      Experiments.reset_cache ();
      let warm = Jobs.prefill ?domains ?experiments () in
      {
        g_domains = cold.Jobs.domains;
        g_jobs = cold.Jobs.total_jobs;
        g_cold_wall_s = cold.Jobs.wall_s;
        g_cold_executed = cold.Jobs.executed;
        g_cold_store_hits = cold.Jobs.store_hits;
        g_cold_steals = cold.Jobs.sched.Pool.steals;
        g_warm_wall_s = warm.Jobs.wall_s;
        g_warm_executed = warm.Jobs.executed;
        g_warm_store_hits = warm.Jobs.store_hits;
        g_warm_speedup = Stats.ratio cold.Jobs.wall_s warm.Jobs.wall_s;
      })

let num_i i = Json.Num (float_of_int i)

let sched_to_json (s : Pool.stats) =
  Json.Obj
    [
      ("domains", num_i s.Pool.domains);
      ("tasks_run", num_i s.Pool.tasks_run);
      ("steals", num_i s.Pool.steals);
      ("cancelled", num_i s.Pool.cancelled);
      ( "busy_s",
        Json.List (Array.to_list (Array.map (fun x -> Json.Num x) s.Pool.busy_s))
      );
      ( "run_per_domain",
        Json.List (Array.to_list (Array.map num_i s.Pool.run_per_domain)) );
      ("max_depth", Json.List (Array.to_list (Array.map num_i s.Pool.max_depth)));
    ]

let grid_to_json g =
  Json.Obj
    [
      ("domains", num_i g.g_domains);
      ("jobs", num_i g.g_jobs);
      ("cold_wall_s", Json.Num g.g_cold_wall_s);
      ("cold_executed", num_i g.g_cold_executed);
      ("cold_store_hits", num_i g.g_cold_store_hits);
      ("cold_steals", num_i g.g_cold_steals);
      ("warm_wall_s", Json.Num g.g_warm_wall_s);
      ("warm_executed", num_i g.g_warm_executed);
      ("warm_store_hits", num_i g.g_warm_store_hits);
      ("warm_speedup", Json.Num g.g_warm_speedup);
    ]

let to_json ?grid r =
  Json.Obj
    ([
      ("schema", Json.Str schema_version);
      ("jobs", Json.Num (float_of_int (List.length r.jobs)));
      ("domains", Json.Num (float_of_int r.domains));
      ("sched", sched_to_json r.sched);
      ("wall_s", Json.Num r.wall_s);
      ( "configurations",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) r.configurations) );
      ("geomean_ops_per_s", Json.Num r.geomean_ops_per_s);
      ("opt_geomean_ops_per_s", Json.Num r.opt_geomean_ops_per_s);
      ("compiled_geomean_ops_per_s", Json.Num r.compiled_geomean_ops_per_s);
      ("baseline_geomean_ops_per_s", Json.Num r.baseline_geomean_ops_per_s);
      ("speedup", Json.Num r.speedup);
      ("opt_speedup", Json.Num r.opt_speedup);
      ("compiled_speedup", Json.Num r.compiled_speedup);
      (* per-job timings so external checkers (tools/bench_check.ml) can
         compare like-for-like jobs across reports with different grids *)
      ( "job_times",
        Json.List
          (List.map
             (fun j ->
               Json.Obj
                 [
                   ("bench", Json.Str j.j_bench);
                   ("machine", Json.Str j.j_machine);
                   ("step", Json.Str j.j_step);
                   ("ops", Json.Num (float_of_int j.j_ops));
                   ("fast_s", Json.Num j.j_fast_s);
                   ("opt_s", Json.Num j.j_opt_s);
                   ("compiled_s", Json.Num j.j_compiled_s);
                   ("baseline_s", Json.Num j.j_baseline_s);
                 ])
             r.jobs) );
      ( "benchmarks",
        Json.List
          (List.map
             (fun b ->
               Json.Obj
                 [
                   ("name", Json.Str b.b_name);
                   ("ops", Json.Num (float_of_int b.b_ops));
                   ("ops_per_s", Json.Num b.b_ops_per_s);
                   ("opt_ops_per_s", Json.Num b.b_opt_ops_per_s);
                   ("compiled_ops_per_s", Json.Num b.b_compiled_ops_per_s);
                   ("baseline_ops_per_s", Json.Num b.b_baseline_ops_per_s);
                   ( "wall_s",
                     Json.Num
                       (b.b_fast_s +. b.b_opt_s +. b.b_compiled_s
                      +. b.b_baseline_s) );
                 ])
             r.benchmarks) );
    ]
    @ match grid with None -> [] | Some g -> [ ("grid", grid_to_json g) ])

let write_json ?grid ~path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string (to_json ?grid r)))

let pp_result ppf r =
  Fmt.pf ppf "self-benchmark: %d jobs on %d domain%s in %.1fs@."
    (List.length r.jobs) r.domains
    (if r.domains = 1 then "" else "s")
    r.wall_s;
  List.iter
    (fun b ->
      Fmt.pf ppf
        "  %-16s %10.0f ops/s  opt %10.0f  compiled %10.0f  (baseline %10.0f, \
         %.2fx/%.2fx/%.2fx)@."
        b.b_name b.b_ops_per_s b.b_opt_ops_per_s b.b_compiled_ops_per_s
        b.b_baseline_ops_per_s
        (b.b_ops_per_s /. b.b_baseline_ops_per_s)
        (b.b_opt_ops_per_s /. b.b_baseline_ops_per_s)
        (b.b_compiled_ops_per_s /. b.b_baseline_ops_per_s))
    r.benchmarks;
  Fmt.pf ppf
    "  geomean: %.0f ops/s (optimized %.0f, compiled %.0f) over %.0f baseline \
     — %.2fx, optimized %.2fx, compiled %.2fx@."
    r.geomean_ops_per_s r.opt_geomean_ops_per_s r.compiled_geomean_ops_per_s
    r.baseline_geomean_ops_per_s r.speedup r.opt_speedup r.compiled_speedup;
  Fmt.pf ppf "  %a" Pool.pp_stats r.sched

let pp_grid ppf g =
  Fmt.pf ppf
    "store grid: %d jobs on %d domain%s: cold %.1fs (%d simulated, %d steals) \
     -> warm %.2fs (%d simulated, %d store hits) — %.1fx"
    g.g_jobs g.g_domains
    (if g.g_domains = 1 then "" else "s")
    g.g_cold_wall_s g.g_cold_executed g.g_cold_steals g.g_warm_wall_s
    g.g_warm_executed g.g_warm_store_hits g.g_warm_speedup
