(** Self-documenting reporting pipeline: keep the generated sections of
    EXPERIMENTS.md in sync with what the code actually measures.

    The document marks machine-owned regions with

    {v
    <!-- BEGIN GENERATED: <id> -->
    ...
    <!-- END GENERATED: <id> -->
    v}

    and this module renders each registered section from the live
    experiment code (deterministically, so "in sync" is byte equality).
    [ninja_cli report --check] gates CI on it; [--write] regenerates. *)

type mode =
  | Check  (** report drifted sections; never touch the file *)
  | Write  (** splice fresh content between the markers *)

val sections : string list
(** Registered generated-section ids (currently ["t3"], ["t4"], ["t6"],
    ["t7"]). Every one must have a marker pair in the document. *)

val sync : mode -> path:string -> (string list, string) result
(** [sync mode ~path] renders every registered section and compares it to
    what [path] currently holds between the markers. [Ok ids] lists the
    drifted (Check) or rewritten (Write) sections — [Ok []] means the
    document was already current. [Error] reports structural problems:
    unreadable file or a missing/unterminated marker pair. *)
