(* Tests for the ISA, interpreter, builder, and memory model. *)

open Ninja_vm

(* Build a tiny single-phase program with the Builder and run it. *)
let run_prog ?(n_threads = 1) ?(width = 4) ?sink ?check_races build args =
  let b = Builder.create ~name:"test" in
  let ctx = build b in
  let prog = Builder.finish b in
  let mem = Memory.create prog (args ctx) in
  let r = Interp.run ~n_threads ~width ?sink ?check_races prog mem in
  (mem, prog, r)

let farr mem prog name =
  ignore prog;
  match Memory.find mem name with
  | _, Memory.Fbuf a -> a
  | _ -> Alcotest.fail (name ^ " not a float buffer")

let iarr mem prog name =
  ignore prog;
  match Memory.find mem name with
  | _, Memory.Ibuf a -> a
  | _ -> Alcotest.fail (name ^ " not an int buffer")

(* ---- basic vector arithmetic ---- *)

let test_vector_add () =
  let mem, prog, _ =
    run_prog
      (fun b ->
        let x = Builder.buffer_f b "x" in
        let y = Builder.buffer_f b "y" in
        let z = Builder.buffer_f b "z" in
        Builder.seq_phase b (fun () ->
            let zero = Builder.iconst b 0 in
            let vx = Builder.vf b in
            Builder.emit b (Vloadf { dst = vx; buf = x; idx = zero; mask = None });
            let vy = Builder.vf b in
            Builder.emit b (Vloadf { dst = vy; buf = y; idx = zero; mask = None });
            let vz = Builder.vfbin b Fadd vx vy in
            Builder.emit b (Vstoref { buf = z; idx = zero; src = vz; mask = None }));
        ())
      (fun () ->
        [ ("x", Memory.Fbuf [| 1.; 2.; 3.; 4. |]);
          ("y", Memory.Fbuf [| 10.; 20.; 30.; 40. |]);
          ("z", Memory.Fbuf (Array.make 4 0.)) ])
  in
  Alcotest.(check (array (float 1e-9))) "sum" [| 11.; 22.; 33.; 44. |] (farr mem prog "z")

let test_gather_scatter () =
  let mem, prog, _ =
    run_prog
      (fun b ->
        let src = Builder.buffer_f b "src" in
        let ix = Builder.buffer_i b "ix" in
        let dst = Builder.buffer_f b "dst" in
        Builder.seq_phase b (fun () ->
            let zero = Builder.iconst b 0 in
            let vix = Builder.vi b in
            Builder.emit b (Vloadi { dst = vix; buf = ix; idx = zero; mask = None });
            let v = Builder.vf b in
            Builder.emit b (Vgatherf { dst = v; buf = src; idx = vix; mask = None; chain = false });
            Builder.emit b (Vscatterf { buf = dst; idx = vix; src = v; mask = None }));
        ())
      (fun () ->
        [ ("src", Memory.Fbuf [| 0.5; 1.5; 2.5; 3.5; 4.5; 5.5 |]);
          ("ix", Memory.Ibuf [| 5; 0; 3; 1 |]);
          ("dst", Memory.Fbuf (Array.make 6 0.)) ])
  in
  let d = farr mem prog "dst" in
  Alcotest.(check (float 1e-9)) "lane to 5" 5.5 d.(5);
  Alcotest.(check (float 1e-9)) "lane to 0" 0.5 d.(0);
  Alcotest.(check (float 1e-9)) "lane to 3" 3.5 d.(3);
  Alcotest.(check (float 1e-9)) "lane to 1" 1.5 d.(1)

let test_masked_store () =
  let mem, prog, _ =
    run_prog
      (fun b ->
        let out = Builder.buffer_f b "out" in
        Builder.seq_phase b (fun () ->
            let zero = Builder.iconst b 0 in
            let two = Builder.iconst b 2 in
            let m = Builder.vm b in
            Builder.emit b (Mfirst (m, two));
            let v = Builder.vbroadcastf b (Builder.fconst b 9.) in
            Builder.emit b (Vstoref { buf = out; idx = zero; src = v; mask = Some m }));
        ())
      (fun () -> [ ("out", Memory.Fbuf (Array.make 4 1.)) ])
  in
  Alcotest.(check (array (float 1e-9))) "first two lanes written"
    [| 9.; 9.; 1.; 1. |] (farr mem prog "out")

let test_permute_reverse () =
  let mem, prog, _ =
    run_prog
      (fun b ->
        let x = Builder.buffer_f b "x" in
        Builder.seq_phase b (fun () ->
            let zero = Builder.iconst b 0 in
            let v = Builder.vf b in
            Builder.emit b (Vloadf { dst = v; buf = x; idx = zero; mask = None });
            let r = Builder.vf b in
            Builder.emit b (Vpermutef (r, v, [| 3; 2; 1; 0 |]));
            Builder.emit b (Vstoref { buf = x; idx = zero; src = r; mask = None }));
        ())
      (fun () -> [ ("x", Memory.Fbuf [| 1.; 2.; 3.; 4. |]) ])
  in
  Alcotest.(check (array (float 1e-9))) "reversed" [| 4.; 3.; 2.; 1. |] (farr mem prog "x")

let test_permute_aliasing () =
  (* dst = src must still read all of src before writing *)
  let mem, prog, _ =
    run_prog
      (fun b ->
        let x = Builder.buffer_f b "x" in
        Builder.seq_phase b (fun () ->
            let zero = Builder.iconst b 0 in
            let v = Builder.vf b in
            Builder.emit b (Vloadf { dst = v; buf = x; idx = zero; mask = None });
            Builder.emit b (Vpermutef (v, v, [| 1; 0; 3; 2 |]));
            Builder.emit b (Vstoref { buf = x; idx = zero; src = v; mask = None }));
        ())
      (fun () -> [ ("x", Memory.Fbuf [| 1.; 2.; 3.; 4. |]) ])
  in
  Alcotest.(check (array (float 1e-9))) "pairwise swap" [| 2.; 1.; 4.; 3. |] (farr mem prog "x")

let test_reduce () =
  let mem, prog, _ =
    run_prog
      (fun b ->
        let x = Builder.buffer_f b "x" in
        let out = Builder.buffer_f b "out" in
        Builder.seq_phase b (fun () ->
            let zero = Builder.iconst b 0 in
            let v = Builder.vf b in
            Builder.emit b (Vloadf { dst = v; buf = x; idx = zero; mask = None });
            let s = Builder.sf b in
            Builder.emit b (Vreducef (Rsum, s, v));
            Builder.emit b (Storef { buf = out; idx = zero; src = s });
            let mn = Builder.sf b in
            Builder.emit b (Vreducef (Rmin, mn, v));
            let one = Builder.iconst b 1 in
            Builder.emit b (Storef { buf = out; idx = one; src = mn });
            let mx = Builder.sf b in
            Builder.emit b (Vreducef (Rmax, mx, v));
            let two = Builder.iconst b 2 in
            Builder.emit b (Storef { buf = out; idx = two; src = mx }));
        ())
      (fun () ->
        [ ("x", Memory.Fbuf [| 4.; -1.; 7.; 2. |]); ("out", Memory.Fbuf (Array.make 3 0.)) ])
  in
  let o = farr mem prog "out" in
  Alcotest.(check (float 1e-9)) "sum" 12. o.(0);
  Alcotest.(check (float 1e-9)) "min" (-1.) o.(1);
  Alcotest.(check (float 1e-9)) "max" 7. o.(2)

let test_mask_ops () =
  let mem, prog, _ =
    run_prog
      (fun b ->
        let out = Builder.buffer_i b "out" in
        Builder.seq_phase b (fun () ->
            let m = Builder.vm b in
            Builder.emit b (Mpattern (m, [| true; false; true; false |]));
            let c = Builder.si b in
            Builder.emit b (Mcount (c, m));
            let zero = Builder.iconst b 0 in
            Builder.emit b (Storei { buf = out; idx = zero; src = c });
            let any = Builder.si b in
            Builder.emit b (Many (any, m));
            let one = Builder.iconst b 1 in
            Builder.emit b (Storei { buf = out; idx = one; src = any });
            let all = Builder.si b in
            Builder.emit b (Mall (all, m));
            let two = Builder.iconst b 2 in
            Builder.emit b (Storei { buf = out; idx = two; src = all }));
        ())
      (fun () -> [ ("out", Memory.Ibuf (Array.make 3 (-1))) ])
  in
  let o = iarr mem prog "out" in
  Alcotest.(check int) "count" 2 o.(0);
  Alcotest.(check int) "any" 1 o.(1);
  Alcotest.(check int) "all" 0 o.(2)

(* ---- control flow ---- *)

let test_for_loop_sum () =
  let mem, prog, _ =
    run_prog
      (fun b ->
        let out = Builder.buffer_i b "out" in
        Builder.seq_phase b (fun () ->
            let acc = Builder.si b in
            Builder.emit b (Iconst (acc, 0));
            let lo = Builder.iconst b 0 in
            let hi = Builder.iconst b 10 in
            let one = Builder.iconst b 1 in
            Builder.for_ b ~lo ~hi ~step:one (fun i ->
                Builder.emit b (Ibin (Iadd, acc, acc, i)));
            let zero = Builder.iconst b 0 in
            Builder.emit b (Storei { buf = out; idx = zero; src = acc }));
        ())
      (fun () -> [ ("out", Memory.Ibuf [| 0 |]) ])
  in
  Alcotest.(check int) "sum 0..9" 45 (iarr mem prog "out").(0)

let test_while_countdown () =
  let mem, prog, _ =
    run_prog
      (fun b ->
        let out = Builder.buffer_i b "out" in
        Builder.seq_phase b (fun () ->
            let n = Builder.si b in
            Builder.emit b (Iconst (n, 10));
            let steps = Builder.si b in
            Builder.emit b (Iconst (steps, 0));
            Builder.while_ b
              ~cond:(fun () ->
                let zero = Builder.iconst b 0 in
                let c = Builder.si b in
                Builder.emit b (Icmp (Cgt, c, n, zero));
                c)
              (fun () ->
                let one = Builder.iconst b 1 in
                Builder.emit b (Ibin (Isub, n, n, one));
                Builder.emit b (Ibin (Iadd, steps, steps, one)));
            let zero = Builder.iconst b 0 in
            Builder.emit b (Storei { buf = out; idx = zero; src = steps }));
        ())
      (fun () -> [ ("out", Memory.Ibuf [| 0 |]) ])
  in
  Alcotest.(check int) "10 iterations" 10 (iarr mem prog "out").(0)

(* ---- SPMD phases ---- *)

let test_par_phase_partition () =
  let mem, prog, _ =
    run_prog ~n_threads:4
      (fun b ->
        let out = Builder.buffer_i b "out" in
        Builder.par_phase b (fun () ->
            (* each thread writes its id at index tid *)
            Builder.emit b
              (Storei { buf = out; idx = Isa.thread_id_reg; src = Isa.thread_id_reg }));
        ())
      (fun () -> [ ("out", Memory.Ibuf (Array.make 4 (-1))) ])
  in
  Alcotest.(check (array int)) "thread ids" [| 0; 1; 2; 3 |] (iarr mem prog "out")

let test_race_detection () =
  Alcotest.check_raises "race reported" (Failure "race") (fun () ->
      try
        ignore
          (run_prog ~n_threads:2 ~check_races:true
             (fun b ->
               let out = Builder.buffer_i b "out" in
               Builder.par_phase b (fun () ->
                   (* every thread writes index 0: write-write race *)
                   let zero = Builder.iconst b 0 in
                   Builder.emit b (Storei { buf = out; idx = zero; src = Isa.thread_id_reg }));
               ())
             (fun () -> [ ("out", Memory.Ibuf [| 0 |]) ]))
      with Interp.Race _ -> raise (Failure "race"))

let test_no_race_on_partition () =
  let _ =
    run_prog ~n_threads:2 ~check_races:true
      (fun b ->
        let out = Builder.buffer_i b "out" in
        Builder.par_phase b (fun () ->
            Builder.emit b
              (Storei { buf = out; idx = Isa.thread_id_reg; src = Isa.thread_id_reg }));
        ())
      (fun () -> [ ("out", Memory.Ibuf (Array.make 2 0)) ])
  in
  ()

(* ---- traps and validation ---- *)

let test_out_of_bounds_traps () =
  Alcotest.check_raises "oob" (Failure "trap") (fun () ->
      try
        ignore
          (run_prog
             (fun b ->
               let x = Builder.buffer_f b "x" in
               Builder.seq_phase b (fun () ->
                   let idx = Builder.iconst b 99 in
                   let v = Builder.sf b in
                   Builder.emit b (Loadf { dst = v; buf = x; idx; chain = false }));
               ())
             (fun () -> [ ("x", Memory.Fbuf (Array.make 4 0.)) ]))
      with Memory.Trap _ -> raise (Failure "trap"))

let test_div_by_zero_traps () =
  Alcotest.check_raises "div0" (Failure "trap") (fun () ->
      try
        ignore
          (run_prog
             (fun b ->
               Builder.seq_phase b (fun () ->
                   let z = Builder.iconst b 0 in
                   let x = Builder.iconst b 5 in
                   ignore (Builder.ibin b Idiv x z));
               ())
             (fun () -> []))
      with Memory.Trap _ -> raise (Failure "trap"))

let test_fuel_exhaustion () =
  let b = Builder.create ~name:"spin" in
  Builder.seq_phase b (fun () ->
      let one = Builder.iconst b 1 in
      Builder.while_ b
        ~cond:(fun () -> one)
        (fun () -> ignore (Builder.ibin b Iadd one one)));
  let prog = Builder.finish b in
  let mem = Memory.create prog [] in
  Alcotest.check_raises "fuel" (Failure "trap") (fun () ->
      try ignore (Interp.run ~fuel:1000 prog mem)
      with Memory.Trap _ -> raise (Failure "trap"))

let test_validate_bad_register () =
  let prog =
    {
      Isa.prog_name = "bad";
      buffers = [||];
      phases = [ Seq [ I (Fmov (Sf 3, Sf 0)) ] ];
      regs = { si = 3; sf = 1; vf = 0; vi = 0; vm = 0 };
    }
  in
  Alcotest.check_raises "invalid" (Failure "invalid") (fun () ->
      try Isa.validate prog with Isa.Invalid_program _ -> raise (Failure "invalid"))

let test_validate_buffer_type () =
  let prog =
    {
      Isa.prog_name = "bad";
      buffers = [| { Isa.buf_name = "x"; elt = I32 } |];
      phases =
        [ Seq [ I (Loadf { dst = Sf 0; buf = Buf 0; idx = Si 0; chain = false }) ] ];
      regs = { si = 3; sf = 1; vf = 0; vi = 0; vm = 0 };
    }
  in
  Alcotest.check_raises "type" (Failure "invalid") (fun () ->
      try Isa.validate prog with Isa.Invalid_program _ -> raise (Failure "invalid"))

let test_memory_missing_binding () =
  let b = Builder.create ~name:"m" in
  let _ = Builder.buffer_f b "x" in
  let prog = Builder.finish b in
  Alcotest.check_raises "missing" (Failure "bad") (fun () ->
      try ignore (Memory.create prog []) with Memory.Bad_binding _ -> raise (Failure "bad"))

let test_counts_and_events () =
  let events = ref [] in
  let _, _, r =
    run_prog
      ~sink:(fun e -> events := e :: !events)
      (fun b ->
        let x = Builder.buffer_f b "x" in
        Builder.seq_phase b (fun () ->
            let zero = Builder.iconst b 0 in
            let v = Builder.vf b in
            Builder.emit b (Vloadf { dst = v; buf = x; idx = zero; mask = None });
            Builder.emit b (Vstoref_nt { buf = x; idx = zero; src = v }));
        ())
      (fun () -> [ ("x", Memory.Fbuf (Array.make 4 1.)) ])
  in
  Alcotest.(check int) "one vload" 1 (Counts.total r.counts Vload);
  Alcotest.(check int) "one vstore" 1 (Counts.total r.counts Vstore);
  let nt_events = List.filter (fun (e : Event.t) -> e.nt) !events in
  Alcotest.(check int) "one nt event" 1 (List.length nt_events)

let test_width_register () =
  let mem, prog, _ =
    run_prog ~width:8
      (fun b ->
        let out = Builder.buffer_i b "out" in
        Builder.seq_phase b (fun () ->
            let zero = Builder.iconst b 0 in
            Builder.emit b (Storei { buf = out; idx = zero; src = Isa.vector_width_reg }));
        ())
      (fun () -> [ ("out", Memory.Ibuf [| 0 |]) ])
  in
  Alcotest.(check int) "width visible" 8 (iarr mem prog "out").(0)

(* qcheck: elementwise vector ops match scalar maps *)
let prop_vfbin_matches =
  QCheck.Test.make ~name:"Vfbin Fadd = map2 (+.)" ~count:50
    QCheck.(pair (array_of_size (QCheck.Gen.return 4) (float_range (-100.) 100.))
              (array_of_size (QCheck.Gen.return 4) (float_range (-100.) 100.)))
    (fun (xs, ys) ->
      let mem, prog, _ =
        run_prog
          (fun b ->
            let x = Builder.buffer_f b "x" in
            let y = Builder.buffer_f b "y" in
            Builder.seq_phase b (fun () ->
                let zero = Builder.iconst b 0 in
                let vx = Builder.vf b in
                Builder.emit b (Vloadf { dst = vx; buf = x; idx = zero; mask = None });
                let vy = Builder.vf b in
                Builder.emit b (Vloadf { dst = vy; buf = y; idx = zero; mask = None });
                let vz = Builder.vfbin b Fadd vx vy in
                Builder.emit b (Vstoref { buf = x; idx = zero; src = vz; mask = None }));
            ())
          (fun () -> [ ("x", Memory.Fbuf (Array.copy xs)); ("y", Memory.Fbuf (Array.copy ys)) ])
      in
      let got = farr mem prog "x" in
      Array.for_all2 (fun g e -> Float.equal g e) got (Array.map2 ( +. ) xs ys))

let suite =
  ( "vm",
    [ Alcotest.test_case "vector add" `Quick test_vector_add;
      Alcotest.test_case "gather/scatter" `Quick test_gather_scatter;
      Alcotest.test_case "masked store" `Quick test_masked_store;
      Alcotest.test_case "permute reverse" `Quick test_permute_reverse;
      Alcotest.test_case "permute aliasing" `Quick test_permute_aliasing;
      Alcotest.test_case "reductions" `Quick test_reduce;
      Alcotest.test_case "mask ops" `Quick test_mask_ops;
      Alcotest.test_case "for loop" `Quick test_for_loop_sum;
      Alcotest.test_case "while loop" `Quick test_while_countdown;
      Alcotest.test_case "par phase partition" `Quick test_par_phase_partition;
      Alcotest.test_case "race detection" `Quick test_race_detection;
      Alcotest.test_case "no false race" `Quick test_no_race_on_partition;
      Alcotest.test_case "oob traps" `Quick test_out_of_bounds_traps;
      Alcotest.test_case "div by zero traps" `Quick test_div_by_zero_traps;
      Alcotest.test_case "fuel exhaustion" `Quick test_fuel_exhaustion;
      Alcotest.test_case "validate registers" `Quick test_validate_bad_register;
      Alcotest.test_case "validate buffer types" `Quick test_validate_buffer_type;
      Alcotest.test_case "missing binding" `Quick test_memory_missing_binding;
      Alcotest.test_case "counts and events" `Quick test_counts_and_events;
      Alcotest.test_case "width register" `Quick test_width_register;
      QCheck_alcotest.to_alcotest prop_vfbin_matches ] )
