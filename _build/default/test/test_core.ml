(* Experiment-layer tests (kept light: the heavy simulations are the bench
   harness's job; here we check wiring, lookup, and one cheap experiment). *)

module E = Ninja_core.Experiments

let test_ids_unique () =
  let ids = List.map (fun (e : E.experiment) -> e.id) E.all in
  Alcotest.(check int) "no duplicates" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_find () =
  Alcotest.(check string) "find f1" "f1" (E.find "F1").id;
  Alcotest.check_raises "unknown" Not_found (fun () -> ignore (E.find "zz"))

let test_expected_experiments () =
  List.iter
    (fun id -> ignore (E.find id))
    [ "t1"; "f1"; "f2"; "f3"; "t2"; "f4"; "f5"; "f6"; "f7"; "f8"; "a1" ]

let test_t2_runs () =
  (* t2 compiles (no simulation): cheap end-to-end check of experiment code *)
  let tables = (E.find "t2").run () in
  Alcotest.(check int) "one table" 1 (List.length tables);
  let csv = Ninja_report.Table.to_csv (List.hd tables) in
  Alcotest.(check bool) "mentions NBody" true (Astring_contains.contains csv "NBody");
  Alcotest.(check bool) "mentions MergeSort" true
    (Astring_contains.contains csv "MergeSort")

let test_gap () =
  (* synthetic reports via a trivial simulated program *)
  let b = Ninja_vm.Builder.create ~name:"g" in
  Ninja_vm.Builder.seq_phase b (fun () -> ignore (Ninja_vm.Builder.iconst b 1));
  let prog = Ninja_vm.Builder.finish b in
  let mem = Ninja_vm.Memory.create prog [] in
  let r = Ninja_arch.Timing.simulate ~machine:Ninja_arch.Machine.westmere prog mem in
  Alcotest.(check (float 1e-9)) "gap with self" 1.0 (E.gap r r)

let suite =
  ( "core",
    [ Alcotest.test_case "ids unique" `Quick test_ids_unique;
      Alcotest.test_case "find" `Quick test_find;
      Alcotest.test_case "all experiments present" `Quick test_expected_experiments;
      Alcotest.test_case "t2 runs" `Quick test_t2_runs;
      Alcotest.test_case "gap" `Quick test_gap ] )
