test/main.mli:
