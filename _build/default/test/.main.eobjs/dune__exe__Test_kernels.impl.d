test/test_kernels.ml: Alcotest Fmt List Ninja_arch Ninja_kernels Ninja_vm String
