test/test_lang2.ml: Alcotest Array Codegen Float Fmt List Ninja_kernels Ninja_lang Ninja_vm Ninja_workloads Parser
