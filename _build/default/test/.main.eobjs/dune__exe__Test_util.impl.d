test/test_util.ml: Alcotest Array Gen List Ninja_util QCheck QCheck_alcotest
