test/test_core.ml: Alcotest Astring_contains List Ninja_arch Ninja_core Ninja_report Ninja_vm
