test/test_lang.ml: Alcotest Analysis Array Ast Astring_contains Check Codegen Fmt Lexer List Ninja_arch Ninja_kernels Ninja_lang Ninja_vm Ninja_workloads Parser
