test/test_arch.ml: Alcotest Array Builder Gen Isa List Memory Ninja_arch Ninja_vm QCheck QCheck_alcotest
