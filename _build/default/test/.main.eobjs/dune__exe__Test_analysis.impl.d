test/test_analysis.ml: Alcotest Ninja_analysis Ninja_arch
