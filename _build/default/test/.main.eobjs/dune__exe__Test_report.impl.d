test/test_report.ml: Alcotest Astring_contains Fmt Ninja_report
