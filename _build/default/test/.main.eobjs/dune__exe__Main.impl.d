test/main.ml: Alcotest Test_analysis Test_arch Test_core Test_kernels Test_lang Test_lang2 Test_report Test_util Test_vm
