test/test_vm.ml: Alcotest Array Builder Counts Event Float Interp Isa List Memory Ninja_vm QCheck QCheck_alcotest
