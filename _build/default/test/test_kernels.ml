(* Integration tests: every benchmark's every ladder variant must reproduce
   the OCaml reference results, on both a CPU-class and a MIC-class machine
   (different vector widths, thread counts, FMA availability), and compiled
   parallel variants must be free of data races. *)

module Driver = Ninja_kernels.Driver
module Registry = Ninja_kernels.Registry
module Machine = Ninja_arch.Machine

let test_scale = 1

let validate_case (machine : Machine.t) (bench : Driver.benchmark) =
  let name = Fmt.str "%s on %s" bench.b_name machine.name in
  Alcotest.test_case name `Quick (fun () ->
      let steps = bench.steps ~scale:test_scale in
      Alcotest.(check int) "five ladder steps" 5 (List.length steps);
      List.iter
        (fun (step : Driver.step) ->
          match Driver.validate_step ~machine step with
          | Ok () -> ()
          | Error e -> Alcotest.fail (Fmt.str "%s / %s: %s" bench.b_name step.step_name e))
        steps)

let race_case (bench : Driver.benchmark) =
  Alcotest.test_case (bench.b_name ^ " race-free") `Quick (fun () ->
      let machine = Machine.westmere in
      let steps = bench.steps ~scale:test_scale in
      List.iter
        (fun (step : Driver.step) ->
          if step.parallel then begin
            let prog = step.make ~machine in
            let mem = Driver.memory_for prog (step.bindings ()) in
            try
              for run = 0 to step.runs machine - 1 do
                step.prepare machine run mem;
                ignore
                  (Ninja_vm.Interp.run ~n_threads:machine.cores
                     ~width:machine.simd_width ~check_races:true prog mem)
              done
            with Ninja_vm.Interp.Race races ->
              Alcotest.fail
                (Fmt.str "%s / %s: %s" bench.b_name step.step_name
                   (String.concat "; " races))
          end)
        steps)

let determinism_case (bench : Driver.benchmark) =
  Alcotest.test_case (bench.b_name ^ " deterministic timing") `Quick (fun () ->
      let machine = Machine.westmere in
      let step = List.nth (bench.steps ~scale:test_scale) 4 (* ninja *) in
      let r1 = Driver.run_step ~machine step in
      let r2 = Driver.run_step ~machine step in
      Alcotest.(check (float 1e-9)) "same cycles" r1.cycles r2.cycles)

let ladder_monotone_case (bench : Driver.benchmark) =
  (* the ninja variant must never be slower than naive serial *)
  Alcotest.test_case (bench.b_name ^ " ninja beats naive") `Quick (fun () ->
      let machine = Machine.westmere in
      let steps = bench.steps ~scale:test_scale in
      let time name =
        (Driver.run_step ~machine
           (List.find (fun (s : Driver.step) -> s.step_name = name) steps))
          .cycles
      in
      Alcotest.(check bool) "ninja faster" true (time "ninja" < time "naive serial"))

let suite =
  ( "kernels",
    List.concat
      [ List.concat_map
          (fun b -> [ validate_case Machine.westmere b; validate_case Machine.knights_ferry b ])
          Registry.all;
        List.map race_case Registry.all;
        List.map determinism_case Registry.all;
        List.map ladder_monotone_case Registry.all ] )
