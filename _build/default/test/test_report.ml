(* Table rendering tests. *)

module Table = Ninja_report.Table

let test_render_alignment () =
  let t = Table.create ~title:"T" ~columns:[ "name"; "value" ] in
  Table.add_row t [ "a"; "1" ];
  Table.add_row t [ "long-name"; "123" ];
  let s = Fmt.str "%a" Table.render t in
  Alcotest.(check bool) "contains rows" true (Astring_contains.contains s "long-name");
  Alcotest.(check bool) "has separator" true (Astring_contains.contains s "---")

let test_row_arity_checked () =
  let t = Table.create ~title:"T" ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "arity" (Failure "arity") (fun () ->
      try Table.add_row t [ "only one" ] with Invalid_argument _ -> raise (Failure "arity"))

let test_csv () =
  let t = Table.create ~title:"T" ~columns:[ "name"; "value" ] in
  Table.add_row t [ "a,b"; "1" ];
  let csv = Table.to_csv t in
  Alcotest.(check bool) "quoted comma" true (Astring_contains.contains csv "\"a,b\"");
  Alcotest.(check bool) "header" true (Astring_contains.contains csv "name,value")

let test_cells () =
  Alcotest.(check string) "float" "3.14" (Table.cell_f ~decimals:2 3.14159);
  Alcotest.(check string) "gap" "24.00x" (Table.cell_x 24.)

let suite =
  ( "report",
    [ Alcotest.test_case "render" `Quick test_render_alignment;
      Alcotest.test_case "row arity" `Quick test_row_arity_checked;
      Alcotest.test_case "csv" `Quick test_csv;
      Alcotest.test_case "cells" `Quick test_cells ] )
