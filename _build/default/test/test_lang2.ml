(* Second compiler test battery: gathers, strided accesses, integer
   reductions, nested loops, and the remainder-handling corner cases. *)

open Ninja_lang
module Driver = Ninja_kernels.Driver

let parse = Parser.parse_kernel

let run_kernel ?(n_threads = 1) ?(width = 4) flags src args =
  let { Codegen.program; _ } = Codegen.compile ~flags (parse src) in
  let mem = Driver.memory_for program args in
  ignore (Ninja_vm.Interp.run ~n_threads ~width program mem);
  mem

(* every flag/width/thread combination a kernel must survive *)
let combos =
  [ (Codegen.o2, 1, 4); (Codegen.o2_vec, 1, 4); (Codegen.o2_vec, 1, 16);
    (Codegen.o2_vec_par, 4, 4); (Codegen.o2_vec_par, 8, 16) ]

let check_all_combos src args expected_of =
  List.iter
    (fun (flags, n_threads, width) ->
      let mem = run_kernel ~n_threads ~width flags (src ()) (args ()) in
      expected_of mem
        (Fmt.str "%s/%dt/%dw" (Codegen.flags_name flags) n_threads width))
    combos

(* gather: permutation through an index array *)
let test_gather_kernel () =
  let n = 37 in
  let src () =
    {|
kernel gatherk(src : float[], ix : int[], dst : float[], n : int) {
  var i : int;
  pragma parallel
  pragma simd
  for (i = 0; i < n; i = i + 1) {
    dst[i] = src[ix[i]] * 2.0;
  }
}
|}
  in
  let base = Array.init n (fun i -> float_of_int i +. 0.5) in
  let perm = Ninja_workloads.Gen.permutation ~seed:9 n in
  let args () =
    [ ("src", Driver.Farr (Array.copy base));
      ("ix", Driver.Iarr (Array.copy perm));
      ("dst", Driver.Farr (Array.make n 0.));
      ("n", Driver.Iscalar n) ]
  in
  let expected = Array.init n (fun i -> base.(perm.(i)) *. 2.) in
  check_all_combos src args (fun mem label ->
      match Driver.check_floats ~expected (Driver.output_f mem "dst") with
      | Ok () -> ()
      | Error e -> Alcotest.fail (label ^ ": " ^ e))

(* strided store: AoS interleave written from SoA inputs *)
let test_strided_store_kernel () =
  let n = 23 in
  let src () =
    {|
kernel interleave(a : float[], b : float[], out : float[], n : int) {
  var i : int;
  pragma simd
  for (i = 0; i < n; i = i + 1) {
    out[2 * i] = a[i];
    out[2 * i + 1] = b[i];
  }
}
|}
  in
  let a = Ninja_workloads.Gen.floats ~seed:11 n in
  let b = Ninja_workloads.Gen.floats ~seed:12 n in
  let args () =
    [ ("a", Driver.Farr (Array.copy a));
      ("b", Driver.Farr (Array.copy b));
      ("out", Driver.Farr (Array.make (2 * n) 0.));
      ("n", Driver.Iscalar n) ]
  in
  let expected = Ninja_workloads.Gen.interleave2 a b in
  check_all_combos src args (fun mem label ->
      match Driver.check_floats ~expected (Driver.output_f mem "out") with
      | Ok () -> ()
      | Error e -> Alcotest.fail (label ^ ": " ^ e))

(* integer sum reduction, vectorized and parallel-combined *)
let test_int_reduction () =
  let n = 101 in
  let src () =
    {|
kernel isum(x : int[], out : int[], n : int) {
  var s : int = 7;
  var i : int;
  pragma parallel
  for (i = 0; i < n; i = i + 1) {
    s = s + x[i];
  }
  out[0] = s;
}
|}
  in
  let x = Ninja_workloads.Gen.ints ~seed:13 ~bound:100 n in
  let args () =
    [ ("x", Driver.Iarr (Array.copy x));
      ("out", Driver.Iarr [| 0 |]);
      ("n", Driver.Iscalar n) ]
  in
  let expected = 7 + Array.fold_left ( + ) 0 x in
  check_all_combos src args (fun mem label ->
      Alcotest.(check int) label expected (Driver.output_i mem "out").(0))

(* max reduction with if-converted guard *)
let test_guarded_max_reduction () =
  let n = 77 in
  let src () =
    {|
kernel gmax(x : float[], out : float[], n : int) {
  var m : float = 0.0 - 1000000.0;
  var i : int;
  pragma parallel
  for (i = 0; i < n; i = i + 1) {
    if (x[i] > 0.0) {
      m = fmaxf(m, x[i]);
    }
  }
  out[0] = m;
}
|}
  in
  let x = Ninja_workloads.Gen.floats ~seed:14 ~lo:(-1.) ~hi:1. n in
  let args () =
    [ ("x", Driver.Farr (Array.copy x));
      ("out", Driver.Farr [| 0. |]);
      ("n", Driver.Iscalar n) ]
  in
  let expected =
    Array.fold_left (fun m v -> if v > 0. then Float.max m v else m) (-1e6) x
  in
  check_all_combos src args (fun mem label ->
      Alcotest.(check (float 1e-9)) label expected (Driver.output_f mem "out").(0))

(* nested loops: outer parallel, inner vectorizable, invariant broadcasts *)
let test_nested_loops () =
  let rows = 9 and cols = 21 in
  let src () =
    {|
kernel rowscale(m : float[], s : float[], out : float[], rows : int, cols : int) {
  var r : int;
  var c : int;
  pragma parallel
  for (r = 0; r < rows; r = r + 1) {
    var k : float = s[r];
    for (c = 0; c < cols; c = c + 1) {
      out[r * cols + c] = m[r * cols + c] * k;
    }
  }
}
|}
  in
  let m = Ninja_workloads.Gen.floats ~seed:15 (rows * cols) in
  let s = Ninja_workloads.Gen.floats ~seed:16 rows in
  let args () =
    [ ("m", Driver.Farr (Array.copy m));
      ("s", Driver.Farr (Array.copy s));
      ("out", Driver.Farr (Array.make (rows * cols) 0.));
      ("rows", Driver.Iscalar rows);
      ("cols", Driver.Iscalar cols) ]
  in
  let expected = Array.init (rows * cols) (fun i -> m.(i) *. s.(i / cols)) in
  check_all_combos src args (fun mem label ->
      match Driver.check_floats ~expected (Driver.output_f mem "out") with
      | Ok () -> ()
      | Error e -> Alcotest.fail (label ^ ": " ^ e))

(* modulo/division/casts in a vector body *)
let test_int_math_vectorized () =
  let n = 33 in
  let src () =
    {|
kernel imath(out : int[], n : int) {
  var i : int;
  pragma simd
  for (i = 0; i < n; i = i + 1) {
    out[i] = (i * 7) % 5 + (i / 3) + int(float(i) * 0.5);
  }
}
|}
  in
  let args () = [ ("out", Driver.Iarr (Array.make n 0)); ("n", Driver.Iscalar n) ] in
  let expected =
    Array.init n (fun i -> (i * 7 mod 5) + (i / 3) + int_of_float (float_of_int i *. 0.5))
  in
  check_all_combos src args (fun mem label ->
      match Driver.check_ints ~expected (Driver.output_i mem "out") with
      | Ok () -> ()
      | Error e -> Alcotest.fail (label ^ ": " ^ e))

(* nested if-conversion *)
let test_nested_if_conversion () =
  let n = 41 in
  let src () =
    {|
kernel bands(x : float[], out : float[], n : int) {
  var i : int;
  pragma simd
  for (i = 0; i < n; i = i + 1) {
    var v : float = x[i];
    var r : float = 0.0;
    if (v > 0.25) {
      if (v > 0.75) {
        r = 2.0;
      } else {
        r = 1.0;
      }
    } else {
      r = 0.0 - 1.0;
    }
    out[i] = r;
  }
}
|}
  in
  let x = Ninja_workloads.Gen.floats ~seed:17 n in
  let args () =
    [ ("x", Driver.Farr (Array.copy x));
      ("out", Driver.Farr (Array.make n 0.));
      ("n", Driver.Iscalar n) ]
  in
  let expected =
    Array.map (fun v -> if v > 0.25 then (if v > 0.75 then 2. else 1.) else -1.) x
  in
  check_all_combos src args (fun mem label ->
      match Driver.check_floats ~expected (Driver.output_f mem "out") with
      | Ok () -> ()
      | Error e -> Alcotest.fail (label ^ ": " ^ e))

(* empty iteration spaces must be safe everywhere *)
let test_empty_ranges () =
  let src () =
    {|
kernel empty(x : float[], n : int) {
  var i : int;
  pragma parallel
  pragma simd
  for (i = 0; i < n; i = i + 1) {
    x[i] = 1.0;
  }
}
|}
  in
  let args () = [ ("x", Driver.Farr (Array.make 4 0.)); ("n", Driver.Iscalar 0) ] in
  check_all_combos src args (fun mem label ->
      Array.iter
        (fun v -> Alcotest.(check (float 0.)) label 0. v)
        (Driver.output_f mem "x"))

(* more threads than iterations *)
let test_more_threads_than_work () =
  let src =
    {|
kernel tiny(x : float[], n : int) {
  var i : int;
  pragma parallel
  for (i = 0; i < n; i = i + 1) {
    x[i] = float(i);
  }
}
|}
  in
  let mem =
    run_kernel ~n_threads:8 ~width:4 Codegen.o2_vec_par src
      [ ("x", Driver.Farr (Array.make 3 0.)); ("n", Driver.Iscalar 3) ]
  in
  Alcotest.(check (array (float 1e-9))) "tiny n" [| 0.; 1.; 2. |] (Driver.output_f mem "x")

(* the vectorization report distinguishes strided AoS from unit SoA *)
let test_report_shapes () =
  let r =
    Codegen.compile ~flags:Codegen.o2_vec
      (parse Ninja_kernels.Lbm.naive_src)
  in
  let vectorized =
    List.filter (fun (_, o) -> o = Codegen.Vectorized) r.vec_report
  in
  Alcotest.(check int) "inner cell loop vectorized" 1 (List.length vectorized)

let suite =
  ( "lang2",
    [ Alcotest.test_case "gather kernel" `Quick test_gather_kernel;
      Alcotest.test_case "strided store kernel" `Quick test_strided_store_kernel;
      Alcotest.test_case "int reduction" `Quick test_int_reduction;
      Alcotest.test_case "guarded max reduction" `Quick test_guarded_max_reduction;
      Alcotest.test_case "nested loops" `Quick test_nested_loops;
      Alcotest.test_case "int math vectorized" `Quick test_int_math_vectorized;
      Alcotest.test_case "nested if-conversion" `Quick test_nested_if_conversion;
      Alcotest.test_case "empty ranges" `Quick test_empty_ranges;
      Alcotest.test_case "more threads than work" `Quick test_more_threads_than_work;
      Alcotest.test_case "vec-report shapes" `Quick test_report_shapes ] )
