(* Unit and property tests for ninja_util. *)

module Rng = Ninja_util.Rng
module Stats = Ninja_util.Stats

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.next_int64 a = Rng.next_int64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_copy () =
  let a = Rng.create 7 in
  ignore (Rng.next_int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.next_int64 a) (Rng.next_int64 b)

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  Alcotest.(check bool) "split differs from parent" true
    (Rng.next_int64 a <> Rng.next_int64 b)

let test_int_bounds () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_float_bounds () =
  let r = Rng.create 4 in
  for _ = 1 to 1000 do
    let v = Rng.float_range r (-2.) 3. in
    Alcotest.(check bool) "in range" true (v >= -2. && v < 3.)
  done

let test_geomean () =
  Alcotest.(check (float 1e-9)) "geomean of equal" 4. (Stats.geomean [ 4.; 4.; 4. ]);
  Alcotest.(check (float 1e-9)) "geomean 1,4" 2. (Stats.geomean [ 1.; 4. ])

let test_geomean_rejects_nonpositive () =
  Alcotest.check_raises "non-positive" (Invalid_argument "Stats.geomean: non-positive value")
    (fun () -> ignore (Stats.geomean [ 1.; 0. ]))

let test_mean () = Alcotest.(check (float 1e-9)) "mean" 2. (Stats.mean [ 1.; 2.; 3. ])

let test_minmax () =
  Alcotest.(check (float 1e-9)) "min" 1. (Stats.minimum [ 3.; 1.; 2. ]);
  Alcotest.(check (float 1e-9)) "max" 3. (Stats.maximum [ 3.; 1.; 2. ])

let test_percentile () =
  let xs = [ 10.; 20.; 30.; 40.; 50. ] in
  Alcotest.(check (float 1e-9)) "p0" 10. (Stats.percentile 0. xs);
  Alcotest.(check (float 1e-9)) "p50" 30. (Stats.percentile 0.5 xs);
  Alcotest.(check (float 1e-9)) "p100" 50. (Stats.percentile 1. xs)

let test_ratio_zero () =
  Alcotest.check_raises "zero divisor" (Invalid_argument "Stats.ratio: zero divisor")
    (fun () -> ignore (Stats.ratio 1. 0.))

let prop_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle preserves multiset" ~count:100
    QCheck.(pair small_int (list small_int))
    (fun (seed, xs) ->
      let a = Array.of_list xs in
      let r = Rng.create seed in
      Rng.shuffle r a;
      List.sort compare (Array.to_list a) = List.sort compare xs)

let prop_geomean_between =
  QCheck.Test.make ~name:"geomean between min and max" ~count:100
    QCheck.(list_of_size Gen.(1 -- 20) (float_range 0.001 1000.))
    (fun xs ->
      let g = Stats.geomean xs in
      g >= Stats.minimum xs -. 1e-9 && g <= Stats.maximum xs +. 1e-9)

let suite =
  ( "util",
    [ Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
      Alcotest.test_case "rng seeds differ" `Quick test_rng_seeds_differ;
      Alcotest.test_case "rng copy" `Quick test_rng_copy;
      Alcotest.test_case "rng split" `Quick test_rng_split_independent;
      Alcotest.test_case "int bounds" `Quick test_int_bounds;
      Alcotest.test_case "float bounds" `Quick test_float_bounds;
      Alcotest.test_case "geomean" `Quick test_geomean;
      Alcotest.test_case "geomean rejects" `Quick test_geomean_rejects_nonpositive;
      Alcotest.test_case "mean" `Quick test_mean;
      Alcotest.test_case "min/max" `Quick test_minmax;
      Alcotest.test_case "percentile" `Quick test_percentile;
      Alcotest.test_case "ratio zero" `Quick test_ratio_zero;
      QCheck_alcotest.to_alcotest prop_shuffle_permutation;
      QCheck_alcotest.to_alcotest prop_geomean_between ] )
