(* Roofline model tests. *)

module Machine = Ninja_arch.Machine
module Roofline = Ninja_analysis.Roofline

let test_peak () =
  (* Westmere: 6 cores x 4 lanes x 2 pipes (no FMA) x 3.33 GHz *)
  Alcotest.(check (float 1.)) "peak" (6. *. 4. *. 2. *. 3.33)
    (Roofline.peak_gflops Machine.westmere ~use_simd:true)

let test_scalar_peak_smaller () =
  Alcotest.(check bool) "scalar < simd" true
    (Roofline.peak_gflops Machine.westmere ~use_simd:false
    < Roofline.peak_gflops Machine.westmere ~use_simd:true)

let test_ridge () =
  let m = Machine.westmere in
  let ridge = Roofline.ridge_intensity m in
  Alcotest.(check (float 1e-6)) "roof continuous at ridge"
    (Roofline.peak_gflops m ~use_simd:true)
    (Roofline.attainable m ~intensity:ridge)

let test_attainable_bw_side () =
  let m = Machine.westmere in
  Alcotest.(check (float 1e-6)) "low intensity is BW-limited" (m.dram_bw_gbs *. 0.25)
    (Roofline.attainable m ~intensity:0.25)

let test_attainable_monotone () =
  let m = Machine.knights_ferry in
  let prev = ref 0. in
  for i = 1 to 100 do
    let v = Roofline.attainable m ~intensity:(float_of_int i /. 10.) in
    Alcotest.(check bool) "monotone nondecreasing" true (v >= !prev -. 1e-9);
    prev := v
  done

let suite =
  ( "analysis",
    [ Alcotest.test_case "peak gflops" `Quick test_peak;
      Alcotest.test_case "scalar peak smaller" `Quick test_scalar_peak_smaller;
      Alcotest.test_case "ridge continuity" `Quick test_ridge;
      Alcotest.test_case "bandwidth side" `Quick test_attainable_bw_side;
      Alcotest.test_case "attainable monotone" `Quick test_attainable_monotone ] )
