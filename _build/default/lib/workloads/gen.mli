(** Deterministic synthetic input generators for the benchmark suite.

    All generators are pure functions of their [seed]; the benchmark harness
    uses fixed seeds so modeled cycle counts are reproducible run to run. *)

val floats : seed:int -> ?lo:float -> ?hi:float -> int -> float array
(** [n] uniform floats in [\[lo, hi)] (default [\[0, 1)]). *)

val ints : seed:int -> bound:int -> int -> int array
(** [n] uniform ints in [\[0, bound)]. *)

val permutation : seed:int -> int -> int array
(** A uniform random permutation of [0..n-1]. *)

val sorted_floats : seed:int -> ?lo:float -> ?hi:float -> int -> float array
(** Sorted uniform floats — e.g. tree-key construction. *)

val interleave2 : float array -> float array -> float array
(** [interleave2 a b] is the AoS layout [a0; b0; a1; b1; ...]. The two
    arrays must have equal length. *)

val interleave : float array list -> float array
(** Generalized AoS packing of equal-length field arrays. *)

val grid3d : seed:int -> nx:int -> ny:int -> nz:int -> float array
(** A 3-D field in x-major layout (index [x + nx * (y + ny * z)]) with
    smooth-ish random contents. *)

val bst_level_order : seed:int -> depth:int -> float array
(** Keys of a perfect binary search tree of [depth] levels (2^depth - 1
    keys), laid out in level order: node [i]'s children are [2i+1] and
    [2i+2]. Keys are strictly increasing in in-order traversal. *)
