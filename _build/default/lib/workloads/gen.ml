module Rng = Ninja_util.Rng

let floats ~seed ?(lo = 0.) ?(hi = 1.) n =
  let rng = Rng.create seed in
  Array.init n (fun _ -> Rng.float_range rng lo hi)

let ints ~seed ~bound n =
  let rng = Rng.create seed in
  Array.init n (fun _ -> Rng.int rng bound)

let permutation ~seed n =
  let rng = Rng.create seed in
  let a = Array.init n Fun.id in
  Rng.shuffle rng a;
  a

let sorted_floats ~seed ?(lo = 0.) ?(hi = 1.) n =
  let a = floats ~seed ~lo ~hi n in
  Array.sort Float.compare a;
  a

let interleave fields =
  match fields with
  | [] -> [||]
  | first :: rest ->
      let n = Array.length first in
      List.iter
        (fun f ->
          if Array.length f <> n then invalid_arg "Gen.interleave: ragged fields")
        rest;
      let k = List.length fields in
      let out = Array.make (n * k) 0. in
      List.iteri
        (fun j f -> Array.iteri (fun i x -> out.((i * k) + j) <- x) f)
        fields;
      out

let interleave2 a b = interleave [ a; b ]

let grid3d ~seed ~nx ~ny ~nz =
  let rng = Rng.create seed in
  let g = Array.make (nx * ny * nz) 0. in
  for z = 0 to nz - 1 do
    for y = 0 to ny - 1 do
      for x = 0 to nx - 1 do
        (* smooth base field plus noise: stencils and rendering behave like
           they do on physical data rather than white noise *)
        let fx = float_of_int x /. float_of_int nx in
        let fy = float_of_int y /. float_of_int ny in
        let fz = float_of_int z /. float_of_int nz in
        let base = sin (6.28 *. fx) *. cos (6.28 *. fy) +. fz in
        g.(x + (nx * (y + (ny * z)))) <- base +. Rng.float rng 0.1
      done
    done
  done;
  g

let bst_level_order ~seed ~depth =
  if depth < 1 || depth > 30 then invalid_arg "Gen.bst_level_order: bad depth";
  let n = (1 lsl depth) - 1 in
  let sorted = sorted_floats ~seed ~lo:0. ~hi:1000. n in
  (* ensure strict increase so searches have unique answers *)
  for i = 1 to n - 1 do
    if sorted.(i) <= sorted.(i - 1) then sorted.(i) <- sorted.(i - 1) +. 1e-3
  done;
  let tree = Array.make n 0. in
  (* fill node [node] with the median of sorted[lo, hi) *)
  let rec fill node lo hi =
    if node < n && lo < hi then begin
      let mid = (lo + hi) / 2 in
      tree.(node) <- sorted.(mid);
      fill ((2 * node) + 1) lo mid;
      fill ((2 * node) + 2) (mid + 1) hi
    end
  in
  fill 0 0 n;
  tree
