lib/workloads/gen.mli:
