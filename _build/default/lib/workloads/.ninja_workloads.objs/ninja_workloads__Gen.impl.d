lib/workloads/gen.ml: Array Float Fun List Ninja_util
