(** Shared construction of the paper's performance ladder:

    + naive serial — naive source, plain scalar code
    + [+autovec] — naive source, auto-vectorization (and fast-math)
    + [+parallel] — naive source, vectorization + threading
    + [+algorithmic] — restructured source, vectorization + threading
    + ninja — hand-written ISA code

    Step names are stable; experiments address them by name. *)

val step_names : string list

val parse_kernel : string -> Ninja_lang.Ast.kernel
(** Parse, turning lex/parse errors into [Failure] with context. *)

val compile_with :
  Ninja_lang.Codegen.flags ->
  machine:Ninja_arch.Machine.t ->
  Ninja_lang.Ast.kernel ->
  Ninja_vm.Isa.program
(** Compile with the machine's FMA availability folded into the flags. *)

type sources = {
  naive : string;
  opt : string;
  ninja : machine:Ninja_arch.Machine.t -> Ninja_vm.Isa.program;
}

val ladder :
  sources:sources ->
  bind_naive:(unit -> (string * Driver.arg) list) ->
  bind_opt:(unit -> (string * Driver.arg) list) ->
  bind_ninja:(unit -> (string * Driver.arg) list) ->
  check_naive:(Ninja_vm.Memory.t -> (unit, string) result) ->
  check_opt:(Ninja_vm.Memory.t -> (unit, string) result) ->
  check_ninja:(Ninja_vm.Memory.t -> (unit, string) result) ->
  Driver.step list
(** The five standard steps for a benchmark whose variants are all
    single-launch kernels. *)
