(* The benchmark suite, in the order the paper's evaluation discusses it. *)

let all : Driver.benchmark list =
  [ Nbody.benchmark;
    Blackscholes.benchmark;
    Conv2d.benchmark;
    Stencil7.benchmark;
    Lbm.benchmark;
    Complex1d.benchmark;
    Treesearch.benchmark;
    Backprojection.benchmark;
    Volume_render.benchmark;
    Mergesort.benchmark ]

let find name =
  match
    List.find_opt
      (fun (b : Driver.benchmark) ->
        String.lowercase_ascii b.b_name = String.lowercase_ascii name)
      all
  with
  | Some b -> b
  | None -> invalid_arg ("unknown benchmark: " ^ name)
