lib/kernels/common.ml: Ast Codegen Driver Lexer Ninja_arch Ninja_lang Ninja_vm Parser
