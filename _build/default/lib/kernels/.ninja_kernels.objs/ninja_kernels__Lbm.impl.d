lib/kernels/lbm.ml: Array Buffer Builder Common Driver Fmt Fun Isa List Ninja_arch Ninja_util Ninja_vm String
