lib/kernels/driver.ml: Array Float Fmt Interp Isa List Memory Ninja_arch Ninja_vm String
