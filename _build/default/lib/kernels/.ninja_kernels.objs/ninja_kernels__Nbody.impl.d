lib/kernels/nbody.ml: Array Builder Common Driver Float Fmt Isa Ninja_arch Ninja_vm Ninja_workloads Result
