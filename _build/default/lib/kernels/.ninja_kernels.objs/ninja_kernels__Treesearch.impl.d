lib/kernels/treesearch.ml: Array Builder Common Driver Isa Ninja_arch Ninja_lang Ninja_vm Ninja_workloads
