lib/kernels/registry.mli: Driver
