lib/kernels/backprojection.ml: Array Builder Common Driver Float Isa Ninja_arch Ninja_vm Ninja_workloads
