lib/kernels/common.mli: Driver Ninja_arch Ninja_lang Ninja_vm
