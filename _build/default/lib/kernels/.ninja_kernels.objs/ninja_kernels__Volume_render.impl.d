lib/kernels/volume_render.ml: Array Builder Common Driver Float Fmt Isa List Ninja_arch Ninja_lang Ninja_vm Ninja_workloads
