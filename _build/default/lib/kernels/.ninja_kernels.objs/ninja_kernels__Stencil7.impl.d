lib/kernels/stencil7.ml: Array Builder Common Driver Isa Ninja_arch Ninja_vm Ninja_workloads
