lib/kernels/driver.mli: Isa Memory Ninja_arch Ninja_vm
