lib/kernels/mergesort.ml: Array Builder Common Driver Float Isa Ninja_arch Ninja_lang Ninja_vm Ninja_workloads
