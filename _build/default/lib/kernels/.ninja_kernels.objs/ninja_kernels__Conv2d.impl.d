lib/kernels/conv2d.ml: Array Buffer Builder Common Driver Fmt Isa Ninja_arch Ninja_vm Ninja_workloads
