lib/kernels/registry.ml: Backprojection Blackscholes Complex1d Conv2d Driver Lbm List Mergesort Nbody Stencil7 String Treesearch Volume_render
