lib/kernels/complex1d.ml: Array Builder Common Driver Isa Ninja_arch Ninja_vm Ninja_workloads Result
