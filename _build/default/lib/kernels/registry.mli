(** The benchmark suite, in the order the paper's evaluation discusses it. *)

val all : Driver.benchmark list

val find : string -> Driver.benchmark
(** Case-insensitive lookup by name. @raise Invalid_argument *)
