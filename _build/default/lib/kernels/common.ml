(* Shared construction of the paper's performance ladder:

   1. naive serial     — naive source, plain -O2 scalar code
   2. +autovec         — naive source, compiler auto-vectorization
   3. +parallel        — naive source, vectorization + threading
   4. +algorithmic     — restructured source (SoA / blocking / SIMD-friendly
                         algorithm), vectorization + threading
   5. ninja            — hand-written ISA code

   Step indices are stable: experiments address them by position. *)

open Ninja_lang

let compile_with flags ~machine (kernel : Ast.kernel) =
  let flags = { flags with Codegen.fma = machine.Ninja_arch.Machine.fma_native } in
  (Codegen.compile ~flags kernel).program

let parse_kernel src =
  try Parser.parse_kernel src with
  | Parser.Error msg -> failwith ("parse error: " ^ msg)
  | Lexer.Error msg -> failwith ("lex error: " ^ msg)

type sources = {
  naive : string; (* Cee source of the naive variant *)
  opt : string; (* Cee source of the algorithmically-improved variant *)
  ninja : machine:Ninja_arch.Machine.t -> Ninja_vm.Isa.program;
}

let step_names =
  [ "naive serial"; "+autovec"; "+parallel"; "+algorithmic"; "ninja" ]

let ladder ~(sources : sources) ~bind_naive ~bind_opt ~bind_ninja ~check_naive
    ~check_opt ~check_ninja : Driver.step list =
  let naive_k = parse_kernel sources.naive in
  let opt_k = parse_kernel sources.opt in
  [
    Driver.simple_step ~name:"naive serial" ~parallel:false
      ~make:(fun ~machine -> compile_with Codegen.o2 ~machine naive_k)
      ~bindings:bind_naive ~check:check_naive;
    Driver.simple_step ~name:"+autovec" ~parallel:false
      ~make:(fun ~machine -> compile_with Codegen.o2_vec ~machine naive_k)
      ~bindings:bind_naive ~check:check_naive;
    Driver.simple_step ~name:"+parallel" ~parallel:true
      ~make:(fun ~machine -> compile_with Codegen.o2_vec_par ~machine naive_k)
      ~bindings:bind_naive ~check:check_naive;
    Driver.simple_step ~name:"+algorithmic" ~parallel:true
      ~make:(fun ~machine -> compile_with Codegen.o2_vec_par ~machine opt_k)
      ~bindings:bind_opt ~check:check_opt;
    Driver.simple_step ~name:"ninja" ~parallel:true
      ~make:(fun ~machine -> sources.ninja ~machine)
      ~bindings:bind_ninja ~check:check_ninja;
  ]
