lib/vm/counts.mli: Fmt Isa
