lib/vm/isa.ml: Array Fmt List Option
