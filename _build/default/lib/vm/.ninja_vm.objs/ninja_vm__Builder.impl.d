lib/vm/builder.ml: Array Isa List
