lib/vm/interp.mli: Counts Event Isa Memory
