lib/vm/memory.ml: Array Fmt Isa List
