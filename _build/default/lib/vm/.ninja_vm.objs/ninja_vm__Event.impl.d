lib/vm/event.ml: Fmt
