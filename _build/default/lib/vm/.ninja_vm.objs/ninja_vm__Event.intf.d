lib/vm/event.mli: Fmt
