lib/vm/counts.ml: Array Fmt Isa List
