lib/vm/interp.ml: Array Counts Event Float Fmt Fun Hashtbl Isa List Memory Option
