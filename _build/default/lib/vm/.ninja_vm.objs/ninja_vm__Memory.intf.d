lib/vm/memory.mli: Format Isa
