lib/vm/builder.mli: Isa
