(* Memory-access events emitted by the interpreter and consumed by the
   timing model's cache hierarchy. Addresses are modeled byte addresses in
   the VM's flat address space (see {!Memory}); [bytes] may span several
   cache lines for unit-stride vector accesses. *)

type kind = Read | Write

type t = {
  thread : int;
  addr : int;
  bytes : int;
  kind : kind;
  chain : bool;
      (* address depended on a previous load (pointer chasing): the miss
         latency cannot be hidden by memory-level parallelism *)
  nt : bool; (* non-temporal store: bypasses the cache hierarchy *)
}

type sink = t -> unit

let pp ppf { thread; addr; bytes; kind; chain; nt } =
  Fmt.pf ppf "[t%d] %s 0x%x+%d%s%s" thread
    (match kind with Read -> "R" | Write -> "W")
    addr bytes
    (if chain then " chain" else "")
    (if nt then " nt" else "")
