(** ASCII table rendering for experiment output, plus CSV emission. *)

type t

val create : title:string -> columns:string list -> t
(** A table with a header row. *)

val add_row : t -> string list -> unit
(** Append a row; must have as many cells as there are columns. *)

val render : t Fmt.t
(** Aligned ASCII rendering (first column left-aligned, rest right). *)

val to_csv : t -> string
(** Comma-separated representation (cells containing commas are quoted). *)

(** Cell formatting helpers. *)

val cell_f : ?decimals:int -> float -> string
val cell_x : float -> string
(** A speedup/gap value rendered as ["12.3x"]. *)
