type t = {
  title : string;
  columns : string list;
  mutable rows : string list list; (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg
      (Fmt.str "Table.add_row (%s): %d cells for %d columns" t.title
         (List.length row) (List.length t.columns));
  t.rows <- row :: t.rows

let widths t =
  let all = t.columns :: List.rev t.rows in
  List.fold_left
    (fun acc row -> List.map2 (fun w cell -> max w (String.length cell)) acc row)
    (List.map (fun _ -> 0) t.columns)
    all

let render ppf t =
  let ws = widths t in
  let pad i w cell =
    if i = 0 then Fmt.str "%-*s" w cell else Fmt.str "%*s" w cell
  in
  let line row =
    String.concat "  " (List.mapi (fun i (w, c) -> pad i w c) (List.combine ws row))
  in
  Fmt.pf ppf "%s@." t.title;
  let header = line t.columns in
  Fmt.pf ppf "%s@." header;
  Fmt.pf ppf "%s@." (String.make (String.length header) '-');
  List.iter (fun row -> Fmt.pf ppf "%s@." (line row)) (List.rev t.rows)

let csv_cell c =
  if String.contains c ',' || String.contains c '"' then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' c) ^ "\""
  else c

let to_csv t =
  let row_line row = String.concat "," (List.map csv_cell row) in
  String.concat "\n" (row_line t.columns :: List.map row_line (List.rev t.rows)) ^ "\n"

let cell_f ?(decimals = 2) x = Fmt.str "%.*f" decimals x
let cell_x x = Fmt.str "%.2fx" x
