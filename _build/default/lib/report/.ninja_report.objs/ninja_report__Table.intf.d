lib/report/table.mli: Fmt
