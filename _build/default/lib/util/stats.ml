let require_nonempty = function
  | [] -> invalid_arg "Stats: empty list"
  | xs -> xs

let mean xs =
  let xs = require_nonempty xs in
  List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let geomean xs =
  let xs = require_nonempty xs in
  let log_sum =
    List.fold_left
      (fun acc x ->
        if x <= 0. then invalid_arg "Stats.geomean: non-positive value"
        else acc +. log x)
      0. xs
  in
  exp (log_sum /. float_of_int (List.length xs))

let minimum xs = List.fold_left min Float.max_float (require_nonempty xs)
let maximum xs = List.fold_left max Float.min_float (require_nonempty xs)

let percentile p xs =
  if p < 0. || p > 1. then invalid_arg "Stats.percentile: p out of range";
  let sorted = List.sort Float.compare (require_nonempty xs) in
  let n = List.length sorted in
  let rank = int_of_float (Float.round (p *. float_of_int (n - 1))) in
  List.nth sorted rank

let ratio a b =
  if b = 0. then invalid_arg "Stats.ratio: zero divisor";
  a /. b
