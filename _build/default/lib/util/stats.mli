(** Small statistics helpers used by the experiment harness. *)

val mean : float list -> float
(** Arithmetic mean. Requires a non-empty list. *)

val geomean : float list -> float
(** Geometric mean; the paper reports gap averages as geometric means.
    Requires a non-empty list of positive values. *)

val minimum : float list -> float
val maximum : float list -> float

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,1\]], nearest-rank on sorted data. *)

val ratio : float -> float -> float
(** [ratio a b] = [a /. b], raising [Invalid_argument] on a zero divisor —
    gaps must never silently become [inf]. *)
