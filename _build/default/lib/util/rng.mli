(** Deterministic pseudo-random number generation.

    Every workload in the repository is generated from an explicit seed so
    that simulated cycle counts are bit-reproducible across runs. The
    generator is SplitMix64 (Steele et al., OOPSLA 2014): a tiny, fast,
    statistically solid 64-bit generator that needs no warm-up. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a generator; equal seeds yield equal streams. *)

val copy : t -> t
(** Independent copy continuing from the current state. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. Requires [bound > 0.]. *)

val float_range : t -> float -> float -> float
(** [float_range t lo hi] is uniform in [\[lo, hi)]. Requires [lo < hi]. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val split : t -> t
(** Derive an independent generator (for per-thread streams). *)
