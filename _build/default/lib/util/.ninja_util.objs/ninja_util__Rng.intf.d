lib/util/rng.mli:
