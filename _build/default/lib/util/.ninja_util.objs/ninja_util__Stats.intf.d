lib/util/stats.mli:
