type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 output function: add the gamma, then mix with two
   xor-shift-multiply rounds (constants from Vigna's reference code). *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  assert (bound > 0);
  let raw = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  raw mod bound

let float t bound =
  assert (bound > 0.);
  (* 53 high-quality bits, mapped to [0,1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits /. 9007199254740992.0 *. bound

let float_range t lo hi =
  assert (lo < hi);
  lo +. float t (hi -. lo)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let split t = { state = next_int64 t }
