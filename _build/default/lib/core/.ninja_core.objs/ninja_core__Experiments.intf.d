lib/core/experiments.mli: Ninja_arch Ninja_kernels Ninja_report
