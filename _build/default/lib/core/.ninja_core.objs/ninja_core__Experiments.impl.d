lib/core/experiments.ml: Array Float Fmt Hashtbl List Ninja_analysis Ninja_arch Ninja_kernels Ninja_report Ninja_util Ninja_vm String
