(** The paper's evaluation, regenerated.

    Each experiment returns rendered tables (see DESIGN.md for the mapping
    from experiment ids to the paper's claims). Results are deterministic;
    simulated runs are memoized within a process, so running several
    experiments shares the underlying simulations. *)

type experiment = {
  id : string;  (** stable id: "t1", "f1" ... "a1" *)
  title : string;
  claim : string;  (** which abstract claim it reproduces *)
  run : unit -> Ninja_report.Table.t list;
}

val all : experiment list
(** In presentation order: T1, F1..F8, T2, A1. *)

val find : string -> experiment
(** Lookup by id (case-insensitive). Raises [Not_found]. *)

val gap : Ninja_arch.Timing.report -> Ninja_arch.Timing.report -> float
(** [gap naive best] = modeled-seconds ratio (how much faster [best] is). *)

val run_step_cached :
  machine:Ninja_arch.Machine.t ->
  Ninja_kernels.Driver.benchmark ->
  string ->
  Ninja_arch.Timing.report
(** Simulate one named ladder step of a benchmark at its default scale,
    memoized on (machine name, benchmark, step). *)
