(** Code generation from Cee to the vector ISA, modeling a traditional
    optimizing compiler:

    - scalar code with constant folding, optional FMA contraction and the
      fast-math [1/sqrtf(x)] → rsqrt rewrite;
    - auto-vectorization of innermost for loops (strip-mined main loop plus
      scalar remainder) with if-conversion to masks, unit-stride / strided /
      gather memory classification, sum/min/max reductions, loop-invariant
      code motion of constants, invariant loads and subscript bases, and a
      short-trip-count profitability check;
    - parallelization of top-level [pragma parallel] loops into SPMD [Par]
      phases with static chunking, privatization and reduction combining;
    - a pointer-chasing taint analysis marking dependent ([chain]) loads.

    Calling convention (shared with {!Ninja_vm.Builder} programs): scalar
    parameters live in one-element ["__p_<name>"] buffers; hidden spill and
    reduction buffers ([__env_i]/[__env_f]/[__red_i]/[__red_f]) carry
    scalar state across phase boundaries. The kernel driver binds them
    automatically. *)

exception Compile_error of string

type flags = {
  vectorize : bool;  (** auto-vectorizer on; [pragma simd] honored *)
  parallelize : bool;  (** [pragma parallel] honored *)
  fast_math : bool;  (** [1.0 / sqrtf x] becomes the rsqrt approximation *)
  fma : bool;  (** contract [a*b + c] (set from the target machine) *)
}

val o2 : flags
(** Plain scalar compilation — the "naive serial" baseline. *)

val o2_vec : flags
(** Auto-vectorization plus fast-math (icc-style). *)

val o2_vec_par : flags
(** Vectorization and threading — the full traditional-compiler setting. *)

val flags_name : flags -> string

type vec_outcome = Vectorized | Scalar of string (** reason *)

type result = {
  program : Ninja_vm.Isa.program;
  vec_report : (string * vec_outcome) list;
      (** one entry per candidate loop, in encounter order — the
          "vectorization report" a traditional compiler prints *)
}

val compile : flags:flags -> Ast.kernel -> result
(** Typecheck, fold, and compile a kernel.
    @raise Compile_error on unsupported shapes (e.g. a non-top-level
    [pragma parallel] loop) or an unhonorable [pragma simd]. *)
