lib/lang/check.ml: Ast Fmt List Map String
