lib/lang/check.mli: Ast Map
