lib/lang/codegen.ml: Analysis Array Ast Check Fmt Isa List Ninja_vm
