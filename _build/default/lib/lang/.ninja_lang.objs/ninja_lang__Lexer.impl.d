lib/lang/lexer.ml: Array Fmt List String
