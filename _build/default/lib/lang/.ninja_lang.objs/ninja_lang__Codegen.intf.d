lib/lang/codegen.mli: Ast Ninja_vm
