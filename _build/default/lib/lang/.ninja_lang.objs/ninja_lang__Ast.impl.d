lib/lang/ast.ml: Float Fmt List Option String
