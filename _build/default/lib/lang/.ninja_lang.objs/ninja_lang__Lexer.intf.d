lib/lang/lexer.mli:
