lib/lang/analysis.ml: Ast Fmt List Option Set String
