(* Hand-written lexer for Cee. Produces a token array with line numbers for
   error reporting. *)

type token =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | KW of string (* kernel var if else while for pragma parallel simd int float *)
  | LPAREN | RPAREN | LBRACKET | RBRACKET | LBRACE | RBRACE
  | SEMI | COLON | COMMA
  | ASSIGN (* = *)
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | LT | LE | GT | GE | EQ | NE
  | ANDAND | OROR | BANG
  | EOF

type located = { tok : token; line : int }

exception Error of string

let error ~line fmt = Fmt.kstr (fun s -> raise (Error (Fmt.str "line %d: %s" line s))) fmt

let keywords =
  [ "kernel"; "var"; "if"; "else"; "while"; "for"; "pragma"; "parallel";
    "simd"; "int"; "float" ]

let token_name = function
  | INT n -> string_of_int n
  | FLOAT x -> string_of_float x
  | IDENT s -> s
  | KW s -> s
  | LPAREN -> "(" | RPAREN -> ")" | LBRACKET -> "[" | RBRACKET -> "]"
  | LBRACE -> "{" | RBRACE -> "}" | SEMI -> ";" | COLON -> ":" | COMMA -> ","
  | ASSIGN -> "=" | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/"
  | PERCENT -> "%" | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">="
  | EQ -> "==" | NE -> "!=" | ANDAND -> "&&" | OROR -> "||" | BANG -> "!"
  | EOF -> "<eof>"

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let pos = ref 0 in
  let peek k = if !pos + k < n then src.[!pos + k] else '\000' in
  let push tok = toks := { tok; line = !line } :: !toks in
  while !pos < n do
    let c = src.[!pos] in
    if c = '\n' then begin incr line; incr pos end
    else if c = ' ' || c = '\t' || c = '\r' then incr pos
    else if c = '/' && peek 1 = '/' then begin
      while !pos < n && src.[!pos] <> '\n' do incr pos done
    end
    else if c = '/' && peek 1 = '*' then begin
      pos := !pos + 2;
      let rec skip () =
        if !pos + 1 >= n then error ~line:!line "unterminated comment"
        else if src.[!pos] = '*' && peek 1 = '/' then pos := !pos + 2
        else begin
          if src.[!pos] = '\n' then incr line;
          incr pos;
          skip ()
        end
      in
      skip ()
    end
    else if is_digit c || (c = '.' && is_digit (peek 1)) then begin
      let start = !pos in
      while !pos < n && is_digit src.[!pos] do incr pos done;
      let is_float =
        !pos < n && (src.[!pos] = '.' || src.[!pos] = 'e' || src.[!pos] = 'E')
      in
      if is_float then begin
        if !pos < n && src.[!pos] = '.' then begin
          incr pos;
          while !pos < n && is_digit src.[!pos] do incr pos done
        end;
        if !pos < n && (src.[!pos] = 'e' || src.[!pos] = 'E') then begin
          incr pos;
          if !pos < n && (src.[!pos] = '+' || src.[!pos] = '-') then incr pos;
          while !pos < n && is_digit src.[!pos] do incr pos done
        end;
        let text = String.sub src start (!pos - start) in
        match float_of_string_opt text with
        | Some x -> push (FLOAT x)
        | None -> error ~line:!line "bad float literal %S" text
      end
      else
        let text = String.sub src start (!pos - start) in
        match int_of_string_opt text with
        | Some v -> push (INT v)
        | None -> error ~line:!line "bad int literal %S" text
    end
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_char src.[!pos] do incr pos done;
      let text = String.sub src start (!pos - start) in
      if List.mem text keywords then push (KW text) else push (IDENT text)
    end
    else begin
      let two tok = push tok; pos := !pos + 2 in
      let one tok = push tok; incr pos in
      match (c, peek 1) with
      | '<', '=' -> two LE
      | '>', '=' -> two GE
      | '=', '=' -> two EQ
      | '!', '=' -> two NE
      | '&', '&' -> two ANDAND
      | '|', '|' -> two OROR
      | '(', _ -> one LPAREN
      | ')', _ -> one RPAREN
      | '[', _ -> one LBRACKET
      | ']', _ -> one RBRACKET
      | '{', _ -> one LBRACE
      | '}', _ -> one RBRACE
      | ';', _ -> one SEMI
      | ':', _ -> one COLON
      | ',', _ -> one COMMA
      | '=', _ -> one ASSIGN
      | '+', _ -> one PLUS
      | '-', _ -> one MINUS
      | '*', _ -> one STAR
      | '/', _ -> one SLASH
      | '%', _ -> one PERCENT
      | '<', _ -> one LT
      | '>', _ -> one GT
      | '!', _ -> one BANG
      | _ -> error ~line:!line "unexpected character %C" c
    end
  done;
  push EOF;
  Array.of_list (List.rev !toks)
