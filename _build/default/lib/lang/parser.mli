(** Recursive-descent parser for Cee. Enforces the canonical for-loop shape
    [for (i = e0; i < e1; i = i + c)] (positive constant [c]) that every
    later pass relies on; unary minus on literals folds at parse time so
    pretty-printing round-trips. *)

exception Error of string
(** Syntax error with line number. *)

val parse_kernel : string -> Ast.kernel
(** Parse one [kernel name(params) { ... }] compilation unit.
    @raise Error on syntax errors
    @raise Lexer.Error on lexical errors *)
