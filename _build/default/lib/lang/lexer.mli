(** Hand-written lexer for Cee. *)

type token =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | KW of string
  | LPAREN | RPAREN | LBRACKET | RBRACKET | LBRACE | RBRACE
  | SEMI | COLON | COMMA
  | ASSIGN
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | LT | LE | GT | GE | EQ | NE
  | ANDAND | OROR | BANG
  | EOF

type located = { tok : token; line : int }

exception Error of string
(** Lexical error with line number. *)

val tokenize : string -> located array
(** Tokenize a whole compilation unit; the result always ends with [EOF].
    Handles [//] and [/* ... */] comments. *)

val token_name : token -> string
(** For error messages. *)
