lib/analysis/roofline.mli: Fmt Ninja_arch
