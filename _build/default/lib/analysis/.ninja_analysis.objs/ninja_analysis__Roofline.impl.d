lib/analysis/roofline.ml: Float Fmt Ninja_arch
