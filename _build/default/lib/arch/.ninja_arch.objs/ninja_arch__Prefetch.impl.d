lib/arch/prefetch.ml: Array
