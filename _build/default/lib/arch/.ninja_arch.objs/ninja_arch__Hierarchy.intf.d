lib/arch/hierarchy.mli: Machine
