lib/arch/timing.mli: Fmt Hierarchy Machine Ninja_vm
