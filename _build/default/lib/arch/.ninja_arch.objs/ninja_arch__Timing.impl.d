lib/arch/timing.ml: Array Counts Event Float Fmt Hierarchy Interp Isa List Machine Ninja_vm
