lib/arch/cache.ml: Array Machine
