lib/arch/prefetch.mli:
