lib/arch/machine.mli: Fmt Ninja_vm
