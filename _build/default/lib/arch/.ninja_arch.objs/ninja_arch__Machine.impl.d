lib/arch/machine.ml: Float Fmt Ninja_vm
