lib/arch/hierarchy.ml: Array Cache Machine Prefetch
