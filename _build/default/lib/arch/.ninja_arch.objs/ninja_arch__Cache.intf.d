lib/arch/cache.mli: Machine
