type stream = {
  mutable last : int; (* last line address seen *)
  mutable stride : int; (* line stride; 0 = untrained *)
  mutable confidence : int;
  mutable tick : int; (* for LRU replacement *)
}

type t = { table : stream array; mutable clock : int }

let create ~streams =
  if streams < 1 then invalid_arg "Prefetch.create: streams < 1";
  {
    table = Array.init streams (fun _ -> { last = min_int; stride = 0; confidence = 0; tick = 0 });
    clock = 0;
  }

(* A stream matches if the access lands within a small window ahead of the
   stream head — real streamers tolerate slightly out-of-order accesses
   within a stream (e.g. the lines of one vector load). *)
let window = 8

let observe t ~line_addr =
  t.clock <- t.clock + 1;
  let found = ref None in
  Array.iter
    (fun s ->
      if !found = None && s.last <> min_int && abs (line_addr - s.last) <= window then
        found := Some s)
    t.table;
  match !found with
  | Some s ->
      let delta = line_addr - s.last in
      let covered = s.confidence >= 2 && (delta = s.stride || delta = 0) in
      if delta = 0 then ()
      else if delta = s.stride then s.confidence <- min (s.confidence + 1) 8
      else begin
        s.stride <- delta;
        s.confidence <- 1
      end;
      s.last <- line_addr;
      s.tick <- t.clock;
      covered
  | None ->
      (* allocate: LRU entry *)
      let victim = ref t.table.(0) in
      Array.iter (fun s -> if s.tick < !victim.tick then victim := s) t.table;
      let s = !victim in
      s.last <- line_addr;
      s.stride <- 0;
      s.confidence <- 0;
      s.tick <- t.clock;
      false

let reset t =
  t.clock <- 0;
  Array.iter
    (fun s ->
      s.last <- min_int;
      s.stride <- 0;
      s.confidence <- 0;
      s.tick <- 0)
    t.table
