type cache_cfg = { size_bytes : int; assoc : int; line_bytes : int; latency : int }

type t = {
  name : string;
  freq_ghz : float;
  cores : int;
  simd_width : int;
  issue_width : int;
  fma_native : bool;
  gather_native : bool;
  prefetch : bool;
  mlp : int;
  l1 : cache_cfg;
  l2 : cache_cfg;
  llc : cache_cfg;
  dram_latency : int;
  dram_bw_gbs : float;
  issue_cost : Ninja_vm.Isa.op_class -> float;
  barrier_cycles : int;
  spawn_cycles : int;
}

(* Issue costs for the out-of-order x86 cores of the 2007-2010 era: one FP
   add pipe + one FP mul pipe (modeled as a single 0.5-cycle FP class), one
   load port, long-latency divide/sqrt, libm-call scalar transcendentals vs
   SVML-style vector ones. Vector ops occupy a whole port cycle. *)
let x86_costs (cls : Ninja_vm.Isa.op_class) =
  match cls with
  | Salu -> 0.5
  | Sfp -> 0.5
  | Sdivsqrt -> 14.0
  | Smath -> 40.0
  | Valu -> 1.0
  | Vfp -> 1.0
  | Vdivsqrt -> 16.0
  | Vmath -> 44.0
  | Vshuf -> 1.0
  | Vmask -> 1.0
  | Sload -> 1.0
  | Sstore -> 1.0
  | Vload -> 1.0
  | Vstore -> 1.0
  | Vgather | Vscatter -> 0.0 (* priced by [gather_cost] *)
  | Branch -> 1.5

(* The MIC core is dual-issue in-order: scalar work is relatively more
   expensive (no out-of-order window), vector math is supported by
   hardware transcendental approximation. *)
let mic_costs (cls : Ninja_vm.Isa.op_class) =
  match cls with
  | Salu -> 1.0
  | Sfp -> 1.0
  | Sdivsqrt -> 24.0
  | Smath -> 60.0
  | Valu -> 1.0
  | Vfp -> 1.0
  | Vdivsqrt -> 16.0
  | Vmath -> 8.0
  | Vshuf -> 1.0
  | Vmask -> 1.0
  | Sload -> 1.0
  | Sstore -> 1.0
  | Vload -> 1.0
  | Vstore -> 1.0
  | Vgather | Vscatter -> 0.0
  | Branch -> 2.0

let gather_cost t =
  if t.gather_native then
    (* one line-probe per ~4 lanes, as in the MIC gather unit *)
    Float.max 1.0 (float_of_int t.simd_width /. 4.0)
  else
    (* emulated: per lane, a scalar load plus an insert *)
    2.0 *. float_of_int t.simd_width

let peak_flops_per_cycle t ~use_simd =
  let lanes = if use_simd then float_of_int t.simd_width else 1.0 in
  let fma = if t.fma_native then 2.0 else 1.0 in
  (* two FP pipes (add + mul) sustained *)
  2.0 *. lanes *. fma *. float_of_int t.cores

let bytes_per_cycle t = t.dram_bw_gbs /. t.freq_ghz

let kib n = n * 1024
let mib n = n * 1024 * 1024

let l1_default = { size_bytes = kib 32; assoc = 8; line_bytes = 64; latency = 4 }
let l2_default = { size_bytes = kib 256; assoc = 8; line_bytes = 64; latency = 11 }

let kentsfield =
  {
    name = "Core 2 Quad (Kentsfield)";
    freq_ghz = 2.4;
    cores = 4;
    simd_width = 4;
    issue_width = 3;
    fma_native = false;
    gather_native = false;
    prefetch = true;
    mlp = 4;
    l1 = l1_default;
    (* Kentsfield has no L3; its big L2 plays the shared-cache role. *)
    l2 = { size_bytes = kib 64; assoc = 8; line_bytes = 64; latency = 8 };
    llc = { size_bytes = mib 8; assoc = 16; line_bytes = 64; latency = 15 };
    dram_latency = 220;
    dram_bw_gbs = 8.5;
    issue_cost = x86_costs;
    barrier_cycles = 3000;
    spawn_cycles = 12000;
  }

let nehalem =
  {
    name = "Core i7 (Nehalem)";
    freq_ghz = 3.2;
    cores = 4;
    simd_width = 4;
    issue_width = 4;
    fma_native = false;
    gather_native = false;
    prefetch = true;
    mlp = 6;
    l1 = l1_default;
    l2 = l2_default;
    llc = { size_bytes = mib 8; assoc = 16; line_bytes = 64; latency = 38 };
    dram_latency = 190;
    dram_bw_gbs = 25.6;
    issue_cost = x86_costs;
    barrier_cycles = 2000;
    spawn_cycles = 10000;
  }

let westmere =
  {
    name = "Core i7 X980 (Westmere)";
    freq_ghz = 3.33;
    cores = 6;
    simd_width = 4;
    issue_width = 4;
    fma_native = false;
    gather_native = false;
    prefetch = true;
    mlp = 6;
    l1 = l1_default;
    l2 = l2_default;
    llc = { size_bytes = mib 12; assoc = 16; line_bytes = 64; latency = 40 };
    dram_latency = 200;
    dram_bw_gbs = 32.0;
    issue_cost = x86_costs;
    barrier_cycles = 2500;
    spawn_cycles = 10000;
  }

let knights_ferry =
  {
    name = "Knights Ferry (MIC)";
    freq_ghz = 1.2;
    cores = 32;
    simd_width = 16;
    issue_width = 2;
    fma_native = true;
    gather_native = true;
    prefetch = true;
    mlp = 4;
    l1 = { l1_default with latency = 3 };
    l2 = { size_bytes = kib 256; assoc = 8; line_bytes = 64; latency = 15 };
    (* no L3: the ring of coherent L2s acts as a distributed last level *)
    llc = { size_bytes = mib 8; assoc = 32; line_bytes = 64; latency = 60 };
    dram_latency = 300;
    dram_bw_gbs = 115.0;
    issue_cost = mic_costs;
    barrier_cycles = 4000;
    spawn_cycles = 16000;
  }

let paper_cpus = [ kentsfield; nehalem; westmere ]

let future ~generation =
  if generation < 1 then invalid_arg "Machine.future: generation must be >= 1";
  let g = generation in
  let scale_i base factor = int_of_float (float_of_int base *. factor) in
  let pow2 n = 1 lsl n in
  {
    westmere with
    name = Fmt.str "Future CPU (gen +%d)" g;
    cores = westmere.cores * pow2 g;
    simd_width = westmere.simd_width * pow2 g;
    fma_native = true;
    (* Bandwidth grows ~1.4x per generation while compute grows 4x: the
       paper's "gap grows if unaddressed" premise. *)
    dram_bw_gbs = westmere.dram_bw_gbs *. (1.4 ** float_of_int g);
    llc = { westmere.llc with size_bytes = scale_i westmere.llc.size_bytes (1.5 ** float_of_int g) };
    gather_native = g >= 2;
  }

let with_gather t gather_native = { t with gather_native }
let with_prefetch t prefetch = { t with prefetch }
let with_cores t cores = { t with cores }
let with_simd t simd_width = { t with simd_width }
let with_name t name = { t with name }

let pp ppf t =
  Fmt.pf ppf "%s: %d cores x %d-wide SIMD at %.2f GHz, %.1f GB/s%s%s" t.name
    t.cores t.simd_width t.freq_ghz t.dram_bw_gbs
    (if t.gather_native then ", gather" else "")
    (if t.fma_native then ", fma" else "")
