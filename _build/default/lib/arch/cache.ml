type cfg = Machine.cache_cfg

type t = {
  cfg : cfg;
  n_sets : int;
  (* ways, flat arrays indexed by set * assoc + way *)
  tags : int array;
  valid : bool array;
  dirty : bool array;
  stamp : int array; (* LRU timestamp *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

type outcome = { hit : bool; evicted_dirty : int option }

let is_pow2 n = n > 0 && n land (n - 1) = 0

let create (cfg : cfg) =
  let lines = cfg.size_bytes / cfg.line_bytes in
  if lines < cfg.assoc then invalid_arg "Cache.create: fewer lines than ways";
  let n_sets = lines / cfg.assoc in
  (* set counts need not be powers of two (e.g. a 12 MiB LLC) *)
  if not (is_pow2 cfg.line_bytes) then invalid_arg "Cache.create: line size must be a power of two";
  let n = n_sets * cfg.assoc in
  {
    cfg;
    n_sets;
    tags = Array.make n 0;
    valid = Array.make n false;
    dirty = Array.make n false;
    stamp = Array.make n 0;
    clock = 0;
    hits = 0;
    misses = 0;
  }

let line_bytes t = t.cfg.line_bytes
let sets t = t.n_sets
let assoc t = t.cfg.assoc

(* The stored tag is the full line address (the set index bits are
   redundant but harmless, and eviction reporting stays trivial). *)
let set_of t line_addr = line_addr mod t.n_sets

let access t ~line_addr ~write =
  t.clock <- t.clock + 1;
  let set = set_of t line_addr in
  let base = set * t.cfg.assoc in
  let found = ref (-1) in
  for w = 0 to t.cfg.assoc - 1 do
    let i = base + w in
    if t.valid.(i) && t.tags.(i) = line_addr then found := i
  done;
  if !found >= 0 then begin
    let i = !found in
    t.hits <- t.hits + 1;
    t.stamp.(i) <- t.clock;
    if write then t.dirty.(i) <- true;
    { hit = true; evicted_dirty = None }
  end
  else begin
    t.misses <- t.misses + 1;
    (* victim: first invalid way, else LRU *)
    let victim = ref base in
    let best = ref max_int in
    (try
       for w = 0 to t.cfg.assoc - 1 do
         let i = base + w in
         if not t.valid.(i) then begin
           victim := i;
           raise Exit
         end;
         if t.stamp.(i) < !best then begin
           best := t.stamp.(i);
           victim := i
         end
       done
     with Exit -> ());
    let i = !victim in
    let evicted_dirty =
      if t.valid.(i) && t.dirty.(i) then Some t.tags.(i) else None
    in
    t.tags.(i) <- line_addr;
    t.valid.(i) <- true;
    t.dirty.(i) <- write;
    t.stamp.(i) <- t.clock;
    { hit = false; evicted_dirty }
  end

let probe t ~line_addr =
  let set = set_of t line_addr in
  let base = set * t.cfg.assoc in
  let found = ref false in
  for w = 0 to t.cfg.assoc - 1 do
    let i = base + w in
    if t.valid.(i) && t.tags.(i) = line_addr then found := true
  done;
  !found

let invalidate_all t =
  Array.fill t.valid 0 (Array.length t.valid) false;
  Array.fill t.dirty 0 (Array.length t.dirty) false

let stats_hits t = t.hits
let stats_misses t = t.misses

let dirty_lines t =
  let n = ref 0 in
  for i = 0 to Array.length t.valid - 1 do
    if t.valid.(i) && t.dirty.(i) then incr n
  done;
  !n

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0
