type level = L1 | L2 | LLC | Dram

type result = { level : level; covered : bool }

type core_caches = { l1 : Cache.t; l2 : Cache.t; pf : Prefetch.t }

type t = {
  machine : Machine.t;
  cores : core_caches array;
  llc : Cache.t;
  mutable dram_read : int;
  mutable dram_write : int;
  by_level : int array; (* accesses whose deepest level was L1/L2/LLC/DRAM *)
}

let level_index = function L1 -> 0 | L2 -> 1 | LLC -> 2 | Dram -> 3
let level_name = function L1 -> "L1" | L2 -> "L2" | LLC -> "LLC" | Dram -> "DRAM"

let create (m : Machine.t) =
  {
    machine = m;
    cores =
      Array.init m.cores (fun _ ->
          { l1 = Cache.create m.l1; l2 = Cache.create m.l2; pf = Prefetch.create ~streams:32 });
    llc = Cache.create m.llc;
    dram_read = 0;
    dram_write = 0;
    by_level = Array.make 4 0;
  }

let line_bytes t = t.machine.l1.line_bytes

(* One cache-line access. Returns the level that supplied the line and
   whether the prefetcher covered a (L1-missing) access. Write-back dirty
   state is propagated down at fill time so that LLC evictions of written
   lines generate DRAM write-back traffic. *)
let access_line t ~core ~line_addr ~write =
  let c = t.cores.(core) in
  let l1r = Cache.access c.l1 ~line_addr ~write in
  if l1r.hit then (L1, false)
  else begin
    let covered =
      t.machine.prefetch && Prefetch.observe c.pf ~line_addr
    in
    let l2r = Cache.access c.l2 ~line_addr ~write in
    if l2r.hit then (L2, covered)
    else begin
      let llcr = Cache.access t.llc ~line_addr ~write in
      (match llcr.evicted_dirty with
      | Some _ -> t.dram_write <- t.dram_write + line_bytes t
      | None -> ());
      if llcr.hit then (LLC, covered)
      else begin
        t.dram_read <- t.dram_read + line_bytes t;
        (Dram, covered)
      end
    end
  end

let deeper a b = if level_index a >= level_index b then a else b

let access t ~core ~addr ~bytes ~write ~nt =
  if nt && write then begin
    (* streaming store: write-combining buffers send full lines to DRAM
       without reading them first *)
    t.dram_write <- t.dram_write + bytes;
    { level = Dram; covered = true }
  end
  else begin
    let lb = line_bytes t in
    let first = addr / lb and last = (addr + bytes - 1) / lb in
    let deepest = ref L1 in
    let all_covered = ref true in
    for line_addr = first to last do
      let level, covered = access_line t ~core ~line_addr ~write in
      deepest := deeper !deepest level;
      if level <> L1 && not covered then all_covered := false
    done;
    let res = { level = !deepest; covered = (!deepest = L1) || !all_covered } in
    t.by_level.(level_index res.level) <- t.by_level.(level_index res.level) + 1;
    res
  end

(* Steady-state accounting: dirty lines still resident at the end of a
   measurement will eventually be written back; drain them into the DRAM
   write counter. Dirty state is propagated to the LLC at fill time, so the
   LLC's dirty lines cover the private caches'. *)
let drain_writebacks t =
  t.dram_write <- t.dram_write + (Cache.dirty_lines t.llc * line_bytes t)

let dram_read_bytes t = t.dram_read
let dram_write_bytes t = t.dram_write
let accesses t level = t.by_level.(level_index level)

let reset t =
  Array.iter
    (fun c ->
      Cache.invalidate_all c.l1;
      Cache.invalidate_all c.l2;
      Cache.reset_stats c.l1;
      Cache.reset_stats c.l2;
      Prefetch.reset c.pf)
    t.cores;
  Cache.invalidate_all t.llc;
  Cache.reset_stats t.llc;
  t.dram_read <- 0;
  t.dram_write <- 0;
  Array.fill t.by_level 0 4 0
