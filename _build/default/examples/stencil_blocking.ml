(* Streaming-kernel anatomy: why the 7-point stencil is bandwidth-bound, and
   what each optimization layer contributes — including a DRAM-traffic
   breakdown showing the write-allocate elimination by streaming stores.

   Run with:  dune exec examples/stencil_blocking.exe *)

module Driver = Ninja_kernels.Driver
module Machine = Ninja_arch.Machine
module Timing = Ninja_arch.Timing

let () =
  let machine = Machine.westmere in
  let bench = Ninja_kernels.Stencil7.benchmark in
  Fmt.pr "7-point stencil on %a@.@." Machine.pp machine;
  Fmt.pr "%-14s %10s %10s %12s %12s %10s@." "variant" "Mcycles" "issue(M)"
    "DRAM rd MB" "DRAM wr MB" "bound";
  List.iter
    (fun (step : Driver.step) ->
      let r = Driver.run_step ~machine step in
      Fmt.pr "%-14s %10.3f %10.3f %12.2f %12.2f %10s@." step.step_name
        (r.cycles /. 1e6) (r.issue_cycles /. 1e6)
        (float_of_int r.dram_read_bytes /. 1e6)
        (float_of_int r.dram_write_bytes /. 1e6)
        (Timing.bound_name r.bound))
    (bench.steps ~scale:bench.default_scale);
  Fmt.pr
    "@.Note how the ninja variant's read traffic drops by the output-array\n\
     volume: its non-temporal stores skip the write-allocate reads, which is\n\
     worth ~25%% of total traffic once the sweep is bandwidth-bound.@.";
  (* sensitivity: the same ladder if the machine had half / double bandwidth *)
  Fmt.pr "@.bandwidth sensitivity of the ninja variant:@.";
  List.iter
    (fun scale ->
      let m =
        Machine.with_name
          { machine with dram_bw_gbs = machine.dram_bw_gbs *. scale }
          (Fmt.str "Westmere x%.1f BW" scale)
      in
      let step = List.nth (bench.steps ~scale:bench.default_scale) 4 in
      let r = Driver.run_step ~machine:m step in
      Fmt.pr "  %4.1fx bandwidth: %8.3f Mcycles (%s-bound)@." scale
        (r.cycles /. 1e6) (Timing.bound_name r.bound))
    [ 0.5; 1.0; 2.0; 4.0 ]
