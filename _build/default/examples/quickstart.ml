(* Quickstart: write a kernel in Cee, compile it at different optimization
   levels, simulate it on a Westmere-class machine, and read the results.

   Run with:  dune exec examples/quickstart.exe *)

module Codegen = Ninja_lang.Codegen
module Machine = Ninja_arch.Machine
module Timing = Ninja_arch.Timing
module Driver = Ninja_kernels.Driver

(* A dot product: the "hello world" of the vectorizer — a sum reduction
   over two unit-stride streams. *)
let source =
  {|
kernel dot(x : float[], y : float[], out : float[], n : int) {
  var i : int;
  var s : float = 0.0;
  pragma parallel
  for (i = 0; i < n; i = i + 1) {
    s = s + x[i] * y[i];
  }
  out[0] = s;
}
|}

let () =
  let kernel = Ninja_lang.Parser.parse_kernel source in
  let machine = Machine.westmere in
  let n = 1 lsl 16 in
  let x = Ninja_workloads.Gen.floats ~seed:1 n in
  let y = Ninja_workloads.Gen.floats ~seed:2 n in
  let expected = ref 0. in
  for i = 0 to n - 1 do
    expected := !expected +. (x.(i) *. y.(i))
  done;

  Fmt.pr "dot product of %d elements on %a@.@." n Machine.pp machine;

  let run name flags ~n_threads =
    let { Codegen.program; vec_report } = Codegen.compile ~flags kernel in
    let mem =
      Driver.memory_for program
        [ ("x", Driver.Farr (Array.copy x));
          ("y", Driver.Farr (Array.copy y));
          ("out", Driver.Farr [| 0. |]);
          ("n", Driver.Iscalar n) ]
    in
    let report = Timing.simulate ~machine ~n_threads program mem in
    let result = (Driver.output_f mem "out").(0) in
    Fmt.pr "%-24s %10.3f Mcycles  (result %.4f, expected %.4f)@." name
      (report.cycles /. 1e6) result !expected;
    List.iter
      (fun (label, outcome) ->
        match (outcome : Codegen.vec_outcome) with
        | Vectorized -> Fmt.pr "    vectorizer: %s -> vectorized@." label
        | Scalar why -> Fmt.pr "    vectorizer: %s -> scalar (%s)@." label why)
      vec_report;
    report
  in
  let naive = run "naive (-O2, serial)" Codegen.o2 ~n_threads:1 in
  let vec = run "auto-vectorized" Codegen.o2_vec ~n_threads:1 in
  let par = run "vectorized + threaded" Codegen.o2_vec_par ~n_threads:machine.cores in
  Fmt.pr "@.speedups: vectorization %.2fx, threading %.2fx more, total %.2fx@."
    (Timing.speedup ~baseline:naive vec)
    (Timing.speedup ~baseline:vec par)
    (Timing.speedup ~baseline:naive par);
  Fmt.pr "binding resource of the final version: %s@."
    (Timing.bound_name par.bound)
