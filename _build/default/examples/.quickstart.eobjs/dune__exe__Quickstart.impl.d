examples/quickstart.ml: Array Fmt List Ninja_arch Ninja_kernels Ninja_lang Ninja_workloads
