examples/custom_machine.ml: Fmt List Ninja_arch Ninja_kernels Ninja_util
