examples/stencil_blocking.mli:
