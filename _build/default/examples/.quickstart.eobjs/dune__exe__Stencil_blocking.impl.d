examples/stencil_blocking.ml: Fmt List Ninja_arch Ninja_kernels
