examples/quickstart.mli:
