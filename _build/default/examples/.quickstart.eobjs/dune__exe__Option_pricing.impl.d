examples/option_pricing.ml: Fmt List Ninja_analysis Ninja_arch Ninja_kernels Option
