(* Define a hypothetical machine and re-evaluate the whole suite on it —
   the workflow for "what would this workload need from future hardware?"
   questions. Here: an aggressive wide-SIMD design with and without
   hardware gather, quantifying how much of the suite's bridged-variant
   performance depends on that one programmability feature.

   Run with:  dune exec examples/custom_machine.exe *)

module Driver = Ninja_kernels.Driver
module Machine = Ninja_arch.Machine
module Timing = Ninja_arch.Timing

(* A 16-core, 16-wide hypothetical CPU at Westmere-era frequency. *)
let wide_cpu ~gather =
  {
    Machine.westmere with
    name = (if gather then "wide-16x16 +gather" else "wide-16x16");
    cores = 16;
    simd_width = 16;
    fma_native = true;
    gather_native = gather;
    dram_bw_gbs = 80.;
    llc = { Machine.westmere.llc with size_bytes = 24 * 1024 * 1024 };
  }

let () =
  let with_g = wide_cpu ~gather:true in
  let without_g = wide_cpu ~gather:false in
  Fmt.pr "suite on %a@.   vs %a@.@." Machine.pp with_g Machine.pp without_g;
  Fmt.pr "%-16s %14s %14s %10s@." "benchmark" "no gather (Mc)" "gather (Mc)" "benefit";
  let benefits =
    List.map
      (fun (b : Driver.benchmark) ->
        let step =
          List.find
            (fun (s : Driver.step) -> s.step_name = "ninja")
            (b.steps ~scale:b.default_scale)
        in
        let r0 = Driver.run_step ~machine:without_g step in
        let r1 = Driver.run_step ~machine:with_g step in
        let benefit = Timing.speedup ~baseline:r0 r1 in
        Fmt.pr "%-16s %14.3f %14.3f %9.2fx@." b.b_name (r0.cycles /. 1e6)
          (r1.cycles /. 1e6) benefit;
        benefit)
      Ninja_kernels.Registry.all
  in
  Fmt.pr "@.geomean gather benefit at 16-wide SIMD: %.2fx@."
    (Ninja_util.Stats.geomean benefits);
  Fmt.pr
    "(The wider the SIMD, the more an emulated gather costs — this is why\n\
     the paper argues gather/scatter hardware is the key programmability\n\
     feature for manycore.)@."
