(* Option pricing end to end: the BlackScholes benchmark's full ladder on
   both the paper's CPU and the MIC, with the roofline placement of the
   final variants — a compressed tour of what the library measures.

   Run with:  dune exec examples/option_pricing.exe *)

module Driver = Ninja_kernels.Driver
module Machine = Ninja_arch.Machine
module Timing = Ninja_arch.Timing
module Roofline = Ninja_analysis.Roofline

let () =
  let bench = Ninja_kernels.Blackscholes.benchmark in
  List.iter
    (fun machine ->
      Fmt.pr "@.%a@." Machine.pp machine;
      let steps = bench.steps ~scale:bench.default_scale in
      let baseline = ref None in
      List.iter
        (fun (step : Driver.step) ->
          (* validate against the reference pricer, then measure *)
          (match Driver.validate_step ~machine step with
          | Ok () -> ()
          | Error e -> Fmt.failwith "%s: %s" step.step_name e);
          let r = Driver.run_step ~machine step in
          (match !baseline with None -> baseline := Some r | Some _ -> ());
          Fmt.pr "  %-14s %8.3f Mcycles  %7.2fx@." step.step_name
            (r.cycles /. 1e6)
            (Timing.speedup ~baseline:(Option.get !baseline) r);
          if step.step_name = "ninja" then begin
            let p = Roofline.point ~label:"blackscholes ninja" r in
            Fmt.pr "  roofline: %a@." Roofline.pp_point p
          end)
        steps)
    [ Machine.westmere; Machine.knights_ferry ]
