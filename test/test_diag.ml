(* Structured-diagnostic tests: stable reason codes, source spans, the
   per-loop opt-report, the pragma race checker, and the rejection-label
   format the vec-report surfaces. *)

open Ninja_lang

let first_loop src =
  let rec find_for = function
    | [] -> Alcotest.fail "no loop in kernel body"
    | Ast.For loop :: _ -> loop
    | _ :: rest -> find_for rest
  in
  find_for (Ast.fold_block (Parser.parse_kernel src).body)

(* Reason code of the top-level loop's vectorization rejection. *)
let reject_code src =
  match Analysis.vectorize_diag ~force:false (first_loop src) with
  | Ok _ -> Alcotest.fail "expected a vectorization rejection"
  | Error d -> Diag.code_name d.code

let codes_of (report : Optreport.t) =
  List.concat_map
    (fun (l : Optreport.loop_report) ->
      List.map (fun (d : Diag.t) -> Diag.code_name d.code) l.diags)
    report.loops

(* ---- code names and rendering ---- *)

let test_code_names () =
  List.iter
    (fun (code, name) ->
      Alcotest.(check string) name name (Diag.code_name code))
    [ (Diag.Aos_layout, "AOS_LAYOUT"); (Diag.Non_unit_stride, "NON_UNIT_STRIDE");
      (Diag.Loop_carried_dep, "LOOP_CARRIED_DEP"); (Diag.Scalar_cycle, "SCALAR_CYCLE");
      (Diag.Gather_required, "GATHER_REQUIRED"); (Diag.Inner_loop, "INNER_LOOP");
      (Diag.Race, "RACE"); (Diag.Syntax, "SYNTAX") ]

let test_pp_with_span_and_hint () =
  let d =
    Diag.v ~span:(Diag.lines 9 4) ~hint:"do the thing" Diag.Error
      Diag.Aos_layout "bad layout"
  in
  Alcotest.(check string) "rendered"
    "lines 4-9: error AOS_LAYOUT: bad layout\n  hint: do the thing"
    (Diag.to_string d);
  Alcotest.(check string) "label" "AOS_LAYOUT: bad layout" (Diag.label d)

(* ---- parser / checker diagnostics ---- *)

let test_parse_error_has_span () =
  match Parser.parse_kernel_diag "kernel f(a : float[]) {\n  a[0] = ;\n}" with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error d ->
      Alcotest.(check string) "code" "SYNTAX" (Diag.code_name d.code);
      Alcotest.(check int) "line" 2 d.span.first_line

let test_type_error_diag () =
  let k = Parser.parse_kernel "kernel f(a : float[], i : int) { i = a; }" in
  match Check.check_kernel_diag k with
  | Ok () -> Alcotest.fail "expected a type error"
  | Error d -> Alcotest.(check string) "code" "TYPE" (Diag.code_name d.code)

(* ---- rejection reason codes (the negative-path fixtures) ---- *)

let test_stride2_recurrence_is_non_unit_stride () =
  Alcotest.(check string) "code" "NON_UNIT_STRIDE"
    (reject_code
       "kernel f(a : float[], n : int) { var i : int; for (i = 1; i < n; i \
        = i + 1) { a[2 * i] = a[2 * i - 2] + 1.0; } }")

let test_multi_residue_is_aos_layout () =
  Alcotest.(check string) "code" "AOS_LAYOUT"
    (reject_code
       "kernel f(z : float[], n : int) { var i : int; for (i = 1; i < n; i \
        = i + 1) { z[2 * i] = z[2 * i - 2] + z[2 * i + 1]; } }")

let test_scatter_store_is_gather_required () =
  Alcotest.(check string) "code" "GATHER_REQUIRED"
    (reject_code
       "kernel f(out : float[], idx : int[], n : int) { var i : int; for (i \
        = 0; i < n; i = i + 1) { out[idx[i]] = 1.0; } }")

let test_scalar_cycle_code () =
  Alcotest.(check string) "code" "SCALAR_CYCLE"
    (reject_code
       "kernel f(a : float[], n : int, s : float) { var i : int; for (i = \
        0; i < n; i = i + 1) { a[i] = s; s = a[i] * 2.0; } }")

let test_rejection_carries_loop_span () =
  let loop =
    first_loop
      "kernel f(out : float[], idx : int[], n : int) {\n\
      \  var i : int;\n\
      \  for (i = 0; i < n; i = i + 1) {\n\
      \    out[idx[i]] = 1.0;\n\
      \  }\n\
       }"
  in
  match Analysis.vectorize_diag ~force:false loop with
  | Ok _ -> Alcotest.fail "expected rejection"
  | Error d ->
      Alcotest.(check int) "first line" 3 d.span.first_line;
      Alcotest.(check int) "last line" 5 d.span.last_line

(* ---- the opt-report pass ---- *)

let test_optreport_short_trip_and_force () =
  let report =
    Optreport.analyze_src
      "kernel f(a : float[]) { var i : int; for (i = 0; i < 4; i = i + 1) { \
       a[i] = a[i] * 2.0; } }"
  in
  (match report.loops with
  | [ l ] ->
      Alcotest.(check bool) "stays scalar" false l.vectorized;
      Alcotest.(check (list string)) "short-trip remark" [ "SHORT_TRIP" ]
        (codes_of report)
  | _ -> Alcotest.fail "expected one loop");
  let forced =
    Optreport.analyze_src
      "kernel f(a : float[]) { var i : int; pragma simd for (i = 0; i < 4; \
       i = i + 1) { a[i] = a[i] * 2.0; } }"
  in
  match forced.loops with
  | [ l ] -> Alcotest.(check bool) "pragma simd overrides" true l.vectorized
  | _ -> Alcotest.fail "expected one loop"

let test_optreport_parse_error () =
  let report = Optreport.analyze_src ~name:"broken" "kernel f( {" in
  Alcotest.(check string) "name kept" "broken" report.kernel_name;
  Alcotest.(check int) "no loops" 0 (List.length report.loops);
  match report.errors with
  | [ d ] -> Alcotest.(check string) "syntax" "SYNTAX" (Diag.code_name d.code)
  | _ -> Alcotest.fail "expected exactly one error"

let test_optreport_aos_remark_on_vectorized_loop () =
  (* BlackScholes naive: AoS layout vectorizes via strided ops, so the
     report must say VECTORIZED *and* carry the AOS_LAYOUT remark *)
  let report = Optreport.analyze_src Ninja_kernels.Blackscholes.naive_src in
  match report.loops with
  | [ l ] ->
      Alcotest.(check bool) "vectorized" true l.vectorized;
      Alcotest.(check bool) "parallelized" true l.parallelized;
      Alcotest.(check bool) "AoS remark present" true
        (List.exists (fun (d : Diag.t) -> d.code = Diag.Aos_layout) l.diags)
  | _ -> Alcotest.fail "expected one loop"

(* ---- the pragma race checker ---- *)

let race_codes src =
  Optreport.analyze_src src |> codes_of |> List.filter (( = ) "RACE")

let test_race_invariant_store () =
  Alcotest.(check (list string)) "one RACE" [ "RACE" ]
    (race_codes
       "kernel f(a : float[], n : int) { var i : int; pragma parallel for \
        (i = 0; i < n; i = i + 1) { a[0] = a[0] + 1.0; } }")

let test_race_constant_distance () =
  Alcotest.(check (list string)) "one RACE" [ "RACE" ]
    (race_codes
       "kernel f(a : float[], n : int) { var i : int; pragma parallel for \
        (i = 0; i < n - 1; i = i + 1) { a[i] = a[i + 1] * 2.0; } }")

let test_race_checker_quiet_on_suite () =
  (* every pragma in the benchmark suite is a legitimate assertion: the
     checker must not second-guess any of them *)
  List.iter
    (fun (b : Ninja_kernels.Driver.benchmark) ->
      List.iter
        (fun (vname, src) ->
          Alcotest.(check (list string))
            (Fmt.str "%s/%s has no RACE" b.b_name vname)
            [] (race_codes src))
        b.b_sources)
    Ninja_kernels.Registry.all

(* ---- rejection labels (the vec-report surface) ---- *)

let test_rejection_label_has_code () =
  match
    Analysis.vectorize_diag ~force:false
      (first_loop
         "kernel f(a : float[], n : int) { var i : int; for (i = 1; i < n; \
          i = i + 1) { a[2 * i] = a[2 * i - 2] + 1.0; } }")
  with
  | Ok _ -> Alcotest.fail "expected a rejection"
  | Error d ->
      let msg = Diag.label d in
      Alcotest.(check bool)
        (Fmt.str "label %S carries the reason code" msg)
        true
        (String.length msg > 16 && String.sub msg 0 16 = "NON_UNIT_STRIDE:")

let suite =
  ( "diag",
    [ Alcotest.test_case "code names stable" `Quick test_code_names;
      Alcotest.test_case "pp span + hint" `Quick test_pp_with_span_and_hint;
      Alcotest.test_case "parse error has span" `Quick test_parse_error_has_span;
      Alcotest.test_case "type error diag" `Quick test_type_error_diag;
      Alcotest.test_case "stride-2 recurrence -> NON_UNIT_STRIDE" `Quick
        test_stride2_recurrence_is_non_unit_stride;
      Alcotest.test_case "multi-residue -> AOS_LAYOUT" `Quick
        test_multi_residue_is_aos_layout;
      Alcotest.test_case "scatter store -> GATHER_REQUIRED" `Quick
        test_scatter_store_is_gather_required;
      Alcotest.test_case "scalar cycle -> SCALAR_CYCLE" `Quick
        test_scalar_cycle_code;
      Alcotest.test_case "rejection carries loop span" `Quick
        test_rejection_carries_loop_span;
      Alcotest.test_case "opt-report short trip + pragma simd" `Quick
        test_optreport_short_trip_and_force;
      Alcotest.test_case "opt-report parse error" `Quick test_optreport_parse_error;
      Alcotest.test_case "opt-report AoS remark on vectorized loop" `Quick
        test_optreport_aos_remark_on_vectorized_loop;
      Alcotest.test_case "race: invariant store" `Quick test_race_invariant_store;
      Alcotest.test_case "race: constant distance" `Quick test_race_constant_distance;
      Alcotest.test_case "race checker quiet on the suite" `Quick
        test_race_checker_quiet_on_suite;
      Alcotest.test_case "rejection label has code" `Quick
        test_rejection_label_has_code ] )
