(* Differential pinning for the closure-compiling backend (lib/vm/compile.ml).

   The compiler's contract is total observational equivalence: for any
   verifier-clean program, [Compiled config] must agree with [Optimized
   config], [Decoded] and [Tree] on every observable — final register
   files, memory contents, per-thread count rows, total instructions,
   the memory-access event stream, the profiling trace, and trap
   messages (including the memory state at the fault, which pins the
   batched-bookkeeping fuel semantics). This suite pins that contract
   with a four-way random-program differential (with and without the
   optimizer pipeline in front), deterministic trap differentials, and
   a dozen hand-seeded mutations of compiled-input op arrays — each
   simulating a distinct compiler-bug class (wrong immediate, dropped
   def, inflated or misattributed bookkeeping, swapped operands, wrong
   operator, flipped dependence chain, dropped store, wrong loop bound,
   perturbed constant, dropped trace scope) — that the observation
   differential must refute when executed through the compiled
   executor. *)

open Ninja_vm
module F = Test_fastpath

(* ------------------------------------------------------------------ *)
(* Four-way differential: Tree vs Decoded vs Optimized vs Compiled.    *)

let four_way ~name ~count config =
  QCheck.Test.make ~count ~name F.seed_arb (fun seed ->
      let prog, n_threads, width = F.build_program seed in
      List.for_all
        (fun tracing ->
          let t = F.observe ~strategy:Interp.Tree ~tracing ~n_threads ~width prog in
          let d = F.observe ~strategy:Interp.Decoded ~tracing ~n_threads ~width prog in
          let o =
            F.observe ~strategy:(Interp.Optimized config) ~tracing ~n_threads
              ~width prog
          in
          let c =
            F.observe ~strategy:(Interp.Compiled config) ~tracing ~n_threads
              ~width prog
          in
          match
            (F.diff_observations t d, F.diff_observations d o,
             F.diff_observations o c)
          with
          | None, None, None -> true
          | Some what, _, _ ->
              QCheck.Test.fail_reportf "Tree vs Decoded diverge (tracing=%b) on: %s"
                tracing what
          | _, Some what, _ ->
              QCheck.Test.fail_reportf
                "Decoded vs Optimized(%s) diverge (tracing=%b) on: %s"
                (Optimize.tag config) tracing what
          | _, _, Some what ->
              QCheck.Test.fail_reportf
                "Optimized vs Compiled(%s) diverge (tracing=%b) on: %s"
                (Optimize.tag config) tracing what)
        [ false; true ])

let prop_four_way_default =
  four_way ~count:100
    ~name:"random programs: Tree = Decoded = Optimized = Compiled (all passes)"
    Optimize.default

let prop_four_way_unoptimized =
  four_way ~count:60
    ~name:"random programs: compiled plain decoded arrays preserve all observables"
    Optimize.none

(* ------------------------------------------------------------------ *)
(* Deterministic trap differentials: Decoded vs Compiled must fault
   identically — same message, same memory state at the fault. The fuel
   case is the sharp one: the compiled backend batches instruction/fuel
   bookkeeping per straight-line segment, and these pin that a batch
   never moves a trap across an observable effect. *)

let trap_pair ?(width = 4) ?(fuel = 1_000) build args =
  let obs strategy =
    let b = Builder.create ~name:"trap" in
    build b;
    let prog = Builder.finish b in
    let mem = Memory.create prog (args ()) in
    let r =
      match Interp.run ~width ~fuel ~strategy prog mem with
      | (_ : Interp.result) -> Error "no trap"
      | exception Interp.Trap m -> Ok m
    in
    let snapshot =
      List.map (fun (name, _) ->
          match Memory.find mem name with
          | _, Memory.Fbuf a -> (name, `F (Array.copy a))
          | _, Memory.Ibuf a -> (name, `I (Array.copy a)))
        (args ())
    in
    (r, snapshot)
  in
  let d = obs Interp.Decoded
  and c = obs (Interp.Compiled Optimize.none) in
  Alcotest.(check bool) "Decoded and Compiled trap identically" true
    (compare d c = 0);
  match fst d with
  | Ok msg -> msg
  | Error e -> Alcotest.fail ("expected a trap, got: " ^ e)

let test_trap_fuel_exhausted () =
  let msg =
    trap_pair ~fuel:500
      (fun b ->
        Builder.seq_phase b (fun () ->
            let one = Builder.iconst b 1 in
            Builder.while_ b
              ~cond:(fun () -> one)
              (fun () -> ignore (Builder.iconst b 0 : Isa.si_reg))))
      (fun () -> [])
  in
  Alcotest.(check bool) "fuel in message" true
    (Astring_contains.contains msg "fuel")

let test_trap_fuel_before_store () =
  (* fuel runs out mid-segment, after pure ops but before a store: the
     batched charge must trap without executing the store *)
  let msg =
    trap_pair ~fuel:6
      (fun b ->
        let buf = Builder.buffer_f b "buf" in
        Builder.seq_phase b (fun () ->
            let x = Builder.fconst b 1. in
            let y = Builder.fconst b 2. in
            let z = Builder.sf b in
            Builder.emit b (Fbin (Fadd, z, x, y));
            Builder.emit b (Fbin (Fmul, z, z, z));
            let i = Builder.iconst b 0 in
            Builder.emit b (Storef { buf; idx = i; src = z });
            Builder.emit b (Storef { buf; idx = i; src = z })))
      (fun () -> [ ("buf", Memory.Fbuf (Array.make 4 0.)) ])
  in
  Alcotest.(check bool) "fuel in message" true
    (Astring_contains.contains msg "fuel")

let test_trap_div_by_zero () =
  let msg =
    trap_pair
      (fun b ->
        Builder.seq_phase b (fun () ->
            let z = Builder.iconst b 0 in
            let x = Builder.iconst b 7 in
            ignore (Builder.ibin b Idiv x z : Isa.si_reg)))
      (fun () -> [])
  in
  Alcotest.(check bool) "division in message" true
    (Astring_contains.contains msg "division by zero")

let test_trap_oob_vector_store () =
  let msg =
    trap_pair
      (fun b ->
        let buf = Builder.buffer_f b "buf" in
        Builder.seq_phase b (fun () ->
            let sf = Builder.fconst b 9. in
            let v = Builder.vf b in
            Builder.emit b (Vbroadcastf (v, sf));
            let base = Builder.iconst b 6 in
            Builder.emit b (Vstoref { buf; idx = base; src = v; mask = None })))
      (fun () -> [ ("buf", Memory.Fbuf (Array.make 8 0.)) ])
  in
  Alcotest.(check bool) "oob in message" true
    (Astring_contains.contains msg "out-of-bounds")

let test_trap_nonpositive_step () =
  let msg =
    trap_pair
      (fun b ->
        Builder.seq_phase b (fun () ->
            let lo = Builder.iconst b 0 in
            let hi = Builder.iconst b 4 in
            let step = Builder.iconst b 0 in
            Builder.for_ b ~lo ~hi ~step (fun _ -> ())))
      (fun () -> [])
  in
  Alcotest.(check bool) "step in message" true
    (Astring_contains.contains msg "step")

(* ------------------------------------------------------------------ *)
(* Hand-seeded compiler mutations: execute deliberately broken op arrays
   through the compiled executor via [Interp.run ~decoded
   ~strategy:(Compiled _)] and assert the observation differential
   refutes each one against a clean reference run. Each mutation stands
   in for a distinct class of compiler bug; a compiled executor with any
   of them could not pass this suite. *)

let mutate (d : Decode.t) f =
  let found = ref false in
  let phases =
    Array.map
      (fun (ph : Decode.phase) ->
        { ph with
          Decode.code =
            Array.map
              (fun op ->
                if !found then op
                else
                  match f op with
                  | Some op' ->
                      found := true;
                      op'
                  | None -> op)
              ph.Decode.code })
      d.Decode.phases
  in
  if not !found then Alcotest.fail "mutation site not found in op array";
  { d with Decode.phases }

(* Like Test_fastpath.observe, but selecting the strategy explicitly and
   optionally executing a pre-supplied (mutated) flat form. *)
let observe_decoded ~strategy ~tracing ?decoded ~n_threads ~width prog :
    F.observation =
  let mem =
    Memory.create prog
      [ ("data", Memory.Fbuf (Array.copy F.fdata_init));
        ("idxs", Memory.Ibuf (Array.copy F.idata_init)) ]
  in
  let events = ref [] and trace = ref [] and states = ref [||] in
  let tracer =
    if tracing then Some (fun ev -> trace := Fmt.str "%a" Trace.pp ev :: !trace)
    else None
  in
  let o_outcome =
    match
      Interp.run ~n_threads ~width
        ~sink:(fun ev -> events := ev :: !events)
        ?trace:tracer ~fuel:50_000 ~strategy ?decoded
        ~on_states:(fun s -> states := s)
        prog mem
    with
    | r ->
        Ok
          ( r.Interp.instructions,
            Array.init n_threads (fun thread ->
                Array.copy (Counts.thread_row r.Interp.counts ~thread)) )
    | exception Interp.Trap m -> Error m
  in
  let o_data =
    match Memory.find mem "data" with
    | _, Memory.Fbuf a -> Array.copy a
    | _ -> assert false
  in
  let o_idxs =
    match Memory.find mem "idxs" with
    | _, Memory.Ibuf a -> Array.copy a
    | _ -> assert false
  in
  {
    F.o_outcome;
    o_events = !events;
    o_trace = !trace;
    o_states =
      Array.map
        (fun (s : Interp.thread_state) -> (s.si, s.sf, s.vf, s.vi, s.vm))
        !states;
    o_data;
    o_idxs;
  }

(* One program with a site for every mutation class: a Daddi (runtime x +
   const), a runtime Isub and Iadd, a dead def the DCE phantomizes, a
   chained Loadf, scalar stores to both buffers, a counted For loop, a
   runtime If, and a profiled region. *)
let mutation_program () =
  let b = Builder.create ~name:"compile-mutation" in
  let data = Builder.buffer_f b "data" in
  let idxs = Builder.buffer_i b "idxs" in
  Builder.seq_phase b (fun () ->
      let x = Builder.si b in
      Builder.emit b (Imov (x, Isa.thread_id_reg));
      let three = Builder.iconst b 3 in
      let z = Builder.ibin b Iadd x three in
      (* both operands runtime-unknown, so Isub survives as Dinstr *)
      let w = Builder.ibin b Isub z x in
      let zero = Builder.iconst b 0 in
      let one = Builder.iconst b 1 in
      Builder.emit b (Storei { buf = idxs; idx = zero; src = w });
      (* dead def: overwritten before its only store — DCE phantomizes *)
      let r = Builder.si b in
      Builder.emit b (Iconst (r, 5));
      Builder.emit b (Iconst (r, 6));
      Builder.emit b (Storei { buf = idxs; idx = one; src = r });
      let f = Builder.sf b in
      Builder.emit b (Loadf { dst = f; buf = data; idx = one; chain = true });
      let g = Builder.fconst b 2.5 in
      let h = Builder.sf b in
      Builder.emit b (Fbin (Fmul, h, f, g));
      Builder.emit b (Storef { buf = data; idx = zero; src = h });
      let lo = Builder.iconst b 0 in
      let hi = Builder.iconst b 4 in
      let step = Builder.iconst b 1 in
      Builder.for_ b ~lo ~hi ~step (fun i ->
          let acc = Builder.ibin b Iadd i w in
          Builder.emit b (Storei { buf = idxs; idx = one; src = acc }));
      Builder.if_ b ~cond:x
        ~else_:(fun () -> Builder.emit b (Fconst (h, 0.25)))
        (fun () -> Builder.emit b (Fconst (h, 0.75)));
      Builder.region b "mutation-region" (fun () ->
          Builder.emit b (Storef { buf = data; idx = one; src = h })));
  Builder.finish b

(* Refute one mutation: the mutated arrays, executed through the
   compiled backend, must diverge from the clean reference run. Trace
   -only mutations (dropped scopes) only show under tracing, so each
   case declares the tracing modes that must catch it. *)
let assert_refuted ?(tracing_modes = [ false; true ]) ~what prog mutated =
  List.iter
    (fun tracing ->
      let good =
        observe_decoded ~strategy:Interp.Decoded ~tracing ~n_threads:1 ~width:4
          prog
      in
      let bad =
        observe_decoded
          ~strategy:(Interp.Compiled Optimize.none)
          ~tracing ~decoded:mutated ~n_threads:1 ~width:4 prog
      in
      match F.diff_observations good bad with
      | Some _ -> ()
      | None ->
          Alcotest.fail
            (Fmt.str "compiled differential failed to refute %s (tracing=%b)"
               what tracing))
    tracing_modes

let optimized_arrays prog = Optimize.run (Decode.decode prog)

let test_compiled_clean_arrays_agree () =
  (* sanity for the harness itself: the *unmutated* optimized arrays,
     executed through the compiled backend, match the reference *)
  let prog = mutation_program () in
  let opt = optimized_arrays prog in
  List.iter
    (fun tracing ->
      let good =
        observe_decoded ~strategy:Interp.Decoded ~tracing ~n_threads:1 ~width:4
          prog
      in
      let compiled =
        observe_decoded
          ~strategy:(Interp.Compiled Optimize.none)
          ~tracing ~decoded:opt ~n_threads:1 ~width:4 prog
      in
      match F.diff_observations good compiled with
      | None -> ()
      | Some what ->
          Alcotest.fail
            (Fmt.str "clean compiled arrays diverge (tracing=%b) on: %s" tracing
               what))
    [ false; true ]

let mutation_case ~what f =
  Alcotest.test_case ("mutation: " ^ what ^ " is refuted") `Quick (fun () ->
      let prog = mutation_program () in
      let opt = optimized_arrays prog in
      f ~prog ~opt)

let mutations =
  [
    mutation_case ~what:"an off-by-one immediate" (fun ~prog ~opt ->
        let broken =
          mutate opt (function
            | Decode.Daddi d -> Some (Decode.Daddi { d with imm = d.imm + 1 })
            | _ -> None)
        in
        assert_refuted ~what:"an off-by-one immediate" prog broken);
    mutation_case ~what:"a dropped live def" (fun ~prog ~opt ->
        let broken =
          mutate opt (function
            | Decode.Dinstr { i = Isa.Iconst (_, 6); cls; cls_idx } ->
                Some (Decode.Dphantom { cls; cls_idx; n = 1 })
            | _ -> None)
        in
        assert_refuted ~what:"a dropped live def" prog broken);
    mutation_case ~what:"inflated batched bookkeeping" (fun ~prog ~opt ->
        let broken =
          mutate opt (function
            | Decode.Dphantom p -> Some (Decode.Dphantom { p with n = p.n + 1 })
            | _ -> None)
        in
        assert_refuted ~what:"inflated batched bookkeeping" prog broken);
    mutation_case ~what:"a misattributed phantom class" (fun ~prog ~opt ->
        let broken =
          mutate opt (function
            | Decode.Dphantom p when p.cls <> Isa.Branch ->
                Some
                  (Decode.Dphantom
                     { p with
                       cls = Isa.Branch;
                       cls_idx = Isa.op_class_index Isa.Branch })
            | _ -> None)
        in
        assert_refuted ~what:"a misattributed phantom class" prog broken);
    mutation_case ~what:"swapped subtraction operands" (fun ~prog ~opt ->
        let broken =
          mutate opt (function
            | Decode.Dinstr { i = Isa.Ibin (Isa.Isub, d, a, b); cls; cls_idx } ->
                Some
                  (Decode.Dinstr { i = Isa.Ibin (Isa.Isub, d, b, a); cls; cls_idx })
            | _ -> None)
        in
        assert_refuted ~what:"swapped subtraction operands" prog broken);
    mutation_case ~what:"a wrong operator selection" (fun ~prog ~opt ->
        let broken =
          mutate opt (function
            | Decode.Dinstr { i = Isa.Ibin (Isa.Iadd, d, a, b); cls; cls_idx } ->
                Some
                  (Decode.Dinstr { i = Isa.Ibin (Isa.Isub, d, a, b); cls; cls_idx })
            | _ -> None)
        in
        assert_refuted ~what:"a wrong operator selection" prog broken);
    mutation_case ~what:"a flipped dependence-chain flag" (fun ~prog ~opt ->
        let broken =
          mutate opt (function
            | Decode.Dinstr { i = Isa.Loadf l; cls; cls_idx } ->
                Some
                  (Decode.Dinstr
                     { i = Isa.Loadf { l with chain = not l.chain }; cls; cls_idx })
            | Decode.Dloadf_at l ->
                Some (Decode.Dloadf_at { l with chain = not l.chain })
            | _ -> None)
        in
        assert_refuted ~what:"a flipped dependence-chain flag" prog broken);
    mutation_case ~what:"a dropped store" (fun ~prog ~opt ->
        let broken =
          mutate opt (function
            | Decode.Dinstr { i = Isa.Storef _; cls; cls_idx } ->
                Some (Decode.Dphantom { cls; cls_idx; n = 1 })
            | Decode.Dstoref_at _ ->
                Some
                  (Decode.Dphantom
                     { cls = Isa.Sstore;
                       cls_idx = Isa.op_class_index Isa.Sstore;
                       n = 1 })
            | _ -> None)
        in
        assert_refuted ~what:"a dropped store" prog broken);
    mutation_case ~what:"a wrong loop bound" (fun ~prog ~opt ->
        let broken =
          mutate opt (function
            | Decode.Dfor d when d.hi <> d.lo ->
                Some (Decode.Dfor { d with hi = d.lo })
            | _ -> None)
        in
        assert_refuted ~what:"a wrong loop bound" prog broken);
    mutation_case ~what:"a perturbed float constant" (fun ~prog ~opt ->
        let broken =
          mutate opt (function
            | Decode.Dinstr { i = Isa.Fconst (d, 2.5); cls; cls_idx } ->
                Some (Decode.Dinstr { i = Isa.Fconst (d, 2.75); cls; cls_idx })
            | _ -> None)
        in
        assert_refuted ~what:"a perturbed float constant" prog broken);
    mutation_case ~what:"a dropped profiling scope" (fun ~prog ~opt ->
        let broken =
          mutate opt (function
            | Decode.Denter _ ->
                Some
                  (Decode.Dphantom
                     { cls = Isa.Salu;
                       cls_idx = Isa.op_class_index Isa.Salu;
                       n = 0 })
            | _ -> None)
        in
        (* scopes are trace-only observables *)
        assert_refuted ~tracing_modes:[ true ] ~what:"a dropped profiling scope"
          prog broken);
    mutation_case ~what:"a misattributed count class" (fun ~prog ~opt ->
        let broken =
          mutate opt (function
            | Decode.Dinstr { i = Isa.Ibin (Isa.Iadd, _, _, _) as i; _ } ->
                Some
                  (Decode.Dinstr
                     { i; cls = Isa.Sfp; cls_idx = Isa.op_class_index Isa.Sfp })
            | _ -> None)
        in
        assert_refuted ~what:"a misattributed count class" prog broken);
  ]

let suite =
  ( "compile",
    List.concat
      [
        [
          QCheck_alcotest.to_alcotest prop_four_way_default;
          QCheck_alcotest.to_alcotest prop_four_way_unoptimized;
          Alcotest.test_case "trap: fuel exhaustion" `Quick test_trap_fuel_exhausted;
          Alcotest.test_case "trap: fuel runs out before a store" `Quick
            test_trap_fuel_before_store;
          Alcotest.test_case "trap: integer division by zero" `Quick
            test_trap_div_by_zero;
          Alcotest.test_case "trap: partial oob vector store" `Quick
            test_trap_oob_vector_store;
          Alcotest.test_case "trap: non-positive loop step" `Quick
            test_trap_nonpositive_step;
          Alcotest.test_case "clean compiled arrays match the reference" `Quick
            test_compiled_clean_arrays_agree;
        ];
        mutations;
      ] )
