(* Cycle-attribution profiler tests: collector aggregation over synthetic
   event streams, determinism of full profiles, the Chrome-trace golden
   shape, and the tentpole integrity property — the profiler's
   event-derived bottleneck classification must equal the timing report's
   for the whole suite on both machines (T4 vs T1). *)

module Machine = Ninja_arch.Machine
module Timing = Ninja_arch.Timing
module Driver = Ninja_kernels.Driver
module Registry = Ninja_kernels.Registry
module Profile = Ninja_profile.Profile
module Chrome = Ninja_profile.Chrome
module Trace = Ninja_vm.Trace
module Counts = Ninja_vm.Counts

let westmere = Machine.westmere
let mic = Machine.knights_ferry

(* A minimal but well-formed report for finalizing synthetic collectors
   (the collector only reads [cycles] from it for fractions). *)
let fake_report machine ~cycles : Timing.report =
  {
    machine;
    n_threads = 1;
    cycles;
    seconds = cycles /. (machine.Machine.freq_ghz *. 1e9);
    issue_cycles = 0.;
    stall_cycles = 0.;
    dram_time = 0.;
    overhead_cycles = 0.;
    dram_read_bytes = 0;
    dram_write_bytes = 0;
    counts = Counts.create 1;
    instructions = 0;
    level_accesses = [];
    bound = Compute;
  }

let feed c evs = List.iter (Profile.sink c) evs

(* ------------------------------------------------------------------ *)
(* Synthetic streams: known aggregates                                  *)

let test_collector_fractions () =
  let c = Profile.collector ~machine:westmere ~n_threads:1 in
  let phase : Trace.scope = Phase { index = 0; parallel = false } in
  feed c [ Enter { thread = 0; scope = phase }; Enter { thread = 0; scope = Loop "hot" } ];
  for _ = 1 to 10 do
    feed c [ Op { thread = 0; cls = Salu } ]
  done;
  feed c
    [ Access
        { thread = 0; level = Dram; covered = false; stall = 25.; bytes = 64;
          write = false; dram_bytes = 64 };
      Lanes { thread = 0; active = 3; width = 4 };
      Exit { thread = 0; scope = Loop "hot" };
      Exit { thread = 0; scope = phase } ];
  let p =
    Profile.finalize c ~report:(fake_report westmere ~cycles:100.)
      ~prog_name:"synthetic" ~step_name:"unit"
  in
  (* event-derived chip numbers *)
  let expected_issue =
    let counts = Counts.create 1 in
    Counts.add counts ~thread:0 Salu 10;
    Timing.issue_time westmere counts ~thread:0
  in
  Alcotest.(check (float 0.)) "issue repriced from Op events" expected_issue p.issue;
  Alcotest.(check (float 0.)) "stall summed from Access events" 25. p.stall;
  Alcotest.(check (float 1e-9)) "dram_time from traffic deltas"
    (64. /. Machine.bytes_per_cycle westmere)
    p.dram_time;
  Alcotest.(check (float 0.)) "all work is serial (Seq phase)"
    (expected_issue +. 25.) p.serial;
  (match p.bound with
  | Latency -> ()
  | b -> Alcotest.failf "expected latency-bound, got %s" (Timing.bound_name b));
  let f = Profile.fractions p in
  Alcotest.(check (float 1e-12)) "latency fraction" 0.25 f.f_latency;
  (* attribution rows: first-seen order, innermost-scope charging *)
  (match p.rows with
  | [ ph; hot ] ->
      Alcotest.(check string) "phase label" "phase 0 (seq)" ph.r_label;
      Alcotest.(check int) "phase got no instructions" 0 ph.r_instrs;
      Alcotest.(check string) "loop label" "hot" hot.r_label;
      Alcotest.(check int) "loop instructions" 10 hot.r_instrs;
      Alcotest.(check (float 0.)) "loop stall" 25. hot.r_stall;
      Alcotest.(check (float 1e-12)) "loop share" 1. hot.r_share;
      Alcotest.(check int) "loop DRAM-level accesses" 1 hot.r_levels.(3);
      (match hot.r_lane_util with
      | Some u -> Alcotest.(check (float 1e-12)) "lane utilization" 0.75 u
      | None -> Alcotest.fail "expected lane utilization")
  | rows -> Alcotest.failf "expected 2 rows, got %d" (List.length rows));
  (* spans: one per scope, loop nested inside the phase *)
  (match p.spans with
  | [ hot; ph ] ->
      Alcotest.(check string) "inner span closes first" "hot" hot.sp_label;
      Alcotest.(check string) "outer span closes last" "phase 0 (seq)" ph.sp_label;
      Alcotest.(check bool) "loop span inside phase span" true
        (hot.sp_t0 >= ph.sp_t0 && hot.sp_t1 <= ph.sp_t1);
      Alcotest.(check (float 1e-9)) "span length = issue + stall"
        (expected_issue +. 25.) (hot.sp_t1 -. hot.sp_t0)
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans))

let test_collector_unbalanced () =
  let c = Profile.collector ~machine:westmere ~n_threads:1 in
  (match Profile.sink c (Exit { thread = 0; scope = Loop "ghost" }) with
  | () -> Alcotest.fail "expected Invalid_argument on exit without enter"
  | exception Invalid_argument _ -> ());
  let c2 = Profile.collector ~machine:westmere ~n_threads:1 in
  feed c2 [ Enter { thread = 0; scope = Loop "a" } ];
  (match Profile.sink c2 (Exit { thread = 0; scope = Loop "b" }) with
  | () -> Alcotest.fail "expected Invalid_argument on mismatched exit"
  | exception Invalid_argument _ -> ());
  let c3 = Profile.collector ~machine:westmere ~n_threads:1 in
  feed c3 [ Enter { thread = 0; scope = Loop "open" } ];
  match
    Profile.finalize c3 ~report:(fake_report westmere ~cycles:1.)
      ~prog_name:"x" ~step_name:"y"
  with
  | _ -> Alcotest.fail "expected Invalid_argument on finalize with open scope"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Real runs: exactness, determinism, golden trace                      *)

let profile_scale1 machine bench_name step_name =
  let b = Registry.find bench_name in
  let steps = b.steps ~scale:1 in
  let step =
    List.find (fun (s : Driver.step) -> s.step_name = step_name) steps
  in
  Profile.of_step ~machine ~prog_name:b.b_name step

(* The event stream must rebuild the report's chip numbers bit-for-bit:
   same counts, same stall order, same traffic. Covers multi-launch steps
   (mergesort) and both machines. *)
let test_event_exactness () =
  List.iter
    (fun (machine, bench, step) ->
      let p = profile_scale1 machine bench step in
      let r = p.Profile.report in
      let ctx = Fmt.str "%s/%s on %s" bench step machine.Machine.name in
      Alcotest.(check (float 0.)) (ctx ^ ": issue") r.issue_cycles p.issue;
      Alcotest.(check (float 0.)) (ctx ^ ": stall") r.stall_cycles p.stall;
      Alcotest.(check (float 0.)) (ctx ^ ": dram_time") r.dram_time p.dram_time;
      Alcotest.(check string) (ctx ^ ": bound")
        (Timing.bound_name r.bound)
        (Timing.bound_name p.bound);
      Alcotest.(check int) (ctx ^ ": instructions") r.instructions
        (List.fold_left (fun acc (row : Profile.row) -> acc + row.r_instrs) 0 p.rows))
    [ (westmere, "blackscholes", "ninja");
      (westmere, "stencil7", "+parallel");
      (westmere, "mergesort", "ninja");
      (mic, "blackscholes", "ninja");
      (mic, "treesearch", "ninja") ]

let render_table t = Fmt.str "%a" Ninja_report.Table.render t

let test_determinism () =
  let run () =
    let p = profile_scale1 westmere "blackscholes" "ninja" in
    (render_table (Profile.attribution_table p), Chrome.to_json p)
  in
  let t1, j1 = run () in
  let t2, j2 = run () in
  Alcotest.(check string) "attribution table byte-identical" t1 t2;
  Alcotest.(check string) "Chrome trace byte-identical" j1 j2

let test_chrome_golden () =
  let p = profile_scale1 westmere "blackscholes" "ninja" in
  let got = Chrome.to_json p in
  (* `dune runtest` runs us in test/'s build dir; `dune exec test/main.exe`
     runs from the project root — accept both. *)
  let path =
    if Sys.file_exists "golden_chrome_trace.json" then "golden_chrome_trace.json"
    else Filename.concat "test" "golden_chrome_trace.json"
  in
  let ic = open_in_bin path in
  let want =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Alcotest.(check string) "golden Chrome trace" want got

let test_roofline_csv () =
  let p = profile_scale1 westmere "blackscholes" "ninja" in
  let csv = Profile.roofline_csv [ p ] in
  (match String.split_on_char '\n' csv with
  | header :: row :: _ ->
      Alcotest.(check string) "csv header"
        Ninja_analysis.Roofline.csv_header header;
      Alcotest.(check bool) "row carries the label" true
        (Astring_contains.contains row "BlackScholes/ninja")
  | _ -> Alcotest.fail "csv too short");
  Alcotest.(check int) "one line per profile + header + trailing newline" 3
    (List.length (String.split_on_char '\n' csv))

(* ------------------------------------------------------------------ *)
(* T4 acceptance: measured classes = report classes, suite-wide         *)

let test_t4_matches_reports () =
  List.iter
    (fun ((m : Machine.t), profiles) ->
      Alcotest.(check int)
        (Fmt.str "all benchmarks profiled on %s" m.name)
        (List.length Registry.all) (List.length profiles);
      List.iter
        (fun (p : Profile.t) ->
          let ctx = Fmt.str "%s on %s" p.prog_name m.name in
          Alcotest.(check string)
            (ctx ^ ": measured class = report class")
            (Timing.bound_name p.report.bound)
            (Timing.bound_name p.bound);
          Alcotest.(check bool) (ctx ^ ": events flowed") true (p.events > 0))
        profiles)
    (Lazy.force Ninja_core.Experiments.t4_profiles)

let suite =
  ( "profile",
    [ Alcotest.test_case "collector: synthetic stream fractions" `Quick
        test_collector_fractions;
      Alcotest.test_case "collector: unbalanced scopes rejected" `Quick
        test_collector_unbalanced;
      Alcotest.test_case "event stream rebuilds report exactly" `Quick
        test_event_exactness;
      Alcotest.test_case "profile output is deterministic" `Quick
        test_determinism;
      Alcotest.test_case "Chrome trace golden shape" `Quick test_chrome_golden;
      Alcotest.test_case "roofline CSV shape" `Quick test_roofline_csv;
      Alcotest.test_case "T4 measured classes match reports (both machines)"
        `Slow test_t4_matches_reports ] )
