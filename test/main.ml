let () =
  Alcotest.run "ninja"
    [ Test_util.suite;
      Test_vm.suite;
      Test_fastpath.suite;
      Test_optimize.suite;
      Test_compile.suite;
      Test_fuzz_cee.suite;
      Test_arch.suite;
      Test_lang.suite;
      Test_lang2.suite;
      Test_diag.suite;
      Test_verify.suite;
      Test_analysis.suite;
      Test_deps.suite;
      Test_report.suite;
      Test_kernels.suite;
      Test_profile.suite;
      Test_sched.suite;
      Test_store.suite;
      Test_serve.suite;
      Test_tuner.suite;
      Test_core.suite ]
