(* Tests for the cache, prefetcher, memory hierarchy, and timing model. *)

module Machine = Ninja_arch.Machine
module Cache = Ninja_arch.Cache
module Prefetch = Ninja_arch.Prefetch
module Hierarchy = Ninja_arch.Hierarchy
module Timing = Ninja_arch.Timing
open Ninja_vm

let tiny_cache () =
  Cache.create { size_bytes = 512; assoc = 2; line_bytes = 64; latency = 1 }

let test_cache_hit_after_fill () =
  let c = tiny_cache () in
  let r1 = Cache.access c ~line_addr:5 ~write:false in
  Alcotest.(check bool) "first is miss" false r1.hit;
  let r2 = Cache.access c ~line_addr:5 ~write:false in
  Alcotest.(check bool) "second is hit" true r2.hit

let test_cache_lru_eviction () =
  (* 512B/64B = 8 lines, 2-way -> 4 sets. Lines 0, 4, 8 map to set 0. *)
  let c = tiny_cache () in
  ignore (Cache.access c ~line_addr:0 ~write:false);
  ignore (Cache.access c ~line_addr:4 ~write:false);
  ignore (Cache.access c ~line_addr:0 ~write:false); (* 0 is now MRU *)
  ignore (Cache.access c ~line_addr:8 ~write:false); (* evicts 4 *)
  Alcotest.(check bool) "0 still present" true (Cache.probe c ~line_addr:0);
  Alcotest.(check bool) "4 evicted" false (Cache.probe c ~line_addr:4);
  Alcotest.(check bool) "8 present" true (Cache.probe c ~line_addr:8)

let test_cache_dirty_eviction () =
  let c = tiny_cache () in
  ignore (Cache.access c ~line_addr:0 ~write:true);
  ignore (Cache.access c ~line_addr:4 ~write:false);
  let r = Cache.access c ~line_addr:8 ~write:false in
  Alcotest.(check (option int)) "dirty line 0 written back" (Some 0) r.evicted_dirty

let test_cache_dirty_count () =
  let c = tiny_cache () in
  ignore (Cache.access c ~line_addr:1 ~write:true);
  ignore (Cache.access c ~line_addr:2 ~write:false);
  Alcotest.(check int) "one dirty" 1 (Cache.dirty_lines c)

let test_cache_non_pow2_sets () =
  (* 12 MiB, 16-way: 12288 sets (not a power of two) must work *)
  let c =
    Cache.create { size_bytes = 12 * 1024 * 1024; assoc = 16; line_bytes = 64; latency = 1 }
  in
  ignore (Cache.access c ~line_addr:123456 ~write:false);
  Alcotest.(check bool) "hit after fill" true (Cache.probe c ~line_addr:123456)

let test_prefetch_stream_detected () =
  let p = Prefetch.create ~streams:4 () in
  (* constant stride 1: covered from the third access on *)
  ignore (Prefetch.observe p ~line_addr:100);
  ignore (Prefetch.observe p ~line_addr:101);
  ignore (Prefetch.observe p ~line_addr:102);
  Alcotest.(check bool) "covered" true (Prefetch.observe p ~line_addr:103)

let test_prefetch_random_not_covered () =
  let p = Prefetch.create ~streams:4 () in
  let covered = ref 0 in
  List.iter
    (fun a -> if Prefetch.observe p ~line_addr:a then incr covered)
    [ 1000; 5000; 90000; 3000; 70000; 11000 ];
  Alcotest.(check int) "no coverage" 0 !covered

let test_hierarchy_levels () =
  let h = Hierarchy.create Machine.westmere in
  let r1 = Hierarchy.access h ~core:0 ~addr:0x100000 ~bytes:4 ~write:false ~nt:false in
  Alcotest.(check string) "cold miss to DRAM" "DRAM" (Hierarchy.level_name r1.level);
  let r2 = Hierarchy.access h ~core:0 ~addr:0x100000 ~bytes:4 ~write:false ~nt:false in
  Alcotest.(check string) "then L1" "L1" (Hierarchy.level_name r2.level);
  Alcotest.(check int) "64B read" 64 (Hierarchy.dram_read_bytes h)

let test_hierarchy_nt_write () =
  let h = Hierarchy.create Machine.westmere in
  let r = Hierarchy.access h ~core:0 ~addr:0x100000 ~bytes:16 ~write:true ~nt:true in
  Alcotest.(check bool) "nt covered" true r.covered;
  Alcotest.(check int) "bytes to DRAM" 16 (Hierarchy.dram_write_bytes h);
  Alcotest.(check int) "no read traffic" 0 (Hierarchy.dram_read_bytes h)

let test_hierarchy_drain () =
  let h = Hierarchy.create Machine.westmere in
  ignore (Hierarchy.access h ~core:0 ~addr:0x100000 ~bytes:4 ~write:true ~nt:false);
  Alcotest.(check int) "no writeback yet" 0 (Hierarchy.dram_write_bytes h);
  Hierarchy.drain_writebacks h;
  Alcotest.(check int) "drained line" 64 (Hierarchy.dram_write_bytes h)

let test_machine_presets () =
  List.iter
    (fun (m : Machine.t) ->
      Alcotest.(check bool) (m.name ^ " cores") true (m.cores > 0);
      Alcotest.(check bool) (m.name ^ " width") true (m.simd_width >= 4);
      Alcotest.(check bool) (m.name ^ " bw") true (m.dram_bw_gbs > 0.))
    (Machine.paper_cpus @ [ Machine.knights_ferry; Machine.future ~generation:1 ])

let test_future_scaling () =
  let g1 = Machine.future ~generation:1 in
  let g2 = Machine.future ~generation:2 in
  Alcotest.(check int) "cores double" (Machine.westmere.cores * 2) g1.cores;
  Alcotest.(check int) "simd doubles" (Machine.westmere.simd_width * 2) g1.simd_width;
  Alcotest.(check bool) "bw grows slower than compute" true
    (g2.dram_bw_gbs /. Machine.westmere.dram_bw_gbs
    < float_of_int (g2.cores * g2.simd_width)
      /. float_of_int (Machine.westmere.cores * Machine.westmere.simd_width))

let test_gather_cost () =
  let cpu = Machine.westmere in
  let mic = Machine.knights_ferry in
  Alcotest.(check (float 1e-9)) "emulated = 2W" 8. (Machine.gather_cost cpu);
  Alcotest.(check (float 1e-9)) "native = W/4" 4. (Machine.gather_cost mic)

(* A small streaming program to exercise timing end to end; [work] adds
   extra per-element FP operations to make the kernel compute-bound. *)
let streaming_program ?(work = 0) n =
  let b = Builder.create ~name:"stream" in
  let x = Builder.buffer_f b "x" in
  let y = Builder.buffer_f b "y" in
  Builder.par_phase b (fun () ->
      let nreg = Builder.iconst b n in
      let lo, hi = Builder.thread_range_aligned b ~n:nreg in
      let w = Isa.vector_width_reg in
      Builder.for_ b ~lo ~hi ~step:w (fun i ->
          let v = Builder.vf b in
          Builder.emit b (Vloadf { dst = v; buf = x; idx = i; mask = None });
          let acc = ref (Builder.vfbin b Fadd v v) in
          for _ = 1 to work do
            acc := Builder.vfbin b Fmul !acc v
          done;
          Builder.emit b (Vstoref { buf = y; idx = i; src = !acc; mask = None })));
  Builder.finish b

let run_streaming ?work ~machine ~n_threads n =
  let prog = streaming_program ?work n in
  let mem =
    Memory.create prog
      [ ("x", Memory.Fbuf (Array.make n 1.)); ("y", Memory.Fbuf (Array.make n 0.)) ]
  in
  Timing.simulate ~machine ~n_threads prog mem

let test_timing_threads_speedup () =
  let n = 1 lsl 14 in
  let r1 = run_streaming ~work:20 ~machine:Machine.westmere ~n_threads:1 n in
  let r6 = run_streaming ~work:20 ~machine:Machine.westmere ~n_threads:6 n in
  Alcotest.(check bool) "parallel faster" true (r6.cycles < r1.cycles)

let test_timing_deterministic () =
  let n = 1 lsl 12 in
  let r1 = run_streaming ~machine:Machine.westmere ~n_threads:6 n in
  let r2 = run_streaming ~machine:Machine.westmere ~n_threads:6 n in
  Alcotest.(check (float 1e-9)) "same cycles" r1.cycles r2.cycles

let test_timing_bandwidth_bound () =
  (* very large stream: DRAM time must dominate *)
  let r = run_streaming ~machine:Machine.westmere ~n_threads:6 (1 lsl 18) in
  Alcotest.(check string) "bandwidth bound" "bandwidth" (Timing.bound_name r.bound)

let test_timing_traffic_accounting () =
  let n = 1 lsl 14 in
  let r = run_streaming ~machine:Machine.westmere ~n_threads:1 n in
  (* reads: x (n*4) + write-allocate on y (n*4); writes drained: n*4 *)
  let expected_read = 2 * n * 4 in
  Alcotest.(check int) "read bytes" expected_read r.dram_read_bytes;
  Alcotest.(check int) "write bytes" (n * 4) r.dram_write_bytes

let test_timing_rejects_oversubscription () =
  Alcotest.check_raises "too many threads" (Failure "inv") (fun () ->
      try ignore (run_streaming ~machine:Machine.westmere ~n_threads:7 64)
      with Invalid_argument _ -> raise (Failure "inv"))

let test_speedup_and_flops () =
  let n = 1 lsl 12 in
  let r = run_streaming ~machine:Machine.westmere ~n_threads:1 n in
  (* one vector add per W elements: n flops total *)
  Alcotest.(check (float 1.)) "flops" (float_of_int n) (Timing.flops r);
  Alcotest.(check (float 1e-9)) "self speedup" 1.0 (Timing.speedup ~baseline:r r)

(* ---- qcheck properties for the cache ----
   A pure reference model of a set-associative LRU cache (per-set MRU-first
   association lists) differentially checked against Cache.access, plus
   counter and full-associativity invariants. *)

module Lru_model = struct
  type t = { assoc : int; sets : (int * bool ref) list ref array }

  let create ~n_sets ~assoc = { assoc; sets = Array.init n_sets (fun _ -> ref []) }

  (* mirror of Cache.access: returns the same outcome record *)
  let access m ~line_addr ~write : Cache.outcome =
    let set = m.sets.(line_addr mod Array.length m.sets) in
    match List.assoc_opt line_addr !set with
    | Some dirty ->
        if write then dirty := true;
        set := (line_addr, dirty) :: List.remove_assoc line_addr !set;
        { hit = true; evicted_dirty = None }
    | None ->
        let kept = (line_addr, ref write) :: !set in
        let evicted_dirty =
          if List.length kept <= m.assoc then None
          else
            match List.rev kept with
            | (victim, dirty) :: _ -> if !dirty then Some victim else None
            | [] -> assert false
        in
        set :=
          (if List.length kept <= m.assoc then kept
           else List.filteri (fun i _ -> i < m.assoc) kept);
        { hit = false; evicted_dirty }
end

(* (sets, assoc, accesses): small geometries so eviction is exercised *)
let cache_trace_gen =
  QCheck.make
    ~print:(fun (s, a, tr) ->
      Fmt.str "sets=%d assoc=%d trace=%a" s a
        Fmt.(Dump.list (Dump.pair int bool))
        tr)
    QCheck.Gen.(
      triple (oneofl [ 1; 2; 4 ]) (oneofl [ 1; 2; 4; 8 ])
        (list_size (1 -- 300) (pair (int_bound 40) bool)))

let prop_cache_matches_lru_model =
  QCheck.Test.make ~name:"access stream matches reference LRU model" ~count:300
    cache_trace_gen
    (fun (n_sets, assoc, trace) ->
      let c =
        Cache.create
          { size_bytes = n_sets * assoc * 64; assoc; line_bytes = 64; latency = 1 }
      in
      let m = Lru_model.create ~n_sets ~assoc in
      List.for_all
        (fun (line_addr, write) ->
          Cache.access c ~line_addr ~write
          = Lru_model.access m ~line_addr ~write)
        trace)

let prop_cache_hits_plus_misses =
  QCheck.Test.make ~name:"hits + misses = accesses" ~count:300 cache_trace_gen
    (fun (n_sets, assoc, trace) ->
      let c =
        Cache.create
          { size_bytes = n_sets * assoc * 64; assoc; line_bytes = 64; latency = 1 }
      in
      List.iter (fun (line_addr, write) -> ignore (Cache.access c ~line_addr ~write)) trace;
      Cache.stats_hits c + Cache.stats_misses c = List.length trace)

let prop_fully_assoc_no_eviction_within_capacity =
  (* a fully-associative cache touched with <= capacity distinct lines:
     misses = compulsory only, nothing is ever displaced *)
  QCheck.Test.make
    ~name:"fully-associative: within-capacity working set never evicts" ~count:300
    (QCheck.make
       ~print:(fun (cap, tr) -> Fmt.str "cap=%d trace=%a" cap Fmt.(Dump.list int) tr)
       QCheck.Gen.(
         oneofl [ 1; 2; 4; 8; 16 ] >>= fun cap ->
         list_size (1 -- 200) (int_bound (cap - 1)) >|= fun picks -> (cap, picks)))
    (fun (cap, picks) ->
      let c =
        Cache.create { size_bytes = cap * 64; assoc = cap; line_bytes = 64; latency = 1 }
      in
      let distinct = List.sort_uniq compare picks in
      let no_evict =
        List.for_all
          (fun line_addr ->
            (Cache.access c ~line_addr ~write:true).evicted_dirty = None)
          picks
      in
      no_evict
      && Cache.stats_misses c = List.length distinct
      && List.for_all (fun a -> Cache.probe c ~line_addr:a) distinct)

let prop_cache_most_recent_present =
  QCheck.Test.make ~name:"most recent access always resident" ~count:200
    QCheck.(list_of_size Gen.(1 -- 100) (int_bound 1000))
    (fun addrs ->
      let c = tiny_cache () in
      List.for_all
        (fun a ->
          ignore (Cache.access c ~line_addr:a ~write:false);
          Cache.probe c ~line_addr:a)
        addrs)

let suite =
  ( "arch",
    [ Alcotest.test_case "cache hit after fill" `Quick test_cache_hit_after_fill;
      Alcotest.test_case "cache LRU" `Quick test_cache_lru_eviction;
      Alcotest.test_case "cache dirty eviction" `Quick test_cache_dirty_eviction;
      Alcotest.test_case "cache dirty count" `Quick test_cache_dirty_count;
      Alcotest.test_case "cache non-pow2 sets" `Quick test_cache_non_pow2_sets;
      Alcotest.test_case "prefetch stream" `Quick test_prefetch_stream_detected;
      Alcotest.test_case "prefetch random" `Quick test_prefetch_random_not_covered;
      Alcotest.test_case "hierarchy levels" `Quick test_hierarchy_levels;
      Alcotest.test_case "hierarchy nt write" `Quick test_hierarchy_nt_write;
      Alcotest.test_case "hierarchy drain" `Quick test_hierarchy_drain;
      Alcotest.test_case "machine presets" `Quick test_machine_presets;
      Alcotest.test_case "future scaling" `Quick test_future_scaling;
      Alcotest.test_case "gather cost" `Quick test_gather_cost;
      Alcotest.test_case "threads speed up" `Quick test_timing_threads_speedup;
      Alcotest.test_case "timing deterministic" `Quick test_timing_deterministic;
      Alcotest.test_case "bandwidth bound" `Quick test_timing_bandwidth_bound;
      Alcotest.test_case "traffic accounting" `Quick test_timing_traffic_accounting;
      Alcotest.test_case "oversubscription rejected" `Quick test_timing_rejects_oversubscription;
      Alcotest.test_case "flops and speedup" `Quick test_speedup_and_flops;
      QCheck_alcotest.to_alcotest prop_cache_most_recent_present;
      QCheck_alcotest.to_alcotest prop_cache_matches_lru_model;
      QCheck_alcotest.to_alcotest prop_cache_hits_plus_misses;
      QCheck_alcotest.to_alcotest prop_fully_assoc_no_eviction_within_capacity ] )
